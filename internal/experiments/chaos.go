package experiments

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// ChaosMeasurement is one fault-rate data point of the chaos figure: the
// loadgen report for a closed-loop read run with every fault kind firing at
// Percent% per decision, plus the backend's resilience accounting.
type ChaosMeasurement struct {
	Percent    int // per-decision fault probability, percent
	Report     net.LoadReport
	Resilience replica.ResilienceStats
	SyncErrors int64
	Fired      map[string]int64
}

// startChaos is startFrontdoor with the resilience layer armed: a 2-replica
// group over a fault-wrapped store with hedged reads and circuit breakers,
// its reads subject to injected replica crashes.
func (h *Harness) startChaos(rows int, inj *fault.Injector) (*frontdoorFixture, *obs.Registry, error) {
	reg := obs.NewRegistry()
	g := replica.NewGroup(server.SYS1(), h.Scale, replica.Options{
		Replicas:   2,
		Durability: wal.Group,
		Store:      fault.NewStore(wal.NewMemStore(), inj),
		Hedge:      5 * time.Millisecond,
		Breaker:    replica.BreakerOptions{Enabled: true, Cooldown: 2 * time.Millisecond},
		Fault:      inj,
	})
	if err := loadPointTable(g, rows); err != nil {
		g.Close()
		return nil, nil, err
	}
	g.Warm()
	g.SetMetrics(reg)

	fd := net.NewServer(g, net.ServerOptions{Metrics: reg})
	if err := fd.Listen("127.0.0.1:0"); err != nil {
		g.Close()
		return nil, nil, err
	}
	return &frontdoorFixture{g: g, fd: fd}, reg, nil
}

// FigChaos — client-observed latency percentiles and goodput vs injected
// fault rate. A closed-loop read workload drives the full resilient stack —
// retrying TCP client, hedged reads, per-replica circuit breakers, flaky
// fsyncs — while every fault kind (connection reset, torn frame, slow link,
// fsync error/stall, replica crash) fires at the swept per-decision rate.
// The property under test is graceful degradation: as the fault rate climbs
// to 10%, goodput sags and the tail stretches (retry backoff, hedges,
// failover), but every request completes — zero hung, zero failed — and
// writes are never manufactured (the workload is reads; the client retries
// only what is provably safe). The resilience counters make the absorbed
// faults visible: retries, reconnects, breaker trips, hedges.
func (h *Harness) FigChaos() (*Figure, error) {
	const (
		rows  = 5000
		conns = 8
		seed  = 20110411
	)
	dur := 2 * time.Second
	if h.Quick {
		dur = time.Second
	}
	percents := h.pick([]int{0, 2, 5, 10}, []int{0, 10})

	f := &Figure{
		ID:     "Chaos",
		Title:  "Resilient front-door latency and goodput vs injected fault rate",
		XLabel: "Per-decision fault rate (%)",
		YLabel: "Latency (ms, wall) / goodput (req/s)",
	}
	series := []Series{
		{Label: "p50 ms"}, {Label: "p99 ms"}, {Label: "p999 ms"}, {Label: "goodput req/s"},
	}
	var points []ChaosMeasurement
	for _, pct := range percents {
		p := float64(pct) / 100
		// A fresh, deterministically seeded injector per point: client-side
		// connection faults and backend disk/replica faults all at rate p.
		inj := fault.New(seed+int64(pct)).
			Rate(fault.ConnReset, p).
			Rate(fault.TornWrite, p).
			Rate(fault.SlowLink, p).Delay(fault.SlowLink, 500*time.Microsecond).
			Rate(fault.SyncErr, p).
			Rate(fault.SyncStall, p).Delay(fault.SyncStall, 200*time.Microsecond).
			Rate(fault.ReplicaCrash, p)

		fx, _, err := h.startChaos(rows, inj)
		if err != nil {
			return nil, fmt.Errorf("chaos %d%%: %w", pct, err)
		}
		opts := fx.load(rows)
		opts.Conns = conns
		opts.Duration = dur
		opts.Client = net.ClientOptions{
			Retry: net.RetryPolicy{
				MaxAttempts: 8,
				BaseBackoff: 200 * time.Microsecond,
				Jitter:      0.5,
			},
			Fault: inj,
		}
		rep, err := net.RunLoad(opts)
		if err != nil {
			fx.Close()
			return nil, fmt.Errorf("chaos %d%%: %w", pct, err)
		}
		res := fx.g.Resilience()
		rep.Hedges = res.HedgesLaunched
		rep.BreakerTrips = res.BreakerTrips
		syncErrs := fx.g.WALStats().SyncErrors
		fired := inj.Counts()
		fx.Close()

		// Graceful degradation means every request still answers: a hang or
		// a surfaced transport error at any fault rate fails the figure.
		if rep.Hung > 0 || rep.Failed > 0 {
			return nil, fmt.Errorf("chaos %d%%: %d hung, %d failed requests (seed %d)",
				pct, rep.Hung, rep.Failed, seed+int64(pct))
		}
		if pct == 0 && (rep.Retries > 0 || rep.BreakerTrips > 0) {
			return nil, fmt.Errorf("chaos 0%%: phantom faults: %d retries, %d trips",
				rep.Retries, rep.BreakerTrips)
		}
		points = append(points, ChaosMeasurement{
			Percent: pct, Report: rep, Resilience: res,
			SyncErrors: syncErrs, Fired: fired,
		})
		series[0].Points = append(series[0].Points, Point{X: pct, Y: rep.P50Ms})
		series[1].Points = append(series[1].Points, Point{X: pct, Y: rep.P99Ms})
		series[2].Points = append(series[2].Points, Point{X: pct, Y: rep.P999Ms})
		series[3].Points = append(series[3].Points, Point{X: pct, Y: rep.ThroughputRPS})
	}
	// At the top fault rate the machinery must visibly work: transport
	// faults were retried and replica crashes tripped breakers.
	top := points[len(points)-1]
	if top.Percent >= 10 {
		if top.Report.Retries == 0 {
			return nil, fmt.Errorf("chaos: no retries at %d%% fault rate", top.Percent)
		}
		if top.Report.BreakerTrips == 0 {
			return nil, fmt.Errorf("chaos: no breaker trips at %d%% fault rate", top.Percent)
		}
		if top.Report.Completed == 0 {
			return nil, fmt.Errorf("chaos: nothing completed at %d%% fault rate", top.Percent)
		}
	}
	f.Series = series
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, 2 replicas + breaker (2ms cooldown) + 5ms hedge, closed loop %d conns, seed %d",
			server.SYS1().Name, conns, seed),
		fmt.Sprintf("At %d%%: completed %d, retries %d, reconnects %d, breaker trips %d, probes %d, hedges %d, wal sync errors %d",
			top.Percent, top.Report.Completed, top.Report.Retries, top.Report.Reconnects,
			top.Resilience.BreakerTrips, top.Resilience.BreakerProbes,
			top.Resilience.HedgesLaunched, top.SyncErrors),
		fmt.Sprintf("Faults fired at %d%%: %v", top.Percent, top.Fired),
		"Every request completes at every fault rate (zero hung, zero failed): degradation is latency and goodput, never correctness")
	return f, nil
}
