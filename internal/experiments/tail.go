package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TailMeasurement is one (mode, threads) tail-latency data point: the
// latency distribution of acknowledged single-row inserts submitted through
// the traced async service against a one-replica group whose WAL runs in
// Mode. Latencies are per-request root-span wall times rescaled to simulated
// time, so a point answers "what does the p999 client wait for under this
// durability guarantee at this concurrency".
type TailMeasurement struct {
	Mode    string
	Threads int
	Inserts int
	// Simulated submit-to-acknowledgement latency percentiles.
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
	Mean time.Duration
	Max  time.Duration
}

// speedScore ranks repeated measurements for BestOf: lower p99 wins (wall
// noise only inflates the tail, so the best repetition is the least noisy).
func (m TailMeasurement) speedScore() float64 { return -float64(m.P99) }

// MeasureTail runs the MeasureDurability workload — `inserts` acknowledged
// inserts from `threads` concurrent clients, rotational settle charged on
// log writes — through the traced submission stack and reads the per-request
// latency distribution off the request-span histogram. Throughput figures
// average away the tail; this is the per-client view of the same tradeoff:
// strict pays a full fsync on every request, group makes most requests ride
// another commit's fsync, off never waits.
func (h *Harness) MeasureTail(prof server.Profile, mode wal.Mode,
	threads, inserts int) (TailMeasurement, error) {

	m := TailMeasurement{Mode: mode.String(), Threads: threads, Inserts: inserts}
	prof.Disk.WriteSettle = 4 * time.Millisecond
	g := replica.NewGroup(prof, h.Scale, replica.Options{Replicas: 1, Durability: mode})
	defer g.Close()
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("events", schema, 0); err != nil {
		return m, err
	}
	g.FinishLoad()
	if err := g.AddIndex("events", "id", true); err != nil {
		return m, err
	}
	g.Warm()

	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	// The figure reads the request root histogram; per-stage subtrees are
	// sampled so the probe cost stays off the latencies being measured.
	tr.SetChildSampling(64)
	g.SetMetrics(reg)
	svc := exec.NewService(threads, g.Exec)
	svc.EnableTracing(tr)

	var next atomic.Int64
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				id := next.Add(1)
				if id > int64(inserts) {
					return
				}
				hd, err := svc.Submit("t", "insert into events values (?, ?)",
					[]any{id, fmt.Sprintf("e%d", id)})
				if err != nil {
					errs[w] = err
					return
				}
				// Fetch per submission: each client waits for its own
				// acknowledgement, so the root span's wall time is exactly
				// the latency that client observed.
				if _, err := hd.Fetch(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	svc.Close()
	for _, err := range errs {
		if err != nil {
			return m, err
		}
	}
	if open := tr.Open(); open != 0 {
		return m, fmt.Errorf("tail: %d spans left open after drain", open)
	}

	snap := reg.Histogram("span.request.wall").Snapshot()
	if snap.Count == 0 {
		return m, fmt.Errorf("tail: no request spans recorded")
	}
	scale := h.Scale
	if scale <= 0 {
		scale = 1
	}
	sim := func(ns int64) time.Duration { return time.Duration(float64(ns) / scale) }
	m.P50 = sim(snap.Quantile(0.50))
	m.P99 = sim(snap.Quantile(0.99))
	m.P999 = sim(snap.Quantile(0.999))
	m.Mean = sim(int64(snap.Mean()))
	m.Max = sim(snap.Max)
	return m, nil
}

// FigTailLatency — acknowledged insert latency percentiles vs client threads
// across WAL fsync policies, measured end to end through the traced
// submission stack. The durability figure's throughput curves show the
// averages; this figure shows what they hide: under `strict` the whole
// distribution shifts up by one fsync, under `group` p50 collapses toward
// `off` while p999 keeps paying for the fsyncs a request occasionally
// leads, and queueing at high concurrency stretches every tail.
func (h *Harness) FigTailLatency() (*Figure, error) {
	threads := h.pick([]int{1, 2, 5, 10, 20, 30}, []int{1, 5, 10})
	inserts := h.iters(1200, 200)
	f := &Figure{
		ID:     "Tail latency",
		Title:  "Acknowledged insert latency percentiles vs fsync policy",
		XLabel: "Number of client threads",
		YLabel: "Latency (ms, simulated)",
	}
	modes := []wal.Mode{wal.Off, wal.Group, wal.Strict}
	if h.Durability != "" {
		m, err := wal.ParseMode(h.Durability)
		if err != nil {
			return nil, err
		}
		modes = []wal.Mode{m}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, mode := range modes {
		quantiles := []struct {
			label string
			get   func(TailMeasurement) time.Duration
		}{
			{"p50", func(m TailMeasurement) time.Duration { return m.P50 }},
			{"p99", func(m TailMeasurement) time.Duration { return m.P99 }},
			{"p999", func(m TailMeasurement) time.Duration { return m.P999 }},
		}
		series := make([]Series, len(quantiles))
		for qi, q := range quantiles {
			series[qi].Label = fmt.Sprintf("%s %s", mode, q.label)
		}
		for _, th := range threads {
			best, err := BestOf(3, TailMeasurement.speedScore, func() (TailMeasurement, error) {
				return h.MeasureTail(server.SYS1(), mode, th, inserts)
			})
			if err != nil {
				return nil, fmt.Errorf("tail %s threads=%d: %w", mode, th, err)
			}
			for qi, q := range quantiles {
				series[qi].Points = append(series[qi].Points, Point{X: th, Y: ms(q.get(best))})
			}
		}
		f.Series = append(f.Series, series...)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, Inserts: %d, Replicas: 1 (sync); latencies from request-span histograms", server.SYS1().Name, inserts))
	return f, nil
}
