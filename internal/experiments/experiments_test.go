package experiments

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wal"
)

// TestTable1 checks the paper's applicability numbers: auction 9/9 (100%),
// bulletin board 6/8 (75%).
func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if rows[0].Opportunities != 9 || rows[0].Transformed != 9 {
		t.Errorf("auction: got %d/%d, want 9/9", rows[0].Transformed, rows[0].Opportunities)
	}
	if rows[1].Opportunities != 8 || rows[1].Transformed != 6 {
		t.Errorf("bulletin: got %d/%d, want 6/8", rows[1].Transformed, rows[1].Opportunities)
	}
}

// TestAllAppsTransform checks that each evaluation app's kernel transforms.
func TestAllAppsTransform(t *testing.T) {
	for _, app := range apps.All() {
		_, rep, err := core.Transform(app.Proc(), core.Options{
			Registry: app.Registry(), SplitNested: true,
		})
		if err != nil {
			t.Errorf("%s: %v", app.Name, err)
			continue
		}
		if rep.TransformedCount() == 0 {
			t.Errorf("%s: no site transformed: %+v", app.Name, rep.Sites)
		}
	}
}

// TestMeasureSmall runs tiny measurements of every app end to end (zero
// scale: no sleeping) and relies on Measure's built-in result comparison.
func TestMeasureSmall(t *testing.T) {
	h := NewHarness()
	h.Scale = 0 // logic only
	defer h.Close()
	cases := []struct {
		app  *apps.App
		prof server.Profile
	}{
		{apps.RUBiS(), server.SYS1()},
		{apps.RUBBoS(), server.Postgres()},
		{apps.Category(), server.SYS1()},
		{apps.Forms(), server.SYS1()},
		{apps.WebServiceApp(), server.WebService()},
	}
	for _, c := range cases {
		m, err := h.Measure(c.app, c.prof, 4, 25, true)
		if err != nil {
			t.Errorf("%s: %v", c.app.Name, err)
			continue
		}
		if m.Iterations != 25 {
			t.Errorf("%s: bad measurement %+v", c.app.Name, m)
		}
	}
}

// TestMeasureDurabilitySmall runs a tiny durability sweep end to end (zero
// scale) and checks the one property that is exact rather than a timing
// shape: strict mode pays one fsync per acknowledged insert, and every mode
// acknowledges every insert.
func TestMeasureDurabilitySmall(t *testing.T) {
	h := NewHarness()
	h.Scale = 0 // logic only
	defer h.Close()
	const inserts = 60
	for _, mode := range []wal.Mode{wal.Off, wal.Group, wal.Strict} {
		m, err := h.MeasureDurability(server.SYS1(), mode, 4, inserts)
		if err != nil {
			t.Errorf("%s: %v", mode, err)
			continue
		}
		if m.Inserts != inserts || m.Throughput <= 0 {
			t.Errorf("%s: bad measurement %+v", mode, m)
		}
		if mode == wal.Strict && m.Syncs != inserts {
			t.Errorf("strict: %d fsyncs for %d inserts, want one each", m.Syncs, inserts)
		}
		if mode != wal.Off && m.Syncs == 0 {
			t.Errorf("%s: no fsync recorded", mode)
		}
	}
}
