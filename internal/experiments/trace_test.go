package experiments

import (
	"os"
	"strings"
	"sync"
	"testing"

	"math/rand"
	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

// testTracer returns a live tracer when ASYNCQ_TRACE is set — the
// differential suites then run with the span machinery fully hot, and the
// byte-identity assertions pin that tracing is passive — or nil (tracing
// off; nil spans ride the same code paths). The cleanup asserts no span
// leaked open.
func testTracer(t *testing.T) *obs.Tracer {
	if os.Getenv("ASYNCQ_TRACE") == "" {
		return nil
	}
	tr := obs.NewTracer(nil)
	t.Cleanup(func() {
		if open := tr.Open(); open != 0 {
			t.Errorf("ASYNCQ_TRACE: %d of %d spans left open", open, tr.Started())
		}
	})
	return tr
}

// countSpans walks a trace tree, asserting every span was ended and every
// non-root span is reachable from its root, and returns the node count.
func countSpans(t *testing.T, sp *obs.Span) int {
	t.Helper()
	if !sp.Ended() {
		t.Errorf("span %q collected but never ended", sp.Name())
	}
	n := 1
	for _, c := range sp.Children() {
		n += countSpans(t, c)
	}
	return n
}

// TestTraceCompleteness drives a transformed app workload through the full
// traced stack — batched submission over a sharded router whose shards are
// WAL-backed replica groups — and asserts the books balance: every span the
// tracer minted was ended, and every one of them is reachable from a
// collected root (no orphans, no leaks). This is the structural guarantee
// the slow-query log and the tail-latency figure rest on.
func TestTraceCompleteness(t *testing.T) {
	app := apps.RUBiS()
	trans, rep, err := core.Transform(app.Proc(), core.Options{
		Registry:    app.Registry(),
		SplitNested: true,
	})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if rep.TransformedCount() == 0 {
		t.Fatal("no site transformed")
	}

	ref := server.New(server.SYS1(), 0)
	defer ref.Close()
	if err := app.Setup(ref, apps.SeededRand()); err != nil {
		t.Fatalf("setup: %v", err)
	}
	rt := shard.New(server.SYS1(), 0, shard.Options{
		Shards: 3, Keys: app.ShardKeys,
		Replicas: 2, Durability: wal.Group,
	})
	defer rt.Close()
	if err := rt.LoadFrom(ref); err != nil {
		t.Fatalf("load: %v", err)
	}

	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	var mu sync.Mutex
	var roots []*obs.Span
	tr.SetCollector(func(root *obs.Span) {
		mu.Lock()
		roots = append(roots, root)
		mu.Unlock()
	})

	svc := batch.NewService(4, rt.Exec, rt.ExecBatch, batch.Options{MaxBatch: 8})
	svc.EnableTracing(tr)
	rt.RegisterMetrics(reg, "")
	in := interp.New(app.Registry(), svc)
	if app.Bind != nil {
		app.Bind(in, apps.SeededRand())
	}
	args := app.Args(40, rand.New(rand.NewSource(47)))
	if _, err := in.Run(trans, args); err != nil {
		t.Fatalf("run: %v", err)
	}
	// RUBiS is read-heavy; a seeded random workload (inserts included)
	// drives the write path too, so the trees reach WAL commit and replica
	// apply. Root spans opened here flow through the same collector.
	rng := rand.New(rand.NewSource(99))
	for _, op := range apps.RandomWorkload(ref, 60, rng) {
		sp := tr.Start("request")
		if op.Batch() {
			rt.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets).WithSpan(sp))
		} else {
			rt.Exec(query.Req("w", op.SQL, op.ArgSets[0]).WithSpan(sp))
		}
		sp.End()
	}
	svc.Close()

	if tr.Started() == 0 {
		t.Fatal("no spans were started; tracing never engaged")
	}
	if open := tr.Open(); open != 0 {
		t.Fatalf("%d of %d spans left open after drain", open, tr.Started())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(roots) == 0 {
		t.Fatal("collector saw no root spans")
	}
	total := 0
	for _, root := range roots {
		if root.Name() != "request" {
			t.Errorf("collected root named %q, want \"request\"", root.Name())
		}
		total += countSpans(t, root)
	}
	if int64(total) != tr.Started() {
		t.Errorf("trace trees hold %d spans, tracer minted %d: some spans are orphaned", total, tr.Started())
	}

	// The trees actually reach the bottom of the stack: the registry holds
	// per-shard fan-out, WAL commit, and replica read histograms.
	var b strings.Builder
	if err := reg.Dump(&b); err != nil {
		t.Fatalf("dump: %v", err)
	}
	dump := b.String()
	for _, want := range []string{"span.request.wall", "span.shard", "span.wal.commit.wall", "span.server"} {
		if !strings.Contains(dump, want) {
			t.Errorf("registry dump missing %q\n%s", want, dump)
		}
	}
}
