package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/shard"
)

// TestShardedExecutionMatchesSingleServerOnApps pins the sharded cluster to
// the single-server path: for every evaluation app, running the transformed
// program with batched submission against a 4-shard router must yield
// byte-identical observable output (returns and print/log stream) to the
// same batched run on one server holding all the data. Cold caches make the
// scatter-gather and per-shard batch paths do real page work.
func TestShardedExecutionMatchesSingleServerOnApps(t *testing.T) {
	const iterations = 30
	const workers = 4
	const shards = 4
	prof := server.SYS1()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			trans, rep, err := core.Transform(app.Proc(), core.Options{
				Registry:    app.Registry(),
				SplitNested: true,
			})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if rep.TransformedCount() == 0 {
				t.Fatal("no site transformed")
			}

			// One reference load serves every side: the single-server run
			// executes on it and each batching mode gets its own router
			// partitioned from it — all built before any run, so a mutating
			// app (forms) cannot leak one mode's inserts into the next.
			ref := server.New(prof, 0.02)
			defer ref.Close()
			if err := app.Setup(ref, apps.SeededRand()); err != nil {
				t.Fatalf("setup: %v", err)
			}
			newRouter := func() *shard.Router {
				rt := shard.New(prof, 0.02, shard.Options{Shards: shards, Keys: app.ShardKeys})
				if err := rt.LoadFrom(ref); err != nil {
					rt.Close()
					t.Fatalf("shard load: %v", err)
				}
				t.Cleanup(rt.Close)
				return rt
			}
			rtSplit, rtGrouped := newRouter(), newRouter()

			run := func(runr exec.Runner, batchRunr exec.BatchRunner,
				cold func(), opts batch.Options) (*interp.Result, string) {
				t.Helper()
				cold()
				opts.MaxBatch = 8
				svc := batch.NewService(workers, runr, batchRunr, opts)
				svc.EnableTracing(testTracer(t))
				defer svc.Close()
				in := interp.New(app.Registry(), svc)
				if app.Bind != nil {
					app.Bind(in, apps.SeededRand())
				}
				args := app.Args(iterations, rand.New(rand.NewSource(iterations+7)))
				res, err := in.Run(trans, args)
				if err != nil {
					return nil, err.Error()
				}
				return res, ""
			}

			singleRes, singleErr := run(ref.Exec, ref.ExecBatch,
				ref.ColdStart, batch.Options{})
			// Two sharded modes: mixed batches that ExecBatch splits per
			// shard, and shard-aware coalescing (GroupFn) where every batch
			// already targets one shard.
			modes := []struct {
				label string
				rt    *shard.Router
				opts  batch.Options
			}{
				{"split", rtSplit, batch.Options{}},
				{"grouped", rtGrouped, batch.Options{GroupFn: rtGrouped.BatchGroup}},
			}
			for _, mode := range modes {
				rt := mode.rt
				shardRes, shardErr := run(rt.Exec, rt.ExecBatch,
					rt.ColdStart, mode.opts)
				if singleErr != shardErr {
					t.Fatalf("%s: error text: sharded %q, single-server %q", mode.label, shardErr, singleErr)
				}
				if singleErr != "" {
					continue
				}
				if err := sameResult(singleRes, shardRes); err != nil {
					t.Errorf("%s: sharded run diverges from single-server: %v", mode.label, err)
				}
				if shardRes.Output != singleRes.Output {
					t.Errorf("%s: output streams differ", mode.label)
				}
			}

			// The cluster really is partitioned: for apps with immutable data,
			// more than one shard must have answered queries.
			if !app.MutatesData {
				busy := 0
				for _, s := range rtSplit.ShardStats() {
					if s.Queries > 0 {
						busy++
					}
				}
				if busy < 2 {
					t.Errorf("expected work on >= 2 shards, stats %+v", rtSplit.ShardStats())
				}
			}
		})
	}
}

// TestMeasureReplicatedSmall drives the replicated harness path (replicated
// router caching, warm-up, result verification, read-balance accounting) at
// zero scale, including the mutating forms app, which rebuilds its cluster
// per run.
func TestMeasureReplicatedSmall(t *testing.T) {
	h := NewHarness()
	h.Scale = 0 // logic only
	defer h.Close()
	for _, app := range []*apps.App{apps.RUBiS(), apps.Forms()} {
		for _, replicas := range []int{1, 2} {
			m, err := h.MeasureReplicated(app, server.SYS1(), 4, 25, true, 8, 2, replicas)
			if err != nil {
				t.Errorf("%s replicas=%d: %v", app.Name, replicas, err)
				continue
			}
			if m.Shards != 2 || m.Replicas != replicas || m.Iterations != 25 {
				t.Errorf("%s: bad measurement %+v", app.Name, m)
			}
			if len(m.ReplicaReads) != 2 {
				t.Errorf("%s: want read balance for 2 shards, got %v", app.Name, m.ReplicaReads)
				continue
			}
			var reads int64
			for _, shardReads := range m.ReplicaReads {
				if len(shardReads) != replicas {
					t.Errorf("%s: want %d replicas in balance row, got %v", app.Name, replicas, shardReads)
				}
				for _, r := range shardReads {
					reads += r
				}
			}
			// The read-only kernel's queries were all served by replicas.
			if app.Name == "rubis" && reads < 25 {
				t.Errorf("%s replicas=%d: replicas served %d reads, want >= 25", app.Name, replicas, reads)
			}
		}
	}
}

// TestMeasureShardedSmall drives the harness path (router caching, warm-up,
// verification) at zero scale for a fast logic check, including the
// mutating forms app, which rebuilds its cluster per run.
func TestMeasureShardedSmall(t *testing.T) {
	h := NewHarness()
	h.Scale = 0 // logic only
	defer h.Close()
	for _, app := range []*apps.App{apps.RUBiS(), apps.Forms()} {
		for _, shards := range []int{1, 2, 4} {
			m, err := h.MeasureSharded(app, server.SYS1(), 4, 25, true, 8, shards)
			if err != nil {
				t.Errorf("%s shards=%d: %v", app.Name, shards, err)
				continue
			}
			if m.Shards != shards || m.Iterations != 25 {
				t.Errorf("%s: bad measurement %+v", app.Name, m)
			}
			var q int64
			for _, c := range m.ShardQueries {
				q += c
			}
			if q < int64(25) {
				t.Errorf("%s shards=%d: cluster answered %d queries, want >= 25", app.Name, shards, q)
			}
		}
	}
}
