package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/server"
)

// TestTCPExecutionMatchesInProcessOnApps pins the network front door to the
// in-process stack: for every evaluation app, running the transformed
// program with batched asynchronous submission through a TCP client —
// wire-encoded requests, a real listener, per-connection session, columnar
// result decode — must yield byte-identical observable output (returns and
// print/log stream) to the same run calling the server directly. Seeded by
// ASYNCQ_SEED like the other differential suites (the app corpus itself is
// deterministic; the seed feeds the argument generator).
func TestTCPExecutionMatchesInProcessOnApps(t *testing.T) {
	const workers = 4
	iterations := 30
	if testing.Short() {
		iterations = 10
	}
	seed := apps.SeedFromEnv(0)
	if seed == 0 {
		seed = int64(iterations + 7) // the suite's pinned default
	}
	t.Logf("tcp differential seed: %d (override with ASYNCQ_SEED)", seed)
	prof := server.SYS1()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			trans, rep, err := core.Transform(app.Proc(), core.Options{
				Registry:    app.Registry(),
				SplitNested: true,
			})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if rep.TransformedCount() == 0 {
				t.Fatal("no site transformed")
			}

			// Each mode gets its own identically-seeded server: runs mutate
			// state (forms inserts), so sharing one backend would let the
			// first mode's writes leak into the second.
			newBackend := func() *server.Server {
				srv := server.New(prof, 0.02)
				t.Cleanup(srv.Close)
				if err := app.Setup(srv, apps.SeededRand()); err != nil {
					t.Fatalf("setup: %v", err)
				}
				srv.Warm()
				return srv
			}

			run := func(p *ir.Proc, label string, mk func() (runr func(query.Request) query.Result,
				batchRunr func(query.BatchRequest) query.BatchResult)) *interp.Result {
				t.Helper()
				runr, batchRunr := mk()
				svc := batch.NewService(workers, runr, batchRunr, batch.Options{MaxBatch: 8})
				svc.EnableTracing(testTracer(t))
				defer svc.Close()
				in := interp.New(app.Registry(), svc)
				if app.Bind != nil {
					app.Bind(in, apps.SeededRand())
				}
				args := app.Args(iterations, rand.New(rand.NewSource(seed)))
				res, err := in.Run(p, args)
				if err != nil {
					t.Fatalf("%s run: %v", label, err)
				}
				return res
			}

			direct := run(trans, "in-process", func() (func(query.Request) query.Result,
				func(query.BatchRequest) query.BatchResult) {
				srv := newBackend()
				return srv.Exec, srv.ExecBatch
			})

			remote := run(trans, "tcp", func() (func(query.Request) query.Result,
				func(query.BatchRequest) query.BatchResult) {
				srv := newBackend()
				fd := net.NewServer(srv, net.ServerOptions{Metrics: obs.NewRegistry()})
				if err := fd.Listen("127.0.0.1:0"); err != nil {
					t.Fatalf("listen: %v", err)
				}
				t.Cleanup(fd.Close)
				client, err := net.Dial(fd.Addr())
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				t.Cleanup(client.Close)
				return client.Exec, client.ExecBatch
			})

			if err := interp.EquivalentResult(direct, remote); err != nil {
				t.Errorf("TCP run diverges from in-process: %v", err)
			}
			if direct.Output != remote.Output {
				t.Errorf("output streams not byte-identical over TCP")
			}
		})
	}
}
