package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/server"
)

// TestBatchedExecutionMatchesAsyncOnApps pins batched submission to the
// per-query async path: for every evaluation app, running the transformed
// program with batching enabled must yield byte-identical observable output
// (returns, print/log stream, and — if the run fails — error text) to the
// unbatched async run. Several batch sizes cover the partial-batch (linger)
// and full-batch (MaxBatch) flush paths.
func TestBatchedExecutionMatchesAsyncOnApps(t *testing.T) {
	const iterations = 30
	const workers = 4
	prof := server.SYS1()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			trans, rep, err := core.Transform(app.Proc(), core.Options{
				Registry:    app.Registry(),
				SplitNested: true,
			})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if rep.TransformedCount() == 0 {
				t.Fatal("no site transformed")
			}

			// run executes the transformed kernel against a fresh server;
			// maxBatch 0 selects the plain per-query async service.
			run := func(maxBatch int) (*interp.Result, string) {
				t.Helper()
				srv := server.New(prof, 0.02)
				defer srv.Close()
				if err := app.Setup(srv, apps.SeededRand()); err != nil {
					t.Fatalf("setup: %v", err)
				}
				srv.ColdStart() // cold cache: the batched fast path does real page sharing
				var svc *exec.Service
				if maxBatch > 0 {
					svc = batch.NewService(workers, srv.Exec, srv.ExecBatch,
						batch.Options{MaxBatch: maxBatch})
				} else {
					svc = exec.NewService(workers, srv.Exec)
				}
				svc.EnableTracing(testTracer(t))
				defer svc.Close()
				in := interp.New(app.Registry(), svc)
				if app.Bind != nil {
					app.Bind(in, apps.SeededRand())
				}
				args := app.Args(iterations, rand.New(rand.NewSource(iterations+7)))
				res, err := in.Run(trans, args)
				if err != nil {
					return nil, err.Error()
				}
				return res, ""
			}

			asyncRes, asyncErr := run(0)
			for _, maxBatch := range []int{2, 16, 64} {
				batchRes, batchErr := run(maxBatch)
				if asyncErr != batchErr {
					t.Fatalf("maxBatch=%d: error text %q, async path said %q",
						maxBatch, batchErr, asyncErr)
				}
				if asyncErr != "" {
					continue
				}
				if err := sameResult(asyncRes, batchRes); err != nil {
					t.Errorf("maxBatch=%d: batched run diverges from async: %v", maxBatch, err)
				}
				if batchRes.Output != asyncRes.Output {
					t.Errorf("maxBatch=%d: output streams differ", maxBatch)
				}
			}
		})
	}
}

// TestBatchedErrorTextMatchesAsync drives a failing statement through both
// submission paths and asserts the error text survives batching unchanged.
func TestBatchedErrorTextMatchesAsync(t *testing.T) {
	prof := server.SYS1()
	errText := func(batched bool) string {
		srv := server.New(prof, 0)
		defer srv.Close()
		app := apps.Category()
		if err := app.Setup(srv, apps.SeededRand()); err != nil {
			t.Fatalf("setup: %v", err)
		}
		var svc *exec.Service
		if batched {
			svc = batch.NewService(2, srv.Exec, srv.ExecBatch, batch.Options{MaxBatch: 4})
		} else {
			svc = exec.NewService(2, srv.Exec)
		}
		defer svc.Close()
		h, err := svc.Submit("q", "select max(psize) from nosuch where category_id = ?", []any{int64(1)})
		if err != nil {
			t.Fatal(err)
		}
		_, err = h.Fetch()
		if err == nil {
			t.Fatal("want error from missing table")
		}
		return err.Error()
	}
	async, batched := errText(false), errText(true)
	if async != batched {
		t.Fatalf("error text differs: async %q, batched %q", async, batched)
	}
}
