package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/server"
)

// Point is one x/y pair of a series.
type Point struct {
	X int
	Y float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced evaluation artifact.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

func (h *Harness) sweepIterations(fig, title string, app *apps.App, prof server.Profile,
	threads int, iters []int, caches []bool) (*Figure, error) {

	f := &Figure{
		ID:     fig,
		Title:  title,
		XLabel: "Number of iterations",
		YLabel: "Time (in sec)",
	}
	for _, warm := range caches {
		cacheName := "Cold Cache"
		if warm {
			cacheName = "Warm Cache"
		}
		var orig, trans Series
		orig.Label = "Original Program (" + cacheName + ")"
		trans.Label = "Transformed Program (" + cacheName + ")"
		for _, n := range iters {
			m, err := h.Measure(app, prof, threads, n, warm)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", fig, n, err)
			}
			orig.Points = append(orig.Points, Point{X: n, Y: m.Original})
			trans.Points = append(trans.Points, Point{X: n, Y: m.Transformed})
		}
		f.Series = append(f.Series, orig, trans)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, Threads: %d", prof.Name, threads))
	return f, nil
}

func (h *Harness) sweepThreads(fig, title string, app *apps.App, prof server.Profile,
	iterations int, threads []int, warm bool) (*Figure, error) {

	cacheName := "Cold"
	if warm {
		cacheName = "Warm"
	}
	f := &Figure{
		ID:     fig,
		Title:  title,
		XLabel: "Number of threads",
		YLabel: "Time (in sec)",
		Notes: []string{fmt.Sprintf("Database: %s, Cache: %s, Iterations: %d",
			prof.Name, cacheName, iterations)},
	}
	var orig, trans Series
	orig.Label = "Original Program"
	trans.Label = "Transformed Program"
	for _, t := range threads {
		m, err := h.Measure(app, prof, t, iterations, warm)
		if err != nil {
			return nil, fmt.Errorf("%s threads=%d: %w", fig, t, err)
		}
		orig.Points = append(orig.Points, Point{X: t, Y: m.Original})
		trans.Points = append(trans.Points, Point{X: t, Y: m.Transformed})
	}
	f.Series = append(f.Series, orig, trans)
	return f, nil
}

// Fig08 — Experiment 1 (RUBiS auction) on SYS1, 10 threads, varying the
// number of iterations, warm and cold caches.
func (h *Harness) Fig08() (*Figure, error) {
	iters := h.pick([]int{4, 40, 400, 4000, 40000}, []int{4, 40, 400})
	return h.sweepIterations("Fig 8", "Experiment 1 with varying number of iterations",
		apps.RUBiS(), server.SYS1(), 10, iters, []bool{false, true})
}

// Fig09 — Experiment 1 on SYS1, 40k iterations, warm cache, varying threads.
func (h *Harness) Fig09() (*Figure, error) {
	threads := h.pick([]int{1, 2, 5, 10, 20, 30, 40, 50}, []int{1, 5, 20})
	iters := h.iters(40000, 2000)
	return h.sweepThreads("Fig 9", "Experiment 1 with varying number of threads",
		apps.RUBiS(), server.SYS1(), iters, threads, true)
}

// Fig10 — Experiment 1 on the PostgreSQL profile, varying threads.
func (h *Harness) Fig10() (*Figure, error) {
	threads := h.pick([]int{1, 2, 5, 10, 20, 30, 40, 50}, []int{1, 5, 20})
	iters := h.iters(40000, 2000)
	return h.sweepThreads("Fig 10", "Experiment 1 with varying number of threads",
		apps.RUBiS(), server.Postgres(), iters, threads, true)
}

// Fig11 — Experiment 2 (RUBBoS bulletin board) on PostgreSQL, 10 threads,
// warm cache, varying iterations.
func (h *Harness) Fig11() (*Figure, error) {
	iters := h.pick([]int{6, 60, 600, 6000}, []int{6, 60})
	return h.sweepIterations("Fig 11", "Experiment 2 with varying number of iterations",
		apps.RUBBoS(), server.Postgres(), 10, iters, []bool{true})
}

// Fig12 — Experiment 3 (category traversal) on SYS1, 10 threads, varying
// iterations, warm and cold.
func (h *Harness) Fig12() (*Figure, error) {
	iters := h.pick([]int{1, 11, 100}, []int{1, 11})
	return h.sweepIterations("Fig 12", "Experiment 3 with varying iterations",
		apps.Category(), server.SYS1(), 10, iters, []bool{false, true})
}

// Fig13 — Experiment 3 on SYS1, cold cache, 100 iterations, varying threads.
func (h *Harness) Fig13() (*Figure, error) {
	threads := h.pick([]int{1, 2, 5, 10, 20, 30, 40, 50}, []int{1, 5, 20})
	return h.sweepThreads("Fig 13", "Experiment 3 with varying number of threads",
		apps.Category(), server.SYS1(), h.iters(100, 40), threads, false)
}

// Fig14 — Experiment 4 (value range expansion, INSERTs) on SYS1, 30
// threads, varying iterations. Results are cache-independent (write-back).
func (h *Harness) Fig14() (*Figure, error) {
	iters := h.pick([]int{10, 100, 1000, 10000, 100000}, []int{10, 100, 1000})
	return h.sweepIterations("Fig 14", "Experiment 4 with varying number of iterations",
		apps.Forms(), server.SYS1(), 30, iters, []bool{true})
}

// Fig15 — Experiment 5 (web service invocation), 240 iterations, varying
// threads.
func (h *Harness) Fig15() (*Figure, error) {
	threads := h.pick([]int{1, 2, 5, 10, 15, 20, 25}, []int{1, 5, 15})
	return h.sweepThreads("Fig 15", "Experiment 5 with varying number of threads",
		apps.WebServiceApp(), server.WebService(), h.iters(240, 60), threads, true)
}

func (h *Harness) iters(full, quick int) int {
	if h.Quick {
		return quick
	}
	return full
}

// sweepBatch builds a three-series (synchronous / asynchronous / batched)
// figure over an iteration sweep — the batched-submission experiment that
// goes beyond the paper's figures (batching is the sibling transformation
// the paper names in §I).
func (h *Harness) sweepBatch(fig, title string, app *apps.App, prof server.Profile,
	threads, maxBatch int, iters []int, warm bool) (*Figure, error) {

	cacheName := "Cold"
	if warm {
		cacheName = "Warm"
	}
	f := &Figure{
		ID:     fig,
		Title:  title,
		XLabel: "Number of iterations",
		YLabel: "Time (in sec)",
	}
	var syn, asy, bat Series
	syn.Label = "Original Program (blocking)"
	asy.Label = "Transformed Program (async)"
	bat.Label = "Transformed Program (batched)"
	var lastBatches int64
	var lastAvg float64
	var lastAsyncRTT, lastBatchRTT int64
	for _, n := range iters {
		m, err := h.MeasureBatched(app, prof, threads, n, warm, maxBatch)
		if err != nil {
			return nil, fmt.Errorf("%s n=%d: %w", fig, n, err)
		}
		syn.Points = append(syn.Points, Point{X: n, Y: m.Sync})
		asy.Points = append(asy.Points, Point{X: n, Y: m.Async})
		bat.Points = append(bat.Points, Point{X: n, Y: m.Batched})
		lastBatches, lastAvg = m.BatchesIssued, m.AvgBatchSize
		lastAsyncRTT, lastBatchRTT = m.NetRequestsAsync, m.NetRequestsBatched
	}
	f.Series = append(f.Series, syn, asy, bat)
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, Cache: %s, Threads: %d, MaxBatch: %d",
			prof.Name, cacheName, threads, maxBatch),
		fmt.Sprintf("Largest run: %d batches (avg size %.1f); round trips: %d async vs %d batched",
			lastBatches, lastAvg, lastAsyncRTT, lastBatchRTT))
	return f, nil
}

// FigBatchCategory — batched vs async vs sync submission on the
// category-traversal workload, cold cache (the configuration where shared
// page accesses matter most).
func (h *Harness) FigBatchCategory() (*Figure, error) {
	iters := h.pick([]int{1, 11, 100}, []int{1, 11})
	return h.sweepBatch("Batch A", "Batched submission: category traversal",
		apps.Category(), server.SYS1(), 10, 16, iters, false)
}

// FigBatchRUBiS — batched vs async vs sync submission on the RUBiS auction
// workload, warm cache (round-trip amortization only).
func (h *Harness) FigBatchRUBiS() (*Figure, error) {
	iters := h.pick([]int{4, 40, 400, 4000}, []int{4, 40, 400})
	return h.sweepBatch("Batch B", "Batched submission: RUBiS auction",
		apps.RUBiS(), server.SYS1(), 10, 16, iters, true)
}

// BestOf runs measure reps times — forcing a collection between runs so a
// GC mark phase over the loaded tables cannot land mid-measurement — and
// returns the run with the highest score. On an oversubscribed host a
// single run of a few milliseconds is scheduler-noise-bound, so the max is
// the stable signal. The scale figures and their benchmark twins
// (BenchmarkShardScale, BenchmarkReplicaScale) share this so figures and
// benchmarks cannot drift onto different methodologies.
func BestOf[T any](reps int, score func(T) float64, measure func() (T, error)) (T, error) {
	var best T
	have := false
	for i := 0; i < reps; i++ {
		runtime.GC()
		m, err := measure()
		if err != nil {
			return best, err
		}
		if !have || score(m) > score(best) {
			best, have = m, true
		}
	}
	return best, nil
}

// FigShardScale — batched throughput of the RUBiS workload as the cluster
// grows from 1 to 8 shards (the scaling experiment beyond the paper:
// sharding lets the coalescer's batches execute in parallel per shard).
// Two regimes, both verified against the single-server batched path:
//
//   - cold cache, where the disk is the bottleneck and N shards mean N
//     independent disks — throughput grows monotonically with shards;
//   - warm cache, where the round trip and the client dominate — the
//     shard-aware coalescer keeps the round-trip count equal to the single
//     server's, so throughput holds (parity plus the parallel-CPU margin)
//     rather than degrading as naive batch splitting would.
//
// Each point takes the best of three runs: on an oversubscribed host a
// single run of a few milliseconds is scheduler-noise-bound.
func (h *Harness) FigShardScale() (*Figure, error) {
	shards := h.pick([]int{1, 2, 4, 8}, []int{1, 2, 4})
	const threads, maxBatch = 50, 16
	f := &Figure{
		ID:     "Shard A",
		Title:  "Sharded scatter-gather: batched throughput vs number of shards",
		XLabel: "Number of shards",
		YLabel: "Throughput (queries/sec)",
	}
	var lastBalance []int64
	for _, warm := range []bool{false, true} {
		iters := h.iters(1000, 200)
		cacheName := "Cold Cache"
		if warm {
			iters = h.iters(4000, 400)
			cacheName = "Warm Cache"
		}
		var tput Series
		tput.Label = fmt.Sprintf("Batched throughput (%s)", cacheName)
		for _, n := range shards {
			best, err := BestOf(3, ShardMeasurement.speedScore, func() (ShardMeasurement, error) {
				return h.MeasureSharded(apps.RUBiS(), server.SYS1(), threads, iters, warm, maxBatch, n)
			})
			if err != nil {
				return nil, fmt.Errorf("shard-scale %s n=%d: %w", cacheName, n, err)
			}
			tput.Points = append(tput.Points, Point{X: n, Y: best.Throughput})
			lastBalance = best.ShardQueries
		}
		f.Series = append(f.Series, tput)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, Threads: %d, MaxBatch: %d", server.SYS1().Name, threads, maxBatch),
		fmt.Sprintf("Largest cluster routing balance (queries per shard): %v", lastBalance))
	return f, nil
}

// FigReplicaScale — read throughput of the RUBiS workload on one hot shard
// as its read-replica count grows from 1 to 4 (the failover/read-scaling
// experiment beyond the paper: every query hits the same shard — the
// hot-shard regime the ROADMAP names — and the replica group spreads the
// batched reads across copies). Cold caches make the replicas' independent
// disks the scaling resource, exactly as independent shards are in
// FigShardScale; each point verifies the replicated run byte-identical to
// the single-server batched run. Best of five runs per point (BestOf) —
// adjacent replica counts differ by only a few percent, so this figure
// takes two more reps than FigShardScale's best-of-three.
func (h *Harness) FigReplicaScale() (*Figure, error) {
	replicas := h.pick([]int{1, 2, 3, 4}, []int{1, 2})
	const threads, maxBatch = 50, 16
	f := &Figure{
		ID:     "Replica A",
		Title:  "Replicated hot shard: batched read throughput vs number of replicas",
		XLabel: "Number of read replicas",
		YLabel: "Throughput (queries/sec)",
	}
	// 2000 iterations keep ~125 batches in flight behind 50 workers, enough
	// concurrent batches that a fourth replica still has work to steal.
	iters := h.iters(2000, 200)
	var tput Series
	tput.Label = "Batched read throughput (Cold Cache, 1 shard)"
	var lastBalance [][]int64
	for _, nrep := range replicas {
		best, err := BestOf(5, ReplicaMeasurement.speedScore, func() (ReplicaMeasurement, error) {
			return h.MeasureReplicated(apps.RUBiS(), server.SYS1(), threads, iters, false, maxBatch, 1, nrep)
		})
		if err != nil {
			return nil, fmt.Errorf("replica-scale r=%d: %w", nrep, err)
		}
		tput.Points = append(tput.Points, Point{X: nrep, Y: best.Throughput})
		lastBalance = best.ReplicaReads
	}
	f.Series = append(f.Series, tput)
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, Threads: %d, MaxBatch: %d, Shards: 1 (hot)", server.SYS1().Name, threads, maxBatch),
		fmt.Sprintf("Largest group read balance (reads per replica): %v", lastBalance))
	return f, nil
}

// TableRow is one application of Table I.
type TableRow struct {
	Application   string
	Opportunities int
	Transformed   int
}

// Applicability returns Opportunities percentage.
func (r TableRow) Applicability() float64 {
	if r.Opportunities == 0 {
		return 0
	}
	return 100 * float64(r.Transformed) / float64(r.Opportunities)
}

// Table1 — applicability of the transformation rules over the two benchmark
// applications' query-in-loop sites.
func Table1() []TableRow {
	var rows []TableRow
	for _, c := range []*apps.CorpusApp{apps.AuctionCorpus(), apps.BulletinCorpus()} {
		row := TableRow{Application: c.Name}
		for _, p := range c.Procs {
			rep := core.Analyze(p, core.Options{SplitNested: true})
			row.Opportunities += rep.Opportunities()
			row.Transformed += rep.TransformedCount()
		}
		rows = append(rows, row)
	}
	return rows
}

// AllFigures runs every figure in order.
func (h *Harness) AllFigures() ([]*Figure, error) {
	funcs := []func() (*Figure, error){
		h.Fig08, h.Fig09, h.Fig10, h.Fig11, h.Fig12, h.Fig13, h.Fig14, h.Fig15,
	}
	var out []*Figure
	for _, f := range funcs {
		fig, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, fig)
	}
	return out, nil
}
