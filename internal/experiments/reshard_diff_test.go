package experiments

// The re-sharding differential harness: the seeded random workload from the
// replica suite, driven against a single reference server and a hash-range
// sharded router while Split and Merge migrations run in the middle of the
// workload — with traffic executing during the copy phase and during the
// pre-flip window — asserting byte-identical results (values and error
// text) op by op. A crash variant kills the moving shard's primary between
// copy and flip, pinning that acknowledged writes survive a migration whose
// source dies at the worst moment.
//
// Seeds honor ASYNCQ_SEED; with it unset the seed comes from the clock and
// is logged, so any failure reproduces by exporting the variable.

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
)

// reshardSeed resolves and logs the suite's seed.
func reshardSeed(t *testing.T) int64 {
	seed := apps.SeedFromEnv(0)
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("workload seed %d (reproduce with: ASYNCQ_SEED=%d go test -run %s ./internal/experiments/)", seed, seed, t.Name())
	return seed
}

// reshardOut renders one execution outcome byte-comparably.
func reshardOut(v any, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok: " + interp.Format(v)
}

// reshardChunker runs seeded workload chunks against the reference server
// and the router, failing on the first byte-level divergence.
type reshardChunker struct {
	t    *testing.T
	seed int64
	ref  *server.Server
	rt   *shard.Router
	rng  *rand.Rand
	opNo int
}

// run executes n freshly generated ops on both sides. It returns true when
// at least one op in the chunk was an insert, so callers can tell whether a
// migration window really saw writes.
func (c *reshardChunker) run(label string, n int) bool {
	c.t.Helper()
	sawInsert := false
	// Generate against the current reference state: later chunks chase rows
	// this workload inserted, across whatever ranges have moved since.
	for _, op := range apps.RandomWorkload(c.ref, n, c.rng) {
		c.opNo++
		if strings.HasPrefix(strings.ToLower(strings.TrimSpace(op.SQL)), "insert") {
			sawInsert = true
		}
		if op.Batch() {
			wantVals, wantErrs := c.ref.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets)).Pair()
			gotVals, gotErrs := c.rt.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets)).Pair()
			for j := range op.ArgSets {
				want := reshardOut(wantVals[j], wantErrs[j])
				got := reshardOut(gotVals[j], gotErrs[j])
				if want != got {
					c.t.Fatalf("seed %d op %d (%s) %q binding %d:\n  cluster: %s\n  single:  %s",
						c.seed, c.opNo, label, op.SQL, j, got, want)
				}
			}
			continue
		}
		wantV, wantErr := c.ref.Exec(query.Req("w", op.SQL, op.ArgSets[0])).Pair()
		gotV, gotErr := c.rt.Exec(query.Req("w", op.SQL, op.ArgSets[0])).Pair()
		want, got := reshardOut(wantV, wantErr), reshardOut(gotV, gotErr)
		if want != got {
			c.t.Fatalf("seed %d op %d (%s) %q:\n  cluster: %s\n  single:  %s",
				c.seed, c.opNo, label, op.SQL, got, want)
		}
	}
	return sawInsert
}

// orchestrate runs mig on a goroutine and pauses it at each phase boundary
// ("copy" — before rows are copied, ranges still routing to the source —
// and "flip" — copy done, routing not yet switched), calling during(phase)
// with the migration frozen there so workload traffic interleaves with a
// live migration deterministically.
func orchestrate(t *testing.T, rt *shard.Router, mig func() error, during func(phase string)) {
	t.Helper()
	step := make(chan string)
	resume := make(chan struct{})
	rt.SetMigrationHook(func(phase string) {
		step <- phase
		<-resume
	})
	defer rt.SetMigrationHook(nil)
	errc := make(chan error, 1)
	go func() { errc <- mig() }()
	for _, want := range []string{"copy", "flip"} {
		select {
		case phase := <-step:
			if phase != want {
				t.Fatalf("migration phase %q, want %q", phase, want)
			}
			during(phase)
			resume <- struct{}{}
		case err := <-errc:
			t.Fatalf("migration ended before phase %q: %v", want, err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("migration: %v", err)
	}
}

// TestReshardDifferential drives every evaluation app's random workload
// against a 3-shard hash-range router while a Split and then a Merge run
// mid-workload, with traffic during both migration phases. Every op must
// match the single reference server byte for byte: reads never observe a
// partial move and writes acknowledged during a migration are neither lost
// nor duplicated.
func TestReshardDifferential(t *testing.T) {
	seed := reshardSeed(t)
	nOps := 240
	if testing.Short() {
		nOps = 96
	}
	var totalDoubleWrites, totalRowsCopied int64
	for ai, app := range apps.All() {
		app, ai := app, ai
		t.Run(app.Name, func(t *testing.T) {
			ref := server.New(server.SYS1(), 0)
			t.Cleanup(ref.Close)
			if err := app.Setup(ref, apps.SeededRand()); err != nil {
				t.Fatalf("setup: %v", err)
			}
			rt := shard.New(server.SYS1(), 0, shard.Options{Shards: 3, Keys: app.ShardKeys})
			t.Cleanup(rt.Close)
			if err := rt.LoadFrom(ref); err != nil {
				t.Fatalf("load: %v", err)
			}

			c := &reshardChunker{t: t, seed: seed, ref: ref, rt: rt,
				rng: rand.New(rand.NewSource(seed + int64(ai)*1_000_003))}

			c.run("pre-split", nOps/4)

			// Split shard 0 mid-workload: backend 3 appears and takes over
			// the upper half of 0's widest range.
			orchestrate(t, rt, func() error { return rt.Split(0) }, func(phase string) {
				c.run("during split "+phase, nOps/16)
			})
			if got := rt.Shards(); got != 4 {
				t.Fatalf("shards after split: %d, want 4", got)
			}
			if !rt.Ranges().Owns(3) {
				t.Fatal("new shard owns no range after split")
			}

			c.run("post-split", nOps*3/16)

			// Merge the new shard back into 0 mid-workload: its range moves
			// home and slot 3 drops out of ownership.
			orchestrate(t, rt, func() error { return rt.Merge(0, 3) }, func(phase string) {
				c.run("during merge "+phase, nOps/16)
			})
			if rt.Ranges().Owns(3) {
				t.Fatal("merged-away shard still owns a range")
			}
			if got := len(rt.Ranges().Owners()); got != 3 {
				t.Fatalf("owners after merge: %d, want 3", got)
			}

			c.run("post-merge", nOps-nOps/4-4*(nOps/16)-nOps*3/16)

			st := rt.MigrationStats()
			if st.Splits != 1 || st.Merges != 1 || st.Generation != 2 {
				t.Fatalf("migration stats %+v: want 1 split, 1 merge, generation 2", st)
			}
			if st.RowsCopied == 0 {
				t.Fatalf("migration stats %+v: no row was copied; migration untested", st)
			}
			totalDoubleWrites += st.DoubleWrites
			totalRowsCopied += st.RowsCopied
		})
	}
	// Across all apps the workload must really have written during a
	// migration window — otherwise the double-write path went untested.
	if totalRowsCopied == 0 {
		t.Fatalf("seed %d: no rows copied across any app", seed)
	}
	if totalDoubleWrites == 0 {
		t.Fatalf("seed %d: no insert was double-written during a migration window", seed)
	}
}

// TestReshardDifferentialCrashMidMigration splits a shard whose backends
// are WAL-durable replica groups and crashes the moving shard's primary in
// the window between copy and flip. The migration must still complete —
// the flip applies staged double-writes from its own materialized copies,
// never re-reading the source — and every subsequent op must match the
// single server byte for byte: no acknowledged write is lost or duplicated
// by a migration whose source dies mid-flight.
func TestReshardDifferentialCrashMidMigration(t *testing.T) {
	seed := reshardSeed(t)
	nOps := 160
	if testing.Short() {
		nOps = 80
	}
	app := apps.RUBiS()
	ref := server.New(server.SYS1(), 0)
	t.Cleanup(ref.Close)
	if err := app.Setup(ref, apps.SeededRand()); err != nil {
		t.Fatalf("setup: %v", err)
	}
	rt := shard.New(server.SYS1(), 0, shard.Options{
		Shards: 2, Keys: app.ShardKeys, Replicas: 1,
	})
	t.Cleanup(rt.Close)
	if err := rt.LoadFrom(ref); err != nil {
		t.Fatalf("load: %v", err)
	}
	groups := rt.Groups()
	if groups == nil {
		t.Fatal("router reports no groups")
	}

	c := &reshardChunker{t: t, seed: seed, ref: ref, rt: rt,
		rng: rand.New(rand.NewSource(seed + 404_404_404))}

	c.run("pre-split", nOps/4)

	// Writes acked during the copy phase are the ones at risk: they exist on
	// the source primary (about to crash) and in the staged double-write
	// buffer (which must carry them through the flip).
	wroteInCopy := false
	orchestrate(t, rt, func() error { return rt.Split(0) }, func(phase string) {
		switch phase {
		case "copy":
			wroteInCopy = c.run("during copy", nOps/4)
		case "flip":
			// Copy done, routing not yet flipped: kill the source primary.
			groups[0].CrashPrimary()
		}
	})
	if got := rt.Shards(); got != 3 {
		t.Fatalf("shards after split: %d, want 3", got)
	}

	// The crashed group was replaced wholesale at the flip; the rest of the
	// workload — reads chasing every row inserted before and during the
	// migration — must still match the single server exactly.
	c.run("post-crash", nOps/2)

	st := rt.MigrationStats()
	if st.Splits != 1 || st.RowsCopied == 0 {
		t.Fatalf("migration stats %+v: split did not move data", st)
	}
	if wroteInCopy && st.DoubleWrites == 0 {
		t.Fatalf("seed %d: inserts ran during the copy phase but none was double-written", seed)
	}
	if !wroteInCopy {
		t.Logf("seed %d: no insert landed in the copy window; crash case ran without staged writes", seed)
	}
}
