package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
)

// loadReshardTable loads the reshard figure's working set into ref: a keyed
// table at a few rows per page, so random point reads over it touch far
// more pages than the figure's deliberately tiny buffer pool holds and the
// per-shard disk is the bottleneck — the regime where splitting a hot
// shard genuinely adds capacity.
func loadReshardTable(ref *server.Server, rows, groups int) error {
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "grp", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := ref.CreateTable("load", schema, 8); err != nil {
		return err
	}
	for i := 1; i <= rows; i++ {
		if err := ref.InsertRow("load", []any{int64(i), int64(i % groups), fmt.Sprintf("v%d", i)}); err != nil {
			return err
		}
	}
	ref.FinishLoad()
	return ref.AddIndex("load", "id", true)
}

// reshardProfile is SYS1 with the IO path made the bottleneck: a single
// slow spindle and a buffer pool far smaller than the working set, so
// nearly every point read rides the per-backend disk queue. Unlike CPU
// scan work — whose real host cost scales with the simulated cost and so
// depends on host parallelism — a queued page fault is almost pure
// simulated time, which keeps the capacity story faithful on any host.
func reshardProfile() server.Profile {
	p := server.SYS1()
	p.BufferPages = 64
	p.Disk.Spindles = 1
	p.Disk.TransferPerPage = 400 * time.Microsecond
	return p
}

// FigReshard — throughput timeline across a live hot-shard split. A
// closed-loop mixed workload (random point reads plus a trickle of
// inserts) drives a single hot disk-bound shard; a third of the way in,
// Split moves half its hash range onto a new backend while traffic keeps
// flowing — rows copied concurrently, acknowledged inserts double-written,
// routing flipped atomically under the migration barrier. The property
// under test is elasticity without downtime: the timeline may dip briefly
// around the flip but every window makes progress, no request fails, and
// sustained post-split throughput exceeds the pre-split plateau because
// each backend now serves half the key space with its own disk.
func (h *Harness) FigReshard() (*Figure, error) {
	const (
		rows    = 20000
		groups  = 50
		workers = 16
		seed    = 20110411
	)
	dur := 3 * time.Second
	windows := 24
	if h.Quick {
		dur = 1200 * time.Millisecond
		windows = 12
	}
	winDur := dur / time.Duration(windows)
	splitAt := windows / 3

	prof := reshardProfile()
	ref := server.New(prof, h.Scale)
	defer ref.Close()
	if err := loadReshardTable(ref, rows, groups); err != nil {
		return nil, fmt.Errorf("reshard: load: %w", err)
	}
	rt := shard.New(prof, h.Scale, shard.Options{
		Shards: 1, Keys: map[string]string{"load": "id"},
	})
	defer rt.Close()
	if err := rt.LoadFrom(ref); err != nil {
		return nil, fmt.Errorf("reshard: partition: %w", err)
	}
	rt.Warm()

	var ops, failed atomic.Int64
	var nextID atomic.Int64
	nextID.Store(10_000_000) // insert keys disjoint from the loaded rows
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var res query.Result
				if rng.Intn(10) == 0 {
					id := nextID.Add(1)
					res = rt.Exec(query.Req("reshard", "insert into load values (?, ?, ?)",
						[]any{id, int64(rng.Intn(groups)), fmt.Sprintf("w%d", id)}))
				} else {
					res = rt.Exec(query.Req("reshard", "select val from load where id = ?",
						[]any{int64(1 + rng.Intn(rows))}))
				}
				if res.Err != nil {
					failed.Add(1)
				}
				ops.Add(1)
			}
		}()
	}

	// Sample the timeline; at the splitAt boundary kick off the migration on
	// its own goroutine so the copy, double-write, and flip phases all land
	// inside the measured windows.
	rates := make([]float64, 0, windows)
	gens := make([]int64, 0, windows)
	splitErr := make(chan error, 1)
	prev := int64(0)
	for wnd := 0; wnd < windows; wnd++ {
		if wnd == splitAt {
			go func() { splitErr <- rt.Split(0) }()
		}
		time.Sleep(winDur)
		cur := ops.Load()
		rates = append(rates, float64(cur-prev)/winDur.Seconds())
		gens = append(gens, rt.Ranges().Generation())
		prev = cur
	}
	close(stop)
	wg.Wait()
	if err := <-splitErr; err != nil {
		return nil, fmt.Errorf("reshard: split: %w", err)
	}

	// Elasticity without downtime: nothing failed, every window made
	// progress, and the post-split plateau sits above the pre-split one.
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("reshard: %d requests failed during the timeline (seed %d)", n, seed)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("reshard: window %d served nothing: the split stalled the cluster", i)
		}
	}
	pre := mean(rates[:splitAt])
	post := mean(rates[len(rates)-windows/3:])
	if post <= pre*1.1 {
		return nil, fmt.Errorf("reshard: post-split throughput %.0f req/s not above pre-split %.0f req/s", post, pre)
	}
	st := rt.MigrationStats()
	if st.Splits != 1 || st.RowsCopied == 0 {
		return nil, fmt.Errorf("reshard: migration stats %+v: split moved no data", st)
	}

	f := &Figure{
		ID:     "Reshard",
		Title:  "Throughput timeline across a live hot-shard split",
		XLabel: "Window",
		YLabel: "Throughput (req/s) / range-map generation",
	}
	thr := Series{Label: "throughput req/s"}
	gen := Series{Label: "generation"}
	for i, r := range rates {
		thr.Points = append(thr.Points, Point{X: i, Y: r})
		gen.Points = append(gen.Points, Point{X: i, Y: float64(gens[i])})
	}
	f.Series = []Series{thr, gen}
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s (1 spindle, %d-page pool), %d rows, %d closed-loop workers (90%% point reads / 10%% inserts), seed %d",
			prof.Name, prof.BufferPages, rows, workers, seed),
		fmt.Sprintf("Split launched at window %d of %d (%v windows); generation %d after flip",
			splitAt, windows, winDur, st.Generation),
		fmt.Sprintf("Migration: %d rows copied, %d double-written inserts, %d shards after split",
			st.RowsCopied, st.DoubleWrites, rt.Shards()),
		fmt.Sprintf("Pre-split mean %.0f req/s, post-split mean %.0f req/s (%.2fx); zero failed requests",
			pre, post, post/pre),
		"Every window makes progress across copy, double-write, and flip: the dip is bounded and capacity rises after the split")
	return f, nil
}
