// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Figures 8–15 and Table I. Each figure function returns
// the measured series in the paper's coordinates; Render prints them as
// aligned text tables. Absolute times differ from the paper (the substrate
// is a simulator, see DESIGN.md), but the shapes — who wins, crossover
// points, saturation behaviour — are the reproduction targets recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/server"
)

// Harness runs measurements, caching loaded servers per (app, profile).
type Harness struct {
	// Scale is the wall-clock scale factor for simulated latencies.
	Scale float64
	// Quick shrinks the sweeps (used by `go test -bench` so a full bench
	// run stays tractable); the full sweeps match the paper's axes.
	Quick bool

	servers map[string]*loadedServer
	procs   map[string]*procPair
}

type loadedServer struct {
	srv *server.Server
	app *apps.App
}

type procPair struct {
	orig  *ir.Proc
	trans *ir.Proc
	rep   *core.Report
	// Slot-compiled forms, compiled once per app and reused across every
	// measurement so the timed loops never pay compilation.
	origProg  *interp.Program
	transProg *interp.Program
}

// NewHarness returns a harness with the default scale (0.2: one simulated
// microsecond costs 200ns of wall clock).
func NewHarness() *Harness {
	return &Harness{Scale: 0.2, servers: map[string]*loadedServer{}, procs: map[string]*procPair{}}
}

// Measurement is one (app, config) data point.
type Measurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	// Original and Transformed are wall-clock seconds, rescaled to
	// simulated seconds (i.e. divided by Scale) so numbers are comparable
	// across scale settings.
	Original    float64
	Transformed float64
}

// Speedup is Original/Transformed.
func (m Measurement) Speedup() float64 {
	if m.Transformed == 0 {
		return 0
	}
	return m.Original / m.Transformed
}

func (h *Harness) proc(app *apps.App) (*procPair, error) {
	if p, ok := h.procs[app.Name]; ok {
		return p, nil
	}
	orig := app.Proc()
	trans, rep, err := core.Transform(orig, core.Options{
		Registry:    app.Registry(),
		SplitNested: true,
	})
	if err != nil {
		return nil, fmt.Errorf("transform %s: %w", app.Name, err)
	}
	if rep.TransformedCount() == 0 {
		return nil, fmt.Errorf("transform %s: no site transformed (%+v)", app.Name, rep.Sites)
	}
	p := &procPair{
		orig: orig, trans: trans, rep: rep,
		origProg: interp.Compile(orig), transProg: interp.Compile(trans),
	}
	h.procs[app.Name] = p
	return p, nil
}

func (h *Harness) server(app *apps.App, prof server.Profile) (*server.Server, error) {
	key := app.Name + "/" + prof.Name
	if !app.MutatesData {
		if ls, ok := h.servers[key]; ok {
			ls.srv.Clock.SetScale(h.Scale)
			return ls.srv, nil
		}
	}
	srv := server.New(prof, h.Scale)
	if err := app.Setup(srv, apps.SeededRand()); err != nil {
		srv.Close()
		return nil, fmt.Errorf("setup %s: %w", app.Name, err)
	}
	if !app.MutatesData {
		h.servers[key] = &loadedServer{srv: srv, app: app}
	}
	return srv, nil
}

// Close shuts down all cached servers.
func (h *Harness) Close() {
	for _, ls := range h.servers {
		ls.srv.Close()
	}
	h.servers = map[string]*loadedServer{}
}

// runInfo captures one kernel run's service and server counters.
type runInfo struct {
	NetRequests   int64
	BatchesIssued int64
	AvgBatchSize  float64
}

// runKernel executes one compiled kernel against a freshly warmed (or
// cooled) server, with a query service built by mkSvc, and returns the
// result, the elapsed simulated seconds, and the run's counters. It is the
// single measurement path shared by Measure and MeasureBatched, so every
// configuration (seeding, warm-up, scale handling) stays identical across
// submission modes.
func (h *Harness) runKernel(app *apps.App, prof server.Profile, p *interp.Program,
	iterations int, warm bool, mkSvc func(srv *server.Server) *exec.Service) (*interp.Result, float64, runInfo, error) {

	var ri runInfo
	srv, err := h.server(app, prof)
	if err != nil {
		return nil, 0, ri, err
	}
	if app.MutatesData {
		defer srv.Close()
	}
	if warm {
		srv.Warm()
	} else {
		srv.ColdStart()
	}
	svc := mkSvc(srv)
	defer svc.Close()
	in := interp.New(app.Registry(), svc)
	if app.Bind != nil {
		app.Bind(in, apps.SeededRand())
	}
	args := app.Args(iterations, rand.New(rand.NewSource(int64(iterations)+7)))
	before := srv.Stats().NetRequests
	start := time.Now()
	res, err := in.RunProgram(p, args)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return nil, 0, ri, fmt.Errorf("run %s: %w", p.Proc().Name, err)
	}
	svc.Close() // drain so every round trip is accounted before reading stats
	ri.NetRequests = srv.Stats().NetRequests - before
	ri.BatchesIssued, ri.AvgBatchSize = svc.BatchStats()
	if h.Scale > 0 {
		elapsed /= h.Scale
	}
	return res, elapsed, ri, nil
}

// Measure times the original and transformed kernels under one
// configuration, verifying that both produce identical results.
func (h *Harness) Measure(app *apps.App, prof server.Profile, threads, iterations int, warm bool) (Measurement, error) {
	m := Measurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}

	origRes, origSec, _, err := h.runKernel(app, prof, pp.origProg, iterations, warm,
		func(srv *server.Server) *exec.Service { return exec.NewService(0, srv.Exec) })
	if err != nil {
		return m, err
	}
	transRes, transSec, _, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service { return exec.NewService(threads, srv.Exec) })
	if err != nil {
		return m, err
	}
	if err := sameResult(origRes, transRes); err != nil {
		return m, fmt.Errorf("%s: transformed program produced different results: %w", app.Name, err)
	}
	m.Original, m.Transformed = origSec, transSec
	return m, nil
}

// BatchMeasurement is one (app, config) data point comparing synchronous
// (original program), asynchronous (transformed, per-query submission) and
// batched (transformed, coalesced submission) execution.
type BatchMeasurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	MaxBatch   int
	// Sync, Async and Batched are simulated seconds (see Measurement).
	Sync    float64
	Async   float64
	Batched float64
	// BatchesIssued / AvgBatchSize report the executor's coalescing
	// activity during the batched run.
	BatchesIssued int64
	AvgBatchSize  float64
	// NetRequestsAsync / NetRequestsBatched count the server round trips
	// each submission mode paid — the per-request overhead batching
	// amortizes.
	NetRequestsAsync   int64
	NetRequestsBatched int64
}

// MeasureBatched times the original kernel synchronously and the transformed
// kernel both per-query (async) and batched, verifying that all three
// produce identical results.
func (h *Harness) MeasureBatched(app *apps.App, prof server.Profile, threads, iterations int, warm bool, maxBatch int) (BatchMeasurement, error) {
	m := BatchMeasurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations, MaxBatch: maxBatch,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}

	syncRes, syncSec, _, err := h.runKernel(app, prof, pp.origProg, iterations, warm,
		func(srv *server.Server) *exec.Service { return exec.NewService(0, srv.Exec) })
	if err != nil {
		return m, err
	}
	asyncRes, asyncSec, asyncInfo, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service { return exec.NewService(threads, srv.Exec) })
	if err != nil {
		return m, err
	}
	batchRes, batchSec, batchInfo, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			// The linger window is wall time; scale it like every simulated
			// latency so batched series stay comparable across -scale.
			linger := time.Duration(float64(batch.DefaultLinger) * h.Scale)
			return batch.NewService(threads, srv.Exec, srv.ExecBatch,
				batch.Options{MaxBatch: maxBatch, Linger: linger})
		})
	if err != nil {
		return m, err
	}
	m.NetRequestsAsync = asyncInfo.NetRequests
	m.NetRequestsBatched = batchInfo.NetRequests
	m.BatchesIssued, m.AvgBatchSize = batchInfo.BatchesIssued, batchInfo.AvgBatchSize
	if err := sameResult(syncRes, asyncRes); err != nil {
		return m, fmt.Errorf("%s: async results diverge from sync: %w", app.Name, err)
	}
	if err := sameResult(asyncRes, batchRes); err != nil {
		return m, fmt.Errorf("%s: batched results diverge from async: %w", app.Name, err)
	}
	m.Sync, m.Async, m.Batched = syncSec, asyncSec, batchSec
	return m, nil
}

func sameResult(a, b *interp.Result) error {
	if len(a.Returned) != len(b.Returned) {
		return fmt.Errorf("return arity %d vs %d", len(a.Returned), len(b.Returned))
	}
	for i := range a.Returned {
		if !interp.Equal(a.Returned[i], b.Returned[i]) {
			return fmt.Errorf("return %d: %v vs %v", i,
				interp.Format(a.Returned[i]), interp.Format(b.Returned[i]))
		}
	}
	if a.Output != b.Output {
		return fmt.Errorf("output streams differ")
	}
	return nil
}

// pick returns full when the harness runs full-size, quick otherwise.
func (h *Harness) pick(full, quick []int) []int {
	if h.Quick {
		return quick
	}
	return full
}
