// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Figures 8–15 and Table I. Each figure function returns
// the measured series in the paper's coordinates; Render prints them as
// aligned text tables. Absolute times differ from the paper (the substrate
// is a simulator, see DESIGN.md), but the shapes — who wins, crossover
// points, saturation behaviour — are the reproduction targets recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

// Harness runs measurements, caching loaded servers and shard routers per
// (app, profile[, shards]).
type Harness struct {
	// Scale is the wall-clock scale factor for simulated latencies.
	Scale float64
	// Quick shrinks the sweeps (used by `go test -bench` so a full bench
	// run stays tractable); the full sweeps match the paper's axes.
	Quick bool
	// Seed offsets the per-run workload argument generator (cmd/experiments
	// -seed / ASYNCQ_SEED). Zero keeps the historical fixed seeding, so
	// published series stay reproducible by default.
	Seed int64
	// Durability restricts FigDurability's fsync-policy sweep to one WAL
	// commit mode ("off", "group" or "strict"); empty sweeps all three.
	Durability string
	// Obs, when set, traces every measured kernel run: each submission
	// opens a request root span (queue wait, batch coalescing, per-shard
	// fan-out, WAL commit) recorded into the tracer's registry. The record
	// path is designed to stay on in benchmarks; BenchmarkShardScaleTraced
	// holds it to a <5% budget against the untraced run.
	Obs *obs.Tracer

	servers map[string]*loadedServer
	routers map[string]*shard.Router
	procs   map[string]*procPair
}

type loadedServer struct {
	srv *server.Server
	app *apps.App
}

// target is the execution backend a kernel runs against: a single server or
// a shard router. Both expose cache control and the aggregate counters the
// measurements read.
type target interface {
	Warm()
	ColdStart()
	Stats() server.Stats
}

type procPair struct {
	orig  *ir.Proc
	trans *ir.Proc
	rep   *core.Report
	// Slot-compiled forms, compiled once per app and reused across every
	// measurement so the timed loops never pay compilation.
	origProg  *interp.Program
	transProg *interp.Program
}

// NewHarness returns a harness with the default scale (0.2: one simulated
// microsecond costs 200ns of wall clock).
func NewHarness() *Harness {
	return &Harness{
		Scale:   0.2,
		servers: map[string]*loadedServer{},
		routers: map[string]*shard.Router{},
		procs:   map[string]*procPair{},
	}
}

// Measurement is one (app, config) data point.
type Measurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	// Original and Transformed are wall-clock seconds, rescaled to
	// simulated seconds (i.e. divided by Scale) so numbers are comparable
	// across scale settings.
	Original    float64
	Transformed float64
}

// Speedup is Original/Transformed.
func (m Measurement) Speedup() float64 {
	if m.Transformed == 0 {
		return 0
	}
	return m.Original / m.Transformed
}

func (h *Harness) proc(app *apps.App) (*procPair, error) {
	if p, ok := h.procs[app.Name]; ok {
		return p, nil
	}
	orig := app.Proc()
	trans, rep, err := core.Transform(orig, core.Options{
		Registry:    app.Registry(),
		SplitNested: true,
	})
	if err != nil {
		return nil, fmt.Errorf("transform %s: %w", app.Name, err)
	}
	if rep.TransformedCount() == 0 {
		return nil, fmt.Errorf("transform %s: no site transformed (%+v)", app.Name, rep.Sites)
	}
	p := &procPair{
		orig: orig, trans: trans, rep: rep,
		origProg: interp.Compile(orig), transProg: interp.Compile(trans),
	}
	h.procs[app.Name] = p
	return p, nil
}

func (h *Harness) server(app *apps.App, prof server.Profile) (*server.Server, error) {
	key := app.Name + "/" + prof.Name
	if !app.MutatesData {
		if ls, ok := h.servers[key]; ok {
			ls.srv.Clock.SetScale(h.Scale)
			return ls.srv, nil
		}
	}
	srv := server.New(prof, h.Scale)
	if err := app.Setup(srv, apps.SeededRand()); err != nil {
		srv.Close()
		return nil, fmt.Errorf("setup %s: %w", app.Name, err)
	}
	if !app.MutatesData {
		h.servers[key] = &loadedServer{srv: srv, app: app}
	}
	return srv, nil
}

// router returns a shard router over `shards` backends — each fronted by
// `replicas` read replicas when replicas > 0 — loaded with the app's data,
// cached per (app, profile, shards, replicas) for non-mutating apps.
func (h *Harness) router(app *apps.App, prof server.Profile, shards, replicas int) (*shard.Router, error) {
	key := fmt.Sprintf("%s/%s/%d/r%d", app.Name, prof.Name, shards, replicas)
	if !app.MutatesData {
		if r, ok := h.routers[key]; ok {
			r.SetScale(h.Scale)
			return r, nil
		}
	}
	// The partitioner reads a loaded reference server; for cacheable apps the
	// single-server cache already holds one, so sharded and single-server
	// measurements also share the load cost.
	ref, err := h.server(app, prof)
	if err != nil {
		return nil, err
	}
	if app.MutatesData {
		defer ref.Close()
	}
	r := shard.New(prof, h.Scale, shard.Options{Shards: shards, Keys: app.ShardKeys, Replicas: replicas})
	if err := r.LoadFrom(ref); err != nil {
		r.Close()
		return nil, fmt.Errorf("shard load %s: %w", app.Name, err)
	}
	if !app.MutatesData {
		h.routers[key] = r
	}
	return r, nil
}

// Close shuts down all cached servers and routers.
func (h *Harness) Close() {
	for _, ls := range h.servers {
		ls.srv.Close()
	}
	h.servers = map[string]*loadedServer{}
	for _, r := range h.routers {
		r.Close()
	}
	h.routers = map[string]*shard.Router{}
}

// runInfo captures one kernel run's service and server counters.
type runInfo struct {
	NetRequests   int64
	BatchesIssued int64
	AvgBatchSize  float64
}

// trace wires the harness tracer (if any) into a measurement service: a
// no-op pass-through when h.Obs is nil. Spans ride the requests themselves,
// so the service's configured runners carry them into the backend.
func (h *Harness) trace(svc *exec.Service) *exec.Service {
	if h.Obs != nil {
		svc.EnableTracing(h.Obs)
	}
	return svc
}

// runKernel executes one compiled kernel against a freshly warmed (or
// cooled) server, with a query service built by mkSvc, and returns the
// result, the elapsed simulated seconds, and the run's counters. It is the
// single measurement path shared by Measure and MeasureBatched, so every
// configuration (seeding, warm-up, scale handling) stays identical across
// submission modes.
func (h *Harness) runKernel(app *apps.App, prof server.Profile, p *interp.Program,
	iterations int, warm bool, mkSvc func(srv *server.Server) *exec.Service) (*interp.Result, float64, runInfo, error) {

	srv, err := h.server(app, prof)
	if err != nil {
		return nil, 0, runInfo{}, err
	}
	if app.MutatesData {
		defer srv.Close()
	}
	return h.runOn(app, srv, p, iterations, warm, func() *exec.Service { return mkSvc(srv) })
}

// runOn is runKernel against an already-acquired target (single server or
// shard router); mkSvc builds the query service after the cache state is
// set, exactly as the single-server path always did.
func (h *Harness) runOn(app *apps.App, tgt target, p *interp.Program,
	iterations int, warm bool, mkSvc func() *exec.Service) (*interp.Result, float64, runInfo, error) {

	var ri runInfo
	if warm {
		tgt.Warm()
	} else {
		tgt.ColdStart()
	}
	svc := mkSvc()
	defer svc.Close()
	in := interp.New(app.Registry(), svc)
	if app.Bind != nil {
		app.Bind(in, apps.SeededRand())
	}
	args := app.Args(iterations, rand.New(rand.NewSource(h.Seed+int64(iterations)+7)))
	before := tgt.Stats().NetRequests
	start := time.Now()
	res, err := in.RunProgram(p, args)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return nil, 0, ri, fmt.Errorf("run %s: %w", p.Proc().Name, err)
	}
	svc.Close() // drain so every round trip is accounted before reading stats
	ri.NetRequests = tgt.Stats().NetRequests - before
	ri.BatchesIssued, ri.AvgBatchSize = svc.BatchStats()
	if h.Scale > 0 {
		elapsed /= h.Scale
	}
	return res, elapsed, ri, nil
}

// Measure times the original and transformed kernels under one
// configuration, verifying that both produce identical results.
func (h *Harness) Measure(app *apps.App, prof server.Profile, threads, iterations int, warm bool) (Measurement, error) {
	m := Measurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}

	origRes, origSec, _, err := h.runKernel(app, prof, pp.origProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			return h.trace(exec.NewService(0, srv.Exec))
		})
	if err != nil {
		return m, err
	}
	transRes, transSec, _, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			return h.trace(exec.NewService(threads, srv.Exec))
		})
	if err != nil {
		return m, err
	}
	if err := sameResult(origRes, transRes); err != nil {
		return m, fmt.Errorf("%s: transformed program produced different results: %w", app.Name, err)
	}
	m.Original, m.Transformed = origSec, transSec
	return m, nil
}

// BatchMeasurement is one (app, config) data point comparing synchronous
// (original program), asynchronous (transformed, per-query submission) and
// batched (transformed, coalesced submission) execution.
type BatchMeasurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	MaxBatch   int
	// Sync, Async and Batched are simulated seconds (see Measurement).
	Sync    float64
	Async   float64
	Batched float64
	// BatchesIssued / AvgBatchSize report the executor's coalescing
	// activity during the batched run.
	BatchesIssued int64
	AvgBatchSize  float64
	// NetRequestsAsync / NetRequestsBatched count the server round trips
	// each submission mode paid — the per-request overhead batching
	// amortizes.
	NetRequestsAsync   int64
	NetRequestsBatched int64
}

// MeasureBatched times the original kernel synchronously and the transformed
// kernel both per-query (async) and batched, verifying that all three
// produce identical results.
func (h *Harness) MeasureBatched(app *apps.App, prof server.Profile, threads, iterations int, warm bool, maxBatch int) (BatchMeasurement, error) {
	m := BatchMeasurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations, MaxBatch: maxBatch,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}

	syncRes, syncSec, _, err := h.runKernel(app, prof, pp.origProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			return h.trace(exec.NewService(0, srv.Exec))
		})
	if err != nil {
		return m, err
	}
	asyncRes, asyncSec, asyncInfo, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			return h.trace(exec.NewService(threads, srv.Exec))
		})
	if err != nil {
		return m, err
	}
	batchRes, batchSec, batchInfo, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			// The linger window is wall time; scale it like every simulated
			// latency so batched series stay comparable across -scale.
			linger := time.Duration(float64(batch.DefaultLinger) * h.Scale)
			return h.trace(batch.NewService(threads, srv.Exec, srv.ExecBatch,
				batch.Options{MaxBatch: maxBatch, Linger: linger}))
		})
	if err != nil {
		return m, err
	}
	m.NetRequestsAsync = asyncInfo.NetRequests
	m.NetRequestsBatched = batchInfo.NetRequests
	m.BatchesIssued, m.AvgBatchSize = batchInfo.BatchesIssued, batchInfo.AvgBatchSize
	if err := sameResult(syncRes, asyncRes); err != nil {
		return m, fmt.Errorf("%s: async results diverge from sync: %w", app.Name, err)
	}
	if err := sameResult(asyncRes, batchRes); err != nil {
		return m, fmt.Errorf("%s: batched results diverge from async: %w", app.Name, err)
	}
	m.Sync, m.Async, m.Batched = syncSec, asyncSec, batchSec
	return m, nil
}

func sameResult(a, b *interp.Result) error {
	if len(a.Returned) != len(b.Returned) {
		return fmt.Errorf("return arity %d vs %d", len(a.Returned), len(b.Returned))
	}
	for i := range a.Returned {
		if !interp.Equal(a.Returned[i], b.Returned[i]) {
			return fmt.Errorf("return %d: %v vs %v", i,
				interp.Format(a.Returned[i]), interp.Format(b.Returned[i]))
		}
	}
	if a.Output != b.Output {
		return fmt.Errorf("output streams differ")
	}
	return nil
}

// ShardMeasurement is one (app, config) data point comparing single-server
// batched execution against a sharded cluster running the same batched
// workload.
type ShardMeasurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	MaxBatch   int
	Shards     int
	// Single and Sharded are simulated seconds for the transformed, batched
	// kernel on one server vs the N-shard cluster.
	Single  float64
	Sharded float64
	// Throughput is Iterations/Sharded: logical queries per simulated second
	// on the cluster (the shard-scale figure's y axis).
	Throughput float64
	// NetRequestsSingle / NetRequestsSharded count client-visible round
	// trips; sharding splits batches, so the sharded count is higher while
	// the trips run in parallel.
	NetRequestsSingle  int64
	NetRequestsSharded int64
	// ShardQueries is the per-shard logical statement count of the sharded
	// run — the routing balance.
	ShardQueries []int64
}

// Speedup is Single/Sharded.
func (m ShardMeasurement) Speedup() float64 {
	if m.Sharded == 0 {
		return 0
	}
	return m.Single / m.Sharded
}

// speedScore ranks repeated measurements for BestOf.
func (m ShardMeasurement) speedScore() float64 { return m.Throughput }

// MeasureSharded times the transformed kernel with batched submission on a
// single server and on a cluster of `shards` backends, verifying that both
// produce identical results.
func (h *Harness) MeasureSharded(app *apps.App, prof server.Profile,
	threads, iterations int, warm bool, maxBatch, shards int) (ShardMeasurement, error) {

	m := ShardMeasurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations,
		MaxBatch: maxBatch, Shards: shards,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}
	// The linger window is wall time; scale it like every simulated latency.
	linger := time.Duration(float64(batch.DefaultLinger) * h.Scale)
	opts := batch.Options{MaxBatch: maxBatch, Linger: linger}

	singleRes, singleSec, singleInfo, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			return h.trace(batch.NewService(threads, srv.Exec, srv.ExecBatch, opts))
		})
	if err != nil {
		return m, err
	}

	rt, err := h.router(app, prof, shards, 0)
	if err != nil {
		return m, err
	}
	if app.MutatesData {
		defer rt.Close()
	}
	// Shard-aware coalescing: batches form per target shard, so the cluster
	// pays the same number of round trips as the single server.
	shOpts := opts
	shOpts.GroupFn = rt.BatchGroup
	beforeShard := rt.ShardStats()
	shardRes, shardSec, shardInfo, err := h.runOn(app, rt, pp.transProg, iterations, warm,
		func() *exec.Service {
			return h.trace(batch.NewService(threads, rt.Exec, rt.ExecBatch, shOpts))
		})
	if err != nil {
		return m, err
	}
	if err := sameResult(singleRes, shardRes); err != nil {
		return m, fmt.Errorf("%s: sharded results diverge from single-server: %w", app.Name, err)
	}
	m.Single, m.Sharded = singleSec, shardSec
	if shardSec > 0 {
		m.Throughput = float64(iterations) / shardSec
	}
	m.NetRequestsSingle = singleInfo.NetRequests
	m.NetRequestsSharded = shardInfo.NetRequests
	for i, s := range rt.ShardStats() {
		q := s.Queries
		if i < len(beforeShard) {
			q -= beforeShard[i].Queries
		}
		m.ShardQueries = append(m.ShardQueries, q)
	}
	return m, nil
}

// ReplicaMeasurement is one (app, config) data point comparing single-server
// batched execution against a sharded cluster whose shards are replica
// groups (one primary + Replicas read copies each).
type ReplicaMeasurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	MaxBatch   int
	Shards     int
	Replicas   int
	// Single and Replicated are simulated seconds for the transformed,
	// batched kernel on one server vs the replicated cluster.
	Single     float64
	Replicated float64
	// Throughput is Iterations/Replicated: logical queries per simulated
	// second on the replicated cluster (the replica-scale figure's y axis).
	Throughput float64
	// NetRequestsSingle / NetRequestsReplicated count client-visible round
	// trips. Read batches ride one trip to one replica, so a read-dominated
	// workload pays the single-server count; only write replication fans
	// out.
	NetRequestsSingle     int64
	NetRequestsReplicated int64
	// ReplicaReads is, per shard, the reads each replica served during the
	// run — the load-balancing evidence.
	ReplicaReads [][]int64
}

// Speedup is Single/Replicated.
func (m ReplicaMeasurement) Speedup() float64 {
	if m.Replicated == 0 {
		return 0
	}
	return m.Single / m.Replicated
}

// speedScore ranks repeated measurements for BestOf.
func (m ReplicaMeasurement) speedScore() float64 { return m.Throughput }

// MeasureReplicated times the transformed kernel with batched submission on
// a single server and on a cluster of `shards` replica groups of `replicas`
// read copies each, verifying that both produce identical results.
func (h *Harness) MeasureReplicated(app *apps.App, prof server.Profile,
	threads, iterations int, warm bool, maxBatch, shards, replicas int) (ReplicaMeasurement, error) {

	m := ReplicaMeasurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations,
		MaxBatch: maxBatch, Shards: shards, Replicas: replicas,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}
	linger := time.Duration(float64(batch.DefaultLinger) * h.Scale)
	opts := batch.Options{MaxBatch: maxBatch, Linger: linger}

	singleRes, singleSec, singleInfo, err := h.runKernel(app, prof, pp.transProg, iterations, warm,
		func(srv *server.Server) *exec.Service {
			return h.trace(batch.NewService(threads, srv.Exec, srv.ExecBatch, opts))
		})
	if err != nil {
		return m, err
	}

	rt, err := h.router(app, prof, shards, replicas)
	if err != nil {
		return m, err
	}
	if app.MutatesData {
		defer rt.Close()
	}
	shOpts := opts
	shOpts.GroupFn = rt.BatchGroup
	beforeReads := rt.ReplicaReads()
	replRes, replSec, replInfo, err := h.runOn(app, rt, pp.transProg, iterations, warm,
		func() *exec.Service {
			return h.trace(batch.NewService(threads, rt.Exec, rt.ExecBatch, shOpts))
		})
	if err != nil {
		return m, err
	}
	if err := sameResult(singleRes, replRes); err != nil {
		return m, fmt.Errorf("%s: replicated results diverge from single-server: %w", app.Name, err)
	}
	m.Single, m.Replicated = singleSec, replSec
	if replSec > 0 {
		m.Throughput = float64(iterations) / replSec
	}
	m.NetRequestsSingle = singleInfo.NetRequests
	m.NetRequestsReplicated = replInfo.NetRequests
	for s, reads := range rt.ReplicaReads() {
		row := make([]int64, len(reads))
		copy(row, reads)
		if beforeReads != nil && s < len(beforeReads) {
			for i := range row {
				row[i] -= beforeReads[s][i]
			}
		}
		m.ReplicaReads = append(m.ReplicaReads, row)
	}
	return m, nil
}

// pick returns full when the harness runs full-size, quick otherwise.
func (h *Harness) pick(full, quick []int) []int {
	if h.Quick {
		return quick
	}
	return full
}
