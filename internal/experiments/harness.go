// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Figures 8–15 and Table I. Each figure function returns
// the measured series in the paper's coordinates; Render prints them as
// aligned text tables. Absolute times differ from the paper (the substrate
// is a simulator, see DESIGN.md), but the shapes — who wins, crossover
// points, saturation behaviour — are the reproduction targets recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/server"
)

// Harness runs measurements, caching loaded servers per (app, profile).
type Harness struct {
	// Scale is the wall-clock scale factor for simulated latencies.
	Scale float64
	// Quick shrinks the sweeps (used by `go test -bench` so a full bench
	// run stays tractable); the full sweeps match the paper's axes.
	Quick bool

	servers map[string]*loadedServer
	procs   map[string]*procPair
}

type loadedServer struct {
	srv *server.Server
	app *apps.App
}

type procPair struct {
	orig  *ir.Proc
	trans *ir.Proc
	rep   *core.Report
	// Slot-compiled forms, compiled once per app and reused across every
	// measurement so the timed loops never pay compilation.
	origProg  *interp.Program
	transProg *interp.Program
}

// NewHarness returns a harness with the default scale (0.2: one simulated
// microsecond costs 200ns of wall clock).
func NewHarness() *Harness {
	return &Harness{Scale: 0.2, servers: map[string]*loadedServer{}, procs: map[string]*procPair{}}
}

// Measurement is one (app, config) data point.
type Measurement struct {
	App        string
	Profile    string
	Threads    int
	Warm       bool
	Iterations int
	// Original and Transformed are wall-clock seconds, rescaled to
	// simulated seconds (i.e. divided by Scale) so numbers are comparable
	// across scale settings.
	Original    float64
	Transformed float64
}

// Speedup is Original/Transformed.
func (m Measurement) Speedup() float64 {
	if m.Transformed == 0 {
		return 0
	}
	return m.Original / m.Transformed
}

func (h *Harness) proc(app *apps.App) (*procPair, error) {
	if p, ok := h.procs[app.Name]; ok {
		return p, nil
	}
	orig := app.Proc()
	trans, rep, err := core.Transform(orig, core.Options{
		Registry:    app.Registry(),
		SplitNested: true,
	})
	if err != nil {
		return nil, fmt.Errorf("transform %s: %w", app.Name, err)
	}
	if rep.TransformedCount() == 0 {
		return nil, fmt.Errorf("transform %s: no site transformed (%+v)", app.Name, rep.Sites)
	}
	p := &procPair{
		orig: orig, trans: trans, rep: rep,
		origProg: interp.Compile(orig), transProg: interp.Compile(trans),
	}
	h.procs[app.Name] = p
	return p, nil
}

func (h *Harness) server(app *apps.App, prof server.Profile) (*server.Server, error) {
	key := app.Name + "/" + prof.Name
	if !app.MutatesData {
		if ls, ok := h.servers[key]; ok {
			ls.srv.Clock.SetScale(h.Scale)
			return ls.srv, nil
		}
	}
	srv := server.New(prof, h.Scale)
	if err := app.Setup(srv, apps.SeededRand()); err != nil {
		srv.Close()
		return nil, fmt.Errorf("setup %s: %w", app.Name, err)
	}
	if !app.MutatesData {
		h.servers[key] = &loadedServer{srv: srv, app: app}
	}
	return srv, nil
}

// Close shuts down all cached servers.
func (h *Harness) Close() {
	for _, ls := range h.servers {
		ls.srv.Close()
	}
	h.servers = map[string]*loadedServer{}
}

// Measure times the original and transformed kernels under one
// configuration, verifying that both produce identical results.
func (h *Harness) Measure(app *apps.App, prof server.Profile, threads, iterations int, warm bool) (Measurement, error) {
	m := Measurement{
		App: app.Name, Profile: prof.Name,
		Threads: threads, Warm: warm, Iterations: iterations,
	}
	pp, err := h.proc(app)
	if err != nil {
		return m, err
	}
	reg := app.Registry()

	runOne := func(p *interp.Program, workers int) (*interp.Result, float64, error) {
		srv, err := h.server(app, prof)
		if err != nil {
			return nil, 0, err
		}
		if app.MutatesData {
			defer srv.Close()
		}
		if warm {
			srv.Warm()
		} else {
			srv.ColdStart()
		}
		svc := exec.NewService(workers, srv.Exec)
		defer svc.Close()
		in := interp.New(reg, svc)
		if app.Bind != nil {
			app.Bind(in, apps.SeededRand())
		}
		args := app.Args(iterations, rand.New(rand.NewSource(int64(iterations)+7)))
		start := time.Now()
		res, err := in.RunProgram(p, args)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return nil, 0, fmt.Errorf("run %s: %w", p.Proc().Name, err)
		}
		if h.Scale > 0 {
			elapsed /= h.Scale
		}
		return res, elapsed, nil
	}

	origRes, origSec, err := runOne(pp.origProg, 0)
	if err != nil {
		return m, err
	}
	transRes, transSec, err := runOne(pp.transProg, threads)
	if err != nil {
		return m, err
	}
	if err := sameResult(origRes, transRes); err != nil {
		return m, fmt.Errorf("%s: transformed program produced different results: %w", app.Name, err)
	}
	m.Original, m.Transformed = origSec, transSec
	return m, nil
}

func sameResult(a, b *interp.Result) error {
	if len(a.Returned) != len(b.Returned) {
		return fmt.Errorf("return arity %d vs %d", len(a.Returned), len(b.Returned))
	}
	for i := range a.Returned {
		if !interp.Equal(a.Returned[i], b.Returned[i]) {
			return fmt.Errorf("return %d: %v vs %v", i,
				interp.Format(a.Returned[i]), interp.Format(b.Returned[i]))
		}
	}
	if a.Output != b.Output {
		return fmt.Errorf("output streams differ")
	}
	return nil
}

// pick returns full when the harness runs full-size, quick otherwise.
func (h *Harness) pick(full, quick []int) []int {
	if h.Quick {
		return quick
	}
	return full
}
