package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// DurabilityMeasurement is one (mode, threads) data point: acknowledged
// insert throughput of a replica group under a WAL commit-acknowledgement
// mode. The WAL counters record how the mode earned its number — strict pays
// one fsync per record, group shares fsyncs across concurrent commits, off
// acknowledges before any fsync.
type DurabilityMeasurement struct {
	Mode    string
	Threads int
	Inserts int
	// Seconds is the simulated time until every insert was acknowledged.
	Seconds    float64
	Throughput float64 // acknowledged inserts per simulated second
	Syncs      int64
	AvgGroup   float64 // records per fsync (the amortization evidence)
}

// speedScore ranks repeated measurements for BestOf.
func (m DurabilityMeasurement) speedScore() float64 { return m.Throughput }

// MeasureDurability times `inserts` acknowledged single-row inserts issued
// by `threads` concurrent clients against a one-replica group whose WAL runs
// in `mode`. Every acknowledgement honors the mode's contract — strict and
// group return only after the record's fsync, off returns immediately — so
// the throughput spread is exactly the price of the durability guarantee.
func (h *Harness) MeasureDurability(prof server.Profile, mode wal.Mode,
	threads, inserts int) (DurabilityMeasurement, error) {

	m := DurabilityMeasurement{Mode: mode.String(), Threads: threads, Inserts: inserts}
	// The seek-only disk model underprices fsync: a real log write also
	// waits for the platter to bring the target sector under the head
	// (~4ms on the paper-era drives), and that rotational settle is the
	// cost group commit exists to amortize. Charge it here so the policy
	// spread is the device's, not the model's; every other figure keeps
	// the settle-free device.
	prof.Disk.WriteSettle = 4 * time.Millisecond
	g := replica.NewGroup(prof, h.Scale, replica.Options{Replicas: 1, Durability: mode})
	defer g.Close()
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("events", schema, 0); err != nil {
		return m, err
	}
	g.FinishLoad()
	if err := g.AddIndex("events", "id", true); err != nil {
		return m, err
	}
	g.Warm()

	var next atomic.Int64
	errs := make([]error, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				id := next.Add(1)
				if id > int64(inserts) {
					return
				}
				if res := g.Exec(query.Req("d", "insert into events values (?, ?)",
					[]any{id, fmt.Sprintf("e%d", id)})); res.Err != nil {
					errs[w] = res.Err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return m, err
		}
	}
	if h.Scale > 0 {
		elapsed /= h.Scale
	}
	m.Seconds = elapsed
	if elapsed > 0 {
		m.Throughput = float64(inserts) / elapsed
	}
	st := g.WALStats()
	m.Syncs, m.AvgGroup = st.Syncs, st.AvgGroup()
	return m, nil
}

// FigDurability — acknowledged insert throughput vs fsync policy as client
// concurrency grows (the durability experiment beyond the paper: group
// commit is the write-side sibling of the paper's batched submission — one
// disk round trip amortized over every commit that arrived while the
// previous fsync was in flight). Expected shape: `strict` pays one WAL write
// per insert and stays flat; `group` starts at strict's cost and converges
// toward `off` as concurrency gives each fsync more passengers; `off` prices
// the guarantee-free upper bound.
func (h *Harness) FigDurability() (*Figure, error) {
	threads := h.pick([]int{1, 2, 5, 10, 20, 30}, []int{1, 5, 10})
	inserts := h.iters(1200, 200)
	f := &Figure{
		ID:     "Durability A",
		Title:  "Per-shard WAL: acknowledged insert throughput vs fsync policy",
		XLabel: "Number of client threads",
		YLabel: "Throughput (inserts/sec)",
	}
	modes := []wal.Mode{wal.Off, wal.Group, wal.Strict}
	if h.Durability != "" {
		m, err := wal.ParseMode(h.Durability)
		if err != nil {
			return nil, err
		}
		modes = []wal.Mode{m}
	}
	var lastGroup DurabilityMeasurement
	for _, mode := range modes {
		s := Series{Label: fmt.Sprintf("Durability: %s", mode)}
		for _, th := range threads {
			best, err := BestOf(3, DurabilityMeasurement.speedScore, func() (DurabilityMeasurement, error) {
				return h.MeasureDurability(server.SYS1(), mode, th, inserts)
			})
			if err != nil {
				return nil, fmt.Errorf("durability %s threads=%d: %w", mode, th, err)
			}
			s.Points = append(s.Points, Point{X: th, Y: best.Throughput})
			if mode == wal.Group {
				lastGroup = best
			}
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, Inserts: %d, Replicas: 1 (sync)", server.SYS1().Name, inserts))
	if lastGroup.Inserts > 0 {
		f.Notes = append(f.Notes,
			fmt.Sprintf("Group commit at %d threads: %d fsyncs for %d inserts (%.1f records/fsync)",
				lastGroup.Threads, lastGroup.Syncs, lastGroup.Inserts, lastGroup.AvgGroup))
	}
	return f, nil
}
