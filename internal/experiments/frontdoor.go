package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// FrontdoorMeasurement is one offered-load data point of the front-door
// figure: the loadgen report for an open-loop run at Percent% of the
// server's measured closed-loop capacity, through the real TCP wire
// protocol with a bounded admission budget.
type FrontdoorMeasurement struct {
	Percent  int // offered load as a percentage of measured capacity
	Capacity float64
	Report   net.LoadReport
}

// frontdoorFixture is a listening front door over the full simulated stack
// (replica group, WAL, wire protocol, admission control) preloaded with the
// point-read table the load generator drives.
type frontdoorFixture struct {
	g  *replica.Group
	fd *net.Server
}

// loadPointTable creates and fills the point-read "load" table the load
// generator drives (shared by the frontdoor and chaos fixtures).
func loadPointTable(g *replica.Group, rows int) error {
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("load", schema, 0); err != nil {
		return err
	}
	for i := 1; i <= rows; i++ {
		if err := g.InsertRow("load", []any{int64(i), fmt.Sprintf("v%d", i)}); err != nil {
			return err
		}
	}
	g.FinishLoad()
	return g.AddIndex("load", "id", true)
}

func (h *Harness) startFrontdoor(rows, inflight int) (*frontdoorFixture, error) {
	g := replica.NewGroup(server.SYS1(), h.Scale, replica.Options{
		Replicas:   1,
		Durability: wal.Group,
	})
	if err := loadPointTable(g, rows); err != nil {
		g.Close()
		return nil, err
	}
	g.Warm()
	g.SetMetrics(obs.NewRegistry())

	fd := net.NewServer(g, net.ServerOptions{MaxInflight: inflight})
	if err := fd.Listen("127.0.0.1:0"); err != nil {
		g.Close()
		return nil, err
	}
	return &frontdoorFixture{g: g, fd: fd}, nil
}

func (f *frontdoorFixture) Close() {
	f.fd.Close()
	f.g.Close()
}

func (f *frontdoorFixture) load(rows int) net.LoadOptions {
	n := int64(rows)
	return net.LoadOptions{
		Addr: f.fd.Addr(),
		Name: "point",
		SQL:  "select val from load where id = ?",
		ArgFn: func(r *rand.Rand) []any {
			return []any{r.Int63n(n) + 1}
		},
		Seed: 1,
	}
}

// FigFrontdoor — client-observed latency percentiles and shed rate vs
// offered load through the network front door. The server's capacity is
// first measured closed-loop with exactly as many connections as the
// admission budget (every slot busy, nothing shed); the sweep then offers
// open-loop load from half that capacity up to 2×. Below capacity the
// percentiles sit at service latency and nothing sheds; past capacity the
// admitted requests' p999 stays bounded — the queue the budget refuses to
// build is visible as the shed series instead of as unbounded latency.
// Unlike the other figures this one measures wall-clock milliseconds
// through a real TCP socket, not rescaled simulated time: the wire, the
// admission gate, and the kernel scheduler are the objects under test.
func (h *Harness) FigFrontdoor() (*Figure, error) {
	const (
		rows     = 5000
		inflight = 16
	)
	dur := 3 * time.Second
	if h.Quick {
		dur = time.Second
	}
	percents := h.pick([]int{50, 75, 100, 125, 150, 200}, []int{50, 100, 200})

	fx, err := h.startFrontdoor(rows, inflight)
	if err != nil {
		return nil, fmt.Errorf("frontdoor: %w", err)
	}
	defer fx.Close()

	// Capacity probe: closed loop with conns == budget keeps every
	// admission slot occupied without ever exceeding it, so the completed
	// rate is the service capacity the sweep is expressed against.
	cap0 := fx.load(rows)
	cap0.Conns = inflight
	cap0.Duration = dur
	capRep, err := net.RunLoad(cap0)
	if err != nil {
		return nil, fmt.Errorf("frontdoor capacity probe: %w", err)
	}
	if capRep.Shed > 0 || capRep.Hung > 0 || capRep.Failed > 0 {
		return nil, fmt.Errorf("frontdoor capacity probe not clean: shed=%d hung=%d failed=%d",
			capRep.Shed, capRep.Hung, capRep.Failed)
	}
	capacity := capRep.ThroughputRPS
	if capacity <= 0 {
		return nil, fmt.Errorf("frontdoor capacity probe measured no throughput")
	}

	f := &Figure{
		ID:     "Front door",
		Title:  "Front-door latency percentiles and shed rate vs offered load",
		XLabel: "Offered load (% of closed-loop capacity)",
		YLabel: "Latency (ms, wall) / shed (%)",
	}
	series := []Series{
		{Label: "p50 ms"}, {Label: "p99 ms"}, {Label: "p999 ms"}, {Label: "shed %"},
	}
	var points []FrontdoorMeasurement
	for _, pct := range percents {
		opts := fx.load(rows)
		// The connection pool must exceed the admission budget or the pool,
		// not the budget, becomes the limiter and nothing ever sheds.
		opts.Conns = 4 * inflight
		opts.Rate = capacity * float64(pct) / 100
		opts.Duration = dur
		opts.Deadline = 250 * time.Millisecond
		rep, err := net.RunLoad(opts)
		if err != nil {
			return nil, fmt.Errorf("frontdoor %d%%: %w", pct, err)
		}
		if rep.Hung > 0 || rep.Failed > 0 {
			return nil, fmt.Errorf("frontdoor %d%%: %d hung, %d failed requests",
				pct, rep.Hung, rep.Failed)
		}
		points = append(points, FrontdoorMeasurement{Percent: pct, Capacity: capacity, Report: rep})
		series[0].Points = append(series[0].Points, Point{X: pct, Y: rep.P50Ms})
		series[1].Points = append(series[1].Points, Point{X: pct, Y: rep.P99Ms})
		series[2].Points = append(series[2].Points, Point{X: pct, Y: rep.P999Ms})
		series[3].Points = append(series[3].Points, Point{X: pct, Y: 100 * rep.ShedRate()})
	}
	// The acceptance property the figure exists to demonstrate: offered
	// load at 2× the budgeted capacity is refused at the door, not queued
	// into the latency tail.
	top := points[len(points)-1]
	if top.Percent >= 200 && top.Report.Shed == 0 {
		return nil, fmt.Errorf("frontdoor: no sheds at %d%% offered load (%0.f req/s over capacity %.0f)",
			top.Percent, top.Report.Rate, capacity)
	}
	f.Series = series
	f.Notes = append(f.Notes,
		fmt.Sprintf("Database: %s, admission budget %d, closed-loop capacity %.0f req/s (%d conns), open-loop pool %d conns, deadline 250ms",
			server.SYS1().Name, inflight, capacity, inflight, 4*inflight),
		fmt.Sprintf("At %d%%: sent %d, completed %d, shed %d (%.1f%%), deadlined %d, hung %d",
			top.Percent, top.Report.Sent, top.Report.Completed, top.Report.Shed,
			100*top.Report.ShedRate(), top.Report.Deadlined, top.Report.Hung),
		"Latencies are wall-clock through a real TCP socket (not rescaled simulated time)")
	return f, nil
}
