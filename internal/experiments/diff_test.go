package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/server"
)

// Differential coverage for the slot-compiled evaluator over the five
// evaluation applications: each app's kernel — original and transformed —
// must produce the same returns, output and final environment on the
// tree-walking reference path (RunTree) and the compiled path (Run),
// running against the real simulated database server.
func TestCompiledEvaluatorMatchesTreeOnApps(t *testing.T) {
	const iterations = 30
	prof := server.SYS1()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			orig := app.Proc()
			trans, rep, err := core.Transform(orig, core.Options{
				Registry:    app.Registry(),
				SplitNested: true,
			})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if rep.TransformedCount() == 0 {
				t.Fatalf("no site transformed")
			}

			runVia := func(p *ir.Proc, workers int, tree bool) *interp.Result {
				t.Helper()
				srv := server.New(prof, 0.02)
				defer srv.Close()
				if err := app.Setup(srv, apps.SeededRand()); err != nil {
					t.Fatalf("setup: %v", err)
				}
				srv.Warm()
				svc := exec.NewService(workers, srv.Exec)
				svc.EnableTracing(testTracer(t))
				defer svc.Close()
				in := interp.New(app.Registry(), svc)
				if app.Bind != nil {
					app.Bind(in, apps.SeededRand())
				}
				args := app.Args(iterations, rand.New(rand.NewSource(iterations+7)))
				var res *interp.Result
				if tree {
					res, err = in.RunTree(p, args)
				} else {
					res, err = in.Run(p, args)
				}
				if err != nil {
					t.Fatalf("run (tree=%v): %v", tree, err)
				}
				return res
			}

			for _, v := range []struct {
				label   string
				proc    *ir.Proc
				workers int
			}{
				{"original", orig, 0},
				{"transformed", trans, 4},
			} {
				rt := runVia(v.proc, v.workers, true)
				rc := runVia(v.proc, v.workers, false)
				if err := interp.EquivalentResult(rt, rc); err != nil {
					t.Errorf("%s kernel: compiled path diverges from tree path: %v", v.label, err)
				}
			}
		})
	}
}
