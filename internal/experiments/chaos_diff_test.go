package experiments

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// chaosInjector builds the suite's deterministic fault plan: every fault
// kind fires at least once early in the workload (pinned ordinals), then
// keeps firing at modest rates. One injector serves both sides of the wire —
// per-kind decision streams are independent, so the client's connection
// faults and the backend's disk/replica faults stay deterministic under any
// interleaving.
func chaosInjector(seed int64) *fault.Injector {
	return fault.New(seed).
		At(fault.ConnReset, 2).Rate(fault.ConnReset, 0.01).
		At(fault.TornWrite, 3).Rate(fault.TornWrite, 0.01).
		At(fault.SlowLink, 1).Rate(fault.SlowLink, 0.05).
		Delay(fault.SlowLink, 100*time.Microsecond).
		At(fault.SyncErr, 1, 2).Rate(fault.SyncErr, 0.05).
		At(fault.SyncStall, 1).Rate(fault.SyncStall, 0.02).
		Delay(fault.SyncStall, 100*time.Microsecond).
		At(fault.ReplicaCrash, 2).Rate(fault.ReplicaCrash, 0.02)
}

// TestChaosDifferential is the fault-pinned differential suite: every
// evaluation app runs its transformed program with batched asynchronous
// submission twice — once against a clean in-process server, once through
// the TCP front door onto a 2-replica group while the chaos layer fires
// connection resets, torn frames, slow links, fsync errors and stalls, and
// replica crashes mid-workload. The client absorbs transport faults with
// retries (idempotent reads, provably-unsent frames), the group absorbs
// replica faults with breakers and failover, and the WAL rides out flaky
// fsyncs. The observable outcome must be byte-identical, with zero lost and
// zero duplicated acknowledged writes. Seeded by ASYNCQ_SEED like the other
// differential suites.
func TestChaosDifferential(t *testing.T) {
	const workers = 4
	iterations := 30
	if testing.Short() {
		iterations = 10
	}
	seed := apps.SeedFromEnv(0)
	if seed == 0 {
		// Time-seeded like the replica differential harness: every run
		// explores a new fault schedule, and the log keeps it reproducible.
		seed = time.Now().UnixNano()
	}
	t.Logf("chaos differential seed: %d (reproduce with ASYNCQ_SEED=%d)", seed, seed)
	prof := server.SYS1()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			trans, rep, err := core.Transform(app.Proc(), core.Options{
				Registry:    app.Registry(),
				SplitNested: true,
			})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if rep.TransformedCount() == 0 {
				t.Fatal("no site transformed")
			}

			run := func(p *ir.Proc, label string, mk func() (runr func(query.Request) query.Result,
				batchRunr func(query.BatchRequest) query.BatchResult)) *interp.Result {
				t.Helper()
				runr, batchRunr := mk()
				svc := batch.NewService(workers, runr, batchRunr, batch.Options{MaxBatch: 8})
				svc.EnableTracing(testTracer(t))
				defer svc.Close()
				in := interp.New(app.Registry(), svc)
				if app.Bind != nil {
					app.Bind(in, apps.SeededRand())
				}
				args := app.Args(iterations, rand.New(rand.NewSource(seed)))
				res, err := in.Run(p, args)
				if err != nil {
					t.Fatalf("%s run: %v", label, err)
				}
				return res
			}

			// The clean reference: one in-process server, no faults.
			var direct *server.Server
			directRes := run(trans, "in-process", func() (func(query.Request) query.Result,
				func(query.BatchRequest) query.BatchResult) {
				direct = server.New(prof, 0.02)
				t.Cleanup(direct.Close)
				if err := app.Setup(direct, apps.SeededRand()); err != nil {
					t.Fatalf("setup: %v", err)
				}
				direct.Warm()
				return direct.Exec, direct.ExecBatch
			})

			// The chaos stack: a synchronous 2-replica group over a flaky
			// store, behind a real TCP front door, driven by a retrying
			// client — with the full fault plan firing mid-workload.
			inj := chaosInjector(seed)
			var group *replica.Group
			chaosRes := run(trans, "chaos", func() (func(query.Request) query.Result,
				func(query.BatchRequest) query.BatchResult) {
				group = replica.NewGroup(prof, 0.02, replica.Options{
					Replicas: 2,
					Store:    fault.NewStore(wal.NewMemStore(), inj),
					Hedge:    5 * time.Millisecond,
					Breaker:  replica.BreakerOptions{Enabled: true, Cooldown: 2 * time.Millisecond},
					Fault:    inj,
				})
				t.Cleanup(group.Close)
				for _, s := range append([]*server.Server{group.Primary()}, group.Replicas()...) {
					if err := app.Setup(s, apps.SeededRand()); err != nil {
						t.Fatalf("setup: %v", err)
					}
					s.Warm()
				}
				fd := net.NewServer(group, net.ServerOptions{Metrics: obs.NewRegistry()})
				if err := fd.Listen("127.0.0.1:0"); err != nil {
					t.Fatalf("listen: %v", err)
				}
				t.Cleanup(fd.Close)
				client, err := net.DialOptions(fd.Addr(), net.ClientOptions{
					Retry: net.RetryPolicy{
						MaxAttempts: 25,
						BaseBackoff: 200 * time.Microsecond,
						Jitter:      0.5,
					},
					Fault: inj,
				})
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				t.Cleanup(client.Close)
				return client.Exec, client.ExecBatch
			})

			if err := interp.EquivalentResult(directRes, chaosRes); err != nil {
				t.Errorf("seed %d: chaos run diverges from in-process: %v", seed, err)
			}
			if directRes.Output != chaosRes.Output {
				t.Errorf("seed %d: output streams not byte-identical under chaos", seed)
			}
			// Zero lost, zero duplicated acknowledged writes: the group's
			// primary executed exactly the inserts the clean server did.
			if dp, cp := direct.Stats().Inserts, group.Primary().Stats().Inserts; dp != cp {
				t.Errorf("seed %d: primary executed %d inserts, clean server %d — writes were %s",
					seed, cp, dp, map[bool]string{true: "duplicated", false: "lost"}[cp > dp])
			}
			t.Logf("faults fired: %v; resilience: %+v; wal sync errors: %d",
				inj.Counts(), group.Resilience(), group.WALStats().SyncErrors)
		})
	}
}
