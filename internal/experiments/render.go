package experiments

import (
	"fmt"
	"strings"
)

// Render prints a figure as an aligned text table: one row per x value, one
// column per series, matching how the paper's plots read.
func Render(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	// Collect x values (assume all series share them).
	if len(f.Series) == 0 {
		return b.String()
	}
	xs := make([]int, 0, len(f.Series[0].Points))
	for _, p := range f.Series[0].Points {
		xs = append(xs, p.X)
	}
	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for i, x := range xs {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range f.Series {
			y := ""
			if i < len(s.Points) {
				y = formatSec(s.Points[i].Y)
			}
			row = append(row, y)
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&b, "  %-*s", widths[i]+2, c)
			_ = i
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 4
			}
			b.WriteString("  " + strings.Repeat("-", total) + "\n")
		}
	}
	// Speedup summary per x for the last pair of series.
	return b.String()
}

func formatSec(y float64) string {
	switch {
	case y >= 100:
		return fmt.Sprintf("%.0f", y)
	case y >= 1:
		return fmt.Sprintf("%.2f", y)
	default:
		return fmt.Sprintf("%.4f", y)
	}
}

// RenderTable1 prints Table I in the paper's layout.
func RenderTable1(rows []TableRow) string {
	var b strings.Builder
	b.WriteString("Table I: Applicability of Transformation Rules\n")
	fmt.Fprintf(&b, "  %-16s %-16s %-14s %s\n",
		"Application", "# Opportunities", "# Transformed", "Applicability (%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %-16d %-14d %.0f\n",
			r.Application, r.Opportunities, r.Transformed, r.Applicability())
	}
	return b.String()
}
