package minilang

import (
	"fmt"

	"repro/internal/ir"
)

// Parse parses a single procedure from src.
//
// Grammar (informal):
//
//	proc      = "proc" IDENT "(" [IDENT {"," IDENT}] ")" block
//	block     = "{" {stmt} "}"
//	stmt      = while | if | foreach | scan | [guard "?"] simple ";"
//	guard     = ["!"] IDENT
//	while     = "while" "(" expr ")" block
//	if        = "if" "(" expr ")" block ["else" block]
//	foreach   = "foreach" IDENT "in" expr block
//	scan      = "scan" IDENT "in" IDENT block
//	simple    = "query" IDENT "=" STRING
//	          | "table" IDENT | "record" IDENT
//	          | "append" "(" IDENT "," IDENT ")"
//	          | "load" IDENT "=" IDENT "." IDENT
//	          | "return" [expr {"," expr}]
//	          | "execUpdate" "(" IDENT {"," expr} ")"
//	          | IDENT "." IDENT "=" expr
//	          | identlist "=" rhs
//	          | call
//	rhs       = "execQuery" "(" IDENT {"," expr} ")"
//	          | "execUpdate" "(" IDENT {"," expr} ")"
//	          | "submit" "(" IDENT {"," expr} ")"
//	          | "submitUpdate" "(" IDENT {"," expr} ")"
//	          | "fetch" "(" expr ")"
//	          | expr
//
// Expressions use C-like precedence: || < && < comparisons < + - < * / % <
// unary ! -.
func Parse(src string) (*ir.Proc, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	proc, err := p.parseProc()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("expected end of input, found %s", p.peek())
	}
	return proc, nil
}

// MustParse parses or panics; for tests and embedded app sources.
func MustParse(src string) *ir.Proc {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case tokIdent:
			want = "identifier"
		case tokString:
			want = "string literal"
		case tokInt:
			want = "integer"
		}
	}
	return token{}, p.errf("expected %q, found %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseProc() (*ir.Proc, error) {
	if _, err := p.expect(tokIdent, "proc"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	proc := &ir.Proc{Name: name.text}
	if !p.at(tokPunct, ")") {
		for {
			prm, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			proc.Params = append(proc.Params, prm.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock(proc, true)
	if err != nil {
		return nil, err
	}
	proc.Body = body
	return proc, nil
}

// parseBlock parses "{ stmts }". Query declarations are only allowed at the
// top level of the procedure body (topLevel), where they are hoisted into
// proc.Queries. Return is only allowed as the final top-level statement.
func (p *parser) parseBlock(proc *ir.Proc, topLevel bool) (*ir.Block, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	blk := &ir.Block{}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected end of input, missing '}'")
		}
		if topLevel && p.at(tokIdent, "query") && p.peek2().kind == tokIdent {
			p.next()
			qn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			qs, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			proc.Queries = append(proc.Queries, ir.QueryDecl{Name: qn.text, SQL: qs.str})
			continue
		}
		s, err := p.parseStmt(proc)
		if err != nil {
			return nil, err
		}
		if r, ok := s.(*ir.Return); ok {
			if !topLevel {
				return nil, p.errf("return is only allowed at the top level of a procedure")
			}
			blk.Stmts = append(blk.Stmts, r)
			if !p.at(tokPunct, "}") {
				return nil, p.errf("return must be the final statement")
			}
			continue
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume '}'
	return blk, nil
}

func (p *parser) parseStmt(proc *ir.Proc) (ir.Stmt, error) {
	t := p.peek()
	if t.kind == tokIdent {
		switch t.text {
		case "while":
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock(proc, false)
			if err != nil {
				return nil, err
			}
			return &ir.While{Cond: cond, Body: body}, nil
		case "if":
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			then, err := p.parseBlock(proc, false)
			if err != nil {
				return nil, err
			}
			var els *ir.Block
			if p.accept(tokIdent, "else") {
				els, err = p.parseBlock(proc, false)
				if err != nil {
					return nil, err
				}
			}
			return &ir.If{Cond: cond, Then: then, Else: els}, nil
		case "foreach":
			p.next()
			v, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "in"); err != nil {
				return nil, err
			}
			coll, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			body, err := p.parseBlock(proc, false)
			if err != nil {
				return nil, err
			}
			return &ir.ForEach{Var: v.text, Coll: coll, Body: body}, nil
		case "scan":
			p.next()
			r, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokIdent, "in"); err != nil {
				return nil, err
			}
			tbl, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			body, err := p.parseBlock(proc, false)
			if err != nil {
				return nil, err
			}
			return &ir.Scan{Record: r.text, Table: tbl.text, Body: body}, nil
		}
	}
	// Guarded or simple statement, ending in ';'.
	var g *ir.Guard
	if t.kind == tokPunct && t.text == "!" && p.peek2().kind == tokIdent {
		// "!cv ? stmt"
		save := p.pos
		p.next()
		v := p.next()
		if p.accept(tokPunct, "?") {
			g = &ir.Guard{Var: v.text, Neg: true}
		} else {
			p.pos = save
		}
	} else if t.kind == tokIdent && p.peek2().kind == tokPunct && p.peek2().text == "?" {
		p.next()
		p.next()
		g = &ir.Guard{Var: t.text}
	}
	s, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	if g != nil {
		s.SetGuard(g)
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseSimple() (ir.Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, found %s", t)
	}
	switch t.text {
	case "table":
		p.next()
		n, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ir.DeclTable{Name: n.text}, nil
	case "record":
		p.next()
		n, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ir.NewRecord{Name: n.text}, nil
	case "append":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		tbl, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
		rec, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &ir.AppendRecord{Table: tbl.text, Record: rec.text}, nil
	case "load":
		p.next()
		v, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		rec, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return nil, err
		}
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ir.LoadField{Var: v.text, Record: rec.text, Field: f.text}, nil
	case "copy":
		p.next()
		dst, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return nil, err
		}
		df, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		src, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return nil, err
		}
		sf, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &ir.CopyField{DstRec: dst.text, DstField: df.text, SrcRec: src.text, SrcField: sf.text}, nil
	case "return":
		p.next()
		ret := &ir.Return{}
		if !p.at(tokPunct, ";") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ret.Vals = append(ret.Vals, e)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
		}
		return ret, nil
	case "execUpdate":
		p.next()
		q, args, err := p.parseQueryCallArgs()
		if err != nil {
			return nil, err
		}
		return &ir.ExecQuery{Query: q, Args: args, Kind: ir.QueryUpdate}, nil
	case "fetch":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &ir.Fetch{Handle: h}, nil
	}
	// SetField: IDENT '.' IDENT '=' expr
	if p.peek2().kind == tokPunct && p.peek2().text == "." {
		rec := p.next()
		p.next() // '.'
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ir.SetField{Record: rec.text, Field: f.text, Val: val}, nil
	}
	// Assignment (possibly multi) or call statement.
	if p.peek2().kind == tokPunct && (p.peek2().text == "=" || p.peek2().text == ",") {
		var lhs []string
		for {
			v, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			lhs = append(lhs, v.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		return p.parseAssignRhs(lhs)
	}
	// Call statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	call, ok := e.(*ir.Call)
	if !ok {
		return nil, p.errf("expression statements must be calls")
	}
	return &ir.CallStmt{Call: call}, nil
}

func (p *parser) parseAssignRhs(lhs []string) (ir.Stmt, error) {
	t := p.peek()
	if t.kind == tokIdent {
		switch t.text {
		case "execQuery", "execUpdate":
			p.next()
			q, args, err := p.parseQueryCallArgs()
			if err != nil {
				return nil, err
			}
			if len(lhs) != 1 {
				return nil, p.errf("%s assigns exactly one variable", t.text)
			}
			kind := ir.QuerySelect
			if t.text == "execUpdate" {
				kind = ir.QueryUpdate
			}
			return &ir.ExecQuery{Lhs: lhs[0], Query: q, Args: args, Kind: kind}, nil
		case "submit", "submitUpdate":
			p.next()
			q, args, err := p.parseQueryCallArgs()
			if err != nil {
				return nil, err
			}
			if len(lhs) != 1 {
				return nil, p.errf("%s assigns exactly one handle variable", t.text)
			}
			kind := ir.QuerySelect
			if t.text == "submitUpdate" {
				kind = ir.QueryUpdate
			}
			return &ir.Submit{Lhs: lhs[0], Query: q, Args: args, Kind: kind}, nil
		case "fetch":
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			h, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			if len(lhs) != 1 {
				return nil, p.errf("fetch assigns exactly one variable")
			}
			return &ir.Fetch{Lhs: lhs[0], Handle: h}, nil
		}
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ir.Assign{Lhs: lhs, Rhs: rhs}, nil
}

// parseQueryCallArgs parses "( queryName {, expr} )".
func (p *parser) parseQueryCallArgs() (string, []ir.Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return "", nil, err
	}
	q, err := p.expect(tokIdent, "")
	if err != nil {
		return "", nil, err
	}
	var args []ir.Expr
	for p.accept(tokPunct, ",") {
		e, err := p.parseExpr()
		if err != nil {
			return "", nil, err
		}
		args = append(args, e)
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return "", nil, err
	}
	return q.text, args, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) parseExpr() (ir.Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (ir.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return lhs, nil
		}
		pr, ok := binPrec[t.text]
		if !ok || pr < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(pr + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ir.Bin{Op: t.text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (ir.Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "!" || t.text == "-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ir.Un{Op: t.text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ir.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		return ir.IntLit(t.int), nil
	case tokString:
		p.next()
		return ir.StrLit(t.str), nil
	case tokIdent:
		switch t.text {
		case "true":
			p.next()
			return ir.BoolLit(true), nil
		case "false":
			p.next()
			return ir.BoolLit(false), nil
		case "null":
			p.next()
			return ir.NullLit(), nil
		}
		p.next()
		if p.accept(tokPunct, "(") {
			call := &ir.Call{Fn: t.text}
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return ir.V(t.text), nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression, found %s", t)
}
