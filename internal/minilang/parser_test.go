package minilang

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestParseSimpleProc(t *testing.T) {
	p := MustParse(`
proc add(a, b) {
  c = a + b;
  return c;
}`)
	if p.Name != "add" || len(p.Params) != 2 {
		t.Fatalf("bad proc header: %+v", p)
	}
	if len(p.Body.Stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(p.Body.Stmts))
	}
	if _, ok := p.Body.Stmts[0].(*ir.Assign); !ok {
		t.Fatalf("want assign, got %T", p.Body.Stmts[0])
	}
}

func TestParseQueryDecls(t *testing.T) {
	p := MustParse(`
proc q(x) {
  query q1 = "select a from t where k = ?";
  query q2 = "insert into t values (?)";
  v = execQuery(q1, x);
  execUpdate(q2, v);
  return v;
}`)
	if len(p.Queries) != 2 {
		t.Fatalf("want 2 queries, got %d", len(p.Queries))
	}
	if p.QueryByName("q1") == "" || p.QueryByName("nope") != "" {
		t.Fatal("QueryByName misbehaves")
	}
	eq := p.Body.Stmts[0].(*ir.ExecQuery)
	if eq.Kind != ir.QuerySelect || eq.Lhs != "v" {
		t.Fatalf("bad exec query: %+v", eq)
	}
	up := p.Body.Stmts[1].(*ir.ExecQuery)
	if up.Kind != ir.QueryUpdate || up.Lhs != "" {
		t.Fatalf("bad update: %+v", up)
	}
}

func TestParseGuards(t *testing.T) {
	p := MustParse(`
proc g(x) {
  c = x > 0;
  c ? y = 1;
  !c ? y = 2;
  return y;
}`)
	s1 := p.Body.Stmts[1]
	if g := s1.GetGuard(); g == nil || g.Var != "c" || g.Neg {
		t.Fatalf("bad guard: %v", g)
	}
	s2 := p.Body.Stmts[2]
	if g := s2.GetGuard(); g == nil || g.Var != "c" || !g.Neg {
		t.Fatalf("bad negated guard: %v", g)
	}
}

func TestParseCompound(t *testing.T) {
	p := MustParse(`
proc c(xs, t0) {
  s = 0;
  while (s < 10) {
    s = s + 1;
  }
  foreach x in xs {
    s = s + x;
  }
  if (s > 5) {
    print(s);
  } else {
    log(s);
  }
  scan r in t0 {
    load v = r.v;
  }
  return s;
}`)
	kinds := []string{}
	for _, s := range p.Body.Stmts {
		switch s.(type) {
		case *ir.Assign:
			kinds = append(kinds, "assign")
		case *ir.While:
			kinds = append(kinds, "while")
		case *ir.ForEach:
			kinds = append(kinds, "foreach")
		case *ir.If:
			kinds = append(kinds, "if")
		case *ir.Scan:
			kinds = append(kinds, "scan")
		case *ir.Return:
			kinds = append(kinds, "return")
		}
	}
	want := "assign,while,foreach,if,scan,return"
	if strings.Join(kinds, ",") != want {
		t.Fatalf("got %v, want %s", kinds, want)
	}
}

func TestParseRecordStmts(t *testing.T) {
	p := MustParse(`
proc r() {
  table t0;
  record r0;
  r0.v = 3;
  append(t0, r0);
  scan r1 in t0 {
    load w = r1.v;
    print(w);
  }
  return 0;
}`)
	if _, ok := p.Body.Stmts[0].(*ir.DeclTable); !ok {
		t.Fatal("want table decl")
	}
	sf := p.Body.Stmts[2].(*ir.SetField)
	if sf.Record != "r0" || sf.Field != "v" {
		t.Fatalf("bad setfield %+v", sf)
	}
}

func TestParseSubmitFetch(t *testing.T) {
	p := MustParse(`
proc s(x) {
  query q = "select a from t where k = ?";
  h = submit(q, x);
  v = fetch(h);
  return v;
}`)
	if _, ok := p.Body.Stmts[0].(*ir.Submit); !ok {
		t.Fatalf("want submit, got %T", p.Body.Stmts[0])
	}
	if _, ok := p.Body.Stmts[1].(*ir.Fetch); !ok {
		t.Fatalf("want fetch, got %T", p.Body.Stmts[1])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	p := MustParse(`proc e(a, b) { c = a + b * 2 == a && b < 3 || !a; return c; }`)
	got := ir.PrintExpr(p.Body.Stmts[0].(*ir.Assign).Rhs)
	want := "a + b * 2 == a && b < 3 || !a"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`proc`,
		`proc p( { }`,
		`proc p() { x = ; }`,
		`proc p() { x = 1 }`,                     // missing ;
		`proc p() { return 1; x = 2; }`,          // stmt after return
		`proc p() { while (1) { return 1; } }`,   // return inside loop
		`proc p() { if (x) { query q = "s"; } }`, // query not at top level... parsed as expr stmt -> error
		`proc p() { x = "unterminated; }`,
		`proc p() { foo(); } trailing`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("proc p() {\n  x = ;\n}")
	if err == nil {
		t.Fatal("want error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("want line 2, got %d", perr.Line)
	}
}

// TestRoundTrip: Print(Parse(x)) must re-parse to a structurally equal proc.
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`proc a(xs) {
  query q = "select count(x) from t where k = ?";
  s = 0;
  foreach x in xs {
    v = execQuery(q, x);
    c = v > 3;
    c ? s = s + v;
    !c ? print(x, "skipped");
  }
  return s;
}`,
		`proc b(n) {
  table t0;
  i = 0;
  while (i < n) {
    record r0;
    r0.i = i * 2 - 1;
    append(t0, r0);
    i = i + 1;
  }
  scan r in t0 {
    load v = r.i;
    print(v);
  }
  return i;
}`,
		`proc c(a) {
  if (a % 2 == 0 && a > 10) {
    x = divmod(a, 3);
  } else {
    x = -a;
  }
  return x;
}`,
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		printed := ir.Print(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, printed)
		}
		if !ir.EqualProc(p1, p2) {
			t.Fatalf("round trip changed structure:\n%s\nvs\n%s", printed, ir.Print(p2))
		}
	}
}

// TestRoundTripQuick: random expression trees survive print→parse→print.
func TestRoundTripQuick(t *testing.T) {
	prop := func(a, b int8, op uint8) bool {
		ops := []string{"+", "-", "*", "==", "<", "&&", "||"}
		e := &ir.Bin{
			Op: ops[int(op)%len(ops)],
			L:  &ir.Bin{Op: "+", L: ir.V("x"), R: ir.IntLit(int64(a))},
			R:  &ir.Un{Op: "-", X: ir.IntLit(int64(b))},
		}
		src := "proc p(x) { y = " + ir.PrintExpr(e) + "; return y; }"
		p, err := Parse(src)
		if err != nil {
			return false
		}
		return ir.PrintExpr(p.Body.Stmts[0].(*ir.Assign).Rhs) == ir.PrintExpr(e)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
