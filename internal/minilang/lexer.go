// Package minilang parses the mini-language front end: a small imperative
// surface syntax for database application kernels, playing the role Java
// source plays for the paper's DBridge tool. Parsed programs lower directly
// to the internal/ir statement form; ir.Print renders IR back to this syntax,
// and the two round-trip.
package minilang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	int  int64
	str  string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return strconv.Quote(t.str)
	default:
		return t.text
	}
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("minilang:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

var punctuation = []string{
	// multi-char first so maximal munch works
	"==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", ",", ";", "=", "<", ">", "+", "-", "*", "/", "%",
	"!", "?", ".",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, line: l.line, col: l.col})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexInt()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if !l.lexPunct() {
				return nil, &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance(1)
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "//") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "/*") {
			l.advance(2)
			for l.pos < len(l.src) && !strings.HasPrefix(l.src[l.pos:], "*/") {
				l.advance(1)
			}
			if l.pos < len(l.src) {
				l.advance(2)
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() error {
	startLine, startCol := l.line, l.col
	// Use strconv to handle escapes: find the closing quote respecting \".
	i := l.pos + 1
	for i < len(l.src) {
		if l.src[i] == '\\' {
			i += 2
			continue
		}
		if l.src[i] == '"' {
			break
		}
		i++
	}
	if i >= len(l.src) {
		return &Error{Line: startLine, Col: startCol, Msg: "unterminated string literal"}
	}
	raw := l.src[l.pos : i+1]
	s, err := strconv.Unquote(raw)
	if err != nil {
		return &Error{Line: startLine, Col: startCol, Msg: "bad string literal: " + err.Error()}
	}
	l.emit(token{kind: tokString, text: raw, str: s, line: startLine, col: startCol})
	l.advance(i + 1 - l.pos)
	return nil
}

func (l *lexer) lexInt() {
	start := l.pos
	startLine, startCol := l.line, l.col
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.advance(1)
	}
	text := l.src[start:l.pos]
	v, _ := strconv.ParseInt(text, 10, 64)
	l.emit(token{kind: tokInt, text: text, int: v, line: startLine, col: startCol})
}

func (l *lexer) lexIdent() {
	start := l.pos
	startLine, startCol := l.line, l.col
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			l.advance(1)
		} else {
			break
		}
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], line: startLine, col: startCol})
}

func (l *lexer) lexPunct() bool {
	for _, p := range punctuation {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.emit(token{kind: tokPunct, text: p, line: l.line, col: l.col})
			l.advance(len(p))
			return true
		}
	}
	return false
}
