// Package fault is the seeded, deterministic fault-injection engine: one
// Injector decides — by per-kind rate, by per-kind schedule, or both —
// whether a given injection point fires. The injection points live in the
// layers under test (internal/net wraps connections and tears frames,
// internal/wal's store wrapper fails or stalls fsyncs, internal/replica
// crashes read copies), and the chaos differential suite
// (internal/experiments) asserts the system absorbs every fault the
// injector invents: byte-identical results, zero lost acknowledged writes,
// zero duplicated writes.
//
// Determinism: every kind draws from its own seeded stream, so the nth
// decision of a kind answers the same way for the same seed regardless of
// how other kinds interleave. Under concurrency the workload decides how
// many decision points each kind sees — the injector guarantees the answer
// sequence per kind, which is what makes a failing seed replayable.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind names one injectable fault.
type Kind int

const (
	// ConnReset tears down a client connection between requests (the
	// client injects it only while no write is in flight, so the loss is
	// always retry-safe — see internal/net's resilience contract).
	ConnReset Kind = iota
	// TornWrite cuts a request frame mid-write: the peer sees a partial
	// frame and kills the connection. The torn request provably never
	// decoded server-side, so even a torn write is safe to re-send.
	TornWrite
	// SlowLink delays a connection write by the kind's configured delay.
	SlowLink
	// SyncErr fails a WAL store fsync (before any bits reach the store).
	SyncErr
	// SyncStall delays a WAL store fsync by the kind's configured delay.
	SyncStall
	// ReplicaCrash kills a read replica at a read decision point; the
	// group fails it out and the circuit breaker's half-open probe
	// recovers it.
	ReplicaCrash

	numKinds
)

// String renders the kind for logs and counters.
func (k Kind) String() string {
	switch k {
	case ConnReset:
		return "conn-reset"
	case TornWrite:
		return "torn-write"
	case SlowLink:
		return "slow-link"
	case SyncErr:
		return "sync-err"
	case SyncStall:
		return "sync-stall"
	case ReplicaCrash:
		return "replica-crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every fault kind (iteration in logs and sweeps).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ErrInjected is the root of every injected error; layers test provenance
// with errors.Is(err, fault.ErrInjected).
var ErrInjected = errors.New("fault: injected")

// ErrSync is the injected fsync failure returned by Store.Sync.
var ErrSync = fmt.Errorf("%w: fsync error", ErrInjected)

type kindState struct {
	rng   *rand.Rand
	rate  float64
	sched map[int64]bool // decision ordinals forced to fire
	delay time.Duration
	seen  int64
	fired int64
}

// Injector decides fault firings. The zero value and the nil injector are
// inert (Should always answers false), so production paths thread a nil
// *Injector at zero cost. All methods are safe for concurrent use.
type Injector struct {
	seed int64

	mu    sync.Mutex
	kinds [numKinds]kindState
}

// New builds an injector whose decisions are a pure function of seed and
// the per-kind decision ordinal.
func New(seed int64) *Injector {
	in := &Injector{seed: seed}
	for k := range in.kinds {
		in.kinds[k].rng = rand.New(rand.NewSource(seed + int64(k)*7919))
	}
	return in
}

// Seed reports the seed (logged so a failing run is replayable).
func (in *Injector) Seed() int64 { return in.seed }

// Rate arms kind k to fire each decision independently with probability p.
// Chainable.
func (in *Injector) Rate(k Kind, p float64) *Injector {
	in.mu.Lock()
	in.kinds[k].rate = p
	in.mu.Unlock()
	return in
}

// RateAll arms every kind at probability p. Chainable.
func (in *Injector) RateAll(p float64) *Injector {
	for _, k := range Kinds() {
		in.Rate(k, p)
	}
	return in
}

// At schedules kind k to fire on exactly its nth decision points (1-based),
// on top of any rate. Schedules make "a fault fires mid-workload" a
// guarantee instead of a probability. Chainable.
func (in *Injector) At(k Kind, nth ...int64) *Injector {
	in.mu.Lock()
	if in.kinds[k].sched == nil {
		in.kinds[k].sched = map[int64]bool{}
	}
	for _, n := range nth {
		in.kinds[k].sched[n] = true
	}
	in.mu.Unlock()
	return in
}

// Delay sets the stall duration for delaying kinds (SlowLink, SyncStall).
// Chainable.
func (in *Injector) Delay(k Kind, d time.Duration) *Injector {
	in.mu.Lock()
	in.kinds[k].delay = d
	in.mu.Unlock()
	return in
}

// Should records one decision point for kind k and reports whether the
// fault fires there. Nil-safe: a nil injector never fires.
func (in *Injector) Should(k Kind) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := &in.kinds[k]
	st.seen++
	fire := st.sched[st.seen]
	if !fire && st.rate > 0 && st.rng != nil && st.rng.Float64() < st.rate {
		fire = true
	}
	if fire {
		st.fired++
	}
	return fire
}

// DelayFor returns the configured stall for kind k (nil-safe).
func (in *Injector) DelayFor(k Kind) time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.kinds[k].delay
}

// Decisions reports how many decision points kind k has seen (nil-safe).
func (in *Injector) Decisions(k Kind) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.kinds[k].seen
}

// Fired reports how many times kind k has fired (nil-safe).
func (in *Injector) Fired(k Kind) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.kinds[k].fired
}

// TotalFired sums firings across all kinds (nil-safe).
func (in *Injector) TotalFired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for k := range in.kinds {
		n += in.kinds[k].fired
	}
	return n
}

// Counts snapshots fired/seen per kind for logging ("conn-reset": fired).
func (in *Injector) Counts() map[string]int64 {
	out := map[string]int64{}
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for k := range in.kinds {
		out[Kind(k).String()] = in.kinds[k].fired
	}
	return out
}
