package fault

import (
	stdnet "net"
	"time"
)

// Conn wraps a network connection with link-level fault injection: every
// Write is a SlowLink decision point (a firing delays the write by the
// kind's configured delay — a congested or lossy link, not a dead one).
// Frame-boundary faults (connection resets, torn frames) are injected by
// the wire client itself, which knows where a frame starts and which
// requests are in flight; a raw byte-level wrapper cannot tear safely.
type Conn struct {
	stdnet.Conn
	inj *Injector
}

// WrapConn wraps c; a nil injector returns c unchanged.
func WrapConn(c stdnet.Conn, inj *Injector) stdnet.Conn {
	if inj == nil {
		return c
	}
	return &Conn{Conn: c, inj: inj}
}

// Write delays when SlowLink fires, then forwards.
func (c *Conn) Write(b []byte) (int, error) {
	if c.inj.Should(SlowLink) {
		if d := c.inj.DelayFor(SlowLink); d > 0 {
			time.Sleep(d)
		}
	}
	return c.Conn.Write(b)
}
