package fault

import (
	"time"

	"repro/internal/wal"
)

// Store wraps a wal.Store with fsync fault injection: every Sync is a
// SyncStall decision point (firing sleeps the stall delay — a disk with a
// deep queue) and then a SyncErr decision point (firing returns ErrSync
// *before* the inner Sync runs, so an injected failure has no side
// effects — the WAL's flusher retries, and the append watermark guarantees
// the retry never duplicates records in the store). Appends and snapshots
// pass through untouched.
type Store struct {
	inner wal.Store
	inj   *Injector
}

// NewStore wraps inner; a nil injector still wraps (inert).
func NewStore(inner wal.Store, inj *Injector) *Store {
	return &Store{inner: inner, inj: inj}
}

// Inner exposes the wrapped store (tests inspect its durable contents).
func (s *Store) Inner() wal.Store { return s.inner }

// AppendRecords forwards to the inner store.
func (s *Store) AppendRecords(recs []wal.Record) (int, error) {
	return s.inner.AppendRecords(recs)
}

// Sync stalls and/or fails per the injector, else fsyncs the inner store.
func (s *Store) Sync() error {
	if s.inj.Should(SyncStall) {
		if d := s.inj.DelayFor(SyncStall); d > 0 {
			time.Sleep(d)
		}
	}
	if s.inj.Should(SyncErr) {
		return ErrSync
	}
	return s.inner.Sync()
}

// WriteSnapshot forwards to the inner store.
func (s *Store) WriteSnapshot(snap *wal.Snapshot) error {
	return s.inner.WriteSnapshot(snap)
}

// Load forwards to the inner store.
func (s *Store) Load() (*wal.Snapshot, []wal.Record, error) {
	return s.inner.Load()
}

// Close forwards to the inner store.
func (s *Store) Close() error { return s.inner.Close() }
