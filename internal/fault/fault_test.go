package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wal"
)

// Same seed, same per-kind answer sequence — even when the kinds are
// interrogated in a different interleaving (each kind owns its stream).
func TestDeterministicPerKind(t *testing.T) {
	record := func(order []Kind) map[Kind][]bool {
		in := New(42).RateAll(0.3)
		out := map[Kind][]bool{}
		for _, k := range order {
			out[k] = append(out[k], in.Should(k))
		}
		return out
	}
	interleaved := make([]Kind, 0, 60)
	for i := 0; i < 30; i++ {
		interleaved = append(interleaved, ConnReset, SyncErr)
	}
	blocked := make([]Kind, 0, 60)
	for i := 0; i < 30; i++ {
		blocked = append(blocked, SyncErr)
	}
	for i := 0; i < 30; i++ {
		blocked = append(blocked, ConnReset)
	}
	a, b := record(interleaved), record(blocked)
	for _, k := range []Kind{ConnReset, SyncErr} {
		if len(a[k]) != len(b[k]) {
			t.Fatalf("%v: %d vs %d decisions", k, len(a[k]), len(b[k]))
		}
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatalf("%v decision %d differs across interleavings", k, i)
			}
		}
	}
}

func TestScheduleFiresExactly(t *testing.T) {
	in := New(1).At(TornWrite, 3, 5)
	var fired []int64
	for i := int64(1); i <= 8; i++ {
		if in.Should(TornWrite) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("scheduled firings at %v, want [3 5]", fired)
	}
	if in.Fired(TornWrite) != 2 || in.Decisions(TornWrite) != 8 {
		t.Fatalf("counters fired=%d seen=%d, want 2/8", in.Fired(TornWrite), in.Decisions(TornWrite))
	}
}

func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if in.Should(ConnReset) || in.Fired(SyncErr) != 0 || in.TotalFired() != 0 {
		t.Fatal("nil injector must never fire")
	}
	if in.DelayFor(SlowLink) != 0 || in.Decisions(SlowLink) != 0 {
		t.Fatal("nil injector must report zeros")
	}
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector counts must be empty")
	}
}

func TestRateZeroNeverFires(t *testing.T) {
	in := New(7)
	for i := 0; i < 1000; i++ {
		if in.Should(SlowLink) {
			t.Fatal("unarmed kind fired")
		}
	}
}

func TestStoreInjectsSyncErr(t *testing.T) {
	in := New(3).At(SyncErr, 1)
	st := NewStore(wal.NewMemStore(), in)
	if _, err := st.AppendRecords([]wal.Record{{LSN: 1, Name: "q", SQL: "insert into t (id) values (?)", ArgSets: [][]any{{int64(1)}}}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync: got %v, want injected error", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	// The failed sync must not have lost the append: the inner store still
	// holds the record after the retrying sync succeeds.
	_, recs, err := st.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("inner store holds %v, want the one appended record", recs)
	}
}

func TestStoreStallDelays(t *testing.T) {
	in := New(5).At(SyncStall, 1).Delay(SyncStall, 20*time.Millisecond)
	st := NewStore(wal.NewMemStore(), in)
	start := time.Now()
	if err := st.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stalled sync returned in %v, want ≥ 20ms", d)
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
}
