// Package shard partitions the simulated database across N independent
// server.Server backends and routes queries to them — the scaling axis that
// lets the batching layer's set-oriented submissions execute in parallel per
// shard (see README.md).
//
// Tables declare a shard key (Options.Keys); rows live on the shard that
// owns their key's hash. Point statements — an equality predicate on the
// shard key, or an INSERT whose VALUES bind it — route to the owning shard.
// Everything else scatter-gathers: the statement runs on every shard and the
// router merges the partial results deterministically, so a sharded cluster
// is observably identical to one big server. ExecBatch submissions are split
// into per-shard sub-batches that execute in parallel and are demultiplexed
// back into binding order.
//
// The Router implements query.Executor — the same Exec(Request)/
// ExecBatch(BatchRequest) pair as its backends — so exec.Service, the
// internal/batch coalescer, the network front door and transformed
// programs run unchanged on top of it. Request context fans out with the
// dispatch: every shard leg gets a "shard.exec"/"shard.batch" span child,
// the per-shard child of the request's Session (each shard's replica group
// has its own LSN space), and the request's Deadline and Consistency
// verbatim.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/sqlmini"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Backend is one shard's execution engine: a bare server.Server, or a
// replica.Group fronting a primary with R read replicas (Options.Replicas).
// One interface covers everything the router needs: Request-based statement
// execution (query.Executor — span, session, consistency and deadline all
// ride the request; the result's Info feeds the scatter-gather merge), the
// bulk-load path, the planner's index statistics, cache / clock / lifecycle
// control, and the obs metrics hookup.
type Backend interface {
	query.Executor

	CreateTable(name string, schema *storage.Schema, rowsPerPage int) error
	InsertRow(table string, row []any) error
	FinishLoad()
	AddIndex(table, column string, unique bool) error
	IndexKeyCount(table, col string, v any) (int, bool)
	NumTableRows(table string) int
	TableRow(table string, rid int) []any

	Warm()
	ColdStart()
	SetScale(scale float64)
	Close()
	Stats() server.Stats

	SetMetrics(reg *obs.Registry)
	RegisterMetrics(reg *obs.Registry, prefix string)
}

// Options configure a router.
type Options struct {
	// Shards is the number of backends (minimum 1).
	Shards int
	// Keys maps table name -> shard key column. Tables absent from the map
	// are replicated on every shard: reads route to shard 0, writes broadcast.
	Keys map[string]string
	// Replicas, when positive, fronts every shard with a replica.Group of
	// one primary plus Replicas read replicas: reads load-balance across
	// healthy replicas with failover, writes replicate synchronously
	// (internal/replica). Zero keeps bare single-server shards.
	Replicas int
	// ReadPolicy selects the replica read load-balancing policy (only
	// meaningful with Replicas > 0).
	ReadPolicy replica.Policy
	// Durability is each shard group's WAL commit mode (zero: wal.Group —
	// acknowledged writes are durable; only meaningful with Replicas > 0).
	Durability wal.Mode
	// Async switches shard replicas to background log shipping; reads then
	// follow Consistency/Bound (see replica.Options).
	Async bool
	// Consistency is the read consistency of Async shard groups.
	Consistency replica.Consistency
	// Bound is the BoundedStaleness lag, in acknowledged writes per shard.
	Bound int64
	// SnapshotEvery checkpoints each shard's log every N retained records.
	SnapshotEvery int64
	// Hedge arms hedged reads on every shard group: a replica read that has
	// not answered within this delay races a second attempt on another copy
	// (only meaningful with Replicas > 0; see replica.Options.Hedge).
	Hedge time.Duration
	// Breaker configures each shard group's per-replica circuit breaker
	// (only meaningful with Replicas > 0; see replica.BreakerOptions).
	Breaker replica.BreakerOptions
	// Fault, when set, is shared by every shard group for ReplicaCrash
	// injection ahead of replica reads (see replica.Options.Fault). The
	// injector serializes its own decisions, so sharing keeps one global
	// deterministic decision sequence across shards.
	Fault *fault.Injector
}

// tableInfo is the router's routing metadata for one table.
type tableInfo struct {
	key    string // shard key column; "" = replicated
	keyPos int    // schema position of key (INSERT routing); -1 when replicated

	// DDL captured at LoadFrom so migrations can recreate the table on
	// fresh backends without the reference server.
	schema      *storage.Schema
	rowsPerPage int
	indexes     []*storage.Index

	mu sync.RWMutex
	// global maps, per shard, local row id -> global row position: rows
	// distributed by LoadFrom carry their original load position, and rows
	// inserted at runtime through Exec are appended by notePos in completion
	// order (exact for sequential programs; under concurrent submission the
	// interleaving is as undefined as insertion order on one concurrent
	// server). -1 marks a slot whose insert has not been observed yet.
	global [][]int
	loaded int // rows distributed by LoadFrom
	noted  int // runtime inserts recorded by notePos
}

// notePos records one routed runtime insert: the shard-local row rid was
// the noted-th row added after load, so scatter merges order it exactly
// where a single server would have.
func (ti *tableInfo) notePos(shard, rid int) {
	ti.mu.Lock()
	g := ti.global[shard]
	for len(g) <= rid {
		g = append(g, -1)
	}
	if g[rid] < 0 {
		g[rid] = ti.loaded + ti.noted
		ti.noted++
	}
	ti.global[shard] = g
	ti.mu.Unlock()
}

// globalPos returns the merge key of one shard-local row: mapped rows carry
// their recorded position; rows the router never saw insert (both the
// routed and the batched insert paths trace positions, so only rows
// inserted behind the router's back land here) sort after every known row
// in a deterministic (local rid, shard) order.
func (ti *tableInfo) globalPos(shard, rid int) int {
	ti.mu.RLock()
	defer ti.mu.RUnlock()
	if shard < len(ti.global) && rid < len(ti.global[shard]) && ti.global[shard][rid] >= 0 {
		return ti.global[shard][rid]
	}
	return ti.loaded + ti.noted + rid*len(ti.global) + shard
}

// Router partitions tables across N backends and routes statements. It is
// safe for concurrent use; its Exec/ExecBatch match the exec.Runner and
// exec.BatchRunner shapes.
type Router struct {
	backends []Backend
	keys     map[string]string

	// prep caches parses client-side, for routing only; the backends keep
	// their own prepared caches and pay their own planning charge.
	prep sqlmini.PrepCache

	tmu    sync.RWMutex
	tables map[string]*tableInfo
	// tableOrder replays LoadFrom's DDL order (reference extent order) so
	// migrations recreate tables with identical extent numbering.
	tableOrder []string

	// pruned counts shard executions skipped by the scatter planner's
	// index-statistics fast path (see pruneTargets).
	pruned atomic.Int64

	// ranges is the live hash-range ownership map. Statements route by the
	// snapshot they load; migrations install the next generation atomically
	// under the mig write lock.
	ranges atomic.Pointer[Ranges]

	// mig fences migrations against in-flight statements: every execution
	// path holds the read side for its full duration, so the migration's
	// cutoff and flip steps (write side) see no statement mid-dispatch.
	mig sync.RWMutex
	// migMu serializes whole migrations (one Split/Merge at a time).
	migMu sync.Mutex
	// Double-write capture state, installed and cleared under mig's write
	// lock, read by execution paths under the read lock.
	migActive  bool
	migSources map[int]bool
	pendingMu  sync.Mutex
	pending    []pendingWrite
	migHook    func(phase string)

	// mk builds one more backend identical to the originals (nil when the
	// router wraps caller-supplied backends; Split/Merge then need
	// SetBackendFactory).
	mk func() Backend

	// Migration counters (MigrationStats, shard.migrations metrics).
	splits, merges, rangesMoved, rowsCopied, doubleWrites atomic.Int64

	// Metrics hookup remembered so migrations can re-register swapped and
	// appended backends; guarded by mig.
	reg       *obs.Registry
	regPrefix string
}

// pendingWrite is one acknowledged insert captured during a migration's
// copy phase: the row is double-written — applied to the new backends at
// flip, in capture order, after the copied prefix. The row is materialized
// at capture so the flip never has to read the (possibly since-crashed)
// source backend.
type pendingWrite struct {
	table  string
	row    []any
	src    int    // source slot the insert landed on
	srcRid int    // local row id on the source (merge-order key)
	h      uint64 // shard-key hash (routing between split halves)
	repl   bool   // replicated-table broadcast: apply to every new backend
}

// New starts a router over n fresh backends of the given profile; scale is
// the wall-clock factor for simulated latencies (as in server.New). With
// Options.Replicas > 0 every backend is a replica group (one primary plus
// Replicas read copies) instead of a bare server. Load data with LoadFrom
// before executing queries.
func New(prof server.Profile, scale float64, opts Options) *Router {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	mk := func() Backend {
		if opts.Replicas > 0 {
			return replica.NewGroup(prof, scale, replica.Options{
				Replicas: opts.Replicas, Policy: opts.ReadPolicy,
				Durability: opts.Durability, Async: opts.Async,
				Consistency: opts.Consistency, Bound: opts.Bound,
				SnapshotEvery: opts.SnapshotEvery,
				Hedge:         opts.Hedge,
				Breaker:       opts.Breaker,
				Fault:         opts.Fault,
			})
		}
		return server.New(prof, scale)
	}
	backends := make([]Backend, n)
	for i := range backends {
		backends[i] = mk()
	}
	r := NewWithBackends(backends, opts.Keys)
	r.mk = mk
	return r
}

// NewWithBackends wraps existing backends (tests, heterogeneous clusters).
func NewWithBackends(backends []Backend, keys map[string]string) *Router {
	if keys == nil {
		keys = map[string]string{}
	}
	r := &Router{
		backends: backends,
		keys:     keys,
		tables:   map[string]*tableInfo{},
	}
	r.ranges.Store(NewRanges(len(backends)))
	return r
}

// SetBackendFactory installs the constructor migrations use to build fresh
// backends (tests and NewWithBackends callers; New installs one itself).
func (r *Router) SetBackendFactory(mk func() Backend) { r.mk = mk }

// Ranges returns the current hash-range ownership snapshot.
func (r *Router) Ranges() *Ranges { return r.ranges.Load() }

// Shards returns the number of backends (including backends that currently
// own no hash range after a merge).
func (r *Router) Shards() int {
	r.mig.RLock()
	defer r.mig.RUnlock()
	return len(r.backends)
}

// Backends exposes the per-shard backends (tests, stats drill-down). The
// returned slice is a consistent snapshot; migrations install a fresh slice
// on flip rather than mutating this one.
func (r *Router) Backends() []Backend {
	r.mig.RLock()
	defer r.mig.RUnlock()
	return r.backends
}

// Groups returns the replica groups backing each shard, or nil when the
// router runs bare servers (Options.Replicas == 0).
func (r *Router) Groups() []*replica.Group {
	r.mig.RLock()
	defer r.mig.RUnlock()
	out := make([]*replica.Group, 0, len(r.backends))
	for _, b := range r.backends {
		g, ok := b.(*replica.Group)
		if !ok {
			return nil
		}
		out = append(out, g)
	}
	return out
}

// ReplicaStats returns per-shard, per-copy server counters (primary first)
// for replicated backends, or nil for bare servers.
func (r *Router) ReplicaStats() [][]server.Stats {
	groups := r.Groups()
	if groups == nil {
		return nil
	}
	out := make([][]server.Stats, len(groups))
	for i, g := range groups {
		out[i] = g.CopyStats()
	}
	return out
}

// ReplicaReads returns per-shard read counts served by each replica for
// replicated backends (the read-balancing evidence), or nil for bare
// servers.
func (r *Router) ReplicaReads() [][]int64 {
	groups := r.Groups()
	if groups == nil {
		return nil
	}
	out := make([][]int64, len(groups))
	for i, g := range groups {
		out[i] = g.ReadCounts()
	}
	return out
}

// LoadFrom partitions a fully loaded reference server across the backends:
// every table is recreated with the same schema, page fanout and indexes;
// sharded tables send each row to its key's owner (remembering the global
// row order for scatter-gather merges) and replicated tables copy every row
// to every shard. Call once, after the reference load, before queries.
func (r *Router) LoadFrom(ref *server.Server) error {
	tables := ref.Catalog().Tables()
	// Catalog.Tables is map-ordered; extent ids are assigned in creation
	// order, so sorting by extent replays the original DDL order and keeps
	// extent numbering identical on every shard.
	sort.Slice(tables, func(i, j int) bool { return tables[i].Extent < tables[j].Extent })

	rg := r.ranges.Load()
	for _, t := range tables {
		key := r.keys[t.Name]
		ti := &tableInfo{
			key: key, keyPos: -1, global: make([][]int, len(r.backends)),
			schema: t.Schema, rowsPerPage: t.RowsPerPage(),
		}
		if key != "" {
			ti.keyPos = t.Schema.ColIndex(key)
			if ti.keyPos < 0 {
				return fmt.Errorf("shard: table %s has no shard key column %q", t.Name, key)
			}
		}
		for _, b := range r.backends {
			if err := b.CreateTable(t.Name, t.Schema, t.RowsPerPage()); err != nil {
				return fmt.Errorf("shard: create %s: %w", t.Name, err)
			}
		}
		n := t.NumRows()
		for rid := 0; rid < n; rid++ {
			row := t.Row(rid)
			if key == "" {
				for _, b := range r.backends {
					if err := b.InsertRow(t.Name, row); err != nil {
						return fmt.Errorf("shard: replicate %s: %w", t.Name, err)
					}
				}
				continue
			}
			s := rg.OwnerOf(row[ti.keyPos])
			if err := r.backends[s].InsertRow(t.Name, row); err != nil {
				return fmt.Errorf("shard: distribute %s: %w", t.Name, err)
			}
			ti.global[s] = append(ti.global[s], rid)
		}
		ti.loaded = n
		r.tmu.Lock()
		r.tables[t.Name] = ti
		r.tableOrder = append(r.tableOrder, t.Name)
		r.tmu.Unlock()
	}
	for _, b := range r.backends {
		b.FinishLoad()
	}
	for _, t := range tables {
		ixs := t.Indexes()
		r.tmu.RLock()
		r.tables[t.Name].indexes = ixs
		r.tmu.RUnlock()
		for _, ix := range ixs {
			for _, b := range r.backends {
				if err := b.AddIndex(t.Name, ix.Column, ix.Unique); err != nil {
					return fmt.Errorf("shard: index %s(%s): %w", t.Name, ix.Column, err)
				}
			}
		}
	}
	return nil
}

func (r *Router) table(name string) *tableInfo {
	r.tmu.RLock()
	defer r.tmu.RUnlock()
	return r.tables[name]
}

// NewSession starts a client session. The router derives one child session
// per shard (query.Session.Sub) as requests fan out, so ReadYourWrites
// floors (the LSNs of the session's own acknowledged writes) and
// served-state bookkeeping follow the client through point, scatter and
// batched submissions alike — each shard's replica group has its own LSN
// space, hence its own child. Over bare (unreplicated) backends the tokens
// are simply never consulted.
func (r *Router) NewSession() *query.Session { return query.NewSession() }

// shardSpan opens the per-shard fan-out child: one leg of a scatter, a
// routed point statement, or a per-shard sub-batch. Nil in, nil out.
func shardSpan(sp *obs.Span, what string, i int) *obs.Span {
	c := sp.Child(what)
	c.SetDetail(obs.ShardLabel(i))
	return c
}

// bexec dispatches one statement to shard i: the request is re-scoped with
// the shard's span child and the session's per-shard child, everything else
// (deadline, consistency) passes through verbatim.
func (r *Router) bexec(req query.Request, i int) query.Result {
	c := shardSpan(req.Span, "shard.exec", i)
	defer c.End()
	req.Span = c
	req.Session = req.Session.Sub(i)
	return r.backends[i].Exec(req)
}

// bexecBatch is bexec for a per-shard sub-batch.
func (r *Router) bexecBatch(req query.BatchRequest, i int) query.BatchResult {
	c := shardSpan(req.Span, "shard.batch", i)
	defer c.End()
	req.Span = c
	req.Session = req.Session.Sub(i)
	return r.backends[i].ExecBatch(req)
}

// Exec routes one statement: to the owning shard (per the live hash-range
// map) for point statements, to shard 0 for replicated-table reads and
// statements that will fail validation (any backend produces the identical
// error), broadcast for replicated-table writes, and scatter-gather for the
// rest. Every dispatched shard leg hangs a "shard.exec" child (with its
// shard id) off the request's span, and the backend continues the tree down
// to RTT, I/O, CPU and WAL commit. The whole call holds the migration read
// lock, so a routing flip never lands mid-statement.
func (r *Router) Exec(req query.Request) query.Result {
	r.mig.RLock()
	defer r.mig.RUnlock()
	return r.exec(req)
}

func (r *Router) exec(req query.Request) query.Result {
	st, err := r.prep.Prepare(req.SQL)
	if err != nil {
		// Ship the malformed statement to a real backend so the round trip
		// and the error text match the single-server path exactly.
		return r.bexec(req, 0)
	}
	ti := r.table(st.Table)
	if ti == nil {
		// Unknown table: identical "no table" error from any backend.
		return r.bexec(req, 0)
	}
	if st.Insert {
		if ti.key == "" {
			res := r.broadcast(req)
			if res.Err == nil && len(res.Info.Matched) == 1 {
				r.stagePending(st.Table, 0, res.Info.Matched[0], 0, true)
			}
			return res
		}
		if v, ok := st.InsertValue(ti.keyPos, req.Args); ok {
			h := Hash64(v)
			s := r.ranges.Load().Owner(h)
			res := r.bexec(req, s)
			if res.Err == nil && len(res.Info.Matched) == 1 {
				// Record where the row landed so scatter merges keep the
				// exact single-server insertion order.
				ti.notePos(s, res.Info.Matched[0])
				r.stagePending(st.Table, s, res.Info.Matched[0], h, false)
			}
			return res
		}
		// Arity/parameter errors surface identically on any backend.
		return r.bexec(req, 0)
	}
	if ti.key != "" {
		if v, ok := st.WhereEqValue(ti.key, req.Args); ok {
			return r.bexec(req, r.ranges.Load().OwnerOf(v))
		}
		return r.scatter(req, st, ti)
	}
	// Replicated table: every shard holds the full data; read one.
	return r.bexec(req, 0)
}

// stagePending captures one acknowledged insert while a migration's copy
// phase runs: the materialized row joins the pending double-write buffer
// and is applied to the new backends at flip, after the copied prefix, in
// capture order. Only acknowledged inserts are staged — a failed insert
// never reaches the buffer, so the flip cannot manufacture writes. Callers
// hold the migration read lock, so migActive/migSources are stable.
func (r *Router) stagePending(table string, src, rid int, h uint64, repl bool) {
	if !r.migActive || (!repl && !r.migSources[src]) {
		return
	}
	row := r.backends[src].TableRow(table, rid)
	r.pendingMu.Lock()
	r.pending = append(r.pending, pendingWrite{
		table: table, row: row, src: src, srcRid: rid, h: h, repl: repl,
	})
	r.pendingMu.Unlock()
	r.doubleWrites.Add(1)
}

// broadcast runs a replicated-table write on every shard in parallel so the
// replicas stay identical, returning one representative result.
func (r *Router) broadcast(req query.Request) query.Result {
	res := make([]query.Result, len(r.backends))
	var wg sync.WaitGroup
	for i := range r.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i] = r.bexec(req, i)
		}(i)
	}
	wg.Wait()
	for _, re := range res {
		if re.Err != nil {
			return query.Fail(re.Err)
		}
	}
	return res[0]
}

// pruneTargets is the scatter planner's cheap fast path: a statement with a
// bound equality predicate on a secondary-indexed column consults each
// shard's index key statistics (the rid-count map every insert maintains)
// and skips shards holding zero matching keys. The peek models a statistics
// cache on the router — no round trip is charged, which is the point.
// Candidates are the range map's active owners (a merged-away backend holds
// no sharded rows and is never a candidate). It returns the shard ids to
// visit, or nil when no indexed predicate prunes. An empty result still
// keeps one representative shard so validation errors (which are
// schema-determined and identical everywhere) surface exactly as a full
// scatter would, and a zero-match execution stays observable.
func (r *Router) pruneTargets(st *sqlmini.Stmt, args []any, owners []int) []int {
	var targets []int
	for _, c := range st.Where {
		v := c.Lit
		if c.Param >= 0 {
			if c.Param >= len(args) {
				continue // fails parameter validation identically everywhere
			}
			v = args[c.Param]
		}
		if _, ok := r.backends[0].IndexKeyCount(st.Table, c.Col, v); !ok {
			continue // no index on this column: no statistics to prune by
		}
		if targets == nil {
			targets = append([]int(nil), owners...)
		}
		kept := targets[:0]
		for _, s := range targets {
			if n, ok := r.backends[s].IndexKeyCount(st.Table, c.Col, v); ok && n > 0 {
				kept = append(kept, s)
			}
		}
		targets = kept
	}
	if targets != nil && len(targets) == 0 {
		targets = append(targets, owners[0])
	}
	return targets
}

// ScatterPruned reports how many per-shard executions the scatter planner's
// index-statistics fast path has skipped.
func (r *Router) ScatterPruned() int64 { return r.pruned.Load() }

// scatter runs one statement on every shard holding candidate rows — in
// parallel — and merges the partial results into exactly what a single
// server holding all the data would return. The candidate set is the range
// map's active owners, read from one snapshot so the target list and the
// pruning accounting agree on a single generation even while a migration
// runs. Shards the index statistics prove empty for the predicate are
// skipped (pruneTargets); an empty shard's contribution to every merge is
// the identity, so pruning is invisible in the results.
func (r *Router) scatter(req query.Request, st *sqlmini.Stmt, ti *tableInfo) query.Result {
	owners := r.ranges.Load().Owners()
	targets := r.pruneTargets(st, req.Args, owners)
	if targets == nil {
		targets = owners
	} else if skipped := len(owners) - len(targets); skipped > 0 {
		r.pruned.Add(int64(skipped))
	}
	n := len(targets)
	res := make([]query.Result, n)
	var wg sync.WaitGroup
	for k, s := range targets {
		wg.Add(1)
		go func(k, s int) {
			defer wg.Done()
			// Span.Child is concurrency-safe, so each leg hangs its own
			// "shard.exec" child off the request span from inside the fan-out.
			res[k] = r.bexec(req, s)
		}(k, s)
	}
	wg.Wait()
	// Validation errors are schema-determined and the schema is identical on
	// every shard, so all shards fail alike; data-dependent errors (bad
	// aggregate column type) fire on whichever shard holds a matching row.
	// Either way any non-nil error is the single-server error.
	vals := make([]any, n)
	infos := make([]sqlmini.ExecInfo, n)
	for k, re := range res {
		if re.Err != nil {
			return query.Fail(re.Err)
		}
		vals[k], infos[k] = re.Value, re.Info
	}
	if st.Agg != sqlmini.AggNone {
		v, err := mergeAgg(st.Agg, vals)
		return query.Result{Value: v, Err: err}
	}
	return query.Ok(mergeRows(ti, targets, vals, infos))
}

// mergeAgg combines per-shard aggregates. COUNT and SUM add (both are 0 on
// an empty shard, the single-server empty result); MAX and MIN compare the
// non-nil partials and return nil — the single-server no-match result — when
// every shard came up empty.
func mergeAgg(kind sqlmini.AggKind, vals []any) (any, error) {
	switch kind {
	case sqlmini.AggCount, sqlmini.AggSum:
		var total int64
		for _, v := range vals {
			n, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("shard: aggregate merge: unexpected partial %T", v)
			}
			total += n
		}
		return total, nil
	case sqlmini.AggMax, sqlmini.AggMin:
		var best int64
		have := false
		for _, v := range vals {
			if v == nil {
				continue
			}
			n, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("shard: aggregate merge: unexpected partial %T", v)
			}
			if !have || (kind == sqlmini.AggMax && n > best) || (kind == sqlmini.AggMin && n < best) {
				best = n
				have = true
			}
		}
		if !have {
			return nil, nil
		}
		return best, nil
	}
	return nil, fmt.Errorf("shard: aggregate merge: unsupported kind %d", kind)
}

// mergeRows interleaves per-shard row results back into global row order.
// Each shard returns its matches in ascending local rid order; the table's
// global map translates (shard, local rid) into the original load order, so
// the merged slice is byte-identical to the single-server result. targets
// names the shard each partial came from (a pruned scatter visits a subset).
func mergeRows(ti *tableInfo, targets []int, vals []any, infos []sqlmini.ExecInfo) interp.Rows {
	type tagged struct {
		pos, shard int
		row        interp.Row
	}
	var all []tagged
	for k, v := range vals {
		s := targets[k]
		rows, _ := v.(interp.Rows)
		matched := infos[k].Matched
		for j, row := range rows {
			// finish() guarantees one matched rid per returned row; the
			// defensive branch keeps a malformed trace deterministic.
			rid := j
			if j < len(matched) {
				rid = matched[j]
			}
			all = append(all, tagged{pos: ti.globalPos(s, rid), shard: s, row: row})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos != all[j].pos {
			return all[i].pos < all[j].pos
		}
		return all[i].shard < all[j].shard
	})
	out := make(interp.Rows, len(all))
	for i, t := range all {
		out[i] = t.row
	}
	return out
}

// ExecBatch splits a set-oriented submission into per-shard sub-batches that
// execute in parallel, plus individual scatter-gather calls for bindings
// with no shard-key value, and demultiplexes everything back into binding
// order. Each sub-batch pays its shard one round trip and one planning
// charge, so an N-shard cluster executes a large batch roughly N-way
// parallel. Per-shard sub-batches hang "shard.batch" children off the
// request's span, scatter fallbacks hang "shard.exec" legs; session,
// deadline and consistency fan out with them.
func (r *Router) ExecBatch(req query.BatchRequest) query.BatchResult {
	r.mig.RLock()
	defer r.mig.RUnlock()
	vals, errs := r.execBatch(req)
	return query.BatchResult{Values: vals, Errs: errs}
}

func (r *Router) execBatch(req query.BatchRequest) ([]any, []error) {
	argSets := req.ArgSets
	st, err := r.prep.Prepare(req.SQL)
	if err != nil {
		return r.bexecBatch(req, 0).Pair()
	}
	ti := r.table(st.Table)
	if ti == nil {
		return r.bexecBatch(req, 0).Pair()
	}
	if ti.key == "" {
		if st.Insert {
			return r.broadcastBatch(req, st.Table)
		}
		return r.bexecBatch(req, 0).Pair()
	}

	rg := r.ranges.Load()
	n := len(argSets)
	results := make([]any, n)
	errs := make([]error, n)
	groups := make([][]int, len(r.backends)) // binding indices per shard
	var scatterIdx []int
	var hashes []uint64 // per-binding key hash (insert double-write routing)
	if st.Insert {
		hashes = make([]uint64, n)
	}
	for i, args := range argSets {
		var v any
		var ok bool
		if st.Insert {
			if v, ok = st.InsertValue(ti.keyPos, args); !ok {
				// Failing bindings execute (and fail identically) anywhere.
				groups[0] = append(groups[0], i)
				continue
			}
		} else if v, ok = st.WhereEqValue(ti.key, args); !ok {
			scatterIdx = append(scatterIdx, i)
			continue
		}
		h := Hash64(v)
		if hashes != nil {
			hashes[i] = h
		}
		groups[rg.Owner(h)] = append(groups[rg.Owner(h)], i)
	}

	// landed records, per binding of an insert batch, the shard and local
	// row id the insert produced, so the positions can be noted in exact
	// binding order after the parallel sub-batches drain — a single server
	// applies the bindings in that order.
	var landed [][2]int
	if st.Insert && ti.key != "" {
		landed = make([][2]int, n)
		for i := range landed {
			landed[i] = [2]int{-1, -1}
		}
	}

	var wg sync.WaitGroup
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			sub := make([][]any, len(idxs))
			for j, i := range idxs {
				sub[j] = argSets[i]
			}
			sreq := req
			sreq.ArgSets = sub
			br := r.bexecBatch(sreq, s)
			for j, i := range idxs {
				if j < len(br.Values) {
					results[i] = br.Values[j]
				}
				if j < len(br.Errs) {
					errs[i] = br.Errs[j]
				}
				if landed != nil && j < len(br.Info.InsertRids) && br.Info.InsertRids[j] >= 0 {
					landed[i] = [2]int{s, br.Info.InsertRids[j]}
				}
			}
		}(s, idxs)
	}
	for _, i := range scatterIdx {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := query.Request{
				Name: req.Name, SQL: req.SQL, Args: argSets[i],
				Span: req.Span, Session: req.Session,
				Consistency: req.Consistency, Deadline: req.Deadline,
			}
			res := r.scatter(sub, st, ti)
			results[i], errs[i] = res.Value, res.Err
		}(i)
	}
	wg.Wait()
	for i := range landed {
		if landed[i][0] >= 0 {
			ti.notePos(landed[i][0], landed[i][1])
			r.stagePending(st.Table, landed[i][0], landed[i][1], hashes[i], false)
		}
	}
	return results, errs
}

// broadcastBatch applies a replicated-table write batch to every shard in
// parallel and returns shard 0's per-binding results. Acknowledged bindings
// are staged for double-writing (in binding order) while a migration's copy
// phase runs.
func (r *Router) broadcastBatch(req query.BatchRequest, table string) ([]any, []error) {
	out := make([]query.BatchResult, len(r.backends))
	var wg sync.WaitGroup
	for i := range r.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = r.bexecBatch(req, i)
		}(i)
	}
	wg.Wait()
	for _, rid := range out[0].Info.InsertRids {
		if rid >= 0 {
			r.stagePending(table, 0, rid, 0, true)
		}
	}
	return out[0].Pair()
}

// BatchGroup is the coalescing refinement for batched submission
// (batch.Options.GroupFn): it returns the shard a request would route to,
// or len(backends) for statements that scatter or fail, so the coalescer
// forms single-shard batches that ExecBatch never has to split. Grouping is
// an optimization only — ExecBatch re-derives the routing per binding, so a
// mixed batch still executes correctly.
func (r *Router) BatchGroup(name, sql string, args []any) int {
	r.mig.RLock()
	defer r.mig.RUnlock()
	st, err := r.prep.Prepare(sql)
	if err != nil {
		return len(r.backends)
	}
	ti := r.table(st.Table)
	if ti == nil || ti.key == "" {
		return len(r.backends)
	}
	var v any
	var ok bool
	if st.Insert {
		v, ok = st.InsertValue(ti.keyPos, args)
	} else {
		v, ok = st.WhereEqValue(ti.key, args)
	}
	if !ok {
		return len(r.backends)
	}
	return r.ranges.Load().OwnerOf(v)
}

// SetMetrics points every shard's passive instrumentation (WAL fsync
// histograms) at reg. Safe to call at any time; a nil registry detaches.
func (r *Router) SetMetrics(reg *obs.Registry) {
	r.mig.RLock()
	defer r.mig.RUnlock()
	for _, b := range r.backends {
		b.SetMetrics(reg)
	}
}

// RegisterMetrics hooks the whole cluster's counters into reg as pull
// sources: one "shard<i>." subtree per backend (server or replica-group
// stats plus WAL state), a router-level source for the scatter planner, and
// a "shard.migrations" source for the re-sharding machinery (generation,
// splits, merges, ranges moved, rows copied, double-writes). It also calls
// SetMetrics so fsync histograms land in the same registry. The hookup is
// remembered: a migration re-registers swapped and appended backends under
// their shard index on flip.
func (r *Router) RegisterMetrics(reg *obs.Registry, prefix string) {
	r.mig.Lock()
	defer r.mig.Unlock()
	r.reg, r.regPrefix = reg, prefix
	r.registerMetricsLocked()
}

// registerMetricsLocked (re)registers every backend and the router sources
// under the remembered registry; callers hold the mig write lock.
func (r *Router) registerMetricsLocked() {
	reg, prefix := r.reg, r.regPrefix
	if reg == nil {
		return
	}
	for i, b := range r.backends {
		b.SetMetrics(reg)
		b.RegisterMetrics(reg, fmt.Sprintf("%sshard%d.", prefix, i))
	}
	reg.RegisterSource(prefix+"router", func() map[string]float64 {
		return map[string]float64{"scatter.pruned": float64(r.pruned.Load())}
	})
	reg.RegisterSource(prefix+"shard.migrations", func() map[string]float64 {
		ms := r.MigrationStats()
		return map[string]float64{
			"generation":    float64(ms.Generation),
			"splits":        float64(ms.Splits),
			"merges":        float64(ms.Merges),
			"ranges.moved":  float64(ms.RangesMoved),
			"rows.copied":   float64(ms.RowsCopied),
			"double.writes": float64(ms.DoubleWrites),
		}
	})
}

// Warm preloads every shard's registered extents.
func (r *Router) Warm() {
	r.mig.RLock()
	defer r.mig.RUnlock()
	for _, b := range r.backends {
		b.Warm()
	}
}

// ColdStart empties every shard's buffer pool.
func (r *Router) ColdStart() {
	r.mig.RLock()
	defer r.mig.RUnlock()
	for _, b := range r.backends {
		b.ColdStart()
	}
}

// SetScale updates the latency scale on every shard's clock.
func (r *Router) SetScale(scale float64) {
	r.mig.RLock()
	defer r.mig.RUnlock()
	for _, b := range r.backends {
		b.SetScale(scale)
	}
}

// Close shuts down every backend.
func (r *Router) Close() {
	r.mig.RLock()
	defer r.mig.RUnlock()
	for _, b := range r.backends {
		b.Close()
	}
}

// ShardStats returns each backend's counters, in shard order.
func (r *Router) ShardStats() []server.Stats {
	r.mig.RLock()
	defer r.mig.RUnlock()
	out := make([]server.Stats, len(r.backends))
	for i, b := range r.backends {
		out[i] = b.Stats()
	}
	return out
}

// Stats returns cluster-aggregate counters: sums of the per-shard counts
// (round trips, batches, buffer and disk activity); VirtualTime is the
// maximum across shards, since shards burn simulated time in parallel.
func (r *Router) Stats() server.Stats {
	var agg server.Stats
	for _, s := range r.ShardStats() {
		agg.Queries += s.Queries
		agg.Inserts += s.Inserts
		agg.RowsRead += s.RowsRead
		agg.NetRequests += s.NetRequests
		agg.Batches += s.Batches
		agg.BufferHits += s.BufferHits
		agg.BufferMiss += s.BufferMiss
		agg.Disk.Requests += s.Disk.Requests
		agg.Disk.PagesRead += s.Disk.PagesRead
		agg.Disk.Writes += s.Disk.Writes
		agg.Disk.PagesWritten += s.Disk.PagesWritten
		agg.Disk.SeekTime += s.Disk.SeekTime
		agg.Disk.BusyTime += s.Disk.BusyTime
		if s.Disk.MaxQueue > agg.Disk.MaxQueue {
			agg.Disk.MaxQueue = s.Disk.MaxQueue
		}
		if s.VirtualTime > agg.VirtualTime {
			agg.VirtualTime = s.VirtualTime
		}
	}
	return agg
}
