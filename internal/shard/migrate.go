package shard

import (
	"fmt"

	"repro/internal/replica"
)

// This file implements online re-sharding: Router.Split and Router.Merge
// move hash-range ownership between backends while traffic keeps flowing.
//
// Storage is append-only (no row deletion), so a migration never carves
// rows out of a live backend; it builds replacement backends and retires
// the old ones whole. The protocol, for either operation:
//
//  1. Barrier (mig write lock, no statement in flight): snapshot per-table
//     row-count cutoffs on the source shards and arm double-write capture.
//     Every row below a cutoff is a fully acknowledged, position-mapped
//     row; every insert acknowledged after the barrier is captured, with
//     its row materialized, in the pending buffer.
//  2. Copy (no router locks, traffic flowing): build the replacement
//     backends from the cutoff prefixes — tables in original DDL order,
//     rows filtered by the next-generation range map, indexes, warm
//     buffer pools. New backends are invisible to routing.
//  3. Flip (mig write lock again): apply the pending double-writes to the
//     replacements in capture order, splice the replacements into the
//     backend set, install the next-generation range map, disarm capture.
//     Readers drain before the lock and re-route after it, so no statement
//     ever observes a partial move.
//  4. Retire: close the old backends; checkpoint replacement replica
//     groups so their bulk-loaded state is crash-recoverable.
//
// The flip never reads the source backends — pending rows were
// materialized at capture — so a source primary crash between copy and
// flip cannot lose or duplicate an acknowledged write: everything
// acknowledged before the barrier is below a cutoff, everything after is
// in the pending buffer, and unacknowledged inserts are in neither.

// MigrationStats counts the re-sharding machinery's work to date.
type MigrationStats struct {
	Generation   int64 // range-map generation (Split/Merge steps applied)
	Splits       int64
	Merges       int64
	RangesMoved  int64 // hash ranges that changed owner
	RowsCopied   int64 // rows bulk-copied onto replacement backends
	DoubleWrites int64 // inserts captured and replayed by migrations
}

// MigrationStats returns the router's migration counters.
func (r *Router) MigrationStats() MigrationStats {
	return MigrationStats{
		Generation:   r.ranges.Load().Generation(),
		Splits:       r.splits.Load(),
		Merges:       r.merges.Load(),
		RangesMoved:  r.rangesMoved.Load(),
		RowsCopied:   r.rowsCopied.Load(),
		DoubleWrites: r.doubleWrites.Load(),
	}
}

// SetMigrationHook installs a hook called, with no router locks held, at
// two points of every migration: "copy" — after the double-write barrier,
// before the bulk copy — and "flip" — after copy and warmup, just before
// the atomic routing flip. Tests use it to run traffic against the router
// or crash a source primary at a deterministic migration point.
func (r *Router) SetMigrationHook(fn func(phase string)) {
	r.mig.Lock()
	r.migHook = fn
	r.mig.Unlock()
}

// Split halves the widest hash range of shard s: a fresh backend is
// appended to the cluster and takes ownership of the upper half, while a
// rebuilt shard s keeps the lower half (and any other ranges s owns).
// Traffic keeps flowing throughout; the routing change is atomic under the
// next range-map generation.
func (r *Router) Split(s int) error {
	r.migMu.Lock()
	defer r.migMu.Unlock()
	if s < 0 || s >= len(r.backends) {
		return fmt.Errorf("shard: split: no shard %d", s)
	}
	if r.mk == nil {
		return fmt.Errorf("shard: split: no backend factory (router wraps external backends; call SetBackendFactory)")
	}
	newIdx := len(r.backends)
	cur := r.ranges.Load()
	next, _, err := cur.Split(s, newIdx)
	if err != nil {
		return err
	}
	order := r.ddlOrder()
	newA, newB := r.mk(), r.mk()

	// Barrier: arm double-write capture and take the copy cutoffs with no
	// statement in flight.
	r.mig.Lock()
	cut := r.cutoffs([]int{s}, order)
	r.migActive = true
	r.migSources = map[int]bool{s: true}
	r.pending = nil
	hook := r.migHook
	r.mig.Unlock()

	if hook != nil {
		hook("copy")
	}
	globA, nA, err := r.buildBackend(newA, order, []copySrc{
		{slot: s, keep: func(h uint64) bool { return next.Owner(h) == s }},
	}, s, cut)
	if err == nil {
		var globB map[string][]int
		var nB int64
		globB, nB, err = r.buildBackend(newB, order, []copySrc{
			{slot: s, keep: func(h uint64) bool { return next.Owner(h) == newIdx }},
		}, s, cut)
		if err == nil {
			if hook != nil {
				hook("flip")
			}
			r.mig.Lock()
			err = r.applyPending(next, map[int]Backend{s: newA, newIdx: newB},
				map[int]map[string][]int{s: globA, newIdx: globB})
			if err == nil {
				for _, name := range order {
					ti := r.table(name)
					ti.mu.Lock()
					if ti.key != "" {
						ti.global[s] = globA[name]
						ti.global = append(ti.global, globB[name])
					} else {
						ti.global = append(ti.global, nil)
					}
					ti.mu.Unlock()
				}
				nb := make([]Backend, newIdx+1)
				copy(nb, r.backends)
				old := nb[s]
				nb[s] = newA
				nb[newIdx] = newB
				r.backends = nb
				r.ranges.Store(next)
				r.migActive, r.migSources, r.pending = false, nil, nil
				r.splits.Add(1)
				r.rangesMoved.Add(1)
				r.rowsCopied.Add(nA + nB)
				r.registerMetricsLocked()
				r.mig.Unlock()
				old.Close()
				return r.checkpointNew(newA, newB)
			}
			r.mig.Unlock()
		}
	}
	r.abortMigration(newA, newB)
	return err
}

// Merge folds shard b into shard a: a rebuilt shard a takes ownership of
// every range b owned (plus its own), and slot b is replaced by a fresh
// backend holding only the replicated tables — it stays a full broadcast
// participant but owns no hash range and holds no sharded rows. Traffic
// keeps flowing throughout; the routing change is atomic under the next
// range-map generation.
func (r *Router) Merge(a, b int) error {
	r.migMu.Lock()
	defer r.migMu.Unlock()
	if a < 0 || a >= len(r.backends) || b < 0 || b >= len(r.backends) {
		return fmt.Errorf("shard: merge: no shard pair (%d,%d)", a, b)
	}
	if r.mk == nil {
		return fmt.Errorf("shard: merge: no backend factory (router wraps external backends; call SetBackendFactory)")
	}
	cur := r.ranges.Load()
	next, moved, err := cur.Merge(a, b)
	if err != nil {
		return err
	}
	order := r.ddlOrder()
	newC, newE := r.mk(), r.mk()

	r.mig.Lock()
	cut := r.cutoffs([]int{a, b}, order)
	r.migActive = true
	r.migSources = map[int]bool{a: true, b: true}
	r.pending = nil
	hook := r.migHook
	r.mig.Unlock()

	if hook != nil {
		hook("copy")
	}
	globC, nC, err := r.buildBackend(newC, order, []copySrc{
		{slot: a}, {slot: b},
	}, a, cut)
	if err == nil {
		var nE int64
		_, nE, err = r.buildBackend(newE, order, nil, b, cut)
		if err == nil {
			if hook != nil {
				hook("flip")
			}
			r.mig.Lock()
			err = r.applyPending(next, map[int]Backend{a: newC, b: newE},
				map[int]map[string][]int{a: globC})
			if err == nil {
				for _, name := range order {
					ti := r.table(name)
					ti.mu.Lock()
					if ti.key != "" {
						ti.global[a] = globC[name]
						ti.global[b] = nil
					}
					ti.mu.Unlock()
				}
				nb := make([]Backend, len(r.backends))
				copy(nb, r.backends)
				oldA, oldB := nb[a], nb[b]
				nb[a] = newC
				nb[b] = newE
				r.backends = nb
				r.ranges.Store(next)
				r.migActive, r.migSources, r.pending = false, nil, nil
				r.merges.Add(1)
				r.rangesMoved.Add(int64(moved))
				r.rowsCopied.Add(nC + nE)
				r.registerMetricsLocked()
				r.mig.Unlock()
				oldA.Close()
				oldB.Close()
				return r.checkpointNew(newC, newE)
			}
			r.mig.Unlock()
		}
	}
	r.abortMigration(newC, newE)
	return err
}

// copySrc names one source slot of a migration copy and the hash filter
// selecting which of its sharded rows move to the destination (nil keeps
// every row).
type copySrc struct {
	slot int
	keep func(h uint64) bool
}

// ddlOrder snapshots the tables in original DDL (reference extent) order so
// replacement backends reproduce identical extent numbering.
func (r *Router) ddlOrder() []string {
	r.tmu.RLock()
	defer r.tmu.RUnlock()
	return append([]string(nil), r.tableOrder...)
}

// cutoffs snapshots each source slot's per-table row counts. Called under
// the mig write lock with no statement in flight, so every row below a
// cutoff is fully acknowledged and position-mapped, and every insert
// acknowledged afterward lands in the double-write buffer instead.
func (r *Router) cutoffs(slots []int, order []string) map[int]map[string]int {
	out := map[int]map[string]int{}
	for _, s := range slots {
		m := map[string]int{}
		for _, name := range order {
			m[name] = r.backends[s].NumTableRows(name)
		}
		out[s] = m
	}
	return out
}

// buildBackend constructs one replacement backend from cutoff prefixes:
// every table in DDL order, replicated tables copied whole from replSrc,
// sharded tables copied from each source filtered by its keep function,
// then FinishLoad, the original indexes, and a warm buffer pool. It runs
// with traffic flowing — storage is append-only, so the rows below the
// barrier's cutoffs are immutable. Returns the global row positions of the
// copied sharded rows (per table, in destination rid order) and the total
// rows copied.
func (r *Router) buildBackend(dst Backend, order []string, srcs []copySrc, replSrc int, cut map[int]map[string]int) (map[string][]int, int64, error) {
	glob := map[string][]int{}
	var copied int64
	for _, name := range order {
		ti := r.table(name)
		if err := dst.CreateTable(name, ti.schema, ti.rowsPerPage); err != nil {
			return nil, 0, fmt.Errorf("shard: migrate: create %s: %w", name, err)
		}
		if ti.key == "" {
			src := r.backends[replSrc]
			for rid, n := 0, cut[replSrc][name]; rid < n; rid++ {
				if err := dst.InsertRow(name, src.TableRow(name, rid)); err != nil {
					return nil, 0, fmt.Errorf("shard: migrate: copy %s: %w", name, err)
				}
				copied++
			}
			continue
		}
		for _, cs := range srcs {
			src := r.backends[cs.slot]
			for rid, n := 0, cut[cs.slot][name]; rid < n; rid++ {
				row := src.TableRow(name, rid)
				if cs.keep != nil && !cs.keep(Hash64(row[ti.keyPos])) {
					continue
				}
				if err := dst.InsertRow(name, row); err != nil {
					return nil, 0, fmt.Errorf("shard: migrate: copy %s: %w", name, err)
				}
				glob[name] = append(glob[name], ti.globalPos(cs.slot, rid))
				copied++
			}
		}
	}
	dst.FinishLoad()
	for _, name := range order {
		ti := r.table(name)
		for _, ix := range ti.indexes {
			if err := dst.AddIndex(name, ix.Column, ix.Unique); err != nil {
				return nil, 0, fmt.Errorf("shard: migrate: index %s(%s): %w", name, ix.Column, err)
			}
		}
	}
	dst.Warm()
	return glob, copied, nil
}

// applyPending replays the double-write buffer onto the replacement
// backends in capture order: replicated-table rows to every replacement,
// sharded rows to the next-generation owner. Called under the mig write
// lock — the barrier guarantees every captured insert's position map entry
// is complete — and never reads a source backend (rows were materialized at
// capture), so it tolerates a source primary crash during the copy phase.
// glob accumulates the applied rows' global positions per destination.
func (r *Router) applyPending(next *Ranges, dsts map[int]Backend, glob map[int]map[string][]int) error {
	r.pendingMu.Lock()
	pending := r.pending
	r.pendingMu.Unlock()
	for _, p := range pending {
		if p.repl {
			for _, dst := range dsts {
				if err := dst.InsertRow(p.table, p.row); err != nil {
					return fmt.Errorf("shard: migrate: double-write %s: %w", p.table, err)
				}
			}
			continue
		}
		owner := next.Owner(p.h)
		dst, ok := dsts[owner]
		if !ok {
			return fmt.Errorf("shard: migrate: double-write %s routed to unmigrated shard %d", p.table, owner)
		}
		if err := dst.InsertRow(p.table, p.row); err != nil {
			return fmt.Errorf("shard: migrate: double-write %s: %w", p.table, err)
		}
		ti := r.table(p.table)
		g := glob[owner]
		g[p.table] = append(g[p.table], ti.globalPos(p.src, p.srcRid))
	}
	return nil
}

// abortMigration disarms double-write capture and discards the replacement
// backends after a failed copy or flip, leaving the cluster exactly as it
// was.
func (r *Router) abortMigration(fresh ...Backend) {
	r.mig.Lock()
	r.migActive, r.migSources, r.pending = false, nil, nil
	r.mig.Unlock()
	for _, b := range fresh {
		b.Close()
	}
}

// checkpointNew snapshots replacement replica groups so their bulk-loaded
// base state (copy plus applied double-writes) is recoverable: a later
// primary crash restores from this snapshot plus the WAL tail written
// since — the snapshot+tail handoff. Bare server backends have no log to
// recover from and need nothing.
func (r *Router) checkpointNew(bs ...Backend) error {
	for _, b := range bs {
		if g, ok := b.(*replica.Group); ok {
			if err := g.Checkpoint(); err != nil {
				return fmt.Errorf("shard: migrate: checkpoint: %w", err)
			}
		}
	}
	return nil
}
