package shard

import "testing"

// FuzzPartition drives the range map through arbitrary split/merge
// histories and checks, at every generation, that an arbitrary key hashes
// into exactly one owned range (by linear scan, independently of the
// binary-search Owner), that the structural invariants hold, and that
// deliberately corrupted variants — overlapping or gapped range sets — are
// rejected by Validate.
func FuzzPartition(f *testing.F) {
	f.Add(int64(42), uint8(3), uint64(0xBEEF))
	f.Add(int64(-1), uint8(1), uint64(0))
	f.Add(int64(20110411), uint8(6), uint64(^uint64(0)))
	f.Add(int64(0), uint8(2), uint64(0x123456789ABCDEF0))
	f.Fuzz(func(t *testing.T, key int64, nSeed uint8, ops uint64) {
		backends := int(nSeed%6) + 1
		rg := NewRanges(backends)

		check := func(step int) {
			if err := rg.Validate(backends); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			h := Hash64(key)
			entries := rg.Entries()
			owned, owner := 0, -1
			for k, e := range entries {
				inUpper := k == len(entries)-1 || h < entries[k+1].Start
				if h >= e.Start && inUpper {
					owned++
					owner = e.Owner
				}
			}
			if owned != 1 {
				t.Fatalf("step %d: key %d (hash %#x) lies in %d ranges, want exactly 1 (%v)",
					step, key, h, owned, entries)
			}
			if got := rg.Owner(h); got != owner {
				t.Fatalf("step %d: Owner(%#x) = %d, linear scan says %d", step, h, got, owner)
			}
			// Corrupted variants must not validate: duplicate a start
			// (overlap) and drop the ring bottom (gap).
			if len(entries) > 1 {
				overlap := &Ranges{entries: rg.Entries()}
				overlap.entries[1].Start = overlap.entries[0].Start
				if overlap.Validate(backends) == nil {
					t.Fatalf("step %d: Validate accepted overlapping ranges", step)
				}
				gapped := &Ranges{entries: rg.Entries()[1:]}
				if gapped.Validate(backends) == nil {
					t.Fatalf("step %d: Validate accepted a gapped range set", step)
				}
			}
		}

		check(0)
		for i := 0; i < 16; i++ {
			op := (ops >> (uint(i) * 4)) & 0xF
			target := int(op>>1) % backends
			if op&1 == 0 {
				next, _, err := rg.Split(target, backends)
				if err != nil {
					continue // rangeless or unsplittable target: map unchanged
				}
				rg = next
				backends++
			} else {
				other := (target + 1 + int(op>>2)) % backends
				if other == target {
					continue
				}
				next, _, err := rg.Merge(target, other)
				if err != nil {
					continue
				}
				rg = next
			}
			check(i + 1)
		}
	})
}
