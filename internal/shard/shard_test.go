package shard

import (
	"fmt"
	"math/rand"
	"repro/internal/query"
	"testing"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
)

// newFixture loads a reference server with a sharded users table (unique
// index on uid, secondary on grp) and a replicated logs table, and a router
// over n shards partitioned from it. Scale 0: no wall-clock sleeping.
func newFixture(t *testing.T, n int) (*server.Server, *Router) {
	t.Helper()
	ref := server.New(server.SYS1(), 0)
	t.Cleanup(ref.Close)
	users := ref.Catalog().CreateTable("users", storage.NewSchema(
		storage.Column{Name: "uid", Type: storage.TInt},
		storage.Column{Name: "name", Type: storage.TString},
		storage.Column{Name: "grp", Type: storage.TInt},
	))
	users.SetRowsPerPage(8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		if _, err := users.Insert([]any{int64(i), fmt.Sprintf("u%d", i), int64(rng.Intn(20))}); err != nil {
			t.Fatal(err)
		}
	}
	logs := ref.Catalog().CreateTable("logs", storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "msg", Type: storage.TString},
	))
	for i := 0; i < 40; i++ {
		if _, err := logs.Insert([]any{int64(i), fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A sharded table with zero rows: scatter merges must treat every
	// shard's empty contribution as the identity.
	ref.Catalog().CreateTable("empty", storage.NewSchema(
		storage.Column{Name: "eid", Type: storage.TInt},
		storage.Column{Name: "tag", Type: storage.TString},
	))
	ref.FinishLoad()
	if err := ref.AddIndex("users", "uid", true); err != nil {
		t.Fatal(err)
	}
	if err := ref.AddIndex("users", "grp", false); err != nil {
		t.Fatal(err)
	}

	r := newRouter(t, ref, Options{Shards: n, Keys: fixtureKeys()})
	return ref, r
}

func fixtureKeys() map[string]string {
	return map[string]string{"users": "uid", "empty": "eid"}
}

// newRouter builds a router with the given options partitioned from ref.
func newRouter(t *testing.T, ref *server.Server, opts Options) *Router {
	t.Helper()
	r := New(server.SYS1(), 0, opts)
	t.Cleanup(r.Close)
	if err := r.LoadFrom(ref); err != nil {
		t.Fatal(err)
	}
	return r
}

// same asserts the sharded result equals the single-server result.
func same(t *testing.T, label string, want, got any, wantErr, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: single %v, sharded %v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text: single %q, sharded %q", label, wantErr, gotErr)
		}
		return
	}
	if !interp.Equal(want, got) {
		t.Fatalf("%s: result: single %s, sharded %s",
			label, interp.Format(want), interp.Format(got))
	}
}

func TestPartitionIsDeterministicAndSpreads(t *testing.T) {
	counts := make([]int, 4)
	for i := int64(0); i < 1000; i++ {
		s := Partition(i, 4)
		if s != Partition(i, 4) {
			t.Fatalf("unstable partition for %d", i)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("partition out of range: %d", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys: %v", s, counts)
		}
	}
	if Partition("abc", 3) != Partition("abc", 3) {
		t.Fatal("unstable string partition")
	}
	if Partition(int64(42), 1) != 0 {
		t.Fatal("single shard must own everything")
	}
}

func TestPointQueryRoutesToOwningShard(t *testing.T) {
	ref, r := newFixture(t, 3)
	const q = "select name, grp from users where uid = ?"
	for i := int64(0); i < 100; i++ {
		want, wantErr := ref.Exec(query.Req("q", q, []any{i})).Pair()
		got, gotErr := r.Exec(query.Req("q", q, []any{i})).Pair()
		same(t, fmt.Sprintf("uid=%d", i), want, got, wantErr, gotErr)
	}
	// Point queries must not fan out: exactly one backend round trip each.
	if n := r.Stats().NetRequests; n != 100 {
		t.Fatalf("expected 100 round trips for 100 point queries, got %d", n)
	}
	perShard := r.ShardStats()
	var spread int
	for _, s := range perShard {
		if s.Queries > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("expected point queries spread over shards, got %+v", perShard)
	}
}

func TestScatterRowSelectPreservesGlobalOrder(t *testing.T) {
	ref, r := newFixture(t, 4)
	// grp is not the shard key: matching rows live on several shards and the
	// single-server result interleaves them in insertion (rid) order.
	const q = "select uid, name from users where grp = ?"
	for g := int64(0); g < 20; g++ {
		want, wantErr := ref.Exec(query.Req("q", q, []any{g})).Pair()
		got, gotErr := r.Exec(query.Req("q", q, []any{g})).Pair()
		same(t, fmt.Sprintf("grp=%d", g), want, got, wantErr, gotErr)
		if rows, ok := want.(interp.Rows); !ok || len(rows) == 0 {
			t.Fatalf("grp=%d: degenerate fixture, want non-empty rows", g)
		}
	}
}

func TestScatterAggregates(t *testing.T) {
	ref, r := newFixture(t, 4)
	queries := []string{
		"select count(uid) from users where grp = ?",
		"select sum(uid) from users where grp = ?",
		"select max(uid) from users where grp = ?",
		"select min(uid) from users where grp = ?",
	}
	for _, q := range queries {
		for _, g := range []int64{0, 7, 19, 99} { // 99 matches nothing
			want, wantErr := ref.Exec(query.Req("q", q, []any{g})).Pair()
			got, gotErr := r.Exec(query.Req("q", q, []any{g})).Pair()
			same(t, fmt.Sprintf("%s g=%d", q, g), want, got, wantErr, gotErr)
		}
	}
	// Predicate-free full scans scatter too.
	for _, q := range []string{
		"select count(uid) from users",
		"select sum(grp) from users",
	} {
		want, wantErr := ref.Exec(query.Req("q", q, nil)).Pair()
		got, gotErr := r.Exec(query.Req("q", q, nil)).Pair()
		same(t, q, want, got, wantErr, gotErr)
	}
}

func TestRoutedInsertAndReadBack(t *testing.T) {
	ref, r := newFixture(t, 3)
	const ins = "insert into users values (?, ?, ?)"
	const sel = "select name from users where uid = ?"
	for i := int64(1000); i < 1020; i++ {
		args := []any{i, fmt.Sprintf("new%d", i), int64(3)}
		want, wantErr := ref.Exec(query.Req("ins", ins, args)).Pair()
		got, gotErr := r.Exec(query.Req("ins", ins, args)).Pair()
		same(t, "insert", want, got, wantErr, gotErr)
	}
	var total int
	for _, b := range r.Backends() {
		total += b.(*server.Server).Catalog().Table("users").NumRows()
	}
	if total != ref.Catalog().Table("users").NumRows() {
		t.Fatalf("sharded row total %d != single-server %d", total,
			ref.Catalog().Table("users").NumRows())
	}
	for i := int64(1000); i < 1020; i++ {
		want, wantErr := ref.Exec(query.Req("q", sel, []any{i})).Pair()
		got, gotErr := r.Exec(query.Req("q", sel, []any{i})).Pair()
		same(t, fmt.Sprintf("readback uid=%d", i), want, got, wantErr, gotErr)
	}
	// Scatter reads see the runtime-inserted rows in exact insertion order:
	// the grp=3 result now interleaves loaded rows with the new ones (which
	// landed on different shards), and the router's insert trace must merge
	// them where a single server would.
	want, wantErr := ref.Exec(query.Req("q", "select uid, name from users where grp = ?", []any{int64(3)})).Pair()
	got, gotErr := r.Exec(query.Req("q", "select uid, name from users where grp = ?", []any{int64(3)})).Pair()
	same(t, "scatter after inserts", want, got, wantErr, gotErr)
}

func TestReplicatedTableBroadcastsWritesAndReadsLocally(t *testing.T) {
	ref, r := newFixture(t, 3)
	want, wantErr := ref.Exec(query.Req("ins", "insert into logs values (?, ?)", []any{int64(100), "hello"})).Pair()
	got, gotErr := r.Exec(query.Req("ins", "insert into logs values (?, ?)", []any{int64(100), "hello"})).Pair()
	same(t, "replicated insert", want, got, wantErr, gotErr)
	for s, b := range r.Backends() {
		if n := b.(*server.Server).Catalog().Table("logs").NumRows(); n != 41 {
			t.Fatalf("shard %d: replicated logs has %d rows, want 41", s, n)
		}
	}
	want, wantErr = ref.Exec(query.Req("q", "select msg from logs where id = ?", []any{int64(100)})).Pair()
	got, gotErr = r.Exec(query.Req("q", "select msg from logs where id = ?", []any{int64(100)})).Pair()
	same(t, "replicated read", want, got, wantErr, gotErr)
}

func TestExecBatchSplitsAndDemultiplexesInOrder(t *testing.T) {
	ref, r := newFixture(t, 4)
	const q = "select name, grp from users where uid = ?"
	rng := rand.New(rand.NewSource(11))
	argSets := make([][]any, 64)
	for i := range argSets {
		argSets[i] = []any{int64(rng.Intn(500))}
	}
	wantVals, wantErrs := ref.ExecBatch(query.BatchReq("q", q, argSets)).Pair()
	gotVals, gotErrs := r.ExecBatch(query.BatchReq("q", q, argSets)).Pair()
	if len(gotVals) != len(argSets) || len(gotErrs) != len(argSets) {
		t.Fatalf("batch result arity: %d vals, %d errs", len(gotVals), len(gotErrs))
	}
	for i := range argSets {
		same(t, fmt.Sprintf("binding %d", i), wantVals[i], gotVals[i], wantErrs[i], gotErrs[i])
	}
	// The batch must split into at most one sub-batch per shard, in parallel:
	// round trips paid == number of shards hit, not number of bindings.
	agg := r.Stats()
	if agg.Batches < 2 || agg.Batches > int64(len(r.Backends())) {
		t.Fatalf("expected 2..%d per-shard sub-batches, got %d", len(r.Backends()), agg.Batches)
	}
	if agg.NetRequests != agg.Batches {
		t.Fatalf("round trips %d != sub-batches %d", agg.NetRequests, agg.Batches)
	}
}

func TestExecBatchScatterBindings(t *testing.T) {
	ref, r := newFixture(t, 3)
	// grp is not the shard key, so every binding scatter-gathers; results
	// still demultiplex back into binding order.
	const q = "select uid from users where grp = ?"
	argSets := [][]any{{int64(3)}, {int64(99)}, {int64(3)}, {int64(17)}}
	wantVals, wantErrs := ref.ExecBatch(query.BatchReq("q", q, argSets)).Pair()
	gotVals, gotErrs := r.ExecBatch(query.BatchReq("q", q, argSets)).Pair()
	for i := range argSets {
		same(t, fmt.Sprintf("scatter binding %d", i), wantVals[i], gotVals[i], wantErrs[i], gotErrs[i])
	}
}

func TestErrorTextsMatchSingleServer(t *testing.T) {
	ref, r := newFixture(t, 3)
	cases := []struct {
		label string
		sql   string
		args  []any
	}{
		{"parse error", "delete from users", nil},
		{"unknown table", "select a from nosuch where a = ?", []any{int64(1)}},
		{"unknown column", "select nope from users where uid = ?", []any{int64(1)}},
		{"unknown where column", "select name from users where nope = ?", []any{int64(1)}},
		{"param count", "select name from users where uid = ?", nil},
		{"insert arity", "insert into users values (?)", []any{int64(1)}},
	}
	for _, c := range cases {
		want, wantErr := ref.Exec(query.Req("q", c.sql, c.args)).Pair()
		got, gotErr := r.Exec(query.Req("q", c.sql, c.args)).Pair()
		if wantErr == nil {
			t.Fatalf("%s: fixture expected an error", c.label)
		}
		same(t, c.label, want, got, wantErr, gotErr)
	}
	// Batch path: malformed statements fail every binding with the same text.
	wantVals, wantErrs := ref.ExecBatch(query.BatchReq("q", "select a from nosuch where a = ?", [][]any{{int64(1)}, {int64(2)}})).Pair()
	gotVals, gotErrs := r.ExecBatch(query.BatchReq("q", "select a from nosuch where a = ?", [][]any{{int64(1)}, {int64(2)}})).Pair()
	for i := range wantErrs {
		same(t, fmt.Sprintf("batch err %d", i), wantVals[i], gotVals[i], wantErrs[i], gotErrs[i])
	}
}

func TestStatsAggregateAndWarm(t *testing.T) {
	_, r := newFixture(t, 2)
	r.ColdStart()
	r.Warm()
	if _, err := r.Exec(query.Req("q", "select name from users where uid = ?", []any{int64(1)})).Pair(); err != nil {
		t.Fatal(err)
	}
	agg := r.Stats()
	if agg.Queries != 1 || agg.NetRequests != 1 {
		t.Fatalf("aggregate stats: %+v", agg)
	}
	per := r.ShardStats()
	if len(per) != 2 {
		t.Fatalf("want 2 shard stats, got %d", len(per))
	}
	var q int64
	for _, s := range per {
		q += s.Queries
	}
	if q != agg.Queries {
		t.Fatalf("per-shard queries %d != aggregate %d", q, agg.Queries)
	}
	// Warm pools answer the point query without disk reads.
	if agg.Disk.PagesRead != 0 {
		t.Fatalf("warm read hit the disk: %+v", agg.Disk)
	}
}

// TestScatterMergeEdgeCases pins the merge identities: zero-match scatters,
// aggregates over zero rows, and a sharded table that is entirely empty.
func TestScatterMergeEdgeCases(t *testing.T) {
	ref, r := newFixture(t, 4)
	queries := []struct {
		sql  string
		args []any
	}{
		// grp=999 matches nothing anywhere: empty row merge, empty aggregates.
		{"select uid, name from users where grp = ?", []any{int64(999)}},
		{"select count(uid) from users where grp = ?", []any{int64(999)}},
		{"select sum(uid) from users where grp = ?", []any{int64(999)}},
		{"select max(uid) from users where grp = ?", []any{int64(999)}},
		{"select min(uid) from users where grp = ?", []any{int64(999)}},
		// The empty table holds zero rows on every shard.
		{"select eid, tag from empty", nil},
		{"select count(eid) from empty", nil},
		{"select sum(eid) from empty", nil},
		{"select max(eid) from empty", nil},
		{"select min(eid) from empty", nil},
		{"select tag from empty where eid = ?", []any{int64(1)}},
	}
	for _, q := range queries {
		want, wantErr := ref.Exec(query.Req("q", q.sql, q.args)).Pair()
		got, gotErr := r.Exec(query.Req("q", q.sql, q.args)).Pair()
		same(t, q.sql, want, got, wantErr, gotErr)
	}
	// Batch over the empty table: every binding merges the identity.
	argSets := [][]any{{int64(1)}, {int64(2)}, {int64(3)}}
	wantVals, wantErrs := ref.ExecBatch(query.BatchReq("q", "select count(eid) from empty where eid = ?", argSets)).Pair()
	gotVals, gotErrs := r.ExecBatch(query.BatchReq("q", "select count(eid) from empty where eid = ?", argSets)).Pair()
	for i := range argSets {
		same(t, fmt.Sprintf("empty batch %d", i), wantVals[i], gotVals[i], wantErrs[i], gotErrs[i])
	}
}

// TestDuplicateShardKeyInserts pins duplicate-key routing: rows sharing a
// shard key land on one shard, and point reads, scatter reads and
// aggregates see them in exact single-server insertion order.
func TestDuplicateShardKeyInserts(t *testing.T) {
	ref, r := newFixture(t, 3)
	const ins = "insert into users values (?, ?, ?)"
	// uid 77 already exists from the load; insert two more copies, plus a
	// duplicate pair for a brand-new uid.
	dups := [][]any{
		{int64(77), "dup1", int64(901)},
		{int64(77), "dup2", int64(901)},
		{int64(5000), "dup3", int64(901)},
		{int64(5000), "dup4", int64(901)},
	}
	for _, args := range dups {
		want, wantErr := ref.Exec(query.Req("ins", ins, args)).Pair()
		got, gotErr := r.Exec(query.Req("ins", ins, args)).Pair()
		same(t, "dup insert", want, got, wantErr, gotErr)
	}
	for _, q := range []struct {
		sql  string
		args []any
	}{
		{"select name, grp from users where uid = ?", []any{int64(77)}},
		{"select name, grp from users where uid = ?", []any{int64(5000)}},
		{"select uid, name from users where grp = ?", []any{int64(901)}},
		{"select count(uid) from users where uid = ?", []any{int64(77)}},
	} {
		want, wantErr := ref.Exec(query.Req("q", q.sql, q.args)).Pair()
		got, gotErr := r.Exec(query.Req("q", q.sql, q.args)).Pair()
		same(t, q.sql, want, got, wantErr, gotErr)
		if rows, ok := want.(interp.Rows); ok && len(rows) < 2 {
			t.Fatalf("%s: degenerate fixture, want >= 2 rows, got %d", q.sql, len(rows))
		}
	}
}

// TestBatchedInsertsKeepScatterOrder pins the batched-insert position trace
// (ExecBatchTraced.InsertRids): after a batch insert lands rows on several
// shards, a scatter read interleaves them exactly as one server that
// applied the bindings in binding order.
func TestBatchedInsertsKeepScatterOrder(t *testing.T) {
	ref, r := newFixture(t, 4)
	const ins = "insert into users values (?, ?, ?)"
	argSets := make([][]any, 24)
	for i := range argSets {
		argSets[i] = []any{int64(2000 + i), fmt.Sprintf("b%d", i), int64(555)}
	}
	wantVals, wantErrs := ref.ExecBatch(query.BatchReq("ins", ins, argSets)).Pair()
	gotVals, gotErrs := r.ExecBatch(query.BatchReq("ins", ins, argSets)).Pair()
	for i := range argSets {
		same(t, fmt.Sprintf("batch insert %d", i), wantVals[i], gotVals[i], wantErrs[i], gotErrs[i])
	}
	// The scatter read's merge order is the single server's insertion order.
	want, wantErr := ref.Exec(query.Req("q", "select uid, name from users where grp = ?", []any{int64(555)})).Pair()
	got, gotErr := r.Exec(query.Req("q", "select uid, name from users where grp = ?", []any{int64(555)})).Pair()
	same(t, "scatter after batched inserts", want, got, wantErr, gotErr)
	if rows := want.(interp.Rows); len(rows) != len(argSets) {
		t.Fatalf("degenerate fixture: %d rows", len(rows))
	}
}

// TestReplicatedBackendsMatchSingleServer runs the fixture battery over a
// router whose shards are replica groups (Options.Replicas), including
// mid-test replica failures, and pins every result to the single server.
func TestReplicatedBackendsMatchSingleServer(t *testing.T) {
	ref := server.New(server.SYS1(), 0)
	t.Cleanup(ref.Close)
	users := ref.Catalog().CreateTable("users", storage.NewSchema(
		storage.Column{Name: "uid", Type: storage.TInt},
		storage.Column{Name: "name", Type: storage.TString},
		storage.Column{Name: "grp", Type: storage.TInt},
	))
	users.SetRowsPerPage(8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		if _, err := users.Insert([]any{int64(i), fmt.Sprintf("u%d", i), int64(rng.Intn(20))}); err != nil {
			t.Fatal(err)
		}
	}
	ref.FinishLoad()
	if err := ref.AddIndex("users", "uid", true); err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, ref, Options{Shards: 3, Keys: map[string]string{"users": "uid"}, Replicas: 2})

	groups := r.Groups()
	if len(groups) != 3 {
		t.Fatalf("expected 3 replica groups, got %v", groups)
	}
	if rs := r.ReplicaStats(); len(rs) != 3 || len(rs[0]) != 3 {
		t.Fatalf("ReplicaStats shape: %d shards x %d copies", len(rs), len(rs[0]))
	}

	battery := func(label string) {
		t.Helper()
		for i := int64(0); i < 40; i++ {
			want, wantErr := ref.Exec(query.Req("q", "select name, grp from users where uid = ?", []any{i * 13 % 600})).Pair()
			got, gotErr := r.Exec(query.Req("q", "select name, grp from users where uid = ?", []any{i * 13 % 600})).Pair()
			same(t, fmt.Sprintf("%s point uid=%d", label, i*13%600), want, got, wantErr, gotErr)
		}
		for g := int64(0); g < 8; g++ {
			want, wantErr := ref.Exec(query.Req("q", "select uid, name from users where grp = ?", []any{g})).Pair()
			got, gotErr := r.Exec(query.Req("q", "select uid, name from users where grp = ?", []any{g})).Pair()
			same(t, fmt.Sprintf("%s scatter grp=%d", label, g), want, got, wantErr, gotErr)
		}
		want, wantErr := ref.Exec(query.Req("q", "select sum(uid) from users", nil)).Pair()
		got, gotErr := r.Exec(query.Req("q", "select sum(uid) from users", nil)).Pair()
		same(t, label+" sum", want, got, wantErr, gotErr)
	}

	battery("healthy")

	// Writes replicate: insert through the router, read through replicas.
	for i := int64(600); i < 620; i++ {
		args := []any{i, fmt.Sprintf("n%d", i), int64(3)}
		want, wantErr := ref.Exec(query.Req("ins", "insert into users values (?, ?, ?)", args)).Pair()
		got, gotErr := r.Exec(query.Req("ins", "insert into users values (?, ?, ?)", args)).Pair()
		same(t, "replicated routed insert", want, got, wantErr, gotErr)
	}
	battery("after inserts")

	// Kill one replica of every group mid-workload: reads fail over with no
	// result change.
	for _, g := range groups {
		g.Replicas()[0].FailNext(1)
	}
	battery("replica 0 down")
	for _, g := range groups {
		healthy := g.Healthy()
		if healthy[0] {
			t.Fatal("faulted replica still in rotation")
		}
	}
	// Recover and fail the other replica instead.
	for _, g := range groups {
		if err := g.Recover(0); err != nil {
			t.Fatalf("recover: %v", err)
		}
		g.FailOut(1)
	}
	battery("replica 1 down, 0 rejoined")

	// The rejoined replicas hold the writes they missed while down.
	reads := r.ReplicaReads()
	if len(reads) != 3 {
		t.Fatalf("ReplicaReads shape: %v", reads)
	}
}

// path: a scatter whose equality predicate is on a secondary-indexed column
// consults per-shard index key statistics and skips shards holding no
// matching keys — without changing any result. Queries on unindexed columns
// still fan out to every shard.
func TestScatterPrunesBySecondaryIndexStats(t *testing.T) {
	ref, r := newFixture(t, 4)

	// Create a group that lives on exactly one shard: uids owned by shard 2.
	var uids []int64
	for i := int64(10000); len(uids) < 3; i++ {
		if Partition(i, 4) == 2 {
			uids = append(uids, i)
		}
	}
	const ins = "insert into users values (?, ?, ?)"
	for _, uid := range uids {
		args := []any{uid, fmt.Sprintf("u%d", uid), int64(777)}
		if _, err := ref.Exec(query.Req("ins", ins, args)).Pair(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Exec(query.Req("ins", ins, args)).Pair(); err != nil {
			t.Fatal(err)
		}
	}

	netReqs := func() []int64 {
		out := make([]int64, 0, 4)
		for _, s := range r.ShardStats() {
			out = append(out, s.NetRequests)
		}
		return out
	}

	// grp is secondary-indexed and grp=777 exists only on shard 2: the
	// scatter must visit shard 2 alone.
	before := netReqs()
	const q = "select name, grp from users where grp = ?"
	want, wantErr := ref.Exec(query.Req("q", q, []any{int64(777)})).Pair()
	got, gotErr := r.Exec(query.Req("q", q, []any{int64(777)})).Pair()
	same(t, "grp=777", want, got, wantErr, gotErr)
	after := netReqs()
	for s := 0; s < 4; s++ {
		delta := after[s] - before[s]
		switch {
		case s == 2 && delta != 1:
			t.Fatalf("owning shard 2 got %d requests, want 1", delta)
		case s != 2 && delta != 0:
			t.Fatalf("shard %d executed a pruned scatter (%d requests)", s, delta)
		}
	}

	// A key no shard holds prunes down to one representative execution and
	// still returns the single-server (empty) result.
	before = after
	want, wantErr = ref.Exec(query.Req("q", q, []any{int64(888)})).Pair()
	got, gotErr = r.Exec(query.Req("q", q, []any{int64(888)})).Pair()
	same(t, "grp=888", want, got, wantErr, gotErr)
	after = netReqs()
	var total int64
	for s := 0; s < 4; s++ {
		total += after[s] - before[s]
	}
	if total != 1 {
		t.Fatalf("all-pruned scatter paid %d executions, want 1", total)
	}

	// An aggregate over the pruned predicate merges identically too.
	want, wantErr = ref.Exec(query.Req("q", "select count(uid) from users where grp = ?", []any{int64(777)})).Pair()
	got, gotErr = r.Exec(query.Req("q", "select count(uid) from users where grp = ?", []any{int64(777)})).Pair()
	same(t, "count grp=777", want, got, wantErr, gotErr)

	// name is unindexed: no statistics, no pruning — every shard executes.
	before = netReqs()
	want, wantErr = ref.Exec(query.Req("q", "select uid from users where name = ?", []any{"u1"})).Pair()
	got, gotErr = r.Exec(query.Req("q", "select uid from users where name = ?", []any{"u1"})).Pair()
	same(t, "name=u1", want, got, wantErr, gotErr)
	after = netReqs()
	for s := 0; s < 4; s++ {
		if after[s]-before[s] != 1 {
			t.Fatalf("unindexed scatter must fan out: shard %d delta %d", s, after[s]-before[s])
		}
	}

	if r.ScatterPruned() == 0 {
		t.Fatal("planner recorded no pruned executions")
	}
}
