package shard

import (
	"fmt"
	"testing"
)

// Partition and the generation-0 range map are two views of the same
// ownership function: routing by either must agree for every key.
func TestPartitionMatchesFreshRangeMap(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		rg := NewRanges(n)
		if err := rg.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := int64(-50); i < 1000; i++ {
			if got, want := rg.OwnerOf(i), Partition(i, n); got != want {
				t.Fatalf("n=%d key=%d: range map owner %d, Partition %d", n, i, got, want)
			}
		}
		for i := 0; i < 200; i++ {
			v := fmt.Sprintf("key-%d", i)
			if got, want := rg.OwnerOf(v), Partition(v, n); got != want {
				t.Fatalf("n=%d key=%q: range map owner %d, Partition %d", n, v, got, want)
			}
		}
	}
}

// Keys hashing exactly onto a range edge belong to the range starting
// there: lower bounds are inclusive, upper bounds exclusive, and the ring
// ends are owned by the first and last shard.
func TestRangeBoundaryKeysAreOwnedInclusively(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		rg := NewRanges(n)
		for i := 1; i < n; i++ {
			b := rangeBoundary(i, n)
			if got := rg.Owner(b); got != i {
				t.Fatalf("n=%d: boundary %#x owned by %d, want %d", n, b, got, i)
			}
			if got := rg.Owner(b - 1); got != i-1 {
				t.Fatalf("n=%d: boundary-1 %#x owned by %d, want %d", n, b-1, got, i-1)
			}
		}
		if got := rg.Owner(0); got != 0 {
			t.Fatalf("n=%d: hash 0 owned by %d", n, got)
		}
		if got := rg.Owner(^uint64(0)); got != n-1 {
			t.Fatalf("n=%d: top hash owned by %d, want %d", n, got, n-1)
		}
	}
	// A split point is itself a range edge: the midpoint belongs to the new
	// owner, the hash just below it stays with the old one.
	rg := NewRanges(2)
	next, mid, err := rg.Split(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Owner(mid); got != 2 {
		t.Fatalf("split point %#x owned by %d, want new owner 2", mid, got)
	}
	if got := next.Owner(mid - 1); got != 0 {
		t.Fatalf("below split point owned by %d, want 0", got)
	}
}

func TestSplitMergeRoundTripCoalesces(t *testing.T) {
	rg := NewRanges(3)
	split, _, err := rg.Split(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if split.Generation() != 1 {
		t.Fatalf("generation after split: %d", split.Generation())
	}
	if err := split.Validate(4); err != nil {
		t.Fatal(err)
	}
	if got := split.Owners(); len(got) != 4 {
		t.Fatalf("owners after split: %v", got)
	}
	back, moved, err := split.Merge(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("ranges moved by merge: %d", moved)
	}
	if err := back.Validate(4); err != nil {
		t.Fatal(err)
	}
	// The merged halves are adjacent and same-owner again: they coalesce
	// back to the original range count.
	if got, want := len(back.Entries()), len(rg.Entries()); got != want {
		t.Fatalf("entries after round trip: %d, want %d", got, want)
	}
	if back.Owns(3) {
		t.Fatal("merged-away shard still owns a range")
	}
	for i := int64(0); i < 500; i++ {
		if back.OwnerOf(i) != rg.OwnerOf(i) {
			t.Fatalf("key %d changed owner across split+merge round trip", i)
		}
	}
}

func TestSplitMergeErrors(t *testing.T) {
	rg := NewRanges(2)
	if _, _, err := rg.Merge(0, 0); err == nil {
		t.Fatal("merge of a shard into itself must fail")
	}
	merged, _, err := rg.Merge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := merged.Merge(0, 1); err == nil {
		t.Fatal("merging a rangeless shard must fail")
	}
	if _, _, err := merged.Split(1, 5); err == nil {
		t.Fatal("splitting a rangeless shard must fail")
	}
}

func TestValidateRejectsGapsOverlapsAndBadOwners(t *testing.T) {
	cases := []struct {
		name string
		rg   *Ranges
	}{
		{"empty set", &Ranges{}},
		{"gap below first range", &Ranges{entries: []RangeEntry{{Start: 10, Owner: 0}}}},
		{"overlap (duplicate start)", &Ranges{entries: []RangeEntry{
			{Start: 0, Owner: 0}, {Start: 100, Owner: 1}, {Start: 100, Owner: 0}}}},
		{"disorder", &Ranges{entries: []RangeEntry{
			{Start: 0, Owner: 0}, {Start: 200, Owner: 1}, {Start: 100, Owner: 0}}}},
		{"owner out of range", &Ranges{entries: []RangeEntry{
			{Start: 0, Owner: 0}, {Start: 100, Owner: 2}}}},
		{"negative owner", &Ranges{entries: []RangeEntry{{Start: 0, Owner: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.rg.Validate(2); err == nil {
			t.Fatalf("%s: Validate accepted a corrupt range set", tc.name)
		}
	}
}
