package shard

import (
	"fmt"
	"testing"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/storage"
)

// applyBoth runs one statement on the reference server and the router and
// asserts identical results — the migration tests' step-by-step
// differential check.
func applyBoth(t *testing.T, ref *server.Server, r *Router, label, sql string, args []any) {
	t.Helper()
	want, wantErr := ref.Exec(query.Req("q", sql, args)).Pair()
	got, gotErr := r.Exec(query.Req("q", sql, args)).Pair()
	same(t, label, want, got, wantErr, gotErr)
}

// compareAll sweeps the fixture's read surface — point queries, indexed and
// unindexed scatters, aggregates, replicated reads — asserting the router
// is observably identical to the single server.
func compareAll(t *testing.T, ref *server.Server, r *Router, label string) {
	t.Helper()
	for i := int64(0); i < 60; i++ {
		applyBoth(t, ref, r, fmt.Sprintf("%s point uid=%d", label, i),
			"select name, grp from users where uid = ?", []any{i * 9})
	}
	for g := int64(0); g < 21; g++ {
		applyBoth(t, ref, r, fmt.Sprintf("%s scatter grp=%d", label, g),
			"select uid, name from users where grp = ?", []any{g})
		applyBoth(t, ref, r, fmt.Sprintf("%s count grp=%d", label, g),
			"select count(uid) from users where grp = ?", []any{g})
	}
	applyBoth(t, ref, r, label+" full count", "select count(uid) from users", nil)
	applyBoth(t, ref, r, label+" full sum", "select sum(grp) from users", nil)
	applyBoth(t, ref, r, label+" unindexed", "select uid from users where name = ?", []any{"u33"})
	applyBoth(t, ref, r, label+" replicated", "select msg from logs where id = ?", []any{int64(7)})
	applyBoth(t, ref, r, label+" empty table", "select count(eid) from empty", nil)
}

// assertConservation checks the anti-loss/anti-duplication ledger: summed
// across every backend, each sharded table holds exactly the reference row
// count (a lost write sums low, a duplicated one sums high), and every
// backend holds the full replicated tables.
func assertConservation(t *testing.T, ref *server.Server, r *Router, label string) {
	t.Helper()
	for _, tbl := range []string{"users", "empty"} {
		want := ref.NumTableRows(tbl)
		got := 0
		for _, b := range r.Backends() {
			got += b.NumTableRows(tbl)
		}
		if got != want {
			t.Fatalf("%s: %s rows across shards = %d, reference has %d (lost or duplicated writes)",
				label, tbl, got, want)
		}
	}
	for i, b := range r.Backends() {
		if got, want := b.NumTableRows("logs"), ref.NumTableRows("logs"); got != want {
			t.Fatalf("%s: backend %d holds %d logs rows, want %d", label, i, got, want)
		}
	}
}

// migrationKeys returns count fresh uids (starting at base) owned by one of
// the given shards under the router's current range map — deterministic
// traffic aimed at a migration's source shards.
func migrationKeys(r *Router, base int64, shards []int, count int) []int64 {
	want := map[int]bool{}
	for _, s := range shards {
		want[s] = true
	}
	rg := r.Ranges()
	var out []int64
	for uid := base; len(out) < count; uid++ {
		if want[rg.OwnerOf(uid)] {
			out = append(out, uid)
		}
	}
	return out
}

// orchestrate runs migrate on a goroutine with the router's hook paused at
// the "copy" and "flip" phases, running duringCopy and duringFlip (traffic
// that must be captured by double-write) while the migration is suspended
// there. It returns the migration's error.
func orchestrate(t *testing.T, r *Router, migrate func() error, duringCopy, duringFlip func()) error {
	t.Helper()
	step := make(chan string)
	resume := make(chan struct{})
	r.SetMigrationHook(func(phase string) {
		step <- phase
		<-resume
	})
	defer r.SetMigrationHook(nil)
	done := make(chan error, 1)
	go func() { done <- migrate() }()
	for _, want := range []string{"copy", "flip"} {
		if got := <-step; got != want {
			t.Fatalf("migration hook phase %q, want %q", got, want)
		}
		if want == "copy" && duringCopy != nil {
			duringCopy()
		}
		if want == "flip" && duringFlip != nil {
			duringFlip()
		}
		resume <- struct{}{}
	}
	return <-done
}

func TestSplitUnderTrafficMatchesSingleServer(t *testing.T) {
	ref, r := newFixture(t, 3)
	compareAll(t, ref, r, "pre-split")

	// Traffic aimed at the source shard while the migration is mid-copy and
	// just before the flip: these inserts are acknowledged during the
	// migration and must survive it via the double-write buffer.
	copyKeys := migrationKeys(r, 10_000, []int{1}, 6)
	flipKeys := migrationKeys(r, 20_000, []int{1}, 4)
	insert := func(keys []int64, label string) {
		for _, uid := range keys {
			applyBoth(t, ref, r, fmt.Sprintf("%s insert uid=%d", label, uid),
				"insert into users values (?, ?, ?)", []any{uid, fmt.Sprintf("m%d", uid), uid % 21})
			applyBoth(t, ref, r, fmt.Sprintf("%s readback uid=%d", label, uid),
				"select name from users where uid = ?", []any{uid})
		}
		// A replicated-table write mid-migration broadcasts to the old
		// backends and must be double-written to the replacements.
		applyBoth(t, ref, r, label+" log insert",
			"insert into logs values (?, ?)", []any{keys[0], "mid-migration"})
	}
	err := orchestrate(t, r, func() error { return r.Split(1) },
		func() { insert(copyKeys, "during-copy") },
		func() { insert(flipKeys, "during-flip") })
	if err != nil {
		t.Fatalf("split: %v", err)
	}

	if got := r.Shards(); got != 4 {
		t.Fatalf("shards after split: %d", got)
	}
	rg := r.Ranges()
	if rg.Generation() != 1 {
		t.Fatalf("generation after split: %d", rg.Generation())
	}
	if err := rg.Validate(r.Shards()); err != nil {
		t.Fatal(err)
	}
	ms := r.MigrationStats()
	if ms.Splits != 1 || ms.RangesMoved != 1 {
		t.Fatalf("migration stats after split: %+v", ms)
	}
	if ms.RowsCopied == 0 {
		t.Fatalf("split copied no rows: %+v", ms)
	}
	// 10 source-shard inserts and 2 replicated inserts ran mid-migration.
	if ms.DoubleWrites < 12 {
		t.Fatalf("expected ≥12 double-writes, got %+v", ms)
	}
	assertConservation(t, ref, r, "post-split")
	compareAll(t, ref, r, "post-split")

	// Routing follows the new generation: fresh inserts land on the new
	// shard's range and read back identically.
	for _, uid := range migrationKeys(r, 30_000, []int{3}, 3) {
		applyBoth(t, ref, r, fmt.Sprintf("post-split insert uid=%d", uid),
			"insert into users values (?, ?, ?)", []any{uid, fmt.Sprintf("p%d", uid), int64(5)})
		applyBoth(t, ref, r, fmt.Sprintf("post-split readback uid=%d", uid),
			"select name from users where uid = ?", []any{uid})
	}
	assertConservation(t, ref, r, "post-split inserts")
}

func TestMergeUnderTrafficMatchesSingleServer(t *testing.T) {
	ref, r := newFixture(t, 3)
	compareAll(t, ref, r, "pre-merge")

	copyKeys := migrationKeys(r, 10_000, []int{0, 1}, 6)
	flipKeys := migrationKeys(r, 20_000, []int{0, 1}, 4)
	insert := func(keys []int64, label string) {
		for _, uid := range keys {
			applyBoth(t, ref, r, fmt.Sprintf("%s insert uid=%d", label, uid),
				"insert into users values (?, ?, ?)", []any{uid, fmt.Sprintf("m%d", uid), uid % 21})
		}
	}
	err := orchestrate(t, r, func() error { return r.Merge(0, 1) },
		func() { insert(copyKeys, "during-copy") },
		func() { insert(flipKeys, "during-flip") })
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	if got := r.Shards(); got != 3 {
		t.Fatalf("merge must not drop backend slots, got %d", got)
	}
	rg := r.Ranges()
	if rg.Owns(1) {
		t.Fatal("merged-away shard still owns a range")
	}
	if got := rg.Owners(); len(got) != 2 {
		t.Fatalf("owners after merge: %v", got)
	}
	ms := r.MigrationStats()
	if ms.Merges != 1 || ms.RangesMoved == 0 || ms.RowsCopied == 0 {
		t.Fatalf("migration stats after merge: %+v", ms)
	}
	if ms.DoubleWrites == 0 {
		t.Fatalf("merge captured no double-writes: %+v", ms)
	}
	// The retired slot keeps the replicated tables (it still serves
	// broadcasts) but holds no sharded rows.
	if got := r.Backends()[1].NumTableRows("users"); got != 0 {
		t.Fatalf("merged-away shard still holds %d users rows", got)
	}
	assertConservation(t, ref, r, "post-merge")
	compareAll(t, ref, r, "post-merge")

	// Keys that belonged to the merged-away shard now route to the target.
	for _, uid := range migrationKeys(r, 30_000, []int{0}, 3) {
		applyBoth(t, ref, r, fmt.Sprintf("post-merge insert uid=%d", uid),
			"insert into users values (?, ?, ?)", []any{uid, fmt.Sprintf("p%d", uid), int64(3)})
		applyBoth(t, ref, r, fmt.Sprintf("post-merge readback uid=%d", uid),
			"select name from users where uid = ?", []any{uid})
	}
	assertConservation(t, ref, r, "post-merge inserts")
}

// emptyFixture builds a reference and router whose only sharded table has
// zero rows — the degenerate migration inputs.
func emptyFixture(t *testing.T, shards int) (*server.Server, *Router) {
	t.Helper()
	ref := server.New(server.SYS1(), 0)
	t.Cleanup(ref.Close)
	ref.Catalog().CreateTable("empty", storage.NewSchema(
		storage.Column{Name: "eid", Type: storage.TInt},
		storage.Column{Name: "tag", Type: storage.TString},
	))
	ref.FinishLoad()
	r := newRouter(t, ref, Options{Shards: shards, Keys: map[string]string{"empty": "eid"}})
	return ref, r
}

func TestSplitShardWhoseRangeHoldsZeroRows(t *testing.T) {
	ref, r := emptyFixture(t, 2)
	if err := r.Split(0); err != nil {
		t.Fatalf("zero-row split: %v", err)
	}
	if got := r.Shards(); got != 3 {
		t.Fatalf("shards after zero-row split: %d", got)
	}
	if ms := r.MigrationStats(); ms.RowsCopied != 0 {
		t.Fatalf("zero-row split copied %d rows", ms.RowsCopied)
	}
	applyBoth(t, ref, r, "post-split scan", "select count(eid) from empty", nil)
	// The split shard's (empty) range still routes inserts correctly.
	for i := int64(0); i < 30; i++ {
		applyBoth(t, ref, r, fmt.Sprintf("post-split insert %d", i),
			"insert into empty values (?, ?)", []any{i, fmt.Sprintf("t%d", i)})
	}
	applyBoth(t, ref, r, "post-insert scan", "select count(eid) from empty", nil)
	assertEmptyConservation(t, ref, r)
}

func TestMergeTwoEmptyShards(t *testing.T) {
	ref, r := emptyFixture(t, 2)
	if err := r.Merge(1, 0); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	rg := r.Ranges()
	if rg.Owns(0) || !rg.Owns(1) {
		t.Fatalf("ownership after empty merge: %v", rg.Owners())
	}
	applyBoth(t, ref, r, "post-merge scan", "select count(eid) from empty", nil)
	for i := int64(0); i < 30; i++ {
		applyBoth(t, ref, r, fmt.Sprintf("post-merge insert %d", i),
			"insert into empty values (?, ?)", []any{i, fmt.Sprintf("t%d", i)})
	}
	applyBoth(t, ref, r, "post-insert scan", "select count(eid) from empty", nil)
	assertEmptyConservation(t, ref, r)
}

func assertEmptyConservation(t *testing.T, ref *server.Server, r *Router) {
	t.Helper()
	got := 0
	for _, b := range r.Backends() {
		got += b.NumTableRows("empty")
	}
	if want := ref.NumTableRows("empty"); got != want {
		t.Fatalf("empty rows across shards = %d, reference has %d", got, want)
	}
}

// TestSplitDuringScatterKeepsScatterPrunedConsistent pins the pruning
// accounting across a routing flip: every scatter reads one range-map
// snapshot, so a fully-pruned scatter always skips exactly
// (active owners - 1) shards of its own generation — 3 before the split
// flips, 4 after — never a mix.
func TestSplitDuringScatterKeepsScatterPrunedConsistent(t *testing.T) {
	ref, r := newFixture(t, 4)
	const q = "select uid from users where grp = ?"
	scatterBatch := func(label string) {
		t.Helper()
		for i := 0; i < 10; i++ {
			// grp=888 exists nowhere: every shard prunes, one representative
			// remains.
			applyBoth(t, ref, r, label, q, []any{int64(888)})
		}
	}
	scatterBatch("pre-split")
	err := orchestrate(t, r, func() error { return r.Split(2) },
		func() { scatterBatch("during-copy") },
		func() { scatterBatch("during-flip") })
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	scatterBatch("post-split")
	// 30 scatters at 4 active owners (3 pruned each) + 10 at 5 (4 pruned).
	if got, want := r.ScatterPruned(), int64(30*3+10*4); got != want {
		t.Fatalf("ScatterPruned = %d, want %d", got, want)
	}
}

// TestCrashMidMigrationKeepsAcknowledgedWrites crashes the source shard's
// primary between the copy phase and the flip: every write acknowledged
// before or during the migration must survive on the replacement backends,
// none duplicated — the flip replays only materialized double-writes and
// never reads the crashed source.
func TestCrashMidMigrationKeepsAcknowledgedWrites(t *testing.T) {
	ref := server.New(server.SYS1(), 0)
	t.Cleanup(ref.Close)
	users := ref.Catalog().CreateTable("users", storage.NewSchema(
		storage.Column{Name: "uid", Type: storage.TInt},
		storage.Column{Name: "name", Type: storage.TString},
		storage.Column{Name: "grp", Type: storage.TInt},
	))
	users.SetRowsPerPage(8)
	for i := 0; i < 200; i++ {
		if _, err := users.Insert([]any{int64(i), fmt.Sprintf("u%d", i), int64(i % 20)}); err != nil {
			t.Fatal(err)
		}
	}
	ref.FinishLoad()
	if err := ref.AddIndex("users", "uid", true); err != nil {
		t.Fatal(err)
	}
	r := newRouter(t, ref, Options{Shards: 2, Replicas: 1, Keys: map[string]string{"users": "uid"}})

	copyKeys := migrationKeys(r, 10_000, []int{0}, 5)
	err := orchestrate(t, r, func() error { return r.Split(0) },
		func() {
			for _, uid := range copyKeys {
				applyBoth(t, ref, r, fmt.Sprintf("during-copy insert uid=%d", uid),
					"insert into users values (?, ?, ?)", []any{uid, fmt.Sprintf("m%d", uid), uid % 20})
			}
		},
		func() {
			// Primary of the source shard dies after the copy, before the
			// flip. The migration must complete from captured state alone.
			r.Groups()[0].CrashPrimary()
		})
	if err != nil {
		t.Fatalf("split with crashed source: %v", err)
	}
	if ms := r.MigrationStats(); ms.DoubleWrites < int64(len(copyKeys)) {
		t.Fatalf("expected ≥%d double-writes, got %+v", len(copyKeys), ms)
	}
	for _, tbl := range []string{"users"} {
		want := ref.NumTableRows(tbl)
		got := 0
		for _, b := range r.Backends() {
			got += b.NumTableRows(tbl)
		}
		if got != want {
			t.Fatalf("%s rows across shards = %d, reference has %d (lost or duplicated writes)", tbl, got, want)
		}
	}
	for i := int64(0); i < 200; i += 7 {
		applyBoth(t, ref, r, fmt.Sprintf("post-crash point uid=%d", i),
			"select name, grp from users where uid = ?", []any{i})
	}
	for _, uid := range copyKeys {
		applyBoth(t, ref, r, fmt.Sprintf("post-crash mid-migration uid=%d", uid),
			"select name from users where uid = ?", []any{uid})
	}
	applyBoth(t, ref, r, "post-crash count", "select count(uid) from users", nil)
}

// TestMigrationWithoutFactoryFails pins the NewWithBackends contract: a
// router over caller-supplied backends cannot mint replacements until a
// factory is installed.
func TestMigrationWithoutFactoryFails(t *testing.T) {
	backends := []Backend{server.New(server.SYS1(), 0), server.New(server.SYS1(), 0)}
	r := NewWithBackends(backends, map[string]string{"users": "uid"})
	t.Cleanup(r.Close)
	if err := r.Split(0); err == nil {
		t.Fatal("split without a backend factory must fail")
	}
	if err := r.Merge(0, 1); err == nil {
		t.Fatal("merge without a backend factory must fail")
	}
	r.SetBackendFactory(func() Backend { return server.New(server.SYS1(), 0) })
	if err := r.Split(0); err != nil {
		t.Fatalf("split with installed factory: %v", err)
	}
}
