package shard

import (
	"fmt"
	"math/bits"
	"sort"
)

// Hash64 maps a shard-key value onto the 64-bit hash ring. The base hash
// folds the value's canonical string form (FNV-1a, with the int64 fast path
// skipping the formatting allocation), then a splitmix64 finalizer mixes the
// entropy into the high bits — range ownership (Partition, Ranges.Owner)
// slices the ring from the top, so the top bits must avalanche as well as
// the bottom ones FNV feeds modulo reduction.
func Hash64(v any) uint64 {
	var h uint64 = 14695981039346656037
	const prime = 1099511628211
	if i, ok := v.(int64); ok {
		u := uint64(i)
		for b := 0; b < 8; b++ {
			h ^= u & 0xff
			h *= prime
			u >>= 8
		}
	} else {
		s := fmt.Sprintf("%v", v)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Partition returns the shard owning a key value in a fresh n-way cluster.
// The owner is the high word of Hash64(v)·n — the multiplicative range
// reduction — so shard s owns the contiguous hash range
// [⌈s·2⁶⁴/n⌉, ⌈(s+1)·2⁶⁴/n⌉) and Partition agrees exactly with
// NewRanges(n).Owner(Hash64(v)). Routers consult their live range map
// instead (it diverges from this static map after Split/Merge); Partition
// remains the pure function for fresh clusters, tests and modeling.
func Partition(v any, shards int) int {
	if shards <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(Hash64(v), uint64(shards))
	return int(hi)
}

// rangeBoundary returns ⌈i·2⁶⁴/n⌉, the inclusive lower bound of shard i's
// hash range in a fresh n-way map (the point where the high word of h·n
// first reaches i).
func rangeBoundary(i, n int) uint64 {
	if i == 0 {
		return 0
	}
	q, r := bits.Div64(uint64(i), 0, uint64(n))
	if r > 0 {
		q++
	}
	return q
}

// RangeEntry is one owned slice of the hash ring: entry k covers
// [Start_k, Start_{k+1}) — the last entry extends to the top of the ring.
type RangeEntry struct {
	Start uint64 // inclusive lower bound
	Owner int    // backend index owning the range
}

// Ranges is an immutable snapshot of hash-range ownership: a sorted,
// gap-free, non-overlapping cover of the full 64-bit ring, plus the
// generation counter that advances on every Split/Merge. Routers swap
// whole snapshots atomically, so a reader always sees one consistent
// generation.
type Ranges struct {
	entries []RangeEntry
	gen     int64
}

// NewRanges builds the generation-0 map of a fresh n-way cluster: shard i
// owns [⌈i·2⁶⁴/n⌉, ⌈(i+1)·2⁶⁴/n⌉), matching Partition exactly.
func NewRanges(n int) *Ranges {
	if n < 1 {
		n = 1
	}
	entries := make([]RangeEntry, n)
	for i := range entries {
		entries[i] = RangeEntry{Start: rangeBoundary(i, n), Owner: i}
	}
	return &Ranges{entries: entries}
}

// Generation returns the number of Split/Merge steps this map is away from
// its generation-0 ancestor.
func (rg *Ranges) Generation() int64 { return rg.gen }

// Entries returns a copy of the range set in ring order.
func (rg *Ranges) Entries() []RangeEntry {
	out := make([]RangeEntry, len(rg.entries))
	copy(out, rg.entries)
	return out
}

// Owner returns the backend index owning hash h: the last entry whose
// Start is ≤ h.
func (rg *Ranges) Owner(h uint64) int {
	// sort.Search finds the first entry with Start > h; its predecessor owns h.
	i := sort.Search(len(rg.entries), func(k int) bool { return rg.entries[k].Start > h })
	return rg.entries[i-1].Owner
}

// OwnerOf returns the backend index owning a key value.
func (rg *Ranges) OwnerOf(v any) int { return rg.Owner(Hash64(v)) }

// Owners returns the sorted distinct backend indices that own at least one
// range — the scatter target set.
func (rg *Ranges) Owners() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range rg.entries {
		if !seen[e.Owner] {
			seen[e.Owner] = true
			out = append(out, e.Owner)
		}
	}
	sort.Ints(out)
	return out
}

// Owns reports whether backend s owns at least one range.
func (rg *Ranges) Owns(s int) bool {
	for _, e := range rg.entries {
		if e.Owner == s {
			return true
		}
	}
	return false
}

// span returns the width of entry k (0 means the full 2⁶⁴ ring).
func (rg *Ranges) span(k int) uint64 {
	var next uint64 // wraps to 0 for the last entry: 0-Start ≡ 2⁶⁴-Start
	if k+1 < len(rg.entries) {
		next = rg.entries[k+1].Start
	}
	return next - rg.entries[k].Start
}

// Split halves owner's widest range, keeping the lower half on owner and
// assigning the upper half to newOwner, and returns the next-generation map
// plus the split point. The receiver is unchanged.
func (rg *Ranges) Split(owner, newOwner int) (*Ranges, uint64, error) {
	widest, found := -1, false
	var wspan uint64
	for k := range rg.entries {
		if rg.entries[k].Owner != owner {
			continue
		}
		sp := rg.span(k)
		// span 0 is the full ring — wider than any nonzero span.
		if !found || sp == 0 || (wspan != 0 && sp > wspan) {
			widest, wspan, found = k, sp, true
		}
		if wspan == 0 {
			break
		}
	}
	if !found {
		return nil, 0, fmt.Errorf("shard: split: shard %d owns no range", owner)
	}
	half := wspan / 2
	if wspan == 0 {
		half = 1 << 63
	}
	if half == 0 {
		return nil, 0, fmt.Errorf("shard: split: shard %d's widest range is a single hash", owner)
	}
	mid := rg.entries[widest].Start + half
	entries := make([]RangeEntry, 0, len(rg.entries)+1)
	entries = append(entries, rg.entries[:widest+1]...)
	entries = append(entries, RangeEntry{Start: mid, Owner: newOwner})
	entries = append(entries, rg.entries[widest+1:]...)
	return &Ranges{entries: entries, gen: rg.gen + 1}, mid, nil
}

// Merge reassigns every range owned by b to a, coalescing adjacent
// same-owner ranges, and returns the next-generation map plus the number of
// ranges that moved. The receiver is unchanged; b owns nothing afterward.
func (rg *Ranges) Merge(a, b int) (*Ranges, int, error) {
	if a == b {
		return nil, 0, fmt.Errorf("shard: merge: shard %d into itself", a)
	}
	moved := 0
	entries := make([]RangeEntry, 0, len(rg.entries))
	for _, e := range rg.entries {
		if e.Owner == b {
			e.Owner = a
			moved++
		}
		if n := len(entries); n > 0 && entries[n-1].Owner == e.Owner {
			continue // coalesce: previous entry already covers through here
		}
		entries = append(entries, e)
	}
	if moved == 0 {
		return nil, 0, fmt.Errorf("shard: merge: shard %d owns no range", b)
	}
	return &Ranges{entries: entries, gen: rg.gen + 1}, moved, nil
}

// Validate checks the structural invariants the router depends on: a
// non-empty range set starting at hash 0, strictly increasing (no overlap,
// no gap — entry k ends exactly where entry k+1 starts), every owner a
// valid backend index below n.
func (rg *Ranges) Validate(n int) error {
	if len(rg.entries) == 0 {
		return fmt.Errorf("shard: ranges: empty range set")
	}
	if rg.entries[0].Start != 0 {
		return fmt.Errorf("shard: ranges: gap below first range start %#x", rg.entries[0].Start)
	}
	for k, e := range rg.entries {
		if k > 0 && e.Start <= rg.entries[k-1].Start {
			return fmt.Errorf("shard: ranges: entry %d start %#x does not advance past %#x (overlap or disorder)",
				k, e.Start, rg.entries[k-1].Start)
		}
		if e.Owner < 0 || e.Owner >= n {
			return fmt.Errorf("shard: ranges: entry %d owner %d out of [0,%d)", k, e.Owner, n)
		}
	}
	return nil
}
