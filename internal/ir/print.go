package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a procedure in the mini-language concrete syntax. The output
// round-trips through internal/minilang's parser, which is how transformed
// programs are persisted and how tests compare structures.
func Print(p *Proc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc %s(%s) {\n", p.Name, strings.Join(p.Params, ", "))
	for _, q := range p.Queries {
		fmt.Fprintf(&b, "  query %s = %s;\n", q.Name, strconv.Quote(q.SQL))
	}
	printBlock(&b, p.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

// PrintBlock renders just a block (used by tests and debug dumps).
func PrintBlock(blk *Block) string {
	var b strings.Builder
	printBlock(&b, blk, 0)
	return b.String()
}

// PrintStmt renders a single statement on one line (compound statements are
// rendered multi-line).
func PrintStmt(s Stmt) string {
	var b strings.Builder
	printStmt(&b, s, 0)
	return strings.TrimRight(b.String(), "\n")
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	if blk == nil {
		return
	}
	for _, s := range blk.Stmts {
		printStmt(b, s, depth)
	}
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	if g := s.GetGuard(); g != nil {
		ind += g.String() + " ? "
	} else {
		// keep indentation
	}
	switch x := s.(type) {
	case *Assign:
		fmt.Fprintf(b, "%s%s = %s;\n", ind, strings.Join(x.Lhs, ", "), PrintExpr(x.Rhs))
	case *ExecQuery:
		if x.Kind == QueryUpdate && x.Lhs == "" {
			fmt.Fprintf(b, "%sexecUpdate(%s);\n", ind, printQueryArgs(x.Query, x.Args))
		} else {
			fmt.Fprintf(b, "%s%s = %s(%s);\n", ind, x.Lhs, x.Kind, printQueryArgs(x.Query, x.Args))
		}
	case *Submit:
		fn := "submit"
		if x.Kind == QueryUpdate {
			fn = "submitUpdate"
		}
		fmt.Fprintf(b, "%s%s = %s(%s);\n", ind, x.Lhs, fn, printQueryArgs(x.Query, x.Args))
	case *Fetch:
		if x.Lhs == "" {
			fmt.Fprintf(b, "%sfetch(%s);\n", ind, PrintExpr(x.Handle))
		} else {
			fmt.Fprintf(b, "%s%s = fetch(%s);\n", ind, x.Lhs, PrintExpr(x.Handle))
		}
	case *CallStmt:
		fmt.Fprintf(b, "%s%s;\n", ind, PrintExpr(x.Call))
	case *Return:
		if len(x.Vals) == 0 {
			fmt.Fprintf(b, "%sreturn;\n", ind)
		} else {
			parts := make([]string, len(x.Vals))
			for i, v := range x.Vals {
				parts[i] = PrintExpr(v)
			}
			fmt.Fprintf(b, "%sreturn %s;\n", ind, strings.Join(parts, ", "))
		}
	case *DeclTable:
		fmt.Fprintf(b, "%stable %s;\n", ind, x.Name)
	case *NewRecord:
		fmt.Fprintf(b, "%srecord %s;\n", ind, x.Name)
	case *SetField:
		fmt.Fprintf(b, "%s%s.%s = %s;\n", ind, x.Record, x.Field, PrintExpr(x.Val))
	case *AppendRecord:
		fmt.Fprintf(b, "%sappend(%s, %s);\n", ind, x.Table, x.Record)
	case *LoadField:
		fmt.Fprintf(b, "%sload %s = %s.%s;\n", ind, x.Var, x.Record, x.Field)
	case *CopyField:
		fmt.Fprintf(b, "%scopy %s.%s = %s.%s;\n", ind, x.DstRec, x.DstField, x.SrcRec, x.SrcField)
	case *While:
		fmt.Fprintf(b, "%swhile (%s) {\n", ind, PrintExpr(x.Cond))
		printBlock(b, x.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", depth))
	case *If:
		fmt.Fprintf(b, "%sif (%s) {\n", ind, PrintExpr(x.Cond))
		printBlock(b, x.Then, depth+1)
		if x.Else != nil {
			fmt.Fprintf(b, "%s} else {\n", strings.Repeat("  ", depth))
			printBlock(b, x.Else, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", depth))
	case *ForEach:
		fmt.Fprintf(b, "%sforeach %s in %s {\n", ind, x.Var, PrintExpr(x.Coll))
		printBlock(b, x.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", depth))
	case *Scan:
		fmt.Fprintf(b, "%sscan %s in %s {\n", ind, x.Record, x.Table)
		printBlock(b, x.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", strings.Repeat("  ", depth))
	default:
		fmt.Fprintf(b, "%s/* unknown stmt %T */\n", ind, s)
	}
}

func printQueryArgs(q string, args []Expr) string {
	parts := []string{q}
	for _, a := range args {
		parts = append(parts, PrintExpr(a))
	}
	return strings.Join(parts, ", ")
}

// PrintExpr renders an expression with minimal but correct parenthesization.
func PrintExpr(e Expr) string {
	return printExpr(e, 0)
}

// precedence levels: || =1, && =2, comparisons =3, + - =4, * / % =5, unary =6
func prec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return 0
}

func printExpr(e Expr, parent int) string {
	switch x := e.(type) {
	case *Var:
		return x.Name
	case *Lit:
		switch v := x.V.(type) {
		case nil:
			return "null"
		case bool:
			return strconv.FormatBool(v)
		case int64:
			return strconv.FormatInt(v, 10)
		case string:
			return strconv.Quote(v)
		default:
			return fmt.Sprintf("%v", v)
		}
	case *Bin:
		p := prec(x.Op)
		s := printExpr(x.L, p) + " " + x.Op + " " + printExpr(x.R, p+1)
		if p < parent {
			return "(" + s + ")"
		}
		return s
	case *Un:
		s := x.Op + printExpr(x.X, 6)
		if parent > 6 {
			return "(" + s + ")"
		}
		return s
	case *Call:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = printExpr(a, 0)
		}
		return x.Fn + "(" + strings.Join(parts, ", ") + ")"
	case nil:
		return "<nil>"
	}
	return fmt.Sprintf("<expr %T>", e)
}
