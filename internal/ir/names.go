package ir

import (
	"fmt"
	"strings"
)

// NameGen produces fresh variable names that do not collide with any name
// already used in a procedure. The transformation rules (reader/writer stubs,
// split tables, guard variables) all draw from one generator per procedure so
// generated programs stay readable and deterministic.
type NameGen struct {
	used map[string]bool
	seq  map[string]int
}

// NewNameGen collects every identifier appearing in p.
func NewNameGen(p *Proc) *NameGen {
	g := &NameGen{used: make(map[string]bool), seq: make(map[string]int)}
	for _, prm := range p.Params {
		g.used[prm] = true
	}
	for _, q := range p.Queries {
		g.used[q.Name] = true
	}
	WalkStmts(p.Body, func(s Stmt) {
		for _, n := range stmtNames(s) {
			g.used[n] = true
		}
		WalkExprs(s, func(e Expr) {
			switch x := e.(type) {
			case *Var:
				g.used[x.Name] = true
			case *Call:
				g.used[x.Fn] = true
			}
		})
		if gd := s.GetGuard(); gd != nil {
			g.used[gd.Var] = true
		}
	})
	return g
}

func stmtNames(s Stmt) []string {
	switch x := s.(type) {
	case *Assign:
		return x.Lhs
	case *ExecQuery:
		return []string{x.Lhs}
	case *Submit:
		return []string{x.Lhs}
	case *Fetch:
		return []string{x.Lhs}
	case *DeclTable:
		return []string{x.Name}
	case *NewRecord:
		return []string{x.Name}
	case *SetField:
		return []string{x.Record}
	case *AppendRecord:
		return []string{x.Table, x.Record}
	case *LoadField:
		return []string{x.Var, x.Record}
	case *CopyField:
		return []string{x.DstRec, x.SrcRec}
	case *ForEach:
		return []string{x.Var}
	case *Scan:
		return []string{x.Record, x.Table}
	}
	return nil
}

// Fresh returns a new unique name derived from base: base1, base2, ...
// (matching the paper's v', v” convention, spelled ASCII).
func (g *NameGen) Fresh(base string) string {
	base = strings.TrimRight(base, "0123456789")
	if base == "" {
		base = "v"
	}
	for {
		g.seq[base]++
		name := fmt.Sprintf("%s%d", base, g.seq[base])
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}
