package ir

// RenameReads replaces every *read* of variable old in s by new. Writes
// (assignment targets, mutated call arguments) are left untouched. This is
// the primitive behind Rule C2's reader stubs.
//
// A subtlety from the paper's moveAfter procedure: a mutated call argument
// (e.g. the list in removeFirst(list)) is both read and written through the
// same syntactic occurrence, so it cannot be renamed read-only; callers must
// not request read-renaming of such occurrences. RenameReads leaves mutated
// argument positions untouched.
func RenameReads(s Stmt, old, new string) {
	ren := func(e Expr) { renameReadsExpr(e, old, new) }
	switch x := s.(type) {
	case *Assign:
		x.Rhs = renameReadsExprTree(x.Rhs, old, new)
	case *ExecQuery:
		for i := range x.Args {
			x.Args[i] = renameReadsExprTree(x.Args[i], old, new)
		}
	case *Submit:
		for i := range x.Args {
			x.Args[i] = renameReadsExprTree(x.Args[i], old, new)
		}
	case *Fetch:
		x.Handle = renameReadsExprTree(x.Handle, old, new)
	case *CallStmt:
		renameReadsCall(x.Call, old, new)
	case *Return:
		for i := range x.Vals {
			x.Vals[i] = renameReadsExprTree(x.Vals[i], old, new)
		}
	case *SetField:
		x.Val = renameReadsExprTree(x.Val, old, new)
	case *While:
		x.Cond = renameReadsExprTree(x.Cond, old, new)
	case *If:
		x.Cond = renameReadsExprTree(x.Cond, old, new)
	case *ForEach:
		x.Coll = renameReadsExprTree(x.Coll, old, new)
	}
	_ = ren
	// Guards are reads too.
	if g := s.GetGuard(); g != nil && g.Var == old {
		s.SetGuard(&Guard{Var: new, Neg: g.Neg})
	}
}

func renameReadsExprTree(e Expr, old, new string) Expr {
	switch x := e.(type) {
	case *Var:
		if x.Name == old {
			return &Var{Name: new}
		}
	case *Bin:
		x.L = renameReadsExprTree(x.L, old, new)
		x.R = renameReadsExprTree(x.R, old, new)
	case *Un:
		x.X = renameReadsExprTree(x.X, old, new)
	case *Call:
		renameReadsCall(x, old, new)
	}
	return e
}

// renameReadsCall renames reads inside a call but never the variable in a
// mutated argument position, since that occurrence is also a write. Without a
// registry here we conservatively skip renaming bare variables in argument
// positions of *known-mutating* builtins; since rename callers (the reorder
// algorithm) never need to rename a mutated occurrence read-only, we rename
// everything and rely on callers. Nested expressions are always renamed.
func renameReadsCall(c *Call, old, new string) {
	for i := range c.Args {
		c.Args[i] = renameReadsExprTree(c.Args[i], old, new)
	}
}

func renameReadsExpr(e Expr, old, new string) { renameReadsExprTree(e, old, new) }

// RenameWrites replaces every *write* of variable old in s by new: assignment
// targets and mutated call arguments. This is the primitive behind Rule C3's
// writer stubs. Reads are untouched.
func RenameWrites(s Stmt, old, new string, reg *Registry) {
	switch x := s.(type) {
	case *Assign:
		for i, l := range x.Lhs {
			if l == old {
				x.Lhs[i] = new
			}
		}
		renameMutatedArgs(x.Rhs, old, new, reg)
	case *ExecQuery:
		if x.Lhs == old {
			x.Lhs = new
		}
		for _, a := range x.Args {
			renameMutatedArgs(a, old, new, reg)
		}
	case *Submit:
		if x.Lhs == old {
			x.Lhs = new
		}
	case *Fetch:
		if x.Lhs == old {
			x.Lhs = new
		}
	case *CallStmt:
		renameMutatedArgs(x.Call, old, new, reg)
	case *LoadField:
		if x.Var == old {
			x.Var = new
		}
	case *ForEach:
		if x.Var == old {
			x.Var = new
		}
	}
}

// renameMutatedArgs renames bare-variable occurrences of old in mutated
// argument positions of calls within e. Note: a mutated occurrence is both a
// read and a write of the same variable; the writer-stub construction in
// moveAfter only applies Rule C3 to statements whose write can be renamed
// while the original value is reconstructed afterwards, which does not hold
// for in-place mutation. The reorder algorithm therefore treats mutating
// statements as unmovable-by-stub (see rules.moveAfter). We still implement
// the rename for completeness.
func renameMutatedArgs(e Expr, old, new string, reg *Registry) {
	switch x := e.(type) {
	case *Bin:
		renameMutatedArgs(x.L, old, new, reg)
		renameMutatedArgs(x.R, old, new, reg)
	case *Un:
		renameMutatedArgs(x.X, old, new, reg)
	case *Call:
		sig := reg.Lookup(x.Fn)
		for i, a := range x.Args {
			if v, ok := a.(*Var); ok && v.Name == old && sig != nil && sig.Mutates(i) {
				x.Args[i] = &Var{Name: new}
				continue
			}
			renameMutatedArgs(a, old, new, reg)
		}
	}
}
