package ir

// SlotTable assigns a dense integer slot to every variable a procedure can
// touch: parameters, assignment targets, guard variables, loop variables,
// record/table names and every Var reference. It is the resolver half of the
// slot-compiled evaluator in internal/interp — names are resolved to indices
// once, so execution runs over a flat []Value frame instead of a
// map[string]Value environment.
//
// Slot order is deterministic: parameters first (slot i is parameter i for
// procedures without duplicate parameter names), then remaining names in
// first-appearance order of a depth-first statement walk.
type SlotTable struct {
	names []string
	index map[string]int
}

// BuildSlots resolves every variable name of p to a slot.
func BuildSlots(p *Proc) *SlotTable {
	t := &SlotTable{index: make(map[string]int)}
	for _, prm := range p.Params {
		t.add(prm)
	}
	WalkStmts(p.Body, func(s Stmt) {
		if g := s.GetGuard(); g != nil {
			t.add(g.Var)
		}
		for _, n := range stmtNames(s) {
			t.add(n)
		}
		WalkExprs(s, func(e Expr) {
			if v, ok := e.(*Var); ok {
				t.add(v.Name)
			}
		})
	})
	return t
}

func (t *SlotTable) add(name string) {
	if name == "" {
		return
	}
	if _, ok := t.index[name]; ok {
		return
	}
	t.index[name] = len(t.names)
	t.names = append(t.names, name)
}

// Slot returns the slot of name and whether the name is known.
func (t *SlotTable) Slot(name string) (int, bool) {
	i, ok := t.index[name]
	return i, ok
}

// Name returns the variable name occupying slot i.
func (t *SlotTable) Name(i int) string { return t.names[i] }

// Len is the number of slots (the frame size).
func (t *SlotTable) Len() int { return len(t.names) }
