// Package ir defines the statement-level intermediate representation used by
// the asyncq transformation engine. It plays the role SOOT's Jimple plays in
// the paper: a flat, analyzable statement form with explicit guards, on which
// the data dependence graph is built and the transformation rules operate.
package ir

import "fmt"

// Proc is a procedure: the unit of analysis and transformation.
// It corresponds to a Java method body in the paper's tool.
type Proc struct {
	Name    string
	Params  []string
	Queries []QueryDecl // prepared statements declared up front
	Body    *Block
}

// QueryDecl is a prepared query: a name bound to a SQL (or web-service) text
// with '?' placeholders, mirroring dbCon.prepare(...) in the paper.
type QueryDecl struct {
	Name string
	SQL  string
}

// QueryByName returns the SQL text of a declared query, or "" if absent.
func (p *Proc) QueryByName(name string) string {
	for _, q := range p.Queries {
		if q.Name == name {
			return q.SQL
		}
	}
	return ""
}

// Block is an ordered statement list.
type Block struct {
	Stmts []Stmt
}

// Guard makes a statement conditional on a boolean variable, the form Rule B
// produces: "cv ? stmt" executes stmt only when cv is true (or false when
// Neg is set). A nil *Guard means the statement is unconditional.
type Guard struct {
	Var string
	Neg bool
}

func (g *Guard) String() string {
	if g == nil {
		return ""
	}
	if g.Neg {
		return "!" + g.Var
	}
	return g.Var
}

// Equal reports whether two guards are the same condition.
func (g *Guard) Equal(h *Guard) bool {
	if g == nil || h == nil {
		return g == h
	}
	return g.Var == h.Var && g.Neg == h.Neg
}

// Stmt is implemented by every statement node.
type Stmt interface {
	isStmt()
	// GetGuard returns the statement's guard (nil when unconditional or the
	// statement kind cannot be guarded).
	GetGuard() *Guard
	// SetGuard replaces the statement's guard. It panics for compound
	// statements, which cannot be guarded (Rule B removes them first).
	SetGuard(*Guard)
}

// guarded is embedded by all guardable (simple) statements.
type guarded struct {
	Guard *Guard
}

func (g *guarded) GetGuard() *Guard  { return g.Guard }
func (g *guarded) SetGuard(x *Guard) { g.Guard = x }

// unguardable is embedded by compound statements.
type unguardable struct{}

func (unguardable) GetGuard() *Guard { return nil }
func (unguardable) SetGuard(*Guard) {
	panic("ir: compound statements cannot carry guards; apply Rule B first")
}

// Assign is "lhs[, lhs...] = rhs". Multi-assignment models calls returning
// several values (e.g. "stack, top = block(curcat, top)" from Example 9).
type Assign struct {
	guarded
	Lhs []string
	Rhs Expr
}

// QueryKind distinguishes read queries from updates.
type QueryKind int

const (
	// QuerySelect is a read-only query (reads the external database state).
	QuerySelect QueryKind = iota
	// QueryUpdate is an INSERT/UPDATE/DELETE (writes the database state).
	QueryUpdate
)

func (k QueryKind) String() string {
	if k == QueryUpdate {
		return "execUpdate"
	}
	return "execQuery"
}

// ExecQuery is the blocking call of the paper: "v = executeQuery(q, args...)"
// (Kind == QuerySelect) or "execUpdate(q, args...)" (Kind == QueryUpdate,
// empty Lhs). This is the statement the transformation converts into a
// Submit/Fetch pair.
type ExecQuery struct {
	guarded
	Lhs   string // result variable; "" for updates
	Query string // name of a QueryDecl
	Args  []Expr
	Kind  QueryKind
}

// Submit is the non-blocking submission: "h = submit(q, args...)". It returns
// immediately with a handle (paper §II, observer model).
type Submit struct {
	guarded
	Lhs   string // handle variable
	Query string
	Args  []Expr
	Kind  QueryKind
}

// Fetch blocks until the submitted query identified by the handle completes:
// "v = fetch(h)".
type Fetch struct {
	guarded
	Lhs    string // result variable; "" when the submission was an update
	Handle Expr
}

// CallStmt is a side-effecting call used as a statement, e.g. "print(v)",
// "process(x)".
type CallStmt struct {
	guarded
	Call *Call
}

// Return ends the procedure. The parser only accepts it as the final
// statement of a procedure body, so dataflow analysis never sees early exits.
type Return struct {
	guarded
	Vals []Expr
}

// DeclTable introduces an (initially empty) record table, the inter-loop
// carrier introduced by Rule A: "table t;".
type DeclTable struct {
	guarded
	Name string
}

// NewRecord starts a fresh record: "record r;". One record is appended per
// source-loop iteration.
type NewRecord struct {
	guarded
	Name string
}

// SetField stores a value into a record field: "r.f = expr". Unset fields
// read back as absent, which is what makes the conditional restores of Rule A
// (paper §III-B point 3) work.
type SetField struct {
	guarded
	Record string
	Field  string
	Val    Expr
}

// AppendRecord appends the record to the table: "append(t, r)".
type AppendRecord struct {
	guarded
	Table  string
	Record string
}

// LoadField is the conditional restore of Rule A: "load v = r.f" assigns
// r.f to v only when the field was set; otherwise v keeps its prior value.
type LoadField struct {
	guarded
	Var    string
	Record string
	Field  string
}

// CopyField propagates a field between records preserving unsetness:
// "copy dst.f = src.g" sets dst.f to src.g only when src.g was set. Chained
// fissions need it to carry a conditionally-captured variable through a
// second record without turning it unconditional.
type CopyField struct {
	guarded
	DstRec   string
	DstField string
	SrcRec   string
	SrcField string
}

// While is "while (cond) { body }".
type While struct {
	unguardable
	Cond Expr
	Body *Block
}

// If is "if (cond) { then } [else { else }]".
type If struct {
	unguardable
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// ForEach iterates over a list value: "foreach x in expr { body }". The
// element variable is written each iteration.
type ForEach struct {
	unguardable
	Var  string
	Coll Expr
	Body *Block
}

// Scan iterates the records of a table in insertion order:
// "scan r in t { body }". This is the second loop Rule A generates
// ("for each r in t order by t.key" in the paper).
type Scan struct {
	unguardable
	Record string
	Table  string
	Body   *Block
}

func (*Assign) isStmt()       {}
func (*ExecQuery) isStmt()    {}
func (*Submit) isStmt()       {}
func (*Fetch) isStmt()        {}
func (*CallStmt) isStmt()     {}
func (*Return) isStmt()       {}
func (*DeclTable) isStmt()    {}
func (*NewRecord) isStmt()    {}
func (*SetField) isStmt()     {}
func (*AppendRecord) isStmt() {}
func (*LoadField) isStmt()    {}
func (*CopyField) isStmt()    {}
func (*While) isStmt()        {}
func (*If) isStmt()           {}
func (*ForEach) isStmt()      {}
func (*Scan) isStmt()         {}

// IsCompound reports whether s is a control-flow statement with nested
// blocks (If, While, ForEach, Scan).
func IsCompound(s Stmt) bool {
	switch s.(type) {
	case *While, *If, *ForEach, *Scan:
		return true
	}
	return false
}

// Expr is implemented by every expression node. Expressions are pure except
// for Call, whose effects come from the function registry.
type Expr interface {
	isExpr()
}

// Var references a variable.
type Var struct {
	Name string
}

// Lit is a literal: int64, string, bool, or nil (null).
type Lit struct {
	V any
}

// Bin is a binary operation.
type Bin struct {
	Op   string // + - * / % == != < <= > >= && ||
	L, R Expr
}

// Un is a unary operation.
type Un struct {
	Op string // ! -
	X  Expr
}

// Call invokes a registered function: "f(args...)". Semantics and effects
// come from the Registry entry for Fn.
type Call struct {
	Fn   string
	Args []Expr
}

func (*Var) isExpr()  {}
func (*Lit) isExpr()  {}
func (*Bin) isExpr()  {}
func (*Un) isExpr()   {}
func (*Call) isExpr() {}

// IntLit, StrLit, BoolLit, NullLit are literal constructors.
func IntLit(v int64) *Lit  { return &Lit{V: v} }
func StrLit(v string) *Lit { return &Lit{V: v} }
func BoolLit(v bool) *Lit  { return &Lit{V: v} }
func NullLit() *Lit        { return &Lit{V: nil} }
func V(name string) *Var   { return &Var{Name: name} }

// WalkExprs calls fn for every expression appearing directly in s (not
// descending into nested blocks of compound statements).
func WalkExprs(s Stmt, fn func(Expr)) {
	var walk func(e Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *Bin:
			walk(x.L)
			walk(x.R)
		case *Un:
			walk(x.X)
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	switch x := s.(type) {
	case *Assign:
		walk(x.Rhs)
	case *ExecQuery:
		for _, a := range x.Args {
			walk(a)
		}
	case *Submit:
		for _, a := range x.Args {
			walk(a)
		}
	case *Fetch:
		walk(x.Handle)
	case *CallStmt:
		walk(x.Call)
	case *Return:
		for _, v := range x.Vals {
			walk(v)
		}
	case *SetField:
		walk(x.Val)
	case *While:
		walk(x.Cond)
	case *If:
		walk(x.Cond)
	case *ForEach:
		walk(x.Coll)
	}
}

// Blocks returns the nested blocks of a compound statement (nil otherwise).
func Blocks(s Stmt) []*Block {
	switch x := s.(type) {
	case *While:
		return []*Block{x.Body}
	case *If:
		if x.Else != nil {
			return []*Block{x.Then, x.Else}
		}
		return []*Block{x.Then}
	case *ForEach:
		return []*Block{x.Body}
	case *Scan:
		return []*Block{x.Body}
	}
	return nil
}

// WalkStmts visits every statement in the block, depth first, including
// statements inside nested blocks.
func WalkStmts(b *Block, fn func(Stmt)) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		fn(s)
		for _, nb := range Blocks(s) {
			WalkStmts(nb, fn)
		}
	}
}

// String implements fmt.Stringer for debugging; the full pretty-printer is
// in print.go.
func (p *Proc) GoString() string { return fmt.Sprintf("proc %s/%d", p.Name, len(p.Params)) }
