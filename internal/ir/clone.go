package ir

// CloneProc returns a deep copy of p. Transformations mutate statements in
// place, so callers that need to preserve the original clone first.
func CloneProc(p *Proc) *Proc {
	q := &Proc{Name: p.Name, Params: append([]string(nil), p.Params...)}
	q.Queries = append([]QueryDecl(nil), p.Queries...)
	q.Body = CloneBlock(p.Body)
	return q
}

// CloneBlock deep-copies a block.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	nb := &Block{Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		nb.Stmts[i] = CloneStmt(s)
	}
	return nb
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Assign:
		return &Assign{guarded: cloneGuard(x.guarded), Lhs: append([]string(nil), x.Lhs...), Rhs: CloneExpr(x.Rhs)}
	case *ExecQuery:
		return &ExecQuery{guarded: cloneGuard(x.guarded), Lhs: x.Lhs, Query: x.Query, Args: cloneExprs(x.Args), Kind: x.Kind}
	case *Submit:
		return &Submit{guarded: cloneGuard(x.guarded), Lhs: x.Lhs, Query: x.Query, Args: cloneExprs(x.Args), Kind: x.Kind}
	case *Fetch:
		return &Fetch{guarded: cloneGuard(x.guarded), Lhs: x.Lhs, Handle: CloneExpr(x.Handle)}
	case *CallStmt:
		return &CallStmt{guarded: cloneGuard(x.guarded), Call: CloneExpr(x.Call).(*Call)}
	case *Return:
		return &Return{guarded: cloneGuard(x.guarded), Vals: cloneExprs(x.Vals)}
	case *DeclTable:
		return &DeclTable{guarded: cloneGuard(x.guarded), Name: x.Name}
	case *NewRecord:
		return &NewRecord{guarded: cloneGuard(x.guarded), Name: x.Name}
	case *SetField:
		return &SetField{guarded: cloneGuard(x.guarded), Record: x.Record, Field: x.Field, Val: CloneExpr(x.Val)}
	case *AppendRecord:
		return &AppendRecord{guarded: cloneGuard(x.guarded), Table: x.Table, Record: x.Record}
	case *LoadField:
		return &LoadField{guarded: cloneGuard(x.guarded), Var: x.Var, Record: x.Record, Field: x.Field}
	case *CopyField:
		return &CopyField{guarded: cloneGuard(x.guarded), DstRec: x.DstRec, DstField: x.DstField, SrcRec: x.SrcRec, SrcField: x.SrcField}
	case *While:
		return &While{Cond: CloneExpr(x.Cond), Body: CloneBlock(x.Body)}
	case *If:
		return &If{Cond: CloneExpr(x.Cond), Then: CloneBlock(x.Then), Else: CloneBlock(x.Else)}
	case *ForEach:
		return &ForEach{Var: x.Var, Coll: CloneExpr(x.Coll), Body: CloneBlock(x.Body)}
	case *Scan:
		return &Scan{Record: x.Record, Table: x.Table, Body: CloneBlock(x.Body)}
	}
	panic("ir: CloneStmt: unknown statement type")
}

func cloneGuard(g guarded) guarded {
	if g.Guard == nil {
		return guarded{}
	}
	cp := *g.Guard
	return guarded{Guard: &cp}
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Var:
		return &Var{Name: x.Name}
	case *Lit:
		return &Lit{V: x.V}
	case *Bin:
		return &Bin{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Un:
		return &Un{Op: x.Op, X: CloneExpr(x.X)}
	case *Call:
		return &Call{Fn: x.Fn, Args: cloneExprs(x.Args)}
	}
	panic("ir: CloneExpr: unknown expression type")
}
