package ir

import "fmt"

// External identifies effects on state outside program variables. The paper
// (§III-A, "External data dependencies") models the whole database and the
// output stream conservatively as single locations; we do the same with the
// pseudo-locations LocDB and LocIO.
type External uint8

const (
	// ExtNone means the function touches no external state.
	ExtNone External = 0
	// ExtReadsDB marks a read of the database pseudo-location.
	ExtReadsDB External = 1 << iota
	// ExtWritesDB marks a write of the database pseudo-location.
	ExtWritesDB
	// ExtIO marks a write of the output pseudo-location (print/log order
	// must be preserved).
	ExtIO
)

// FuncSig describes a registered function's dataflow behaviour. All argument
// values are read; MutatesArgs lists the argument positions whose bound
// variable is additionally *mutated* in place (by-reference semantics, e.g.
// list.removeFirst). Mutations are may-writes, never kills.
type FuncSig struct {
	Name        string
	NArgs       int // -1 for variadic
	NRet        int // number of return values
	MutatesArgs []int
	External    External
	// Barrier marks calls that the transformation must never reorder or
	// split across (used to model the recursive-method sites of the paper's
	// Table I bulletin-board analysis).
	Barrier bool
}

// Mutates reports whether argument index i is mutated.
func (f *FuncSig) Mutates(i int) bool {
	for _, j := range f.MutatesArgs {
		if j == i {
			return true
		}
	}
	return false
}

// Registry maps function names to signatures. The transformation engine
// consults it to build read/write sets; the interpreter binds implementations
// separately (internal/interp).
type Registry struct {
	sigs map[string]*FuncSig
}

// NewRegistry returns a registry preloaded with the standard builtins used
// throughout the paper's examples and our applications.
func NewRegistry() *Registry {
	r := &Registry{sigs: make(map[string]*FuncSig)}
	for _, s := range StdSigs() {
		r.Register(s)
	}
	return r
}

// Register adds or replaces a signature.
func (r *Registry) Register(s *FuncSig) {
	r.sigs[s.Name] = s
}

// Lookup returns the signature for name, or nil.
func (r *Registry) Lookup(name string) *FuncSig {
	return r.sigs[name]
}

// MustLookup returns the signature or panics with a helpful message.
func (r *Registry) MustLookup(name string) *FuncSig {
	s := r.sigs[name]
	if s == nil {
		panic(fmt.Sprintf("ir: function %q not registered", name))
	}
	return s
}

// StdSigs returns the standard function signatures: pure helpers, mutating
// collection operations, and I/O.
func StdSigs() []*FuncSig {
	return []*FuncSig{
		// Pure functions.
		{Name: "empty", NArgs: 1, NRet: 1},
		{Name: "size", NArgs: 1, NRet: 1},
		{Name: "len", NArgs: 1, NRet: 1},
		{Name: "first", NArgs: 1, NRet: 1},
		{Name: "get", NArgs: 2, NRet: 1},
		{Name: "peek", NArgs: 1, NRet: 1},
		{Name: "list", NArgs: -1, NRet: 1},
		{Name: "concat", NArgs: 2, NRet: 1},
		{Name: "min", NArgs: 2, NRet: 1},
		{Name: "max", NArgs: 2, NRet: 1},
		{Name: "field", NArgs: 2, NRet: 1}, // field(row, "name")
		{Name: "rowcount", NArgs: 1, NRet: 1},
		{Name: "rowat", NArgs: 2, NRet: 1},
		{Name: "tostr", NArgs: 1, NRet: 1},
		{Name: "divmod", NArgs: 2, NRet: 2},
		{Name: "hash", NArgs: 1, NRet: 1},
		// Mutating collection operations (arg 0 is the collection).
		{Name: "removeFirst", NArgs: 1, NRet: 1, MutatesArgs: []int{0}},
		{Name: "removeLast", NArgs: 1, NRet: 1, MutatesArgs: []int{0}},
		{Name: "push", NArgs: 2, NRet: 0, MutatesArgs: []int{0}},
		{Name: "pop", NArgs: 1, NRet: 1, MutatesArgs: []int{0}},
		{Name: "add", NArgs: 2, NRet: 0, MutatesArgs: []int{0}},
		{Name: "clear", NArgs: 1, NRet: 0, MutatesArgs: []int{0}},
		// I/O (writes the $io pseudo-location; order-preserving).
		{Name: "print", NArgs: -1, NRet: 0, External: ExtIO},
		{Name: "log", NArgs: -1, NRet: 0, External: ExtIO},
		// Opaque application helpers used in the paper's examples. They are
		// pure unless stated; apps register their own implementations.
		{Name: "foo", NArgs: -1, NRet: 1},
		{Name: "bar", NArgs: -1, NRet: 1},
		{Name: "process", NArgs: -1, NRet: 0, External: ExtIO},
		{Name: "getParentCategory", NArgs: 1, NRet: 1},
		{Name: "readInputCategory", NArgs: 0, NRet: 1},
		// Barrier call used by the Table I corpus to model recursive method
		// invocation sites (§VI, Applicability).
		{Name: "recurse", NArgs: -1, NRet: 1, Barrier: true,
			External: ExtReadsDB | ExtWritesDB | ExtIO},
	}
}
