package ir

// EqualProc reports structural equality of two procedures.
func EqualProc(a, b *Proc) bool {
	if a.Name != b.Name || len(a.Params) != len(b.Params) || len(a.Queries) != len(b.Queries) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			return false
		}
	}
	return EqualBlock(a.Body, b.Body)
}

// EqualBlock reports structural equality of two blocks.
func EqualBlock(a, b *Block) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Stmts) != len(b.Stmts) {
		return false
	}
	for i := range a.Stmts {
		if !EqualStmt(a.Stmts[i], b.Stmts[i]) {
			return false
		}
	}
	return true
}

// EqualStmt reports structural equality of two statements.
func EqualStmt(a, b Stmt) bool {
	if !a.GetGuard().Equal(b.GetGuard()) {
		return false
	}
	switch x := a.(type) {
	case *Assign:
		y, ok := b.(*Assign)
		if !ok || len(x.Lhs) != len(y.Lhs) {
			return false
		}
		for i := range x.Lhs {
			if x.Lhs[i] != y.Lhs[i] {
				return false
			}
		}
		return EqualExpr(x.Rhs, y.Rhs)
	case *ExecQuery:
		y, ok := b.(*ExecQuery)
		return ok && x.Lhs == y.Lhs && x.Query == y.Query && x.Kind == y.Kind && equalExprs(x.Args, y.Args)
	case *Submit:
		y, ok := b.(*Submit)
		return ok && x.Lhs == y.Lhs && x.Query == y.Query && x.Kind == y.Kind && equalExprs(x.Args, y.Args)
	case *Fetch:
		y, ok := b.(*Fetch)
		return ok && x.Lhs == y.Lhs && EqualExpr(x.Handle, y.Handle)
	case *CallStmt:
		y, ok := b.(*CallStmt)
		return ok && EqualExpr(x.Call, y.Call)
	case *Return:
		y, ok := b.(*Return)
		return ok && equalExprs(x.Vals, y.Vals)
	case *DeclTable:
		y, ok := b.(*DeclTable)
		return ok && x.Name == y.Name
	case *NewRecord:
		y, ok := b.(*NewRecord)
		return ok && x.Name == y.Name
	case *SetField:
		y, ok := b.(*SetField)
		return ok && x.Record == y.Record && x.Field == y.Field && EqualExpr(x.Val, y.Val)
	case *AppendRecord:
		y, ok := b.(*AppendRecord)
		return ok && x.Table == y.Table && x.Record == y.Record
	case *LoadField:
		y, ok := b.(*LoadField)
		return ok && x.Var == y.Var && x.Record == y.Record && x.Field == y.Field
	case *CopyField:
		y, ok := b.(*CopyField)
		return ok && x.DstRec == y.DstRec && x.DstField == y.DstField && x.SrcRec == y.SrcRec && x.SrcField == y.SrcField
	case *While:
		y, ok := b.(*While)
		return ok && EqualExpr(x.Cond, y.Cond) && EqualBlock(x.Body, y.Body)
	case *If:
		y, ok := b.(*If)
		return ok && EqualExpr(x.Cond, y.Cond) && EqualBlock(x.Then, y.Then) && EqualBlock(x.Else, y.Else)
	case *ForEach:
		y, ok := b.(*ForEach)
		return ok && x.Var == y.Var && EqualExpr(x.Coll, y.Coll) && EqualBlock(x.Body, y.Body)
	case *Scan:
		y, ok := b.(*Scan)
		return ok && x.Record == y.Record && x.Table == y.Table && EqualBlock(x.Body, y.Body)
	}
	return false
}

func equalExprs(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualExpr(a[i], b[i]) {
			return false
		}
	}
	return true
}

// EqualExpr reports structural equality of two expressions.
func EqualExpr(a, b Expr) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	switch x := a.(type) {
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name
	case *Lit:
		y, ok := b.(*Lit)
		return ok && x.V == y.V
	case *Bin:
		y, ok := b.(*Bin)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *Un:
		y, ok := b.(*Un)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X)
	case *Call:
		y, ok := b.(*Call)
		return ok && x.Fn == y.Fn && equalExprs(x.Args, y.Args)
	}
	return false
}
