package ir

import (
	"strings"
	"testing"
)

func sampleProc() *Proc {
	g := &Guard{Var: "c"}
	eq := &ExecQuery{Lhs: "v", Query: "q0", Args: []Expr{V("x")}}
	eq.SetGuard(g)
	return &Proc{
		Name:    "p",
		Params:  []string{"x", "xs"},
		Queries: []QueryDecl{{Name: "q0", SQL: "select v from t where k = ?"}},
		Body: &Block{Stmts: []Stmt{
			&Assign{Lhs: []string{"c"}, Rhs: &Bin{Op: ">", L: V("x"), R: IntLit(0)}},
			eq,
			&While{Cond: &Un{Op: "!", X: &Call{Fn: "empty", Args: []Expr{V("xs")}}},
				Body: &Block{Stmts: []Stmt{
					&Assign{Lhs: []string{"y"}, Rhs: &Call{Fn: "removeFirst", Args: []Expr{V("xs")}}},
				}}},
			&Return{Vals: []Expr{V("v")}},
		}},
	}
}

func TestCloneIndependence(t *testing.T) {
	p := sampleProc()
	q := CloneProc(p)
	if !EqualProc(p, q) {
		t.Fatal("clone not equal")
	}
	// Mutating the clone must not affect the original.
	q.Body.Stmts[0].(*Assign).Lhs[0] = "zz"
	q.Body.Stmts[1].SetGuard(nil)
	if EqualProc(p, q) {
		t.Fatal("clone shares state with original")
	}
	if p.Body.Stmts[0].(*Assign).Lhs[0] != "c" || p.Body.Stmts[1].GetGuard() == nil {
		t.Fatal("original mutated through clone")
	}
}

func TestEqualStmtDiscriminates(t *testing.T) {
	a := &Assign{Lhs: []string{"x"}, Rhs: IntLit(1)}
	b := &Assign{Lhs: []string{"x"}, Rhs: IntLit(2)}
	if EqualStmt(a, b) {
		t.Fatal("different rhs must differ")
	}
	c := &Assign{Lhs: []string{"x"}, Rhs: IntLit(1)}
	c.SetGuard(&Guard{Var: "g"})
	if EqualStmt(a, c) {
		t.Fatal("guard must participate in equality")
	}
}

func TestNameGenAvoidsCollisions(t *testing.T) {
	p := sampleProc()
	gen := NewNameGen(p)
	seen := map[string]bool{"x": true, "xs": true, "c": true, "v": true, "y": true, "q0": true}
	for i := 0; i < 50; i++ {
		n := gen.Fresh("v")
		if seen[n] {
			t.Fatalf("collision: %s", n)
		}
		seen[n] = true
	}
	// Numeric suffixes strip so v1's fresh name does not become v11.
	if n := gen.Fresh("v1"); !strings.HasPrefix(n, "v") {
		t.Fatalf("fresh from v1: %s", n)
	}
}

func TestGuardString(t *testing.T) {
	if (&Guard{Var: "c"}).String() != "c" || (&Guard{Var: "c", Neg: true}).String() != "!c" {
		t.Fatal("guard rendering")
	}
	var g *Guard
	if g.String() != "" || !g.Equal(nil) || g.Equal(&Guard{Var: "c"}) {
		t.Fatal("nil guard handling")
	}
}

func TestPrintStmtForms(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{&DeclTable{Name: "t0"}, "table t0;"},
		{&NewRecord{Name: "r0"}, "record r0;"},
		{&SetField{Record: "r0", Field: "v", Val: V("v")}, "r0.v = v;"},
		{&AppendRecord{Table: "t0", Record: "r0"}, "append(t0, r0);"},
		{&LoadField{Var: "v", Record: "r0", Field: "v"}, "load v = r0.v;"},
		{&CopyField{DstRec: "a", DstField: "f", SrcRec: "b", SrcField: "g"}, "copy a.f = b.g;"},
		{&Submit{Lhs: "h", Query: "q0", Args: []Expr{V("x")}}, "h = submit(q0, x);"},
		{&Fetch{Lhs: "v", Handle: V("h")}, "v = fetch(h);"},
		{&ExecQuery{Query: "q0", Args: []Expr{V("x")}, Kind: QueryUpdate}, "execUpdate(q0, x);"},
	}
	for _, c := range cases {
		if got := PrintStmt(c.s); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestWalkStmtsDepth(t *testing.T) {
	p := sampleProc()
	n := 0
	WalkStmts(p.Body, func(Stmt) { n++ })
	if n != 5 { // 4 top-level + 1 nested
		t.Fatalf("walked %d statements, want 5", n)
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	if r.Lookup("removeFirst") == nil || !r.Lookup("removeFirst").Mutates(0) {
		t.Fatal("removeFirst must mutate arg 0")
	}
	if r.Lookup("print").External&ExtIO == 0 {
		t.Fatal("print must write $io")
	}
	if !r.Lookup("recurse").Barrier {
		t.Fatal("recurse must be a barrier")
	}
	if r.Lookup("nosuch") != nil {
		t.Fatal("unknown lookup must be nil")
	}
}
