package batch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
)

// countingBatchRunner returns a BatchRunner that executes bindings with a
// deterministic function and counts calls.
func countingBatchRunner(calls *atomic.Int64) exec.BatchRunner {
	return func(req query.BatchRequest) query.BatchResult {
		calls.Add(1)
		vals := make([]any, len(req.ArgSets))
		errs := make([]error, len(req.ArgSets))
		for i, args := range req.ArgSets {
			if len(args) == 1 {
				if n, ok := args[0].(int64); ok {
					vals[i] = n * 10
					continue
				}
			}
			errs[i] = fmt.Errorf("bad binding %d", i)
		}
		return query.BatchResult{Values: vals, Errs: errs}
	}
}

func TestCoalescesFullBatches(t *testing.T) {
	var calls atomic.Int64
	ex := exec.NewBatchExecutor(2, nil, countingBatchRunner(&calls))
	defer ex.Close()
	c := New(ex, Options{MaxBatch: 8, Linger: time.Second})
	defer c.Close()

	var hs []*exec.Handle
	for i := int64(0); i < 32; i++ {
		h, err := c.Submit(query.Req("q", "select ?", []any{i}))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for i, h := range hs {
		v, err := h.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i*10) {
			t.Fatalf("handle %d: got %v, want %d", i, v, i*10)
		}
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("batch runner called %d times, want 4", got)
	}
	b, avg := ex.BatchStats()
	if b != 4 || avg != 8 {
		t.Fatalf("BatchStats = %d batches, avg %.1f; want 4, 8", b, avg)
	}
}

func TestLingerFlushesPartialBatch(t *testing.T) {
	var calls atomic.Int64
	ex := exec.NewBatchExecutor(1, nil, countingBatchRunner(&calls))
	defer ex.Close()
	c := New(ex, Options{MaxBatch: 100, Linger: 5 * time.Millisecond})
	defer c.Close()

	h, err := c.Submit(query.Req("q", "select ?", []any{int64(3)}))
	if err != nil {
		t.Fatal(err)
	}
	// Fetch must unblock via the linger timer, not MaxBatch.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, err := h.Fetch(); err != nil || v != int64(30) {
			t.Errorf("fetch: %v %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("partial batch never lingered out")
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

func TestStatementsDoNotCrossCoalesce(t *testing.T) {
	type call struct {
		name string
		n    int
	}
	var batches []call // appended by the single worker, so no lock needed
	ex := exec.NewBatchExecutor(1, nil, func(req query.BatchRequest) query.BatchResult {
		batches = append(batches, call{req.Name, len(req.ArgSets)})
		return query.BatchResult{Values: make([]any, len(req.ArgSets)), Errs: make([]error, len(req.ArgSets))}
	})
	defer ex.Close()
	c := New(ex, Options{MaxBatch: 4, Linger: time.Second})
	var hs []*exec.Handle
	for i := 0; i < 4; i++ {
		h1, _ := c.Submit(query.Req("a", "select a", nil))
		h2, _ := c.Submit(query.Req("b", "select b", nil))
		hs = append(hs, h1, h2)
	}
	c.Flush()
	for _, h := range hs {
		if _, err := h.Fetch(); err != nil {
			t.Fatal(err)
		}
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2 (one per statement): %+v", len(batches), batches)
	}
	for _, b := range batches {
		if b.n != 4 {
			t.Fatalf("statement %q batched %d requests, want 4", b.name, b.n)
		}
	}
}

func TestPerBindingErrorsDemux(t *testing.T) {
	var calls atomic.Int64
	ex := exec.NewBatchExecutor(1, nil, countingBatchRunner(&calls))
	defer ex.Close()
	c := New(ex, Options{MaxBatch: 2, Linger: time.Second})
	defer c.Close()

	good, _ := c.Submit(query.Req("q", "select ?", []any{int64(5)}))
	bad, _ := c.Submit(query.Req("q", "select ?", []any{"not-an-int"}))
	if v, err := good.Fetch(); err != nil || v != int64(50) {
		t.Fatalf("good binding: %v %v", v, err)
	}
	if _, err := bad.Fetch(); err == nil || err.Error() != "bad binding 1" {
		t.Fatalf("bad binding error = %v", err)
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	var calls atomic.Int64
	ex := exec.NewBatchExecutor(1, nil, countingBatchRunner(&calls))
	defer ex.Close()
	c := New(ex, Options{MaxBatch: 100, Linger: time.Hour})

	h, _ := c.Submit(query.Req("q", "select ?", []any{int64(1)}))
	c.Close()
	if v, err := h.Fetch(); err != nil || v != int64(10) {
		t.Fatalf("fetch after close: %v %v", v, err)
	}
	if _, err := c.Submit(query.Req("q", "select ?", []any{int64(2)})); !errors.Is(err, exec.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestExecutorClosedFailsPendingHandles(t *testing.T) {
	ex := exec.NewBatchExecutor(1, nil, func(req query.BatchRequest) query.BatchResult {
		return query.BatchResult{Values: make([]any, len(req.ArgSets)), Errs: make([]error, len(req.ArgSets))}
	})
	c := New(ex, Options{MaxBatch: 100, Linger: time.Hour})
	h, _ := c.Submit(query.Req("q", "select ?", []any{int64(1)}))
	ex.Close() // wrong order on purpose: executor gone while a group lingers
	c.Close()  // flush dispatches into the closed executor
	if _, err := h.Fetch(); !errors.Is(err, exec.ErrClosed) {
		t.Fatalf("fetch after executor close: %v (want ErrClosed)", err)
	}
}

func TestNoBatchRunnerDegradesToPerBinding(t *testing.T) {
	// An executor without a BatchRunner must still execute batch jobs
	// correctly, one binding at a time.
	var runs atomic.Int64
	ex := exec.NewBatchExecutor(1, func(req query.Request) query.Result {
		runs.Add(1)
		return query.Ok(req.Args[0].(int64) + 1)
	}, nil)
	defer ex.Close()
	c := New(ex, Options{MaxBatch: 4, Linger: time.Second})
	defer c.Close()
	var hs []*exec.Handle
	for i := int64(0); i < 4; i++ {
		h, _ := c.Submit(query.Req("q", "select ?", []any{i}))
		hs = append(hs, h)
	}
	for i, h := range hs {
		v, err := h.Fetch()
		if err != nil || v != int64(i+1) {
			t.Fatalf("handle %d: %v %v", i, v, err)
		}
	}
	if runs.Load() != 4 {
		t.Fatalf("runs = %d, want 4", runs.Load())
	}
	if b, _ := ex.BatchStats(); b != 1 {
		t.Fatalf("batches = %d, want 1", b)
	}
}

func TestServiceDegradedModeBatchingNoop(t *testing.T) {
	// workers == 0: NewService degrades to synchronous fallback and the
	// batching toggle is a no-op.
	var syncRuns atomic.Int64
	svc := NewService(0, func(req query.Request) query.Result {
		syncRuns.Add(1)
		return query.Ok(int64(7))
	}, func(req query.BatchRequest) query.BatchResult {
		t.Error("batch runner must not be called in degraded mode")
		return query.BatchResult{}
	}, Options{})
	defer svc.Close()

	h, err := svc.Submit("q", "select 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := h.Fetch(); err != nil || v != int64(7) {
		t.Fatalf("degraded submit: %v %v", v, err)
	}
	if syncRuns.Load() != 1 {
		t.Fatalf("sync runs = %d, want 1", syncRuns.Load())
	}
	if b, avg := svc.BatchStats(); b != 0 || avg != 0 {
		t.Fatalf("degraded BatchStats = %d, %.1f; want zeros", b, avg)
	}
}

func TestEnableMaxBatchOneIsOff(t *testing.T) {
	svc := exec.NewBatchService(2, func(req query.Request) query.Result {
		return query.Ok(int64(1))
	}, nil)
	defer svc.Close()
	if c := Enable(svc, Options{MaxBatch: 1}); c != nil {
		t.Fatal("MaxBatch 1 must disable coalescing")
	}
	h, err := svc.Submit("q", "select 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := h.Fetch(); err != nil || v != int64(1) {
		t.Fatalf("fetch: %v %v", v, err)
	}
	if b, _ := svc.BatchStats(); b != 0 {
		t.Fatalf("batches = %d, want 0 (batching off)", b)
	}
}

// TestCloseDrainContractUnderLingerRace stresses the window between a
// linger-timer flush removing its group and handing it to the executor: a
// Service.Close racing that window must still execute every pre-Close
// submission (no ErrClosed on handles obtained before Close).
func TestCloseDrainContractUnderLingerRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		svc := NewService(2, nil, func(req query.BatchRequest) query.BatchResult {
			vals := make([]any, len(req.ArgSets))
			for i := range vals {
				vals[i] = int64(1)
			}
			return query.BatchResult{Values: vals, Errs: make([]error, len(req.ArgSets))}
		}, Options{MaxBatch: 100, Linger: time.Microsecond})
		var hs []*exec.Handle
		for i := 0; i < 8; i++ {
			h, err := svc.Submit("q", "select 1", nil)
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h.(*exec.Handle))
		}
		svc.Close()
		for i, h := range hs {
			if v, err := h.Fetch(); err != nil || v != int64(1) {
				t.Fatalf("round %d handle %d: (%v, %v) — pre-Close submission lost", round, i, v, err)
			}
		}
	}
}

func TestNegativeMaxBatchIsOff(t *testing.T) {
	svc := NewService(2, func(req query.Request) query.Result {
		return query.Ok(int64(2))
	}, nil, Options{MaxBatch: -3})
	defer svc.Close()
	h, err := svc.Submit("q", "select 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := h.Fetch(); err != nil || v != int64(2) {
		t.Fatalf("fetch: %v %v", v, err)
	}
	if b, _ := svc.BatchStats(); b != 0 {
		t.Fatalf("batches = %d, want 0 (negative MaxBatch must disable batching)", b)
	}
}

// TestReplicatedBackendRoundTripsMatchSingleServer pins replica-aware batch
// routing: read batches submitted through the coalescer against a replica
// group (one primary + R read copies, internal/replica) pay exactly the
// round trips a single server pays — each batch rides whole to one replica —
// while returning identical values.
func TestReplicatedBackendRoundTripsMatchSingleServer(t *testing.T) {
	schema := storage.NewSchema(
		storage.Column{Name: "k", Type: storage.TInt},
		storage.Column{Name: "v", Type: storage.TInt},
	)
	load := func(create func(name string, schema *storage.Schema, rowsPerPage int) error,
		insert func(table string, row []any) error) {
		if err := create("t", schema, 8); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 64; i++ {
			if err := insert("t", []any{i, i * 7}); err != nil {
				t.Fatal(err)
			}
		}
	}
	single := server.New(server.SYS1(), 0)
	defer single.Close()
	load(single.CreateTable, single.InsertRow)
	single.FinishLoad()
	group := replica.NewGroup(server.SYS1(), 0, replica.Options{Replicas: 2})
	defer group.Close()
	load(group.CreateTable, group.InsertRow)
	group.FinishLoad()

	// 16 submissions at MaxBatch 4: exactly 4 full batches on either
	// backend, no linger dependence.
	run := func(run exec.Runner, runBatch exec.BatchRunner) []any {
		svc := NewService(2, run, runBatch, Options{MaxBatch: 4, Linger: time.Second})
		defer svc.Close()
		var hs []*exec.Handle
		for i := int64(0); i < 16; i++ {
			h, err := svc.Submit("q", "select v from t where k = ?", []any{i})
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h.(*exec.Handle))
		}
		out := make([]any, len(hs))
		for i, h := range hs {
			v, err := h.Fetch()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = v
		}
		return out
	}

	wantVals := run(single.Exec, single.ExecBatch)
	gotVals := run(group.Exec, group.ExecBatch)
	for i := range wantVals {
		if !interp.Equal(wantVals[i], gotVals[i]) {
			t.Fatalf("submission %d: single %v, replicated %v", i,
				interp.Format(wantVals[i]), interp.Format(gotVals[i]))
		}
	}

	singleTrips := single.Stats().NetRequests
	var groupTrips int64
	for _, s := range group.CopyStats() {
		groupTrips += s.NetRequests
	}
	if singleTrips != 4 || groupTrips != singleTrips {
		t.Fatalf("round trips: single %d, replicated group %d (want 4 and equal)", singleTrips, groupTrips)
	}
	// The batches actually spread over the replicas.
	spread := 0
	for _, reads := range group.ReadCounts() {
		if reads > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("batches did not spread over replicas: %v", group.ReadCounts())
	}
}
