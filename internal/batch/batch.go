// Package batch implements batched query submission: a coalescing layer in
// front of the asynchronous executor that groups submissions sharing the
// same prepared statement into one set-oriented batch call, amortizing the
// per-request network round trip and planning cost (the batching sibling of
// asynchronous submission in Chavan et al., ICDE 2011; see README.md for
// the batch lifecycle).
//
// Transformed programs need no changes: Submit hands back a pending handle
// immediately, exactly like the per-query path, and the coalescer
// demultiplexes the batch results onto those handles when the batch
// completes.
package batch

import (
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/query"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBatch bounds how many requests one batch carries.
	DefaultMaxBatch = 16
	// DefaultLinger bounds how long a partial batch waits for company. It
	// must be positive whenever batching is on: a partial batch with no
	// linger deadline would strand its handles until Close.
	DefaultLinger = 200 * time.Microsecond
)

// Options configure the coalescer.
type Options struct {
	// MaxBatch is the maximum number of requests per batch (0 = default;
	// any other value below 2 disables coalescing — Enable and NewService
	// treat it as "off").
	MaxBatch int
	// Linger is the maximum time a partial batch waits before flushing
	// (0 = default). Fetching a handle whose batch is still lingering
	// blocks at most this long plus the batch's execution time.
	Linger time.Duration
	// GroupFn, when set, refines the coalescing key: requests batch together
	// only when they share (name, sql) AND the returned group id. A sharded
	// backend (internal/shard) supplies its partition function here so each
	// batch targets a single shard and never has to be split downstream —
	// the sharded run then pays exactly as many round trips as a
	// single-server run, just spread over parallel backends. Replicated
	// backends (internal/replica) compose transparently: a whole read batch
	// rides one round trip to one replica of its shard's group, so round
	// trips still match the single server while successive batches spread
	// over the replicas (pinned by TestReplicatedBackendRoundTripsMatchSingleServer).
	GroupFn func(name, sql string, args []any) int
}

func (o Options) normalized() Options {
	if o.MaxBatch < 2 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Linger <= 0 {
		o.Linger = DefaultLinger
	}
	return o
}

// off reports whether the options ask for batching to be disabled: an
// explicit non-zero MaxBatch below 2 means "one request per batch", i.e. no
// coalescing at all.
func (o Options) off() bool { return o.MaxBatch != 0 && o.MaxBatch < 2 }

// key identifies a coalescing group: submissions batch together only when
// they share the same prepared statement (and, with Options.GroupFn, the
// same group id — e.g. the same target shard).
type key struct {
	name, sql string
	group     int
}

// group is one open (still filling) batch.
type group struct {
	key     key
	argSets [][]any
	handles []*exec.Handle
	timer   *time.Timer
	// fireAt is when the linger timer is scheduled to flush the group. A
	// member whose deadline lands earlier pulls the flush forward — a
	// deadline-bearing request never waits out a linger window it cannot
	// afford.
	fireAt time.Time
	// waits holds the traced members' "batch.wait" spans (parallel to
	// handles, nil entries for untraced members); dispatch ends them —
	// their wall time is fill + linger, the price a request pays to share
	// the round trip.
	waits []*obs.Span
}

// endWaits closes every member's coalescing-wait span.
func (g *group) endWaits() {
	for _, w := range g.waits {
		w.End()
	}
}

// Coalescer groups submissions into batch jobs on an executor. It is safe
// for concurrent use.
type Coalescer struct {
	ex   *exec.Executor
	opts Options

	mu     sync.Mutex
	idle   sync.Cond // signalled when inflight drops to zero
	groups map[key]*group
	closed bool
	// inflight counts groups removed from the map but not yet handed to the
	// executor (incremented under mu, in the same critical section as the
	// removal), so Flush/Close can wait for them: otherwise a linger-timer
	// flush paused between removal and dispatch would be invisible to
	// Close, and the owner could close the executor under it.
	inflight int
}

// New builds a coalescer over ex. The executor should have been created
// with a BatchRunner (exec.NewBatchExecutor); without one, batches still
// execute correctly but degrade to per-binding calls on a single worker.
func New(ex *exec.Executor, opts Options) *Coalescer {
	c := &Coalescer{ex: ex, opts: opts.normalized(), groups: map[key]*group{}}
	c.idle.L = &c.mu
	return c
}

// Submit enqueues one request and returns its handle immediately
// (implementing exec.Batcher). The request joins the open batch for
// (name, sql), creating one if needed; the batch flushes when it reaches
// MaxBatch requests, its linger window expires, or the earliest member
// deadline arrives, whichever comes first. The request's span rides the
// pending handle, with a "batch.wait" child covering the time between
// submission and dispatch — batch fill plus linger, the coalescing cost the
// paper's batched submission trades for shared round trips. A request whose
// deadline already expired completes immediately with
// query.ErrDeadlineExceeded instead of joining a batch.
func (c *Coalescer) Submit(req query.Request) (*exec.Handle, error) {
	h := exec.NewPendingHandle(req.Span, req.Deadline)
	if req.Deadline.Expired() {
		h.Complete(nil, query.ErrDeadlineExceeded)
		return h, nil
	}
	k := key{name: req.Name, sql: req.SQL}
	if c.opts.GroupFn != nil {
		k.group = c.opts.GroupFn(req.Name, req.SQL, req.Args)
	}
	wait := req.Span.Child("batch.wait") // nil-safe: nil for untraced requests
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wait.End()
		return nil, exec.ErrClosed
	}
	g := c.groups[k]
	if g == nil {
		g = &group{key: k, fireAt: time.Now().Add(c.opts.Linger)}
		c.groups[k] = g
		// The timer closure captures the group, not the key: if the group
		// was already flushed (full, or by Flush/Close) and a new one opened
		// under the same key, a stale firing must not steal it.
		g.timer = time.AfterFunc(c.opts.Linger, func() { c.flushGroup(g) })
	}
	g.argSets = append(g.argSets, req.Args)
	g.handles = append(g.handles, h)
	if wait != nil {
		if g.waits == nil {
			g.waits = make([]*obs.Span, 0, c.opts.MaxBatch)
		}
		g.waits = append(g.waits, wait)
	}
	// A member that cannot afford the full linger pulls the flush forward:
	// the group fires at the earliest member deadline instead.
	if t, ok := req.Deadline.Time(); ok && t.Before(g.fireAt) {
		g.fireAt = t
		g.timer.Reset(time.Until(t))
	}
	var full *group
	if len(g.handles) >= c.opts.MaxBatch {
		delete(c.groups, k)
		g.timer.Stop()
		c.inflight++
		full = g
	}
	c.mu.Unlock()
	if full != nil {
		c.dispatch(full)
	}
	return h, nil
}

// flushGroup dispatches g if it is still the open group for its key.
func (c *Coalescer) flushGroup(g *group) {
	c.mu.Lock()
	if c.groups[g.key] != g {
		c.mu.Unlock()
		return
	}
	delete(c.groups, g.key)
	c.inflight++
	c.mu.Unlock()
	c.dispatch(g)
}

// dispatch hands one closed batch (already counted in inflight) to the
// executor. If the executor refuses (closed), every pending handle is
// failed so Fetch never blocks forever.
func (c *Coalescer) dispatch(g *group) {
	defer func() {
		c.mu.Lock()
		c.inflight--
		if c.inflight == 0 {
			c.idle.Broadcast()
		}
		c.mu.Unlock()
	}()
	g.endWaits() // coalescing is over; the batch heads for the executor
	if err := c.ex.SubmitBatch(query.BatchReq(g.key.name, g.key.sql, g.argSets), g.handles); err != nil {
		for _, h := range g.handles {
			h.Complete(nil, err)
		}
	}
}

// Flush dispatches every partial batch immediately, without waiting for the
// linger windows, and returns only once every in-flight flush (including
// concurrent linger-timer flushes) has reached the executor — so the owner
// may close the executor after Flush and still drain all batches.
func (c *Coalescer) Flush() {
	c.mu.Lock()
	gs := make([]*group, 0, len(c.groups))
	for k, g := range c.groups {
		g.timer.Stop()
		c.inflight++
		gs = append(gs, g)
		delete(c.groups, k)
	}
	c.mu.Unlock()
	for _, g := range gs {
		c.dispatch(g)
	}
	c.mu.Lock()
	for c.inflight > 0 {
		c.idle.Wait()
	}
	c.mu.Unlock()
}

// Close flushes all buffered submissions and rejects further ones with
// exec.ErrClosed. It does not close the underlying executor (the owner
// does, after Close returns, so the flushed batches still execute).
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.Flush()
}

// Enable installs a coalescer with the given options on a service built by
// exec.NewBatchService. It returns nil without installing anything when the
// service runs degraded (no pool — the batching toggle is a no-op there) or
// when opts disable batching (explicit MaxBatch below 2).
func Enable(s *exec.Service, opts Options) *Coalescer {
	if s.Executor() == nil || opts.off() {
		return nil
	}
	c := New(s.Executor(), opts)
	s.SetBatcher(c)
	return c
}

// NewService builds a batching query service: an exec.Service whose worker
// pool executes set-oriented batches through runBatch and whose Submit path
// coalesces via Enable. With workers == 0 it degrades exactly like
// exec.NewService (synchronous fallback, batching off).
func NewService(workers int, run exec.Runner, runBatch exec.BatchRunner, opts Options) *exec.Service {
	s := exec.NewBatchService(workers, run, runBatch)
	Enable(s, opts)
	return s
}
