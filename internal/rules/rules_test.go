package rules

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/minilang"
)

func parseLoop(t *testing.T, src string) (*ir.Proc, ir.Stmt) {
	t.Helper()
	p := minilang.MustParse(src)
	for _, s := range p.Body.Stmts {
		if ir.IsCompound(s) {
			return p, s
		}
	}
	t.Fatal("no loop")
	return nil, nil
}

// TestFlattenSimpleIf reproduces Rule B on the paper's Example 4 shape.
func TestFlattenSimpleIf(t *testing.T) {
	p, loop := parseLoop(t, `
proc e4(n) {
  query q = "select v from t where k = 0";
  i = 0;
  while (i < n) {
    v = foo(i);
    if (v % 2 == 0) {
      v = execQuery(q, i);
      log(v);
    }
    print(v);
    i = i + 1;
  }
  return i;
}`)
	gen := ir.NewNameGen(p)
	body := loop.(*ir.While).Body
	if err := Flatten(body, gen); err != nil {
		t.Fatal(err)
	}
	for _, s := range body.Stmts {
		if _, ok := s.(*ir.If); ok {
			t.Fatal("if statement survived flattening")
		}
	}
	// The query and log must now carry the same guard; print none.
	var qg, lg *ir.Guard
	sawPrint := false
	for _, s := range body.Stmts {
		switch x := s.(type) {
		case *ir.ExecQuery:
			qg = x.GetGuard()
		case *ir.CallStmt:
			if x.Call.Fn == "log" {
				lg = x.GetGuard()
			}
			if x.Call.Fn == "print" {
				sawPrint = true
				if x.GetGuard() != nil {
					t.Error("print must stay unconditional")
				}
			}
		}
	}
	if qg == nil || !qg.Equal(lg) {
		t.Errorf("query guard %v and log guard %v must match", qg, lg)
	}
	if !sawPrint {
		t.Error("print lost")
	}
}

// TestFlattenNestedIfElse: nested conditionals compose through fresh guard
// variables; else branches get their own variable under an outer guard.
func TestFlattenNestedIfElse(t *testing.T) {
	p, loop := parseLoop(t, `
proc nested(n) {
  i = 0;
  a = 0;
  while (i < n) {
    if (i % 2 == 0) {
      if (i % 3 == 0) {
        a = a + 1;
      } else {
        a = a + 10;
      }
    } else {
      a = a + 100;
    }
    i = i + 1;
  }
  return a;
}`)
	gen := ir.NewNameGen(p)
	body := loop.(*ir.While).Body
	if err := Flatten(body, gen); err != nil {
		t.Fatal(err)
	}
	for _, s := range body.Stmts {
		if ir.IsCompound(s) {
			t.Fatalf("compound survived: %s", ir.PrintStmt(s))
		}
	}
}

// TestFlattenRejectsNestedLoop: a loop under a conditional cannot flatten.
func TestFlattenRejectsNestedLoop(t *testing.T) {
	p, loop := parseLoop(t, `
proc bad(n) {
  i = 0;
  while (i < n) {
    if (i % 2 == 0) {
      while (i < 3) {
        i = i + 1;
      }
    }
    i = i + 1;
  }
  return i;
}`)
	gen := ir.NewNameGen(p)
	err := Flatten(loop.(*ir.While).Body, gen)
	if err == nil {
		t.Fatal("expected flatten failure")
	}
	var na *NotApplicableError
	if !asNA(err, &na) || na.Reason != ReasonUnflattenable {
		t.Fatalf("wrong error: %v", err)
	}
}

func asNA(err error, out **NotApplicableError) bool {
	na, ok := err.(*NotApplicableError)
	if ok {
		*out = na
	}
	return ok
}

// TestReorderExample8 checks the exact structure of paper Example 8: the
// reader stub and the statement order after reordering.
func TestReorderExample8(t *testing.T) {
	p, loop := parseLoop(t, `
proc e8(start) {
  query q = "select count(x) from t where c = ?";
  sum = 0;
  category = start;
  while (category != null) {
    icount = execQuery(q, category);
    sum = sum + icount;
    category = getParentCategory(category);
  }
  return sum;
}`)
	gen := ir.NewNameGen(p)
	reg := ir.NewRegistry()
	body := loop.(*ir.While).Body
	sq := body.Stmts[0]
	if err := Reorder(loop, sq, reg, gen); err != nil {
		t.Fatal(err)
	}
	// Expected (paper Example 8): stub; category = getParent(category);
	// icount = q(stub); sum = sum + icount.
	got := ir.PrintBlock(body)
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 statements after reorder, got:\n%s", got)
	}
	if !strings.Contains(lines[0], "= category;") {
		t.Errorf("line 1 should be the reader stub, got %q", lines[0])
	}
	if !strings.Contains(lines[1], "getParentCategory") {
		t.Errorf("line 2 should advance the category, got %q", lines[1])
	}
	if !strings.Contains(lines[2], "execQuery") {
		t.Errorf("line 3 should be the query, got %q", lines[2])
	}
	// No crossing LCFD must remain at the query.
	g := loopGraph(loop, reg)
	q := indexOf(body, sq)
	if edges := g.CrossingLCFD(q); len(edges) != 0 {
		t.Errorf("crossing LCFD edges remain: %v", edges)
	}
}

// TestReorderCycleFails: Theorem 4.1's negative case.
func TestReorderCycleFails(t *testing.T) {
	p, loop := parseLoop(t, `
proc cyc(v0) {
  query q = "select v from t where k = ?";
  v = v0;
  i = 0;
  while (i < 5) {
    v = execQuery(q, v);
    i = i + 1;
  }
  return v;
}`)
	gen := ir.NewNameGen(p)
	body := loop.(*ir.While).Body
	err := Reorder(loop, body.Stmts[0], ir.NewRegistry(), gen)
	var na *NotApplicableError
	if err == nil || !asNA(err, &na) || na.Reason != ReasonTrueDepCycle {
		t.Fatalf("want true-dependence-cycle failure, got %v", err)
	}
}

// TestFissionExample3Shape checks Rule A's output for the paper's running
// example: table + submit loop + ordered scan with conditional loads.
func TestFissionExample3Shape(t *testing.T) {
	p, loop := parseLoop(t, `
proc e2(categoryList) {
  query q0 = "select count(partkey) from part where p_category = ?";
  sum = 0;
  while (!empty(categoryList)) {
    category = removeFirst(categoryList);
    partCount = execQuery(q0, category);
    sum = sum + partCount;
  }
  return sum;
}`)
	gen := ir.NewNameGen(p)
	reg := ir.NewRegistry()
	body := loop.(*ir.While).Body
	sq := body.Stmts[1]
	loopIdx := 0
	for i, st := range p.Body.Stmts {
		if st == loop {
			loopIdx = i
		}
	}
	span, scanIdx, err := FissionQuery(p.Body, loopIdx, sq, reg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if span != 3 {
		t.Fatalf("span = %d, want 3 (table, loop1, scan)", span)
	}
	scan, ok := p.Body.Stmts[scanIdx].(*ir.Scan)
	if !ok {
		t.Fatalf("no scan at %d:\n%s", scanIdx, ir.Print(p))
	}
	// Loop 1 must contain the submit, loop 2 the fetch then the consumer.
	loop1 := p.Body.Stmts[scanIdx-1].(*ir.While)
	hasSubmit := false
	for _, s := range loop1.Body.Stmts {
		if _, ok := s.(*ir.Submit); ok {
			hasSubmit = true
		}
		if _, ok := s.(*ir.Fetch); ok {
			t.Error("fetch leaked into the submit loop")
		}
	}
	if !hasSubmit {
		t.Errorf("no submit in loop 1:\n%s", ir.Print(p))
	}
	hasFetch := false
	for _, s := range scan.Body.Stmts {
		if _, ok := s.(*ir.Fetch); ok {
			hasFetch = true
		}
	}
	if !hasFetch {
		t.Errorf("no fetch in scan loop:\n%s", ir.Print(p))
	}
}

// TestFissionRefusesCrossing: fission without reordering must refuse a loop
// with a crossing carried flow dependence.
func TestFissionRefusesCrossing(t *testing.T) {
	p, loop := parseLoop(t, `
proc f(n) {
  query q = "select v from t where k = ?";
  c = 1;
  i = 0;
  while (i < n) {
    v = execQuery(q, c);
    c = c + v;
    i = i + 1;
  }
  return c;
}`)
	gen := ir.NewNameGen(p)
	body := loop.(*ir.While).Body
	loopIdx := 0
	for i, st := range p.Body.Stmts {
		if st == loop {
			loopIdx = i
		}
	}
	_, _, err := FissionQuery(p.Body, loopIdx, body.Stmts[0], ir.NewRegistry(), gen)
	if err == nil {
		t.Fatal("fission must refuse crossing LCFD without reorder")
	}
}

// TestRegroup folds guarded runs back into ifs (§V).
func TestRegroup(t *testing.T) {
	p := minilang.MustParse(`
proc r(x) {
  c = x > 0;
  c ? a = 1;
  c ? b = 2;
  !c ? a = 3;
  d = 4;
  return a, b, d;
}`)
	Regroup(p.Body)
	kinds := []string{}
	for _, s := range p.Body.Stmts {
		switch s.(type) {
		case *ir.Assign:
			kinds = append(kinds, "assign")
		case *ir.If:
			kinds = append(kinds, "if")
		case *ir.Return:
			kinds = append(kinds, "return")
		}
	}
	want := "assign,if,if,assign,return"
	if strings.Join(kinds, ",") != want {
		t.Fatalf("got %v want %s:\n%s", kinds, want, ir.PrintBlock(p.Body))
	}
	firstIf := p.Body.Stmts[1].(*ir.If)
	if len(firstIf.Then.Stmts) != 2 {
		t.Errorf("run of two same-guard statements must share one if")
	}
}

// TestRuleC2ReaderStubUnitsemantics: renaming reads through RenameReads.
func TestRenameReadsWrites(t *testing.T) {
	p := minilang.MustParse(`
proc rn(v) {
  w = v + v * 2;
  v = w;
  return v;
}`)
	s0 := p.Body.Stmts[0]
	ir.RenameReads(s0, "v", "v1")
	if got := ir.PrintStmt(s0); got != "w = v1 + v1 * 2;" {
		t.Errorf("RenameReads: %q", got)
	}
	s1 := p.Body.Stmts[1]
	ir.RenameWrites(s1, "v", "v2", ir.NewRegistry())
	if got := ir.PrintStmt(s1); got != "v2 = w;" {
		t.Errorf("RenameWrites: %q", got)
	}
}

// TestMutationWriterStub: moving a query past an in-place mutation uses the
// copy-in/copy-out form and preserves semantics (checked structurally here;
// the property tests check behaviour).
func TestMutationReorder(t *testing.T) {
	p, loop := parseLoop(t, `
proc m(stack) {
  query q = "select v from t where k = ?";
  total = 0;
  while (!empty(stack)) {
    cur = pop(stack);
    v = execQuery(q, cur);
    total = total + v;
    push(stack, cur / 2);
    x = peek(stack);
    c2 = x <= 1;
    c2 ? y = pop(stack);
  }
  return total;
}`)
	gen := ir.NewNameGen(p)
	reg := ir.NewRegistry()
	body := loop.(*ir.While).Body
	sq := body.Stmts[1]
	if err := Reorder(loop, sq, reg, gen); err != nil {
		t.Fatal(err)
	}
	g := loopGraph(loop, reg)
	if edges := g.CrossingLCFD(indexOf(body, sq)); len(edges) != 0 {
		t.Errorf("crossing LCFD remain after reorder: %v\n%s", edges, ir.PrintBlock(body))
	}
}
