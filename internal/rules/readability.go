package rules

import (
	"repro/internal/ir"
)

// Regroup improves readability of transformed code (§V): maximal runs of
// consecutive statements carrying the same guard are folded back into if
// statements, so the generated loops resemble the original program. The
// transformation is purely syntactic — "cv ? s" and "if (cv) { s }" have
// identical semantics — and is applied recursively to nested blocks.
func Regroup(b *ir.Block) {
	if b == nil {
		return
	}
	var out []ir.Stmt
	i := 0
	for i < len(b.Stmts) {
		s := b.Stmts[i]
		for _, nb := range ir.Blocks(s) {
			Regroup(nb)
		}
		g := s.GetGuard()
		if g == nil {
			out = append(out, s)
			i++
			continue
		}
		j := i
		var run []ir.Stmt
		for j < len(b.Stmts) && b.Stmts[j].GetGuard().Equal(g) {
			st := b.Stmts[j]
			st.SetGuard(nil)
			run = append(run, st)
			j++
		}
		var cond ir.Expr = ir.V(g.Var)
		if g.Neg {
			cond = &ir.Un{Op: "!", X: cond}
		}
		out = append(out, &ir.If{Cond: cond, Then: &ir.Block{Stmts: run}})
		i = j
	}
	b.Stmts = out
}
