package rules

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/ir"
)

// FissionQuery applies Rule A (§III-B) to the loop at parent.Stmts[loopIdx],
// splitting it at the blocking query statement sq. The loop is replaced by
// three statements:
//
//	table t;
//	<loop1>  — the original header, running ss1, submitting the query
//	           asynchronously and appending one record per iteration,
//	scan r in t { <loads>; v = fetch(r.h); ss2 }
//
// Preconditions are Rule A's (a) and (b) (see dataflow.FissionBlockers);
// statement reordering (Reorder) should be run first when loop-carried flow
// dependences cross the split. The body must be flat (apply Rule B first).
// FissionQuery returns the number of statements now occupying the loop's
// slot in parent and the index (within parent) of the generated scan loop,
// so callers can continue transforming the consume side.
func FissionQuery(parent *ir.Block, loopIdx int, sq ir.Stmt, reg *ir.Registry, gen *ir.NameGen) (span, scanIdx int, err error) {
	loop := parent.Stmts[loopIdx]
	body := loopBody(loop)
	if body == nil {
		return 0, 0, fmt.Errorf("rules: FissionQuery: not a loop: %T", loop)
	}
	q := indexOf(body, sq)
	if q < 0 {
		return 0, 0, fmt.Errorf("rules: FissionQuery: query statement not in loop body")
	}
	eq, ok := sq.(*ir.ExecQuery)
	if !ok {
		return 0, 0, fmt.Errorf("rules: FissionQuery: split statement is %T, want *ir.ExecQuery", sq)
	}
	for _, s := range body.Stmts {
		if ir.IsCompound(s) {
			return 0, 0, notApplicable("Rule A", ReasonUnflattenable, "body not flat")
		}
	}
	g := loopGraph(loop, reg)
	if g.HasBarrier() {
		return 0, 0, notApplicable("Rule A", ReasonBarrier, "")
	}
	if blockers := g.FissionBlockers(q); len(blockers) > 0 {
		return 0, 0, notApplicable("Rule A", blockReason(blockers),
			fmt.Sprintf("%d crossing dependences, e.g. %s", len(blockers), blockers[0]))
	}
	var extra []string
	if eq.Guard != nil {
		extra = append(extra, eq.Guard.Var)
	}
	sv := g.SplitVars(q, extra...)

	// Build the submit and fetch replacements for the query statement. The
	// second loop loads the handle into a distinct variable so the two
	// generated loops share no handle state (this keeps a later split of an
	// enclosing loop free of spurious carried dependences).
	hvar := gen.Fresh("h")
	hvar2 := gen.Fresh("h")
	submit := &ir.Submit{Lhs: hvar, Query: eq.Query, Args: eq.Args, Kind: eq.Kind}
	fetch := &ir.Fetch{Lhs: eq.Lhs, Handle: ir.V(hvar2)}
	if eq.Guard != nil {
		gcp1, gcp2 := *eq.Guard, *eq.Guard
		submit.SetGuard(&gcp1)
		fetch.SetGuard(&gcp2)
	}
	return fission(parent, loopIdx, q, sv, []ir.Stmt{submit}, []ir.Stmt{fetch},
		[]carry{{field: hvar, target: hvar2}}, reg, gen)
}

// FissionAt applies the generalized fission of §III-D at a plain statement
// boundary: statements [0, boundary) stay in the first loop, statements
// [boundary, n) move to the second. It is used after an inner loop has been
// transformed, splitting the outer loop between the inner submit loop and
// the inner scan loop so all inner submissions of all outer iterations
// complete before any result is consumed (paper Example 5). Returns the
// replacement span and the generated scan loop's index like FissionQuery.
func FissionAt(parent *ir.Block, loopIdx, boundary int, reg *ir.Registry, gen *ir.NameGen) (span, scanIdx int, err error) {
	loop := parent.Stmts[loopIdx]
	body := loopBody(loop)
	if body == nil {
		return 0, 0, fmt.Errorf("rules: FissionAt: not a loop: %T", loop)
	}
	if boundary <= 0 || boundary >= len(body.Stmts) {
		return 0, 0, fmt.Errorf("rules: FissionAt: boundary %d out of range", boundary)
	}
	g := loopGraph(loop, reg)
	if g.HasBarrier() {
		return 0, 0, notApplicable("Rule A", ReasonBarrier, "")
	}
	if blockers := g.FissionBlockersAt(boundary); len(blockers) > 0 {
		return 0, 0, notApplicable("Rule A", blockReason(blockers),
			fmt.Sprintf("%d crossing dependences, e.g. %s", len(blockers), blockers[0]))
	}
	sv := g.SplitVarsAt(boundary)
	return fission(parent, loopIdx, boundary, sv, nil, nil, nil, reg, gen)
}

func blockReason(blockers []dataflow.Edge) Reason {
	for _, e := range blockers {
		if e.Kind == dataflow.LCFD {
			return ReasonTrueDepCycle
		}
	}
	return ReasonExternal
}

// carry moves one first-loop variable into a (possibly different) variable
// of the second loop through a record field.
type carry struct {
	field  string // record field, also the first-loop variable captured
	target string // second-loop variable the field is loaded into
}

// fission performs the mechanical split. Statements [0,cut) plus submitPart
// form the first loop's body; fetchPart plus statements [cut', n) form the
// second loop's, where cut' skips the split statement when submit/fetch
// replace it (submitPart non-nil) and equals cut otherwise. carries lists
// extra variables (the handle) carried through the record.
func fission(parent *ir.Block, loopIdx, cut int, sv []string,
	submitPart, fetchPart []ir.Stmt, carries []carry,
	reg *ir.Registry, gen *ir.NameGen) (span, scanIdx int, err error) {

	loop := parent.Stmts[loopIdx]
	body := loopBody(loop)
	p1 := body.Stmts[:cut]
	p2start := cut
	if submitPart != nil {
		p2start = cut + 1 // the split statement itself is replaced
	}
	p2 := body.Stmts[p2start:]

	tbl := gen.Fresh("t")
	rec := gen.Fresh("r")
	rec2 := gen.Fresh("r")
	svSet := map[string]bool{}
	for _, v := range sv {
		svSet[v] = true
	}

	// First loop body: record per iteration, ss1 with split-variable
	// captures, submission, append.
	var b1 []ir.Stmt
	b1 = append(b1, &ir.NewRecord{Name: rec})
	// Header-written split variables (foreach/scan element bindings) are
	// captured at the top of the body.
	for _, v := range headerWrites(loop) {
		if svSet[v] {
			b1 = append(b1, &ir.SetField{Record: rec, Field: v, Val: ir.V(v)})
		}
	}
	for _, s := range p1 {
		b1 = append(b1, s)
		b1 = append(b1, captureWrites(s, rec, svSet, reg)...)
	}
	for _, s := range submitPart {
		b1 = append(b1, s)
		// Carry the handle (and any other raw carries) under the same guard
		// as the submission.
		for _, cr := range carries {
			sf := &ir.SetField{Record: rec, Field: cr.field, Val: ir.V(cr.field)}
			if g := s.GetGuard(); g != nil {
				cp := *g
				sf.SetGuard(&cp)
			}
			b1 = append(b1, sf)
		}
	}
	b1 = append(b1, &ir.AppendRecord{Table: tbl, Record: rec})

	loop1 := remakeLoop(loop, &ir.Block{Stmts: b1})

	// Base-case repair for the conditional restores: a split variable whose
	// captures are all guarded may have its record field unset in some
	// iteration, in which case the second loop must see the value the
	// variable had at that point of the ORIGINAL execution. The induction
	// works from iteration 1 on, but iteration 0 would observe loop 1's
	// final value instead of the pre-loop value. Snapshot such variables
	// before the first loop and restore them before the second. (Variables
	// with an unconditional capture always have the field set, so they need
	// no snapshot; programs are assumed to definitely assign variables
	// before the loop, as Java's definite-assignment rule guarantees in the
	// paper's setting.)
	// Only live-in variables can observe their pre-loop value in the
	// original program; transform-introduced temporaries (reader/writer
	// stubs) are written and read under the same guard within an iteration
	// and are never live-in, so snapshotting them (which would read an
	// unbound variable) is both unnecessary and avoided.
	liveIn := liveInVars(loop, body.Stmts, reg)
	var pre, mid []ir.Stmt
	for _, v := range sv {
		if !liveIn[v] || alwaysCaptured(v, loop, p1, reg) {
			continue
		}
		pv := gen.Fresh(v)
		pre = append(pre, &ir.Assign{Lhs: []string{pv}, Rhs: ir.V(v)})
		mid = append(mid, &ir.Assign{Lhs: []string{v}, Rhs: ir.V(pv)})
	}

	// Second loop body: conditional restores, fetch, ss2.
	var b2 []ir.Stmt
	for _, v := range sv {
		b2 = append(b2, &ir.LoadField{Var: v, Record: rec2, Field: v})
	}
	for _, cr := range carries {
		b2 = append(b2, &ir.LoadField{Var: cr.target, Record: rec2, Field: cr.field})
	}
	b2 = append(b2, fetchPart...)
	b2 = append(b2, p2...)
	loop2 := &ir.Scan{Record: rec2, Table: tbl, Body: &ir.Block{Stmts: b2}}

	repl := []ir.Stmt{&ir.DeclTable{Name: tbl}}
	repl = append(repl, pre...)
	repl = append(repl, loop1)
	repl = append(repl, mid...)
	repl = append(repl, loop2)
	parent.Stmts = append(parent.Stmts[:loopIdx],
		append(repl, parent.Stmts[loopIdx+1:]...)...)
	return len(repl), loopIdx + len(repl) - 1, nil
}

// liveInVars computes the variables whose pre-loop value the loop body may
// observe in its first iteration, using a guard-aware definite-assignment
// pass: a read of v under guard g is covered if v was definitely assigned
// unconditionally earlier in the body, or assigned under the same guard
// (with no intervening redefinition of the guard variable).
func liveInVars(loop ir.Stmt, stmts []ir.Stmt, reg *ir.Registry) map[string]bool {
	assigned := map[string]bool{}
	for _, v := range headerWrites(loop) {
		assigned[v] = true
	}
	type gkey struct {
		v   string
		neg bool
	}
	underGuard := map[gkey]map[string]bool{}
	liveIn := map[string]bool{}

	for _, s := range stmts {
		sets := dataflow.StmtSets(s, reg)
		g := s.GetGuard()
		covered := func(v string) bool {
			if assigned[v] {
				return true
			}
			if g != nil && underGuard[gkey{g.Var, g.Neg}][v] {
				return true
			}
			return false
		}
		for v := range sets.Reads {
			if dataflow.IsExternal(v) {
				continue
			}
			if !covered(v) {
				liveIn[v] = true
			}
		}
		if g == nil {
			for v := range sets.Kills {
				assigned[v] = true
			}
		} else {
			k := gkey{g.Var, g.Neg}
			if underGuard[k] == nil {
				underGuard[k] = map[string]bool{}
			}
			for v := range sets.Writes {
				if !dataflow.IsExternal(v) {
					underGuard[k][v] = true
				}
			}
		}
		// A write to a variable used as a guard invalidates the facts
		// recorded under that guard.
		for v := range sets.Writes {
			delete(underGuard, gkey{v, false})
			delete(underGuard, gkey{v, true})
		}
	}
	return liveIn
}

// alwaysCaptured reports whether split variable v gets its record field set
// in every iteration: it is written by the loop header, or some unguarded
// first-loop statement writes it.
func alwaysCaptured(v string, loop ir.Stmt, p1 []ir.Stmt, reg *ir.Registry) bool {
	for _, h := range headerWrites(loop) {
		if h == v {
			return true
		}
	}
	for _, s := range p1 {
		if _, ok := s.(*ir.LoadField); ok {
			// A restore's capture is a conditional field copy; it does not
			// guarantee the field is set.
			continue
		}
		if s.GetGuard() == nil && !ir.IsCompound(s) && dataflow.StmtSets(s, reg).Writes[v] {
			return true
		}
	}
	return false
}

// captureWrites emits the "r.v = v" capture statements for every split
// variable the statement may write, guarded like the statement itself
// (Rule A's construction of ss1', §III-B point 2).
func captureWrites(s ir.Stmt, rec string, sv map[string]bool, reg *ir.Registry) []ir.Stmt {
	// A conditional restore produced by an earlier fission writes its
	// variable only when the source field was set; the capture must
	// preserve that conditionality, which a field-to-field copy does.
	if lf, ok := s.(*ir.LoadField); ok {
		if sv[lf.Var] {
			return []ir.Stmt{&ir.CopyField{
				DstRec: rec, DstField: lf.Var, SrcRec: lf.Record, SrcField: lf.Field,
			}}
		}
		return nil
	}
	sets := dataflow.StmtSets(s, reg)
	var vars []string
	for v := range sets.Writes {
		if sv[v] && !dataflow.IsExternal(v) {
			vars = append(vars, v)
		}
	}
	sort.Strings(vars)
	var out []ir.Stmt
	for _, v := range vars {
		sf := &ir.SetField{Record: rec, Field: v, Val: ir.V(v)}
		if g := s.GetGuard(); g != nil {
			cp := *g
			sf.SetGuard(&cp)
		}
		out = append(out, sf)
	}
	return out
}

// headerWrites lists the variables written by the loop header each
// iteration.
func headerWrites(loop ir.Stmt) []string {
	switch l := loop.(type) {
	case *ir.ForEach:
		return []string{l.Var}
	case *ir.Scan:
		return []string{l.Record}
	}
	return nil
}

// remakeLoop rebuilds a loop of the same kind with a new body.
func remakeLoop(loop ir.Stmt, body *ir.Block) ir.Stmt {
	switch l := loop.(type) {
	case *ir.While:
		return &ir.While{Cond: l.Cond, Body: body}
	case *ir.ForEach:
		return &ir.ForEach{Var: l.Var, Coll: l.Coll, Body: body}
	case *ir.Scan:
		return &ir.Scan{Record: l.Record, Table: l.Table, Body: body}
	}
	panic(fmt.Sprintf("rules: remakeLoop: %T", loop))
}
