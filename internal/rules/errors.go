// Package rules implements the paper's program transformation rules:
//
//   - Rule B: control-dependence to flow-dependence conversion (§III-C),
//   - Rule C1–C3 reordering primitives and the reorder/moveAfter statement
//     reordering algorithm (§IV, Figures 2–4),
//   - Rule A: loop fission for asynchronous query submission (§III-B),
//     including the generalized split-at-boundary form used for nested
//     loops (§III-D),
//   - the readability regrouping pass (§V).
//
// All rules mutate IR in place; callers clone first if they need the
// original. Every rule application preserves program semantics; when a rule's
// preconditions fail, it returns a *NotApplicableError and leaves the program
// unchanged rather than risking an unsound rewrite.
package rules

import "fmt"

// Reason classifies why a transformation could not be applied; these feed the
// applicability analysis behind the paper's Table I.
type Reason string

const (
	// ReasonTrueDepCycle: the query statement lies on a cycle of flow and
	// loop-carried-flow dependences (Theorem 4.1's negative case): its
	// execution depends on its own result from a previous iteration.
	ReasonTrueDepCycle Reason = "query lies on a true-dependence cycle"
	// ReasonBarrier: the loop contains a call that must not be reordered or
	// split across (models recursive method invocations, per §VI Table I).
	ReasonBarrier Reason = "loop contains a barrier (recursive) invocation"
	// ReasonExternal: a loop-carried external anti/output dependence crosses
	// the split point and cannot be removed by reordering (precondition (b)).
	ReasonExternal Reason = "loop-carried external dependence crosses the split"
	// ReasonUnflattenable: the query sits under control flow that Rule B
	// cannot linearize (e.g. a nested loop inside a conditional).
	ReasonUnflattenable Reason = "control flow around the query cannot be flattened"
	// ReasonUnresolvable: moveAfter met a dependence between adjacent
	// statements that stubs cannot shift (a flow dependence or an external
	// dependence).
	ReasonUnresolvable Reason = "reordering blocked by an unshiftable dependence"
	// ReasonNoQuery: the loop contains no blocking query execution.
	ReasonNoQuery Reason = "no blocking query execution statement in loop"
)

// NotApplicableError reports that a rule's preconditions do not hold.
type NotApplicableError struct {
	Rule   string
	Reason Reason
	Detail string
}

func (e *NotApplicableError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s not applicable: %s (%s)", e.Rule, e.Reason, e.Detail)
	}
	return fmt.Sprintf("%s not applicable: %s", e.Rule, e.Reason)
}

// notApplicable builds a NotApplicableError.
func notApplicable(rule string, reason Reason, detail string) error {
	return &NotApplicableError{Rule: rule, Reason: reason, Detail: detail}
}
