package rules

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/ir"
)

// CtrlLoc is the pseudo-location used for the flow dependences induced by the
// loop predicate's control dependence on every body statement. The paper
// (§IV-A) requires these to be taken into account when checking for
// true-dependence cycles: a query whose execution in one iteration is
// controlled by a predicate that reads its previous result is inherently
// sequential.
const CtrlLoc = "$ctrl"

// loopGraph builds the DDG of a loop body and augments it with the
// control-dependence flow edges from the header to every body statement.
func loopGraph(loop ir.Stmt, reg *ir.Registry) *dataflow.Graph {
	g := dataflow.BuildLoop(loop, reg)
	for i := range g.Stmts {
		g.Edges = append(g.Edges, dataflow.Edge{
			From: dataflow.Header, To: i, Kind: dataflow.FD, Loc: CtrlLoc,
		})
	}
	return g
}

// Reorder implements procedure reorder of the paper's Figure 2: it reorders
// the statements of the (flat) body of loop so that no loop-carried flow
// dependence crosses the split boundary of the query statement sq, enabling
// Rule A. It fails with ReasonTrueDepCycle when sq lies on a true-dependence
// cycle (Theorem 4.1's precondition) and with ReasonUnresolvable when an
// adjacent-statement dependence cannot be shifted by the Rule C stubs.
//
// The body is mutated in place; sq is tracked by identity as it moves.
func Reorder(loop ir.Stmt, sq ir.Stmt, reg *ir.Registry, gen *ir.NameGen) error {
	body := loopBody(loop)
	if body == nil {
		return fmt.Errorf("rules: Reorder: not a loop: %T", loop)
	}
	for _, s := range body.Stmts {
		if ir.IsCompound(s) {
			return notApplicable("reorder", ReasonUnflattenable, "body not flat")
		}
	}
	g := loopGraph(loop, reg)
	q := indexOf(body, sq)
	if q < 0 {
		return fmt.Errorf("rules: Reorder: query statement not in loop body")
	}
	if g.OnTrueDepCycle(q) {
		return notApplicable("reorder", ReasonTrueDepCycle, "")
	}
	return reorderToPivot(loop, sq, reg, gen, func(g *dataflow.Graph, q int) []dataflow.Edge {
		return g.CrossingLCFD(q)
	})
}

// ReorderBoundary is the pivot variant used before the boundary fission of
// §III-D: it eliminates the loop-carried flow dependences that cross the
// positional boundary at the pivot statement (the inner scan loop), treating
// the whole pivot as part of the second loop.
func ReorderBoundary(loop ir.Stmt, pivot ir.Stmt, reg *ir.Registry, gen *ir.NameGen) error {
	return reorderToPivot(loop, pivot, reg, gen, func(g *dataflow.Graph, q int) []dataflow.Edge {
		var out []dataflow.Edge
		for _, e := range g.FissionBlockersAt(q) {
			if e.Kind == dataflow.LCFD {
				out = append(out, e)
			}
		}
		return out
	})
}

// reorderToPivot is the shared engine of Figure 2, parameterized by how
// crossing edges are computed relative to the pivot statement.
func reorderToPivot(loop ir.Stmt, pivot ir.Stmt, reg *ir.Registry, gen *ir.NameGen,
	crossing func(*dataflow.Graph, int) []dataflow.Edge) error {

	body := loopBody(loop)
	if body == nil {
		return fmt.Errorf("rules: reorder: not a loop: %T", loop)
	}
	g := loopGraph(loop, reg)
	if g.HasBarrier() {
		return notApplicable("reorder", ReasonBarrier, "")
	}
	n := len(body.Stmts) + 2
	maxIter := 8*n + 32
	// budget bounds the total work (adjacent swaps, stub insertions, and
	// dependence-graph rebuilds) across the whole reordering, and maxStmts
	// bounds body growth from Rule C stubs, so pathological dependence
	// shapes fail cleanly with ReasonUnresolvable instead of thrashing.
	// Failing is safe: the site is simply reported untransformable. Real
	// programs (all of §VI's applications and every paper example) stay far
	// below these caps.
	budget := 12*n + 64
	maxStmts := 2*n + 12
	for iter := 0; ; iter++ {
		if iter > maxIter || len(body.Stmts) > maxStmts {
			return notApplicable("reorder", ReasonUnresolvable, "did not converge")
		}
		g = loopGraph(loop, reg)
		q := indexOf(body, pivot)
		edges := crossing(g, q)
		if len(edges) == 0 {
			return nil
		}
		e := pickEdge(edges)
		// Figure 2's case analysis. e = (v1, v2) with v1 on the P2 side and
		// v2 on the P1 side. Note v2 may be the loop header (the predicate),
		// which can never move; in that case the true-dependence path
		// v1 -> header -> (ctrl) -> pivot always exists and we move the
		// pivot instead.
		v1, v2 := e.From, e.To
		var stmtToMove, target ir.Stmt
		if v1 != q && g.TrueDepPath(v1, q) {
			if g.TrueDepPath(q, v1) {
				// Both directions: the pivot is entangled in a cycle with
				// v1; no reordering can separate them.
				return notApplicable("reorder", ReasonTrueDepCycle, "")
			}
			stmtToMove, target = pivot, body.Stmts[v1]
		} else {
			if v2 == dataflow.Header {
				return notApplicable("reorder", ReasonUnresolvable,
					"carried dependence into the loop predicate with no path to the pivot")
			}
			stmtToMove, target = body.Stmts[v2], pivot
		}
		if err := movePastWithDeps(body, stmtToMove, target, pivot, reg, gen, &budget); err != nil {
			return err
		}
	}
}

// pickEdge selects a deterministic edge from the crossing set so transforms
// are reproducible.
func pickEdge(edges []dataflow.Edge) dataflow.Edge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Loc < edges[j].Loc
	})
	return edges[0]
}

// movePastWithDeps implements the srcDeps loop of Figure 2: before moving
// stmtToMove past target, every statement between them that has a
// flow-dependence path from stmtToMove is moved past the target first
// (closest to the target first).
func movePastWithDeps(body *ir.Block, stmtToMove, target, sq ir.Stmt, reg *ir.Registry, gen *ir.NameGen, budget *int) error {
	for {
		*budget = *budget - 1
		if *budget < 0 {
			return notApplicable("reorder", ReasonUnresolvable, "reordering budget exhausted")
		}
		g := rebuild(body, reg)
		si := indexOf(body, stmtToMove)
		ti := indexOf(body, target)
		if si < 0 || ti < 0 {
			return fmt.Errorf("rules: movePastWithDeps: statement vanished")
		}
		if si > ti {
			return nil // already past
		}
		dep := closestSrcDep(g, si, ti)
		if dep < 0 {
			break
		}
		if err := moveAfter(body, body.Stmts[dep], target, sq, reg, gen, budget); err != nil {
			return err
		}
	}
	return moveAfter(body, stmtToMove, target, sq, reg, gen, budget)
}

// closestSrcDep finds the statement between si and ti (exclusive) nearest to
// ti that has an intra-iteration flow-dependence path from si.
func closestSrcDep(g *dataflow.Graph, si, ti int) int {
	// Forward FD reachability from si among body statements.
	reach := map[int]bool{si: true}
	for {
		grew := false
		for _, e := range g.Edges {
			if e.Kind == dataflow.FD && e.From >= 0 && e.To >= 0 && reach[e.From] && !reach[e.To] {
				reach[e.To] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	for j := ti - 1; j > si; j-- {
		if reach[j] {
			return j
		}
	}
	return -1
}

// rebuild constructs a body-only dependence view for adjacency decisions in
// moveAfter. Loop-carried edges and the header are irrelevant there, so a
// plain block graph suffices.
func rebuild(body *ir.Block, reg *ir.Registry) *dataflow.Graph {
	return dataflow.BuildBlock(body.Stmts, reg)
}

// moveAfter implements procedure moveAfter of Figure 4: move statement s to
// the position immediately after t by repeated adjacent swaps, shifting anti
// and output dependences out of the way with Rule C2/C3 stub statements.
func moveAfter(body *ir.Block, s, t, sq ir.Stmt, reg *ir.Registry, gen *ir.NameGen, budget *int) error {
	for {
		si := indexOf(body, s)
		ti := indexOf(body, t)
		if si < 0 || ti < 0 {
			return fmt.Errorf("rules: moveAfter: statement vanished")
		}
		if si > ti {
			return nil
		}
		*budget = *budget - 1
		if *budget < 0 {
			return notApplicable("moveAfter", ReasonUnresolvable, "reordering budget exhausted")
		}
		next := body.Stmts[si+1]
		if err := resolveAdjacent(body, s, next, sq, t, reg, gen, budget); err != nil {
			return err
		}
		// Indices may have shifted while inserting stubs; refresh and swap.
		si = indexOf(body, s)
		ni := si + 1
		body.Stmts[si], body.Stmts[ni] = body.Stmts[ni], body.Stmts[si]
		if body.Stmts[si] == t { // s has just moved past t
			return nil
		}
	}
}

// resolveAdjacent removes all intra-iteration dependences between adjacent
// statements s and next so they can be swapped (Rule C1). Anti dependences
// are shifted with reader or writer stubs (Rule C2), output dependences with
// writer stubs (Rule C3). Flow dependences and dependences on external
// locations cannot be shifted and yield ReasonUnresolvable.
func resolveAdjacent(body *ir.Block, s, next, sq, t ir.Stmt, reg *ir.Registry, gen *ir.NameGen, budget *int) error {
	for round := 0; ; round++ {
		if round > 8 {
			return notApplicable("moveAfter", ReasonUnresolvable, "stub cascade did not converge")
		}
		edges := dataflow.PairEdges(s, next, reg)
		if len(edges) == 0 {
			return nil
		}
		// Flow or external dependences between neighbours are fatal.
		for _, e := range edges {
			if e.Kind == dataflow.FD {
				return notApplicable("moveAfter", ReasonUnresolvable,
					fmt.Sprintf("flow dependence on %s between adjacent statements", e.Loc))
			}
			if dataflow.IsExternal(e.Loc) {
				return notApplicable("moveAfter", ReasonExternal,
					fmt.Sprintf("external dependence on %s", e.Loc))
			}
		}
		progressed := false
		// Rule C3: shift output dependences first (this may also clear an
		// anti dependence on the same variable).
		for _, e := range edges {
			if e.Kind != dataflow.OD {
				continue
			}
			if err := writerStub(body, next, t, sq, e.Loc, reg, gen, budget); err != nil {
				return err
			}
			progressed = true
			break
		}
		if progressed {
			continue
		}
		// Rule C2: shift anti dependences. Per Figure 4: when sq also reads
		// the variable that next writes, renaming next's write would leave
		// sq's read pointing at the renamed variable's stale original, so a
		// reader stub on s is used instead; otherwise next's write is
		// shifted. A reader stub requires that s reads v without also
		// writing it (a write by s would have produced an OD edge, already
		// shifted above).
		for _, e := range edges {
			if e.Kind != dataflow.AD {
				continue
			}
			// "AD edge from sq to next" holds when sq precedes next and
			// reads the variable next writes.
			qi := indexOf(body, sq)
			ni := indexOf(body, next)
			sqReadsLoc := qi >= 0 && qi < ni && readsVar(sq, e.Loc, reg)
			useReader := sqReadsLoc &&
				readsVar(s, e.Loc, reg) && !writesVar(s, e.Loc, reg)
			if useReader {
				readerStub(body, s, e.Loc, gen)
			} else if err := writerStub(body, next, t, sq, e.Loc, reg, gen, budget); err != nil {
				return err
			}
			progressed = true
			break
		}
		if !progressed {
			return notApplicable("moveAfter", ReasonUnresolvable, "unknown adjacent dependence")
		}
	}
}

// readerStub applies Rule C2's reader form: insert "v1 = v" immediately
// before s and rename s's reads of v to v1.
func readerStub(body *ir.Block, s ir.Stmt, v string, gen *ir.NameGen) {
	v1 := gen.Fresh(v)
	stub := &ir.Assign{Lhs: []string{v1}, Rhs: ir.V(v)}
	insertBefore(body, s, stub)
	ir.RenameReads(s, v, v1)
}

// writerStub applies Rule C3 (and C2's writer form): rename next's write of v
// to a fresh v1 and insert "v = v1" immediately after next, then move the
// stub past t so the restored value lands after the reordering window. When
// next mutates v in place, a copy-in "v1 = v" is inserted before next so the
// mutation applies to the copy (the mini-language has value semantics for
// collections). The restoring stub inherits next's guard so a skipped guarded
// write stays skipped.
func writerStub(body *ir.Block, next, t, sq ir.Stmt, v string, reg *ir.Registry, gen *ir.NameGen, budget *int) error {
	if next == sq {
		return notApplicable("moveAfter", ReasonUnresolvable,
			"would need to rename the query statement's write")
	}
	v1 := gen.Fresh(v)
	if dataflow.MutatesInPlace(next, reg) && readsVar(next, v, reg) && writesVar(next, v, reg) {
		copyIn := &ir.Assign{Lhs: []string{v1}, Rhs: ir.V(v)}
		if g := next.GetGuard(); g != nil {
			cp := *g
			copyIn.SetGuard(&cp)
		}
		insertBefore(body, next, copyIn)
		ir.RenameReads(next, v, v1)
	}
	ir.RenameWrites(next, v, v1, reg)
	stub := &ir.Assign{Lhs: []string{v}, Rhs: ir.V(v1)}
	if g := next.GetGuard(); g != nil {
		cp := *g
		stub.SetGuard(&cp)
	}
	insertAfter(body, next, stub)
	return moveAfter(body, stub, t, sq, reg, gen, budget)
}

func hasEdge(g *dataflow.Graph, from, to int, kind dataflow.EdgeKind, loc string) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind && e.Loc == loc {
			return true
		}
	}
	return false
}

func readsVar(s ir.Stmt, v string, reg *ir.Registry) bool {
	return dataflow.StmtSets(s, reg).Reads[v]
}

func writesVar(s ir.Stmt, v string, reg *ir.Registry) bool {
	return dataflow.StmtSets(s, reg).Writes[v]
}

func loopBody(loop ir.Stmt) *ir.Block {
	switch l := loop.(type) {
	case *ir.While:
		return l.Body
	case *ir.ForEach:
		return l.Body
	case *ir.Scan:
		return l.Body
	}
	return nil
}

func indexOf(body *ir.Block, s ir.Stmt) int {
	for i, x := range body.Stmts {
		if x == s {
			return i
		}
	}
	return -1
}

func insertBefore(body *ir.Block, anchor ir.Stmt, s ir.Stmt) {
	i := indexOf(body, anchor)
	body.Stmts = append(body.Stmts, nil)
	copy(body.Stmts[i+1:], body.Stmts[i:])
	body.Stmts[i] = s
}

func insertAfter(body *ir.Block, anchor ir.Stmt, s ir.Stmt) {
	i := indexOf(body, anchor)
	body.Stmts = append(body.Stmts, nil)
	copy(body.Stmts[i+2:], body.Stmts[i+1:])
	body.Stmts[i+1] = s
}
