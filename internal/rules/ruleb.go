package rules

import (
	"repro/internal/ir"
)

// Flatten applies Rule B (§III-C) to a loop body: every if statement is
// replaced by a guard-variable assignment followed by guarded statements, so
// that the body becomes a straight-line list of simple statements on which
// the reorder algorithm and Rule A can operate.
//
// Nested ifs compose guards through fresh boolean variables: for
//
//	if (p) { if (q) { s } }
//
// Flatten produces
//
//	c1 = p;
//	c2 = false;  c1 ? c2 = q;
//	c2 ? s;
//
// so every statement still carries a single-variable guard. Loops nested
// inside conditionals cannot be linearized; Flatten returns
// ReasonUnflattenable for those (the nested-loop rule of §III-D handles
// loops nested directly in the body).
func Flatten(body *ir.Block, gen *ir.NameGen) error {
	out, err := flattenStmts(body.Stmts, nil, gen, true)
	if err != nil {
		return err
	}
	body.Stmts = out
	return nil
}

// NeedsFlatten reports whether the block contains any if statements.
func NeedsFlatten(body *ir.Block) bool {
	for _, s := range body.Stmts {
		if _, ok := s.(*ir.If); ok {
			return true
		}
	}
	return false
}

// flattenStmts linearizes stmts under the given outer guard. topLevel allows
// loops to remain (they are handled by the nested-loop rule); under a guard
// they are an error.
func flattenStmts(stmts []ir.Stmt, outer *ir.Guard, gen *ir.NameGen, topLevel bool) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.If:
			flat, err := flattenIf(x, outer, gen)
			if err != nil {
				return nil, err
			}
			out = append(out, flat...)
		case *ir.While, *ir.ForEach, *ir.Scan:
			if !topLevel || outer != nil {
				return nil, notApplicable("Rule B", ReasonUnflattenable,
					"loop nested inside a conditional")
			}
			out = append(out, s)
		default:
			g, pre, err := composeGuard(outer, s.GetGuard(), gen)
			if err != nil {
				return nil, err
			}
			out = append(out, pre...)
			s.SetGuard(g)
			out = append(out, s)
		}
	}
	return out, nil
}

// flattenIf converts one if statement into guarded statements per Rule B.
func flattenIf(x *ir.If, outer *ir.Guard, gen *ir.NameGen) ([]ir.Stmt, error) {
	var out []ir.Stmt
	cv := gen.Fresh("c")
	if outer == nil {
		// c = cond;
		out = append(out, &ir.Assign{Lhs: []string{cv}, Rhs: x.Cond})
	} else {
		// c = false;  outer ? c = cond;   (evaluate cond only under outer)
		out = append(out, &ir.Assign{Lhs: []string{cv}, Rhs: ir.BoolLit(false)})
		a := &ir.Assign{Lhs: []string{cv}, Rhs: x.Cond}
		a.SetGuard(&ir.Guard{Var: outer.Var, Neg: outer.Neg})
		out = append(out, a)
	}
	thenGuard := &ir.Guard{Var: cv}
	thenStmts, err := flattenStmts(x.Then.Stmts, thenGuard, gen, false)
	if err != nil {
		return nil, err
	}
	out = append(out, thenStmts...)
	if x.Else != nil {
		// The else branch runs when outer holds and cv is false. With no
		// outer guard that is just !cv; otherwise materialize a fresh
		// variable: ce = false; outer ? ce = !cv.
		var elseGuard *ir.Guard
		if outer == nil {
			elseGuard = &ir.Guard{Var: cv, Neg: true}
		} else {
			ce := gen.Fresh("c")
			out = append(out, &ir.Assign{Lhs: []string{ce}, Rhs: ir.BoolLit(false)})
			a := &ir.Assign{Lhs: []string{ce}, Rhs: &ir.Un{Op: "!", X: ir.V(cv)}}
			a.SetGuard(&ir.Guard{Var: outer.Var, Neg: outer.Neg})
			out = append(out, a)
			elseGuard = &ir.Guard{Var: ce}
		}
		elseStmts, err := flattenStmts(x.Else.Stmts, elseGuard, gen, false)
		if err != nil {
			return nil, err
		}
		out = append(out, elseStmts...)
	}
	return out, nil
}

// composeGuard combines an outer flattening guard with a statement's own
// guard. When both are present a fresh conjunction variable is materialized:
//
//	g2 = false;  outer ? g2 = own;
//
// returning g2 as the new guard plus the prelude statements.
func composeGuard(outer, own *ir.Guard, gen *ir.NameGen) (*ir.Guard, []ir.Stmt, error) {
	switch {
	case outer == nil:
		return own, nil, nil
	case own == nil:
		cp := *outer
		return &cp, nil, nil
	}
	g2 := gen.Fresh("c")
	pre := []ir.Stmt{
		&ir.Assign{Lhs: []string{g2}, Rhs: ir.BoolLit(false)},
	}
	var rhs ir.Expr = ir.V(own.Var)
	if own.Neg {
		rhs = &ir.Un{Op: "!", X: rhs}
	}
	a := &ir.Assign{Lhs: []string{g2}, Rhs: rhs}
	a.SetGuard(&ir.Guard{Var: outer.Var, Neg: outer.Neg})
	pre = append(pre, a)
	return &ir.Guard{Var: g2}, pre, nil
}
