// Package disk simulates a single rotating disk with positional seek costs
// and elevator (SCAN) scheduling of queued requests. This is the mechanism
// behind the paper's observation that concurrently submitted queries let the
// database "reorder disk IO requests to minimize seeks" (§I): when many
// requests are queued, the disk services them in head-position order, so the
// average seek distance — and therefore the per-request latency — drops as
// concurrency rises. A cold buffer pool funnels page misses here, making the
// disk the bottleneck the paper's cold-cache experiments exercise.
package disk

import (
	"sort"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Params model the device. All durations are unscaled base units
// (microsecond scale at Scale=1).
type Params struct {
	// Tracks is the number of logical head positions.
	Tracks int
	// SeekPerTrack is the head movement cost per track of distance.
	SeekPerTrack time.Duration
	// SeekMin is the minimum positioning cost of any access.
	SeekMin time.Duration
	// TransferPerPage is the cost of transferring one page once positioned.
	TransferPerPage time.Duration
	// Spindles is the number of independent drives the extent space is
	// striped over — the paper's servers have "multiple disks" (§I), which
	// is one of the reasons concurrent submission helps cold-cache loads.
	// Requests are served by per-spindle elevators.
	Spindles int
	// WriteSettle is an extra positional delay charged once per write
	// request: the rotational wait for the target sector to come under the
	// head, which a durable write must pay but a (track-buffered) read
	// avoids. Zero by default so the seek-only model is unchanged; the
	// durability experiment sets it so a WAL fsync carries its real-world
	// cost — the cost group commit amortizes.
	WriteSettle time.Duration
}

// DefaultParams give a disk whose full-stroke seek is ~2ms and per-page
// transfer 70µs, so a random single-page read costs ~750µs on average
// (sequential scans stay transfer-dominated) and deep request queues cut
// the seek component sharply.
func DefaultParams() Params {
	return Params{
		Tracks:          4096,
		SeekPerTrack:    500 * time.Nanosecond,
		SeekMin:         50 * time.Microsecond,
		TransferPerPage: 70 * time.Microsecond,
		Spindles:        8,
	}
}

// Request is one batched IO: transfer `Pages` pages starting at track
// `Track`. Reads and writes ride the same elevator; `write` only switches
// which activity counter the transfer lands in.
type request struct {
	track int
	pages int
	write bool
	done  chan struct{}
}

// Disk services requests in elevator order, one in flight per spindle.
type Disk struct {
	params Params
	clock  *simclock.Clock

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*request
	heads  []int // per-spindle head position
	closed bool
	wg     sync.WaitGroup

	statMu       sync.Mutex
	requests     int64
	pagesRead    int64
	writes       int64
	pagesWritten int64
	seekTime     time.Duration
	busyTime     time.Duration
	maxQueue     int
	totalQueue   int64
}

// New starts the disk's service goroutines (one per spindle).
func New(params Params, clock *simclock.Clock) *Disk {
	if params.Spindles < 1 {
		params.Spindles = 1
	}
	d := &Disk{params: params, clock: clock, heads: make([]int, params.Spindles)}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(params.Spindles)
	for i := 0; i < params.Spindles; i++ {
		go d.serve(i)
	}
	return d
}

// Read blocks until the disk has serviced a batched read of pages pages
// located at track (modulo the disk size).
func (d *Disk) Read(track, pages int) { d.submit(track, pages, false) }

// Write blocks until the disk has serviced a batched write of pages pages at
// track (modulo the disk size) — the durability path: a write-ahead log's
// group-committed fsync is one Write call covering the whole commit batch,
// so the fsync cost amortizes across the batch exactly like seeks amortize
// across queued reads.
func (d *Disk) Write(track, pages int) { d.submit(track, pages, true) }

func (d *Disk) submit(track, pages int, write bool) {
	if pages <= 0 {
		return
	}
	if d.params.Tracks > 0 {
		track = ((track % d.params.Tracks) + d.params.Tracks) % d.params.Tracks
	}
	r := &request{track: track, pages: pages, write: write, done: make(chan struct{})}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.queue = append(d.queue, r)
	if len(d.queue) > d.maxQueue {
		d.maxQueue = len(d.queue)
	}
	// Broadcast, not Signal: requests are striped across spindles and a
	// single Signal could wake a spindle that has no work for this track.
	d.cond.Broadcast()
	d.mu.Unlock()
	<-r.done
}

// Close stops the service goroutine after draining the queue.
func (d *Disk) Close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		d.cond.Broadcast()
	}
	d.mu.Unlock()
	d.wg.Wait()
}

// Stats summarizes device activity.
type Stats struct {
	Requests     int64
	PagesRead    int64
	Writes       int64
	PagesWritten int64
	SeekTime     time.Duration // unscaled virtual time spent seeking
	BusyTime     time.Duration // unscaled virtual total service time
	MaxQueue     int
	AvgQueue     float64
}

// Stats returns a snapshot.
func (d *Disk) Stats() Stats {
	d.statMu.Lock()
	defer d.statMu.Unlock()
	s := Stats{
		Requests:     d.requests,
		PagesRead:    d.pagesRead,
		Writes:       d.writes,
		PagesWritten: d.pagesWritten,
		SeekTime:     d.seekTime,
		BusyTime:     d.busyTime,
		MaxQueue:     d.maxQueue,
	}
	if d.requests > 0 {
		s.AvgQueue = float64(d.totalQueue) / float64(d.requests)
	}
	return s
}

// serve is one spindle's elevator loop: among queued requests for this
// spindle, pick the one nearest to the spindle's head position (a common
// SSTF/SCAN hybrid simplification), sleep its service time, complete it.
// A request on track t belongs to spindle t mod Spindles (striping).
func (d *Disk) serve(spindle int) {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		idx := -1
		for {
			idx = d.nearestLocked(spindle)
			if idx >= 0 || d.closed {
				break
			}
			d.cond.Wait()
		}
		if idx < 0 && d.closed {
			d.mu.Unlock()
			return
		}
		r := d.queue[idx]
		d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
		depth := len(d.queue) + 1
		dist := r.track/d.params.Spindles - d.heads[spindle]
		if dist < 0 {
			dist = -dist
		}
		d.heads[spindle] = r.track / d.params.Spindles
		d.mu.Unlock()

		seek := time.Duration(dist)*d.params.SeekPerTrack + d.params.SeekMin
		service := seek + time.Duration(r.pages)*d.params.TransferPerPage
		if r.write {
			service += d.params.WriteSettle
		}
		d.clock.Sleep(service)

		d.statMu.Lock()
		d.requests++
		if r.write {
			d.writes++
			d.pagesWritten += int64(r.pages)
		} else {
			d.pagesRead += int64(r.pages)
		}
		d.seekTime += seek
		d.busyTime += service
		d.totalQueue += int64(depth)
		d.statMu.Unlock()

		close(r.done)
	}
}

// nearestLocked returns the index of the queued request for this spindle
// with the shortest seek from the spindle's head, or -1 when none is
// queued. Ties resolve to the lowest track so order is deterministic.
func (d *Disk) nearestLocked(spindle int) int {
	best := -1
	bestDist := 1 << 60
	for i, r := range d.queue {
		if r.track%d.params.Spindles != spindle {
			continue
		}
		dist := r.track/d.params.Spindles - d.heads[spindle]
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist || (dist == bestDist && best >= 0 && r.track < d.queue[best].track) {
			best = i
			bestDist = dist
		}
	}
	return best
}

// SortTracks is a helper for tests: the order the elevator would service a
// set of tracks starting from head position 0, computed analytically.
func SortTracks(head int, tracks []int) []int {
	out := append([]int(nil), tracks...)
	res := make([]int, 0, len(out))
	cur := head
	for len(out) > 0 {
		sort.Ints(out)
		best, bestDist := 0, 1<<60
		for i, t := range out {
			dist := t - cur
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				best, bestDist = i, dist
			}
		}
		cur = out[best]
		res = append(res, cur)
		out = append(out[:best], out[best+1:]...)
	}
	return res
}
