package disk

import (
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func zeroClock() *simclock.Clock { return simclock.New(0) }

func TestReadCompletes(t *testing.T) {
	d := New(DefaultParams(), zeroClock())
	defer d.Close()
	done := make(chan struct{})
	go func() {
		d.Read(100, 2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read never completed")
	}
	st := d.Stats()
	if st.Requests != 1 || st.PagesRead != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestZeroPagesNoop(t *testing.T) {
	d := New(DefaultParams(), zeroClock())
	defer d.Close()
	d.Read(5, 0)
	if st := d.Stats(); st.Requests != 0 {
		t.Fatalf("zero-page read must be a no-op: %+v", st)
	}
}

func TestTrackWrap(t *testing.T) {
	d := New(DefaultParams(), zeroClock())
	defer d.Close()
	d.Read(-3, 1)        // negative wraps
	d.Read(1_000_000, 1) // beyond the surface wraps
	if st := d.Stats(); st.Requests != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestConcurrentReads(t *testing.T) {
	d := New(DefaultParams(), zeroClock())
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(track int) {
			defer wg.Done()
			d.Read(track*13, 1)
		}(i)
	}
	wg.Wait()
	st := d.Stats()
	if st.Requests != 200 || st.PagesRead != 200 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxQueue < 2 {
		t.Errorf("expected queueing under concurrency, max queue %d", st.MaxQueue)
	}
}

// TestElevatorReducesSeek: servicing many queued random requests must spend
// less seek time per request than servicing them one at a time, because each
// spindle picks the nearest queued track.
func TestElevatorReducesSeek(t *testing.T) {
	params := DefaultParams()
	params.Spindles = 1
	tracks := []int{4000, 10, 3500, 600, 2800, 1200, 2000, 90, 3100, 1700,
		250, 3900, 850, 2400, 1500, 50, 3700, 950, 2600, 1100}

	// Serial: one request at a time.
	d1 := New(params, zeroClock())
	for _, tr := range tracks {
		d1.Read(tr, 1)
	}
	serialSeek := d1.Stats().SeekTime
	d1.Close()

	// Queued: all requests outstanding at once.
	d2 := New(params, zeroClock())
	var wg sync.WaitGroup
	for _, tr := range tracks {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			d2.Read(tr, 1)
		}(tr)
	}
	wg.Wait()
	queuedSeek := d2.Stats().SeekTime
	d2.Close()

	if queuedSeek >= serialSeek {
		t.Fatalf("elevator did not reduce seek: queued %v >= serial %v", queuedSeek, serialSeek)
	}
	if queuedSeek > serialSeek/2 {
		t.Logf("note: modest elevator gain: %v vs %v", queuedSeek, serialSeek)
	}
}

// TestSpindleParallelism: with wall-clock sleeping enabled, N spindles must
// service N single-page reads roughly in parallel.
func TestSpindleParallelism(t *testing.T) {
	params := Params{
		Tracks: 64, SeekPerTrack: 0, SeekMin: 20 * time.Millisecond,
		TransferPerPage: 0, Spindles: 4,
	}
	d := New(params, simclock.New(1.0))
	defer d.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.Read(i, 1) // tracks 0..3 → distinct spindles
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 65*time.Millisecond {
		t.Fatalf("4 spindles served 4 reads in %v; expected ~20ms", elapsed)
	}
}

func TestSortTracksHelper(t *testing.T) {
	got := SortTracks(0, []int{50, 10, 40})
	want := []int{10, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	got = SortTracks(45, []int{50, 10, 40})
	// nearest to 45 is 40, then 50, then 10
	want = []int{40, 50, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("from 45: got %v, want %v", got, want)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	d := New(DefaultParams(), zeroClock())
	d.Close()
	d.Close()
	d.Read(1, 1) // read after close returns immediately
}

func TestWriteAccountsSeparately(t *testing.T) {
	d := New(DefaultParams(), zeroClock())
	defer d.Close()
	d.Write(10, 3)
	d.Write(11, 1)
	d.Read(12, 2)
	st := d.Stats()
	if st.Writes != 2 || st.PagesWritten != 4 {
		t.Fatalf("write stats: %+v", st)
	}
	if st.PagesRead != 2 {
		t.Fatalf("read stats polluted by writes: %+v", st)
	}
	if st.Requests != 3 {
		t.Fatalf("writes must ride the same elevator: %+v", st)
	}
}
