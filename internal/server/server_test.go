package server

import (
	"repro/internal/query"
	"sync"
	"testing"

	"repro/internal/storage"
)

func loaded(t *testing.T) *Server {
	t.Helper()
	s := New(SYS1(), 0) // no sleeping: logic only
	tbl := s.Catalog().CreateTable("kv", storage.NewSchema(
		storage.Column{Name: "k", Type: storage.TInt},
		storage.Column{Name: "v", Type: storage.TInt},
	))
	for i := int64(0); i < 500; i++ {
		if _, err := tbl.Insert([]any{i, i * 2}); err != nil {
			t.Fatal(err)
		}
	}
	s.FinishLoad()
	if err := s.AddIndex("kv", "k", true); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExecSelect(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	v, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{int64(21)})).Pair()
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(42) {
		t.Fatalf("got %v", v)
	}
	if st := s.Stats(); st.Queries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestExecInsertAndStats(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	if _, err := s.Exec(query.Req("ins", "insert into kv values (?, ?)", []any{int64(9000), int64(1)})).Pair(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Inserts != 1 {
		t.Fatalf("stats: %+v", st)
	}
	v, err := s.Exec(query.Req("q", "select count(v) from kv where k = ?", []any{int64(9000)})).Pair()
	if err != nil || v != int64(1) {
		t.Fatalf("%v %v", v, err)
	}
}

func TestWarmVsColdHits(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	s.Warm()
	for i := int64(0); i < 50; i++ {
		if _, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{i * 7 % 500})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.BufferMiss != 0 {
		t.Fatalf("warm run missed %d pages", st.BufferMiss)
	}
	s.ColdStart()
	if _, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{int64(3)})).Pair(); err != nil {
		t.Fatal(err)
	}
	if _, m := s.Pool().Stats(); m == 0 {
		t.Fatal("cold run should miss")
	}
}

func TestPreparedStatementCache(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{int64(i)})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.prep.Len(); n != 1 {
		t.Fatalf("prepared cache has %d entries, want 1", n)
	}
}

func TestConcurrentExec(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	s.Warm()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64((g*50 + i) % 500)
				v, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{k})).Pair()
				if err != nil {
					errs <- err
					return
				}
				if v != k*2 {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Queries != 400 {
		t.Fatalf("queries = %d", st.Queries)
	}
}

func TestBadSQLError(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	if _, err := s.Exec(query.Req("bad", "frobnicate the database", nil)).Pair(); err == nil {
		t.Fatal("want parse error")
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{SYS1(), Postgres(), WebService()} {
		if p.Cores < 1 || p.RTT <= 0 || p.BufferPages <= 0 {
			t.Errorf("profile %s has degenerate parameters: %+v", p.Name, p)
		}
	}
	if WebService().RTT <= SYS1().RTT {
		t.Error("the web-service profile must have wide-area latency")
	}
}

func TestExecBatchMatchesExec(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	argSets := [][]any{{int64(1)}, {int64(21)}, {int64(499)}, {int64(9999)}}
	vals, errs := s.ExecBatch(query.BatchReq("q", "select sum(v) from kv where k = ?", argSets)).Pair()
	if len(vals) != len(argSets) || len(errs) != len(argSets) {
		t.Fatalf("arity: %d vals, %d errs", len(vals), len(errs))
	}
	for i, args := range argSets {
		want, wantErr := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", args)).Pair()
		if (errs[i] == nil) != (wantErr == nil) || vals[i] != want {
			t.Fatalf("binding %d: (%v, %v), want (%v, %v)", i, vals[i], errs[i], want, wantErr)
		}
	}
}

func TestExecBatchOneRoundTripAndPlanning(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	if _, errs := s.ExecBatch(query.BatchReq("q", "select sum(v) from kv where k = ?", [][]any{{int64(1)}, {int64(2)}, {int64(3)}})).Pair(); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("batch errors: %v", errs)
	}
	st := s.Stats()
	if st.NetRequests != 1 {
		t.Fatalf("batch paid %d round trips, want 1", st.NetRequests)
	}
	if st.Batches != 1 {
		t.Fatalf("batches = %d, want 1", st.Batches)
	}
	if st.Queries != 3 {
		t.Fatalf("logical queries = %d, want 3", st.Queries)
	}
	// A per-query run of the same statements pays three round trips.
	for i := int64(1); i <= 3; i++ {
		if _, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{i})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.NetRequests != 4 {
		t.Fatalf("net requests = %d, want 4", st.NetRequests)
	}
}

func TestExecBatchParseError(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	_, errs := s.ExecBatch(query.BatchReq("bad", "frobnicate the database", [][]any{nil, nil})).Pair()
	if len(errs) != 2 || errs[0] == nil || errs[1] == nil {
		t.Fatalf("want parse error per binding: %v", errs)
	}
}

// TestExecBatchSharedBufferAccesses asserts the cold-cache saving the
// batched experiment relies on: duplicate keys in one batch fault their
// pages once.
func TestExecBatchSharedBufferAccesses(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	s.ColdStart()
	if _, err := s.Exec(query.Req("q", "select sum(v) from kv where k = ?", []any{int64(7)})).Pair(); err != nil {
		t.Fatal(err)
	}
	_, missesSingle := s.Pool().Stats()

	s.ColdStart()
	_, errs := s.ExecBatch(query.BatchReq("q", "select sum(v) from kv where k = ?", [][]any{{int64(7)}, {int64(7)}, {int64(7)}})).Pair()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := s.Pool().Stats(); misses != missesSingle {
		t.Fatalf("batch of duplicates missed %d pages, single query missed %d", misses, missesSingle)
	}
}

// TestRoundTripsCountedOnErrorPaths: the RTT is paid before the statement
// runs, so failing statements must still count their round trips — both
// submission modes, symmetrically.
func TestRoundTripsCountedOnErrorPaths(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	if _, err := s.Exec(query.Req("bad", "select sum(v) from nosuch where k = ?", []any{int64(1)})).Pair(); err == nil {
		t.Fatal("want error")
	}
	if st := s.Stats(); st.NetRequests != 1 {
		t.Fatalf("failed Exec counted %d round trips, want 1", st.NetRequests)
	}
	_, errs := s.ExecBatch(query.BatchReq("bad", "frobnicate", [][]any{nil, nil})).Pair()
	if errs[0] == nil {
		t.Fatal("want parse error")
	}
	if st := s.Stats(); st.NetRequests != 2 || st.Batches != 1 {
		t.Fatalf("failed ExecBatch accounting: %+v", st)
	}
}
