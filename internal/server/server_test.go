package server

import (
	"sync"
	"testing"

	"repro/internal/storage"
)

func loaded(t *testing.T) *Server {
	t.Helper()
	s := New(SYS1(), 0) // no sleeping: logic only
	tbl := s.Catalog().CreateTable("kv", storage.NewSchema(
		storage.Column{Name: "k", Type: storage.TInt},
		storage.Column{Name: "v", Type: storage.TInt},
	))
	for i := int64(0); i < 500; i++ {
		if _, err := tbl.Insert([]any{i, i * 2}); err != nil {
			t.Fatal(err)
		}
	}
	s.FinishLoad()
	if err := s.AddIndex("kv", "k", true); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExecSelect(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	v, err := s.Exec("q", "select sum(v) from kv where k = ?", []any{int64(21)})
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(42) {
		t.Fatalf("got %v", v)
	}
	if st := s.Stats(); st.Queries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestExecInsertAndStats(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	if _, err := s.Exec("ins", "insert into kv values (?, ?)", []any{int64(9000), int64(1)}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Inserts != 1 {
		t.Fatalf("stats: %+v", st)
	}
	v, err := s.Exec("q", "select count(v) from kv where k = ?", []any{int64(9000)})
	if err != nil || v != int64(1) {
		t.Fatalf("%v %v", v, err)
	}
}

func TestWarmVsColdHits(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	s.Warm()
	for i := int64(0); i < 50; i++ {
		if _, err := s.Exec("q", "select sum(v) from kv where k = ?", []any{i * 7 % 500}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.BufferMiss != 0 {
		t.Fatalf("warm run missed %d pages", st.BufferMiss)
	}
	s.ColdStart()
	if _, err := s.Exec("q", "select sum(v) from kv where k = ?", []any{int64(3)}); err != nil {
		t.Fatal(err)
	}
	if _, m := s.Pool().Stats(); m == 0 {
		t.Fatal("cold run should miss")
	}
}

func TestPreparedStatementCache(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Exec("q", "select sum(v) from kv where k = ?", []any{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.prepMu.Lock()
	n := len(s.prepared)
	s.prepMu.Unlock()
	if n != 1 {
		t.Fatalf("prepared cache has %d entries, want 1", n)
	}
}

func TestConcurrentExec(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	s.Warm()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64((g*50 + i) % 500)
				v, err := s.Exec("q", "select sum(v) from kv where k = ?", []any{k})
				if err != nil {
					errs <- err
					return
				}
				if v != k*2 {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Queries != 400 {
		t.Fatalf("queries = %d", st.Queries)
	}
}

func TestBadSQLError(t *testing.T) {
	s := loaded(t)
	defer s.Close()
	if _, err := s.Exec("bad", "frobnicate the database", nil); err == nil {
		t.Fatal("want parse error")
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{SYS1(), Postgres(), WebService()} {
		if p.Cores < 1 || p.RTT <= 0 || p.BufferPages <= 0 {
			t.Errorf("profile %s has degenerate parameters: %+v", p.Name, p)
		}
	}
	if WebService().RTT <= SYS1().RTT {
		t.Error("the web-service profile must have wide-area latency")
	}
}
