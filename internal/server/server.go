// Package server simulates the database server of the paper's experiments:
// K worker cores, an LRU buffer pool over a seek-modelled disk, prepared
// mini-SQL statements, and a client-visible network round-trip per request.
// Two profiles mirror the paper's systems (SYS1, a commercial dual-core
// server, and PostgreSQL on a two-processor machine), plus a high-latency
// web-service profile for Experiment 5.
//
// The mechanisms — not constants — produce the paper's phenomena:
//
//   - network round-trip latency is paid per request and hidden by
//     concurrent submission (client worker pool),
//   - warm vs cold cache emerges from the buffer pool's residency,
//   - concurrent cold-cache queries queue at the disk, whose elevator
//     scheduling cuts per-request seek time as depth grows,
//   - multiple cores let CPU work proceed in parallel.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/simclock"
	"repro/internal/sqlmini"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrInjected is the transport-level fault FailNext injects: the request
// reaches the server (the round trip is paid) but execution never starts.
// It is deliberately free of any replica/shard vocabulary so a failing
// single server and a fully failed replica group surface the identical
// error text.
var ErrInjected = errors.New("server: injected fault")

// IsFault reports whether err is an injected transport fault (as opposed to
// a statement error, which every copy of the data reproduces identically).
// Failover layers (internal/replica) key their health tracking on this.
func IsFault(err error) bool { return errors.Is(err, ErrInjected) }

// Profile is a server configuration.
type Profile struct {
	Name        string
	Cores       int
	BufferPages int
	RTT         time.Duration // client-observed network round trip
	CPUFixed    time.Duration // per-statement planning/dispatch cost
	CPUPerRow   time.Duration // per examined row
	Disk        disk.Params
}

// SYS1 models the paper's commercial system: a dual-core machine with a
// large buffer pool and fast dispatch.
func SYS1() Profile {
	return Profile{
		Name:        "SYS1",
		Cores:       2,
		BufferPages: 1 << 17,
		RTT:         500 * time.Microsecond,
		CPUFixed:    8 * time.Microsecond,
		CPUPerRow:   40 * time.Nanosecond,
		Disk:        disk.DefaultParams(),
	}
}

// Postgres models the paper's PostgreSQL deployment: two processors,
// somewhat higher per-statement overhead.
func Postgres() Profile {
	p := Profile{
		Name:        "PostgreSQL",
		Cores:       2,
		BufferPages: 1 << 17,
		RTT:         500 * time.Microsecond,
		CPUFixed:    14 * time.Microsecond,
		CPUPerRow:   60 * time.Nanosecond,
		Disk:        disk.DefaultParams(),
	}
	p.Disk.TransferPerPage = 70 * time.Microsecond
	return p
}

// WebService models Experiment 5's remote JSON-over-HTTP service: wide-area
// round trips dominate; the backing store is small and warm.
func WebService() Profile {
	return Profile{
		Name:        "WebService",
		Cores:       8,
		BufferPages: 1 << 17,
		RTT:         25 * time.Millisecond,
		CPUFixed:    500 * time.Microsecond,
		CPUPerRow:   100 * time.Nanosecond,
		Disk:        disk.DefaultParams(),
	}
}

// Server is one simulated database instance.
type Server struct {
	Profile Profile
	Clock   *simclock.Clock

	cat   *storage.Catalog
	pool  *buffer.Pool
	disk  *disk.Disk
	cores chan struct{}

	prep sqlmini.PrepCache

	// Activity counters are atomics: every Exec on every worker bumps them,
	// and a shared mutex here was the last global serialization point on the
	// warm hot path.
	queries atomic.Int64
	inserts atomic.Int64
	rows    atomic.Int64
	netReqs atomic.Int64 // client-visible round trips (one per Exec or ExecBatch)
	batches atomic.Int64 // ExecBatch calls

	// failNext counts armed fault injections: while positive, each arriving
	// Exec/ExecBatch call consumes one and fails with ErrInjected.
	failNext atomic.Int64

	// extents tracks (extent -> page count) for warming.
	extMu   sync.Mutex
	extents map[int]int

	// wlog, when set by EnableWAL, makes every committed insert durable
	// before Exec/ExecBatch acknowledges it (per the log's mode).
	wlog atomic.Pointer[wal.Log]

	// metrics, when set, feeds the WAL's fsync histograms (and any future
	// server-side histograms). Counters stay as the atomics above; the
	// registry reaches them through RegisterMetrics' pull source.
	metrics atomic.Pointer[obs.Registry]
}

// New starts a server with the given profile; scale is the wall-clock
// scaling factor for all simulated latencies (see simclock).
func New(p Profile, scale float64) *Server {
	clock := simclock.New(scale)
	d := disk.New(p.Disk, clock)
	s := &Server{
		Profile: p,
		Clock:   clock,
		cat:     storage.NewCatalog(),
		pool:    buffer.NewPool(p.BufferPages, d),
		disk:    d,
		cores:   make(chan struct{}, max(1, p.Cores)),
		extents: make(map[int]int),
	}
	return s
}

// Close stops the WAL flusher (if any) and the disk goroutine.
func (s *Server) Close() {
	if l := s.wlog.Swap(nil); l != nil {
		l.Close()
	}
	s.disk.Close()
}

// walPageBytes is the modelled page size of log writes: one group commit of
// n encoded bytes is one batched disk write of ceil(n/walPageBytes) pages.
const walPageBytes = 8 << 10

// EnableWAL attaches a write-ahead log: from now on every committed insert
// is appended, and Exec/ExecBatch acknowledge only once the record is
// durable under mode (Group amortizes the fsync across concurrent commits;
// Off acknowledges immediately and risks losing the unsynced tail). A nil
// store defaults to an in-memory one.
func (s *Server) EnableWAL(mode wal.Mode, store wal.Store) *wal.Log {
	l := wal.New(wal.Options{Mode: mode, Store: store, Syncer: walSyncer{s}})
	if reg := s.metrics.Load(); reg != nil {
		l.SetMetrics(reg)
	}
	s.wlog.Store(l)
	return l
}

// SetMetrics points the server (and its WAL, present or future) at an obs
// registry for histogram recording.
func (s *Server) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.metrics.Store(reg)
	if l := s.wlog.Load(); l != nil {
		l.SetMetrics(reg)
	}
}

// RegisterMetrics registers the server's stats (and its WAL's, if any) as
// pull sources under prefix, and points histogram recording at reg.
func (s *Server) RegisterMetrics(reg *obs.Registry, prefix string) {
	s.SetMetrics(reg)
	reg.RegisterSource(prefix+"server", func() map[string]float64 {
		return s.Stats().Metrics()
	})
	reg.RegisterSource(prefix+"wal", func() map[string]float64 {
		if l := s.wlog.Load(); l != nil {
			return l.Stats().Metrics()
		}
		return nil
	})
}

// WAL returns the attached log, or nil.
func (s *Server) WAL() *wal.Log { return s.wlog.Load() }

// SyncWAL charges one fsync of n encoded bytes: a batched write at the
// disk's dedicated log track. Sequential log writes always land on the same
// track, so the seek component stays near the minimum and the cost scales
// with the batch size — which is why group commit amortizes.
func (s *Server) SyncWAL(bytes int) {
	pages := (bytes + walPageBytes - 1) / walPageBytes
	if pages < 1 {
		pages = 1
	}
	s.disk.Write(s.Profile.Disk.Tracks-1, pages)
}

// walSyncer adapts a server as a wal.Syncer (replica groups reuse SyncWAL
// directly through their own forwarding syncer).
type walSyncer struct{ s *Server }

func (w walSyncer) Sync(bytes int) { w.s.SyncWAL(bytes) }

// Catalog exposes the table catalog for data loading.
func (s *Server) Catalog() *storage.Catalog { return s.cat }

// Pool exposes the buffer pool (tests).
func (s *Server) Pool() *buffer.Pool { return s.pool }

// Disk exposes the disk (tests, stats).
func (s *Server) Disk() *disk.Disk { return s.disk }

// RegisterExtent lays an extent out on disk and remembers its size for
// warming. Extents are spread across the disk surface so different tables'
// pages interleave, producing realistic seek distances.
func (s *Server) RegisterExtent(extent, pages int) {
	startTrack := (extent * 1543) % s.Profile.Disk.Tracks
	s.pool.MapExtent(extent, startTrack)
	s.extMu.Lock()
	s.extents[extent] = pages
	s.extMu.Unlock()
}

// FinishLoad registers every table's data extent after bulk loading.
// Index extents are registered by LoadIndex.
func (s *Server) FinishLoad() {
	for _, t := range s.cat.Tables() {
		s.RegisterExtent(t.Extent, t.NumPages())
	}
}

// AddIndex creates a hash index on a table column and registers its extent.
func (s *Server) AddIndex(table, column string, unique bool) error {
	t := s.cat.Table(table)
	if t == nil {
		return fmt.Errorf("server: no table %q", table)
	}
	pages := max(1, t.NumPages()/8)
	ext := s.cat.NextExtent()
	if err := t.AddIndex(column, unique, ext, pages); err != nil {
		return err
	}
	s.RegisterExtent(ext, pages)
	return nil
}

// FailNext arms fault injection: the next n Exec/ExecBatch calls
// fail with ErrInjected after paying their round trip, modelling a server
// that crashes mid-service (tests, failover drills). A batch call counts as
// one fault and fails every binding.
func (s *Server) FailNext(n int) { s.failNext.Store(int64(n)) }

// takeFault consumes one armed fault, if any.
func (s *Server) takeFault() bool {
	for {
		n := s.failNext.Load()
		if n <= 0 {
			return false
		}
		if s.failNext.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// CreateTable creates an empty table with the given schema and page fanout —
// the bulk-load path used by shard routers to partition a reference load
// (no simulated cost; see shard.Backend).
func (s *Server) CreateTable(name string, schema *storage.Schema, rowsPerPage int) error {
	t := s.cat.CreateTable(name, schema)
	t.SetRowsPerPage(rowsPerPage)
	return nil
}

// InsertRow appends one row directly through storage (bulk-load path, no
// simulated cost; see shard.Backend).
func (s *Server) InsertRow(table string, row []any) error {
	t := s.cat.Table(table)
	if t == nil {
		return fmt.Errorf("server: no table %q", table)
	}
	_, err := t.Insert(row)
	return err
}

// NumTableRows returns the table's current row count, or 0 when the table
// does not exist — the migration copier's cutoff read (no simulated cost;
// see shard.Backend).
func (s *Server) NumTableRows(table string) int {
	t := s.cat.Table(table)
	if t == nil {
		return 0
	}
	return t.NumRows()
}

// TableRow materializes one row by local row id — the migration copier's
// row read (no simulated cost; see shard.Backend). Storage is append-only,
// so rows below a cutoff taken earlier are stable under concurrent inserts.
func (s *Server) TableRow(table string, rid int) []any {
	t := s.cat.Table(table)
	if t == nil {
		return nil
	}
	return t.Row(rid)
}

// IndexKeyCount reports how many rows of table hold value v in the indexed
// column col; ok is false when the table or index does not exist (no
// statistics). The scatter planner's pruning fast path reads this without a
// simulated round trip, modelling a client-side statistics cache.
func (s *Server) IndexKeyCount(table, col string, v any) (int, bool) {
	t := s.cat.Table(table)
	if t == nil || t.Index(col) == nil {
		return 0, false
	}
	return t.IndexKeyCount(col, v)
}

// SetScale updates the wall-clock scale factor for simulated latencies.
func (s *Server) SetScale(scale float64) { s.Clock.SetScale(scale) }

// Warm preloads every registered extent into the buffer pool (warm-cache
// runs). Cold runs call ColdStart instead.
func (s *Server) Warm() {
	s.extMu.Lock()
	defer s.extMu.Unlock()
	for ext, pages := range s.extents {
		s.pool.Preload(ext, 0, pages)
	}
}

// ColdStart empties the buffer pool.
func (s *Server) ColdStart() { s.pool.Reset() }

// Exec is the blocking query path: one network round trip, then execution.
// It implements query.Executor and is safe for concurrent use — the
// concurrency benefits of asynchronous submission arise precisely because
// multiple Execs can be in flight. The request's optional context rides the
// struct: its Span grows a "server.exec" child (with io / cpu / wal.commit
// sub-spans; a nil span costs a few nil checks and nothing else), its
// Deadline is checked on arrival — an expired request is rejected after the
// round trip, before execution — and again at the WAL commit wait, where an
// expiring deadline abandons the acknowledgement with
// query.ErrDeadlineExceeded rather than blocking past it.
//
// The result carries the execution trace (sqlmini.ExecInfo, including the
// matched row ids); the shard router's scatter-gather merge consumes it to
// restore the global row order.
func (s *Server) Exec(req query.Request) query.Result {
	ex := req.Span.Child("server.exec")
	defer ex.End()
	s.Clock.Sleep(s.Profile.RTT)
	ex.Charge(s.Profile.RTT)
	s.netReqs.Add(1) // the round trip is paid whether or not the statement succeeds
	if req.Deadline.Expired() {
		return query.Fail(query.ErrDeadlineExceeded)
	}
	if s.takeFault() {
		return query.Fail(ErrInjected)
	}
	st, err := s.prep.Prepare(req.SQL)
	if err != nil {
		return query.Fail(err)
	}
	// IO phase: page faults ride the disk queue without holding a core.
	io := ex.Child("server.io")
	res, info, err := sqlmini.Execute(st, s.cat, s.pool, req.Args)
	io.End()
	if err != nil {
		return query.Result{Err: err, Info: info}
	}
	// CPU phase: hold one of the K cores.
	cpu := s.Profile.CPUFixed + time.Duration(info.RowsExamined)*s.Profile.CPUPerRow
	cpuSp := ex.Child("server.cpu")
	s.cores <- struct{}{}
	s.Clock.Sleep(cpu)
	<-s.cores
	cpuSp.Charge(cpu)
	cpuSp.End()

	// Durability: a committed insert is appended to the WAL and the ack
	// waits out its fsync (amortized across concurrent commits in Group
	// mode) before the client sees success.
	if st.Insert {
		if l := s.wlog.Load(); l != nil {
			if err := l.CommitWait(ex, l.Append(req.Name, req.SQL, [][]any{req.Args}), req.Deadline); err != nil {
				return query.Result{Err: err, Info: info}
			}
		}
	}

	s.queries.Add(1)
	if st.Insert {
		s.inserts.Add(1)
	}
	s.rows.Add(int64(info.RowsExamined))
	return query.Result{Value: res, Info: info}
}

// ExecBatch is the set-oriented query path (batched submission): one network
// round trip and one planning/dispatch charge cover the whole binding set,
// and execution shares page accesses across bindings (sqlmini.ExecuteBatch).
// It returns one result and one error per binding, in binding order, each
// identical to what Exec would have returned for that binding. For INSERT
// batches the result's Info.InsertRids records where every binding's row
// landed, which the shard router uses to keep scatter-gather merges in exact
// single-server insertion order. One "server.execbatch" child span covers
// the whole binding set, mirroring how one round trip and one planning
// charge do; the deadline semantics match Exec, applied batch-wide.
func (s *Server) ExecBatch(req query.BatchRequest) query.BatchResult {
	argSets := req.ArgSets
	ex := req.Span.Child("server.execbatch")
	defer ex.End()
	s.Clock.Sleep(s.Profile.RTT)
	ex.Charge(s.Profile.RTT)
	s.netReqs.Add(1) // one round trip per batch, paid whether or not it succeeds
	s.batches.Add(1)
	if req.Deadline.Expired() {
		return query.FailAll(len(argSets), query.ErrDeadlineExceeded)
	}
	if s.takeFault() {
		return query.FailAll(len(argSets), ErrInjected)
	}
	st, err := s.prep.Prepare(req.SQL)
	if err != nil {
		return query.FailAll(len(argSets), err)
	}
	// IO phase: page faults ride the disk queue without holding a core; the
	// batch dedupes page accesses across bindings before touching the pool.
	io := ex.Child("server.io")
	results, errs, info := sqlmini.ExecuteBatch(st, s.cat, s.pool, argSets)
	io.End()
	// CPU phase: one fixed planning charge for the whole batch, then the
	// per-row work, holding one of the K cores. A batch whose bindings all
	// failed validation charges nothing, like N failing per-query calls.
	anyLive := false
	for _, e := range errs {
		if e == nil {
			anyLive = true
			break
		}
	}
	if anyLive {
		cpu := s.Profile.CPUFixed + time.Duration(info.RowsExamined)*s.Profile.CPUPerRow
		cpuSp := ex.Child("server.cpu")
		s.cores <- struct{}{}
		s.Clock.Sleep(cpu)
		<-s.cores
		cpuSp.Charge(cpu)
		cpuSp.End()
	}

	// Durability: the batch's committed inserts become one WAL record (the
	// whole batch shares one commit wait, like it shared one round trip). A
	// deadline expiring during the wait abandons the acknowledgement for
	// every committed binding — never a half-acked batch.
	if st.Insert {
		if l := s.wlog.Load(); l != nil {
			var okSets [][]any
			for i, e := range errs {
				if e == nil {
					okSets = append(okSets, argSets[i])
				}
			}
			if len(okSets) > 0 {
				if werr := l.CommitWait(ex, l.Append(req.Name, req.SQL, okSets), req.Deadline); werr != nil {
					for i, e := range errs {
						if e == nil {
							results[i], errs[i] = nil, werr
						}
					}
					return query.BatchResult{Values: results, Errs: errs, Info: info}
				}
			}
		}
	}

	var ok int64
	for i := range argSets {
		if errs[i] == nil {
			ok++
		}
	}
	s.queries.Add(ok)
	if st.Insert {
		s.inserts.Add(ok)
	}
	s.rows.Add(int64(info.RowsExamined))
	return query.BatchResult{Values: results, Errs: errs, Info: info}
}

// Stats summarizes server activity. NetRequests counts client-visible round
// trips (each paying Profile.RTT); with batching it falls below Queries,
// which keeps counting logical statements.
type Stats struct {
	Queries     int64
	Inserts     int64
	RowsRead    int64
	NetRequests int64
	Batches     int64
	BufferHits  int64
	BufferMiss  int64
	Disk        disk.Stats
	VirtualTime time.Duration
}

// Metrics flattens the stats for an obs registry source.
func (s Stats) Metrics() map[string]float64 {
	return map[string]float64{
		"queries":         float64(s.Queries),
		"inserts":         float64(s.Inserts),
		"rows.read":       float64(s.RowsRead),
		"net.requests":    float64(s.NetRequests),
		"batches":         float64(s.Batches),
		"buffer.hits":     float64(s.BufferHits),
		"buffer.miss":     float64(s.BufferMiss),
		"disk.requests":   float64(s.Disk.Requests),
		"disk.pages.read": float64(s.Disk.PagesRead),
		"disk.writes":     float64(s.Disk.Writes),
		"disk.avg.queue":  s.Disk.AvgQueue,
		"virtual.seconds": s.VirtualTime.Seconds(),
	}
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	h, m := s.pool.Stats()
	return Stats{
		Queries:     s.queries.Load(),
		Inserts:     s.inserts.Load(),
		RowsRead:    s.rows.Load(),
		NetRequests: s.netReqs.Load(),
		Batches:     s.batches.Load(),
		BufferHits:  h,
		BufferMiss:  m,
		Disk:        s.disk.Stats(),
		VirtualTime: s.Clock.VirtualSpent(),
	}
}
