// Package apps contains the five evaluation applications of the paper's §VI,
// written in the mini-language, together with their schemas, synthetic data
// generators (sized-down versions of the paper's datasets, same
// distributions), and the Table I applicability corpus.
//
// Substitutions relative to the paper (see DESIGN.md §2): RUBiS and RUBBoS
// are represented by the specific query-in-loop kernels the paper measures;
// the category-traversal and value-range-expansion programs are from [3] as
// in the paper; the Freebase web service of Experiment 5 is a high-RTT
// profile of the same simulated server.
package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/server"
)

// App bundles one evaluation application.
type App struct {
	// Name identifies the app (rubis, rubbos, category, forms, webservice).
	Name string
	// Source is the mini-language kernel the paper measures.
	Source string
	// Setup creates and loads the tables on a fresh server.
	Setup func(s *server.Server, rng *rand.Rand) error
	// Sigs declares app-specific functions for dataflow analysis.
	Sigs []*ir.FuncSig
	// Bind registers app-specific builtins on an interpreter.
	Bind func(in *interp.Interp, rng *rand.Rand)
	// Args builds the kernel's arguments for a run of n iterations.
	Args func(n int, rng *rand.Rand) []interp.Value
	// MutatesData marks apps whose run changes table contents (forms), so
	// harnesses reload between runs.
	MutatesData bool
	// ShardKeys declares each table's shard key column (table -> column) for
	// sharded execution (internal/shard). Tables not listed are replicated.
	ShardKeys map[string]string
}

// Proc parses the app's kernel.
func (a *App) Proc() *ir.Proc { return minilang.MustParse(a.Source) }

// Registry returns a function registry extended with the app's signatures,
// for use by both the transformation and the interpreter.
func (a *App) Registry() *ir.Registry {
	reg := ir.NewRegistry()
	for _, s := range a.Sigs {
		reg.Register(s)
	}
	return reg
}

// ByName returns a registered app.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown app %q", name)
}

// All lists the five applications.
func All() []*App {
	return []*App{RUBiS(), RUBBoS(), Category(), Forms(), WebServiceApp()}
}

// Dataset scale. The paper uses 600k comments / 1M users / 10M items; we
// load the same shapes at reduced cardinality (documented substitution) —
// the latency model, not the byte count, carries the performance behaviour.
const (
	numUsers      = 400_000
	numComments   = 60_000
	numStories    = 40_000
	numCategories = 1_000
	numItems      = 400_000
	numDirectors  = 2_000
	numMovies     = 40_000
)

// SeededRand returns the deterministic generator used across the harness.
func SeededRand() *rand.Rand { return rand.New(rand.NewSource(20110411)) } // ICDE 2011
