package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
)

// Forms is Experiment 4 (from [3], as in the paper): value range expansion.
// Form-issue records arrive as (agent-id, start-form-number,
// end-form-number); the program expands each range and inserts one
// forms-master row per form number. The inner INSERT loop needs the
// reordering algorithm (the counter update follows the insert) and both
// loop levels are split, so all inserts across all ranges are submitted
// before any completion is awaited.
func Forms() *App {
	return &App{
		Name:        "forms",
		MutatesData: true,
		ShardKeys:   map[string]string{"formsmaster": "agent"},
		Source: `
proc expandForms(ranges) {
  query ins = "insert into formsmaster values (?, ?)";
  n = 0;
  foreach r in ranges {
    agent = field(r, "agent");
    lo = field(r, "lo");
    hi = field(r, "hi");
    i = lo;
    while (i <= hi) {
      execUpdate(ins, agent, i);
      i = i + 1;
      n = n + 1;
    }
  }
  return n;
}`,
		Setup: func(s *server.Server, rng *rand.Rand) error {
			s.Catalog().CreateTable("formsmaster", storage.NewSchema(
				storage.Column{Name: "agent", Type: storage.TInt},
				storage.Column{Name: "formno", Type: storage.TInt},
			))
			s.FinishLoad()
			return nil
		},
		// Args builds ranges whose total expansion is exactly n inserts,
		// in chunks of 50 forms per issue record (the paper's iteration
		// count is the number of INSERT operations).
		Args: func(n int, rng *rand.Rand) []interp.Value {
			const chunk = 50
			var ranges interp.Rows
			issued := 0
			next := int64(1)
			for issued < n {
				c := chunk
				if n-issued < c {
					c = n - issued
				}
				ranges = append(ranges, interp.Row{
					"agent": int64(rng.Intn(500)),
					"lo":    next,
					"hi":    next + int64(c) - 1,
				})
				next += int64(c)
				issued += c
			}
			return []interp.Value{ranges}
		},
	}
}
