package apps

import (
	"repro/internal/ir"
	"repro/internal/minilang"
)

// CorpusApp is one benchmark application's inventory of query-in-loop sites
// for the Table I applicability analysis. Each procedure contains exactly
// one loop with query executions; the analysis runs the real transformation
// machinery over each and counts exploited sites.
type CorpusApp struct {
	Name  string
	Procs []*ir.Proc
}

// AuctionCorpus models the RUBiS auction system's nine query-in-loop sites
// (§VI, Table I: 9 opportunities, 9 transformed). The loop shapes cover the
// patterns found in the real application: plain per-item lookups, trailing
// counter updates that need reordering, conditional queries needing Rule B,
// chained double queries, nested loops, stack traversals and updates.
func AuctionCorpus() *CorpusApp {
	srcs := []string{
		// 1. Item detail lookups over a result list (plain fission).
		`proc auctionItemDetails(items) {
  query q = "select name, price from item where iid = ?";
  total = 0;
  foreach it in items {
    r = execQuery(q, it);
    total = total + field(r, "price");
  }
  return total;
}`,
		// 2. Comment authors with a running index (reordering needed).
		`proc auctionCommentAuthors(n) {
  query q = "select rating from users where uid = ?";
  i = 0;
  sum = 0;
  while (i < n) {
    r = execQuery(q, i);
    sum = sum + r;
    i = i + 1;
  }
  return sum;
}`,
		// 3. Bid history: conditional fetch for high bids (Rule B + A).
		`proc auctionBidHistory(bids) {
  query q = "select bidder from bids where bid = ?";
  hot = 0;
  foreach b in bids {
    big = b % 3 == 0;
    if (big) {
      w = execQuery(q, b);
      hot = hot + w;
    }
  }
  return hot;
}`,
		// 4. Seller rating page: chained user + region queries.
		`proc auctionSellerPage(sellers) {
  query qu = "select region, rating from users where uid = ?";
  query qr = "select name from regions where rid = ?";
  out = 0;
  foreach s in sellers {
    u = execQuery(qu, s);
    rg = execQuery(qr, field(u, "region"));
    out = out + size(field(rg, "name"));
  }
  return out;
}`,
		// 5. Items per category for the browse page (nested loops).
		`proc auctionBrowseCategories(cats) {
  query q = "select count(iid) from item where category_id = ?";
  total = 0;
  foreach c in cats {
    sub = 0;
    while (sub < 3) {
      n = execQuery(q, c * 10 + sub);
      total = total + n;
      sub = sub + 1;
    }
  }
  return total;
}`,
		// 6. About-me page: queries driven by a work stack (mutation +
		// reorder).
		`proc auctionAboutMe(stack) {
  query q = "select count(bid) from bids where bidder = ?";
  acc = 0;
  while (!empty(stack)) {
    u = pop(stack);
    n = execQuery(q, u);
    acc = acc + n;
  }
  return acc;
}`,
		// 7. Buy-now confirmations: insert per purchase (update loop).
		`proc auctionBuyNow(purchases) {
  query ins = "insert into buynow values (?, ?)";
  k = 0;
  foreach p in purchases {
    execUpdate(ins, p, k);
    k = k + 1;
  }
  return k;
}`,
		// 8. Watchlist refresh: guarded query plus trailing state update.
		`proc auctionWatchlist(ids) {
  query q = "select price from item where iid = ?";
  last = 0;
  moved = 0;
  foreach w in ids {
    active = w % 2 == 0;
    active ? p = execQuery(q, w);
    active ? moved = moved + p;
    last = w;
  }
  return moved, last;
}`,
		// 9. Feedback summary: two-phase accumulation with reorder.
		`proc auctionFeedback(users) {
  query q = "select count(fid) from feedback where uid = ?";
  pos = 0;
  prev = 0;
  foreach u in users {
    c = execQuery(q, u);
    pos = pos + c + prev;
    prev = c % 5;
  }
  return pos;
}`,
	}
	return &CorpusApp{Name: "Auction", Procs: parseAll(srcs)}
}

// BulletinCorpus models the RUBBoS bulletin board's eight sites (§VI,
// Table I: 8 opportunities, 6 transformed). Two loops obtain their query
// results through recursive method invocations (modelled by the `recurse`
// barrier builtin), which prevents transformation, as in the paper.
func BulletinCorpus() *CorpusApp {
	srcs := []string{
		// 1. Top stories with poster details.
		`proc bbTopStories(ids) {
  query q = "select author from stories where sid = ?";
  n = 0;
  foreach s in ids {
    a = execQuery(q, s);
    n = n + a;
  }
  return n;
}`,
		// 2. Story comments (counter loop; reorder).
		`proc bbStoryComments(n) {
  query q = "select count(cid) from comments where cid = ?";
  i = 0;
  total = 0;
  while (i < n) {
    c = execQuery(q, i);
    total = total + c;
    i = i + 1;
  }
  return total;
}`,
		// 3. Moderation queue: conditional review fetch.
		`proc bbModeration(items) {
  query q = "select rating from users where uid = ?";
  flagged = 0;
  foreach m in items {
    bad = m % 7 == 0;
    if (bad) {
      r = execQuery(q, m);
      flagged = flagged + r;
    }
  }
  return flagged;
}`,
		// 4. User page: comment counts per month.
		`proc bbUserPage(months) {
  query q = "select count(cid) from comments where cid = ?";
  acc = 0;
  foreach mo in months {
    c = execQuery(q, mo);
    acc = acc + c;
  }
  return acc;
}`,
		// 5. Comment tree rendering: recursive descent (NOT transformable —
		// the query executes inside the recursive callee).
		`proc bbCommentTree(roots) {
  depth = 0;
  foreach r in roots {
    depth = depth + recurse(r);
  }
  return depth;
}`,
		// 6. Sub-forum listing with per-forum story count.
		`proc bbForums(forums) {
  query q = "select count(sid) from stories where sid = ?";
  shown = 0;
  foreach f in forums {
    c = execQuery(q, f);
    shown = shown + c;
    print(f, c);
  }
  return shown;
}`,
		// 7. Archive rebuild: insert per archived story.
		`proc bbArchive(stories) {
  query ins = "insert into archive values (?)";
  moved = 0;
  foreach s in stories {
    execUpdate(ins, s);
    moved = moved + 1;
  }
  return moved;
}`,
		// 8. Nested reply expansion: recursive invocation again (NOT
		// transformable).
		`proc bbReplyExpansion(threads) {
  total = 0;
  foreach t in threads {
    total = total + recurse(t, 0);
  }
  return total;
}`,
	}
	return &CorpusApp{Name: "Bulletin Board", Procs: parseAll(srcs)}
}

func parseAll(srcs []string) []*ir.Proc {
	out := make([]*ir.Proc, len(srcs))
	for i, s := range srcs {
		out[i] = minilang.MustParse(s)
	}
	return out
}
