package apps

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"

	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/server"
	"repro/internal/storage"
)

// CorpusApp is one benchmark application's inventory of query-in-loop sites
// for the Table I applicability analysis. Each procedure contains exactly
// one loop with query executions; the analysis runs the real transformation
// machinery over each and counts exploited sites.
type CorpusApp struct {
	Name  string
	Procs []*ir.Proc
}

// AuctionCorpus models the RUBiS auction system's nine query-in-loop sites
// (§VI, Table I: 9 opportunities, 9 transformed). The loop shapes cover the
// patterns found in the real application: plain per-item lookups, trailing
// counter updates that need reordering, conditional queries needing Rule B,
// chained double queries, nested loops, stack traversals and updates.
func AuctionCorpus() *CorpusApp {
	srcs := []string{
		// 1. Item detail lookups over a result list (plain fission).
		`proc auctionItemDetails(items) {
  query q = "select name, price from item where iid = ?";
  total = 0;
  foreach it in items {
    r = execQuery(q, it);
    total = total + field(r, "price");
  }
  return total;
}`,
		// 2. Comment authors with a running index (reordering needed).
		`proc auctionCommentAuthors(n) {
  query q = "select rating from users where uid = ?";
  i = 0;
  sum = 0;
  while (i < n) {
    r = execQuery(q, i);
    sum = sum + r;
    i = i + 1;
  }
  return sum;
}`,
		// 3. Bid history: conditional fetch for high bids (Rule B + A).
		`proc auctionBidHistory(bids) {
  query q = "select bidder from bids where bid = ?";
  hot = 0;
  foreach b in bids {
    big = b % 3 == 0;
    if (big) {
      w = execQuery(q, b);
      hot = hot + w;
    }
  }
  return hot;
}`,
		// 4. Seller rating page: chained user + region queries.
		`proc auctionSellerPage(sellers) {
  query qu = "select region, rating from users where uid = ?";
  query qr = "select name from regions where rid = ?";
  out = 0;
  foreach s in sellers {
    u = execQuery(qu, s);
    rg = execQuery(qr, field(u, "region"));
    out = out + size(field(rg, "name"));
  }
  return out;
}`,
		// 5. Items per category for the browse page (nested loops).
		`proc auctionBrowseCategories(cats) {
  query q = "select count(iid) from item where category_id = ?";
  total = 0;
  foreach c in cats {
    sub = 0;
    while (sub < 3) {
      n = execQuery(q, c * 10 + sub);
      total = total + n;
      sub = sub + 1;
    }
  }
  return total;
}`,
		// 6. About-me page: queries driven by a work stack (mutation +
		// reorder).
		`proc auctionAboutMe(stack) {
  query q = "select count(bid) from bids where bidder = ?";
  acc = 0;
  while (!empty(stack)) {
    u = pop(stack);
    n = execQuery(q, u);
    acc = acc + n;
  }
  return acc;
}`,
		// 7. Buy-now confirmations: insert per purchase (update loop).
		`proc auctionBuyNow(purchases) {
  query ins = "insert into buynow values (?, ?)";
  k = 0;
  foreach p in purchases {
    execUpdate(ins, p, k);
    k = k + 1;
  }
  return k;
}`,
		// 8. Watchlist refresh: guarded query plus trailing state update.
		`proc auctionWatchlist(ids) {
  query q = "select price from item where iid = ?";
  last = 0;
  moved = 0;
  foreach w in ids {
    active = w % 2 == 0;
    active ? p = execQuery(q, w);
    active ? moved = moved + p;
    last = w;
  }
  return moved, last;
}`,
		// 9. Feedback summary: two-phase accumulation with reorder.
		`proc auctionFeedback(users) {
  query q = "select count(fid) from feedback where uid = ?";
  pos = 0;
  prev = 0;
  foreach u in users {
    c = execQuery(q, u);
    pos = pos + c + prev;
    prev = c % 5;
  }
  return pos;
}`,
	}
	return &CorpusApp{Name: "Auction", Procs: parseAll(srcs)}
}

// BulletinCorpus models the RUBBoS bulletin board's eight sites (§VI,
// Table I: 8 opportunities, 6 transformed). Two loops obtain their query
// results through recursive method invocations (modelled by the `recurse`
// barrier builtin), which prevents transformation, as in the paper.
func BulletinCorpus() *CorpusApp {
	srcs := []string{
		// 1. Top stories with poster details.
		`proc bbTopStories(ids) {
  query q = "select author from stories where sid = ?";
  n = 0;
  foreach s in ids {
    a = execQuery(q, s);
    n = n + a;
  }
  return n;
}`,
		// 2. Story comments (counter loop; reorder).
		`proc bbStoryComments(n) {
  query q = "select count(cid) from comments where cid = ?";
  i = 0;
  total = 0;
  while (i < n) {
    c = execQuery(q, i);
    total = total + c;
    i = i + 1;
  }
  return total;
}`,
		// 3. Moderation queue: conditional review fetch.
		`proc bbModeration(items) {
  query q = "select rating from users where uid = ?";
  flagged = 0;
  foreach m in items {
    bad = m % 7 == 0;
    if (bad) {
      r = execQuery(q, m);
      flagged = flagged + r;
    }
  }
  return flagged;
}`,
		// 4. User page: comment counts per month.
		`proc bbUserPage(months) {
  query q = "select count(cid) from comments where cid = ?";
  acc = 0;
  foreach mo in months {
    c = execQuery(q, mo);
    acc = acc + c;
  }
  return acc;
}`,
		// 5. Comment tree rendering: recursive descent (NOT transformable —
		// the query executes inside the recursive callee).
		`proc bbCommentTree(roots) {
  depth = 0;
  foreach r in roots {
    depth = depth + recurse(r);
  }
  return depth;
}`,
		// 6. Sub-forum listing with per-forum story count.
		`proc bbForums(forums) {
  query q = "select count(sid) from stories where sid = ?";
  shown = 0;
  foreach f in forums {
    c = execQuery(q, f);
    shown = shown + c;
    print(f, c);
  }
  return shown;
}`,
		// 7. Archive rebuild: insert per archived story.
		`proc bbArchive(stories) {
  query ins = "insert into archive values (?)";
  moved = 0;
  foreach s in stories {
    execUpdate(ins, s);
    moved = moved + 1;
  }
  return moved;
}`,
		// 8. Nested reply expansion: recursive invocation again (NOT
		// transformable).
		`proc bbReplyExpansion(threads) {
  total = 0;
  foreach t in threads {
    total = total + recurse(t, 0);
  }
  return total;
}`,
	}
	return &CorpusApp{Name: "Bulletin Board", Procs: parseAll(srcs)}
}

func parseAll(srcs []string) []*ir.Proc {
	out := make([]*ir.Proc, len(srcs))
	for i, s := range srcs {
		out[i] = minilang.MustParse(s)
	}
	return out
}

// ---- randomized differential workloads ----
//
// The randomized differential harness (internal/replica/diff_test.go) pins
// single-server, sharded, and sharded+replicated execution byte-identical
// on seeded random workloads. The generator lives here, next to the Table I
// corpus, because it is the shared query/insert vocabulary for every app:
// it introspects whatever schema an app's Setup loaded and emits statements
// in the sqlmini subset, deterministically in the rng.

// WorkloadOp is one operation of a randomized differential workload: a
// prepared statement plus its bindings. Ops with one binding run through
// Exec; ops with several run through ExecBatch.
type WorkloadOp struct {
	SQL     string
	ArgSets [][]any
}

// Batch reports whether the op is a set-oriented submission.
func (op WorkloadOp) Batch() bool { return len(op.ArgSets) > 1 }

// SeedFromEnv resolves a randomized-workload seed: an explicit non-zero
// seed wins; otherwise the ASYNCQ_SEED environment variable when set and
// parseable; otherwise 0, meaning the caller should pick one (and log it,
// so failures reproduce).
func SeedFromEnv(explicit int64) int64 {
	if explicit != 0 {
		return explicit
	}
	if env := os.Getenv("ASYNCQ_SEED"); env != "" {
		if s, err := strconv.ParseInt(env, 10, 64); err == nil {
			return s
		}
	}
	return 0
}

// scanCap bounds which tables the generator full-scans (predicate-free
// aggregates, unindexed predicates): a 400k-row scan per op per cluster
// would dominate the suite's runtime without adding merge coverage.
const scanCap = 100_000

// RandomWorkload generates n seeded operations over the tables loaded into
// ref: point selects on indexed columns (single and batched), aggregates
// (with and without predicates, including zero-match keys), row selects
// whose scatter merges must restore global order, single and batched
// inserts (occasionally duplicating existing key values), and a sprinkle
// of statements that fail — parse errors, unknown tables/columns, arity
// mismatches — whose error text must match on every backend. The result is
// a pure function of (loaded schema and rows, n, rng state).
func RandomWorkload(ref *server.Server, n int, rng *rand.Rand) []WorkloadOp {
	tables := ref.Catalog().Tables()
	// Catalog.Tables is map-ordered; sort for rng-determinism.
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	g := &workloadGen{rng: rng, tables: tables}
	ops := make([]WorkloadOp, 0, n)
	for len(ops) < n {
		ops = append(ops, g.next())
	}
	return ops
}

type workloadGen struct {
	rng    *rand.Rand
	tables []*storage.Table
}

func (g *workloadGen) next() WorkloadOp {
	t := g.tables[g.rng.Intn(len(g.tables))]
	roll := g.rng.Intn(100)
	switch {
	case roll < 22:
		return g.pointSelect(t, 1)
	case roll < 37:
		return g.pointSelect(t, 4+g.rng.Intn(9))
	case roll < 57:
		return g.aggregate(t)
	case roll < 67:
		return g.orderedScatter(t)
	case roll < 79:
		return g.insert(t, 1)
	case roll < 91:
		return g.insert(t, 2+g.rng.Intn(7))
	default:
		return g.failing(t)
	}
}

// intCols returns the positions of the table's int columns.
func intCols(t *storage.Table) []int {
	var out []int
	for i, c := range t.Schema.Cols {
		if c.Type == storage.TInt {
			out = append(out, i)
		}
	}
	return out
}

// indexedCol picks one indexed column, or "" when the table has none.
func (g *workloadGen) indexedCol(t *storage.Table) string {
	ixs := t.Indexes()
	if len(ixs) == 0 {
		return ""
	}
	return ixs[g.rng.Intn(len(ixs))].Column
}

// sample draws a predicate value for col: usually from a random existing
// row, sometimes a miss (so zero-match merges stay covered).
func (g *workloadGen) sample(t *storage.Table, col string) any {
	ci := t.Schema.ColIndex(col)
	if nr := t.NumRows(); nr > 0 && g.rng.Intn(10) < 8 {
		return t.Row(g.rng.Intn(nr))[ci]
	}
	if t.Schema.Cols[ci].Type == storage.TInt {
		return int64(10_000_000 + g.rng.Intn(1_000_000))
	}
	return fmt.Sprintf("miss%d", g.rng.Intn(1_000_000))
}

// colList picks a non-empty projection in a deterministic random order.
func (g *workloadGen) colList(t *storage.Table) string {
	cols := make([]string, len(t.Schema.Cols))
	for i, c := range t.Schema.Cols {
		cols[i] = c.Name
	}
	g.rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
	k := 1 + g.rng.Intn(len(cols))
	out := cols[0]
	for _, c := range cols[1:k] {
		out += ", " + c
	}
	return out
}

// pointSelect emits an equality select on an indexed column with k bindings
// (k > 1 exercises the per-shard batch split and replica batch failover).
func (g *workloadGen) pointSelect(t *storage.Table, k int) WorkloadOp {
	col := g.indexedCol(t)
	if col == "" {
		if t.NumRows() > scanCap || t.NumRows() == 0 {
			return g.insert(t, 1) // nothing cheap to read on this table
		}
		col = t.Schema.Cols[g.rng.Intn(len(t.Schema.Cols))].Name
	}
	op := WorkloadOp{SQL: fmt.Sprintf("select %s from %s where %s = ?", g.colList(t), t.Name, col)}
	for j := 0; j < k; j++ {
		op.ArgSets = append(op.ArgSets, []any{g.sample(t, col)})
	}
	return op
}

// aggregate emits COUNT/SUM/MAX/MIN over an int column, with an indexed
// predicate, an unindexed one (small tables only), or none.
func (g *workloadGen) aggregate(t *storage.Table) WorkloadOp {
	ints := intCols(t)
	if len(ints) == 0 {
		return g.pointSelect(t, 1)
	}
	kind := []string{"count", "sum", "max", "min"}[g.rng.Intn(4)]
	aggCol := t.Schema.Cols[ints[g.rng.Intn(len(ints))]].Name
	sql := fmt.Sprintf("select %s(%s) from %s", kind, aggCol, t.Name)
	small := t.NumRows() <= scanCap
	pcol := g.indexedCol(t)
	if small && (pcol == "" || g.rng.Intn(3) == 0) {
		if g.rng.Intn(2) == 0 {
			return WorkloadOp{SQL: sql, ArgSets: [][]any{nil}} // full-table aggregate
		}
		pcol = t.Schema.Cols[g.rng.Intn(len(t.Schema.Cols))].Name // unindexed predicate
	}
	if pcol == "" {
		return g.pointSelect(t, 1)
	}
	return WorkloadOp{
		SQL:     sql + fmt.Sprintf(" where %s = ?", pcol),
		ArgSets: [][]any{{g.sample(t, pcol)}},
	}
}

// orderedScatter emits a row select whose predicate is not usable for
// routing on most backends, so the scatter-gather merge must restore the
// exact global row order. Big tables fall back to indexed predicates (an
// unindexed one would full-scan them).
func (g *workloadGen) orderedScatter(t *storage.Table) WorkloadOp {
	if t.NumRows() == 0 {
		return g.insert(t, 1)
	}
	col := ""
	if t.NumRows() <= scanCap {
		col = t.Schema.Cols[g.rng.Intn(len(t.Schema.Cols))].Name
	} else {
		col = g.indexedCol(t)
	}
	if col == "" {
		return g.insert(t, 1)
	}
	return WorkloadOp{
		SQL:     fmt.Sprintf("select %s from %s where %s = ?", g.colList(t), t.Name, col),
		ArgSets: [][]any{{g.sample(t, col)}},
	}
}

// insert emits k inserted rows; int values occasionally duplicate existing
// key values (duplicate shard keys must land on one shard and merge in
// insertion order).
func (g *workloadGen) insert(t *storage.Table, k int) WorkloadOp {
	ph := ""
	for i := range t.Schema.Cols {
		if i > 0 {
			ph += ", "
		}
		ph += "?"
	}
	op := WorkloadOp{SQL: fmt.Sprintf("insert into %s values (%s)", t.Name, ph)}
	for j := 0; j < k; j++ {
		row := make([]any, len(t.Schema.Cols))
		for i, c := range t.Schema.Cols {
			if c.Type == storage.TInt {
				if nr := t.NumRows(); nr > 0 && g.rng.Intn(4) == 0 {
					row[i] = t.Row(g.rng.Intn(nr))[i] // duplicate an existing value
				} else {
					row[i] = int64(1_000_000 + g.rng.Intn(8_000_000))
				}
			} else {
				row[i] = fmt.Sprintf("w%d", g.rng.Intn(1_000_000))
			}
		}
		op.ArgSets = append(op.ArgSets, row)
	}
	return op
}

// failing emits a statement that errors — identically on every backend.
func (g *workloadGen) failing(t *storage.Table) WorkloadOp {
	switch g.rng.Intn(5) {
	case 0: // parse error
		return WorkloadOp{SQL: "delete from " + t.Name, ArgSets: [][]any{nil}}
	case 1: // unknown table
		return WorkloadOp{SQL: "select x from nosuchtable where x = ?", ArgSets: [][]any{{int64(1)}}}
	case 2: // unknown column
		return WorkloadOp{
			SQL:     fmt.Sprintf("select nosuchcol from %s where %s = ?", t.Name, t.Schema.Cols[0].Name),
			ArgSets: [][]any{{g.sample(t, t.Schema.Cols[0].Name)}},
		}
	case 3: // arity mismatch: a parameter the binding never supplies
		return WorkloadOp{
			SQL:     fmt.Sprintf("select %s from %s where %s = ?", t.Schema.Cols[0].Name, t.Name, t.Schema.Cols[0].Name),
			ArgSets: [][]any{nil},
		}
	default: // aggregate over a string column (or int when none: still fine)
		col := t.Schema.Cols[len(t.Schema.Cols)-1].Name
		return WorkloadOp{
			SQL:     fmt.Sprintf("select sum(%s) from %s where %s = ?", col, t.Name, t.Schema.Cols[0].Name),
			ArgSets: [][]any{{g.sample(t, t.Schema.Cols[0].Name)}},
		}
	}
}
