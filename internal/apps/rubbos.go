package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
)

// RUBBoS is Experiment 2: the bulletin board's "top stories of the day"
// listing, which loads each story and then the details of its poster. Two
// chained queries per iteration, exercising repeated application of Rule A
// (the second query's fission happens inside the scan loop the first one
// generates).
func RUBBoS() *App {
	return &App{
		Name: "rubbos",
		Source: `
proc rubbosTopStories(storyIds) {
  query qs = "select author, rating from stories where sid = ?";
  query qu = "select nickname, rating from users where uid = ?";
  shown = 0;
  sumRating = 0;
  foreach sid in storyIds {
    srows = execQuery(qs, sid);
    author = field(srows, "author");
    urows = execQuery(qu, author);
    nick = field(urows, "nickname");
    sumRating = sumRating + field(urows, "rating");
    shown = shown + 1;
    print(shown, nick);
  }
  return shown, sumRating;
}`,
		Setup: func(s *server.Server, rng *rand.Rand) error {
			if err := setupUsersAndComments(s, rng); err != nil {
				return err
			}
			stories := s.Catalog().CreateTable("stories", storage.NewSchema(
				storage.Column{Name: "sid", Type: storage.TInt},
				storage.Column{Name: "author", Type: storage.TInt},
				storage.Column{Name: "rating", Type: storage.TInt},
				storage.Column{Name: "title", Type: storage.TString},
			))
			for i := 0; i < numStories; i++ {
				if _, err := stories.Insert([]any{
					int64(i), int64(rng.Intn(numUsers)), int64(rng.Intn(100)),
					fmt.Sprintf("story %d", i),
				}); err != nil {
					return err
				}
			}
			s.RegisterExtent(stories.Extent, stories.NumPages())
			return s.AddIndex("stories", "sid", true)
		},
		ShardKeys: map[string]string{"users": "uid", "comments": "cid", "stories": "sid"},
		Args: func(n int, rng *rand.Rand) []interp.Value {
			ids := make([]interp.Value, n)
			for i := range ids {
				ids[i] = int64(rng.Intn(numStories))
			}
			return []interp.Value{interp.NewList(ids...)}
		},
	}
}
