package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
)

// RUBiS is Experiment 1: the auction site's comment listing, which loads the
// author record of each comment in a loop. One query per iteration, no
// loop-carried flow dependence — the basic Rule A case.
func RUBiS() *App {
	return &App{
		Name: "rubis",
		Source: `
proc rubisLoadAuthors(authorIds) {
  query qu = "select nickname, rating from users where uid = ?";
  total = 0;
  foreach uid in authorIds {
    urows = execQuery(qu, uid);
    r = field(urows, "rating");
    total = total + r;
  }
  return total;
}`,
		Setup: setupUsersAndComments,
		// Both tables are point-queried by their unique key, so every lookup
		// routes to a single shard.
		ShardKeys: map[string]string{"users": "uid", "comments": "cid"},
		Args: func(n int, rng *rand.Rand) []interp.Value {
			ids := make([]interp.Value, n)
			for i := range ids {
				ids[i] = int64(rng.Intn(numUsers))
			}
			return []interp.Value{interp.NewList(ids...)}
		},
	}
}

// setupUsersAndComments loads the users and comments tables shared by the
// RUBiS and RUBBoS experiments.
func setupUsersAndComments(s *server.Server, rng *rand.Rand) error {
	cat := s.Catalog()
	users := cat.CreateTable("users", storage.NewSchema(
		storage.Column{Name: "uid", Type: storage.TInt},
		storage.Column{Name: "nickname", Type: storage.TString},
		storage.Column{Name: "rating", Type: storage.TInt},
	))
	// User profiles are wide rows (bio text, preferences): few per page, so
	// random author lookups on a cold cache fault heavily, as in the paper.
	users.SetRowsPerPage(8)
	for i := 0; i < numUsers; i++ {
		if _, err := users.Insert([]any{int64(i), fmt.Sprintf("user%d", i), int64(rng.Intn(1000))}); err != nil {
			return err
		}
	}
	comments := cat.CreateTable("comments", storage.NewSchema(
		storage.Column{Name: "cid", Type: storage.TInt},
		storage.Column{Name: "author", Type: storage.TInt},
		storage.Column{Name: "item", Type: storage.TInt},
	))
	for i := 0; i < numComments; i++ {
		if _, err := comments.Insert([]any{int64(i), int64(rng.Intn(numUsers)), int64(rng.Intn(10000))}); err != nil {
			return err
		}
	}
	s.FinishLoad()
	if err := s.AddIndex("users", "uid", true); err != nil {
		return err
	}
	return s.AddIndex("comments", "cid", true)
}
