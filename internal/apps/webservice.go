package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
)

// WebServiceApp is Experiment 5: a client that fetches director/movie data
// from a remote entity-graph service (Freebase in the paper). The service
// API supports no joins and no set-oriented requests, so the client issues
// one request per director from a loop; wide-area round-trip time dominates
// and asynchronous submission hides it. The "database" here is the same
// simulated server under the WebService profile (25ms RTT).
func WebServiceApp() *App {
	return &App{
		Name:      "webservice",
		ShardKeys: map[string]string{"movies": "director"},
		Source: `
proc fetchFilmography(directors) {
  query qm = "select count(mid) from movies where director = ?";
  totalMovies = 0;
  foreach d in directors {
    c = execQuery(qm, d);
    totalMovies = totalMovies + c;
  }
  return totalMovies;
}`,
		Setup: func(s *server.Server, rng *rand.Rand) error {
			movies := s.Catalog().CreateTable("movies", storage.NewSchema(
				storage.Column{Name: "mid", Type: storage.TInt},
				storage.Column{Name: "director", Type: storage.TInt},
				storage.Column{Name: "title", Type: storage.TString},
			))
			for i := 0; i < numMovies; i++ {
				if _, err := movies.Insert([]any{
					int64(i), int64(rng.Intn(numDirectors)), fmt.Sprintf("movie %d", i),
				}); err != nil {
					return err
				}
			}
			s.FinishLoad()
			return s.AddIndex("movies", "director", false)
		},
		Args: func(n int, rng *rand.Rand) []interp.Value {
			ids := make([]interp.Value, n)
			for i := range ids {
				ids[i] = int64(rng.Intn(numDirectors))
			}
			return []interp.Value{interp.NewList(ids...)}
		},
	}
}
