package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/server"
	"repro/internal/storage"
)

// Category is Experiment 3 (taken from [3], as in the paper): find the
// maximum part size under a set of categories by DFS over the category
// hierarchy, querying the item table once per visited node. The traversal
// frontier lives in client memory (childCategories walks the preloaded
// hierarchy); the per-node aggregate query is the transformable statement.
// The loop needs the reordering algorithm first — the frontier update is a
// loop-carried flow dependence into the loop predicate — matching the
// paper's note that "the reordering algorithm was first applied and then the
// loop was split".
func Category() *App {
	return &App{
		Name: "category",
		Source: `
proc categoryMaxSize(stack) {
  query qi = "select max(psize) from item where category_id = ?";
  best = 0;
  visited = 0;
  while (!empty(stack)) {
    cur = pop(stack);
    m = execQuery(qi, cur);
    c = m != null;
    c ? best = max(best, m);
    visited = visited + 1;
    kids = childCategories(cur);
    stack = concat(stack, kids);
  }
  return best, visited;
}`,
		Setup: setupCategoryItems,
		// item shards by category_id: the per-node aggregate is a point query
		// on the shard key, and one shard owns a whole category's items.
		ShardKeys: map[string]string{"category": "cid", "item": "category_id"},
		Sigs: []*ir.FuncSig{
			{Name: "childCategories", NArgs: 1, NRet: 1},
		},
		Bind: func(in *interp.Interp, rng *rand.Rand) {
			children := categoryChildren()
			in.Bind("childCategories", func(a []interp.Value) ([]interp.Value, error) {
				cid, ok := a[0].(int64)
				if !ok {
					return []interp.Value{interp.NewList()}, nil
				}
				kids := children[cid]
				items := make([]interp.Value, len(kids))
				for i, k := range kids {
					items[i] = k
				}
				return []interp.Value{interp.NewList(items...)}, nil
			})
		},
		Args: func(n int, rng *rand.Rand) []interp.Value {
			// n leaf categories: the traversal visits exactly n nodes, so
			// the iteration count matches the paper's x-axis.
			leaves := leafCategories()
			ids := make([]interp.Value, n)
			for i := range ids {
				ids[i] = leaves[rng.Intn(len(leaves))]
			}
			return []interp.Value{interp.NewList(ids...)}
		},
	}
}

// The category hierarchy of the paper: ~10 top-level, ~90 middle, ~900 leaf
// categories. Category ids: 0..9 top, 10..99 middle, 100..999 leaf; the
// parent of middle category m is m/10, of leaf l is l/10.
func categoryChildren() map[int64][]int64 {
	children := map[int64][]int64{}
	for m := int64(10); m < 100; m++ {
		children[m/10] = append(children[m/10], m)
	}
	for l := int64(100); l < int64(numCategories); l++ {
		children[l/10] = append(children[l/10], l)
	}
	return children
}

func leafCategories() []int64 {
	out := make([]int64, 0, 900)
	for l := int64(100); l < int64(numCategories); l++ {
		out = append(out, l)
	}
	return out
}

func setupCategoryItems(s *server.Server, rng *rand.Rand) error {
	cat := s.Catalog()
	category := cat.CreateTable("category", storage.NewSchema(
		storage.Column{Name: "cid", Type: storage.TInt},
		storage.Column{Name: "parent", Type: storage.TInt},
	))
	for c := int64(0); c < int64(numCategories); c++ {
		parent := int64(-1)
		if c >= 10 {
			parent = c / 10
		}
		if _, err := category.Insert([]any{c, parent}); err != nil {
			return err
		}
	}
	// The TPC-H part table augmented with category-id (10M rows in the
	// paper, scaled down; the secondary index on category-id matches the
	// paper's physical design).
	item := cat.CreateTable("item", storage.NewSchema(
		storage.Column{Name: "iid", Type: storage.TInt},
		storage.Column{Name: "category_id", Type: storage.TInt},
		storage.Column{Name: "psize", Type: storage.TInt},
	))
	for i := 0; i < numItems; i++ {
		if _, err := item.Insert([]any{
			int64(i), int64(rng.Intn(numCategories)), int64(rng.Intn(50) + 1),
		}); err != nil {
			return err
		}
	}
	s.FinishLoad()
	if err := s.AddIndex("category", "cid", true); err != nil {
		return err
	}
	return s.AddIndex("item", "category_id", false)
}
