// Package benchfmt converts `go test -bench` text output to a structured
// JSON form and back. The JSON keeps every numeric token verbatim
// (json.Number), so a round trip through Text reproduces benchmark lines
// benchstat accepts unchanged: two PRs' BENCH_<n>.json artifacts compare
// with
//
//	benchjson -text BENCH_5.json > old.txt
//	benchjson -text BENCH_6.json > new.txt
//	benchstat old.txt new.txt
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// File is one benchmark run: the machine configuration lines go test
// prints once, plus every benchmark result in input order.
type File struct {
	Format     string  `json:"format"` // "go-bench-json/v1"
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one result line. Name keeps the -<procs> suffix go test
// appends, so reconstructed lines match the original byte for byte.
type Bench struct {
	Pkg     string   `json:"pkg,omitempty"`
	Name    string   `json:"name"`
	Runs    int64    `json:"runs"`
	Metrics []Metric `json:"metrics"`
}

// Metric is one (value, unit) pair such as 1234 ns/op. Value is the raw
// numeric token so nothing is lost to float formatting.
type Metric struct {
	Value json.Number `json:"value"`
	Unit  string      `json:"unit"`
}

// FormatV1 is the format tag written into every File.
const FormatV1 = "go-bench-json/v1"

// Parse reads `go test -bench` output (any number of packages) and
// collects the benchmark lines. Non-benchmark noise — test output,
// ok/FAIL/PASS lines — is skipped; a benchmark line whose metrics do not
// parse is an error, since silently dropping results would make a
// regression look like an improvement.
func Parse(r io.Reader) (*File, error) {
	f := &File{Format: FormatV1}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, err
			}
			b.Pkg = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func parseBench(line string) (Bench, error) {
	fields := strings.Fields(line)
	// Name, iteration count, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, fmt.Errorf("benchfmt: malformed benchmark line %q", line)
	}
	b := Bench{Name: fields[0]}
	if _, err := fmt.Sscanf(fields[1], "%d", &b.Runs); err != nil {
		return Bench{}, fmt.Errorf("benchfmt: bad run count in %q", line)
	}
	for i := 2; i < len(fields); i += 2 {
		v := json.Number(fields[i])
		if _, err := v.Float64(); err != nil {
			return Bench{}, fmt.Errorf("benchfmt: bad metric value %q in %q", fields[i], line)
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, nil
}

// Text writes the file back in the benchmark text format. Configuration
// lines come first and `pkg:` is re-emitted whenever it changes, so
// benchstat keys same-named benchmarks from different packages apart.
func (f *File) Text(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if f.Goos != "" {
		fmt.Fprintf(bw, "goos: %s\n", f.Goos)
	}
	if f.Goarch != "" {
		fmt.Fprintf(bw, "goarch: %s\n", f.Goarch)
	}
	if f.CPU != "" {
		fmt.Fprintf(bw, "cpu: %s\n", f.CPU)
	}
	pkg := ""
	for _, b := range f.Benchmarks {
		if b.Pkg != pkg {
			pkg = b.Pkg
			fmt.Fprintf(bw, "pkg: %s\n", pkg)
		}
		fmt.Fprintf(bw, "%s\t%d", b.Name, b.Runs)
		for _, m := range b.Metrics {
			fmt.Fprintf(bw, "\t%s %s", m.Value, m.Unit)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Encode writes the file as indented JSON (the BENCH_<n>.json artifact
// format).
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a BENCH_<n>.json artifact.
func Decode(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	f := &File{}
	if err := dec.Decode(f); err != nil {
		return nil, err
	}
	if f.Format != FormatV1 {
		return nil, fmt.Errorf("benchfmt: unknown format %q (want %s)", f.Format, FormatV1)
	}
	return f, nil
}
