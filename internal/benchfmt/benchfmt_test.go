package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/exec
cpu: Intel(R) Xeon(R) CPU
BenchmarkExecutorThroughput-8   	       1	   1234567 ns/op	     456 B/op	       7 allocs/op
BenchmarkSubmit-8               	 1000000	      1050 ns/op
PASS
ok  	repro/internal/exec	1.234s
pkg: repro/internal/batch
BenchmarkBatchedSubmission-8    	       1	   2088000000 ns/op
some stray test log line
ok  	repro/internal/batch	2.1s
`

func TestParseCollectsBenchmarksAndConfig(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != FormatV1 {
		t.Fatalf("format = %q", f.Format)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("config = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	b := f.Benchmarks[0]
	if b.Pkg != "repro/internal/exec" || b.Name != "BenchmarkExecutorThroughput-8" || b.Runs != 1 {
		t.Fatalf("bench 0 = %+v", b)
	}
	if len(b.Metrics) != 3 || b.Metrics[0].Unit != "ns/op" || b.Metrics[0].Value != "1234567" ||
		b.Metrics[2].Unit != "allocs/op" {
		t.Fatalf("bench 0 metrics = %+v", b.Metrics)
	}
	if f.Benchmarks[2].Pkg != "repro/internal/batch" {
		t.Fatalf("bench 2 pkg = %q", f.Benchmarks[2].Pkg)
	}
}

func TestTextRoundTripIsLossless(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Text(&buf); err != nil {
		t.Fatal(err)
	}
	txt := buf.String()
	// Text output re-parses to the identical structure (values verbatim),
	// which is what makes two artifacts benchstat-comparable.
	f2, err := Parse(strings.NewReader(txt))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, txt)
	}
	if len(f2.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(f2.Benchmarks), len(f.Benchmarks))
	}
	for i := range f.Benchmarks {
		a, b := f.Benchmarks[i], f2.Benchmarks[i]
		if a.Pkg != b.Pkg || a.Name != b.Name || a.Runs != b.Runs || len(a.Metrics) != len(b.Metrics) {
			t.Fatalf("bench %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Metrics {
			if a.Metrics[j] != b.Metrics[j] {
				t.Fatalf("bench %d metric %d differs: %+v vs %+v", i, j, a.Metrics[j], b.Metrics[j])
			}
		}
	}
	for _, want := range []string{"goos: linux", "pkg: repro/internal/exec", "pkg: repro/internal/batch"} {
		if !strings.Contains(txt, want+"\n") {
			t.Fatalf("text output missing %q:\n%s", want, txt)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Benchmarks) != 3 || f2.Benchmarks[1].Metrics[0].Value != "1050" {
		t.Fatalf("decoded = %+v", f2)
	}
}

func TestDecodeRejectsUnknownFormat(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"format":"nope","benchmarks":[]}`)); err == nil {
		t.Fatal("want error for unknown format")
	}
}

func TestParseRejectsMalformedBenchLine(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkHalfPair-8 1 123\n",
		"BenchmarkNoCount-8 abc 1 ns/op\n",
		"BenchmarkBadValue-8 1 12x34 ns/op\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("want error for %q", bad)
		}
	}
}

func TestFractionalValuesSurviveVerbatim(t *testing.T) {
	f, err := Parse(strings.NewReader("BenchmarkTiny-8 2000000000 0.25 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks[0].Metrics[0].Value != "0.25" {
		t.Fatalf("value = %q", f.Benchmarks[0].Metrics[0].Value)
	}
}
