package simclock

import (
	"testing"
	"time"
)

func TestZeroScaleNoSleep(t *testing.T) {
	c := New(0)
	start := time.Now()
	c.Sleep(10 * time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("zero scale must not sleep")
	}
	if c.VirtualSpent() != 10*time.Second {
		t.Fatalf("virtual accounting: %v", c.VirtualSpent())
	}
}

func TestScaledSleep(t *testing.T) {
	c := New(0.1)
	start := time.Now()
	c.Sleep(100 * time.Millisecond) // 10ms wall
	el := time.Since(start)
	if el < 8*time.Millisecond || el > 80*time.Millisecond {
		t.Fatalf("scaled sleep off: %v", el)
	}
}

func TestSetScale(t *testing.T) {
	c := New(1)
	c.SetScale(0.5)
	if c.Scale() != 0.5 {
		t.Fatalf("scale: %v", c.Scale())
	}
}

func TestPreciseShortSleep(t *testing.T) {
	c := New(1)
	start := time.Now()
	for i := 0; i < 20; i++ {
		c.Sleep(50 * time.Microsecond)
	}
	el := time.Since(start)
	if el < 900*time.Microsecond {
		t.Fatalf("short sleeps too fast: %v", el)
	}
	if el > 20*time.Millisecond {
		t.Fatalf("short sleeps too slow (timer floor leaking): %v", el)
	}
}

func TestNegativeSleepNoop(t *testing.T) {
	c := New(1)
	c.Sleep(-time.Second)
	if c.VirtualSpent() != 0 {
		t.Fatal("negative sleep must be ignored")
	}
}
