// Package simclock provides the scaled, precise sleeping used by the
// simulated database substrate. All simulated latencies are expressed in
// microsecond-scale base durations and multiplied by a configurable Scale,
// so experiments can trade wall-clock time for resolution without changing
// the modelled ratios. Sub-200µs sleeps are finished with a short spin to
// avoid the OS timer-granularity floor distorting small latencies.
package simclock

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Clock scales and executes simulated delays. A zero Scale disables sleeping
// entirely (useful in logic tests), while still accounting the virtual time.
type Clock struct {
	scale atomic.Int64 // scale * 1e6
	spent atomic.Int64 // accumulated virtual nanoseconds (unscaled)
}

// New returns a clock with the given scale factor (1.0 = real microseconds).
func New(scale float64) *Clock {
	c := &Clock{}
	c.SetScale(scale)
	return c
}

// SetScale changes the scale factor.
func (c *Clock) SetScale(s float64) {
	c.scale.Store(int64(s * 1e6))
}

// Scale returns the current scale factor.
func (c *Clock) Scale() float64 {
	return float64(c.scale.Load()) / 1e6
}

// Sleep pauses for d scaled by the clock's factor and accounts the unscaled
// virtual time.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.spent.Add(int64(d))
	s := c.scale.Load()
	if s == 0 {
		return
	}
	scaled := time.Duration(int64(d) * s / 1e6)
	preciseSleep(scaled)
}

// VirtualSpent reports the total unscaled virtual time slept so far, for
// diagnostics.
func (c *Clock) VirtualSpent() time.Duration {
	return time.Duration(c.spent.Load())
}

// preciseSleep sleeps with ~10µs accuracy: long waits use time.Sleep, the
// final stretch spins. The spin ceiling keeps CPU burn bounded. The spin
// yields the processor on every check: simulated latencies model time
// passing, not CPU consumption (CPU contention is modelled by core tokens),
// so concurrent sleeps must make progress together even when the host has
// fewer cores than sleepers — on a single-core machine a tight spin would
// serialize every overlapping latency and distort all concurrency effects.
func preciseSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	const spinWindow = 150 * time.Microsecond
	start := time.Now()
	if d > spinWindow {
		time.Sleep(d - spinWindow)
	}
	for time.Since(start) < d {
		runtime.Gosched()
	}
}
