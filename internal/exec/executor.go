// Package exec is the asynchronous client runtime: a fixed-size worker pool
// that plays the role of java.util.concurrent's Executor framework in the
// paper's rewritten programs (§VI). Submitted queries are queued and executed
// by the pool; Fetch blocks on the per-query handle (the observer model of
// §II).
package exec

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("exec: executor closed")

// Runner executes one query; it is the bridge to the database client
// session (or any other request transport, e.g. a web-service client).
type Runner func(name, sql string, args []any) (any, error)

// Handle is a pending asynchronous request.
type Handle struct {
	done chan struct{}
	val  any
	err  error
}

// Fetch blocks until the request completes and returns its result. It may be
// called multiple times; subsequent calls return immediately.
func (h *Handle) Fetch() (any, error) {
	<-h.done
	return h.val, h.err
}

// Done reports (without blocking) whether the result is available — the
// polling side of the observer model.
func (h *Handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

type job struct {
	name string
	sql  string
	args []any
	h    *Handle
}

// Executor is a fixed-size worker pool with an unbounded FIFO submission
// queue, so that submit loops never block regardless of the number of
// iterations (memory for pending state is the documented cost, §VII).
type Executor struct {
	run     Runner
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*job
	closed  bool
	workers int
	wg      sync.WaitGroup

	statMu    sync.Mutex
	submitted int64
	completed int64
}

// NewExecutor starts a pool of the given size. workers is the paper's
// "number of threads" experimental parameter.
func NewExecutor(workers int, run Runner) *Executor {
	if workers < 1 {
		workers = 1
	}
	e := &Executor{run: run, workers: workers}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Submit enqueues a request and returns its handle immediately.
func (e *Executor) Submit(name, sql string, args []any) (*Handle, error) {
	h := &Handle{done: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.queue = append(e.queue, &job{name: name, sql: sql, args: args, h: h})
	e.cond.Signal()
	e.mu.Unlock()

	e.statMu.Lock()
	e.submitted++
	e.statMu.Unlock()
	return h, nil
}

// Stats returns the total submitted and completed request counts.
func (e *Executor) Stats() (submitted, completed int64) {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.submitted, e.completed
}

// Close drains the queue: pending requests still execute, then workers exit.
// It blocks until all workers have stopped.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()

		j.h.val, j.h.err = e.run(j.name, j.sql, j.args)
		close(j.h.done)

		e.statMu.Lock()
		e.completed++
		e.statMu.Unlock()
	}
}
