// Package exec is the asynchronous client runtime: a fixed-size worker pool
// that plays the role of java.util.concurrent's Executor framework in the
// paper's rewritten programs (§VI). Submitted queries are queued and executed
// by the pool; Fetch blocks on the per-query handle (the observer model of
// §II).
//
// The hot path is allocation-lean: one allocation per Submit (the Handle the
// caller keeps). Job structs are pooled, the FIFO queue is a growable ring
// buffer instead of an append+reslice slice, handles signal completion
// through an embedded mutex/cond pair instead of a dedicated channel, and
// the statistics counters are atomics folded into the enqueue/dequeue path
// so observers can never see completed > submitted.
package exec

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/query"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("exec: executor closed")

// Runner executes one request; it is the bridge to the database client
// session (or any other request transport, e.g. a web-service client). The
// request carries everything the backend needs — trace span, session
// consistency tokens, and deadline — so there is exactly one runner shape
// per layer.
type Runner func(req query.Request) query.Result

// BatchRunner executes one prepared statement against a set of parameter
// bindings in a single server round trip (the set-oriented sibling of Runner;
// see internal/batch and server.ExecBatch). It returns one result and one
// error per binding, in binding order.
type BatchRunner func(req query.BatchRequest) query.BatchResult

// Handle is a pending asynchronous request.
type Handle struct {
	mu   sync.Mutex
	cond sync.Cond
	done atomic.Bool
	val  any
	err  error
	// span, when tracing is on, is the request's root span; complete()
	// ends it, so the root's wall time is exactly submit→completion.
	span *obs.Span
	// dl is the request deadline: workers abandon jobs whose deadline
	// expired while queued instead of running them.
	dl query.Deadline
}

func newHandle() *Handle {
	h := &Handle{}
	h.cond.L = &h.mu
	return h
}

// NewPendingHandle returns an incomplete handle for front-ends (the batching
// coalescer) that hand out handles at enqueue time and complete them later
// via Complete. sp is the request's root span (nil when untraced) —
// completing the handle ends it; dl is the request deadline (zero for none).
func NewPendingHandle(sp *obs.Span, dl query.Deadline) *Handle {
	h := newHandle()
	h.span = sp
	h.dl = dl
	return h
}

// Span returns the request's root span (nil when untraced).
func (h *Handle) Span() *obs.Span { return h.span }

// Deadline returns the request deadline carried by the handle.
func (h *Handle) Deadline() query.Deadline { return h.dl }

// Complete publishes the result and wakes all fetchers. It is exported for
// demultiplexing layers that own pending handles (see NewPendingHandle); it
// must be called at most once per handle.
func (h *Handle) Complete(v any, err error) { h.complete(v, err) }

// newDoneHandle returns an already-completed handle (used by the degraded
// poolless service mode).
func newDoneHandle(v any, err error) *Handle {
	h := newHandle()
	h.complete(v, err)
	return h
}

// complete publishes the result and wakes all fetchers. val and err are
// written before the atomic done flag, so the lock-free fast path in Fetch
// observes them fully.
func (h *Handle) complete(v any, err error) {
	h.mu.Lock()
	h.val, h.err = v, err
	h.done.Store(true)
	h.mu.Unlock()
	h.cond.Broadcast()
	h.span.End() // nil-safe: ends the request root at completion time
}

// Fetch blocks until the request completes and returns its result. It may be
// called multiple times; subsequent calls return immediately.
func (h *Handle) Fetch() (any, error) {
	if h.done.Load() {
		return h.val, h.err
	}
	h.mu.Lock()
	for !h.done.Load() {
		h.cond.Wait()
	}
	h.mu.Unlock()
	return h.val, h.err
}

// Done reports (without blocking) whether the result is available — the
// polling side of the observer model.
func (h *Handle) Done() bool { return h.done.Load() }

type job struct {
	req query.Request
	h   *Handle
	// Batch jobs carry a BatchRequest and one pending handle per binding
	// set instead of req/h; hs non-nil marks the job as a batch.
	breq query.BatchRequest
	hs   []*Handle
	// queue, when tracing is on, measures time spent waiting in the ring
	// (opened at enqueue, ended when a worker pops the job). For batch
	// jobs it hangs off the batch leader's span.
	queue *obs.Span
}

// jobRing is a growable FIFO ring buffer. Capacity is kept a power of two so
// indexing is a mask; pushes grow by doubling, so steady-state submission
// does no queue allocation at all.
type jobRing struct {
	buf  []*job
	head int
	n    int
}

func (q *jobRing) empty() bool { return q.n == 0 }

func (q *jobRing) push(j *job) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = j
	q.n++
}

func (q *jobRing) pop() *job {
	j := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return j
}

func (q *jobRing) grow() {
	newCap := 64
	if len(q.buf) > 0 {
		newCap = len(q.buf) * 2
	}
	nb := make([]*job, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}

// Executor is a fixed-size worker pool with an unbounded FIFO submission
// queue, so that submit loops never block regardless of the number of
// iterations (memory for pending state is the documented cost, §VII).
type Executor struct {
	run      Runner
	runBatch BatchRunner // optional set-oriented path for batch jobs

	mu      sync.Mutex
	cond    sync.Cond
	queue   jobRing
	closed  bool
	workers int
	wg      sync.WaitGroup
	jobs    sync.Pool

	submitted atomic.Int64
	completed atomic.Int64
	batches   atomic.Int64 // batch jobs issued
	batched   atomic.Int64 // individual requests carried by batch jobs
	abandoned atomic.Int64 // requests dropped unexecuted: deadline expired in queue
}

// NewExecutor starts a pool of the given size. workers is the paper's
// "number of threads" experimental parameter.
func NewExecutor(workers int, run Runner) *Executor {
	return NewBatchExecutor(workers, run, nil)
}

// NewBatchExecutor starts a pool whose batch jobs (SubmitBatch) execute
// through runBatch in a single call. A nil runBatch degrades batch jobs to
// per-binding run calls on the worker, preserving semantics without the
// set-oriented saving.
func NewBatchExecutor(workers int, run Runner, runBatch BatchRunner) *Executor {
	if workers < 1 {
		workers = 1
	}
	e := &Executor{run: run, runBatch: runBatch, workers: workers}
	e.cond.L = &e.mu
	e.jobs.New = func() any { return new(job) }
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Submit enqueues a request and returns its handle immediately. The handle
// adopts the request's span (completion ends it) and deadline (a worker that
// pops the job past its deadline abandons it with ErrDeadlineExceeded
// instead of executing). The submitted counter is incremented inside the
// queue critical section, before any worker can see the job, so Stats never
// observes completed > submitted.
func (e *Executor) Submit(req query.Request) (*Handle, error) {
	h := newHandle()
	h.span = req.Span
	h.dl = req.Deadline
	j := e.jobs.Get().(*job)
	j.req, j.h = req, h
	j.queue = req.Span.Child("exec.queue")
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		j.queue.End()
		*j = job{}
		e.jobs.Put(j)
		return nil, ErrClosed
	}
	e.queue.push(j)
	e.submitted.Add(1)
	e.mu.Unlock()
	e.cond.Signal()
	return h, nil
}

// SubmitBatch enqueues one batch job covering len(req.ArgSets) requests. The
// handles must have been created with NewPendingHandle, one per binding set;
// a worker completes each of them after the set-oriented call. On ErrClosed
// the handles are NOT completed — the caller owns failing them.
func (e *Executor) SubmitBatch(req query.BatchRequest, hs []*Handle) error {
	if len(req.ArgSets) != len(hs) {
		return errors.New("exec: SubmitBatch: len(argSets) != len(handles)")
	}
	if len(hs) == 0 {
		return nil
	}
	j := e.jobs.Get().(*job)
	j.breq, j.hs = req, hs
	// The batch leader (first traced member) owns the queue-wait span,
	// like it will own the execution subtree.
	for _, h := range hs {
		if h.span != nil {
			j.queue = h.span.Child("exec.queue")
			break
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		j.queue.End()
		*j = job{}
		e.jobs.Put(j)
		return ErrClosed
	}
	e.queue.push(j)
	e.submitted.Add(int64(len(hs)))
	e.mu.Unlock()
	e.cond.Signal()
	return nil
}

// Stats returns the total submitted and completed request counts. The
// completed counter is loaded first: both are monotonic, so this order
// guarantees completed <= submitted in every observation.
func (e *Executor) Stats() (submitted, completed int64) {
	c := e.completed.Load()
	s := e.submitted.Load()
	return s, c
}

// BatchStats reports the batching activity: how many batch jobs were issued
// and the mean number of requests per batch (0 when no batch was issued).
func (e *Executor) BatchStats() (batchesIssued int64, avgBatchSize float64) {
	b := e.batches.Load()
	n := e.batched.Load()
	if b == 0 {
		return 0, 0
	}
	return b, float64(n) / float64(b)
}

// Abandoned reports how many requests a worker dropped unexecuted because
// their deadline expired while they sat in the queue. Abandoned requests
// still count as completed (their handles resolve with ErrDeadlineExceeded).
func (e *Executor) Abandoned() int64 { return e.abandoned.Load() }

// Close drains the queue: pending requests still execute, then workers exit.
// It blocks until all workers have stopped.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for e.queue.empty() && !e.closed {
			e.cond.Wait()
		}
		if e.queue.empty() {
			e.mu.Unlock()
			return
		}
		j := e.queue.pop()
		e.mu.Unlock()
		j.queue.End() // queue wait is over; execution starts

		if j.hs != nil {
			e.runBatchJob(j)
			continue
		}
		req, h := j.req, j.h
		*j = job{} // drop references before pooling
		e.jobs.Put(j)
		if req.Deadline.Expired() {
			// The request aged out in the queue: abandon it rather than
			// spend backend work on an answer nobody is waiting for.
			e.abandoned.Add(1)
			h.complete(nil, query.ErrDeadlineExceeded)
			e.completed.Add(1)
			continue
		}
		res := e.run(req)
		h.complete(res.Value, res.Err)
		e.completed.Add(1)
	}
}

// runBatchJob executes one batch job and demultiplexes the per-binding
// results onto the pending handles. Members whose deadline expired in the
// queue are abandoned up front (completed with ErrDeadlineExceeded) and the
// set-oriented call covers only the survivors. When tracing is on, the first
// traced surviving member is the batch leader: the execution subtree parents
// under its span (every span gets exactly one parent), and every other
// traced member gets a leaf "batch.exec" child covering the shared execution
// window.
func (e *Executor) runBatchJob(j *job) {
	req, hs := j.breq, j.hs
	*j = job{}
	e.jobs.Put(j)

	// Partition out members that aged past their deadline in the queue.
	live := make([]int, 0, len(hs))
	for i, h := range hs {
		if h.dl.Expired() {
			e.abandoned.Add(1)
			h.complete(nil, query.ErrDeadlineExceeded)
			e.completed.Add(1)
			continue
		}
		live = append(live, i)
	}
	if len(live) == 0 {
		return
	}
	if len(live) < len(hs) {
		sub := make([][]any, len(live))
		for k, i := range live {
			sub[k] = req.ArgSets[i]
		}
		req.ArgSets = sub
	}

	e.batches.Add(1)
	e.batched.Add(int64(len(live)))
	var leader *obs.Span
	var members []*obs.Span
	for _, i := range live {
		h := hs[i]
		if h.span == nil {
			continue
		}
		if leader == nil {
			leader = h.span
			continue
		}
		if members == nil {
			members = make([]*obs.Span, 0, len(live)-1)
		}
		members = append(members, h.span.Child("batch.exec"))
	}
	defer func() {
		for _, m := range members {
			m.End()
		}
	}()
	if e.runBatch == nil {
		// No set-oriented path configured: preserve semantics by running the
		// bindings one by one on this worker.
		for k, i := range live {
			r := query.Req(req.Name, req.SQL, req.ArgSets[k]).
				WithSpan(hs[i].span).WithSession(req.Session).WithDeadline(hs[i].dl)
			r.Consistency = req.Consistency
			res := e.run(r)
			hs[i].complete(res.Value, res.Err)
			e.completed.Add(1)
		}
		return
	}
	req.Span = leader
	br := e.runBatch(req)
	for k, i := range live {
		var v any
		var err error
		if k < len(br.Values) {
			v = br.Values[k]
		}
		if k < len(br.Errs) {
			err = br.Errs[k]
		}
		if err == nil && k >= len(br.Values) {
			err = errors.New("exec: batch runner returned too few results")
		}
		hs[i].complete(v, err)
		e.completed.Add(1)
	}
}
