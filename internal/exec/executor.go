// Package exec is the asynchronous client runtime: a fixed-size worker pool
// that plays the role of java.util.concurrent's Executor framework in the
// paper's rewritten programs (§VI). Submitted queries are queued and executed
// by the pool; Fetch blocks on the per-query handle (the observer model of
// §II).
//
// The hot path is allocation-lean: one allocation per Submit (the Handle the
// caller keeps). Job structs are pooled, the FIFO queue is a growable ring
// buffer instead of an append+reslice slice, handles signal completion
// through an embedded mutex/cond pair instead of a dedicated channel, and
// the statistics counters are atomics folded into the enqueue/dequeue path
// so observers can never see completed > submitted.
package exec

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("exec: executor closed")

// Runner executes one query; it is the bridge to the database client
// session (or any other request transport, e.g. a web-service client).
type Runner func(name, sql string, args []any) (any, error)

// Handle is a pending asynchronous request.
type Handle struct {
	mu   sync.Mutex
	cond sync.Cond
	done atomic.Bool
	val  any
	err  error
}

func newHandle() *Handle {
	h := &Handle{}
	h.cond.L = &h.mu
	return h
}

// newDoneHandle returns an already-completed handle (used by the degraded
// poolless service mode).
func newDoneHandle(v any, err error) *Handle {
	h := newHandle()
	h.complete(v, err)
	return h
}

// complete publishes the result and wakes all fetchers. val and err are
// written before the atomic done flag, so the lock-free fast path in Fetch
// observes them fully.
func (h *Handle) complete(v any, err error) {
	h.mu.Lock()
	h.val, h.err = v, err
	h.done.Store(true)
	h.mu.Unlock()
	h.cond.Broadcast()
}

// Fetch blocks until the request completes and returns its result. It may be
// called multiple times; subsequent calls return immediately.
func (h *Handle) Fetch() (any, error) {
	if h.done.Load() {
		return h.val, h.err
	}
	h.mu.Lock()
	for !h.done.Load() {
		h.cond.Wait()
	}
	h.mu.Unlock()
	return h.val, h.err
}

// Done reports (without blocking) whether the result is available — the
// polling side of the observer model.
func (h *Handle) Done() bool { return h.done.Load() }

type job struct {
	name string
	sql  string
	args []any
	h    *Handle
}

// jobRing is a growable FIFO ring buffer. Capacity is kept a power of two so
// indexing is a mask; pushes grow by doubling, so steady-state submission
// does no queue allocation at all.
type jobRing struct {
	buf  []*job
	head int
	n    int
}

func (q *jobRing) empty() bool { return q.n == 0 }

func (q *jobRing) push(j *job) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = j
	q.n++
}

func (q *jobRing) pop() *job {
	j := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return j
}

func (q *jobRing) grow() {
	newCap := 64
	if len(q.buf) > 0 {
		newCap = len(q.buf) * 2
	}
	nb := make([]*job, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}

// Executor is a fixed-size worker pool with an unbounded FIFO submission
// queue, so that submit loops never block regardless of the number of
// iterations (memory for pending state is the documented cost, §VII).
type Executor struct {
	run     Runner
	mu      sync.Mutex
	cond    sync.Cond
	queue   jobRing
	closed  bool
	workers int
	wg      sync.WaitGroup
	jobs    sync.Pool

	submitted atomic.Int64
	completed atomic.Int64
}

// NewExecutor starts a pool of the given size. workers is the paper's
// "number of threads" experimental parameter.
func NewExecutor(workers int, run Runner) *Executor {
	if workers < 1 {
		workers = 1
	}
	e := &Executor{run: run, workers: workers}
	e.cond.L = &e.mu
	e.jobs.New = func() any { return new(job) }
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Submit enqueues a request and returns its handle immediately. The
// submitted counter is incremented inside the queue critical section, before
// any worker can see the job, so Stats never observes completed > submitted.
func (e *Executor) Submit(name, sql string, args []any) (*Handle, error) {
	h := newHandle()
	j := e.jobs.Get().(*job)
	j.name, j.sql, j.args, j.h = name, sql, args, h
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		*j = job{}
		e.jobs.Put(j)
		return nil, ErrClosed
	}
	e.queue.push(j)
	e.submitted.Add(1)
	e.mu.Unlock()
	e.cond.Signal()
	return h, nil
}

// Stats returns the total submitted and completed request counts. The
// completed counter is loaded first: both are monotonic, so this order
// guarantees completed <= submitted in every observation.
func (e *Executor) Stats() (submitted, completed int64) {
	c := e.completed.Load()
	s := e.submitted.Load()
	return s, c
}

// Close drains the queue: pending requests still execute, then workers exit.
// It blocks until all workers have stopped.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for e.queue.empty() && !e.closed {
			e.cond.Wait()
		}
		if e.queue.empty() {
			e.mu.Unlock()
			return
		}
		j := e.queue.pop()
		e.mu.Unlock()

		v, err := e.run(j.name, j.sql, j.args)
		h := j.h
		*j = job{} // drop references before pooling
		e.jobs.Put(j)
		h.complete(v, err)
		e.completed.Add(1)
	}
}
