package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/query"
)

// Batcher is a coalescing submission front-end (see internal/batch): Submit
// hands back a pending handle immediately and groups requests into batch
// jobs behind the scenes; Close flushes anything still buffered and must
// complete every outstanding handle. The request's span rides the pending
// handle (picking up a "batch.wait" child covering fill + linger time) and
// its deadline bounds how long the request may linger.
type Batcher interface {
	Submit(req query.Request) (*Handle, error)
	Close()
}

// Service adapts an Executor (plus a synchronous runner for blocking calls)
// to the interpreter's QueryService. Blocking executeQuery calls run on the
// calling goroutine — exactly like the original JDBC programs — while
// submitQuery goes through the pool, optionally via a coalescing Batcher
// that turns bursts of submissions into set-oriented batch calls.
type Service struct {
	exec *Executor
	sync Runner

	bmu     sync.Mutex // guards batcher: Submit may race SetBatcher/Close
	batcher Batcher

	// tracer, when set by EnableTracing, mints one root span per Submit.
	tracer atomic.Pointer[obs.Tracer]

	closeOnce sync.Once
}

// NewService builds a query service. If workers is 0 the service supports
// only blocking execution (submissions fall back to synchronous runs),
// modelling an untransformed program's environment.
func NewService(workers int, run Runner) *Service {
	return NewBatchService(workers, run, nil)
}

// NewBatchService is NewService with a set-oriented batch path: batch jobs
// submitted through the executor (via a Batcher front-end, see SetBatcher)
// execute through runBatch in one call.
func NewBatchService(workers int, run Runner, runBatch BatchRunner) *Service {
	s := &Service{sync: run}
	if workers > 0 {
		s.exec = NewBatchExecutor(workers, run, runBatch)
	}
	return s
}

// Executor exposes the underlying pool (nil in degraded mode) so batching
// front-ends can enqueue batch jobs on it.
func (s *Service) Executor() *Executor { return s.exec }

// SetBatcher installs a coalescing front-end: subsequent Submit calls route
// through it. In degraded mode (no pool) the toggle is a no-op — submissions
// keep falling back to synchronous execution. Passing nil turns batching
// off again (without closing the previous batcher).
func (s *Service) SetBatcher(b Batcher) {
	if s.exec == nil {
		return
	}
	s.bmu.Lock()
	s.batcher = b
	s.bmu.Unlock()
}

// EnableTracing turns on per-request trace spans: every Submit opens a
// "request" root span that ends when the request completes, with queue
// wait, batch coalescing, and backend execution hanging off it. The span
// rides the request itself, so the configured runners carry it into the
// backend with no separate span-threading variants. Call before the first
// Submit you want traced.
func (s *Service) EnableTracing(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	s.tracer.Store(tr)
}

// Tracer returns the tracer installed by EnableTracing, or nil.
func (s *Service) Tracer() *obs.Tracer { return s.tracer.Load() }

// Exec implements interp.QueryService.
func (s *Service) Exec(name, sql string, args []interp.Value) (interp.Value, error) {
	return s.sync(query.Req(name, sql, args)).Pair()
}

// Submit implements interp.QueryService.
func (s *Service) Submit(name, sql string, args []interp.Value) (interp.Handle, error) {
	tr := s.tracer.Load()
	req := query.Req(name, sql, args)
	if s.exec == nil {
		// Degraded mode: run synchronously and wrap the result, so programs
		// transformed for asynchrony still run correctly with no pool.
		sp := tr.Start("request") // nil-safe: nil tracer mints nil span
		res := s.sync(req.WithSpan(sp))
		sp.End()
		return newDoneHandle(res.Value, res.Err), nil
	}
	if tr != nil {
		sp := tr.Start("request")
		sp.SetDetail(sql)
		req = req.WithSpan(sp)
	}
	s.bmu.Lock()
	b := s.batcher
	s.bmu.Unlock()
	var h *Handle
	var err error
	if b != nil {
		h, err = b.Submit(req)
	} else {
		h, err = s.exec.Submit(req)
	}
	if err != nil {
		req.Span.End() // the request never got a handle; close its root here
		return nil, err
	}
	return h, nil
}

// Close shuts down the batcher (flushing buffered submissions) and then the
// pool (if any), waiting for pending requests. Concurrent and repeated
// calls are safe: the batcher always finishes flushing before the executor
// closes, so pre-Close submissions still execute.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.bmu.Lock()
		b := s.batcher
		s.batcher = nil
		s.bmu.Unlock()
		if b != nil {
			b.Close()
		}
		if s.exec != nil {
			s.exec.Close()
		}
	})
}

// Stats proxies Executor.Stats; zero values when no pool exists.
func (s *Service) Stats() (submitted, completed int64) {
	if s.exec == nil {
		return 0, 0
	}
	return s.exec.Stats()
}

// BatchStats proxies Executor.BatchStats; zero values when no pool exists.
func (s *Service) BatchStats() (batchesIssued int64, avgBatchSize float64) {
	if s.exec == nil {
		return 0, 0
	}
	return s.exec.BatchStats()
}
