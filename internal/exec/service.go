package exec

import (
	"repro/internal/interp"
)

// Service adapts an Executor (plus a synchronous runner for blocking calls)
// to the interpreter's QueryService. Blocking executeQuery calls run on the
// calling goroutine — exactly like the original JDBC programs — while
// submitQuery goes through the pool.
type Service struct {
	exec *Executor
	sync Runner
}

// NewService builds a query service. If workers is 0 the service supports
// only blocking execution (submissions fail), modelling an untransformed
// program's environment.
func NewService(workers int, run Runner) *Service {
	s := &Service{sync: run}
	if workers > 0 {
		s.exec = NewExecutor(workers, run)
	}
	return s
}

// Exec implements interp.QueryService.
func (s *Service) Exec(name, sql string, args []interp.Value) (interp.Value, error) {
	return s.sync(name, sql, args)
}

// Submit implements interp.QueryService.
func (s *Service) Submit(name, sql string, args []interp.Value) (interp.Handle, error) {
	if s.exec == nil {
		// Degraded mode: run synchronously and wrap the result, so programs
		// transformed for asynchrony still run correctly with no pool.
		v, err := s.sync(name, sql, args)
		return newDoneHandle(v, err), nil
	}
	return s.exec.Submit(name, sql, args)
}

// Close shuts down the pool (if any), waiting for pending requests.
func (s *Service) Close() {
	if s.exec != nil {
		s.exec.Close()
	}
}

// Stats proxies Executor.Stats; zero values when no pool exists.
func (s *Service) Stats() (submitted, completed int64) {
	if s.exec == nil {
		return 0, 0
	}
	return s.exec.Stats()
}
