package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
)

func TestSubmitFetch(t *testing.T) {
	e := NewExecutor(4, func(req query.Request) query.Result {
		return query.Ok(req.Args[0].(int64) * 2)
	})
	defer e.Close()
	var handles []*Handle
	for i := int64(0); i < 100; i++ {
		h, err := e.Submit(query.Req("q", "", []any{i}))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		v, err := h.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i*2) {
			t.Fatalf("handle %d: got %v", i, v)
		}
	}
	sub, comp := e.Stats()
	if sub != 100 || comp != 100 {
		t.Fatalf("stats %d/%d", sub, comp)
	}
}

func TestFetchIdempotent(t *testing.T) {
	e := NewExecutor(1, func(req query.Request) query.Result { return query.Ok(int64(7)) })
	defer e.Close()
	h, _ := e.Submit(query.Req("q", "", nil))
	for i := 0; i < 3; i++ {
		v, err := h.Fetch()
		if err != nil || v != int64(7) {
			t.Fatalf("fetch %d: %v %v", i, v, err)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	want := errors.New("boom")
	e := NewExecutor(2, func(req query.Request) query.Result { return query.Fail(want) })
	defer e.Close()
	h, _ := e.Submit(query.Req("q", "", nil))
	if _, err := h.Fetch(); !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	var cur, maxSeen atomic.Int64
	e := NewExecutor(workers, func(req query.Request) query.Result {
		n := cur.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return query.Ok(nil)
	})
	var hs []*Handle
	for i := 0; i < 30; i++ {
		h, _ := e.Submit(query.Req("q", "", nil))
		hs = append(hs, h)
	}
	for _, h := range hs {
		h.Fetch()
	}
	e.Close()
	if maxSeen.Load() > workers {
		t.Fatalf("concurrency %d exceeded pool size %d", maxSeen.Load(), workers)
	}
	if maxSeen.Load() < 2 {
		t.Fatalf("pool never ran concurrently (max %d)", maxSeen.Load())
	}
}

func TestSubmitNeverBlocks(t *testing.T) {
	block := make(chan struct{})
	e := NewExecutor(1, func(req query.Request) query.Result {
		<-block
		return query.Ok(nil)
	})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			if _, err := e.Submit(query.Req("q", "", nil)); err != nil {
				t.Error(err)
				break
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submissions blocked despite unbounded queue")
	}
	close(block)
	e.Close()
}

func TestCloseDrains(t *testing.T) {
	var completed atomic.Int64
	e := NewExecutor(2, func(req query.Request) query.Result {
		time.Sleep(time.Millisecond)
		completed.Add(1)
		return query.Ok(nil)
	})
	for i := 0; i < 20; i++ {
		e.Submit(query.Req("q", "", nil))
	}
	e.Close()
	if completed.Load() != 20 {
		t.Fatalf("close did not drain: %d/20", completed.Load())
	}
	if _, err := e.Submit(query.Req("q", "", nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestDone(t *testing.T) {
	block := make(chan struct{})
	e := NewExecutor(1, func(req query.Request) query.Result {
		<-block
		return query.Ok(int64(1))
	})
	defer e.Close()
	h, _ := e.Submit(query.Req("q", "", nil))
	if h.Done() {
		t.Fatal("done before completion")
	}
	close(block)
	h.Fetch()
	if !h.Done() {
		t.Fatal("not done after fetch")
	}
}

func TestFIFOOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int64
	e := NewExecutor(1, func(req query.Request) query.Result {
		mu.Lock()
		order = append(order, req.Args[0].(int64))
		mu.Unlock()
		return query.Ok(nil)
	})
	var hs []*Handle
	for i := int64(0); i < 50; i++ {
		h, _ := e.Submit(query.Req("q", "", []any{i}))
		hs = append(hs, h)
	}
	for _, h := range hs {
		h.Fetch()
	}
	e.Close()
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("single worker must preserve FIFO: %v", order)
		}
	}
}

func TestServiceDegradedMode(t *testing.T) {
	s := NewService(0, func(req query.Request) query.Result { return query.Ok(int64(9)) })
	defer s.Close()
	h, err := s.Submit("q", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.Fetch()
	if err != nil || v != int64(9) {
		t.Fatalf("degraded submit: %v %v", v, err)
	}
}

func TestServiceExec(t *testing.T) {
	s := NewService(2, func(req query.Request) query.Result {
		return query.Ok(fmt.Sprintf("%s:%v", req.Name, req.Args[0]))
	})
	defer s.Close()
	v, err := s.Exec("q", "", []any{int64(3)})
	if err != nil || v != "q:3" {
		t.Fatalf("exec: %v %v", v, err)
	}
}

// --- Close shutdown semantics ---

// TestClosePendingHandlesComplete: Close drains, so every handle obtained
// before Close must complete with its real result — Fetch never blocks
// forever and never observes a lost request.
func TestClosePendingHandlesComplete(t *testing.T) {
	e := NewExecutor(2, func(req query.Request) query.Result {
		time.Sleep(200 * time.Microsecond)
		return query.Ok(req.Args[0])
	})
	var hs []*Handle
	for i := int64(0); i < 200; i++ {
		h, err := e.Submit(query.Req("q", "", []any{i}))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, h := range hs {
			v, err := h.Fetch()
			if err != nil {
				t.Errorf("handle %d failed: %v", i, err)
				return
			}
			if v != int64(i) {
				t.Errorf("handle %d: got %v", i, v)
				return
			}
		}
	}()
	for _, ch := range []chan struct{}{done, closed} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("Fetch or Close blocked past the drain")
		}
	}
}

// TestConcurrentCloseIdempotent: racing Closes and Submits never deadlock;
// every successfully submitted handle completes.
func TestConcurrentCloseIdempotent(t *testing.T) {
	e := NewExecutor(3, func(req query.Request) query.Result { return query.Ok(int64(1)) })
	var wg sync.WaitGroup
	results := make(chan *Handle, 1000)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h, err := e.Submit(query.Req("q", "", nil))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("unexpected submit error: %v", err)
					}
					return
				}
				results <- h
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	wg.Wait()
	close(results)
	deadline := time.After(10 * time.Second)
	for h := range results {
		fetched := make(chan struct{})
		go func(h *Handle) { h.Fetch(); close(fetched) }(h)
		select {
		case <-fetched:
		case <-deadline:
			t.Fatal("a submitted handle never completed after Close")
		}
	}
}

// TestCloseNoGoroutineLeak: after Close returns, the pool's workers are
// gone. Run with -race to catch teardown races.
func TestCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		e := NewExecutor(8, func(req query.Request) query.Result { return query.Ok(nil) })
		for i := 0; i < 50; i++ {
			e.Submit(query.Req("q", "", nil))
		}
		e.Close()
	}
	// The workers exit asynchronously of wg.Wait observers only in the sense
	// of scheduling; give the runtime a moment to reap them.
	var after int
	for i := 0; i < 100; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after closing 10 pools", before, after)
}

// TestSubmitBatchAfterClose: batch submissions are rejected once closed and
// the caller keeps ownership of the (uncompleted) handles.
func TestSubmitBatchAfterClose(t *testing.T) {
	e := NewExecutor(1, func(req query.Request) query.Result { return query.Ok(nil) })
	e.Close()
	h := NewPendingHandle(nil, query.Deadline{})
	err := e.SubmitBatch(query.BatchReq("q", "", [][]any{{int64(1)}}), []*Handle{h})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if h.Done() {
		t.Fatal("rejected batch must not complete the caller's handles")
	}
}

// TestCloseDrainsBatchJobs: batch jobs queued before Close still execute.
func TestCloseDrainsBatchJobs(t *testing.T) {
	var ran atomic.Int64
	e := NewBatchExecutor(1, nil, func(req query.BatchRequest) query.BatchResult {
		time.Sleep(time.Millisecond)
		ran.Add(int64(len(req.ArgSets)))
		return query.BatchResult{Values: make([]any, len(req.ArgSets)), Errs: make([]error, len(req.ArgSets))}
	})
	var hs []*Handle
	for b := 0; b < 5; b++ {
		pair := []*Handle{NewPendingHandle(nil, query.Deadline{}), NewPendingHandle(nil, query.Deadline{})}
		if err := e.SubmitBatch(query.BatchReq("q", "", [][]any{{int64(b)}, {int64(b)}}), pair); err != nil {
			t.Fatal(err)
		}
		hs = append(hs, pair...)
	}
	e.Close()
	if ran.Load() != 10 {
		t.Fatalf("close did not drain batch jobs: %d/10", ran.Load())
	}
	for i, h := range hs {
		if !h.Done() {
			t.Fatalf("handle %d not completed by drain", i)
		}
	}
	sub, comp := e.Stats()
	if sub != 10 || comp != 10 {
		t.Fatalf("stats %d/%d, want 10/10", sub, comp)
	}
}

// --- Degraded mode (workers == 0) ---

// panicBatcher fails the test if the service ever routes through it.
type panicBatcher struct{ t *testing.T }

func (p panicBatcher) Submit(req query.Request) (*Handle, error) {
	p.t.Error("degraded service must not use the batcher")
	return nil, ErrClosed
}
func (p panicBatcher) Close() {}

// TestServiceDegradedModeSyncFallback: with no pool, Submit executes
// synchronously via an already-done handle, and the batching toggle is a
// no-op.
func TestServiceDegradedModeSyncFallback(t *testing.T) {
	var calls atomic.Int64
	s := NewService(0, func(req query.Request) query.Result {
		calls.Add(1)
		return query.Ok(req.Args[0].(int64) * 3)
	})
	defer s.Close()
	s.SetBatcher(panicBatcher{t}) // must be ignored: no pool

	h, err := s.Submit("q", "", []any{int64(5)})
	if err != nil {
		t.Fatal(err)
	}
	// The handle must already be complete: degraded Submit runs inline.
	if !h.(*Handle).Done() {
		t.Fatal("degraded submit returned a pending handle")
	}
	if v, err := h.Fetch(); err != nil || v != int64(15) {
		t.Fatalf("fetch: %v %v", v, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("sync runner ran %d times, want 1", calls.Load())
	}
	if s.Executor() != nil {
		t.Fatal("degraded service must have no pool")
	}
	if b, avg := s.BatchStats(); b != 0 || avg != 0 {
		t.Fatalf("degraded BatchStats = %d, %.2f", b, avg)
	}
}

// TestServiceDegradedModeErrorPropagates: the synchronous fallback carries
// the runner's error through the handle, like the pooled path.
func TestServiceDegradedModeErrorPropagates(t *testing.T) {
	want := errors.New("kaput")
	s := NewService(0, func(req query.Request) query.Result { return query.Fail(want) })
	defer s.Close()
	h, err := s.Submit("q", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fetch(); !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

// TestServiceConcurrentClose: racing Service.Close calls must serialize —
// the second caller waits for the full shutdown instead of closing the
// executor under a batcher that is still flushing.
func TestServiceConcurrentClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := NewService(2, func(req query.Request) query.Result { return query.Ok(int64(1)) })
		h, err := s.Submit("q", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Close()
			}()
		}
		wg.Wait()
		if v, err := h.Fetch(); err != nil || v != int64(1) {
			t.Fatalf("round %d: pre-Close submission lost: (%v, %v)", round, v, err)
		}
	}
}
