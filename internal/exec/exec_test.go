package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitFetch(t *testing.T) {
	e := NewExecutor(4, func(name, sql string, args []any) (any, error) {
		return args[0].(int64) * 2, nil
	})
	defer e.Close()
	var handles []*Handle
	for i := int64(0); i < 100; i++ {
		h, err := e.Submit("q", "", []any{i})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		v, err := h.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i*2) {
			t.Fatalf("handle %d: got %v", i, v)
		}
	}
	sub, comp := e.Stats()
	if sub != 100 || comp != 100 {
		t.Fatalf("stats %d/%d", sub, comp)
	}
}

func TestFetchIdempotent(t *testing.T) {
	e := NewExecutor(1, func(name, sql string, args []any) (any, error) { return int64(7), nil })
	defer e.Close()
	h, _ := e.Submit("q", "", nil)
	for i := 0; i < 3; i++ {
		v, err := h.Fetch()
		if err != nil || v != int64(7) {
			t.Fatalf("fetch %d: %v %v", i, v, err)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	want := errors.New("boom")
	e := NewExecutor(2, func(name, sql string, args []any) (any, error) { return nil, want })
	defer e.Close()
	h, _ := e.Submit("q", "", nil)
	if _, err := h.Fetch(); !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	var cur, maxSeen atomic.Int64
	e := NewExecutor(workers, func(name, sql string, args []any) (any, error) {
		n := cur.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return nil, nil
	})
	var hs []*Handle
	for i := 0; i < 30; i++ {
		h, _ := e.Submit("q", "", nil)
		hs = append(hs, h)
	}
	for _, h := range hs {
		h.Fetch()
	}
	e.Close()
	if maxSeen.Load() > workers {
		t.Fatalf("concurrency %d exceeded pool size %d", maxSeen.Load(), workers)
	}
	if maxSeen.Load() < 2 {
		t.Fatalf("pool never ran concurrently (max %d)", maxSeen.Load())
	}
}

func TestSubmitNeverBlocks(t *testing.T) {
	block := make(chan struct{})
	e := NewExecutor(1, func(name, sql string, args []any) (any, error) {
		<-block
		return nil, nil
	})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10_000; i++ {
			if _, err := e.Submit("q", "", nil); err != nil {
				t.Error(err)
				break
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submissions blocked despite unbounded queue")
	}
	close(block)
	e.Close()
}

func TestCloseDrains(t *testing.T) {
	var completed atomic.Int64
	e := NewExecutor(2, func(name, sql string, args []any) (any, error) {
		time.Sleep(time.Millisecond)
		completed.Add(1)
		return nil, nil
	})
	for i := 0; i < 20; i++ {
		e.Submit("q", "", nil)
	}
	e.Close()
	if completed.Load() != 20 {
		t.Fatalf("close did not drain: %d/20", completed.Load())
	}
	if _, err := e.Submit("q", "", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestDone(t *testing.T) {
	block := make(chan struct{})
	e := NewExecutor(1, func(name, sql string, args []any) (any, error) {
		<-block
		return int64(1), nil
	})
	defer e.Close()
	h, _ := e.Submit("q", "", nil)
	if h.Done() {
		t.Fatal("done before completion")
	}
	close(block)
	h.Fetch()
	if !h.Done() {
		t.Fatal("not done after fetch")
	}
}

func TestFIFOOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int64
	e := NewExecutor(1, func(name, sql string, args []any) (any, error) {
		mu.Lock()
		order = append(order, args[0].(int64))
		mu.Unlock()
		return nil, nil
	})
	var hs []*Handle
	for i := int64(0); i < 50; i++ {
		h, _ := e.Submit("q", "", []any{i})
		hs = append(hs, h)
	}
	for _, h := range hs {
		h.Fetch()
	}
	e.Close()
	for i, v := range order {
		if v != int64(i) {
			t.Fatalf("single worker must preserve FIFO: %v", order)
		}
	}
}

func TestServiceDegradedMode(t *testing.T) {
	s := NewService(0, func(name, sql string, args []any) (any, error) { return int64(9), nil })
	defer s.Close()
	h, err := s.Submit("q", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.Fetch()
	if err != nil || v != int64(9) {
		t.Fatalf("degraded submit: %v %v", v, err)
	}
}

func TestServiceExec(t *testing.T) {
	s := NewService(2, func(name, sql string, args []any) (any, error) {
		return fmt.Sprintf("%s:%v", name, args[0]), nil
	})
	defer s.Close()
	v, err := s.Exec("q", "", []any{int64(3)})
	if err != nil || v != "q:3" {
		t.Fatalf("exec: %v %v", v, err)
	}
}
