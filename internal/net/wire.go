// Package net is the network front door: a length-prefixed binary wire
// protocol over TCP that carries the internal/query Request/Result pairs
// between a client process and a server process. The client side
// (Client) implements query.Executor, so a transformed program moves from
// an in-process stack to a remote one by swapping the Executor it hands
// to the runtime — exactly the portability argument the Request redesign
// was made for. The server side (Server) fronts any query.Executor —
// a bare server.Server, a shard.Router, a replica.Group, or the whole
// stack — with per-connection sessions, per-request deadlines, and
// admission control that sheds load with query.ErrOverloaded instead of
// queueing without bound.
//
// See README.md for the frame format, versioning and the deadline /
// overload semantics the protocol promises.
package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/interp"
	"repro/internal/query"
)

// Protocol constants. Version bumps whenever the frame or value encoding
// changes incompatibly; the handshake rejects mismatches up front so a
// stale client fails with a clear error instead of a mid-stream decode
// error.
const (
	// Magic opens every hello frame: "ASQW" (asynchronous query wire).
	Magic uint32 = 0x41535157
	// Version is the protocol version this build speaks.
	Version uint16 = 1
	// MaxFrame bounds a single frame's payload. Large result sets are the
	// legitimate case (a full-scan read returns its rows in one frame);
	// anything beyond this is a corrupt length prefix, and rejecting it
	// keeps a bad frame from making the reader allocate gigabytes.
	MaxFrame = 64 << 20
)

// Frame types.
const (
	// MsgHello / MsgHelloAck are the versioned handshake: the client sends
	// hello (magic + its version), the server answers helloAck (its
	// version) or closes the connection.
	MsgHello byte = iota + 1
	MsgHelloAck
	// MsgExec / MsgExecBatch carry one Request / BatchRequest.
	MsgExec
	MsgExecBatch
	// MsgResult / MsgBatchResult carry the matching responses.
	MsgResult
	MsgBatchResult
)

// Error codes on result frames. Sentinel errors cross the wire as codes —
// not text — so errors.Is works on the client side; every other error is
// carried as its exact text, which keeps remote error output byte-identical
// to in-process runs.
const (
	errNone byte = iota
	errGeneric
	errOverloaded
	errDeadline
	errConnLost
)

// Value tags. The mini-language's runtime values are closed (nil, int64,
// string, bool, lists, rows), so the codec enumerates them instead of
// shipping a reflective encoding.
const (
	tagNil byte = iota
	tagInt
	tagString
	tagBool
	tagList
	tagRow
	tagRows
)

// ErrBadFrame reports a malformed or oversized frame.
var ErrBadFrame = errors.New("net: malformed frame")

// ErrVersionMismatch reports a failed handshake.
var ErrVersionMismatch = errors.New("net: protocol version mismatch")

// WriteFrame writes one [u32 length][type byte][payload] frame.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("%w: %d byte payload exceeds MaxFrame", ErrBadFrame, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, returning its type and payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// --- primitive encoders on a byte buffer ---

func putUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func putVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// reader decodes primitives off a payload slice with a sticky error, so
// message decoders read fields linearly and check once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s", ErrBadFrame, what)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail("string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("byte")
		return 0
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// count reads a collection length and sanity-bounds it against the bytes
// that remain: each element costs at least one byte on the wire, so a
// length beyond len(r.b) is a corrupt frame, not a huge allocation.
func (r *reader) count(what string) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

// --- value codec ---

// AppendValue encodes one runtime value. The value domain is the
// mini-language's: nil, int64, string, bool, *interp.List, interp.Row,
// interp.Rows. Anything else is an encoding error — the front door refuses
// to silently stringify a value the other side could not reconstruct.
func AppendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case int64:
		return putVarint(append(b, tagInt), x), nil
	case string:
		return putString(append(b, tagString), x), nil
	case bool:
		return putBool(append(b, tagBool), x), nil
	case *interp.List:
		b = putUvarint(append(b, tagList), uint64(len(x.Items)))
		var err error
		for _, it := range x.Items {
			if b, err = AppendValue(b, it); err != nil {
				return nil, err
			}
		}
		return b, nil
	case interp.Row:
		return appendRow(append(b, tagRow), x)
	case interp.Rows:
		return appendRows(append(b, tagRows), x)
	default:
		return nil, fmt.Errorf("net: cannot encode %T", v)
	}
}

// appendRow writes a row as sorted (key, value) pairs — sorted so the
// encoding is deterministic, matching the deterministic Format order the
// differential harness compares.
func appendRow(b []byte, row interp.Row) ([]byte, error) {
	keys := sortedRowKeys(row)
	b = putUvarint(b, uint64(len(keys)))
	var err error
	for _, k := range keys {
		b = putString(b, k)
		if b, err = AppendValue(b, row[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendRows writes a result set. The common case — every row shares the
// same columns — is encoded columnar: the sorted key set once, then values
// row-major, which is the batch-aware encode that keeps wide result sets
// from repeating column names per row. Heterogeneous row sets fall back to
// per-row encoding.
func appendRows(b []byte, rows interp.Rows) ([]byte, error) {
	b = putUvarint(b, uint64(len(rows)))
	if len(rows) == 0 {
		return b, nil
	}
	keys := sortedRowKeys(rows[0])
	shared := true
	for _, row := range rows[1:] {
		if !sameKeys(row, keys) {
			shared = false
			break
		}
	}
	var err error
	if shared {
		b = append(b, 1) // columnar: shared sorted key set
		b = putUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = putString(b, k)
		}
		for _, row := range rows {
			for _, k := range keys {
				if b, err = AppendValue(b, row[k]); err != nil {
					return nil, err
				}
			}
		}
		return b, nil
	}
	b = append(b, 0) // row-major fallback: each row carries its keys
	for _, row := range rows {
		if b, err = appendRow(b, row); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func sortedRowKeys(row interp.Row) []string {
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(row interp.Row, keys []string) bool {
	if len(row) != len(keys) {
		return false
	}
	for _, k := range keys {
		if _, ok := row[k]; !ok {
			return false
		}
	}
	return true
}

func (r *reader) value() any {
	switch tag := r.byte(); tag {
	case tagNil:
		return nil
	case tagInt:
		return r.varint()
	case tagString:
		return r.string()
	case tagBool:
		return r.bool()
	case tagList:
		n := r.count("list")
		items := make([]any, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			items = append(items, r.value())
		}
		return &interp.List{Items: items}
	case tagRow:
		return r.row()
	case tagRows:
		return r.rows()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: unknown value tag %d", ErrBadFrame, tag)
		}
		return nil
	}
}

func (r *reader) row() interp.Row {
	n := r.count("row")
	row := make(interp.Row, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.string()
		row[k] = r.value()
	}
	return row
}

func (r *reader) rows() interp.Rows {
	n := r.count("rows")
	if n == 0 {
		return interp.Rows{}
	}
	rows := make(interp.Rows, 0, n)
	if r.bool() { // columnar
		nk := r.count("columns")
		keys := make([]string, nk)
		for i := range keys {
			keys[i] = r.string()
		}
		for i := 0; i < n && r.err == nil; i++ {
			row := make(interp.Row, nk)
			for _, k := range keys {
				row[k] = r.value()
			}
			rows = append(rows, row)
		}
		return rows
	}
	for i := 0; i < n && r.err == nil; i++ {
		rows = append(rows, r.row())
	}
	return rows
}

// --- request / response codecs ---

// EncodeHello builds the client's opening frame payload.
func EncodeHello() []byte {
	b := make([]byte, 0, 6)
	b = binary.BigEndian.AppendUint32(b, Magic)
	return binary.BigEndian.AppendUint16(b, Version)
}

// DecodeHello validates a hello payload and returns the peer version.
func DecodeHello(b []byte) (uint16, error) {
	if len(b) != 6 || binary.BigEndian.Uint32(b[:4]) != Magic {
		return 0, fmt.Errorf("%w: bad hello", ErrBadFrame)
	}
	return binary.BigEndian.Uint16(b[4:6]), nil
}

// EncodeHelloAck builds the server's handshake answer.
func EncodeHelloAck() []byte {
	return binary.BigEndian.AppendUint16(nil, Version)
}

// DecodeHelloAck returns the server's version.
func DecodeHelloAck(b []byte) (uint16, error) {
	if len(b) != 2 {
		return 0, fmt.Errorf("%w: bad helloAck", ErrBadFrame)
	}
	return binary.BigEndian.Uint16(b), nil
}

// EncodeExec encodes a Request under reqID. Span and Session do not cross
// the wire: tracing is per-process, and the session is the connection (the
// server binds one session to each accepted conn). The deadline crosses as
// an absolute unix-nanosecond instant (0 = none), so it keeps meaning
// regardless of queueing on either side.
func EncodeExec(reqID uint64, req query.Request) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, reqID)
	b = putVarint(b, req.Deadline.UnixNanos())
	b = append(b, byte(req.Consistency))
	b = putString(b, req.Name)
	b = putString(b, req.SQL)
	b = putUvarint(b, uint64(len(req.Args)))
	var err error
	for _, a := range req.Args {
		if b, err = AppendValue(b, a); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeExec decodes a MsgExec payload.
func DecodeExec(b []byte) (uint64, query.Request, error) {
	r := &reader{b: b}
	id := r.u64()
	req := query.Request{
		Deadline:    query.FromUnixNanos(r.varint()),
		Consistency: query.Consistency(r.byte()),
	}
	req.Name = r.string()
	req.SQL = r.string()
	n := r.count("args")
	if n > 0 {
		req.Args = make([]any, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			req.Args = append(req.Args, r.value())
		}
	}
	return id, req, r.err
}

// EncodeExecBatch encodes a BatchRequest under reqID.
func EncodeExecBatch(reqID uint64, req query.BatchRequest) ([]byte, error) {
	b := make([]byte, 0, 128)
	b = binary.BigEndian.AppendUint64(b, reqID)
	b = putVarint(b, req.Deadline.UnixNanos())
	b = append(b, byte(req.Consistency))
	b = putString(b, req.Name)
	b = putString(b, req.SQL)
	b = putUvarint(b, uint64(len(req.ArgSets)))
	var err error
	for _, set := range req.ArgSets {
		b = putUvarint(b, uint64(len(set)))
		for _, a := range set {
			if b, err = AppendValue(b, a); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// DecodeExecBatch decodes a MsgExecBatch payload.
func DecodeExecBatch(b []byte) (uint64, query.BatchRequest, error) {
	r := &reader{b: b}
	id := r.u64()
	req := query.BatchRequest{
		Deadline:    query.FromUnixNanos(r.varint()),
		Consistency: query.Consistency(r.byte()),
	}
	req.Name = r.string()
	req.SQL = r.string()
	n := r.count("argsets")
	req.ArgSets = make([][]any, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m := r.count("argset")
		set := make([]any, 0, m)
		for j := 0; j < m && r.err == nil; j++ {
			set = append(set, r.value())
		}
		req.ArgSets = append(req.ArgSets, set)
	}
	return id, req, r.err
}

// appendErr writes one error slot: a code byte, plus the text for generic
// errors. Sentinels travel as codes so errors.Is holds across the wire.
func appendErr(b []byte, err error) []byte {
	switch {
	case err == nil:
		return append(b, errNone)
	case errors.Is(err, query.ErrOverloaded):
		return append(b, errOverloaded)
	case errors.Is(err, query.ErrDeadlineExceeded):
		return append(b, errDeadline)
	case errors.Is(err, query.ErrConnLost):
		// A proxying backend lost *its* upstream connection; the sentinel
		// survives the hop so the far client can apply its retry contract.
		return append(b, errConnLost)
	default:
		return putString(append(b, errGeneric), err.Error())
	}
}

func (r *reader) errSlot() error {
	switch code := r.byte(); code {
	case errNone:
		return nil
	case errGeneric:
		return errors.New(r.string())
	case errOverloaded:
		return query.ErrOverloaded
	case errDeadline:
		return query.ErrDeadlineExceeded
	case errConnLost:
		return query.ErrConnLost
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: unknown error code %d", ErrBadFrame, code)
		}
		return nil
	}
}

// EncodeResult encodes one Result under reqID. Info stays server-side: the
// page/row accounting belongs to the execution stack, not the client API
// (the front door's observable surface is value + error).
func EncodeResult(reqID uint64, res query.Result) ([]byte, error) {
	b := make([]byte, 0, 32)
	b = binary.BigEndian.AppendUint64(b, reqID)
	b = appendErr(b, res.Err)
	if res.Err != nil {
		return b, nil
	}
	return AppendValue(b, res.Value)
}

// DecodeResult decodes a MsgResult payload.
func DecodeResult(b []byte) (uint64, query.Result, error) {
	r := &reader{b: b}
	id := r.u64()
	res := query.Result{Err: r.errSlot()}
	if res.Err == nil && r.err == nil {
		res.Value = r.value()
	}
	return id, res, r.err
}

// EncodeBatchResult encodes one BatchResult under reqID.
func EncodeBatchResult(reqID uint64, res query.BatchResult) ([]byte, error) {
	if len(res.Values) != len(res.Errs) {
		return nil, fmt.Errorf("net: batch result shape: %d values, %d errs",
			len(res.Values), len(res.Errs))
	}
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint64(b, reqID)
	b = putUvarint(b, uint64(len(res.Values)))
	var err error
	for i := range res.Values {
		b = appendErr(b, res.Errs[i])
		if res.Errs[i] != nil {
			continue
		}
		if b, err = AppendValue(b, res.Values[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeBatchResult decodes a MsgBatchResult payload.
func DecodeBatchResult(b []byte) (uint64, query.BatchResult, error) {
	r := &reader{b: b}
	id := r.u64()
	n := r.count("batch result")
	res := query.BatchResult{Values: make([]any, n), Errs: make([]error, n)}
	for i := 0; i < n && r.err == nil; i++ {
		res.Errs[i] = r.errSlot()
		if res.Errs[i] == nil && r.err == nil {
			res.Values[i] = r.value()
		}
	}
	return id, res, r.err
}
