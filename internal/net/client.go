package net

import (
	"errors"
	"fmt"
	stdnet "net"
	"sync"
	"time"

	"repro/internal/query"
)

// ErrClientClosed is returned for requests issued after Close, and for
// requests in flight when the connection dies without an answer.
var ErrClientClosed = errors.New("net: client closed")

// Client is one wire-protocol connection. It implements query.Executor,
// so the whole client runtime — exec.Service, batch.Coalescer, the
// interpreter — runs against a remote server by handing it a Client where
// it previously took a server.Exec closure. Requests are pipelined: many
// goroutines may call Exec/ExecBatch concurrently on one connection, each
// response is matched to its caller by request id.
type Client struct {
	conn stdnet.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error // terminal connection error, set once

	readerDone chan struct{}
}

type response struct {
	msgType byte
	payload []byte
}

// Dial connects to a front door and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := stdnet.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, MsgHello, EncodeHello()); err != nil {
		conn.Close()
		return nil, err
	}
	msgType, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: handshake refused", ErrVersionMismatch)
	}
	if msgType != MsgHelloAck {
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected frame %d", ErrBadFrame, msgType)
	}
	ver, err := DecodeHelloAck(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ver != Version {
		conn.Close()
		return nil, fmt.Errorf("%w: server speaks v%d, client v%d", ErrVersionMismatch, ver, Version)
	}
	c := &Client{
		conn:       conn,
		pending:    map[uint64]chan response{},
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop dispatches response frames to their waiting requests. On any
// read error it fails every pending request: a dead connection never
// leaves a caller blocked.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		msgType, payload, err := ReadFrame(c.conn)
		if err != nil {
			c.failAll(ErrClientClosed)
			return
		}
		if msgType != MsgResult && msgType != MsgBatchResult {
			c.failAll(fmt.Errorf("%w: unexpected frame %d", ErrBadFrame, msgType))
			c.conn.Close()
			return
		}
		if len(payload) < 8 {
			c.failAll(ErrBadFrame)
			c.conn.Close()
			return
		}
		id := (&reader{b: payload}).u64()
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- response{msgType, payload} // buffered: never blocks the loop
		}
		// Unknown ids are responses to requests the caller abandoned at
		// their deadline; the frame is simply dropped.
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pend := c.pending
	c.pending = map[uint64]chan response{}
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch) // a closed channel reads the zero response = connection error
	}
}

// register allocates a request id and its response slot.
func (c *Client) register() (uint64, chan response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan response, 1)
	c.pending[id] = ch
	return id, ch, nil
}

// abandon forgets a request the caller gave up on (deadline expiry). The
// server's eventual response frame is dropped by the read loop.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// send writes one request frame.
func (c *Client) send(msgType byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.conn, msgType, payload)
}

// await blocks for the response, bounded by the request deadline. At the
// deadline the request is abandoned locally — the server may still execute
// it, but this caller gets exactly one answer: ErrDeadlineExceeded.
func (c *Client) await(id uint64, ch chan response, dl query.Deadline) (response, error) {
	var timeout <-chan time.Time
	if t, ok := dl.Time(); ok {
		timer := time.NewTimer(time.Until(t))
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, ErrClientClosed
		}
		return resp, nil
	case <-timeout:
		c.abandon(id)
		// The response may have raced the timer; prefer it if already here.
		select {
		case resp, ok := <-ch:
			if ok {
				return resp, nil
			}
		default:
		}
		return response{}, query.ErrDeadlineExceeded
	}
}

// Exec implements query.Executor over the wire. The request's Span and
// Session stay client-side (the server binds its own per-connection
// session); Name, SQL, Args, Consistency and Deadline cross.
func (c *Client) Exec(req query.Request) query.Result {
	if req.Deadline.Expired() {
		return query.Fail(query.ErrDeadlineExceeded)
	}
	id, ch, err := c.register()
	if err != nil {
		return query.Fail(err)
	}
	payload, err := EncodeExec(id, req)
	if err != nil {
		c.abandon(id)
		return query.Fail(err)
	}
	sp := req.Span.Child("net.roundtrip") // nil-safe
	defer sp.End()
	if err := c.send(MsgExec, payload); err != nil {
		c.abandon(id)
		return query.Fail(fmt.Errorf("net: send: %w", err))
	}
	resp, err := c.await(id, ch, req.Deadline)
	if err != nil {
		return query.Fail(err)
	}
	if resp.msgType != MsgResult {
		return query.Fail(fmt.Errorf("%w: batch response to Exec", ErrBadFrame))
	}
	_, res, err := DecodeResult(resp.payload)
	if err != nil {
		return query.Fail(err)
	}
	return res
}

// ExecBatch implements the set-oriented half of query.Executor.
func (c *Client) ExecBatch(req query.BatchRequest) query.BatchResult {
	n := len(req.ArgSets)
	if req.Deadline.Expired() {
		return query.FailAll(n, query.ErrDeadlineExceeded)
	}
	id, ch, err := c.register()
	if err != nil {
		return query.FailAll(n, err)
	}
	payload, err := EncodeExecBatch(id, req)
	if err != nil {
		c.abandon(id)
		return query.FailAll(n, err)
	}
	sp := req.Span.Child("net.roundtrip")
	defer sp.End()
	if err := c.send(MsgExecBatch, payload); err != nil {
		c.abandon(id)
		return query.FailAll(n, fmt.Errorf("net: send: %w", err))
	}
	resp, err := c.await(id, ch, req.Deadline)
	if err != nil {
		return query.FailAll(n, err)
	}
	if resp.msgType != MsgBatchResult {
		return query.FailAll(n, fmt.Errorf("%w: scalar response to ExecBatch", ErrBadFrame))
	}
	_, res, err := DecodeBatchResult(resp.payload)
	if err != nil {
		return query.FailAll(n, err)
	}
	if len(res.Errs) != n {
		return query.FailAll(n, fmt.Errorf("%w: batch result arity %d, want %d", ErrBadFrame, len(res.Errs), n))
	}
	return res
}

// Close tears down the connection; in-flight requests fail with
// ErrClientClosed. Safe to call more than once.
func (c *Client) Close() {
	c.conn.Close()
	<-c.readerDone
}
