package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	stdnet "net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/query"
	"repro/internal/sqlmini"
)

// ErrClientClosed is returned for requests issued after Close, and for
// requests in flight when the caller closes the client under them. A
// connection that dies on its own fails requests with query.ErrConnLost
// instead — the retryable sentinel.
var ErrClientClosed = errors.New("net: client closed")

// errUnsent classifies connection losses where the request's frame never
// completely left this process: the server cannot have decoded — let alone
// executed — the request, so re-sending it on a fresh connection is safe
// even for a write. It wraps query.ErrConnLost, so callers testing the
// public sentinel see exactly what they saw before.
var errUnsent = fmt.Errorf("%w: request frame never completed", query.ErrConnLost)

// ClientOptions configure resilience and fault injection.
type ClientOptions struct {
	// Retry is the transport retry policy. The zero value disables
	// retries: every query.ErrConnLost surfaces to the caller.
	Retry RetryPolicy
	// Fault, when set, arms chaos injection on this client's connections:
	// SlowLink delays on writes, TornWrite cuts frames mid-write, and
	// ConnReset tears the connection down between requests. Reset and torn
	// frames are only injected at points the retry contract can absorb —
	// see the resilience contract in README.md.
	Fault *fault.Injector
}

// Client is one logical wire-protocol peer. It implements query.Executor,
// so the whole client runtime — exec.Service, batch.Coalescer, the
// interpreter — runs against a remote server by handing it a Client where
// it previously took a server.Exec closure. Requests are pipelined: many
// goroutines may call Exec/ExecBatch concurrently, each response matched
// to its caller by request id. When the underlying connection dies the
// client reconnects (single-flight) and, under a RetryPolicy, replays the
// requests that are provably safe to replay: idempotent reads, and any
// request whose frame never finished sending. Writes whose outcome is
// unknown are never replayed — the caller gets query.ErrConnLost and the
// exactly-once decision.
type Client struct {
	addr string
	opts ClientOptions

	// prep routes statements read vs write for the retry contract; only
	// successful parses cache, and only provable INSERTs count as writes.
	prep sqlmini.PrepCache

	mu       sync.Mutex
	dialWait sync.Cond
	cc       *clientConn
	dialing  bool
	closed   bool

	retries    atomic.Int64 // re-sent requests (transport retries)
	reconnects atomic.Int64 // successful re-dials after a lost connection
	budgetUsed atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter
}

type response struct {
	msgType byte
	payload []byte
}

// pendingReq is one in-flight request slot on a connection.
type pendingReq struct {
	ch    chan response
	write bool
}

// clientConn is one live connection generation: requests register here,
// and when the connection dies the whole generation fails over.
type clientConn struct {
	conn stdnet.Conn
	inj  *fault.Injector

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]pendingReq
	writes  int   // write requests in flight (fault-injection gating)
	err     error // terminal connection error, set once

	readerDone chan struct{}
}

// Dial connects to a front door and performs the handshake, with no retry
// policy and no fault injection.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions is Dial with a retry policy and/or chaos injection.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	cc, err := dialConn(addr, opts.Fault)
	if err != nil {
		return nil, err
	}
	seed := time.Now().UnixNano()
	if opts.Fault != nil {
		seed = opts.Fault.Seed()
	}
	c := &Client{addr: addr, opts: opts, cc: cc, rng: rand.New(rand.NewSource(seed))}
	c.dialWait.L = &c.mu
	return c, nil
}

// dialConn establishes one connection generation: TCP dial, handshake,
// reader started.
func dialConn(addr string, inj *fault.Injector) (*clientConn, error) {
	raw, err := stdnet.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn := fault.WrapConn(raw, inj)
	if err := WriteFrame(conn, MsgHello, EncodeHello()); err != nil {
		conn.Close()
		return nil, err
	}
	msgType, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: handshake refused", ErrVersionMismatch)
	}
	if msgType != MsgHelloAck {
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected frame %d", ErrBadFrame, msgType)
	}
	ver, err := DecodeHelloAck(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ver != Version {
		conn.Close()
		return nil, fmt.Errorf("%w: server speaks v%d, client v%d", ErrVersionMismatch, ver, Version)
	}
	cc := &clientConn{
		conn:       conn,
		inj:        inj,
		pending:    map[uint64]pendingReq{},
		readerDone: make(chan struct{}),
	}
	go cc.readLoop()
	return cc, nil
}

// conn returns the live connection, reconnecting (single-flight) when the
// current one is dead. Concurrent callers wait for the dial in flight —
// this is the reconnect that pipelined requests replay over.
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrClientClosed
		}
		if c.cc != nil && !c.cc.dead() {
			return c.cc, nil
		}
		if c.dialing {
			c.dialWait.Wait()
			continue
		}
		c.dialing = true
		c.mu.Unlock()
		cc, err := dialConn(c.addr, c.opts.Fault)
		c.mu.Lock()
		c.dialing = false
		c.dialWait.Broadcast()
		if err != nil {
			// Nothing was sent on a connection that failed to come up, so
			// the failure is unsent-class: a retrying caller may try again.
			return nil, fmt.Errorf("%w: reconnect %s: %v", errUnsent, c.addr, err)
		}
		if c.closed {
			c.mu.Unlock()
			cc.shutdown(ErrClientClosed)
			c.mu.Lock()
			return nil, ErrClientClosed
		}
		c.cc = cc
		c.reconnects.Add(1)
		return cc, nil
	}
}

// Retries reports how many requests this client re-sent after losing a
// connection.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Reconnects reports how many replacement connections this client dialed.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// readLoop dispatches response frames to their waiting requests. On any
// read error it fails every pending request: a dead connection never
// leaves a caller blocked.
func (cc *clientConn) readLoop() {
	defer close(cc.readerDone)
	for {
		msgType, payload, err := ReadFrame(cc.conn)
		if err != nil {
			// User Close set cc.err first; an uninvited death is conn-lost.
			cc.failAll(query.ErrConnLost)
			return
		}
		if msgType != MsgResult && msgType != MsgBatchResult {
			cc.failAll(fmt.Errorf("%w: unexpected frame %d", ErrBadFrame, msgType))
			cc.conn.Close()
			return
		}
		if len(payload) < 8 {
			cc.failAll(ErrBadFrame)
			cc.conn.Close()
			return
		}
		id := (&reader{b: payload}).u64()
		cc.mu.Lock()
		pr, ok := cc.pending[id]
		if ok {
			delete(cc.pending, id)
			if pr.write {
				cc.writes--
			}
		}
		cc.mu.Unlock()
		if ok {
			pr.ch <- response{msgType, payload} // buffered: never blocks the loop
		}
		// Unknown ids are responses to requests the caller abandoned at
		// their deadline; the frame is simply dropped.
	}
}

// failAll terminates the generation: the first error wins, every pending
// request's channel closes (a closed channel reads as the terminal error).
func (cc *clientConn) failAll(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pend := cc.pending
	cc.pending = map[uint64]pendingReq{}
	cc.writes = 0
	cc.mu.Unlock()
	for _, pr := range pend {
		close(pr.ch)
	}
}

// dead reports whether the generation has a terminal error.
func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// termErr is the error a pending request observes when its channel closed.
func (cc *clientConn) termErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return query.ErrConnLost
}

// poison marks the generation dead (first error wins) and closes the
// socket, which makes the read loop fail every pending request.
func (cc *clientConn) poison(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	cc.mu.Unlock()
	cc.conn.Close()
}

// shutdown is poison plus waiting for the reader to drain (user Close).
func (cc *clientConn) shutdown(err error) {
	cc.poison(err)
	<-cc.readerDone
}

// register allocates a request id and its response slot.
func (cc *clientConn) register(isWrite bool) (uint64, chan response, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return 0, nil, cc.err
	}
	cc.nextID++
	id := cc.nextID
	ch := make(chan response, 1)
	cc.pending[id] = pendingReq{ch: ch, write: isWrite}
	if isWrite {
		cc.writes++
	}
	return id, ch, nil
}

// abandon forgets a request the caller gave up on (deadline expiry). The
// server's eventual response frame is dropped by the read loop.
func (cc *clientConn) abandon(id uint64) {
	cc.mu.Lock()
	if pr, ok := cc.pending[id]; ok {
		delete(cc.pending, id)
		if pr.write {
			cc.writes--
		}
	}
	cc.mu.Unlock()
}

// injectReset simulates the peer (or a middlebox) resetting the
// connection, but only while no write is in flight: severing a sent write
// would leave its outcome unknown, and the injected chaos must stay inside
// what the retry contract can absorb. Reads severed here fail with
// query.ErrConnLost and replay on the next generation.
func (cc *clientConn) injectReset() bool {
	cc.mu.Lock()
	if cc.writes > 0 || cc.err != nil {
		cc.mu.Unlock()
		return false
	}
	cc.err = fmt.Errorf("%w: injected connection reset", query.ErrConnLost)
	cc.mu.Unlock()
	cc.conn.Close()
	return true
}

// canTear reports whether tearing the current frame is inside the retry
// contract: the torn request itself never decodes server-side (safe to
// re-send, write or read), but the kill takes every *other* in-flight
// write's response with it — so tearing is gated on no other write being
// in flight. The caller's own registration is excluded.
func (cc *clientConn) canTear(isWrite bool) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	own := 0
	if isWrite {
		own = 1
	}
	return cc.writes <= own && cc.err == nil
}

// tear writes a deliberately incomplete frame and kills the connection —
// the mid-write failure mode (process death, RST mid-send). The peer's
// ReadFrame blocks on the missing bytes until the close, then discards.
func (cc *clientConn) tear(msgType byte, payload []byte) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := cc.conn.Write(hdr[:]); err == nil && len(payload) > 1 {
		_, _ = cc.conn.Write(payload[:len(payload)/2])
	}
	cc.poison(fmt.Errorf("%w: injected torn frame", query.ErrConnLost))
}

// send writes one request frame. Any write error — including a torn frame
// part-way through — poisons the connection immediately: the stream is
// desynchronized and no later request may be written to it. The returned
// error is unsent-class: this request's frame never completed, so the
// server cannot have executed it.
func (cc *clientConn) send(msgType byte, payload []byte, isWrite bool) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if cc.inj.Should(fault.TornWrite) && cc.canTear(isWrite) {
		cc.tear(msgType, payload)
		return fmt.Errorf("%w: injected torn frame", errUnsent)
	}
	if err := WriteFrame(cc.conn, msgType, payload); err != nil {
		cc.poison(fmt.Errorf("%w: send failed: %v", query.ErrConnLost, err))
		return fmt.Errorf("%w: %v", errUnsent, err)
	}
	return nil
}

// await blocks for the response, bounded by the request deadline. At the
// deadline the request is abandoned locally — the server may still execute
// it, but this caller gets exactly one answer: ErrDeadlineExceeded.
func (cc *clientConn) await(id uint64, ch chan response, dl query.Deadline) (response, error) {
	var timeout <-chan time.Time
	if t, ok := dl.Time(); ok {
		timer := time.NewTimer(time.Until(t))
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, cc.termErr()
		}
		return resp, nil
	case <-timeout:
		cc.abandon(id)
		// The response may have raced the timer; prefer it if already here.
		select {
		case resp, ok := <-ch:
			if ok {
				return resp, nil
			}
		default:
		}
		return response{}, query.ErrDeadlineExceeded
	}
}

// isWrite reports whether sql is a provable INSERT. Anything else —
// reads, and malformed statements that fail identically wherever they
// run — is idempotent for retry purposes.
func (c *Client) isWrite(sql string) bool {
	st, err := c.prep.Prepare(sql)
	return err == nil && st.Insert
}

// retryable applies the contract: only connection losses retry, and a
// write only when its frame provably never completed.
func (c *Client) retryable(err error, isWrite bool) bool {
	if !errors.Is(err, query.ErrConnLost) {
		return false
	}
	return !isWrite || errors.Is(err, errUnsent)
}

// takeBudget consumes one unit of the lifetime retry budget.
func (c *Client) takeBudget() bool {
	b := c.opts.Retry.Budget
	if b <= 0 {
		return true
	}
	if c.budgetUsed.Add(1) > b {
		c.budgetUsed.Add(-1)
		return false
	}
	return true
}

// backoff sleeps before a retry, bounded by the request deadline. Reports
// false when the deadline expires first.
func (c *Client) backoff(attempt int, dl query.Deadline) bool {
	c.rngMu.Lock()
	d := c.opts.Retry.backoff(attempt, c.rng)
	c.rngMu.Unlock()
	if !dl.IsZero() {
		if r := dl.Remaining(); time.Duration(r) <= d {
			return false
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
	return !dl.Expired()
}

// execOnce performs one attempt: acquire a connection (firing any
// scheduled connection reset first), register, encode, send, await.
func (c *Client) execOnce(req query.Request, isWrite bool) query.Result {
	cc, err := c.conn()
	if err != nil {
		return query.Fail(err)
	}
	if c.opts.Fault.Should(fault.ConnReset) {
		cc.injectReset()
		if cc, err = c.conn(); err != nil {
			return query.Fail(err)
		}
	}
	id, ch, err := cc.register(isWrite)
	if err != nil {
		return query.Fail(preSend(err))
	}
	payload, err := EncodeExec(id, req)
	if err != nil {
		cc.abandon(id)
		return query.Fail(err)
	}
	sp := req.Span.Child("net.roundtrip") // nil-safe
	defer sp.End()
	if err := cc.send(MsgExec, payload, isWrite); err != nil {
		cc.abandon(id)
		return query.Fail(err)
	}
	resp, err := cc.await(id, ch, req.Deadline)
	if err != nil {
		return query.Fail(err)
	}
	if resp.msgType != MsgResult {
		return query.Fail(fmt.Errorf("%w: batch response to Exec", ErrBadFrame))
	}
	_, res, err := DecodeResult(resp.payload)
	if err != nil {
		return query.Fail(err)
	}
	return res
}

// preSend reclassifies a registration failure: the generation was already
// dead, so this request never went anywhere — unsent-class, retry-safe.
func preSend(err error) error {
	if errors.Is(err, query.ErrConnLost) && !errors.Is(err, errUnsent) {
		return fmt.Errorf("%w: connection already down", errUnsent)
	}
	return err
}

// Exec implements query.Executor over the wire. The request's Span and
// Session stay client-side (the server binds its own per-connection
// session); Name, SQL, Args, Consistency and Deadline cross. Under a
// RetryPolicy, attempts that die with the connection are re-sent on a
// fresh one when the contract allows (reads always; writes only unsent).
func (c *Client) Exec(req query.Request) query.Result {
	if req.Deadline.Expired() {
		return query.Fail(query.ErrDeadlineExceeded)
	}
	isWrite := c.isWrite(req.SQL)
	attempts := c.opts.Retry.attempts()
	for attempt := 0; ; attempt++ {
		res := c.execOnce(req, isWrite)
		if res.Err == nil || attempt+1 >= attempts || !c.retryable(res.Err, isWrite) {
			return res
		}
		if !c.takeBudget() {
			return res
		}
		if !c.backoff(attempt, req.Deadline) {
			return query.Fail(query.ErrDeadlineExceeded)
		}
		c.retries.Add(1)
	}
}

// execBatchOnce is execOnce for a binding set.
func (c *Client) execBatchOnce(req query.BatchRequest, isWrite bool) query.BatchResult {
	n := len(req.ArgSets)
	cc, err := c.conn()
	if err != nil {
		return query.FailAll(n, err)
	}
	if c.opts.Fault.Should(fault.ConnReset) {
		cc.injectReset()
		if cc, err = c.conn(); err != nil {
			return query.FailAll(n, err)
		}
	}
	id, ch, err := cc.register(isWrite)
	if err != nil {
		return query.FailAll(n, preSend(err))
	}
	payload, err := EncodeExecBatch(id, req)
	if err != nil {
		cc.abandon(id)
		return query.FailAll(n, err)
	}
	sp := req.Span.Child("net.roundtrip")
	defer sp.End()
	if err := cc.send(MsgExecBatch, payload, isWrite); err != nil {
		cc.abandon(id)
		return query.FailAll(n, err)
	}
	resp, err := cc.await(id, ch, req.Deadline)
	if err != nil {
		return query.FailAll(n, err)
	}
	if resp.msgType != MsgBatchResult {
		return query.FailAll(n, fmt.Errorf("%w: scalar response to ExecBatch", ErrBadFrame))
	}
	_, res, err := DecodeBatchResult(resp.payload)
	if err != nil {
		return query.FailAll(n, err)
	}
	if len(res.Errs) != n {
		return query.FailAll(n, fmt.Errorf("%w: batch result arity %d, want %d", ErrBadFrame, len(res.Errs), n))
	}
	return res
}

// ExecBatch implements the set-oriented half of query.Executor, with the
// same retry contract as Exec applied batch-wide: a batch that died with
// the connection is re-sent whole (transport failures fail every binding
// with one error, so the decision is uniform).
func (c *Client) ExecBatch(req query.BatchRequest) query.BatchResult {
	n := len(req.ArgSets)
	if req.Deadline.Expired() {
		return query.FailAll(n, query.ErrDeadlineExceeded)
	}
	isWrite := c.isWrite(req.SQL)
	attempts := c.opts.Retry.attempts()
	for attempt := 0; ; attempt++ {
		res := c.execBatchOnce(req, isWrite)
		err := firstBatchErr(res.Errs)
		if err == nil || attempt+1 >= attempts || !c.retryable(err, isWrite) {
			return res
		}
		if !c.takeBudget() {
			return res
		}
		if !c.backoff(attempt, req.Deadline) {
			return query.FailAll(n, query.ErrDeadlineExceeded)
		}
		c.retries.Add(1)
	}
}

func firstBatchErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close tears down the connection; in-flight requests fail with
// ErrClientClosed. Safe to call more than once.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	cc := c.cc
	c.mu.Unlock()
	c.dialWait.Broadcast()
	if cc != nil {
		cc.shutdown(ErrClientClosed)
	}
}
