package net

import (
	"sync"
	"testing"
)

func TestAdmissionShedsAtBudget(t *testing.T) {
	a := NewAdmission(3)
	for i := 0; i < 3; i++ {
		if !a.TryAcquire(1) {
			t.Fatalf("acquire %d refused under budget", i)
		}
	}
	if a.TryAcquire(1) {
		t.Fatal("acquire beyond budget admitted")
	}
	if got := a.Shed(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := a.Inflight(); got != 3 {
		t.Fatalf("inflight = %d, want 3", got)
	}
}

func TestAdmissionRecoversAfterRelease(t *testing.T) {
	a := NewAdmission(2)
	if !a.TryAcquire(2) {
		t.Fatal("batch acquire refused")
	}
	if a.TryAcquire(1) {
		t.Fatal("admitted over budget")
	}
	a.Release(2)
	if !a.TryAcquire(1) {
		t.Fatal("release did not un-shed")
	}
	if got := a.Inflight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
}

func TestAdmissionBatchAllOrNothing(t *testing.T) {
	a := NewAdmission(4)
	if !a.TryAcquire(3) {
		t.Fatal("3 of 4 refused")
	}
	// A 2-unit batch does not fit; it must claim nothing.
	if a.TryAcquire(2) {
		t.Fatal("partial-fit batch admitted")
	}
	if got := a.Inflight(); got != 3 {
		t.Fatalf("refused batch leaked units: inflight = %d, want 3", got)
	}
	if !a.TryAcquire(1) {
		t.Fatal("the remaining unit should still be grantable")
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(0)
	for i := 0; i < 1000; i++ {
		if !a.TryAcquire(1) {
			t.Fatal("unlimited budget shed")
		}
	}
	if a.Shed() != 0 {
		t.Fatalf("shed = %d on unlimited budget", a.Shed())
	}
	if a.Admitted() != 1000 {
		t.Fatalf("admitted = %d, want 1000", a.Admitted())
	}
}

// TestAdmissionCountersConsistentUnderRace hammers the budget from many
// goroutines and checks the books balance: admitted + shed == attempts,
// and after every admit releases, inflight returns to zero.
func TestAdmissionCountersConsistentUnderRace(t *testing.T) {
	const goroutines = 16
	const perG = 500
	a := NewAdmission(5)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if a.TryAcquire(1) {
					a.Release(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := a.Admitted() + a.Shed(); got != goroutines*perG {
		t.Fatalf("admitted(%d) + shed(%d) = %d, want %d",
			a.Admitted(), a.Shed(), got, goroutines*perG)
	}
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after full drain", got)
	}
}
