package net

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Admission is the front door's inflight budget: a fixed number of
// requests may be executing (or queued behind the executor) at once, and
// a request arriving past the budget is shed immediately with
// query.ErrOverloaded instead of joining an unbounded queue. Shedding is
// the tail-latency contract: under overload the p999 of *admitted*
// requests stays bounded by the work the budget represents, and the
// overflow surfaces as explicit, retryable errors — not as requests
// silently aging in a queue. A batch costs one slot per member, since
// that is the work it puts on the executor.
//
// The zero budget (limit <= 0) admits everything; Admission is then pure
// accounting.
type Admission struct {
	limit    int64
	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// NewAdmission builds a budget admitting at most limit concurrent request
// units (limit <= 0 = unlimited).
func NewAdmission(limit int) *Admission {
	return &Admission{limit: int64(limit)}
}

// TryAcquire claims n units. It either claims all n and returns true, or
// claims nothing and returns false (the request must be shed) — a batch is
// admitted or shed whole, never half.
func (a *Admission) TryAcquire(n int) bool {
	if n <= 0 {
		n = 1
	}
	if a.limit > 0 {
		for {
			cur := a.inflight.Load()
			if cur+int64(n) > a.limit {
				a.shed.Add(1)
				return false
			}
			if a.inflight.CompareAndSwap(cur, cur+int64(n)) {
				break
			}
		}
	} else {
		a.inflight.Add(int64(n))
	}
	a.admitted.Add(1)
	return true
}

// Release returns n units to the budget; call exactly once per successful
// TryAcquire, with the same n. Releasing is what un-sheds: the next
// TryAcquire after a release sees the freed slots.
func (a *Admission) Release(n int) {
	if n <= 0 {
		n = 1
	}
	a.inflight.Add(int64(-n))
}

// Limit returns the configured budget (0 = unlimited).
func (a *Admission) Limit() int { return int(a.limit) }

// Inflight returns the currently claimed units.
func (a *Admission) Inflight() int64 { return a.inflight.Load() }

// Admitted returns how many requests TryAcquire has admitted.
func (a *Admission) Admitted() int64 { return a.admitted.Load() }

// Shed returns how many requests TryAcquire has refused.
func (a *Admission) Shed() int64 { return a.shed.Load() }

// RegisterMetrics exposes the budget as gauges/counters under prefix
// (e.g. "net.admission.") in reg.
func (a *Admission) RegisterMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.RegisterSource(prefix+"admission", func() map[string]float64 {
		return map[string]float64{
			prefix + "admission.limit":    float64(a.limit),
			prefix + "admission.inflight": float64(a.Inflight()),
			prefix + "admission.admitted": float64(a.Admitted()),
			prefix + "admission.shed":     float64(a.Shed()),
		}
	})
}
