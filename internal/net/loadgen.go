package net

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// LoadOptions configure one load-generation run against a front door.
type LoadOptions struct {
	// Addr is the server address to drive.
	Addr string
	// Conns is the number of concurrent connections, each with one
	// outstanding request at a time (the closed-loop worker count; in open
	// loop the same connections share the paced request stream).
	Conns int
	// Rate, when positive, switches to open-loop generation: requests are
	// issued at this aggregate rate (per second) regardless of completions,
	// which is what exposes overload — a closed loop self-throttles to the
	// server's capacity, an open loop keeps offering load the way real
	// clients do.
	Rate float64
	// Duration bounds the run.
	Duration time.Duration
	// Deadline is the per-request deadline (0 = none).
	Deadline time.Duration
	// Statement is the request to issue; ArgFn supplies per-request args.
	Name  string
	SQL   string
	ArgFn func(r *rand.Rand) []any
	// Seed feeds the per-worker argument generators.
	Seed int64
	// Client configures each connection's resilience: retry policy and
	// (chaos figures, tests) fault injection. The zero value is the
	// historical client — no retries, transport errors surface as failures.
	Client ClientOptions
}

// LoadReport is the result of one load run — the front-door triple the
// figure plots (p50/p99/p999), plus the shed and error accounting the
// acceptance gate checks.
type LoadReport struct {
	Mode     string  `json:"mode"` // "closed" or "open"
	Conns    int     `json:"conns"`
	Rate     float64 `json:"offered_rate,omitempty"` // open loop only
	Duration float64 `json:"duration_s"`

	Sent      int64 `json:"sent"`
	Completed int64 `json:"completed"` // successful responses
	Shed      int64 `json:"shed"`      // query.ErrOverloaded
	Deadlined int64 `json:"deadlined"` // query.ErrDeadlineExceeded
	Failed    int64 `json:"failed"`    // any other error
	Hung      int64 `json:"hung"`      // requests never answered by run end

	ThroughputRPS float64 `json:"throughput_rps"`

	// Resilience accounting. Retries/Reconnects aggregate over the pool's
	// clients; RetryBudget echoes the per-client lifetime cap (0 =
	// unlimited) so the validator can check retries stayed within it.
	// Hedges/BreakerTrips are server-side counters the caller fills in when
	// it owns the backend (see the chaos figure); a plain remote loadgen run
	// leaves them zero.
	Retries      int64 `json:"retries"`
	Reconnects   int64 `json:"reconnects"`
	RetryBudget  int64 `json:"retry_budget,omitempty"`
	Hedges       int64 `json:"hedges,omitempty"`
	BreakerTrips int64 `json:"breaker_trips,omitempty"`

	// Latency percentiles over successful requests, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ShedRate is the fraction of sent requests shed by admission control.
func (r LoadReport) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// RunLoad drives a front door with Conns connections for Duration and
// reports the latency distribution and shed accounting. Closed loop
// (Rate == 0): every connection issues its next request as soon as the
// previous one answers. Open loop (Rate > 0): each connection issues
// requests on its own schedule at Rate/Conns, staggered so aggregate
// arrivals are smooth, and keeps (approximately) that schedule regardless
// of completions — the pool must be sized so that under the tested
// overload the admission budget and deadline, not the pool, are the limit.
func RunLoad(opts LoadOptions) (LoadReport, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.ArgFn == nil {
		opts.ArgFn = func(*rand.Rand) []any { return nil }
	}
	rep := LoadReport{Mode: "closed", Conns: opts.Conns, Duration: opts.Duration.Seconds()}
	if opts.Rate > 0 {
		rep.Mode = "open"
		rep.Rate = opts.Rate
	}

	clients := make([]*Client, opts.Conns)
	for i := range clients {
		c, err := DialOptions(opts.Addr, opts.Client)
		if err != nil {
			for _, p := range clients[:i] {
				p.Close()
			}
			return rep, fmt.Errorf("loadgen: dial conn %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var sent, completed, shed, deadlined, failed, inflight atomic.Int64
	hist := obs.NewRegistry().Histogram("loadgen.latency")
	stop := time.Now().Add(opts.Duration)

	oneRequest := func(c *Client, rng *rand.Rand) {
		req := query.Req(opts.Name, opts.SQL, opts.ArgFn(rng))
		if opts.Deadline > 0 {
			req.Deadline = query.After(opts.Deadline)
		}
		sent.Add(1)
		inflight.Add(1)
		start := time.Now()
		res := c.Exec(req)
		lat := time.Since(start)
		inflight.Add(-1)
		switch {
		case res.Err == nil:
			completed.Add(1)
			hist.RecordDuration(lat)
		case errors.Is(res.Err, query.ErrOverloaded):
			shed.Add(1)
		case errors.Is(res.Err, query.ErrDeadlineExceeded):
			deadlined.Add(1)
		default:
			failed.Add(1)
		}
	}

	var wg sync.WaitGroup
	if opts.Rate <= 0 {
		// Closed loop: one back-to-back worker per connection.
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
				for time.Now().Before(stop) {
					oneRequest(c, rng)
				}
			}(i, c)
		}
	} else {
		// Open loop: each connection paces itself at Rate/Conns with start
		// offsets staggered across one interval, so aggregate arrivals are
		// smooth rather than synchronized bursts (a shared ticker bunches
		// arrivals into instants, which saturates any admission budget at a
		// fraction of the true average rate). A connection whose previous
		// request ran long fires back-to-back to restore its average — the
		// open-loop property — but arrivals more than a burst window behind
		// schedule balk: that is offered load the server never saw, and the
		// shed/deadline counters on issued requests carry the overload story.
		interval := time.Duration(float64(opts.Conns) * float64(time.Second) / opts.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
				next := time.Now().Add(interval * time.Duration(i) / time.Duration(opts.Conns))
				for {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					if !time.Now().Before(stop) {
						return
					}
					oneRequest(c, rng)
					next = next.Add(interval)
					if time.Since(next) > 4*interval {
						next = time.Now()
					}
				}
			}(i, c)
		}
	}

	// Workers exit on their own (closed loop) or when the pacer closes the
	// channel; every issued request either answered or hit its deadline, so
	// a bounded wait suffices — a worker stuck past deadline+grace is a
	// hung connection, exactly what the report must expose.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	grace := 5 * time.Second
	if opts.Deadline > 0 {
		grace += opts.Deadline
	}
	select {
	case <-done:
	case <-time.After(grace):
		rep.Hung = inflight.Load()
	}

	rep.Sent = sent.Load()
	rep.Completed = completed.Load()
	rep.Shed = shed.Load()
	rep.Deadlined = deadlined.Load()
	rep.Failed = failed.Load()
	rep.RetryBudget = opts.Client.Retry.Budget
	for _, c := range clients {
		rep.Retries += c.Retries()
		rep.Reconnects += c.Reconnects()
	}
	rep.ThroughputRPS = float64(rep.Completed) / opts.Duration.Seconds()
	snap := hist.Snapshot()
	if snap.Count > 0 {
		ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
		rep.P50Ms = ms(snap.Quantile(0.50))
		rep.P99Ms = ms(snap.Quantile(0.99))
		rep.P999Ms = ms(snap.Quantile(0.999))
		rep.MeanMs = ms(int64(snap.Mean()))
		rep.MaxMs = ms(snap.Max)
	}
	return rep, nil
}
