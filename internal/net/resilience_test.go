package net

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/query"
)

const (
	testSelect = "select val from t where id = ?"
	testInsert = "insert into t values (?, ?)"
)

func dialOpts(t *testing.T, s *Server, opts ClientOptions) *Client {
	t.Helper()
	c, err := DialOptions(s.Addr(), opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// A torn request frame poisons the connection, and the torn request — whose
// frame provably never decoded server-side — is re-sent on a fresh
// connection. The backend sees the read exactly once per completed attempt.
func TestTornFrameRetriesRead(t *testing.T) {
	var execs atomic.Int64
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		execs.Add(1)
		return query.Ok(int64(7))
	}}
	s := startServer(t, backend, ServerOptions{})
	inj := fault.New(1).At(fault.TornWrite, 1)
	c := dialOpts(t, s, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond},
		Fault: inj,
	})

	res := c.Exec(query.Req("q", testSelect, []any{int64(1)}))
	if res.Err != nil {
		t.Fatalf("read should survive the torn frame, got %v", res.Err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("backend executed %d times, want exactly 1 (torn frame never decodes)", got)
	}
	if c.Retries() != 1 || c.Reconnects() != 1 {
		t.Fatalf("retries=%d reconnects=%d, want 1/1", c.Retries(), c.Reconnects())
	}
	if inj.Fired(fault.TornWrite) != 1 {
		t.Fatalf("torn-write fired %d, want 1", inj.Fired(fault.TornWrite))
	}
}

// A torn *write* frame is equally safe to re-send: the partial frame never
// decodes, so the insert executes exactly once — never zero, never twice.
func TestTornFrameRetriesWriteExactlyOnce(t *testing.T) {
	var inserts atomic.Int64
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		inserts.Add(1)
		return query.Ok(nil)
	}}
	s := startServer(t, backend, ServerOptions{})
	c := dialOpts(t, s, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Microsecond},
		Fault: fault.New(2).At(fault.TornWrite, 1),
	})

	res := c.Exec(query.Req("w", testInsert, []any{int64(1), "x"}))
	if res.Err != nil {
		t.Fatalf("unsent write should be re-sent, got %v", res.Err)
	}
	if got := inserts.Load(); got != 1 {
		t.Fatalf("insert executed %d times, want exactly 1", got)
	}
	if c.Retries() != 1 {
		t.Fatalf("retries=%d, want 1", c.Retries())
	}
}

// A write whose frame fully reached the server before the connection died
// must NOT be retried: its outcome is unknown (here: it executed). The
// caller gets query.ErrConnLost, not a duplicate execution.
func TestUnackedWriteSurfacesConnLostUnretried(t *testing.T) {
	executed := make(chan struct{})
	release := make(chan struct{})
	var execOnce sync.Once
	var inserts atomic.Int64
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		inserts.Add(1)
		execOnce.Do(func() { close(executed) })
		<-release
		return query.Ok(nil)
	}}
	s := startServer(t, backend, ServerOptions{})
	c := dialOpts(t, s, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond},
	})

	done := make(chan query.Result, 1)
	go func() { done <- c.Exec(query.Req("w", testInsert, []any{int64(1), "x"})) }()
	<-executed
	// The server received and executed the write; now the transport dies
	// before the acknowledgement can be delivered.
	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	cc.poison(query.ErrConnLost)
	close(release)

	res := <-done
	if !errors.Is(res.Err, query.ErrConnLost) {
		t.Fatalf("unacked write: got %v, want query.ErrConnLost", res.Err)
	}
	if errors.Is(res.Err, ErrClientClosed) {
		t.Fatalf("conn death must not masquerade as user close: %v", res.Err)
	}
	if got := c.Retries(); got != 0 {
		t.Fatalf("unacked write was retried %d times; writes must never replay", got)
	}
	if got := inserts.Load(); got != 1 {
		t.Fatalf("insert executed %d times, want exactly 1", got)
	}
}

// An injected connection reset severs in-flight reads; they replay over
// the single-flight reconnect and still answer correctly — the
// pipelined-request replay the resilience contract promises.
func TestConnResetReplaysPipelinedReads(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		if calls.Add(1) == 1 {
			<-gate // hold the first read in flight across the reset
		}
		n, _ := req.Args[0].(int64)
		return query.Ok(n * 2)
	}}
	s := startServer(t, backend, ServerOptions{})
	c := dialOpts(t, s, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 6, BaseBackoff: 100 * time.Microsecond},
		Fault: fault.New(3).At(fault.ConnReset, 2), // fire on the second request's decision
	})

	first := make(chan query.Result, 1)
	go func() { first <- c.Exec(query.Req("q", testSelect, []any{int64(10)})) }()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// This request's reset decision kills the connection under the pending
	// first read, then proceeds on a fresh one.
	second := c.Exec(query.Req("q", testSelect, []any{int64(20)}))
	close(gate)
	firstRes := <-first

	if second.Err != nil || firstRes.Err != nil {
		t.Fatalf("reads must survive the reset: first=%v second=%v", firstRes.Err, second.Err)
	}
	if v, _ := firstRes.Value.(int64); v != 20 {
		t.Fatalf("first read answered %v, want 20", firstRes.Value)
	}
	if v, _ := second.Value.(int64); v != 40 {
		t.Fatalf("second read answered %v, want 40", second.Value)
	}
	if c.Retries() < 1 || c.Reconnects() < 1 {
		t.Fatalf("retries=%d reconnects=%d, want ≥1 each", c.Retries(), c.Reconnects())
	}
}

// No reset fires while a write is in flight: the injection point is gated,
// so chaos can never manufacture an unknown-outcome write on its own.
func TestConnResetGatedByInflightWrite(t *testing.T) {
	executed := make(chan struct{})
	release := make(chan struct{})
	var execOnce sync.Once
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		if req.Name == "w" {
			execOnce.Do(func() { close(executed) })
			<-release
		}
		return query.Ok(nil)
	}}
	s := startServer(t, backend, ServerOptions{})
	c := dialOpts(t, s, ClientOptions{
		Fault: fault.New(4).RateAll(0).Rate(fault.ConnReset, 1), // every decision wants to fire
	})

	done := make(chan query.Result, 1)
	go func() { done <- c.Exec(query.Req("w", testInsert, []any{int64(1), "x"})) }()
	<-executed
	// A read issued while the write is pending: its reset decision fires
	// but must be suppressed (unsafe), so the write's response survives.
	if res := c.Exec(query.Req("q", testSelect, []any{int64(1)})); res.Err != nil {
		t.Fatalf("read: %v", res.Err)
	}
	close(release)
	if res := <-done; res.Err != nil {
		t.Fatalf("write must be acknowledged despite reset pressure: %v", res.Err)
	}
}

// The lifetime retry budget caps replays: once spent, the next transport
// loss surfaces instead of retrying.
func TestRetryBudgetExhausts(t *testing.T) {
	backend := echoBackend()
	s := startServer(t, backend, ServerOptions{})
	c := dialOpts(t, s, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 10, BaseBackoff: 100 * time.Microsecond, Budget: 1},
		Fault: fault.New(5).At(fault.TornWrite, 1, 2, 3, 4, 5),
	})

	res := c.Exec(query.Req("q", testSelect, []any{int64(1)}))
	if !errors.Is(res.Err, query.ErrConnLost) {
		t.Fatalf("budget-exhausted request: got %v, want query.ErrConnLost", res.Err)
	}
	if got := c.Retries(); got != 1 {
		t.Fatalf("retries=%d, want exactly the budget (1)", got)
	}
}

// Without a retry policy (the zero options), a lost connection surfaces
// query.ErrConnLost — the distinct retryable sentinel, not generic text.
func TestConnLostSentinelWithoutRetry(t *testing.T) {
	stall := make(chan struct{})
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		<-stall
		return query.Ok(nil)
	}}
	s := startServer(t, backend, ServerOptions{})
	c, err := DialOptions(s.Addr(), ClientOptions{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(c.Close)

	done := make(chan query.Result, 1)
	go func() { done <- c.Exec(query.Req("q", testSelect, []any{int64(1)})) }()
	time.Sleep(20 * time.Millisecond)
	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	cc.conn.Close() // the transport dies out from under the request
	res := <-done
	close(stall)
	if !errors.Is(res.Err, query.ErrConnLost) {
		t.Fatalf("got %v, want query.ErrConnLost", res.Err)
	}
	// And the sentinel crosses the wire as a code, not text.
	b := appendErr(nil, res.Err)
	if err := (&reader{b: b}).errSlot(); !errors.Is(err, query.ErrConnLost) {
		t.Fatalf("wire round-trip lost the sentinel: %v", err)
	}
}

// After a send failure poisons the connection, later requests on the same
// generation fail immediately as unsent (never a desynchronized stream),
// and the client dials a fresh generation for them.
func TestSendFailurePoisonsGeneration(t *testing.T) {
	backend := echoBackend()
	s := startServer(t, backend, ServerOptions{})
	c := dialOpts(t, s, ClientOptions{
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
	})

	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	// Simulate a mid-frame write failure by closing the socket out from
	// under the next send: WriteFrame fails, which must poison cc.
	cc.conn.Close()
	if res := c.Exec(query.Req("q", testSelect, []any{int64(3)})); res.Err != nil {
		t.Fatalf("request should recover on a fresh generation: %v", res.Err)
	}
	if !cc.dead() {
		t.Fatal("failed send must poison its generation")
	}
	if c.Reconnects() < 1 {
		t.Fatal("expected a reconnect after the poisoned generation")
	}
}
