package net

import (
	"math/rand"
	"time"
)

// RetryPolicy governs how a Client re-sends requests that died with the
// connection (query.ErrConnLost). What is eligible is not the policy's
// business — the client retries idempotent reads, plus any request whose
// frame provably never left the process (see the resilience contract in
// README.md); the policy only shapes how hard and how long to try.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per request, first send included.
	// 0 or 1 disables retries (the zero value is the historical client:
	// one attempt, transport errors surface to the caller).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it (exponential). 0 defaults to 1ms when retries are on.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. 0 defaults to 64× base.
	MaxBackoff time.Duration
	// Jitter randomizes each backoff to ±(Jitter/2)×backoff, decorrelating
	// retry storms across pipelined callers. 0 means no jitter.
	Jitter float64
	// Budget caps total retries across the client's lifetime (all requests
	// summed); once spent, further failures surface immediately. 0 means
	// unlimited. The budget is the backstop that turns a dead server into
	// fast failures instead of an ever-growing retry queue.
	Budget int64
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff computes the wait before retry number attempt (0-based).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 64 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 && rng != nil {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [d·(1−j/2), d·(1+j/2)].
		d = time.Duration(float64(d) * (1 - j/2 + j*rng.Float64()))
	}
	if d < 0 {
		d = 0
	}
	return d
}
