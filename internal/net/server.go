package net

import (
	"errors"
	"fmt"
	stdnet "net"
	"sync"

	"repro/internal/obs"
	"repro/internal/query"
)

// ServerOptions configure the front door.
type ServerOptions struct {
	// MaxInflight bounds concurrently executing request units (batch
	// members count individually); beyond it requests are shed with
	// query.ErrOverloaded. 0 = unlimited.
	MaxInflight int
	// Tracer, when set, opens a "net.request" / "net.batch" root span per
	// admitted request, so the server-side latency breakdown of remote
	// traffic lands in the same span histograms the in-process stack uses.
	Tracer *obs.Tracer
	// Metrics, when set, receives net.* counters (requests, batches, sheds,
	// rejected-deadline) and the admission source.
	Metrics *obs.Registry
}

// Server accepts wire-protocol connections and executes their requests
// against a query.Executor — any layer of the stack, from a bare
// server.Server to a sharded replicated group. Each connection gets its
// own query.Session (read-your-writes is connection-scoped at the front
// door), requests on one connection execute concurrently (pipelining),
// and responses carry the request id they answer, so slow requests never
// head-of-line-block fast ones.
type Server struct {
	backend   query.Executor
	admission *Admission
	opts      ServerOptions

	ln stdnet.Listener

	mu     sync.Mutex
	conns  map[stdnet.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	requests *obs.Counter // admitted Exec requests
	batches  *obs.Counter // admitted ExecBatch requests
	expired  *obs.Counter // rejected before execution: deadline already past
}

// NewServer builds a front door over backend.
func NewServer(backend query.Executor, opts ServerOptions) *Server {
	s := &Server{
		backend:   backend,
		admission: NewAdmission(opts.MaxInflight),
		opts:      opts,
		conns:     map[stdnet.Conn]struct{}{},
	}
	reg := opts.Metrics
	if reg == nil {
		// Counters are unconditional (the handlers bump them with no nil
		// checks); without a caller registry they land in a private one.
		reg = obs.NewRegistry()
	} else {
		s.admission.RegisterMetrics(reg, "net.")
	}
	s.requests = reg.Counter("net.requests")
	s.batches = reg.Counter("net.batches")
	s.expired = reg.Counter("net.deadline.rejected")
	return s
}

// Admission exposes the budget for tests and metrics polling.
func (s *Server) Admission() *Admission { return s.admission }

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. The bound address is available via Addr.
func (s *Server) Listen(addr string) error {
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("net: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listener's address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln stdnet.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every connection and waits for in-flight
// handlers. Requests already admitted finish executing; their responses
// may be lost with the connection, which is exactly the crash the
// client-side deadline exists for.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]stdnet.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// conn is the per-connection state: a write lock serializing response
// frames (request handlers run concurrently) and the connection session.
type srvConn struct {
	c    stdnet.Conn
	wmu  sync.Mutex
	sess *query.Session
}

func (sc *srvConn) writeFrame(msgType byte, payload []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return WriteFrame(sc.c, msgType, payload)
}

func (s *Server) serveConn(c stdnet.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	// Handshake: hello in, helloAck out. A peer speaking another version
	// (or not this protocol at all) is cut off before any request decodes.
	msgType, payload, err := ReadFrame(c)
	if err != nil || msgType != MsgHello {
		return
	}
	ver, err := DecodeHello(payload)
	if err != nil || ver != Version {
		return
	}
	sc := &srvConn{c: c, sess: query.NewSession()}
	if sc.writeFrame(MsgHelloAck, EncodeHelloAck()) != nil {
		return
	}

	// Request loop: decode, admit, execute in a per-request goroutine.
	// The loop goroutine owns reads; handler goroutines own their response
	// write (serialized by sc.wmu); the deferred conn close unblocks the
	// read on server shutdown.
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		msgType, payload, err := ReadFrame(c)
		if err != nil {
			return // peer closed (io.EOF) or connection torn down
		}
		switch msgType {
		case MsgExec:
			id, req, err := DecodeExec(payload)
			if err != nil {
				s.sendResult(sc, id, query.Fail(fmt.Errorf("net: bad request: %w", err)))
				continue
			}
			if !s.admit(sc, id, req.Deadline, 1, false) {
				continue
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				res := s.handleExec(sc, req)
				// Release before the response write: the unit's work is done,
				// and a client that fires its next request the instant the
				// response lands must find the slot free (a closed loop with
				// conns == budget must never shed).
				s.admission.Release(1)
				s.sendResult(sc, id, res)
			}()
		case MsgExecBatch:
			id, req, err := DecodeExecBatch(payload)
			if err != nil {
				s.sendResult(sc, id, query.Fail(fmt.Errorf("net: bad request: %w", err)))
				continue
			}
			n := len(req.ArgSets)
			if !s.admit(sc, id, req.Deadline, n, true) {
				continue
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				res := s.handleExecBatch(sc, req)
				s.admission.Release(n)
				s.sendBatchResult(sc, id, res)
			}()
		default:
			return // protocol violation: unknown frame kills the connection
		}
	}
}

// admit applies the deadline-and-budget gate shared by both request kinds.
// A request past its deadline or beyond the budget is answered immediately
// (on the read loop — rejection must not cost a goroutine) and never
// reaches the backend.
func (s *Server) admit(sc *srvConn, id uint64, dl query.Deadline, units int, batch bool) bool {
	var err error
	switch {
	case dl.Expired():
		s.expired.Add(1)
		err = query.ErrDeadlineExceeded
	case !s.admission.TryAcquire(units):
		err = query.ErrOverloaded
	default:
		if batch {
			s.batches.Add(1)
		} else {
			s.requests.Add(1)
		}
		return true
	}
	if batch {
		s.sendBatchResult(sc, id, query.FailAll(units, err))
	} else {
		s.sendResult(sc, id, query.Fail(err))
	}
	return false
}

func (s *Server) handleExec(sc *srvConn, req query.Request) query.Result {
	sp := s.opts.Tracer.Start("net.request") // nil-safe: nil tracer mints nil span
	sp.SetDetail(req.SQL)
	req.Span = sp
	req.Session = sc.sess
	res := s.backend.Exec(req)
	sp.End()
	return res
}

func (s *Server) handleExecBatch(sc *srvConn, req query.BatchRequest) query.BatchResult {
	sp := s.opts.Tracer.Start("net.batch")
	sp.SetDetail(req.SQL)
	req.Span = sp
	req.Session = sc.sess
	res := s.backend.ExecBatch(req)
	sp.End()
	return res
}

func (s *Server) sendResult(sc *srvConn, id uint64, res query.Result) {
	payload, err := EncodeResult(id, res)
	if err != nil {
		// The value could not cross the wire; the client still gets an
		// answer (an error) rather than a hung request id.
		payload, err = EncodeResult(id, query.Fail(err))
		if err != nil {
			return
		}
	}
	if sc.writeFrame(MsgResult, payload) != nil {
		sc.c.Close() // writer failed: kill the conn so the read loop exits
	}
}

func (s *Server) sendBatchResult(sc *srvConn, id uint64, res query.BatchResult) {
	payload, err := EncodeBatchResult(id, res)
	if err != nil {
		payload, err = EncodeBatchResult(id, query.FailAll(len(res.Errs), err))
		if err != nil {
			return
		}
	}
	if sc.writeFrame(MsgBatchResult, payload) != nil {
		sc.c.Close()
	}
}
