package net

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/interp"
	"repro/internal/query"
)

// validFrames returns one fully-encoded frame (header + payload) per message
// type, exercising every payload shape the protocol can carry.
func validFrames(t testing.TB) map[string][]byte {
	t.Helper()
	rows := interp.Rows{{"id": int64(1), "val": "a"}, {"id": int64(2), "val": "b"}}
	payloads := map[string]struct {
		msgType byte
		encode  func() ([]byte, error)
	}{
		"exec": {MsgExec, func() ([]byte, error) {
			return EncodeExec(7, query.Req("q", "select val from t where id = ?", []any{int64(1), "s", true, nil}))
		}},
		"execBatch": {MsgExecBatch, func() ([]byte, error) {
			return EncodeExecBatch(8, query.BatchReq("b", "select 1", [][]any{{int64(1)}, {"x", false}}))
		}},
		"result": {MsgResult, func() ([]byte, error) {
			return EncodeResult(9, query.Ok(rows))
		}},
		"batchResult": {MsgBatchResult, func() ([]byte, error) {
			return EncodeBatchResult(10, query.BatchResult{
				Values: []any{nil, int64(3), "y"},
				Errs:   []error{nil, query.ErrConnLost, query.ErrDeadlineExceeded},
			})
		}},
	}
	frames := make(map[string][]byte, len(payloads))
	for name, p := range payloads {
		payload, err := p.encode()
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, p.msgType, payload); err != nil {
			t.Fatalf("frame %s: %v", name, err)
		}
		frames[name] = buf.Bytes()
	}
	return frames
}

// decodePayload runs the decoder matching msgType. Unknown types are the
// fuzzer's problem, not ours — they return nil error and are skipped.
func decodePayload(msgType byte, payload []byte) error {
	switch msgType {
	case MsgExec:
		_, _, err := DecodeExec(payload)
		return err
	case MsgExecBatch:
		_, _, err := DecodeExecBatch(payload)
		return err
	case MsgResult:
		_, _, err := DecodeResult(payload)
		return err
	case MsgBatchResult:
		_, _, err := DecodeBatchResult(payload)
		return err
	}
	return nil
}

// Every strict prefix of a valid frame must make ReadFrame return an error —
// an EOF-class error or ErrBadFrame — never a panic and never a bogus frame.
// This is every early-EOF point a torn write can produce: mid-header,
// header-only, and every partial-payload length.
func TestReadFrameEveryEarlyEOF(t *testing.T) {
	for name, frame := range validFrames(t) {
		for cut := 0; cut < len(frame); cut++ {
			_, _, err := ReadFrame(bytes.NewReader(frame[:cut]))
			if err == nil {
				t.Fatalf("%s frame cut at %d/%d bytes read successfully", name, cut, len(frame))
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%s frame cut at %d: unexpected error class %v", name, cut, err)
			}
		}
		// The intact frame still reads, so the loop above tested real prefixes.
		if _, _, err := ReadFrame(bytes.NewReader(frame)); err != nil {
			t.Fatalf("%s frame unreadable intact: %v", name, err)
		}
	}
}

// Every strict prefix of a valid message payload must make its decoder
// return an error — a field is always missing — and never panic. This walks
// the cut point through every byte of every message type, covering each
// primitive reader (uvarint, varint, string, byte, u64, count) at its
// truncation boundary.
func TestDecodersRejectEveryTruncatedPayload(t *testing.T) {
	for name, frame := range validFrames(t) {
		msgType, payload, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := decodePayload(msgType, payload); err != nil {
			t.Fatalf("%s: intact payload rejected: %v", name, err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if err := decodePayload(msgType, payload[:cut]); err == nil {
				t.Fatalf("%s payload cut at %d/%d bytes decoded successfully",
					name, cut, len(payload))
			}
		}
	}
}

// FuzzTruncatedFrame is the torn-write fuzzer: it takes frame bytes and a
// cut point, feeds the truncated stream to ReadFrame, and — when a frame
// does survive — feeds its payload through the message decoders. Nothing in
// this path may panic or misread, no matter where the connection died.
func FuzzTruncatedFrame(f *testing.F) {
	for _, frame := range validFrames(f) {
		f.Add(frame, len(frame)/2)
		f.Add(frame, len(frame)-1)
		f.Add(frame, 3) // mid-header
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01}, 5) // absurd length header

	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if cut < 0 || cut > len(data) {
			cut = len(data)
		}
		r := bytes.NewReader(data[:cut])
		msgType, payload, err := ReadFrame(r)
		if err != nil {
			return // rejected — that's fine, it just must not panic
		}
		// A frame that did decode must have been fully present.
		if len(payload)+5 > cut {
			t.Fatalf("ReadFrame over-read: %d payload bytes from a %d byte stream",
				len(payload), cut)
		}
		// And the message layer must reject or decode without panicking,
		// even if the fuzzer spliced garbage that happens to frame cleanly.
		_ = decodePayload(msgType, payload)
	})
}
