package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	stdnet "net"
	"sync"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/query"
)

// stubBackend is a controllable query.Executor.
type stubBackend struct {
	exec      func(query.Request) query.Result
	execBatch func(query.BatchRequest) query.BatchResult
}

func (b *stubBackend) Exec(req query.Request) query.Result { return b.exec(req) }
func (b *stubBackend) ExecBatch(req query.BatchRequest) query.BatchResult {
	if b.execBatch != nil {
		return b.execBatch(req)
	}
	res := query.BatchResult{Values: make([]any, len(req.ArgSets)), Errs: make([]error, len(req.ArgSets))}
	for i, set := range req.ArgSets {
		r := b.exec(query.Request{Name: req.Name, SQL: req.SQL, Args: set, Session: req.Session})
		res.Values[i], res.Errs[i] = r.Value, r.Err
	}
	return res
}

// echoBackend doubles its first int argument.
func echoBackend() *stubBackend {
	return &stubBackend{exec: func(req query.Request) query.Result {
		n, _ := req.Args[0].(int64)
		return query.Ok(n * 2)
	}}
}

func startServer(t *testing.T, backend query.Executor, opts ServerOptions) *Server {
	t.Helper()
	s := NewServer(backend, opts)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	rows := interp.Rows{{"id": int64(1), "v": "a"}, {"id": int64(2), "v": "b"}}
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		switch req.Name {
		case "rows":
			return query.Ok(rows)
		case "err":
			return query.Fail(errors.New("no such table: ghosts"))
		default:
			n, _ := req.Args[0].(int64)
			return query.Ok(n * 2)
		}
	}}
	s := startServer(t, backend, ServerOptions{})
	c := dial(t, s)

	if res := c.Exec(query.Req("double", "q", []any{int64(21)})); res.Err != nil || !interp.Equal(res.Value, int64(42)) {
		t.Fatalf("exec: %v %v", res.Value, res.Err)
	}
	if res := c.Exec(query.Req("rows", "q", []any{int64(0)})); res.Err != nil || !interp.Equal(res.Value, rows) {
		t.Fatalf("rows: %s %v", interp.Format(res.Value), res.Err)
	}
	// Error text must survive the wire exactly (differential byte-identity).
	if res := c.Exec(query.Req("err", "q", []any{int64(0)})); res.Err == nil || res.Err.Error() != "no such table: ghosts" {
		t.Fatalf("err: %v", res.Err)
	}
	br := c.ExecBatch(query.BatchReq("double", "q", [][]any{{int64(1)}, {int64(2)}, {int64(3)}}))
	want := []int64{2, 4, 6}
	for i, v := range br.Values {
		if br.Errs[i] != nil || !interp.Equal(v, want[i]) {
			t.Fatalf("batch member %d: %v %v", i, v, br.Errs[i])
		}
	}
}

func TestConcurrentPipelining(t *testing.T) {
	s := startServer(t, echoBackend(), ServerOptions{})
	c := dial(t, s)
	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				n := int64(g*1000 + i)
				res := c.Exec(query.Req("d", "q", []any{n}))
				if res.Err != nil {
					errs[g] = res.Err
					return
				}
				if !interp.Equal(res.Value, n*2) {
					errs[g] = fmt.Errorf("response misrouted: sent %d got %v", n, res.Value)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerShedsOverBudgetAndRecovers(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		started <- struct{}{}
		<-release
		return query.Ok(int64(1))
	}}
	s := startServer(t, backend, ServerOptions{MaxInflight: 2})
	c := dial(t, s)

	type out struct{ err error }
	results := make(chan out, 4)
	for i := 0; i < 2; i++ {
		go func() {
			res := c.Exec(query.Req("slow", "q", nil))
			results <- out{res.Err}
		}()
	}
	// Wait until both admitted requests occupy the budget.
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("admitted requests never reached the backend")
		}
	}
	// Budget full: the next requests must shed, not queue.
	for i := 0; i < 2; i++ {
		res := c.Exec(query.Req("extra", "q", nil))
		if !errors.Is(res.Err, query.ErrOverloaded) {
			t.Fatalf("over-budget request got %v, want ErrOverloaded", res.Err)
		}
	}
	if got := s.Admission().Shed(); got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if o := <-results; o.err != nil {
			t.Fatalf("admitted request failed: %v", o.err)
		}
	}
	// Budget released: admission recovers.
	if res := c.Exec(query.Req("after", "q", nil)); res.Err != nil {
		t.Fatalf("post-recovery request failed: %v", res.Err)
	}
	a := s.Admission()
	if a.Admitted() != 3 || a.Shed() != 2 {
		t.Fatalf("counters: admitted=%d shed=%d, want 3/2", a.Admitted(), a.Shed())
	}
	if a.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", a.Inflight())
	}
}

func TestBatchShedsWholeOrAdmitsWhole(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	backend := &stubBackend{
		exec: func(req query.Request) query.Result { return query.Ok(int64(0)) },
		execBatch: func(req query.BatchRequest) query.BatchResult {
			started <- struct{}{}
			<-release
			return query.BatchResult{Values: make([]any, len(req.ArgSets)), Errs: make([]error, len(req.ArgSets))}
		},
	}
	s := startServer(t, backend, ServerOptions{MaxInflight: 3})
	c := dial(t, s)
	done := make(chan query.BatchResult, 1)
	go func() {
		done <- c.ExecBatch(query.BatchReq("b", "q", [][]any{{int64(1)}, {int64(2)}}))
	}()
	<-started // 2 of 3 units held
	// A 2-member batch does not fit in the remaining 1 unit: every member
	// sheds with ErrOverloaded, none executes.
	br := c.ExecBatch(query.BatchReq("b", "q", [][]any{{int64(3)}, {int64(4)}}))
	for i, err := range br.Errs {
		if !errors.Is(err, query.ErrOverloaded) {
			t.Fatalf("member %d: %v, want ErrOverloaded", i, err)
		}
	}
	// A single Exec fits in the remaining unit.
	if res := c.Exec(query.Req("one", "q", nil)); res.Err != nil {
		t.Fatalf("single request should fit: %v", res.Err)
	}
	close(release)
	if br := <-done; br.Errs[0] != nil || br.Errs[1] != nil {
		t.Fatalf("admitted batch failed: %v", br.Errs)
	}
}

func TestClientDeadlineAbandonsSlowRequest(t *testing.T) {
	release := make(chan struct{})
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		if req.Name == "slow" {
			<-release
		}
		return query.Ok(int64(7))
	}}
	s := startServer(t, backend, ServerOptions{})
	c := dial(t, s)

	start := time.Now()
	res := c.Exec(query.Req("slow", "q", nil).WithDeadline(query.After(30 * time.Millisecond)))
	if !errors.Is(res.Err, query.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", res.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline return took %v", elapsed)
	}
	close(release)
	// The abandoned request's late response must not poison the connection
	// or be delivered to the next request.
	for i := 0; i < 3; i++ {
		if res := c.Exec(query.Req("fast", "q", nil)); res.Err != nil || !interp.Equal(res.Value, int64(7)) {
			t.Fatalf("connection unusable after abandoned request: %v %v", res.Value, res.Err)
		}
	}
}

func TestServerRejectsExpiredDeadline(t *testing.T) {
	executed := false
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		executed = true
		return query.Ok(int64(0))
	}}
	s := startServer(t, backend, ServerOptions{})

	// Hand-roll the connection so an already-expired deadline actually
	// crosses the wire (the Client would reject it locally).
	conn, err := stdnet.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgHello, EncodeHello()); err != nil {
		t.Fatal(err)
	}
	if msgType, _, err := ReadFrame(conn); err != nil || msgType != MsgHelloAck {
		t.Fatalf("handshake: %d %v", msgType, err)
	}
	req := query.Req("late", "q", nil)
	req.Deadline = query.FromUnixNanos(1) // 1970: long expired
	payload, err := EncodeExec(5, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, MsgExec, payload); err != nil {
		t.Fatal(err)
	}
	msgType, respPayload, err := ReadFrame(conn)
	if err != nil || msgType != MsgResult {
		t.Fatalf("response: %d %v", msgType, err)
	}
	id, res, err := DecodeResult(respPayload)
	if err != nil || id != 5 {
		t.Fatalf("decode: id=%d %v", id, err)
	}
	if !errors.Is(res.Err, query.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", res.Err)
	}
	if executed {
		t.Fatal("expired request reached the backend")
	}
}

func TestVersionMismatchClosesConnection(t *testing.T) {
	s := startServer(t, echoBackend(), ServerOptions{})
	conn, err := stdnet.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := EncodeHello()
	binary.BigEndian.PutUint16(hello[4:6], Version+1)
	if err := WriteFrame(conn, MsgHello, hello); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadFrame(conn); err == nil {
		t.Fatal("server answered a mismatched version")
	}
}

func TestSessionIsPerConnection(t *testing.T) {
	var mu sync.Mutex
	seen := map[*query.Session][]string{}
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		mu.Lock()
		seen[req.Session] = append(seen[req.Session], req.Name)
		mu.Unlock()
		return query.Ok(int64(0))
	}}
	s := startServer(t, backend, ServerOptions{})
	c1 := dial(t, s)
	c2 := dial(t, s)
	c1.Exec(query.Req("a1", "q", nil))
	c1.Exec(query.Req("a2", "q", nil))
	c2.Exec(query.Req("b1", "q", nil))
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("%d sessions for 2 connections", len(seen))
	}
	for sess, names := range seen {
		if sess == nil {
			t.Fatal("request served with nil session")
		}
		if len(names) == 2 && (names[0][0] != 'a' || names[1][0] != 'a') {
			t.Fatalf("session mixed connections: %v", names)
		}
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	backend := &stubBackend{exec: func(req query.Request) query.Result {
		<-release
		return query.Ok(int64(0))
	}}
	s := startServer(t, backend, ServerOptions{})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan query.Result, 1)
	go func() { done <- c.Exec(query.Req("hang", "q", nil)) }()
	time.Sleep(20 * time.Millisecond) // let the request reach the wire
	c.Close()
	select {
	case res := <-done:
		if !errors.Is(res.Err, ErrClientClosed) {
			t.Fatalf("got %v, want ErrClientClosed", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request hung across Close")
	}
	if res := c.Exec(query.Req("after", "q", nil)); res.Err == nil {
		t.Fatal("closed client accepted a request")
	}
}
