package net

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/query"
)

// roundTripValue encodes v and decodes it back.
func roundTripValue(t *testing.T, v any) any {
	t.Helper()
	b, err := AppendValue(nil, v)
	if err != nil {
		t.Fatalf("encode %v: %v", v, err)
	}
	r := &reader{b: b}
	out := r.value()
	if r.err != nil {
		t.Fatalf("decode %v: %v", v, r.err)
	}
	if len(r.b) != 0 {
		t.Fatalf("decode %v: %d trailing bytes", v, len(r.b))
	}
	return out
}

func TestValueRoundTrip(t *testing.T) {
	cases := []any{
		nil,
		int64(0), int64(-1), int64(42), int64(math.MaxInt64), int64(math.MinInt64),
		"", "hello", "naïve — utf8 ✓",
		true, false,
		interp.NewList(),
		interp.NewList(int64(1), "two", true, nil, interp.NewList(int64(3))),
		interp.Row{},
		interp.Row{"id": int64(7), "name": "x"},
		interp.Rows{},
		// homogeneous rows: exercises the columnar encoding
		interp.Rows{
			{"id": int64(1), "name": "a"},
			{"id": int64(2), "name": "b"},
			{"id": int64(3), "name": "c"},
		},
		// heterogeneous rows: exercises the per-row fallback
		interp.Rows{
			{"id": int64(1)},
			{"id": int64(2), "extra": "y"},
		},
	}
	for _, v := range cases {
		got := roundTripValue(t, v)
		if !interp.Equal(got, v) {
			t.Errorf("round trip changed value: %s -> %s",
				interp.Format(v), interp.Format(got))
		}
	}
}

func TestRowsColumnarEncodingIsCompact(t *testing.T) {
	// 100 homogeneous rows must not pay 100 copies of the column names.
	rows := make(interp.Rows, 100)
	for i := range rows {
		rows[i] = interp.Row{"somewhat_long_column_name": int64(i), "another_column_name": "v"}
	}
	columnar, err := AppendValue(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	hetero := make(interp.Rows, len(rows))
	copy(hetero, rows)
	hetero[50] = interp.Row{"different": int64(1)} // forces per-row fallback
	perRow, err := AppendValue(nil, hetero)
	if err != nil {
		t.Fatal(err)
	}
	if len(columnar) >= len(perRow) {
		t.Fatalf("columnar encoding (%dB) not smaller than per-row (%dB)",
			len(columnar), len(perRow))
	}
}

func TestExecRoundTrip(t *testing.T) {
	req := query.Req("q1", "select * from t where id = ?", []any{int64(5), "x"})
	req.Consistency = query.ReadYourWrites
	req.Deadline = query.FromUnixNanos(1234567890)
	payload, err := EncodeExec(99, req)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeExec(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 99 || got.Name != req.Name || got.SQL != req.SQL ||
		got.Consistency != req.Consistency ||
		got.Deadline.UnixNanos() != req.Deadline.UnixNanos() {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Args) != 2 || !interp.Equal(got.Args[0], int64(5)) || !interp.Equal(got.Args[1], "x") {
		t.Fatalf("args mismatch: %v", got.Args)
	}
}

func TestExecBatchRoundTrip(t *testing.T) {
	req := query.BatchReq("b", "insert into t values (?)", [][]any{{int64(1)}, {int64(2)}, {}})
	payload, err := EncodeExecBatch(7, req)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeExecBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || got.Name != "b" || len(got.ArgSets) != 3 {
		t.Fatalf("mismatch: %+v", got)
	}
	if !got.Deadline.IsZero() {
		t.Fatalf("zero deadline did not survive: %v", got.Deadline)
	}
}

func TestResultErrorCodes(t *testing.T) {
	cases := []struct {
		in   error
		want error // sentinel surviving errors.Is, or nil for text equality
	}{
		{query.ErrOverloaded, query.ErrOverloaded},
		{query.ErrDeadlineExceeded, query.ErrDeadlineExceeded},
		{errors.New("table missing: users"), nil},
	}
	for _, c := range cases {
		payload, err := EncodeResult(1, query.Fail(c.in))
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := DecodeResult(payload)
		if err != nil {
			t.Fatal(err)
		}
		if c.want != nil {
			if !errors.Is(res.Err, c.want) {
				t.Errorf("sentinel %v lost identity: got %v", c.in, res.Err)
			}
		} else if res.Err == nil || res.Err.Error() != c.in.Error() {
			t.Errorf("error text changed: %q -> %v", c.in, res.Err)
		}
	}
}

func TestBatchResultRoundTrip(t *testing.T) {
	res := query.BatchResult{
		Values: []any{int64(10), nil, nil},
		Errs:   []error{nil, errors.New("boom"), query.ErrOverloaded},
	}
	payload, err := EncodeBatchResult(3, res)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := DecodeBatchResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || len(got.Values) != 3 {
		t.Fatalf("mismatch: %+v", got)
	}
	if !interp.Equal(got.Values[0], int64(10)) || got.Errs[0] != nil {
		t.Errorf("member 0: %v %v", got.Values[0], got.Errs[0])
	}
	if got.Errs[1] == nil || got.Errs[1].Error() != "boom" {
		t.Errorf("member 1: %v", got.Errs[1])
	}
	if !errors.Is(got.Errs[2], query.ErrOverloaded) {
		t.Errorf("member 2: %v", got.Errs[2])
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgExec, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgExec || string(payload) != "payload" {
		t.Fatalf("got type %d payload %q", msgType, payload)
	}
}

func TestHandshakeCodec(t *testing.T) {
	v, err := DecodeHello(EncodeHello())
	if err != nil || v != Version {
		t.Fatalf("hello: %d %v", v, err)
	}
	v, err = DecodeHelloAck(EncodeHelloAck())
	if err != nil || v != Version {
		t.Fatalf("helloAck: %d %v", v, err)
	}
	if _, err := DecodeHello([]byte("not a hello")); err == nil {
		t.Fatal("garbage hello accepted")
	}
}

// FuzzFrameRoundTrip throws arbitrary bytes at the frame reader and — when
// they happen to parse as a request — re-encodes the decoded request,
// checking the decoder never panics, never over-reads, and that
// decode(encode(decode(x))) is stable.
func FuzzFrameRoundTrip(f *testing.F) {
	seedReq, _ := EncodeExec(1, query.Req("q", "select 1", []any{int64(1), "s", true, nil}))
	f.Add(MsgExec, seedReq)
	rows := interp.Rows{{"a": int64(1)}, {"a": int64(2)}}
	seedRes, _ := EncodeResult(2, query.Ok(rows))
	f.Add(MsgResult, seedRes)
	seedBatch, _ := EncodeExecBatch(3, query.BatchReq("b", "q", [][]any{{int64(1)}, {"x"}}))
	f.Add(MsgExecBatch, seedBatch)
	seedBR, _ := EncodeBatchResult(4, query.BatchResult{
		Values: []any{nil, int64(9)}, Errs: []error{query.ErrDeadlineExceeded, nil}})
	f.Add(MsgBatchResult, seedBR)
	f.Add(byte(200), []byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, msgType byte, payload []byte) {
		// The frame layer itself must round-trip any (type, payload).
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msgType, payload); err != nil {
			t.Skip() // oversized
		}
		gotType, gotPayload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("own frame unreadable: %v", err)
		}
		if gotType != msgType || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame changed in transit")
		}

		// Message decoders must reject or round-trip — never panic.
		switch msgType {
		case MsgExec:
			id, req, err := DecodeExec(payload)
			if err != nil {
				return
			}
			re, err := EncodeExec(id, req)
			if err != nil {
				return // decoded args may contain an unencodable nil map? (they cannot; but be lenient)
			}
			id2, req2, err := DecodeExec(re)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if id2 != id || req2.Name != req.Name || req2.SQL != req.SQL ||
				len(req2.Args) != len(req.Args) {
				t.Fatalf("unstable round trip: %+v vs %+v", req, req2)
			}
		case MsgExecBatch:
			id, req, err := DecodeExecBatch(payload)
			if err != nil {
				return
			}
			re, err := EncodeExecBatch(id, req)
			if err != nil {
				return
			}
			if _, req2, err := DecodeExecBatch(re); err != nil || len(req2.ArgSets) != len(req.ArgSets) {
				t.Fatalf("unstable batch round trip: %v", err)
			}
		case MsgResult:
			id, res, err := DecodeResult(payload)
			if err != nil {
				return
			}
			re, err := EncodeResult(id, res)
			if err != nil {
				return
			}
			if _, res2, err := DecodeResult(re); err != nil || !interp.Equal(res2.Value, res.Value) {
				t.Fatalf("unstable result round trip: %v", err)
			}
		case MsgBatchResult:
			id, res, err := DecodeBatchResult(payload)
			if err != nil {
				return
			}
			re, err := EncodeBatchResult(id, res)
			if err != nil {
				return
			}
			if _, res2, err := DecodeBatchResult(re); err != nil || len(res2.Errs) != len(res.Errs) {
				t.Fatalf("unstable batch result round trip: %v", err)
			}
		}
	})
}
