// Package storage implements the server's tables: typed schemas, row
// storage laid out in fixed-fanout pages, hash indexes (unique and
// secondary), and the page-access bookkeeping the buffer pool and disk model
// consume. It is deliberately simple — heap files plus hash indexes — which
// matches the access paths the paper's workloads exercise (point lookups by
// key, secondary-index range-of-equals lookups, full scans, appends).
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// ColType is a column's type.
type ColType int

const (
	// TInt is a 64-bit integer column.
	TInt ColType = iota
	// TString is a string column.
	TString
)

// Column describes one column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema struct {
	Cols []Column
	by   map[string]int
}

// NewSchema builds a schema.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, by: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.by[c.Name] = i
	}
	return s
}

// ColIndex returns a column's position, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.by[name]; ok {
		return i
	}
	return -1
}

// DefaultRowsPerPage is the page fanout used when a table does not override
// it. Wide rows (user profiles with text) use smaller fanouts.
const DefaultRowsPerPage = 64

// Table is a heap table plus its indexes.
type Table struct {
	Name   string
	Schema *Schema
	Extent int // buffer-pool extent id for data pages

	mu          sync.RWMutex
	rowsPerPage int
	rows        [][]any
	indexes     map[string]*Index
}

// Index is a hash index on one column. IndexExtent pages are modelled as
// hash buckets spread over the index extent.
type Index struct {
	Column string
	Unique bool
	Extent int
	Pages  int // bucket pages
	m      map[any][]int
}

// NewTable creates an empty table. Extents are assigned by the catalog.
func NewTable(name string, schema *Schema, extent int) *Table {
	return &Table{
		Name:        name,
		Schema:      schema,
		Extent:      extent,
		rowsPerPage: DefaultRowsPerPage,
		indexes:     make(map[string]*Index),
	}
}

// SetRowsPerPage overrides the page fanout (call before loading data).
func (t *Table) SetRowsPerPage(n int) {
	if n > 0 {
		t.mu.Lock()
		t.rowsPerPage = n
		t.mu.Unlock()
	}
}

// RowsPerPage returns the table's page fanout.
func (t *Table) RowsPerPage() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsPerPage
}

// AddIndex creates a hash index over an existing column, building it from
// current rows.
func (t *Table) AddIndex(column string, unique bool, extent, pages int) error {
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("storage: %s: no column %q", t.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := &Index{Column: column, Unique: unique, Extent: extent, Pages: pages, m: make(map[any][]int)}
	for rid, row := range t.rows {
		ix.m[row[ci]] = append(ix.m[row[ci]], rid)
	}
	t.indexes[column] = ix
	return nil
}

// Index returns the index on column, or nil.
func (t *Table) Index(column string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[column]
}

// Indexes lists the table's indexes sorted by column name, so callers that
// replicate a physical design (the shard router's partitioner) see a
// deterministic order.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// Insert appends a row, maintaining indexes, and returns its row id.
func (t *Table) Insert(row []any) (int, error) {
	if len(row) != len(t.Schema.Cols) {
		return 0, fmt.Errorf("storage: %s: insert arity %d, want %d",
			t.Name, len(row), len(t.Schema.Cols))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := len(t.rows)
	t.rows = append(t.rows, row)
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		ix.m[row[ci]] = append(ix.m[row[ci]], rid)
	}
	return rid, nil
}

// Row returns row rid (shared slice; callers must not mutate).
func (t *Table) Row(rid int) []any {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[rid]
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// NumPages returns the data page count.
func (t *Table) NumPages() int {
	n := t.NumRows()
	rpp := t.RowsPerPage()
	return (n + rpp - 1) / rpp
}

// PageOf maps a row id to its data page number.
func (t *Table) PageOf(rid int) int { return rid / t.RowsPerPage() }

// Lookup returns the row ids matching value on an indexed column, plus the
// index bucket page touched. ok is false when no index exists on the column.
func (t *Table) Lookup(column string, value any) (rids []int, bucketPage int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.indexes[column]
	if ix == nil {
		return nil, 0, false
	}
	rids = ix.m[value]
	bucketPage = bucketOf(value, ix.Pages)
	return rids, bucketPage, true
}

// ScanEq returns row ids matching value by scanning (no index).
func (t *Table) ScanEq(column string, value any) ([]int, error) {
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: %s: no column %q", t.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for rid, row := range t.rows {
		if row[ci] == value {
			out = append(out, rid)
		}
	}
	return out, nil
}

func bucketOf(v any, pages int) int {
	if pages <= 0 {
		return 0
	}
	s := fmt.Sprintf("%v", v)
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h % uint64(pages))
}

// Catalog is a named collection of tables with extent assignment.
type Catalog struct {
	mu         sync.RWMutex
	tables     map[string]*Table
	nextExtent int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// CreateTable allocates a table and its data extent.
func (c *Catalog) CreateTable(name string, schema *Schema) *Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	ext := c.nextExtent
	c.nextExtent++
	t := NewTable(name, schema, ext)
	c.tables[name] = t
	return t
}

// NextExtent reserves a fresh extent id (for indexes).
func (c *Catalog) NextExtent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ext := c.nextExtent
	c.nextExtent++
	return ext
}

// Table returns a table by name, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables lists all tables.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}
