// Package storage implements the server's tables: typed schemas, row
// storage laid out in fixed-fanout pages, hash indexes (unique and
// secondary), and the page-access bookkeeping the buffer pool and disk model
// consume. It is deliberately simple — heap files plus hash indexes — which
// matches the access paths the paper's workloads exercise (point lookups by
// key, secondary-index range-of-equals lookups, full scans, appends).
//
// Rows are stored column-wise: each column keeps a typed vector ([]int64 or
// []string), so execution reads unboxed values with no per-row slice or
// interface dispatch. The []any-based accessors (Insert, Row) remain as the
// compatibility boundary toward the interpreter's value vocabulary; the hot
// path uses View/ColInt/ColStr instead. See README.md for the layout and the
// accessor contract.
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// ColType is a column's type.
type ColType int

const (
	// TInt is a 64-bit integer column.
	TInt ColType = iota
	// TString is a string column.
	TString
)

// Column describes one column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema struct {
	Cols []Column
	by   map[string]int
}

// NewSchema builds a schema.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols, by: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.by[c.Name] = i
	}
	return s
}

// ColIndex returns a column's position, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.by[name]; ok {
		return i
	}
	return -1
}

// smallBoxCount mirrors the interpreter's small-integer interning: boxing an
// int64 below this bound returns a shared, preallocated interface value, so
// reading typed columns back into the []any vocabulary does not allocate for
// the row ids, counts and category keys the workloads traffic in.
const smallBoxCount = 8192

var smallBox [smallBoxCount]any

func init() {
	for i := range smallBox {
		smallBox[i] = int64(i)
	}
}

// BoxInt boxes an int64 into an interface value, interning small values.
func BoxInt(v int64) any {
	if v >= 0 && v < smallBoxCount {
		return smallBox[v]
	}
	return v
}

// colVec is one column's storage. The declared type picks the typed vector;
// if a value that does not match the declared type is ever inserted the
// column degrades to the boxed vector (anys), which preserves the exact
// semantics the old row-wise []any storage had for type-confused data. The
// evaluation apps never degrade a column, so the typed path is the only one
// that runs hot.
type colVec struct {
	kind ColType
	ints []int64
	strs []string
	anys []any // non-nil once degraded; then ints/strs are stale
}

func (c *colVec) degraded() bool { return c.anys != nil }

// degrade switches the column to boxed storage, copying the typed prefix.
func (c *colVec) degrade(n int) {
	if c.anys != nil {
		return
	}
	anys := make([]any, 0, n+1)
	switch c.kind {
	case TInt:
		for _, v := range c.ints[:n] {
			anys = append(anys, BoxInt(v))
		}
	case TString:
		for _, v := range c.strs[:n] {
			anys = append(anys, v)
		}
	}
	c.anys = anys
}

// append stores one boxed value, degrading on type mismatch. n is the row
// count before the append.
func (c *colVec) append(v any, n int) {
	if c.anys == nil {
		switch c.kind {
		case TInt:
			if iv, ok := v.(int64); ok {
				c.ints = append(c.ints, iv)
				return
			}
		case TString:
			if sv, ok := v.(string); ok {
				c.strs = append(c.strs, sv)
				return
			}
		}
		c.degrade(n)
	}
	c.anys = append(c.anys, v)
}

// get returns the boxed value at rid.
func (c *colVec) get(rid int) any {
	if c.anys != nil {
		return c.anys[rid]
	}
	if c.kind == TInt {
		return BoxInt(c.ints[rid])
	}
	return c.strs[rid]
}

// DefaultRowsPerPage is the page fanout used when a table does not override
// it. Wide rows (user profiles with text) use smaller fanouts.
const DefaultRowsPerPage = 64

// Table is a heap table plus its indexes.
type Table struct {
	Name   string
	Schema *Schema
	Extent int // buffer-pool extent id for data pages

	mu          sync.RWMutex
	rowsPerPage int
	numRows     int
	cols        []colVec
	indexes     map[string]*Index
}

// Index is a hash index on one column. IndexExtent pages are modelled as
// hash buckets spread over the index extent. The rid-list map doubles as the
// index's key statistics: KeyCount answers "how many rows carry this key"
// without touching a data page, which the shard router's scatter pruning
// consults.
type Index struct {
	Column string
	Unique bool
	Extent int
	Pages  int // bucket pages
	m      map[any][]int
}

// NewTable creates an empty table. Extents are assigned by the catalog.
func NewTable(name string, schema *Schema, extent int) *Table {
	cols := make([]colVec, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i].kind = c.Type
	}
	return &Table{
		Name:        name,
		Schema:      schema,
		Extent:      extent,
		rowsPerPage: DefaultRowsPerPage,
		cols:        cols,
		indexes:     make(map[string]*Index),
	}
}

// SetRowsPerPage overrides the page fanout (call before loading data).
func (t *Table) SetRowsPerPage(n int) {
	if n > 0 {
		t.mu.Lock()
		t.rowsPerPage = n
		t.mu.Unlock()
	}
}

// RowsPerPage returns the table's page fanout.
func (t *Table) RowsPerPage() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsPerPage
}

// AddIndex creates a hash index over an existing column, building it from
// current rows.
func (t *Table) AddIndex(column string, unique bool, extent, pages int) error {
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("storage: %s: no column %q", t.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ix := &Index{Column: column, Unique: unique, Extent: extent, Pages: pages, m: make(map[any][]int)}
	c := &t.cols[ci]
	for rid := 0; rid < t.numRows; rid++ {
		k := c.get(rid)
		ix.m[k] = append(ix.m[k], rid)
	}
	t.indexes[column] = ix
	return nil
}

// Index returns the index on column, or nil.
func (t *Table) Index(column string) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[column]
}

// Indexes lists the table's indexes sorted by column name, so callers that
// replicate a physical design (the shard router's partitioner) see a
// deterministic order.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// Insert appends a row, maintaining indexes, and returns its row id. Values
// matching the declared column types are stored unboxed; a mismatched value
// degrades its column to boxed storage rather than erroring, preserving the
// permissive semantics of the row-wise heap. The row slice is not retained.
func (t *Table) Insert(row []any) (int, error) {
	if len(row) != len(t.Schema.Cols) {
		return 0, fmt.Errorf("storage: %s: insert arity %d, want %d",
			t.Name, len(row), len(t.Schema.Cols))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := t.numRows
	for i := range t.cols {
		t.cols[i].append(row[i], rid)
	}
	t.numRows++
	for col, ix := range t.indexes {
		ci := t.Schema.ColIndex(col)
		ix.m[row[ci]] = append(ix.m[row[ci]], rid)
	}
	return rid, nil
}

// Row materializes row rid as a fresh boxed slice (compatibility shim for
// load/replication and tests; execution reads columns through View instead).
func (t *Table) Row(rid int) []any {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]any, len(t.cols))
	for i := range t.cols {
		out[i] = t.cols[i].get(rid)
	}
	return out
}

// ColInt returns the typed vector of an int column (and true), or nil and
// false when the column is not typed-int (wrong declared type, or degraded
// by a mismatched insert). The slice is shared, append-only storage: callers
// must not mutate it and must bound reads by a row count observed under the
// same View or NumRows call.
func (t *Table) ColInt(ci int) ([]int64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &t.cols[ci]
	if c.kind != TInt || c.degraded() {
		return nil, false
	}
	return c.ints, true
}

// ColStr is ColInt for string columns.
func (t *Table) ColStr(ci int) ([]string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &t.cols[ci]
	if c.kind != TString || c.degraded() {
		return nil, false
	}
	return c.strs, true
}

// ColView is one column of a View: exactly one of Ints, Strs, Anys is
// non-nil (Anys for degraded columns).
type ColView struct {
	Kind ColType
	Ints []int64
	Strs []string
	Anys []any
}

// Any returns the boxed value at rid (small ints interned).
func (c *ColView) Any(rid int) any {
	if c.Anys != nil {
		return c.Anys[rid]
	}
	if c.Kind == TInt {
		return BoxInt(c.Ints[rid])
	}
	return c.Strs[rid]
}

// View is a consistent read snapshot of a table: a row count and the column
// vectors as of one instant. Reads through a View take no locks; the vectors
// are append-only, so indexes below NumRows stay valid even while concurrent
// inserts extend the table. Views are cheap (slice headers only) and must
// not be retained across statements.
type View struct {
	NumRows int
	Cols    []ColView
}

// ViewInto fills v with a snapshot of the table, reusing v.Cols' capacity so
// a pooled View allocates nothing in steady state.
func (t *Table) ViewInto(v *View) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v.NumRows = t.numRows
	if cap(v.Cols) < len(t.cols) {
		v.Cols = make([]ColView, len(t.cols))
	} else {
		v.Cols = v.Cols[:len(t.cols)]
	}
	for i := range t.cols {
		c := &t.cols[i]
		v.Cols[i] = ColView{Kind: c.kind, Anys: c.anys}
		if c.anys == nil {
			v.Cols[i].Ints = c.ints
			v.Cols[i].Strs = c.strs
		}
	}
}

// View returns a fresh snapshot (convenience for callers without a pool).
func (t *Table) View() *View {
	v := &View{}
	t.ViewInto(v)
	return v
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numRows
}

// NumPages returns the data page count.
func (t *Table) NumPages() int {
	n := t.NumRows()
	rpp := t.RowsPerPage()
	return (n + rpp - 1) / rpp
}

// PageOf maps a row id to its data page number.
func (t *Table) PageOf(rid int) int { return rid / t.RowsPerPage() }

// Lookup returns the row ids matching value on an indexed column, plus the
// index bucket page touched. ok is false when no index exists on the column.
// The rid slice aliases the index's internal storage: callers must treat it
// as read-only and use it within the current statement only.
func (t *Table) Lookup(column string, value any) (rids []int, bucketPage int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.indexes[column]
	if ix == nil {
		return nil, 0, false
	}
	rids = ix.m[value]
	bucketPage = bucketOf(value, ix.Pages)
	return rids, bucketPage, true
}

// IndexKeyCount reports how many rows carry value in column's index — the
// per-shard key statistic the scatter planner prunes with. ok is false when
// the column has no index.
func (t *Table) IndexKeyCount(column string, value any) (n int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.indexes[column]
	if ix == nil {
		return 0, false
	}
	return len(ix.m[value]), true
}

// ScanEq returns row ids matching value by scanning (no index).
func (t *Table) ScanEq(column string, value any) ([]int, error) {
	ci := t.Schema.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: %s: no column %q", t.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	c := &t.cols[ci]
	switch {
	case c.degraded():
		for rid := 0; rid < t.numRows; rid++ {
			if c.anys[rid] == value {
				out = append(out, rid)
			}
		}
	case c.kind == TInt:
		v, ok := value.(int64)
		if !ok {
			return nil, nil // an int column never equals a non-int value
		}
		for rid, x := range c.ints[:t.numRows] {
			if x == v {
				out = append(out, rid)
			}
		}
	default:
		v, ok := value.(string)
		if !ok {
			return nil, nil
		}
		for rid, x := range c.strs[:t.numRows] {
			if x == v {
				out = append(out, rid)
			}
		}
	}
	return out, nil
}

func bucketOf(v any, pages int) int {
	if pages <= 0 {
		return 0
	}
	s := fmt.Sprintf("%v", v)
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int(h % uint64(pages))
}

// Catalog is a named collection of tables with extent assignment.
type Catalog struct {
	mu         sync.RWMutex
	tables     map[string]*Table
	nextExtent int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// CreateTable allocates a table and its data extent.
func (c *Catalog) CreateTable(name string, schema *Schema) *Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	ext := c.nextExtent
	c.nextExtent++
	t := NewTable(name, schema, ext)
	c.tables[name] = t
	return t
}

// NextExtent reserves a fresh extent id (for indexes).
func (c *Catalog) NextExtent() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ext := c.nextExtent
	c.nextExtent++
	return ext
}

// Table returns a table by name, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables lists all tables.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}
