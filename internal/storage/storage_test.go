package storage

import (
	"testing"
	"testing/quick"
)

func newKV(t *testing.T) *Table {
	t.Helper()
	cat := NewCatalog()
	tbl := cat.CreateTable("kv", NewSchema(
		Column{Name: "k", Type: TInt},
		Column{Name: "v", Type: TString},
	))
	return tbl
}

func TestInsertAndRow(t *testing.T) {
	tbl := newKV(t)
	rid, err := tbl.Insert([]any{int64(1), "a"})
	if err != nil || rid != 0 {
		t.Fatalf("%d %v", rid, err)
	}
	if tbl.Row(0)[1] != "a" || tbl.NumRows() != 1 {
		t.Fatal("row content")
	}
	if _, err := tbl.Insert([]any{int64(1)}); err == nil {
		t.Fatal("arity must be checked")
	}
}

func TestIndexMaintenance(t *testing.T) {
	tbl := newKV(t)
	for i := int64(0); i < 100; i++ {
		tbl.Insert([]any{i % 10, "x"})
	}
	if err := tbl.AddIndex("k", false, 1, 4); err != nil {
		t.Fatal(err)
	}
	rids, _, ok := tbl.Lookup("k", int64(3))
	if !ok || len(rids) != 10 {
		t.Fatalf("lookup: %v %v", rids, ok)
	}
	// Inserts after index creation are indexed too.
	tbl.Insert([]any{int64(3), "y"})
	rids, _, _ = tbl.Lookup("k", int64(3))
	if len(rids) != 11 {
		t.Fatalf("index not maintained: %d", len(rids))
	}
	if err := tbl.AddIndex("nope", false, 2, 4); err == nil {
		t.Fatal("bad column must error")
	}
}

func TestScanEq(t *testing.T) {
	tbl := newKV(t)
	for i := int64(0); i < 20; i++ {
		tbl.Insert([]any{i % 4, "x"})
	}
	rids, err := tbl.ScanEq("k", int64(1))
	if err != nil || len(rids) != 5 {
		t.Fatalf("%v %v", rids, err)
	}
}

func TestPaging(t *testing.T) {
	tbl := newKV(t)
	tbl.SetRowsPerPage(8)
	for i := int64(0); i < 50; i++ {
		tbl.Insert([]any{i, "x"})
	}
	if tbl.NumPages() != 7 {
		t.Fatalf("pages = %d, want 7", tbl.NumPages())
	}
	if tbl.PageOf(0) != 0 || tbl.PageOf(7) != 0 || tbl.PageOf(8) != 1 || tbl.PageOf(49) != 6 {
		t.Fatal("PageOf mapping")
	}
}

func TestCatalogExtents(t *testing.T) {
	cat := NewCatalog()
	a := cat.CreateTable("a", NewSchema(Column{Name: "x", Type: TInt}))
	b := cat.CreateTable("b", NewSchema(Column{Name: "x", Type: TInt}))
	if a.Extent == b.Extent {
		t.Fatal("extents must be distinct")
	}
	if cat.NextExtent() == a.Extent || cat.Table("a") != a || cat.Table("zz") != nil {
		t.Fatal("catalog bookkeeping")
	}
	if len(cat.Tables()) != 2 {
		t.Fatal("table listing")
	}
}

// Property: lookup after N inserts returns exactly the rows whose key
// matches, whatever the key distribution.
func TestLookupQuick(t *testing.T) {
	prop := func(keys []uint8) bool {
		tbl := newKV(t)
		if err := tbl.AddIndex("k", false, 1, 4); err != nil {
			return false
		}
		counts := map[int64]int{}
		for _, k := range keys {
			key := int64(k % 16)
			tbl.Insert([]any{key, "x"})
			counts[key]++
		}
		for key, want := range counts {
			rids, _, ok := tbl.Lookup("k", key)
			if !ok || len(rids) != want {
				return false
			}
			for _, rid := range rids {
				if tbl.Row(rid)[0] != key {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestColumnarTypedAccessors pins the unboxed accessor contract: typed
// columns expose their vectors, Row materializes the same values boxed, and
// a View snapshot stays consistent while inserts continue.
func TestColumnarTypedAccessors(t *testing.T) {
	tbl := newKV(t)
	for i := int64(0); i < 10; i++ {
		tbl.Insert([]any{i * 2, "x"})
	}
	ints, ok := tbl.ColInt(0)
	if !ok || len(ints) < 10 || ints[3] != 6 {
		t.Fatalf("ColInt: %v %v", ints, ok)
	}
	strs, ok := tbl.ColStr(1)
	if !ok || strs[0] != "x" {
		t.Fatalf("ColStr: %v %v", strs, ok)
	}
	if _, ok := tbl.ColInt(1); ok {
		t.Fatal("ColInt must refuse a string column")
	}
	if _, ok := tbl.ColStr(0); ok {
		t.Fatal("ColStr must refuse an int column")
	}

	var v View
	tbl.ViewInto(&v)
	if v.NumRows != 10 {
		t.Fatalf("view rows: %d", v.NumRows)
	}
	tbl.Insert([]any{int64(100), "y"}) // grows past the snapshot
	if v.NumRows != 10 || v.Cols[0].Ints[9] != 18 {
		t.Fatal("view must keep its snapshot bound")
	}
	if got := v.Cols[0].Any(3); got != int64(6) {
		t.Fatalf("boxed view read: %v", got)
	}
	if got := tbl.Row(3); got[0] != int64(6) || got[1] != "x" {
		t.Fatalf("Row shim: %v", got)
	}
	// Row returns a fresh slice: mutating it must not touch the table.
	r := tbl.Row(3)
	r[0] = int64(-1)
	if tbl.Row(3)[0] != int64(6) {
		t.Fatal("Row slice aliases storage")
	}
}

// TestColumnDegradation: inserting a value that mismatches the declared type
// degrades the column to boxed storage with identical read semantics — the
// permissive behaviour the row-wise heap had.
func TestColumnDegradation(t *testing.T) {
	tbl := newKV(t)
	tbl.Insert([]any{int64(1), "a"})
	tbl.Insert([]any{"oops", "b"}) // string into the int column
	tbl.Insert([]any{int64(3), "c"})
	if _, ok := tbl.ColInt(0); ok {
		t.Fatal("degraded column must refuse the typed accessor")
	}
	if tbl.Row(0)[0] != int64(1) || tbl.Row(1)[0] != "oops" || tbl.Row(2)[0] != int64(3) {
		t.Fatal("degraded column lost values")
	}
	var v View
	tbl.ViewInto(&v)
	if v.Cols[0].Anys == nil || v.Cols[0].Any(1) != "oops" {
		t.Fatal("view must expose the boxed vector for a degraded column")
	}
	// Scans and indexes still work over mixed values.
	rids, err := tbl.ScanEq("k", int64(3))
	if err != nil || len(rids) != 1 || rids[0] != 2 {
		t.Fatalf("ScanEq on degraded: %v %v", rids, err)
	}
	if err := tbl.AddIndex("k", false, 1, 4); err != nil {
		t.Fatal(err)
	}
	rids, _, ok := tbl.Lookup("k", "oops")
	if !ok || len(rids) != 1 || rids[0] != 1 {
		t.Fatalf("Lookup on degraded: %v", rids)
	}
}

// TestIndexKeyCount: the scatter planner's statistic matches the rid lists
// and tracks inserts.
func TestIndexKeyCount(t *testing.T) {
	tbl := newKV(t)
	for i := int64(0); i < 30; i++ {
		tbl.Insert([]any{i % 3, "x"})
	}
	if _, ok := tbl.IndexKeyCount("k", int64(0)); ok {
		t.Fatal("no index yet: must report !ok")
	}
	if err := tbl.AddIndex("k", false, 1, 4); err != nil {
		t.Fatal(err)
	}
	if n, ok := tbl.IndexKeyCount("k", int64(1)); !ok || n != 10 {
		t.Fatalf("key count: %d %v", n, ok)
	}
	if n, ok := tbl.IndexKeyCount("k", int64(99)); !ok || n != 0 {
		t.Fatalf("absent key count: %d %v", n, ok)
	}
	tbl.Insert([]any{int64(1), "y"})
	if n, _ := tbl.IndexKeyCount("k", int64(1)); n != 11 {
		t.Fatalf("stat not maintained on insert: %d", n)
	}
}

// TestBoxIntInterning: small boxed ints are shared, and values compare
// equal regardless of interning.
func TestBoxIntInterning(t *testing.T) {
	if BoxInt(5) != BoxInt(5) || BoxInt(5) != int64(5) {
		t.Fatal("interned box must equal a fresh box")
	}
	if BoxInt(1<<40) != int64(1<<40) {
		t.Fatal("large values box by value")
	}
	if BoxInt(-3) != int64(-3) {
		t.Fatal("negative values box by value")
	}
}
