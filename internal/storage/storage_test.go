package storage

import (
	"testing"
	"testing/quick"
)

func newKV(t *testing.T) *Table {
	t.Helper()
	cat := NewCatalog()
	tbl := cat.CreateTable("kv", NewSchema(
		Column{Name: "k", Type: TInt},
		Column{Name: "v", Type: TString},
	))
	return tbl
}

func TestInsertAndRow(t *testing.T) {
	tbl := newKV(t)
	rid, err := tbl.Insert([]any{int64(1), "a"})
	if err != nil || rid != 0 {
		t.Fatalf("%d %v", rid, err)
	}
	if tbl.Row(0)[1] != "a" || tbl.NumRows() != 1 {
		t.Fatal("row content")
	}
	if _, err := tbl.Insert([]any{int64(1)}); err == nil {
		t.Fatal("arity must be checked")
	}
}

func TestIndexMaintenance(t *testing.T) {
	tbl := newKV(t)
	for i := int64(0); i < 100; i++ {
		tbl.Insert([]any{i % 10, "x"})
	}
	if err := tbl.AddIndex("k", false, 1, 4); err != nil {
		t.Fatal(err)
	}
	rids, _, ok := tbl.Lookup("k", int64(3))
	if !ok || len(rids) != 10 {
		t.Fatalf("lookup: %v %v", rids, ok)
	}
	// Inserts after index creation are indexed too.
	tbl.Insert([]any{int64(3), "y"})
	rids, _, _ = tbl.Lookup("k", int64(3))
	if len(rids) != 11 {
		t.Fatalf("index not maintained: %d", len(rids))
	}
	if err := tbl.AddIndex("nope", false, 2, 4); err == nil {
		t.Fatal("bad column must error")
	}
}

func TestScanEq(t *testing.T) {
	tbl := newKV(t)
	for i := int64(0); i < 20; i++ {
		tbl.Insert([]any{i % 4, "x"})
	}
	rids, err := tbl.ScanEq("k", int64(1))
	if err != nil || len(rids) != 5 {
		t.Fatalf("%v %v", rids, err)
	}
}

func TestPaging(t *testing.T) {
	tbl := newKV(t)
	tbl.SetRowsPerPage(8)
	for i := int64(0); i < 50; i++ {
		tbl.Insert([]any{i, "x"})
	}
	if tbl.NumPages() != 7 {
		t.Fatalf("pages = %d, want 7", tbl.NumPages())
	}
	if tbl.PageOf(0) != 0 || tbl.PageOf(7) != 0 || tbl.PageOf(8) != 1 || tbl.PageOf(49) != 6 {
		t.Fatal("PageOf mapping")
	}
}

func TestCatalogExtents(t *testing.T) {
	cat := NewCatalog()
	a := cat.CreateTable("a", NewSchema(Column{Name: "x", Type: TInt}))
	b := cat.CreateTable("b", NewSchema(Column{Name: "x", Type: TInt}))
	if a.Extent == b.Extent {
		t.Fatal("extents must be distinct")
	}
	if cat.NextExtent() == a.Extent || cat.Table("a") != a || cat.Table("zz") != nil {
		t.Fatal("catalog bookkeeping")
	}
	if len(cat.Tables()) != 2 {
		t.Fatal("table listing")
	}
}

// Property: lookup after N inserts returns exactly the rows whose key
// matches, whatever the key distribution.
func TestLookupQuick(t *testing.T) {
	prop := func(keys []uint8) bool {
		tbl := newKV(t)
		if err := tbl.AddIndex("k", false, 1, 4); err != nil {
			return false
		}
		counts := map[int64]int{}
		for _, k := range keys {
			key := int64(k % 16)
			tbl.Insert([]any{key, "x"})
			counts[key]++
		}
		for key, want := range counts {
			rids, _, ok := tbl.Lookup("k", key)
			if !ok || len(rids) != want {
				return false
			}
			for _, rid := range rids {
				if tbl.Row(rid)[0] != key {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
