package sqlmini

import "sync"

// PrepCache is a concurrency-safe memo of Parse results — the prepared-
// statement cache every layer that prepares client-side shares (the
// simulated server, the shard router, the replica group), so parse-cache
// semantics cannot drift between them. The zero value is ready to use.
// Only successful parses are cached: a malformed statement re-parses (and
// re-fails identically) on every call, like a real prepare.
type PrepCache struct {
	mu sync.Mutex
	m  map[string]*Stmt
}

// Len reports the number of cached statements (tests).
func (c *PrepCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Prepare returns the cached statement for sql, parsing on first use.
func (c *PrepCache) Prepare(sql string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.m[sql]; ok {
		return st, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if c.m == nil {
		c.m = map[string]*Stmt{}
	}
	c.m[sql] = st
	return st, nil
}
