package sqlmini

import (
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// The differential corpus only ever runs well-formed statements against
// loaded schemas, so these error paths — the parser's rejections and the
// executor's unknown-table/column diagnostics — are pinned here, message
// text included: server, batch and shard layers all forward these errors
// verbatim, and the shard differential tests rely on every backend producing
// the identical text.

func TestParseMalformedStatements(t *testing.T) {
	cases := []struct {
		sql  string
		want string // substring of the error text
	}{
		// Lexer rejections.
		{"select a from t where b = 'unterminated", "unterminated string"},
		{"select a from t; drop table t", "unexpected character"},
		{"select a from t where b = 99999999999999999999", "bad number"},
		// Malformed predicates.
		{"select a from t where b > ?", "unexpected character"}, // no such operator in the subset
		{"select a from t where b , ?", `expected "="`},
		{"select a from t where = ?", "expected column in WHERE"},
		{"select a from t where b = select", "expected ? or literal"},
		{"select a from t where b = ? and", "expected column in WHERE"},
		{"select a from t where b = ? or c = ?", "trailing input"},
		// Malformed clauses.
		{"", "expected SELECT or INSERT"},
		{"update t", "expected SELECT or INSERT"},
		// ("from" parses as a column name — the grammar has no reserved
		// words — so these failures land on the missing FROM keyword.)
		{"select from t", "expected FROM"},
		{"select a, from t", "expected FROM"},
		{"select a, = from t", "expected column name"},
		{"select a b from t", "expected FROM"},
		{"select a from", "expected table name"},
		{"select max() from t", "bad aggregate argument"},
		{"select sum(*) from t", "sum(*) not supported"},
		{"select max(a from t", `expected ")"`},
		// Malformed inserts.
		{"insert t values (?)", "expected INTO"},
		// ("values" parses as the table name; the failure lands on VALUES.)
		{"insert into values (?)", "expected VALUES"},
		{"insert into (x) values (?)", "expected table name"},
		{"insert into t (?)", "expected VALUES"},
		{"insert into t values ?", `expected "("`},
		{"insert into t values (?,)", "expected value"},
		{"insert into t values (?", `expected ")"`},
		{"insert into t values (?) extra", "trailing input"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.sql, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.sql, err, c.want)
		}
	}
}

func errEnv(t *testing.T) (*storage.Catalog, *buffer.Pool, func()) {
	t.Helper()
	cat := storage.NewCatalog()
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	pool := buffer.NewPool(1<<10, d)
	tbl := cat.CreateTable("item", storage.NewSchema(
		storage.Column{Name: "iid", Type: storage.TInt},
		storage.Column{Name: "label", Type: storage.TString},
	))
	for i := int64(0); i < 10; i++ {
		if _, err := tbl.Insert([]any{i, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	pool.MapExtent(tbl.Extent, 0)
	return cat, pool, func() { d.Close() }
}

func TestExecuteUnknownTableAndColumnTexts(t *testing.T) {
	cat, pool, done := errEnv(t)
	defer done()
	cases := []struct {
		sql  string
		args []any
		want string
	}{
		{"select iid from nosuch where iid = ?", []any{int64(1)}, `no table "nosuch"`},
		{"select iid from item where ghost = ?", []any{int64(1)}, `no column "ghost"`},
		{"select ghost from item where iid = ?", []any{int64(1)}, `no column "ghost"`},
		{"select max(ghost) from item where iid = ?", []any{int64(1)}, `no column "ghost"`},
		{"select max(label) from item where iid = ?", []any{int64(1)}, "aggregate over non-int column"},
		{"select iid from item where iid = ?", nil, "0 parameters bound, want 1"},
		{"insert into item values (?)", []any{int64(1)}, "insert arity 1, want 2"},
		{"insert into nosuch values (?)", []any{int64(1)}, `no table "nosuch"`},
	}
	for _, c := range cases {
		st, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.sql, err)
		}
		_, _, err = Execute(st, cat, pool, c.args)
		if err == nil {
			t.Errorf("Execute(%q): expected error containing %q, got nil", c.sql, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Execute(%q): error %q does not contain %q", c.sql, err, c.want)
		}
		// The batched path must fail every binding with the identical text.
		vals, errs, _ := ExecuteBatch(st, cat, pool, [][]any{c.args, c.args})
		for i, be := range errs {
			if be == nil || be.Error() != err.Error() {
				t.Errorf("ExecuteBatch(%q) binding %d: error %v, want %q", c.sql, i, be, err)
			}
			if vals[i] != nil {
				t.Errorf("ExecuteBatch(%q) binding %d: non-nil result %v alongside error", c.sql, i, vals[i])
			}
		}
	}
}

func TestShardKeyExtraction(t *testing.T) {
	sel, err := Parse("select a from t where k = ? and j = 7")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sel.WhereEqValue("k", []any{int64(42)}); !ok || v != int64(42) {
		t.Errorf("WhereEqValue param: %v %v", v, ok)
	}
	if v, ok := sel.WhereEqValue("j", nil); !ok || v != int64(7) {
		t.Errorf("WhereEqValue literal: %v %v", v, ok)
	}
	if _, ok := sel.WhereEqValue("missing", []any{int64(1)}); ok {
		t.Error("WhereEqValue must miss on absent column")
	}
	if _, ok := sel.WhereEqValue("k", nil); ok {
		t.Error("WhereEqValue must miss when the parameter is not bound")
	}

	ins, err := Parse("insert into t values (?, 'lit', ?)")
	if err != nil {
		t.Fatal(err)
	}
	args := []any{int64(5), int64(9)}
	if v, ok := ins.InsertValue(0, args); !ok || v != int64(5) {
		t.Errorf("InsertValue param: %v %v", v, ok)
	}
	if v, ok := ins.InsertValue(1, args); !ok || v != "lit" {
		t.Errorf("InsertValue literal: %v %v", v, ok)
	}
	if _, ok := ins.InsertValue(3, args); ok {
		t.Error("InsertValue must miss outside the VALUES list")
	}
	if _, ok := ins.InsertValue(-1, args); ok {
		t.Error("InsertValue must miss on negative positions")
	}
	if _, ok := ins.InsertValue(2, args[:1]); ok {
		t.Error("InsertValue must miss when the parameter is not bound")
	}
	if _, ok := sel.InsertValue(0, args); ok {
		t.Error("InsertValue must miss on non-INSERT statements")
	}
}
