// Package sqlmini implements the SQL subset the paper's workloads use:
// prepared SELECT statements with equality predicates, optional aggregates,
// and INSERT ... VALUES. Statements are parsed once at prepare time into a
// Plan; execution binds '?' parameters, chooses an index or scan access
// path, drives page accesses through the buffer pool, and returns rows or
// an aggregate scalar.
package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"unicode"
)

// AggKind is the aggregate of a select list.
type AggKind int

const (
	// AggNone means a plain column select.
	AggNone AggKind = iota
	// AggCount is COUNT(*) or COUNT(col).
	AggCount
	// AggSum is SUM(col).
	AggSum
	// AggMax is MAX(col).
	AggMax
	// AggMin is MIN(col).
	AggMin
)

// Cond is one equality predicate: Col = ? (Param >= 0) or Col = literal.
type Cond struct {
	Col   string
	Param int // parameter ordinal, or -1 when Lit is used
	Lit   any
}

// Stmt is a parsed statement.
type Stmt struct {
	// Insert is set for INSERT statements.
	Insert bool
	Table  string
	// Select fields:
	Agg    AggKind
	AggCol string   // aggregated column ("" for COUNT(*))
	Cols   []string // selected columns; ["*"] for star
	Where  []Cond
	// Insert fields:
	Values []int // parameter ordinal per column, or -1 for literal
	Lits   []any // literal per column when ordinal is -1
	// NumParams is the number of '?' placeholders.
	NumParams int

	// plan caches the schema resolution against the table the statement
	// last executed on (see compile.go). Stmts are shared by pointer; the
	// atomic makes concurrent first executions race-free.
	plan atomic.Pointer[stmtPlan]
}

type token struct {
	kind string // word, punct, int, str, param
	s    string
	i    int64
}

func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '?':
			toks = append(toks, token{kind: "param"})
			i++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '*':
			toks = append(toks, token{kind: "punct", s: string(c)})
			i++
		case c == '\'':
			j := i + 1
			for j < len(sql) && sql[j] != '\'' {
				j++
			}
			if j >= len(sql) {
				return nil, fmt.Errorf("sqlmini: unterminated string")
			}
			toks = append(toks, token{kind: "str", s: sql[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(sql) && unicode.IsDigit(rune(sql[i+1]))):
			j := i + 1
			for j < len(sql) && unicode.IsDigit(rune(sql[j])) {
				j++
			}
			v, err := strconv.ParseInt(sql[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlmini: bad number %q", sql[i:j])
			}
			toks = append(toks, token{kind: "int", i: v})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(sql) && (unicode.IsLetter(rune(sql[j])) || unicode.IsDigit(rune(sql[j])) || sql[j] == '_' || sql[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: "word", s: sql[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q", c)
		}
	}
	return toks, nil
}

type sparser struct {
	toks []token
	pos  int
	np   int
}

func (p *sparser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{kind: "eof"}
}
func (p *sparser) next() token { t := p.peek(); p.pos++; return t }

func (p *sparser) word(w string) bool {
	t := p.peek()
	if t.kind == "word" && strings.EqualFold(t.s, w) {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) expectWord(w string) error {
	if !p.word(w) {
		return fmt.Errorf("sqlmini: expected %s near %q", strings.ToUpper(w), p.peek().s)
	}
	return nil
}

func (p *sparser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == "punct" && t.s == s {
		p.pos++
		return nil
	}
	return fmt.Errorf("sqlmini: expected %q near %q", s, t.s)
}

// Parse compiles a SQL string into a Stmt.
func Parse(sql string) (*Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &sparser{toks: toks}
	var st *Stmt
	switch {
	case p.word("select"):
		st, err = p.parseSelect()
	case p.word("insert"):
		st, err = p.parseInsert()
	default:
		err = fmt.Errorf("sqlmini: expected SELECT or INSERT")
	}
	if err != nil {
		return nil, err
	}
	if p.peek().kind != "eof" {
		return nil, fmt.Errorf("sqlmini: trailing input near %q", p.peek().s)
	}
	st.NumParams = p.np
	return st, nil
}

func (p *sparser) parseSelect() (*Stmt, error) {
	st := &Stmt{}
	t := p.peek()
	switch {
	case t.kind == "punct" && t.s == "*":
		p.pos++
		st.Cols = []string{"*"}
	case t.kind == "word" && isAgg(t.s):
		p.pos++
		st.Agg = aggKind(t.s)
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		inner := p.next()
		switch {
		case inner.kind == "punct" && inner.s == "*":
			if st.Agg != AggCount {
				return nil, fmt.Errorf("sqlmini: %s(*) not supported", t.s)
			}
		case inner.kind == "word":
			st.AggCol = inner.s
		default:
			return nil, fmt.Errorf("sqlmini: bad aggregate argument")
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		for {
			w := p.next()
			if w.kind != "word" {
				return nil, fmt.Errorf("sqlmini: expected column name, got %q", w.s)
			}
			st.Cols = append(st.Cols, w.s)
			if t := p.peek(); t.kind == "punct" && t.s == "," {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.expectWord("from"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != "word" {
		return nil, fmt.Errorf("sqlmini: expected table name")
	}
	st.Table = tbl.s
	if p.word("where") {
		for {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, c)
			if !p.word("and") {
				break
			}
		}
	}
	return st, nil
}

func (p *sparser) parseCond() (Cond, error) {
	col := p.next()
	if col.kind != "word" {
		return Cond{}, fmt.Errorf("sqlmini: expected column in WHERE, got %q", col.s)
	}
	if err := p.expectPunct("="); err != nil {
		return Cond{}, err
	}
	v := p.next()
	switch v.kind {
	case "param":
		c := Cond{Col: col.s, Param: p.np}
		p.np++
		return c, nil
	case "int":
		return Cond{Col: col.s, Param: -1, Lit: v.i}, nil
	case "str":
		return Cond{Col: col.s, Param: -1, Lit: v.s}, nil
	}
	return Cond{}, fmt.Errorf("sqlmini: expected ? or literal in WHERE")
}

func (p *sparser) parseInsert() (*Stmt, error) {
	st := &Stmt{Insert: true}
	if err := p.expectWord("into"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != "word" {
		return nil, fmt.Errorf("sqlmini: expected table name")
	}
	st.Table = tbl.s
	if err := p.expectWord("values"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		v := p.next()
		switch v.kind {
		case "param":
			st.Values = append(st.Values, p.np)
			st.Lits = append(st.Lits, nil)
			p.np++
		case "int":
			st.Values = append(st.Values, -1)
			st.Lits = append(st.Lits, v.i)
		case "str":
			st.Values = append(st.Values, -1)
			st.Lits = append(st.Lits, v.s)
		default:
			return nil, fmt.Errorf("sqlmini: expected value, got %q", v.s)
		}
		if t := p.peek(); t.kind == "punct" && t.s == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func isAgg(w string) bool {
	switch strings.ToLower(w) {
	case "count", "sum", "max", "min":
		return true
	}
	return false
}

func aggKind(w string) AggKind {
	switch strings.ToLower(w) {
	case "count":
		return AggCount
	case "sum":
		return AggSum
	case "max":
		return AggMax
	case "min":
		return AggMin
	}
	return AggNone
}
