package sqlmini

import (
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/interp"
	"repro/internal/simclock"
	"repro/internal/storage"
)

func TestParseSelectAgg(t *testing.T) {
	st, err := Parse("select count(partkey) from part where p_category = ?")
	if err != nil {
		t.Fatal(err)
	}
	if st.Insert || st.Agg != AggCount || st.AggCol != "partkey" || st.Table != "part" {
		t.Fatalf("%+v", st)
	}
	if len(st.Where) != 1 || st.Where[0].Col != "p_category" || st.Where[0].Param != 0 {
		t.Fatalf("where: %+v", st.Where)
	}
	if st.NumParams != 1 {
		t.Fatalf("params: %d", st.NumParams)
	}
}

func TestParseSelectCols(t *testing.T) {
	st, err := Parse("select nickname, rating from users where uid = ? and rating = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 2 || st.Cols[0] != "nickname" {
		t.Fatalf("%+v", st)
	}
	if len(st.Where) != 2 || st.Where[1].Lit != int64(5) || st.Where[1].Param != -1 {
		t.Fatalf("where: %+v", st.Where)
	}
}

func TestParseStar(t *testing.T) {
	st, err := Parse("select * from t")
	if err != nil || st.Cols[0] != "*" || len(st.Where) != 0 {
		t.Fatalf("%+v %v", st, err)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("insert into forms values (?, ?, 7)")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Insert || st.NumParams != 2 || len(st.Values) != 3 || st.Lits[2] != int64(7) {
		t.Fatalf("%+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"", "delete from t", "select from t", "select a from",
		"select a from t where", "insert into t", "select max(*) from t",
		"select a from t where b > ?",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func testEnv(t *testing.T) (*storage.Catalog, *buffer.Pool, func()) {
	t.Helper()
	cat := storage.NewCatalog()
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	pool := buffer.NewPool(1<<12, d)
	tbl := cat.CreateTable("part", storage.NewSchema(
		storage.Column{Name: "partkey", Type: storage.TInt},
		storage.Column{Name: "p_category", Type: storage.TInt},
		storage.Column{Name: "psize", Type: storage.TInt},
	))
	for i := int64(0); i < 1000; i++ {
		if _, err := tbl.Insert([]any{i, i % 10, i % 50}); err != nil {
			t.Fatal(err)
		}
	}
	pool.MapExtent(tbl.Extent, 0)
	if err := tbl.AddIndex("p_category", false, cat.NextExtent(), 4); err != nil {
		t.Fatal(err)
	}
	return cat, pool, func() { d.Close() }
}

func exec(t *testing.T, cat *storage.Catalog, pool *buffer.Pool, sql string, args ...any) (any, ExecInfo) {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, info, err := Execute(st, cat, pool, args)
	if err != nil {
		t.Fatal(err)
	}
	return v, info
}

func TestExecuteCountWithIndex(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	v, info := exec(t, cat, pool, "select count(partkey) from part where p_category = ?", int64(3))
	if v != int64(100) {
		t.Fatalf("count = %v, want 100", v)
	}
	if !info.UsedIndex || info.FullScan {
		t.Fatalf("expected index path: %+v", info)
	}
}

func TestExecuteAggregates(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	if v, _ := exec(t, cat, pool, "select max(psize) from part where p_category = ?", int64(0)); v != int64(40) {
		t.Fatalf("max = %v", v)
	}
	if v, _ := exec(t, cat, pool, "select min(psize) from part where p_category = ?", int64(0)); v != int64(0) {
		t.Fatalf("min = %v", v)
	}
	if v, _ := exec(t, cat, pool, "select sum(psize) from part where p_category = ?", int64(0)); v != int64(2000) {
		t.Fatalf("sum = %v", v)
	}
}

func TestExecuteFullScanWithoutIndex(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	v, info := exec(t, cat, pool, "select count(partkey) from part where psize = ?", int64(7))
	if v != int64(20) {
		t.Fatalf("count = %v", v)
	}
	if !info.FullScan {
		t.Fatalf("expected full scan: %+v", info)
	}
}

func TestExecuteRowsProjection(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	v, _ := exec(t, cat, pool, "select partkey, psize from part where p_category = ?", int64(9))
	rows, ok := v.(interp.Rows)
	if !ok || len(rows) != 100 {
		t.Fatalf("rows: %T %v", v, v)
	}
	if _, ok := rows[0]["partkey"]; !ok {
		t.Fatal("missing projected column")
	}
	if _, ok := rows[0]["p_category"]; ok {
		t.Fatal("unprojected column leaked")
	}
}

func TestExecuteInsert(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	before := cat.Table("part").NumRows()
	exec(t, cat, pool, "insert into part values (?, ?, ?)", int64(9999), int64(3), int64(1))
	if cat.Table("part").NumRows() != before+1 {
		t.Fatal("row not inserted")
	}
	// The index sees the new row.
	v, _ := exec(t, cat, pool, "select count(partkey) from part where p_category = ?", int64(3))
	if v != int64(101) {
		t.Fatalf("index not maintained: %v", v)
	}
}

func TestExecuteErrors(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	st, _ := Parse("select count(x) from nosuch where a = ?")
	if _, _, err := Execute(st, cat, pool, []any{int64(1)}); err == nil {
		t.Error("missing table must error")
	}
	st, _ = Parse("select count(partkey) from part where nocol = ?")
	if _, _, err := Execute(st, cat, pool, []any{int64(1)}); err == nil {
		t.Error("missing column must error")
	}
	st, _ = Parse("select count(partkey) from part where p_category = ?")
	if _, _, err := Execute(st, cat, pool, nil); err == nil {
		t.Error("parameter arity must be checked")
	}
}

// execBatch parses and batch-executes one statement.
func execBatch(t *testing.T, cat *storage.Catalog, pool *buffer.Pool, sql string, argSets [][]any) ([]any, []error, ExecInfo) {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	vals, errs, info := ExecuteBatch(st, cat, pool, argSets)
	return vals, errs, info
}

// TestExecuteBatchMatchesExecute pins the batched path to the per-query
// path: every binding's result and error text must be identical.
func TestExecuteBatchMatchesExecute(t *testing.T) {
	cases := []struct {
		sql     string
		argSets [][]any
	}{
		{"select count(partkey) from part where p_category = ?",
			[][]any{{int64(0)}, {int64(3)}, {int64(3)}, {int64(42)}}},
		{"select max(psize) from part where p_category = ?",
			[][]any{{int64(0)}, {int64(9)}}},
		{"select partkey, psize from part where p_category = ?",
			[][]any{{int64(1)}, {int64(2)}}},
		{"select count(partkey) from part where psize = ?", // full scan
			[][]any{{int64(7)}, {int64(8)}, {int64(7)}}},
		{"select count(partkey) from part where p_category = ?", // arity error mixed in
			[][]any{{int64(1)}, {}, {int64(2)}}},
		{"select count(partkey) from part where nocol = ?", // per-binding column error
			[][]any{{int64(1)}, {int64(2)}}},
	}
	for _, c := range cases {
		cat, pool, done := testEnv(t)
		st, err := Parse(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		vals, errs, _ := ExecuteBatch(st, cat, pool, c.argSets)
		for i, args := range c.argSets {
			wantV, _, wantErr := Execute(st, cat, pool, args)
			if (errs[i] == nil) != (wantErr == nil) {
				t.Errorf("%s binding %d: err %v, want %v", c.sql, i, errs[i], wantErr)
				continue
			}
			if wantErr != nil {
				if errs[i].Error() != wantErr.Error() {
					t.Errorf("%s binding %d: error text %q, want %q", c.sql, i, errs[i], wantErr)
				}
				continue
			}
			if !interp.Equal(vals[i], wantV) {
				t.Errorf("%s binding %d: %v, want %v", c.sql, i,
					interp.Format(vals[i]), interp.Format(wantV))
			}
		}
		done()
	}
}

// TestExecuteBatchSharesIndexPages asserts the set-oriented saving: probing
// with duplicate keys touches each bucket/data page once for the batch, so
// the cold-cache miss count equals that of a single per-query execution.
func TestExecuteBatchSharesIndexPages(t *testing.T) {
	catA, poolA, doneA := testEnv(t)
	defer doneA()
	_, infoSingle := exec(t, catA, poolA, "select count(partkey) from part where p_category = ?", int64(3))
	_, missesSingle := poolA.Stats()

	catB, poolB, doneB := testEnv(t)
	defer doneB()
	_, errs, infoBatch := execBatch(t, catB, poolB,
		"select count(partkey) from part where p_category = ?",
		[][]any{{int64(3)}, {int64(3)}, {int64(3)}})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("binding %d: %v", i, err)
		}
	}
	if infoBatch.PagesTouched != infoSingle.PagesTouched {
		t.Fatalf("batch touched %d pages, want %d (shared probes)",
			infoBatch.PagesTouched, infoSingle.PagesTouched)
	}
	if _, misses := poolB.Stats(); misses != missesSingle {
		t.Fatalf("batch missed %d pages, single query missed %d", misses, missesSingle)
	}
	if infoBatch.RowsExamined != 3*infoSingle.RowsExamined {
		t.Fatalf("rows examined %d, want %d", infoBatch.RowsExamined, 3*infoSingle.RowsExamined)
	}
}

// TestExecuteBatchSharedScan: a full-scan statement scans the table once for
// the whole batch, not once per binding.
func TestExecuteBatchSharedScan(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	pages := cat.Table("part").NumPages()
	vals, errs, info := execBatch(t, cat, pool,
		"select count(partkey) from part where psize = ?",
		[][]any{{int64(7)}, {int64(8)}, {int64(9)}})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("binding %d: %v", i, err)
		}
	}
	if info.PagesTouched != pages {
		t.Fatalf("batch touched %d pages, want one shared scan of %d", info.PagesTouched, pages)
	}
	if !info.FullScan || info.UsedIndex {
		t.Fatalf("expected full scan: %+v", info)
	}
	if vals[0] != int64(20) || vals[1] != int64(20) || vals[2] != int64(20) {
		t.Fatalf("partitioned counts: %v", vals)
	}
}

// TestExecuteBatchInsert: inserts execute per binding but still come back in
// order with the usual row-count results.
func TestExecuteBatchInsert(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	before := cat.Table("part").NumRows()
	vals, errs, _ := execBatch(t, cat, pool, "insert into part values (?, ?, ?)",
		[][]any{
			{int64(5000), int64(3), int64(1)},
			{int64(5001), int64(3), int64(2)},
		})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("binding %d: %v", i, err)
		}
	}
	if vals[0] != int64(1) || vals[1] != int64(1) {
		t.Fatalf("insert results: %v", vals)
	}
	if cat.Table("part").NumRows() != before+2 {
		t.Fatal("rows not inserted")
	}
}

// TestExecuteBatchMissingTable: every binding reports the same error the
// per-query path would.
func TestExecuteBatchMissingTable(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	st, _ := Parse("select count(x) from nosuch where a = ?")
	_, errs, _ := ExecuteBatch(st, cat, pool, [][]any{{int64(1)}, {int64(2)}})
	_, _, want := Execute(st, cat, pool, []any{int64(1)})
	for i, err := range errs {
		if err == nil || err.Error() != want.Error() {
			t.Fatalf("binding %d: %v, want %v", i, err, want)
		}
	}
}

// TestExecuteBatchAllFailedTouchesNoPages: a batch whose every binding fails
// validation must not scan or fault pages — matching N failing per-query
// executions.
func TestExecuteBatchAllFailedTouchesNoPages(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	st, err := Parse("select count(partkey) from part where psize = ?") // no index: would full-scan
	if err != nil {
		t.Fatal(err)
	}
	_, errs, info := ExecuteBatch(st, cat, pool, [][]any{{}, {}}) // arity errors
	for i, e := range errs {
		if e == nil {
			t.Fatalf("binding %d: want arity error", i)
		}
	}
	if info.PagesTouched != 0 || info.FullScan {
		t.Fatalf("all-failed batch did IO: %+v", info)
	}
	if hits, misses := pool.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("pool touched: %d hits, %d misses", hits, misses)
	}
}

// TestExecuteBatchFailedBindingChargesNoRows: bindings that error after the
// access path (e.g. a bad projection column) must not contribute to the
// aggregate row accounting, matching the per-query path where a failing
// Execute charges nothing.
func TestExecuteBatchFailedBindingChargesNoRows(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	st, err := Parse("select nocol from part where p_category = ?")
	if err != nil {
		t.Fatal(err)
	}
	_, errs, info := ExecuteBatch(st, cat, pool, [][]any{{int64(1)}, {int64(2)}})
	for i, e := range errs {
		if e == nil {
			t.Fatalf("binding %d: want projection error", i)
		}
	}
	if info.RowsExamined != 0 || info.RowsReturned != 0 {
		t.Fatalf("failed bindings charged rows: %+v", info)
	}
}

// TestExecInfoMatchedIsOwned pins the Matched ownership contract: the rid
// trace Execute returns never aliases pooled or execution-internal storage,
// so a caller (the shard router's merge) mutating it cannot corrupt the
// index or any later execution.
func TestExecInfoMatchedIsOwned(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	st, err := Parse("select partkey from part where p_category = ?")
	if err != nil {
		t.Fatal(err)
	}
	v1, info1, err := Execute(st, cat, pool, []any{int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(info1.Matched) != 100 {
		t.Fatalf("matched %d rids, want 100", len(info1.Matched))
	}
	for i := range info1.Matched {
		info1.Matched[i] = -999 // scribble all over the trace
	}
	v2, info2, err := Execute(st, cat, pool, []any{int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !interp.Equal(v1, v2) {
		t.Fatalf("re-execution diverged after mutating Matched:\n%s\nvs\n%s",
			interp.Format(v1), interp.Format(v2))
	}
	for i, rid := range info2.Matched {
		if rid < 0 {
			t.Fatalf("Matched[%d] = %d: trace aliases mutated storage", i, rid)
		}
	}
	// The full-scan and insert traces are owned too.
	_, infoScan, err := Execute(mustParse(t, "select partkey from part where psize = ?"), cat, pool, []any{int64(7)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range infoScan.Matched {
		infoScan.Matched[i] = -1
	}
	_, infoIns, err := Execute(mustParse(t, "insert into part values (?, ?, ?)"), cat, pool,
		[]any{int64(7777), int64(3), int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(infoIns.Matched) != 1 || infoIns.Matched[0] < 0 {
		t.Fatalf("insert trace: %v", infoIns.Matched)
	}
	// ExecuteBatch leaves Matched unset (batch traces are not merged).
	_, _, infoBatch := ExecuteBatch(st, cat, pool, [][]any{{int64(3)}})
	if infoBatch.Matched != nil {
		t.Fatalf("batch Matched must be unset, got %v", infoBatch.Matched)
	}
}

func mustParse(t *testing.T, sql string) *Stmt {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentExecuteSharedScratch hammers Execute/ExecuteBatch from many
// goroutines over one catalog — under -race this guards the pooled scratch,
// the statement plan cache and the storage views against cross-request
// leakage.
func TestConcurrentExecuteSharedScratch(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	stIdx := mustParse(t, "select count(partkey) from part where p_category = ?")
	stScan := mustParse(t, "select partkey, psize from part where psize = ?")
	stIns := mustParse(t, "insert into part values (?, ?, ?)")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if v, _, err := Execute(stIdx, cat, pool, []any{int64(3)}); err != nil {
					t.Errorf("idx: %v", err)
				} else if v.(int64) < 100 {
					t.Errorf("idx count shrank: %v", v)
				}
				if _, _, err := Execute(stScan, cat, pool, []any{int64(g)}); err != nil {
					t.Errorf("scan: %v", err)
				}
				if g == 0 {
					if _, _, err := Execute(stIns, cat, pool, []any{int64(20000 + i), int64(3), int64(1)}); err != nil {
						t.Errorf("insert: %v", err)
					}
				}
				if i%10 == 0 {
					_, errs, _ := ExecuteBatch(stIdx, cat, pool, [][]any{{int64(1)}, {int64(2)}, {int64(3)}})
					for _, err := range errs {
						if err != nil {
							t.Errorf("batch: %v", err)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentInsertWithIndexedSelect pins the snapshot-ordering fix: the
// view snapshot is taken after the index probe, so an insert landing between
// them can never yield candidate rids past the snapshot (which used to panic
// the typed filter). Run with high iteration counts to cross the window.
func TestConcurrentInsertWithIndexedSelect(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	stSel := mustParse(t, "select count(partkey) from part where p_category = ?")
	stRows := mustParse(t, "select partkey from part where p_category = ?")
	stIns := mustParse(t, "insert into part values (?, ?, ?)")
	// The inserter paces itself against the selects (one insert per tick):
	// an unthrottled inserter grows the p_category=3 rid list without bound
	// and turns every select into an ever-longer scan.
	tick := make(chan struct{}, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for range tick {
			if _, _, err := Execute(stIns, cat, pool, []any{int64(30000 + i), int64(3), int64(1)}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			i++
		}
	}()
	for i := 0; i < 2000; i++ {
		tick <- struct{}{}
		if v, _, err := Execute(stSel, cat, pool, []any{int64(3)}); err != nil {
			t.Fatalf("select: %v", err)
		} else if v.(int64) < 100 {
			t.Fatalf("count shrank: %v", v)
		}
		if _, _, err := Execute(stRows, cat, pool, []any{int64(3)}); err != nil {
			t.Fatalf("rows: %v", err)
		}
		if i%100 == 0 {
			_, errs, _ := ExecuteBatch(stSel, cat, pool, [][]any{{int64(3)}, {int64(3)}})
			for _, err := range errs {
				if err != nil {
					t.Fatalf("batch: %v", err)
				}
			}
		}
	}
	close(tick)
	wg.Wait()
}
