package sqlmini

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/interp"
	"repro/internal/simclock"
	"repro/internal/storage"
)

func TestParseSelectAgg(t *testing.T) {
	st, err := Parse("select count(partkey) from part where p_category = ?")
	if err != nil {
		t.Fatal(err)
	}
	if st.Insert || st.Agg != AggCount || st.AggCol != "partkey" || st.Table != "part" {
		t.Fatalf("%+v", st)
	}
	if len(st.Where) != 1 || st.Where[0].Col != "p_category" || st.Where[0].Param != 0 {
		t.Fatalf("where: %+v", st.Where)
	}
	if st.NumParams != 1 {
		t.Fatalf("params: %d", st.NumParams)
	}
}

func TestParseSelectCols(t *testing.T) {
	st, err := Parse("select nickname, rating from users where uid = ? and rating = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 2 || st.Cols[0] != "nickname" {
		t.Fatalf("%+v", st)
	}
	if len(st.Where) != 2 || st.Where[1].Lit != int64(5) || st.Where[1].Param != -1 {
		t.Fatalf("where: %+v", st.Where)
	}
}

func TestParseStar(t *testing.T) {
	st, err := Parse("select * from t")
	if err != nil || st.Cols[0] != "*" || len(st.Where) != 0 {
		t.Fatalf("%+v %v", st, err)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("insert into forms values (?, ?, 7)")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Insert || st.NumParams != 2 || len(st.Values) != 3 || st.Lits[2] != int64(7) {
		t.Fatalf("%+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"", "delete from t", "select from t", "select a from",
		"select a from t where", "insert into t", "select max(*) from t",
		"select a from t where b > ?",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func testEnv(t *testing.T) (*storage.Catalog, *buffer.Pool, func()) {
	t.Helper()
	cat := storage.NewCatalog()
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	pool := buffer.NewPool(1<<12, d)
	tbl := cat.CreateTable("part", storage.NewSchema(
		storage.Column{Name: "partkey", Type: storage.TInt},
		storage.Column{Name: "p_category", Type: storage.TInt},
		storage.Column{Name: "psize", Type: storage.TInt},
	))
	for i := int64(0); i < 1000; i++ {
		if _, err := tbl.Insert([]any{i, i % 10, i % 50}); err != nil {
			t.Fatal(err)
		}
	}
	pool.MapExtent(tbl.Extent, 0)
	if err := tbl.AddIndex("p_category", false, cat.NextExtent(), 4); err != nil {
		t.Fatal(err)
	}
	return cat, pool, func() { d.Close() }
}

func exec(t *testing.T, cat *storage.Catalog, pool *buffer.Pool, sql string, args ...any) (any, ExecInfo) {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	v, info, err := Execute(st, cat, pool, args)
	if err != nil {
		t.Fatal(err)
	}
	return v, info
}

func TestExecuteCountWithIndex(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	v, info := exec(t, cat, pool, "select count(partkey) from part where p_category = ?", int64(3))
	if v != int64(100) {
		t.Fatalf("count = %v, want 100", v)
	}
	if !info.UsedIndex || info.FullScan {
		t.Fatalf("expected index path: %+v", info)
	}
}

func TestExecuteAggregates(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	if v, _ := exec(t, cat, pool, "select max(psize) from part where p_category = ?", int64(0)); v != int64(40) {
		t.Fatalf("max = %v", v)
	}
	if v, _ := exec(t, cat, pool, "select min(psize) from part where p_category = ?", int64(0)); v != int64(0) {
		t.Fatalf("min = %v", v)
	}
	if v, _ := exec(t, cat, pool, "select sum(psize) from part where p_category = ?", int64(0)); v != int64(2000) {
		t.Fatalf("sum = %v", v)
	}
}

func TestExecuteFullScanWithoutIndex(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	v, info := exec(t, cat, pool, "select count(partkey) from part where psize = ?", int64(7))
	if v != int64(20) {
		t.Fatalf("count = %v", v)
	}
	if !info.FullScan {
		t.Fatalf("expected full scan: %+v", info)
	}
}

func TestExecuteRowsProjection(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	v, _ := exec(t, cat, pool, "select partkey, psize from part where p_category = ?", int64(9))
	rows, ok := v.(interp.Rows)
	if !ok || len(rows) != 100 {
		t.Fatalf("rows: %T %v", v, v)
	}
	if _, ok := rows[0]["partkey"]; !ok {
		t.Fatal("missing projected column")
	}
	if _, ok := rows[0]["p_category"]; ok {
		t.Fatal("unprojected column leaked")
	}
}

func TestExecuteInsert(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	before := cat.Table("part").NumRows()
	exec(t, cat, pool, "insert into part values (?, ?, ?)", int64(9999), int64(3), int64(1))
	if cat.Table("part").NumRows() != before+1 {
		t.Fatal("row not inserted")
	}
	// The index sees the new row.
	v, _ := exec(t, cat, pool, "select count(partkey) from part where p_category = ?", int64(3))
	if v != int64(101) {
		t.Fatalf("index not maintained: %v", v)
	}
}

func TestExecuteErrors(t *testing.T) {
	cat, pool, done := testEnv(t)
	defer done()
	st, _ := Parse("select count(x) from nosuch where a = ?")
	if _, _, err := Execute(st, cat, pool, []any{int64(1)}); err == nil {
		t.Error("missing table must error")
	}
	st, _ = Parse("select count(partkey) from part where nocol = ?")
	if _, _, err := Execute(st, cat, pool, []any{int64(1)}); err == nil {
		t.Error("missing column must error")
	}
	st, _ = Parse("select count(partkey) from part where p_category = ?")
	if _, _, err := Execute(st, cat, pool, nil); err == nil {
		t.Error("parameter arity must be checked")
	}
}
