package sqlmini

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/buffer"
	"repro/internal/interp"
	"repro/internal/storage"
)

// ExecInfo reports the work a statement performed, for CPU-cost accounting
// and test assertions. For ExecuteBatch it aggregates over the whole batch
// (RowsExamined sums, PagesTouched counts distinct page accesses).
type ExecInfo struct {
	PagesTouched int
	RowsExamined int
	RowsReturned int
	UsedIndex    bool
	FullScan     bool
	// Matched lists the row ids that survived the residual filter, in result
	// order (ascending rid); for INSERT statements it holds the inserted
	// row's id. A shard router uses it to restore the global row order in
	// scatter-gather merges and to track routed inserts. The slice is owned
	// by the caller — it never aliases execution-internal or pooled scratch
	// storage, so holding or mutating it cannot corrupt later executions
	// (pinned by TestExecInfoMatchedIsOwned). Unset by ExecuteBatch.
	Matched []int
	// InsertRids lists, for an INSERT batch only, the inserted row id per
	// binding in binding order (-1 for bindings that failed). A shard router
	// uses it to record where every batched insert landed, so scatter-gather
	// merges keep the exact single-server insertion order. Freshly allocated
	// per batch, owned by the caller. Unset by Execute and for non-insert
	// batches.
	InsertRids []int
}

// scratch holds the pooled per-execution buffers: the table view, bound
// filters, candidate rid headers, page lists and the batch's matched-rid
// buffer. Everything in it is reset on reuse; nothing in it may escape
// through results (Matched is always freshly allocated).
type scratch struct {
	view    storage.View
	filt    condFilter
	filters []condFilter
	matched []int
	pages   []int
	pages2  []int
	rids    [][]int
	row     []any
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	// Drop the references into table storage (column vectors, index rid
	// lists, bound filters) so a pooled scratch does not pin a closed
	// server's data.
	clear(sc.view.Cols)
	sc.view.Cols = sc.view.Cols[:0]
	clear(sc.rids)
	sc.rids = sc.rids[:0]
	clear(sc.row)
	sc.row = sc.row[:0]
	sc.filt.release()
	// Only the filters the last batch bound (the current length) can hold
	// references; entries past the length were released before the slice
	// was truncated, so point queries pay nothing for a wide batch's past.
	for i := range sc.filters {
		sc.filters[i].release()
	}
	sc.filters = sc.filters[:0]
	scratchPool.Put(sc)
}

// filtersFor returns n reusable filters.
func (sc *scratch) filtersFor(n int) []condFilter {
	if cap(sc.filters) < n {
		sc.filters = make([]condFilter, n)
	}
	sc.filters = sc.filters[:n]
	return sc.filters
}

// Execute runs a parsed statement against the catalog, driving page accesses
// through the buffer pool (which charges simulated disk time on misses).
// Results use the interpreter's value vocabulary: aggregates return int64,
// column selects return interp.Rows, inserts return the inserted row count.
func Execute(st *Stmt, cat *storage.Catalog, pool *buffer.Pool, args []any) (any, ExecInfo, error) {
	var info ExecInfo
	t := cat.Table(st.Table)
	if t == nil {
		return nil, info, fmt.Errorf("sqlmini: no table %q", st.Table)
	}
	if len(args) != st.NumParams {
		return nil, info, fmt.Errorf("sqlmini: %d parameters bound, want %d", len(args), st.NumParams)
	}

	if st.Insert {
		return executeInsert(st, t, pool, args, &info)
	}

	plan := st.planFor(t)
	if err := validateWhere(st, plan); err != nil {
		return nil, info, err
	}
	sc := getScratch()
	defer putScratch(sc)

	// Access path: the first indexed equality predicate drives; otherwise a
	// full scan. The view snapshot is taken after the index probe: Insert
	// publishes column values before index rids under one table lock, so
	// every candidate rid a probe returns is within a later snapshot.
	rpp := t.RowsPerPage()
	var matched []int
	if di := pickDriver(t, st.Where); di >= 0 {
		c := st.Where[di]
		v := c.Lit
		if c.Param >= 0 {
			v = args[c.Param]
		}
		rids, bucket, _ := t.Lookup(c.Col, v)
		ix := t.Index(c.Col)
		// One bucket page of the index, then the distinct data pages of the
		// matches in ascending order (the RID-ordering-before-fetch
		// optimization the paper cites, §I).
		pool.Get(buffer.PageID{Extent: ix.Extent, Page: bucket})
		info.PagesTouched++
		sc.pages = sc.pages[:0]
		for _, rid := range rids {
			sc.pages = append(sc.pages, rid/rpp)
		}
		for _, pg := range sortDedupe(sc.pages) {
			pool.Get(buffer.PageID{Extent: t.Extent, Page: pg})
			info.PagesTouched++
		}
		t.ViewInto(&sc.view)
		sc.filt.bind(st, plan, &sc.view, args)
		info.UsedIndex = true
		info.RowsExamined += len(rids)
		matched = sc.filt.appendMatches(make([]int, 0, len(rids)), rids)
	} else {
		// Full scan: one sequential batched read over the snapshot.
		t.ViewInto(&sc.view)
		sc.filt.bind(st, plan, &sc.view, args)
		n := (sc.view.NumRows + rpp - 1) / rpp
		pool.GetBatch(t.Extent, 0, n)
		info.PagesTouched += n
		info.FullScan = true
		info.RowsExamined += sc.view.NumRows
		matched = sc.filt.appendScanMatches(nil, sc.view.NumRows)
	}
	info.Matched = matched

	v, err := emit(st, plan, &sc.view, matched, &info)
	return v, info, err
}

// ExecuteBatch evaluates one parameterized statement against a set of
// bindings set-orientedly: index lookups probe with all keys in one pass,
// touching each distinct bucket and data page once for the whole batch;
// full-scan statements scan the table once and partition the rows by
// binding. Results and errors come back per binding, in binding order, and
// are identical to what len(argSets) individual Execute calls would return;
// the returned ExecInfo aggregates the (shared) work of the whole batch.
func ExecuteBatch(st *Stmt, cat *storage.Catalog, pool *buffer.Pool, argSets [][]any) ([]any, []error, ExecInfo) {
	n := len(argSets)
	results := make([]any, n)
	errs := make([]error, n)
	var agg ExecInfo

	t := cat.Table(st.Table)
	if t == nil {
		for i := range errs {
			errs[i] = fmt.Errorf("sqlmini: no table %q", st.Table)
		}
		return results, errs, agg
	}

	if st.Insert {
		// Inserts do not share IO (each appends its own row); the batch still
		// amortizes the round trip and planning charge at the server layer.
		agg.InsertRids = make([]int, n)
		for i, args := range argSets {
			v, info, err := Execute(st, cat, pool, args)
			results[i], errs[i] = v, err
			agg.add(info)
			agg.InsertRids[i] = -1
			if err == nil && len(info.Matched) == 1 {
				agg.InsertRids[i] = info.Matched[0]
			}
		}
		return results, errs, agg
	}

	plan := st.planFor(t)
	sc := getScratch()
	defer putScratch(sc)

	// Validate every binding first; bindings with errors drop out of the
	// shared phases but keep their per-binding error text (arity first, then
	// the statement-wide unknown-column diagnosis, matching the per-query
	// order).
	whereErr := validateWhere(st, plan)
	live := 0
	for i, args := range argSets {
		if len(args) != st.NumParams {
			errs[i] = fmt.Errorf("sqlmini: %d parameters bound, want %d", len(args), st.NumParams)
			continue
		}
		if whereErr != nil {
			errs[i] = whereErr
			continue
		}
		live++
	}
	if live == 0 {
		// Every binding failed validation: like N per-query executions, no
		// page is touched and no scan runs.
		return results, errs, agg
	}
	filters := sc.filtersFor(n)

	// The access path is uniform across the batch — every binding shares the
	// statement's predicate columns, so either one indexed column drives all
	// lookups or every binding full-scans.
	driver := pickDriver(t, st.Where)
	rpp := t.RowsPerPage()
	scanN := 0
	if driver >= 0 {
		// Set-oriented index path: probe with all keys, then touch the
		// distinct bucket pages and distinct data pages once each, in
		// ascending order (the shared, RID-ordered fetch of §I). Candidate
		// rid lists alias the index's internal storage — they are read-only
		// here and never escape the batch.
		c := st.Where[driver]
		ix := t.Index(c.Col)
		sc.rids = sc.rids[:0]
		sc.pages = sc.pages[:0]
		sc.pages2 = sc.pages2[:0]
		for i, args := range argSets {
			if errs[i] != nil {
				sc.rids = append(sc.rids, nil)
				continue
			}
			v := c.Lit
			if c.Param >= 0 {
				v = args[c.Param]
			}
			r, bucket, _ := t.Lookup(c.Col, v)
			sc.rids = append(sc.rids, r)
			sc.pages = append(sc.pages, bucket)
			for _, rid := range r {
				sc.pages2 = append(sc.pages2, rid/rpp)
			}
		}
		for _, pg := range sortDedupe(sc.pages) {
			pool.Get(buffer.PageID{Extent: ix.Extent, Page: pg})
			agg.PagesTouched++
		}
		for _, pg := range sortDedupe(sc.pages2) {
			pool.Get(buffer.PageID{Extent: t.Extent, Page: pg})
			agg.PagesTouched++
		}
		agg.UsedIndex = true
		// Snapshot after every probe: all candidate rids are within it.
		t.ViewInto(&sc.view)
	} else {
		// Shared scan: one sequential read of the table for the whole batch;
		// every live binding partitions the same snapshot.
		t.ViewInto(&sc.view)
		pages := (sc.view.NumRows + rpp - 1) / rpp
		pool.GetBatch(t.Extent, 0, pages)
		agg.PagesTouched += pages
		agg.FullScan = true
		scanN = sc.view.NumRows
	}

	for i := range argSets {
		if errs[i] != nil {
			continue
		}
		filters[i].bind(st, plan, &sc.view, argSets[i])
		var info ExecInfo
		sc.matched = sc.matched[:0]
		if driver >= 0 {
			cand := sc.rids[i]
			info.RowsExamined = len(cand)
			sc.matched = filters[i].appendMatches(sc.matched, cand)
		} else {
			info.RowsExamined = scanN
			sc.matched = filters[i].appendScanMatches(sc.matched, scanN)
		}
		results[i], errs[i] = emit(st, plan, &sc.view, sc.matched, &info)
		if errs[i] != nil {
			// A failing per-query execution charges nothing (Exec returns
			// before its stat update and CPU phase); keep the batch's
			// row accounting symmetric.
			continue
		}
		agg.RowsExamined += info.RowsExamined
		agg.RowsReturned += info.RowsReturned
	}
	return results, errs, agg
}

// add folds one per-statement ExecInfo into an aggregate.
func (info *ExecInfo) add(o ExecInfo) {
	info.PagesTouched += o.PagesTouched
	info.RowsExamined += o.RowsExamined
	info.RowsReturned += o.RowsReturned
	info.UsedIndex = info.UsedIndex || o.UsedIndex
	info.FullScan = info.FullScan || o.FullScan
}

func executeInsert(st *Stmt, t *storage.Table, pool *buffer.Pool, args []any, info *ExecInfo) (any, ExecInfo, error) {
	if len(st.Values) != len(t.Schema.Cols) {
		return nil, *info, fmt.Errorf("sqlmini: insert arity %d, want %d",
			len(st.Values), len(t.Schema.Cols))
	}
	sc := getScratch()
	defer putScratch(sc)
	row := sc.row[:0]
	for i, ord := range st.Values {
		if ord >= 0 {
			row = append(row, args[ord])
		} else {
			row = append(row, st.Lits[i])
		}
	}
	sc.row = row
	rid, err := t.Insert(row)
	if err != nil {
		return nil, *info, err
	}
	pool.Put(buffer.PageID{Extent: t.Extent, Page: t.PageOf(rid)})
	info.PagesTouched = 1
	info.RowsReturned = 1
	info.Matched = []int{rid}
	return int64(1), *info, nil
}

// emit applies the projection or aggregate to the matched rows. It is shared
// by the per-query and batched paths so their observable results cannot
// diverge. matched may be pooled scratch; emit only reads it.
func emit(st *Stmt, plan *stmtPlan, view *storage.View, matched []int, info *ExecInfo) (any, error) {
	if st.Agg != AggNone {
		v, err := aggregate(st, plan, view, matched)
		info.RowsReturned = 1
		return v, err
	}
	cols := view.Cols
	out := make(interp.Rows, 0, len(matched))
	if plan.star {
		for _, rid := range matched {
			r := make(interp.Row, len(cols))
			for i, c := range plan.table.Schema.Cols {
				r[c.Name] = cols[i].Any(rid)
			}
			out = append(out, r)
		}
	} else {
		for _, rid := range matched {
			r := make(interp.Row, len(plan.selCI))
			for k, ci := range plan.selCI {
				if ci < 0 {
					return nil, fmt.Errorf("sqlmini: %s: no column %q", st.Table, st.Cols[k])
				}
				r[st.Cols[k]] = cols[ci].Any(rid)
			}
			out = append(out, r)
		}
	}
	info.RowsReturned = len(out)
	return out, nil
}

// pickDriver returns the position of the first predicate whose column is
// indexed — the driving access path — or -1 for a full scan. It is shared
// by the per-query and batched paths so their access-path policy cannot
// diverge (the batch==per-query result identity depends on it).
func pickDriver(t *storage.Table, conds []Cond) int {
	for i, c := range conds {
		if t.Index(c.Col) != nil {
			return i
		}
	}
	return -1
}

// sortDedupe sorts ps in place and compacts away duplicates, returning the
// distinct prefix — the allocation-free replacement for the page-set maps.
func sortDedupe(ps []int) []int {
	slices.Sort(ps)
	return slices.Compact(ps)
}

func aggregate(st *Stmt, plan *stmtPlan, view *storage.View, rids []int) (any, error) {
	if st.Agg == AggCount {
		return storage.BoxInt(int64(len(rids))), nil
	}
	ci := plan.aggCI
	if ci < 0 {
		return nil, fmt.Errorf("sqlmini: %s: no column %q", plan.table.Name, st.AggCol)
	}
	var sum int64
	var best int64
	have := false
	col := &view.Cols[ci]
	if col.Anys == nil && col.Kind == storage.TInt {
		// Typed path: sum/extremes over the int vector, no boxing.
		ints := col.Ints
		for _, rid := range rids {
			v := ints[rid]
			sum += v
			if !have {
				best = v
				have = true
			} else if (st.Agg == AggMax && v > best) || (st.Agg == AggMin && v < best) {
				best = v
			}
		}
	} else {
		// String or degraded column: the boxed check (and its error) fires
		// per matched row, exactly as the row-wise evaluator did.
		for _, rid := range rids {
			v, ok := col.Any(rid).(int64)
			if !ok {
				return nil, fmt.Errorf("sqlmini: aggregate over non-int column %q", st.AggCol)
			}
			sum += v
			if !have {
				best = v
				have = true
			} else if (st.Agg == AggMax && v > best) || (st.Agg == AggMin && v < best) {
				best = v
			}
		}
	}
	switch st.Agg {
	case AggSum:
		return storage.BoxInt(sum), nil
	case AggMax, AggMin:
		if !have {
			return nil, nil
		}
		return storage.BoxInt(best), nil
	}
	return nil, fmt.Errorf("sqlmini: unsupported aggregate")
}
