package sqlmini

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/interp"
	"repro/internal/storage"
)

// ExecInfo reports the work a statement performed, for CPU-cost accounting
// and test assertions. For ExecuteBatch it aggregates over the whole batch
// (RowsExamined sums, PagesTouched counts distinct page accesses).
type ExecInfo struct {
	PagesTouched int
	RowsExamined int
	RowsReturned int
	UsedIndex    bool
	FullScan     bool
	// Matched lists the row ids that survived the residual filter, in result
	// order (ascending rid); for INSERT statements it holds the inserted
	// row's id. A shard router uses it to restore the global row order in
	// scatter-gather merges and to track routed inserts; it aliases
	// execution-internal storage, so callers must not mutate it. Unset by
	// ExecuteBatch.
	Matched []int
}

// Execute runs a parsed statement against the catalog, driving page accesses
// through the buffer pool (which charges simulated disk time on misses).
// Results use the interpreter's value vocabulary: aggregates return int64,
// column selects return interp.Rows, inserts return the inserted row count.
func Execute(st *Stmt, cat *storage.Catalog, pool *buffer.Pool, args []any) (any, ExecInfo, error) {
	var info ExecInfo
	t := cat.Table(st.Table)
	if t == nil {
		return nil, info, fmt.Errorf("sqlmini: no table %q", st.Table)
	}
	if len(args) != st.NumParams {
		return nil, info, fmt.Errorf("sqlmini: %d parameters bound, want %d", len(args), st.NumParams)
	}

	if st.Insert {
		return executeInsert(st, t, pool, args, &info)
	}

	conds, err := bindConds(st, t, args)
	if err != nil {
		return nil, info, err
	}

	// Access path: the first indexed equality predicate drives; otherwise a
	// full scan.
	rids, usedIndex := choosePath(t, pool, conds, &info)
	info.UsedIndex = usedIndex
	info.FullScan = !usedIndex

	v, err := finish(st, t, conds, rids, &info, true)
	return v, info, err
}

// ExecuteBatch evaluates one parameterized statement against a set of
// bindings set-orientedly: index lookups probe with all keys in one pass,
// touching each distinct bucket and data page once for the whole batch;
// full-scan statements scan the table once and partition the rows by
// binding. Results and errors come back per binding, in binding order, and
// are identical to what len(argSets) individual Execute calls would return;
// the returned ExecInfo aggregates the (shared) work of the whole batch.
func ExecuteBatch(st *Stmt, cat *storage.Catalog, pool *buffer.Pool, argSets [][]any) ([]any, []error, ExecInfo) {
	n := len(argSets)
	results := make([]any, n)
	errs := make([]error, n)
	var agg ExecInfo

	t := cat.Table(st.Table)
	if t == nil {
		for i := range errs {
			errs[i] = fmt.Errorf("sqlmini: no table %q", st.Table)
		}
		return results, errs, agg
	}

	if st.Insert {
		// Inserts do not share IO (each appends its own row); the batch still
		// amortizes the round trip and planning charge at the server layer.
		for i, args := range argSets {
			v, info, err := Execute(st, cat, pool, args)
			results[i], errs[i] = v, err
			agg.add(info)
		}
		return results, errs, agg
	}

	// Bind every set of predicates first; bindings with errors drop out of
	// the shared phases but keep their per-binding error text.
	conds := make([][]Cond, n)
	live := 0
	for i, args := range argSets {
		if len(args) != st.NumParams {
			errs[i] = fmt.Errorf("sqlmini: %d parameters bound, want %d", len(args), st.NumParams)
			continue
		}
		c, err := bindConds(st, t, args)
		if err != nil {
			errs[i] = err
			continue
		}
		conds[i] = c
		live++
	}
	if live == 0 {
		// Every binding failed validation: like N per-query executions, no
		// page is touched and no scan runs.
		return results, errs, agg
	}

	// The access path is uniform across the batch — every binding shares the
	// statement's predicate columns, so either one indexed column drives all
	// lookups or every binding full-scans.
	driver := pickDriver(t, st.Where)

	rids := make([][]int, n)
	if driver >= 0 {
		// Set-oriented index path: probe with all keys, then touch the
		// distinct bucket pages and distinct data pages once each, in
		// ascending order (the shared, RID-ordered fetch of §I).
		ix := t.Index(st.Where[driver].Col)
		bucketPages := map[int]bool{}
		dataPages := map[int]bool{}
		for i := range argSets {
			if errs[i] != nil {
				continue
			}
			r, bucket, _ := t.Lookup(st.Where[driver].Col, conds[i][driver].Lit)
			rids[i] = append([]int(nil), r...)
			bucketPages[bucket] = true
			for _, rid := range r {
				dataPages[t.PageOf(rid)] = true
			}
		}
		for _, p := range sortedPages(bucketPages) {
			pool.Get(buffer.PageID{Extent: ix.Extent, Page: p})
			agg.PagesTouched++
		}
		for _, p := range sortedPages(dataPages) {
			pool.Get(buffer.PageID{Extent: t.Extent, Page: p})
			agg.PagesTouched++
		}
		agg.UsedIndex = true
	} else {
		// Shared scan: one sequential read of the table for the whole batch;
		// every live binding partitions the same row set.
		pages := t.NumPages()
		pool.GetBatch(t.Extent, 0, pages)
		agg.PagesTouched += pages
		agg.FullScan = true
		all := make([]int, t.NumRows())
		for i := range all {
			all[i] = i
		}
		for i := range argSets {
			if errs[i] == nil {
				rids[i] = all
			}
		}
	}

	for i := range argSets {
		if errs[i] != nil {
			continue
		}
		// The index path owns its per-binding rid copies; the scan path
		// shares one rid slice across bindings and must not scribble on it.
		var info ExecInfo
		results[i], errs[i] = finish(st, t, conds[i], rids[i], &info, driver >= 0)
		if errs[i] != nil {
			// A failing per-query execution charges nothing (Exec returns
			// before its stat update and CPU phase); keep the batch's
			// row accounting symmetric.
			continue
		}
		agg.RowsExamined += info.RowsExamined
		agg.RowsReturned += info.RowsReturned
	}
	return results, errs, agg
}

// add folds one per-statement ExecInfo into an aggregate.
func (info *ExecInfo) add(o ExecInfo) {
	info.PagesTouched += o.PagesTouched
	info.RowsExamined += o.RowsExamined
	info.RowsReturned += o.RowsReturned
	info.UsedIndex = info.UsedIndex || o.UsedIndex
	info.FullScan = info.FullScan || o.FullScan
}

func executeInsert(st *Stmt, t *storage.Table, pool *buffer.Pool, args []any, info *ExecInfo) (any, ExecInfo, error) {
	if len(st.Values) != len(t.Schema.Cols) {
		return nil, *info, fmt.Errorf("sqlmini: insert arity %d, want %d",
			len(st.Values), len(t.Schema.Cols))
	}
	row := make([]any, len(st.Values))
	for i, ord := range st.Values {
		if ord >= 0 {
			row[i] = args[ord]
		} else {
			row[i] = st.Lits[i]
		}
	}
	rid, err := t.Insert(row)
	if err != nil {
		return nil, *info, err
	}
	pool.Put(buffer.PageID{Extent: t.Extent, Page: t.PageOf(rid)})
	info.PagesTouched = 1
	info.RowsReturned = 1
	info.Matched = []int{rid}
	return int64(1), *info, nil
}

// bindConds substitutes parameter values into the statement's predicates and
// validates the predicate columns.
func bindConds(st *Stmt, t *storage.Table, args []any) ([]Cond, error) {
	conds := make([]Cond, len(st.Where))
	for i, c := range st.Where {
		conds[i] = c
		if c.Param >= 0 {
			conds[i].Lit = args[c.Param]
		}
		if t.Schema.ColIndex(c.Col) < 0 {
			return nil, fmt.Errorf("sqlmini: %s: no column %q", st.Table, c.Col)
		}
	}
	return conds, nil
}

// finish applies the residual filter to the candidate rows and projects or
// aggregates the matches. It is shared by the per-query and batched paths so
// their observable results cannot diverge. ownsRids callers let the filter
// compact in place (no allocation); the batched full scan shares one rid
// slice across bindings and passes false.
func finish(st *Stmt, t *storage.Table, conds []Cond, rids []int, info *ExecInfo, ownsRids bool) (any, error) {
	matched := rids[:0]
	if !ownsRids {
		matched = make([]int, 0, len(rids))
	}
	for _, rid := range rids {
		row := t.Row(rid)
		ok := true
		for _, c := range conds {
			if row[t.Schema.ColIndex(c.Col)] != c.Lit {
				ok = false
				break
			}
		}
		info.RowsExamined++
		if ok {
			matched = append(matched, rid)
		}
	}
	info.Matched = matched

	if st.Agg != AggNone {
		v, err := aggregate(st, t, matched)
		info.RowsReturned = 1
		return v, err
	}
	out := make(interp.Rows, 0, len(matched))
	for _, rid := range matched {
		row := t.Row(rid)
		r := interp.Row{}
		if len(st.Cols) == 1 && st.Cols[0] == "*" {
			for i, c := range t.Schema.Cols {
				r[c.Name] = row[i]
			}
		} else {
			for _, c := range st.Cols {
				ci := t.Schema.ColIndex(c)
				if ci < 0 {
					return nil, fmt.Errorf("sqlmini: %s: no column %q", st.Table, c)
				}
				r[c] = row[ci]
			}
		}
		out = append(out, r)
	}
	info.RowsReturned = len(out)
	return out, nil
}

// pickDriver returns the position of the first predicate whose column is
// indexed — the driving access path — or -1 for a full scan. It is shared
// by the per-query and batched paths so their access-path policy cannot
// diverge (the batch==per-query result identity depends on it).
func pickDriver(t *storage.Table, conds []Cond) int {
	for i, c := range conds {
		if t.Index(c.Col) != nil {
			return i
		}
	}
	return -1
}

// choosePath picks index lookup or full scan, touching the corresponding
// pages through the pool, and returns the candidate row ids.
func choosePath(t *storage.Table, pool *buffer.Pool, conds []Cond, info *ExecInfo) ([]int, bool) {
	if di := pickDriver(t, conds); di >= 0 {
		c := conds[di]
		rids, bucket, _ := t.Lookup(c.Col, c.Lit)
		ix := t.Index(c.Col)
		// One bucket page of the index, then the distinct data pages of the
		// matches in ascending order (the RID-ordering-before-fetch
		// optimization the paper cites, §I).
		pool.Get(buffer.PageID{Extent: ix.Extent, Page: bucket})
		info.PagesTouched++
		pageSet := map[int]bool{}
		for _, rid := range rids {
			pageSet[t.PageOf(rid)] = true
		}
		for _, p := range sortedPages(pageSet) {
			pool.Get(buffer.PageID{Extent: t.Extent, Page: p})
			info.PagesTouched++
		}
		return append([]int(nil), rids...), true
	}
	// Full scan: one sequential batched read.
	n := t.NumPages()
	pool.GetBatch(t.Extent, 0, n)
	info.PagesTouched += n
	rids := make([]int, t.NumRows())
	for i := range rids {
		rids[i] = i
	}
	return rids, false
}

func sortedPages(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func aggregate(st *Stmt, t *storage.Table, rids []int) (any, error) {
	if st.Agg == AggCount {
		return int64(len(rids)), nil
	}
	ci := t.Schema.ColIndex(st.AggCol)
	if ci < 0 {
		return nil, fmt.Errorf("sqlmini: %s: no column %q", t.Name, st.AggCol)
	}
	var sum int64
	var best int64
	have := false
	for _, rid := range rids {
		v, ok := t.Row(rid)[ci].(int64)
		if !ok {
			return nil, fmt.Errorf("sqlmini: aggregate over non-int column %q", st.AggCol)
		}
		sum += v
		if !have {
			best = v
			have = true
		} else if (st.Agg == AggMax && v > best) || (st.Agg == AggMin && v < best) {
			best = v
		}
	}
	switch st.Agg {
	case AggSum:
		return sum, nil
	case AggMax, AggMin:
		if !have {
			return nil, nil
		}
		return best, nil
	}
	return nil, fmt.Errorf("sqlmini: unsupported aggregate")
}
