package sqlmini

import (
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/interp"
	"repro/internal/storage"
)

// ExecInfo reports the work a statement performed, for CPU-cost accounting
// and test assertions.
type ExecInfo struct {
	PagesTouched int
	RowsExamined int
	RowsReturned int
	UsedIndex    bool
	FullScan     bool
}

// Execute runs a parsed statement against the catalog, driving page accesses
// through the buffer pool (which charges simulated disk time on misses).
// Results use the interpreter's value vocabulary: aggregates return int64,
// column selects return interp.Rows, inserts return the inserted row count.
func Execute(st *Stmt, cat *storage.Catalog, pool *buffer.Pool, args []any) (any, ExecInfo, error) {
	var info ExecInfo
	t := cat.Table(st.Table)
	if t == nil {
		return nil, info, fmt.Errorf("sqlmini: no table %q", st.Table)
	}
	if len(args) != st.NumParams {
		return nil, info, fmt.Errorf("sqlmini: %d parameters bound, want %d", len(args), st.NumParams)
	}

	if st.Insert {
		if len(st.Values) != len(t.Schema.Cols) {
			return nil, info, fmt.Errorf("sqlmini: insert arity %d, want %d",
				len(st.Values), len(t.Schema.Cols))
		}
		row := make([]any, len(st.Values))
		for i, ord := range st.Values {
			if ord >= 0 {
				row[i] = args[ord]
			} else {
				row[i] = st.Lits[i]
			}
		}
		rid, err := t.Insert(row)
		if err != nil {
			return nil, info, err
		}
		pool.Put(buffer.PageID{Extent: t.Extent, Page: t.PageOf(rid)})
		info.PagesTouched = 1
		info.RowsReturned = 1
		return int64(1), info, nil
	}

	// Bind predicates.
	conds := make([]Cond, len(st.Where))
	for i, c := range st.Where {
		conds[i] = c
		if c.Param >= 0 {
			conds[i].Lit = args[c.Param]
		}
		if t.Schema.ColIndex(c.Col) < 0 {
			return nil, info, fmt.Errorf("sqlmini: %s: no column %q", st.Table, c.Col)
		}
	}

	// Access path: the first indexed equality predicate drives; otherwise a
	// full scan.
	rids, pages, usedIndex, err := choosePath(t, pool, conds, &info)
	if err != nil {
		return nil, info, err
	}
	info.UsedIndex = usedIndex
	info.FullScan = !usedIndex

	// Residual filter.
	matched := rids[:0]
	for _, rid := range rids {
		row := t.Row(rid)
		ok := true
		for _, c := range conds {
			if row[t.Schema.ColIndex(c.Col)] != c.Lit {
				ok = false
				break
			}
		}
		info.RowsExamined++
		if ok {
			matched = append(matched, rid)
		}
	}
	_ = pages

	// Project / aggregate.
	if st.Agg != AggNone {
		v, err := aggregate(st, t, matched)
		info.RowsReturned = 1
		return v, info, err
	}
	out := make(interp.Rows, 0, len(matched))
	for _, rid := range matched {
		row := t.Row(rid)
		r := interp.Row{}
		if len(st.Cols) == 1 && st.Cols[0] == "*" {
			for i, c := range t.Schema.Cols {
				r[c.Name] = row[i]
			}
		} else {
			for _, c := range st.Cols {
				ci := t.Schema.ColIndex(c)
				if ci < 0 {
					return nil, info, fmt.Errorf("sqlmini: %s: no column %q", st.Table, c)
				}
				r[c] = row[ci]
			}
		}
		out = append(out, r)
	}
	info.RowsReturned = len(out)
	return out, info, nil
}

// choosePath picks index lookup or full scan, touching the corresponding
// pages through the pool, and returns the candidate row ids.
func choosePath(t *storage.Table, pool *buffer.Pool, conds []Cond, info *ExecInfo) ([]int, int, bool, error) {
	for _, c := range conds {
		rids, bucket, ok := t.Lookup(c.Col, c.Lit)
		if !ok {
			continue
		}
		ix := t.Index(c.Col)
		// One bucket page of the index, then the distinct data pages of the
		// matches in ascending order (the RID-ordering-before-fetch
		// optimization the paper cites, §I).
		pool.Get(buffer.PageID{Extent: ix.Extent, Page: bucket})
		info.PagesTouched++
		pageSet := map[int]bool{}
		for _, rid := range rids {
			pageSet[t.PageOf(rid)] = true
		}
		pageList := make([]int, 0, len(pageSet))
		for p := range pageSet {
			pageList = append(pageList, p)
		}
		sort.Ints(pageList)
		for _, p := range pageList {
			pool.Get(buffer.PageID{Extent: t.Extent, Page: p})
			info.PagesTouched++
		}
		return append([]int(nil), rids...), len(pageList), true, nil
	}
	// Full scan: one sequential batched read.
	n := t.NumPages()
	pool.GetBatch(t.Extent, 0, n)
	info.PagesTouched += n
	rids := make([]int, t.NumRows())
	for i := range rids {
		rids[i] = i
	}
	return rids, n, false, nil
}

func aggregate(st *Stmt, t *storage.Table, rids []int) (any, error) {
	if st.Agg == AggCount {
		return int64(len(rids)), nil
	}
	ci := t.Schema.ColIndex(st.AggCol)
	if ci < 0 {
		return nil, fmt.Errorf("sqlmini: %s: no column %q", t.Name, st.AggCol)
	}
	var sum int64
	var best int64
	have := false
	for _, rid := range rids {
		v, ok := t.Row(rid)[ci].(int64)
		if !ok {
			return nil, fmt.Errorf("sqlmini: aggregate over non-int column %q", st.AggCol)
		}
		sum += v
		if !have {
			best = v
			have = true
		} else if (st.Agg == AggMax && v > best) || (st.Agg == AggMin && v < best) {
			best = v
		}
	}
	switch st.Agg {
	case AggSum:
		return sum, nil
	case AggMax, AggMin:
		if !have {
			return nil, nil
		}
		return best, nil
	}
	return nil, fmt.Errorf("sqlmini: unsupported aggregate")
}
