package sqlmini

// Shard-key extraction: a shard router decides where a prepared statement
// executes by reading the value it binds to the declared shard-key column.
// Both lookups work on the parsed Stmt plus the call's arguments, so routing
// costs no re-parse and no execution.

// WhereEqValue returns the value the statement's WHERE clause compares col
// against — the bound parameter or the literal of the first equality
// predicate on col. ok is false when no predicate mentions col or the
// predicate's parameter is not covered by args (the statement will fail
// parameter validation wherever it executes).
func (st *Stmt) WhereEqValue(col string, args []any) (any, bool) {
	for _, c := range st.Where {
		if c.Col != col {
			continue
		}
		if c.Param < 0 {
			return c.Lit, true
		}
		if c.Param < len(args) {
			return args[c.Param], true
		}
		return nil, false
	}
	return nil, false
}

// InsertValue returns the value an INSERT statement stores into column
// position colIdx (schema order). ok is false for non-INSERT statements,
// positions outside the VALUES list (an arity error at execution time), or
// parameters not covered by args.
func (st *Stmt) InsertValue(colIdx int, args []any) (any, bool) {
	if !st.Insert || colIdx < 0 || colIdx >= len(st.Values) {
		return nil, false
	}
	ord := st.Values[colIdx]
	if ord < 0 {
		return st.Lits[colIdx], true
	}
	if ord < len(args) {
		return args[ord], true
	}
	return nil, false
}
