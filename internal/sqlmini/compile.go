package sqlmini

// Statement compilation: a prepared statement's predicate set is resolved
// against its table's schema once (at first execution) and cached on the
// Stmt, and each execution binds the parameters into typed comparators that
// read column vectors directly. Execute/ExecuteBatch then evaluate residual
// filters and full scans without boxing values or dispatching through
// interfaces per row. Only schema-derived facts are cached — access-path
// choice stays dynamic (pickDriver), so an index added after the first
// execution is picked up immediately.

import (
	"fmt"

	"repro/internal/storage"
)

// stmtPlan is the per-(Stmt, Table) schema resolution: column positions for
// the WHERE predicates, the select list, and the aggregate argument.
// Unknown columns resolve to -1 and surface the same errors, at the same
// points, as the uncompiled evaluator did.
type stmtPlan struct {
	table   *storage.Table
	whereCI []int // schema position per WHERE predicate, -1 = unknown
	selCI   []int // schema position per selected column (nil for * or aggregate)
	star    bool
	aggCI   int // aggregate column position, -1 = unknown or COUNT(*)
}

// planFor returns the cached plan for t, compiling it on first use. Stmts
// are per-server (each server parses its own prepared cache), so in steady
// state the load hits; the table-identity check keeps a Stmt shared across
// catalogs (differential tests) correct at the cost of a recompile.
func (st *Stmt) planFor(t *storage.Table) *stmtPlan {
	if p := st.plan.Load(); p != nil && p.table == t {
		return p
	}
	p := &stmtPlan{table: t, aggCI: -1}
	p.whereCI = make([]int, len(st.Where))
	for i, c := range st.Where {
		p.whereCI[i] = t.Schema.ColIndex(c.Col)
	}
	switch {
	case st.Agg != AggNone:
		p.aggCI = t.Schema.ColIndex(st.AggCol)
	case len(st.Cols) == 1 && st.Cols[0] == "*":
		p.star = true
	default:
		p.selCI = make([]int, len(st.Cols))
		for i, c := range st.Cols {
			p.selCI[i] = t.Schema.ColIndex(c)
		}
	}
	st.plan.Store(p)
	return p
}

// condFilter is one binding's residual filter, specialized by column type:
// equality against int columns compares int64 vectors, string columns
// compare string vectors, and degraded columns fall back to the boxed
// comparison the row-wise heap used. A predicate whose bound value cannot
// match its column's type (an int column compared to a string, say) makes
// the whole conjunction constant-false — exactly what interface inequality
// produced before, row by row.
type condFilter struct {
	constFalse bool
	intCols    [][]int64
	intV       []int64
	strCols    [][]string
	strV       []string
	anyCols    [][]any
	anyV       []any
}

func (f *condFilter) reset() {
	f.constFalse = false
	f.intCols = f.intCols[:0]
	f.intV = f.intV[:0]
	f.strCols = f.strCols[:0]
	f.strV = f.strV[:0]
	f.anyCols = f.anyCols[:0]
	f.anyV = f.anyV[:0]
}

// validateWhere reports the statement's first unknown predicate column, in
// predicate order — the same error, at the same point (before any page
// touch), as the uncompiled binder produced.
func validateWhere(st *Stmt, plan *stmtPlan) error {
	for i, c := range st.Where {
		if plan.whereCI[i] < 0 {
			return fmt.Errorf("sqlmini: %s: no column %q", st.Table, c.Col)
		}
	}
	return nil
}

// bind substitutes the call's parameters into the statement's predicates,
// type-specializing each comparison against the view's column kinds. The
// caller must have run validateWhere first; the view must be snapshotted
// after the access path's index probes so every candidate rid is in bounds.
func (f *condFilter) bind(st *Stmt, plan *stmtPlan, view *storage.View, args []any) {
	f.reset()
	for i, c := range st.Where {
		ci := plan.whereCI[i]
		v := c.Lit
		if c.Param >= 0 {
			v = args[c.Param]
		}
		col := &view.Cols[ci]
		switch {
		case col.Anys != nil:
			f.anyCols = append(f.anyCols, col.Anys)
			f.anyV = append(f.anyV, v)
		case col.Kind == storage.TInt:
			iv, ok := v.(int64)
			if !ok {
				f.constFalse = true
				continue
			}
			f.intCols = append(f.intCols, col.Ints)
			f.intV = append(f.intV, iv)
		default:
			sv, ok := v.(string)
			if !ok {
				f.constFalse = true
				continue
			}
			f.strCols = append(f.strCols, col.Strs)
			f.strV = append(f.strV, sv)
		}
	}
}

// release drops the filter's references into table storage so a pooled
// filter does not pin column vectors — the full capacity is cleared because
// earlier, wider binds may have left stale headers past the current length.
// (The plain value slices hold no pointers worth clearing except the boxed
// anyV.)
func (f *condFilter) release() {
	clear(f.intCols[:cap(f.intCols)])
	clear(f.strCols[:cap(f.strCols)])
	clear(f.anyCols[:cap(f.anyCols)])
	clear(f.anyV[:cap(f.anyV)])
	f.reset()
}

// match evaluates the conjunction for one row.
func (f *condFilter) match(rid int) bool {
	for k, col := range f.intCols {
		if col[rid] != f.intV[k] {
			return false
		}
	}
	for k, col := range f.strCols {
		if col[rid] != f.strV[k] {
			return false
		}
	}
	for k, col := range f.anyCols {
		if col[rid] != f.anyV[k] {
			return false
		}
	}
	return true
}

// appendMatches filters an explicit candidate list into matched.
func (f *condFilter) appendMatches(matched, rids []int) []int {
	if f.constFalse {
		return matched
	}
	// Single-int-predicate fast path: the dominant shape (point and
	// category lookups) runs as one typed sweep.
	if len(f.intCols) == 1 && len(f.strCols) == 0 && len(f.anyCols) == 0 {
		col, want := f.intCols[0], f.intV[0]
		for _, rid := range rids {
			if col[rid] == want {
				matched = append(matched, rid)
			}
		}
		return matched
	}
	for _, rid := range rids {
		if f.match(rid) {
			matched = append(matched, rid)
		}
	}
	return matched
}

// appendScanMatches filters the rid range [0, n) into matched — the full
// scan evaluates over the column vectors directly, no rid list needed.
func (f *condFilter) appendScanMatches(matched []int, n int) []int {
	if f.constFalse {
		return matched
	}
	if len(f.intCols) == 1 && len(f.strCols) == 0 && len(f.anyCols) == 0 {
		col, want := f.intCols[0], f.intV[0]
		for rid, v := range col[:n] {
			if v == want {
				matched = append(matched, rid)
			}
		}
		return matched
	}
	if len(f.strCols) == 1 && len(f.intCols) == 0 && len(f.anyCols) == 0 {
		col, want := f.strCols[0], f.strV[0]
		for rid, v := range col[:n] {
			if v == want {
				matched = append(matched, rid)
			}
		}
		return matched
	}
	for rid := 0; rid < n; rid++ {
		if f.match(rid) {
			matched = append(matched, rid)
		}
	}
	return matched
}
