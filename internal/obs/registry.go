package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 metric.
type Gauge struct {
	name string
	v    atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(floatBits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return bitsFloat(g.v.Load()) }

// SourceFunc is a pull-model metric source: called at dump time, it
// returns a name→value map (typically a package's existing Stats()
// snapshot flattened to key/value pairs). Sources let the registry unify
// stats structs that predate it without those packages changing shape.
type SourceFunc func() map[string]float64

// Registry is the process-wide metric namespace: counters, gauges, and
// histograms created lazily by name, plus registered pull sources. All
// methods are safe for concurrent use; metric lookups after the first hit
// the fast path of a sync.Map and do not allocate.
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram

	mu      sync.Mutex
	sources map[string]SourceFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{name: name})
	return v.(*Counter)
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{name: name})
	return v.(*Gauge)
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &Histogram{name: name})
	return v.(*Histogram)
}

// RegisterSource attaches a pull source under a name, replacing any
// previous source with that name.
func (r *Registry) RegisterSource(name string, fn SourceFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sources == nil {
		r.sources = map[string]SourceFunc{}
	}
	r.sources[name] = fn
}

// HistQuantiles are the percentiles every dump reports.
var HistQuantiles = []struct {
	Label string
	Q     float64
}{
	{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999},
}

// dumpState is one consistent-enough view of the registry for rendering.
type dumpState struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]HistSnapshot
	sources  map[string]map[string]float64
}

func (r *Registry) snapshot() dumpState {
	d := dumpState{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]HistSnapshot{},
		sources:  map[string]map[string]float64{},
	}
	r.counters.Range(func(k, v any) bool {
		d.counters[k.(string)] = v.(*Counter).Load()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		d.gauges[k.(string)] = v.(*Gauge).Load()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		d.hists[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	r.mu.Lock()
	srcs := make(map[string]SourceFunc, len(r.sources))
	for k, fn := range r.sources {
		srcs[k] = fn
	}
	r.mu.Unlock()
	for k, fn := range srcs {
		d.sources[k] = fn()
	}
	return d
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Dump writes a statsz-style text rendering of every metric and source.
func (r *Registry) Dump(w io.Writer) error {
	d := r.snapshot()
	if len(d.counters) > 0 {
		fmt.Fprintln(w, "== counters ==")
		for _, k := range sortedKeys(d.counters) {
			fmt.Fprintf(w, "%-44s %d\n", k, d.counters[k])
		}
	}
	if len(d.gauges) > 0 {
		fmt.Fprintln(w, "== gauges ==")
		for _, k := range sortedKeys(d.gauges) {
			fmt.Fprintf(w, "%-44s %g\n", k, d.gauges[k])
		}
	}
	if len(d.hists) > 0 {
		fmt.Fprintln(w, "== histograms ==")
		for _, k := range sortedKeys(d.hists) {
			s := d.hists[k]
			fmt.Fprintf(w, "%-44s count=%d mean=%v", k, s.Count,
				time.Duration(int64(s.Mean())).Round(time.Microsecond))
			for _, pq := range HistQuantiles {
				fmt.Fprintf(w, " %s=%v", pq.Label,
					time.Duration(s.Quantile(pq.Q)).Round(time.Microsecond))
			}
			fmt.Fprintf(w, " max=%v\n", time.Duration(s.Max).Round(time.Microsecond))
		}
	}
	for _, src := range sortedKeys(d.sources) {
		fmt.Fprintf(w, "== %s ==\n", src)
		vals := d.sources[src]
		for _, k := range sortedKeys(vals) {
			fmt.Fprintf(w, "%-44s %g\n", k, vals[k])
		}
	}
	return nil
}

// histJSON is the JSON shape of one histogram: summary stats only — the
// raw bucket array is an implementation detail.
type histJSON struct {
	Count  int64            `json:"count"`
	MeanNS float64          `json:"mean_ns"`
	MaxNS  int64            `json:"max_ns"`
	Pcts   map[string]int64 `json:"percentiles_ns"`
}

// DumpJSON writes the same content as Dump as one JSON object.
func (r *Registry) DumpJSON(w io.Writer) error {
	d := r.snapshot()
	hists := make(map[string]histJSON, len(d.hists))
	for k, s := range d.hists {
		h := histJSON{Count: s.Count, MeanNS: s.Mean(), MaxNS: s.Max,
			Pcts: make(map[string]int64, len(HistQuantiles))}
		for _, pq := range HistQuantiles {
			h.Pcts[pq.Label] = s.Quantile(pq.Q)
		}
		hists[k] = h
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   d.counters,
		"gauges":     d.gauges,
		"histograms": hists,
		"sources":    d.sources,
	})
}
