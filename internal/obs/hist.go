// Package obs is the observability layer: a concurrency-safe metrics
// registry (counters, gauges, log-bucketed latency histograms) and
// per-request trace spans that record both wall-clock time and the
// simulated-latency charge behind it. It is a leaf package — nothing in
// this repo is imported from here — so every layer (wal, server,
// replica, shard, batch, exec, experiments, CLIs) can feed the same
// registry without import cycles.
package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values below 32 (nanoseconds, in practice) get
// exact unit-width buckets; above that, each power-of-two octave is split
// into 32 sub-buckets, so any recorded value lands in a bucket whose width
// is at most 1/32 (~3.1%) of its value. int64 values therefore need
// (63-5)*32 + 64 = 1920 buckets at most; the actual maximum index for a
// positive int64 is 1887, so 1888 slots suffice.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 sub-buckets per octave
	histBuckets = (62-histSubBits)*histSub + 2*histSub
)

// histStripes spreads concurrent Record calls across independent atomic
// arrays so the hot path never shares a cache line under contention. Must
// be a power of two.
const histStripes = 4

type histStripe struct {
	_       [64]byte // pad to keep stripes off each other's cache lines
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram is a log-bucketed latency histogram safe for concurrent use.
// Record is allocation-free and lock-free: it picks one of a small number
// of stripes with the runtime's per-P cheap random source and does three
// atomic adds (plus a rare CAS when a new maximum is seen).
type Histogram struct {
	name    string
	stripes [histStripes]histStripe
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	m := u >> (exp - histSubBits)
	return (exp-histSubBits)*histSub + int(m)
}

// bucketBounds returns the [lo, hi) value range of bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx) + 1
	}
	shift := idx/histSub - 1
	m := int64(idx - shift*histSub)
	lo = m << shift
	hi = (m + 1) << shift
	if hi <= lo { // top bucket's upper edge overflows int64
		hi = 1<<63 - 1
	}
	return lo, hi
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	s := &h.stripes[rand.Uint32()&(histStripes-1)]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[bucketOf(v)].Add(1)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// RecordDuration records a duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Name returns the registry name the histogram was created under.
func (h *Histogram) Name() string { return h.name }

// HistSnapshot is a point-in-time copy of a histogram. Snapshots are plain
// values: mergeable (associatively and commutatively) across shards,
// replicas, or time windows, and queryable for quantiles.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets []int64
}

// Snapshot folds all stripes into one mergeable snapshot. It is not a
// consistent cut under concurrent recording — counts may trail sums by
// in-flight records — which is the usual (and here acceptable) price of a
// lock-free record path.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Buckets: make([]int64, histBuckets)}
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
		if m := st.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := range st.buckets {
			if n := st.buckets[b].Load(); n != 0 {
				s.Buckets[b] += n
			}
		}
	}
	return s
}

// Merge folds another snapshot into this one. Merging is associative and
// commutative, so per-shard snapshots can be combined in any grouping.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if s.Buckets == nil {
		s.Buckets = make([]int64, histBuckets)
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1): the
// upper edge of the bucket holding the ceil(q*Count)-th smallest value.
// The estimate is exact for values under 32 and within +3.2% above.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			_, hi := bucketBounds(i)
			if hi > s.Max && s.Max > 0 {
				return s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the average recorded value, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
