package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramPercentileOracle checks quantile estimates against a
// sorted-sample oracle across several distributions. The histogram's
// contract: the estimate is an upper bound on the true order statistic,
// within one sub-bucket width (1/32 ≈ 3.2%) relative error.
func TestHistogramPercentileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() int64{
		"uniform": func() int64 { return rng.Int63n(10_000_000) },
		"exp":     func() int64 { return int64(rng.ExpFloat64() * 2e6) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 50_000_000 + rng.Int63n(1_000_000)
			}
			return 100_000 + rng.Int63n(10_000)
		},
		"small": func() int64 { return rng.Int63n(30) }, // exact linear region
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{name: name}
			n := 20000
			samples := make([]int64, n)
			for i := range samples {
				v := gen()
				samples[i] = v
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := h.Snapshot()
			if s.Count != int64(n) {
				t.Fatalf("count = %d, want %d", s.Count, n)
			}
			var sum int64
			for _, v := range samples {
				sum += v
			}
			if s.Sum != sum {
				t.Fatalf("sum = %d, want %d", s.Sum, sum)
			}
			if s.Max != samples[n-1] {
				t.Fatalf("max = %d, want %d", s.Max, samples[n-1])
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
				rank := int(q*float64(n) + 0.9999999)
				if rank < 1 {
					rank = 1
				}
				if rank > n {
					rank = n
				}
				oracle := samples[rank-1]
				est := s.Quantile(q)
				if est < oracle {
					t.Errorf("q=%v: estimate %d below oracle %d", q, est, oracle)
				}
				// Upper bound: one sub-bucket above the oracle's bucket.
				_, hi := bucketBounds(bucketOf(oracle))
				if est > hi {
					t.Errorf("q=%v: estimate %d above bucket bound %d (oracle %d)", q, est, hi, oracle)
				}
			}
		})
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1 << 20, 1<<62 + 12345, 1<<63 - 1}
	for _, v := range vals {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		// Buckets are half-open except the top one, whose clamped upper
		// edge MaxInt64 is inclusive.
		if v < lo || (v >= hi && hi != 1<<63-1) {
			t.Errorf("value %d landed in bucket %d = [%d,%d)", v, idx, lo, hi)
		}
		if idx >= histBuckets {
			t.Errorf("value %d bucket %d out of range %d", v, idx, histBuckets)
		}
	}
	if b := bucketOf(-5); b != 0 {
		// Record clamps negatives before bucketing; bucketOf itself is
		// only defined for v >= 0, which Record guarantees.
		_ = b
	}
}

// TestSnapshotMergeAssociativity: (a ∪ b) ∪ c == a ∪ (b ∪ c), and the
// merge of per-part snapshots equals the snapshot of all data recorded
// into one histogram.
func TestSnapshotMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*Histogram, 3)
	whole := &Histogram{}
	for i := range parts {
		parts[i] = &Histogram{}
		for j := 0; j < 5000; j++ {
			v := rng.Int63n(1_000_000)
			parts[i].Record(v)
			whole.Record(v)
		}
	}
	a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()

	left := cloneSnap(a)
	left.Merge(b)
	left.Merge(c)

	bc := cloneSnap(b)
	bc.Merge(c)
	right := cloneSnap(a)
	right.Merge(bc)

	if !snapEqual(left, right) {
		t.Fatal("merge is not associative")
	}
	if !snapEqual(left, whole.Snapshot()) {
		t.Fatal("merged parts differ from whole")
	}
}

func cloneSnap(s HistSnapshot) HistSnapshot {
	c := s
	c.Buckets = append([]int64(nil), s.Buckets...)
	return c
}

func snapEqual(a, b HistSnapshot) bool {
	if a.Count != b.Count || a.Sum != b.Sum || a.Max != b.Max {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

// TestConcurrentRecording hammers one histogram, counters, and gauges
// from many goroutines; run under -race this pins the lock-free paths.
func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	c := reg.Counter("ops")
	g := reg.Gauge("load")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(int64(i))
				c.Add(1)
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestRecordNoAlloc pins the zero-allocation contract of the hot path.
func TestRecordNoAlloc(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	c := reg.Counter("ops")
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
		c.Add(1)
	}); n != 0 {
		t.Fatalf("record path allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		reg.Histogram("lat").Record(1)
	}); n != 0 {
		t.Fatalf("histogram lookup allocates %v times per op, want 0", n)
	}
}

func TestRegistryDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.queries").Add(42)
	reg.Gauge("pool.fill").Set(0.5)
	reg.Histogram("lat").Record(int64(3 * time.Millisecond))
	reg.RegisterSource("shard0", func() map[string]float64 {
		return map[string]float64{"disk.reads": 7}
	})
	var b bytes.Buffer
	if err := reg.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"server.queries", "42", "pool.fill", "lat", "p99", "shard0", "disk.reads"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := reg.DumpJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("DumpJSON not valid JSON: %v", err)
	}
	for _, k := range []string{"counters", "gauges", "histograms", "sources"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("JSON dump missing %q", k)
		}
	}
}

// TestSpanTree exercises span construction, charges, the slow log, and
// the open/closed accounting.
func TestSpanTree(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	var slow bytes.Buffer
	tr.SetSlowLog(1, &slow) // everything is slow
	var roots []*Span
	tr.SetCollector(func(r *Span) { roots = append(roots, r) })

	root := tr.Start("request")
	root.SetDetail("select * from t")
	child := root.Child("server.exec")
	child.Charge(2 * time.Millisecond)
	child.SetDetail(ShardLabel(3))
	grand := child.Child("wal.commit")
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	if tr.Started() != 3 || tr.Ended() != 3 || tr.Open() != 0 {
		t.Fatalf("span accounting: started=%d ended=%d open=%d", tr.Started(), tr.Ended(), tr.Open())
	}
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("collector got %d roots", len(roots))
	}
	if got := root.SimTotal(); got != 2*time.Millisecond {
		t.Fatalf("SimTotal = %v, want 2ms", got)
	}
	out := slow.String()
	for _, want := range []string{"slow query", "request", "server.exec", "wal.commit", "shard 3", "sim=2ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q:\n%s", want, out)
		}
	}
	if s := reg.Histogram("span.request.wall").Snapshot(); s.Count != 1 {
		t.Errorf("span.request.wall count = %d, want 1", s.Count)
	}
	if s := reg.Histogram("span.server.exec.sim").Snapshot(); s.Count != 1 {
		t.Errorf("span.server.exec.sim count = %d, want 1", s.Count)
	}
}

// TestNilSafety: every span/tracer method must be a no-op on nil.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.Charge(time.Second)
	sp.SetDetail("d")
	c := sp.Child("y")
	if c != nil {
		t.Fatal("nil span minted a child")
	}
	c.End()
	sp.End()
	if tr.Started() != 0 || tr.Ended() != 0 || tr.Open() != 0 || tr.Registry() != nil {
		t.Fatal("nil tracer accounting not zero")
	}
	if sp.Name() != "" || sp.Wall() != 0 || sp.Sim() != 0 || sp.SimTotal() != 0 || sp.Children() != nil {
		t.Fatal("nil span accessors not zero")
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not 0")
	}
	h := &Histogram{}
	h.Record(5)
	snap := h.Snapshot()
	for _, q := range []float64{0.001, 0.5, 1} {
		// The bucket's upper edge is 6, but the Max clamp makes a
		// single-value quantile exact.
		if got := snap.Quantile(q); got != 5 {
			t.Fatalf("q=%v = %d, want 5", q, got)
		}
	}
}

// TestChildSampling pins the always-on posture: with SetChildSampling(n),
// every root still records its wall histogram, only ~1/n roots build
// subtrees, and installing a tree consumer (collector or slow log)
// restores full detail.
func TestChildSampling(t *testing.T) {
	tr := NewTracer(NewRegistry())
	tr.SetChildSampling(64)
	const roots = 2000
	withKids := 0
	for i := 0; i < roots; i++ {
		sp := tr.Start("request")
		if c := sp.Child("stage"); c != nil {
			withKids++
			c.End()
		}
		sp.End()
	}
	snap := tr.Registry().Histogram("span.request.wall").Snapshot()
	if snap.Count != roots {
		t.Fatalf("root histogram count = %d, want %d (roots must never be sampled away)", snap.Count, roots)
	}
	if withKids == 0 || withKids > roots/8 {
		t.Fatalf("sampled subtrees = %d of %d, want a small non-zero fraction", withKids, roots)
	}
	if open := tr.Open(); open != 0 {
		t.Fatalf("open spans = %d, want 0", open)
	}

	// A collector forces whole trees despite sampling.
	tr.SetCollector(func(*Span) {})
	for i := 0; i < 100; i++ {
		sp := tr.Start("request")
		if sp.Child("stage") == nil {
			t.Fatal("collector installed: every root must build its subtree")
		}
		sp.End()
	}
	tr.SetCollector(nil)
	// SetChildSampling(1) restores full detail too.
	tr.SetChildSampling(1)
	if tr.Start("request").Child("stage") == nil {
		t.Fatal("sampling off: child must be built")
	}
}
