package obs

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a request: queue wait, batch linger, a
// per-shard scatter leg, a WAL commit wait. Spans form a tree rooted at
// the request span and record two clocks:
//
//   - wall: real elapsed time between Start and End (includes the
//     harness's latency scale factor);
//   - sim: the simulated-latency charge explicitly attributed to the span
//     via Charge (RTT, CPU hold, fsync settle) — the model time the
//     figures are built on, independent of scale.
//
// All methods are safe on a nil *Span and do nothing, so instrumented
// code never branches on "is tracing on": an untraced request threads nil
// spans end to end at the cost of a few predictable nil checks.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time
	wall   time.Duration
	sim    atomic.Int64 // nanoseconds of simulated charge
	ended  atomic.Bool

	// sampled gates subtree construction: an unsampled root records its
	// own wall/sim histograms but mints no children and keeps no detail
	// (see Tracer.SetChildSampling). Set once at Start, inherited by
	// children, read-only afterwards.
	sampled bool

	mu       sync.Mutex
	detail   string
	children []*Span
}

// Child opens a sub-span. Safe (and a no-op returning nil) on nil, and on
// an unsampled span (child-sampling mode skips whole subtrees).
// Children may be opened concurrently — scatter fan-out does.
func (s *Span) Child(name string) *Span {
	if s == nil || !s.sampled {
		return nil
	}
	c := s.tracer.newSpan(name)
	c.parent = s
	c.sampled = true
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Charge attributes simulated-model latency to the span.
func (s *Span) Charge(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.sim.Add(int64(d))
}

// SetDetail attaches a free-form annotation (SQL text, shard id, replica
// label) rendered in the slow-query log. Dropped on unsampled spans — the
// subtree it would annotate is never built.
func (s *Span) SetDetail(d string) {
	if s == nil || !s.sampled {
		return
	}
	s.mu.Lock()
	s.detail = d
	s.mu.Unlock()
}

// End closes the span, records its durations in the tracer's registry,
// and — for a root span — runs slow-query rendering and the collector
// hook. End is idempotent; only the first call counts.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.wall = time.Since(s.start)
	t := s.tracer
	t.ended.Add(1)
	t.histFor(&t.wallHists, s.name, ".wall").RecordDuration(s.wall)
	if sim := s.sim.Load(); sim > 0 {
		t.histFor(&t.simHists, s.name, ".sim").Record(sim)
	}
	if s.parent == nil {
		t.rootEnded(s)
	}
}

// Ended reports whether End has been called (true for a nil span: a span
// that never existed has nothing left open).
func (s *Span) Ended() bool {
	if s == nil {
		return true
	}
	return s.ended.Load()
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the wall-clock duration (valid after End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return s.wall
}

// Sim returns the simulated charge attributed directly to this span.
func (s *Span) Sim() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.sim.Load())
}

// Children returns the child spans (valid after End; callers must not
// mutate).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.children
}

// SimTotal returns the simulated charge of the span plus all descendants.
func (s *Span) SimTotal() time.Duration {
	if s == nil {
		return 0
	}
	total := time.Duration(s.sim.Load())
	for _, c := range s.Children() {
		total += c.SimTotal()
	}
	return total
}

// Tracer mints spans and owns the slow-query log. A nil *Tracer is valid
// and mints nil spans, so "tracing off" costs one nil check at the root.
type Tracer struct {
	reg     *Registry
	started atomic.Int64
	ended   atomic.Int64

	slowNS atomic.Int64
	// sampleMask, when non-zero, samples subtree construction: a root span
	// builds children only when (fastrand & mask) == 0. Root spans are
	// always recorded, so end-to-end latency histograms stay exact; only
	// the per-stage breakdown becomes statistical. Forced off (full
	// detail) while a slow-log sink or collector is installed — both
	// consume whole trees.
	sampleMask atomic.Uint32
	// wantTrees mirrors "slow-log sink or collector installed" as one
	// atomic, so the Start hot path never takes the tracer mutex.
	wantTrees atomic.Bool

	mu       sync.Mutex
	slowSink io.Writer
	collect  func(root *Span)

	// Per-span-name histogram caches: span names are compile-time
	// constants, so End reaches its histograms via one lock-free map hit
	// instead of allocating a concatenated metric name per request.
	wallHists sync.Map // string -> *Histogram
	simHists  sync.Map
}

// NewTracer returns a tracer recording span durations into reg.
func NewTracer(reg *Registry) *Tracer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Tracer{reg: reg}
}

// Registry returns the tracer's metric registry.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// SetSlowLog enables slow-query logging: any root span whose wall time
// reaches thresh has its tree rendered to sink. thresh <= 0 disables.
func (t *Tracer) SetSlowLog(thresh time.Duration, sink io.Writer) {
	t.mu.Lock()
	t.slowSink = sink
	t.slowNS.Store(int64(thresh))
	t.wantTrees.Store((thresh > 0 && sink != nil) || t.collect != nil)
	t.mu.Unlock()
}

// SetCollector installs a hook invoked with every completed root span
// (used by trace-completeness tests to retain whole trees).
func (t *Tracer) SetCollector(fn func(root *Span)) {
	t.mu.Lock()
	t.collect = fn
	t.wantTrees.Store(fn != nil || (t.slowNS.Load() > 0 && t.slowSink != nil))
	t.mu.Unlock()
}

// SetChildSampling makes the tracer record child subtrees for roughly one
// in n root spans (n is rounded up to a power of two); the other roots
// still time and record themselves, but Child returns nil. This keeps the
// per-request overhead to one span on hosts where tracing must stay on
// under benchmark load. n <= 1 restores full detail. Ignored (full detail)
// while a slow-log sink or collector is installed, since both want every
// tree intact.
func (t *Tracer) SetChildSampling(n int) {
	if n <= 1 {
		t.sampleMask.Store(0)
		return
	}
	mask := uint32(1)
	for int(mask) < n-1 {
		mask = mask<<1 | 1
	}
	t.sampleMask.Store(mask)
}

// Start opens a root span. Safe on a nil tracer (returns a nil span).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := t.newSpan(name)
	sp.sampled = true
	if mask := t.sampleMask.Load(); mask != 0 && !t.wantTrees.Load() && rand.Uint32()&mask != 0 {
		sp.sampled = false
	}
	return sp
}

func (t *Tracer) newSpan(name string) *Span {
	t.started.Add(1)
	return &Span{tracer: t, name: name, start: time.Now()}
}

// Started returns the number of spans opened so far.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Ended returns the number of spans closed so far.
func (t *Tracer) Ended() int64 {
	if t == nil {
		return 0
	}
	return t.ended.Load()
}

// Open returns the number of spans opened but not yet closed.
func (t *Tracer) Open() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load() - t.ended.Load()
}

func (t *Tracer) histFor(cache *sync.Map, name, suffix string) *Histogram {
	if v, ok := cache.Load(name); ok {
		return v.(*Histogram)
	}
	h := t.reg.Histogram("span." + name + suffix)
	v, _ := cache.LoadOrStore(name, h)
	return v.(*Histogram)
}

func (t *Tracer) rootEnded(root *Span) {
	if thresh := t.slowNS.Load(); thresh > 0 && int64(root.wall) >= thresh {
		t.mu.Lock()
		sink := t.slowSink
		t.mu.Unlock()
		if sink != nil {
			var b strings.Builder
			fmt.Fprintf(&b, "slow query: wall=%v sim=%v\n",
				root.wall.Round(time.Microsecond), root.SimTotal().Round(time.Microsecond))
			renderSpan(&b, root, 1)
			t.mu.Lock()
			io.WriteString(sink, b.String())
			t.mu.Unlock()
		}
	}
	t.mu.Lock()
	collect := t.collect
	t.mu.Unlock()
	if collect != nil {
		collect(root)
	}
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s wall=%v", s.name, s.wall.Round(time.Microsecond))
	if sim := s.Sim(); sim > 0 {
		fmt.Fprintf(b, " sim=%v", sim.Round(time.Microsecond))
	}
	s.mu.Lock()
	detail := s.detail
	children := s.children
	s.mu.Unlock()
	if detail != "" {
		fmt.Fprintf(b, " [%s]", detail)
	}
	b.WriteByte('\n')
	for _, c := range children {
		renderSpan(b, c, depth+1)
	}
}

// shardLabels caches small "shard N" detail strings so scatter fan-out
// does not pay a fmt allocation per leg.
var shardLabels = func() []string {
	ls := make([]string, 64)
	for i := range ls {
		ls[i] = fmt.Sprintf("shard %d", i)
	}
	return ls
}()

// ShardLabel returns a cached "shard N" annotation string.
func ShardLabel(i int) string {
	if i >= 0 && i < len(shardLabels) {
		return shardLabels[i]
	}
	return fmt.Sprintf("shard %d", i)
}

var replicaLabels = func() []string {
	ls := make([]string, 16)
	for i := range ls {
		ls[i] = fmt.Sprintf("replica %d", i)
	}
	return ls
}()

// ReplicaLabel returns a cached "replica N" annotation string.
func ReplicaLabel(i int) string {
	if i >= 0 && i < len(replicaLabels) {
		return replicaLabels[i]
	}
	return fmt.Sprintf("replica %d", i)
}
