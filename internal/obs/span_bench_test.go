package obs

import "testing"

// BenchmarkSpanLifecycle prices one fully-detailed request tree: a root
// plus two children with detail and a sim charge — the per-request cost
// when a slow-query log or collector keeps whole trees.
func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("request")
		sp.SetDetail("select 1")
		c := sp.Child("batch.wait")
		c.End()
		c2 := sp.Child("shard.exec")
		c2.SetDetail(ShardLabel(2))
		c2.Charge(1000)
		c2.End()
		sp.End()
	}
}

// BenchmarkSpanLifecycleParallel is the same tree under concurrent
// producers, exercising the striped histogram record path.
func BenchmarkSpanLifecycleParallel(b *testing.B) {
	tr := NewTracer(NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tr.Start("request")
			c := sp.Child("shard.exec")
			c.Charge(1000)
			c.End()
			sp.End()
		}
	})
}

// BenchmarkSpanRootSampled is the always-on posture (SetChildSampling):
// most requests pay only the root span — one allocation, two clock
// reads, one histogram record.
func BenchmarkSpanRootSampled(b *testing.B) {
	tr := NewTracer(NewRegistry())
	tr.SetChildSampling(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("request")
		sp.SetDetail("select 1")
		c := sp.Child("shard.exec")
		c.Charge(1000)
		c.End()
		sp.End()
	}
}
