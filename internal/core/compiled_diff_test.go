package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/testsvc"
)

// Differential coverage for the slot-compiled evaluator: every program the
// property-test generator emits — original AND transformed — must behave
// identically on the tree-walking reference path (Interp.RunTree) and the
// compiled path (Interp.Run): same returns, same output stream, same final
// environment, or the same failure.

// diffOnePath runs proc through both evaluators against fresh deterministic
// services and compares the complete observable outcome.
func diffOnePath(proc *ir.Proc, args []interp.Value, workers int, label, src string) error {
	runVia := func(tree bool) (*interp.Result, error) {
		svc := testsvc.NewAsync(workers) // workers==0 is exactly NewSync
		defer svc.Close()
		in := interp.New(ir.NewRegistry(), svc)
		if tree {
			return in.RunTree(proc, args)
		}
		return in.Run(proc, args)
	}
	rt, errT := runVia(true)
	rc, errC := runVia(false)
	if (errT != nil) != (errC != nil) {
		return fmt.Errorf("%s: error mismatch: tree=%v compiled=%v\n%s", label, errT, errC, src)
	}
	if errT != nil {
		if errT.Error() != errC.Error() {
			return fmt.Errorf("%s: error text mismatch:\ntree:     %v\ncompiled: %v\n%s",
				label, errT, errC, src)
		}
		return nil
	}
	if err := interp.EquivalentResult(rt, rc); err != nil {
		return fmt.Errorf("%s: %w\n%s", label, err, src)
	}
	return nil
}

// checkCompiledEquivalence generates the same random program shapes the
// transformation property tests use and differential-tests both the
// original and the transformed variant.
func checkCompiledEquivalence(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	src := genProgram(rng)
	orig, err := minilang.Parse(src)
	if err != nil {
		return fmt.Errorf("seed %d: unparsable generated program: %v", seed, err)
	}
	trans, _, err := Transform(orig, Options{SplitNested: true})
	if err != nil {
		return fmt.Errorf("seed %d: transform: %v", seed, err)
	}
	args := []interp.Value{int64(5 + rng.Intn(12)), int64(rng.Intn(50))}
	if err := diffOnePath(orig, args, 0, fmt.Sprintf("seed %d original", seed), src); err != nil {
		return err
	}
	return diffOnePath(trans, args, 3, fmt.Sprintf("seed %d transformed", seed), ir.Print(trans))
}

func TestCompiledEvaluatorDifferential(t *testing.T) {
	n := int64(250)
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < n; seed++ {
		if err := checkCompiledEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompiledEvaluatorDifferentialErrors pins the compiled path to the
// tree path on programs that fail at runtime, where the equivalence must
// extend to the error text.
func TestCompiledEvaluatorDifferentialErrors(t *testing.T) {
	cases := []string{
		`proc f() { return missing; }`,
		`proc f() { x = 1 / 0; return x; }`,
		`proc f() { x = 5 % 0; return x; }`,
		`proc f() { x = 1 + "s"; return x; }`,
		`proc f() { x = "s" + 1; return x; }`,
		`proc f() { x = nosuchfn(1); return x; }`,
		`proc f() { x = size(1, 2); return x; }`,
		`proc f() { if (3) { x = 1; } return 0; }`,
		`proc f() { while (1) { x = 1; } return 0; }`,
		`proc f(n) { query q = "select v from t where k = ?"; v = execQuery(q, n); return v; }`,
		`proc f() { x = first(list()); return x; }`,
	}
	for _, src := range cases {
		proc, err := minilang.Parse(src)
		if err != nil {
			// Some shapes may be rejected by the parser; those cannot
			// diverge between evaluators.
			continue
		}
		if err := diffOnePath(proc, nil, 0, "error case", src); err != nil {
			t.Error(err)
		}
	}
}
