package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/testsvc"
)

// The property: for ANY program the generator emits, the transformed version
// must produce exactly the same returns and output as the original, running
// against the same deterministic query service — and when the transformation
// declines a site, the program must simply remain correct. This exercises
// Rule A/B, the reorder algorithm and the stub machinery across thousands of
// dependence shapes no hand-written test would cover.

// genProgram builds a random single-loop program over a small scalar
// vocabulary. Termination is guaranteed by a dedicated counter; all
// variables are initialized before the loop; arithmetic avoids division by
// variables so no run can fail.
func genProgram(rng *rand.Rand) string {
	vars := []string{"a", "b", "c", "d"}
	var b strings.Builder
	b.WriteString("proc fuzz(n, x) {\n")
	b.WriteString("  query q0 = \"select v from t where k = ?\";\n")
	b.WriteString("  query q1 = \"select w from u where k = ?\";\n")
	for _, v := range vars {
		fmt.Fprintf(&b, "  %s = %d;\n", v, rng.Intn(7))
	}
	b.WriteString("  i = 0;\n  out = 0;\n")
	b.WriteString("  while (i < n) {\n")

	nStmts := 3 + rng.Intn(7)
	incAt := rng.Intn(nStmts + 1)
	queries := 1 + rng.Intn(2)
	queryAt := map[int]bool{}
	for len(queryAt) < queries {
		queryAt[rng.Intn(nStmts)] = true
	}
	expr := func() string {
		pick := func() string {
			switch rng.Intn(4) {
			case 0:
				return vars[rng.Intn(len(vars))]
			case 1:
				return fmt.Sprintf("%d", rng.Intn(9))
			case 2:
				return "i"
			default:
				return "x"
			}
		}
		ops := []string{"+", "-", "*"}
		s := pick()
		for k := rng.Intn(3); k > 0; k-- {
			s += " " + ops[rng.Intn(len(ops))] + " " + pick()
		}
		if rng.Intn(3) == 0 {
			s = "(" + s + ") % 13"
		}
		return s
	}
	guard := func() string {
		if rng.Intn(3) != 0 {
			return ""
		}
		return fmt.Sprintf("g%d", rng.Intn(2))
	}
	// Guard variables recomputed each iteration so Rule B interacts.
	b.WriteString("    g0 = i % 2 == 0;\n")
	b.WriteString("    g1 = i % 3 != 0;\n")
	for s := 0; s < nStmts; s++ {
		if s == incAt {
			b.WriteString("    i = i + 1;\n")
		}
		tgt := vars[rng.Intn(len(vars))]
		g := guard()
		prefix := "    "
		if g != "" {
			prefix = "    " + g + " ? "
		}
		switch {
		case queryAt[s]:
			q := "q0"
			if rng.Intn(2) == 0 {
				q = "q1"
			}
			fmt.Fprintf(&b, "%s%s = execQuery(%s, %s);\n", prefix, tgt, q, expr())
		case rng.Intn(5) == 0:
			fmt.Fprintf(&b, "%sprint(%s);\n", prefix, expr())
		case rng.Intn(6) == 0:
			fmt.Fprintf(&b, "%sout = out + %s;\n", prefix, expr())
		default:
			fmt.Fprintf(&b, "%s%s = %s;\n", prefix, tgt, expr())
		}
	}
	if incAt >= nStmts {
		b.WriteString("    i = i + 1;\n")
	}
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  return out, %s, i;\n", strings.Join(vars, ", "))
	b.WriteString("}\n")
	return b.String()
}

// checkEquivalence is the quick.Check property.
func checkEquivalence(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	src := genProgram(rng)
	orig, err := minilang.Parse(src)
	if err != nil {
		return fmt.Errorf("seed %d: generator produced unparsable code: %v\n%s", seed, err, src)
	}
	trans, _, err := Transform(orig, Options{SplitNested: true})
	if err != nil {
		return fmt.Errorf("seed %d: transform: %v\n%s", seed, err, src)
	}
	args := []interp.Value{int64(5 + rng.Intn(12)), int64(rng.Intn(50))}
	reg := ir.NewRegistry()

	in1 := interp.New(reg, testsvc.NewSync())
	r1, err := in1.Run(orig, args)
	if err != nil {
		return fmt.Errorf("seed %d: original run failed: %v\n%s", seed, err, src)
	}
	svc := testsvc.NewAsync(3)
	defer svc.Close()
	in2 := interp.New(reg, svc)
	r2, err := in2.Run(trans, args)
	if err != nil {
		return fmt.Errorf("seed %d: transformed run failed: %v\noriginal:\n%s\ntransformed:\n%s",
			seed, err, src, ir.Print(trans))
	}
	if len(r1.Returned) != len(r2.Returned) {
		return fmt.Errorf("seed %d: return arity differs", seed)
	}
	for i := range r1.Returned {
		if !interp.Equal(r1.Returned[i], r2.Returned[i]) {
			return fmt.Errorf("seed %d: return %d: %v vs %v\noriginal:\n%s\ntransformed:\n%s",
				seed, i, r1.Returned[i], r2.Returned[i], src, ir.Print(trans))
		}
	}
	if r1.Output != r2.Output {
		return fmt.Errorf("seed %d: output differs\noriginal:\n%s\ntransformed:\n%s\nout1:\n%s\nout2:\n%s",
			seed, src, ir.Print(trans), r1.Output, r2.Output)
	}
	return nil
}

// TestPropertyEquivalence drives checkEquivalence through testing/quick.
// In -short mode the sample shrinks so the suite finishes in seconds; the
// full run keeps the original coverage.
func TestPropertyEquivalence(t *testing.T) {
	count := 0
	prop := func(seed int64) bool {
		count++
		if err := checkEquivalence(seed); err != nil {
			t.Error(err)
			return false
		}
		return true
	}
	maxCount := 300
	if testing.Short() {
		maxCount = 40
	}
	cfg := &quick.Config{
		MaxCount: maxCount,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(int64(r.Intn(1_000_000)))
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("property never executed")
	}
}

// TestPropertyEquivalenceFixedSeeds pins a deterministic regression corpus
// (reduced in -short mode).
func TestPropertyEquivalenceFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 25
	}
	for seed := int64(0); seed < n; seed++ {
		if err := checkEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPropertyConservative: programs where every query is on a
// true-dependence cycle must come back untransformed and still correct.
func TestPropertyConservative(t *testing.T) {
	src := `
proc chain(n) {
  query q0 = "select v from t where k = ?";
  v = 1;
  i = 0;
  while (i < n) {
    v = execQuery(q0, v);
    i = i + 1;
  }
  return v;
}`
	orig := minilang.MustParse(src)
	trans, rep, err := Transform(orig, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 0 {
		t.Fatalf("cyclic query must not transform:\n%s", ir.Print(trans))
	}
	// And the clone must still behave identically.
	reg := ir.NewRegistry()
	r1, err := interp.New(reg, testsvc.NewSync()).Run(orig, []interp.Value{int64(6)})
	if err != nil {
		t.Fatal(err)
	}
	svc := exec.NewService(2, testsvc.Runner())
	defer svc.Close()
	r2, err := interp.New(reg, svc).Run(trans, []interp.Value{int64(6)})
	if err != nil {
		t.Fatal(err)
	}
	if !interp.Equal(r1.Returned[0], r2.Returned[0]) {
		t.Fatal("untransformed clone diverged")
	}
}
