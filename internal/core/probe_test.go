package core

import "testing"

// TestPropertyScanWide sweeps a contiguous band of generator seeds beyond
// the quick.Check sample, as a regression corpus for the dependence shapes
// that historically broke the transformation (stale conditional captures,
// output-dependence split variables, live-in snapshots, stub cascades).
func TestPropertyScanWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide scan skipped in -short mode")
	}
	for seed := int64(0); seed < 1500; seed++ {
		if err := checkEquivalence(seed); err != nil {
			t.Fatal(err)
		}
	}
}
