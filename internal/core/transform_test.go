package core

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/testsvc"
)

// runBoth transforms src, runs the original against a blocking service and
// the transformed version against an async pool, and requires identical
// returns and output. It returns the transformed proc and report.
func runBoth(t *testing.T, src string, args ...interp.Value) (*ir.Proc, *Report) {
	t.Helper()
	orig := minilang.MustParse(src)
	tp, rep, err := Transform(orig, Options{SplitNested: true})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}

	reg := ir.NewRegistry()
	syncSvc := testsvc.NewSync()
	in1 := interp.New(reg, syncSvc)
	r1, err := in1.Run(orig, args)
	if err != nil {
		t.Fatalf("run original: %v\n%s", err, ir.Print(orig))
	}

	asyncSvc := testsvc.NewAsync(4)
	defer asyncSvc.Close()
	in2 := interp.New(reg, asyncSvc)
	r2, err := in2.Run(tp, args)
	if err != nil {
		t.Fatalf("run transformed: %v\n%s", err, ir.Print(tp))
	}

	if len(r1.Returned) != len(r2.Returned) {
		t.Fatalf("return arity differs: %v vs %v", r1.Returned, r2.Returned)
	}
	for i := range r1.Returned {
		if !interp.Equal(r1.Returned[i], r2.Returned[i]) {
			t.Fatalf("return %d differs: %v vs %v\ntransformed:\n%s",
				i, r1.Returned[i], r2.Returned[i], ir.Print(tp))
		}
	}
	if r1.Output != r2.Output {
		t.Fatalf("output differs:\n--- original ---\n%s--- transformed ---\n%s\ncode:\n%s",
			r1.Output, r2.Output, ir.Print(tp))
	}
	return tp, rep
}

// countAsync counts submit statements anywhere in the proc.
func countAsync(p *ir.Proc) (submits, fetches, execs int) {
	ir.WalkStmts(p.Body, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.Submit:
			submits++
		case *ir.Fetch:
			fetches++
		case *ir.ExecQuery:
			execs++
		}
	})
	return
}

const example2 = `
proc example2(categoryList) {
  query q0 = "select count(partkey) from part where p_category = ?";
  sum = 0;
  while (!empty(categoryList)) {
    category = removeFirst(categoryList);
    partCount = execQuery(q0, category);
    sum = sum + partCount;
  }
  return sum;
}`

func TestExample2BasicFission(t *testing.T) {
	args := interp.NewList(int64(3), int64(9), int64(12), int64(40))
	tp, rep := runBoth(t, example2, args)

	if rep.Opportunities() != 1 || rep.TransformedCount() != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Sites[0].UsedReorder {
		t.Errorf("Example 2 should not need reordering")
	}
	sub, fet, ex := countAsync(tp)
	if sub != 1 || fet != 1 || ex != 0 {
		t.Errorf("got %d submits, %d fetches, %d blocking execs; want 1,1,0\n%s",
			sub, fet, ex, ir.Print(tp))
	}
	// Shape: the loop is replaced by table decl + submit loop + scan loop.
	kinds := topLevelKinds(tp)
	want := []string{"*ir.Assign", "*ir.DeclTable", "*ir.While", "*ir.Scan", "*ir.Return"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("top-level shape = %v, want %v\n%s", kinds, want, ir.Print(tp))
	}
}

func topLevelKinds(p *ir.Proc) []string {
	var out []string
	for _, s := range p.Body.Stmts {
		out = append(out, typeName(s))
	}
	return out
}

func typeName(s ir.Stmt) string {
	switch s.(type) {
	case *ir.Assign:
		return "*ir.Assign"
	case *ir.DeclTable:
		return "*ir.DeclTable"
	case *ir.While:
		return "*ir.While"
	case *ir.Scan:
		return "*ir.Scan"
	case *ir.Return:
		return "*ir.Return"
	case *ir.ForEach:
		return "*ir.ForEach"
	case *ir.If:
		return "*ir.If"
	}
	return "other"
}

// Example 4: query under a conditional; Rule B then Rule A.
const example4 = `
proc example4(n) {
  query q0 = "select v from t where k = 0";
  i = 0;
  while (i < n) {
    v = foo(i);
    if (v % 3 == 0) {
      v = execQuery(q0, i);
      log(v);
    }
    print(v);
    i = i + 1;
  }
  return i;
}`

func TestExample4ControlDeps(t *testing.T) {
	tp, rep := runBoth(t, example4, int64(12))
	if rep.TransformedCount() != 1 {
		t.Fatalf("not transformed: %+v", rep)
	}
	if !rep.Sites[0].UsedFlatten {
		t.Errorf("expected Rule B to be used")
	}
	sub, fet, ex := countAsync(tp)
	if sub != 1 || fet != 1 || ex != 0 {
		t.Errorf("got %d submits, %d fetches, %d execs\n%s", sub, fet, ex, ir.Print(tp))
	}
}

// Example 6/7/8: loop-carried flow dependence requires reordering.
const example6 = `
proc example6(start) {
  query q0 = "select count(partkey) from part where p_category = ?";
  sum = 0;
  category = start;
  while (category != null) {
    partCount = execQuery(q0, category);
    sum = sum + partCount;
    category = getParentCategory(category);
  }
  return sum;
}`

func TestExample6Reordering(t *testing.T) {
	tp, rep := runBoth(t, example6, int64(100))
	if rep.TransformedCount() != 1 {
		t.Fatalf("not transformed: %+v", rep)
	}
	if !rep.Sites[0].UsedReorder {
		t.Errorf("expected statement reordering to be used")
	}
	sub, _, ex := countAsync(tp)
	if sub != 1 || ex != 0 {
		t.Errorf("query not made asynchronous:\n%s", ir.Print(tp))
	}
}

// Example 9: stack-driven traversal with an in-place mutating block call.
const example9 = `
proc example9(stack) {
  query q0 = "select count(*) from items where cat = ?";
  totalcount = 0;
  while (!empty(stack)) {
    curcat = pop(stack);
    catitems = execQuery(q0, curcat);
    totalcount = totalcount + catitems;
    push(stack, curcat / 2);
    c = peek(stack);
    c2 = c <= 1;
    c2 ? x = pop(stack);
  }
  return totalcount;
}`

func TestExample9StackTraversal(t *testing.T) {
	tp, rep := runBoth(t, example9, interp.NewList(int64(40), int64(9)))
	if rep.TransformedCount() != 1 {
		t.Fatalf("not transformed: %+v (reasons: %v)", rep, rep.Sites)
	}
	sub, _, ex := countAsync(tp)
	if sub != 1 || ex != 0 {
		t.Errorf("query not made asynchronous:\n%s", ir.Print(tp))
	}
}

// Example 10: guarded statements and multi-assignment.
const example10 = `
proc example10(n, x) {
  query q0 = "select v from t where b = ?";
  a = 0;
  b = 1;
  c = 2;
  d = 0;
  total = 0;
  i = 0;
  while (i < n) {
    cv1 = i % 2 == 0;
    cv2 = i % 3 == 0;
    cv3 = i % 5 != 0;
    cv1 ? a = execQuery(q0, b);
    cv2 ? a, c = divmod(x + i, 3);
    d = a * 10 + b;
    cv3 ? a, b = divmod(c * 3 + 1, 13);
    total = total + d;
    i = i + 1;
  }
  return total, a, b, c, d;
}`

func TestExample10GuardedReorder(t *testing.T) {
	tp, rep := runBoth(t, example10, int64(30), int64(11))
	if rep.TransformedCount() != 1 {
		t.Fatalf("not transformed: %+v", rep)
	}
	sub, _, ex := countAsync(tp)
	if sub != 1 || ex != 0 {
		t.Errorf("query not made asynchronous:\n%s", ir.Print(tp))
	}
}

// Example 11: the first query is on a true-dependence cycle (its argument
// comes from its own previous result); the second is transformable.
const example11 = `
proc example11(eid0) {
  query q1 = "select manager from emp where empid = ?";
  query q2 = "select perfindex from rating where reviewer = ? and reviewed = ?";
  sumidx = 0;
  eid = eid0;
  i = 0;
  while (eid != null && i < 8) {
    mgr = execQuery(q1, eid);
    idx = execQuery(q2, mgr, eid);
    sumidx = sumidx + idx;
    eid = getParentCategory(mgr);
    i = i + 1;
  }
  return sumidx;
}`

func TestExample11CyclicDependence(t *testing.T) {
	tp, rep := runBoth(t, example11, int64(64))
	if rep.Opportunities() != 1 {
		t.Fatalf("want 1 site, got %+v", rep)
	}
	site := rep.Sites[0]
	if site.Converted != 1 {
		t.Fatalf("want exactly 1 of 2 queries converted, got %d (%v)\n%s",
			site.Converted, site.Reasons, ir.Print(tp))
	}
	foundCycleReason := false
	for _, r := range site.Reasons {
		if strings.Contains(r, "true-dependence cycle") {
			foundCycleReason = true
		}
	}
	if !foundCycleReason {
		t.Errorf("expected a true-dependence-cycle reason, got %v", site.Reasons)
	}
	sub, _, ex := countAsync(tp)
	if sub != 1 || ex != 1 {
		t.Errorf("want 1 async + 1 blocking query, got %d/%d\n%s", sub, ex, ir.Print(tp))
	}
}

// Example 5: nested loops; both levels are split and the inner table nests
// in the outer record.
const example5 = `
proc example5(outer) {
  query q0 = "select x from items where a = ? and b = ?";
  total = 0;
  i = 0;
  while (i < outer) {
    j = 0;
    while (j < 3) {
      x = execQuery(q0, i, j);
      total = total + x;
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}`

func TestExample5NestedLoops(t *testing.T) {
	tp, rep := runBoth(t, example5, int64(5))
	if rep.TransformedCount() != 1 {
		t.Fatalf("not transformed: %+v", rep)
	}
	sub, _, ex := countAsync(tp)
	if sub != 1 || ex != 0 {
		t.Errorf("query not made asynchronous:\n%s", ir.Print(tp))
	}
	// The outer loop must also have been split: the top level should contain
	// two loops for the outer level (submit phase and scan phase).
	var scans int
	for _, s := range tp.Body.Stmts {
		if _, ok := s.(*ir.Scan); ok {
			scans++
		}
	}
	if scans == 0 {
		t.Errorf("outer loop not split:\n%s", ir.Print(tp))
	}
}

// Multiple independent queries in one loop: both become asynchronous via
// repeated application of Rule A.
const twoQueries = `
proc twoQueries(items) {
  query qa = "select x from a where k = ?";
  query qb = "select y from b where k = ?";
  total = 0;
  foreach it in items {
    x = execQuery(qa, it);
    y = execQuery(qb, it);
    total = total + x + y;
  }
  return total;
}`

func TestTwoQueriesBothAsync(t *testing.T) {
	tp, rep := runBoth(t, twoQueries, interp.NewList(int64(1), int64(2), int64(3)))
	if rep.TransformedCount() != 1 {
		t.Fatalf("not transformed: %+v", rep)
	}
	sub, fet, ex := countAsync(tp)
	if sub != 2 || fet != 2 || ex != 0 {
		t.Errorf("want both queries async, got %d submits %d fetches %d execs\n%s",
			sub, fet, ex, ir.Print(tp))
	}
}

// An update-only loop (paper Experiment 4): self output dependence on the
// database does not block fission.
const insertLoop = `
proc insertLoop(n) {
  query ins = "insert into forms values (?, ?)";
  i = 0;
  while (i < n) {
    execUpdate(ins, i, i * 2);
    i = i + 1;
  }
  return i;
}`

func TestInsertLoopAsync(t *testing.T) {
	tp, rep := runBoth(t, insertLoop, int64(10))
	if rep.TransformedCount() != 1 {
		t.Fatalf("insert loop not transformed: %+v", rep.Sites)
	}
	sub, fet, ex := countAsync(tp)
	if sub != 1 || fet != 1 || ex != 0 {
		t.Errorf("want async insert, got %d/%d/%d\n%s", sub, fet, ex, ir.Print(tp))
	}
}

// A read query followed by an update to the database in the same loop: the
// external flow dependence (update writes $db, query reads it next
// iteration) must block the transformation of the read.
const readWriteLoop = `
proc readWriteLoop(n) {
  query sel = "select v from t where k = ?";
  query ins = "insert into t values (?)";
  total = 0;
  i = 0;
  while (i < n) {
    v = execQuery(sel, i);
    total = total + v;
    execUpdate(ins, v);
    i = i + 1;
  }
  return total;
}`

func TestReadAfterWriteBlocks(t *testing.T) {
	orig := minilang.MustParse(readWriteLoop)
	tp, rep, err := Transform(orig, DefaultOptions())
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if rep.TransformedCount() != 0 {
		t.Fatalf("read-write loop must not be transformed:\n%s", ir.Print(tp))
	}
}

// Barrier (recursive) invocation: counted as an opportunity, never
// transformed — the bulletin-board cases of Table I.
const recursiveLoop = `
proc recursiveLoop(items) {
  total = 0;
  foreach it in items {
    x = recurse(it);
    total = total + x;
  }
  return total;
}`

func TestBarrierLoopNotTransformed(t *testing.T) {
	orig := minilang.MustParse(recursiveLoop)
	_, rep, err := Transform(orig, DefaultOptions())
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if rep.Opportunities() != 1 || rep.TransformedCount() != 0 {
		t.Fatalf("want 1 untransformed opportunity, got %+v", rep)
	}
	if !strings.Contains(strings.Join(rep.Sites[0].Reasons, " "), "barrier") {
		t.Errorf("want barrier reason, got %v", rep.Sites[0].Reasons)
	}
}

// The readable output mode regroups guards into ifs and still runs
// correctly.
func TestReadableOutputEquivalent(t *testing.T) {
	orig := minilang.MustParse(example4)
	tp, _, err := Transform(orig, Options{Readable: true, SplitNested: true})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	hasIf := false
	ir.WalkStmts(tp.Body, func(s ir.Stmt) {
		if _, ok := s.(*ir.If); ok {
			hasIf = true
		}
	})
	if !hasIf {
		t.Errorf("readable mode should regroup guards into ifs:\n%s", ir.Print(tp))
	}

	reg := ir.NewRegistry()
	in1 := interp.New(reg, testsvc.NewSync())
	r1, err := in1.Run(orig, []interp.Value{int64(12)})
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	svc := testsvc.NewAsync(3)
	defer svc.Close()
	in2 := interp.New(reg, svc)
	r2, err := in2.Run(tp, []interp.Value{int64(12)})
	if err != nil {
		t.Fatalf("run readable transformed: %v\n%s", err, ir.Print(tp))
	}
	if r1.Output != r2.Output || !interp.Equal(r1.Returned[0], r2.Returned[0]) {
		t.Errorf("readable output differs")
	}
}

// Transformed print-bearing loops preserve output order even though queries
// complete out of order: verify with a slow, reordering runner.
func TestOutputOrderPreservedUnderConcurrency(t *testing.T) {
	src := `
proc p(n) {
  query q0 = "select v from t where k = ?";
  i = 0;
  while (i < n) {
    v = execQuery(q0, i);
    print(i, v);
    i = i + 1;
  }
  return n;
}`
	orig := minilang.MustParse(src)
	tp, rep, err := Transform(orig, Options{})
	if err != nil || rep.TransformedCount() != 1 {
		t.Fatalf("transform failed: %v %+v", err, rep)
	}
	reg := ir.NewRegistry()
	svc := exec.NewService(8, testsvc.Runner())
	defer svc.Close()
	in := interp.New(reg, svc)
	r, err := in.Run(tp, []interp.Value{int64(50)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	in2 := interp.New(reg, testsvc.NewSync())
	r2, err := in2.Run(orig, []interp.Value{int64(50)})
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	if r.Output != r2.Output {
		t.Errorf("output order not preserved under concurrency")
	}
}
