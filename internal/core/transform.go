// Package core drives the paper's transformation pipeline end to end
// (Figure 7): build dependence information, apply Rule B where the query sits
// under control flow, run the statement reordering algorithm when
// loop-carried flow dependences cross the split, apply Rule A loop fission,
// handle nested loops inner-first, and finally regroup guarded statements for
// readability. It also produces the applicability report behind the paper's
// Table I.
package core

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/rules"
)

// Options configures Transform.
type Options struct {
	// Registry supplies function signatures; nil uses ir.NewRegistry().
	Registry *ir.Registry
	// Readable applies the §V regrouping pass to the transformed program.
	Readable bool
	// SplitNested enables the nested-loop fission of §III-D: outer loops are
	// split at the boundary left by a transformed inner loop.
	SplitNested bool
	// OnlyQueries restricts transformation to the named prepared queries
	// (the paper's "user can specify which query submission statements to be
	// transformed", §VII). Empty means all.
	OnlyQueries []string
}

// DefaultOptions mirror the tool's defaults: readable output, nested
// splitting on.
func DefaultOptions() Options {
	return Options{Readable: true, SplitNested: true}
}

// Site records the outcome for one loop that contains query executions — one
// row of the applicability analysis.
type Site struct {
	Loop        string // one-line rendering of the loop header
	Queries     int    // blocking query statements directly in the loop
	Converted   int    // how many became submit/fetch pairs
	UsedReorder bool   // statement reordering was required
	UsedFlatten bool   // Rule B was required
	Reasons     []string
}

// Transformed reports whether the site was exploited (at least one query
// became asynchronous).
func (s *Site) Transformed() bool { return s.Converted > 0 }

// Report aggregates sites for a procedure; it feeds Table I.
type Report struct {
	Proc  string
	Sites []Site
}

// Opportunities counts loops containing query executions.
func (r *Report) Opportunities() int { return len(r.Sites) }

// TransformedCount counts exploited sites.
func (r *Report) TransformedCount() int {
	n := 0
	for i := range r.Sites {
		if r.Sites[i].Transformed() {
			n++
		}
	}
	return n
}

// Transform rewrites a clone of p for asynchronous query submission and
// reports per-site applicability. The input procedure is never modified.
func Transform(p *ir.Proc, opts Options) (*ir.Proc, *Report, error) {
	reg := opts.Registry
	if reg == nil {
		reg = ir.NewRegistry()
	}
	out := ir.CloneProc(p)
	c := &tctx{
		reg:    reg,
		gen:    ir.NewNameGen(out),
		opts:   opts,
		report: &Report{Proc: p.Name},
	}
	c.transformBlock(out.Body)
	if opts.Readable {
		rules.Regroup(out.Body)
	}
	return out, c.report, nil
}

// Analyze runs the applicability analysis without rewriting: it transforms a
// throwaway clone and returns the report.
func Analyze(p *ir.Proc, opts Options) *Report {
	opts.Readable = false
	_, rep, _ := Transform(p, opts)
	return rep
}

type tctx struct {
	reg    *ir.Registry
	gen    *ir.NameGen
	opts   Options
	report *Report
}

func (c *tctx) transformBlock(b *ir.Block) {
	for i := 0; i < len(b.Stmts); i++ {
		switch s := b.Stmts[i].(type) {
		case *ir.While, *ir.ForEach, *ir.Scan:
			i += c.transformLoop(b, i) - 1
		case *ir.If:
			c.transformBlock(s.Then)
			if s.Else != nil {
				c.transformBlock(s.Else)
			}
		}
	}
}

// transformLoop transforms the loop at parent.Stmts[idx] and returns the
// number of statements now occupying its place.
func (c *tctx) transformLoop(parent *ir.Block, idx int) int {
	loop := parent.Stmts[idx]
	body := loopBodyOf(loop)

	// Inner loops first (§III-D). Remember the boundary the first fissioned
	// inner loop leaves behind (the index of its scan loop) so the outer
	// loop can be split there.
	boundary := -1
	for j := 0; j < len(body.Stmts); j++ {
		if isLoop(body.Stmts[j]) {
			span := c.transformLoop(body, j)
			if span > 1 && boundary < 0 {
				if k := firstScan(body, j, j+span); k >= 0 {
					boundary = k
				}
			}
			j += span - 1
		}
	}

	queries := directQueries(body, c.reg)
	barrier := hasBarrierCall(body, c.reg)
	if len(queries) == 0 && !barrier {
		if boundary >= 0 && c.opts.SplitNested {
			// Reorder relative to the inner scan loop first (e.g. to move a
			// trailing counter update into the submit side), then split the
			// outer loop at the scan.
			pivot := body.Stmts[boundary]
			if err := rules.ReorderBoundary(parent.Stmts[idx], pivot, c.reg, c.gen); err == nil {
				boundary = stmtIndex(body, pivot)
				if boundary > 0 {
					if span, _, err := rules.FissionAt(parent, idx, boundary, c.reg, c.gen); err == nil {
						return span
					}
				}
			}
		}
		return 1
	}

	site := Site{Loop: loopHeaderString(loop), Queries: len(queries)}
	defer func() { c.report.Sites = append(c.report.Sites, site) }()

	if barrier {
		site.Reasons = append(site.Reasons, string(rules.ReasonBarrier))
		if site.Queries == 0 {
			site.Queries = 1 // the query hidden inside the recursive callee
		}
		return 1
	}

	// Rule B when queries sit under conditionals.
	if queryInsideIf(body) {
		if err := rules.Flatten(body, c.gen); err != nil {
			site.Reasons = append(site.Reasons, errReason(err))
			return 1
		}
		site.UsedFlatten = true
	}

	span := c.fissionChain(parent, idx, &site)
	return span
}

// fissionChain converts the blocking queries of the loop at parent.Stmts[idx]
// one by one: the first convertible query is split off with (reorder +)
// Rule A, and the remaining queries — now living in the generated scan loop —
// are handled recursively, exactly as the paper applies the rules repeatedly
// until every chosen query is non-blocking.
func (c *tctx) fissionChain(parent *ir.Block, idx int, site *Site) int {
	loop := parent.Stmts[idx]
	body := loopBodyOf(loop)

	// A failed reorder may have moved the query statement to a later
	// position (rule applications are semantics-preserving, so the partial
	// reordering is kept); track attempts by identity so each query is
	// tried at most once per loop.
	attempted := map[ir.Stmt]bool{}
	for qi := 0; qi < len(body.Stmts); qi++ {
		sq, ok := body.Stmts[qi].(*ir.ExecQuery)
		if !ok || !c.wantQuery(sq) || attempted[sq] {
			continue
		}
		attempted[sq] = true
		g := dataflow.BuildLoop(loop, c.reg)
		if g.OnTrueDepCycle(qi) {
			site.Reasons = append(site.Reasons, string(rules.ReasonTrueDepCycle))
			continue
		}
		if len(g.CrossingLCFD(qi)) > 0 {
			if err := rules.Reorder(loop, sq, c.reg, c.gen); err != nil {
				site.Reasons = append(site.Reasons, errReason(err))
				continue
			}
			site.UsedReorder = true
		}
		span, scanIdx, err := rules.FissionQuery(parent, idx, sq, c.reg, c.gen)
		if err != nil {
			site.Reasons = append(site.Reasons, errReason(err))
			continue
		}
		site.Converted++
		// The loop's slot now holds [table, snapshots..., loop1,
		// restores..., scan]; remaining queries sit inside the scan loop
		// (and untransformable ones may remain in loop1, where they stay
		// blocking).
		return span - 1 + c.fissionChain(parent, scanIdx, site)
	}
	return 1
}

func (c *tctx) wantQuery(sq *ir.ExecQuery) bool {
	if len(c.opts.OnlyQueries) == 0 {
		return true
	}
	for _, q := range c.opts.OnlyQueries {
		if q == sq.Query {
			return true
		}
	}
	return false
}

func errReason(err error) string {
	var na *rules.NotApplicableError
	if ok := asNotApplicable(err, &na); ok {
		return string(na.Reason)
	}
	return err.Error()
}

func asNotApplicable(err error, out **rules.NotApplicableError) bool {
	na, ok := err.(*rules.NotApplicableError)
	if ok {
		*out = na
	}
	return ok
}

func stmtIndex(b *ir.Block, s ir.Stmt) int {
	for i, x := range b.Stmts {
		if x == s {
			return i
		}
	}
	return -1
}

func loopBodyOf(loop ir.Stmt) *ir.Block {
	switch l := loop.(type) {
	case *ir.While:
		return l.Body
	case *ir.ForEach:
		return l.Body
	case *ir.Scan:
		return l.Body
	}
	return nil
}

func isLoop(s ir.Stmt) bool {
	switch s.(type) {
	case *ir.While, *ir.ForEach, *ir.Scan:
		return true
	}
	return false
}

// firstScan finds the first scan statement in parent.Stmts[from:to).
func firstScan(parent *ir.Block, from, to int) int {
	for k := from; k < to && k < len(parent.Stmts); k++ {
		if _, ok := parent.Stmts[k].(*ir.Scan); ok {
			return k
		}
	}
	return -1
}

// directQueries lists the blocking query statements directly in the body,
// including those inside (possibly nested) conditionals, but not those in
// nested loops.
func directQueries(body *ir.Block, reg *ir.Registry) []*ir.ExecQuery {
	var out []*ir.ExecQuery
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		for _, s := range b.Stmts {
			switch x := s.(type) {
			case *ir.ExecQuery:
				out = append(out, x)
			case *ir.If:
				walk(x.Then)
				if x.Else != nil {
					walk(x.Else)
				}
			}
		}
	}
	walk(body)
	return out
}

// queryInsideIf reports whether any blocking query sits under a conditional.
func queryInsideIf(body *ir.Block) bool {
	for _, s := range body.Stmts {
		if x, ok := s.(*ir.If); ok {
			if len(directQueries(&ir.Block{Stmts: []ir.Stmt{x}}, nil)) > 0 {
				return true
			}
		}
	}
	return false
}

// hasBarrierCall reports whether the body (at any depth) calls a barrier
// function.
func hasBarrierCall(body *ir.Block, reg *ir.Registry) bool {
	found := false
	ir.WalkStmts(body, func(s ir.Stmt) {
		ir.WalkExprs(s, func(e ir.Expr) {
			if c, ok := e.(*ir.Call); ok {
				if sig := reg.Lookup(c.Fn); sig != nil && sig.Barrier {
					found = true
				}
			}
		})
	})
	return found
}

func loopHeaderString(loop ir.Stmt) string {
	s := ir.PrintStmt(loop)
	if i := strings.Index(s, "{"); i > 0 {
		s = strings.TrimSpace(s[:i])
	}
	return s
}

var _ = fmt.Sprintf
