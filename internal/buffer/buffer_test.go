package buffer

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/simclock"
)

func newPool(capacity int) (*Pool, *disk.Disk) {
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	p := NewPool(capacity, d)
	p.MapExtent(0, 0)
	p.MapExtent(1, 2048)
	return p, d
}

// newPool1 builds a single-stripe pool, for tests that pin whole-pool
// eviction order.
func newPool1(capacity int) (*Pool, *disk.Disk) {
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	p := NewPoolStripes(capacity, 1, d)
	p.MapExtent(0, 0)
	p.MapExtent(1, 2048)
	return p, d
}

func TestHitMiss(t *testing.T) {
	p, d := newPool(16)
	defer d.Close()
	id := PageID{Extent: 0, Page: 3}
	p.Get(id)
	p.Get(id)
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !p.Resident(id) {
		t.Fatal("page not resident after get")
	}
}

// TestClockEviction: with every reference bit cleared by the sweep, CLOCK
// degenerates to FIFO — the oldest untouched page goes first — and the pool
// never exceeds capacity.
func TestClockEviction(t *testing.T) {
	p, d := newPool1(3)
	defer d.Close()
	for i := 0; i < 3; i++ {
		p.Get(PageID{Extent: 0, Page: i})
	}
	p.Get(PageID{Extent: 0, Page: 9}) // sweep clears all refs, evicts page 0
	if p.Resident(PageID{Extent: 0, Page: 0}) {
		t.Fatal("oldest page not evicted")
	}
	if !p.Resident(PageID{Extent: 0, Page: 9}) {
		t.Fatal("faulted page not resident")
	}
	if p.Len() != 3 {
		t.Fatalf("capacity exceeded: %d", p.Len())
	}
}

// TestClockSecondChance: a page touched since the last sweep keeps its
// reference bit and survives the next eviction; the untouched page goes.
func TestClockSecondChance(t *testing.T) {
	p, d := newPool1(3)
	defer d.Close()
	for _, pg := range []int{0, 1, 2} {
		p.Get(PageID{Extent: 0, Page: pg})
	}
	// Fault 3: the sweep clears refs on 0,1,2 and replaces 0. Hand now at 1.
	p.Get(PageID{Extent: 0, Page: 3})
	// Touch 2: its reference bit is set again.
	p.Get(PageID{Extent: 0, Page: 2})
	// Fault 4: hand finds 1 with ref clear — 2's second chance holds.
	p.Get(PageID{Extent: 0, Page: 4})
	if p.Resident(PageID{Extent: 0, Page: 1}) {
		t.Fatal("unreferenced page survived the sweep")
	}
	for _, pg := range []int{2, 3, 4} {
		if !p.Resident(PageID{Extent: 0, Page: pg}) {
			t.Fatalf("page %d evicted despite reference bit", pg)
		}
	}
}

func TestPreloadWarmsWithoutDisk(t *testing.T) {
	p, d := newPool(64)
	defer d.Close()
	p.Preload(0, 0, 32)
	for i := 0; i < 32; i++ {
		p.Get(PageID{Extent: 0, Page: i})
	}
	hits, misses := p.Stats()
	if misses != 0 || hits != 32 {
		t.Fatalf("preload did not warm: hits=%d misses=%d", hits, misses)
	}
	if st := d.Stats(); st.Requests != 0 {
		t.Fatalf("preload must not touch the disk: %+v", st)
	}
}

func TestReset(t *testing.T) {
	p, d := newPool(8)
	defer d.Close()
	p.Get(PageID{Extent: 0, Page: 1})
	p.Reset()
	if p.Len() != 0 {
		t.Fatal("reset did not empty pool")
	}
	hits, misses := p.Stats()
	if hits != 0 || misses != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestGetBatchSequential(t *testing.T) {
	p, d := newPool(128)
	p.Get(PageID{Extent: 0, Page: 2}) // one page already resident
	before := d.Stats().Requests
	p.GetBatch(0, 0, 10)
	after := d.Stats().Requests
	d.Close()
	if after-before != 1 {
		t.Fatalf("batch read must issue one disk request, got %d", after-before)
	}
	for i := 0; i < 10; i++ {
		if !p.Resident(PageID{Extent: 0, Page: i}) {
			t.Fatalf("page %d not resident after batch", i)
		}
	}
}

func TestPutDirtyNoDisk(t *testing.T) {
	p, d := newPool(8)
	defer d.Close()
	p.Put(PageID{Extent: 1, Page: 5})
	if st := d.Stats(); st.Requests != 0 {
		t.Fatal("Put must not read from disk (write-back model)")
	}
	p.Get(PageID{Extent: 1, Page: 5})
	hits, misses := p.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("dirty page should hit: %d/%d", hits, misses)
	}
}

// TestConcurrentMissCoalescing: two concurrent misses on one page issue a
// single disk read (the shared-read path approximating shared scans).
func TestConcurrentMissCoalescing(t *testing.T) {
	for round := 0; round < 20; round++ {
		p, d := newPool(16)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Get(PageID{Extent: 0, Page: 7})
			}()
		}
		wg.Wait()
		st := d.Stats()
		d.Close()
		if st.Requests > 1 {
			t.Fatalf("round %d: %d disk reads for one page; want coalescing", round, st.Requests)
		}
	}
}

func TestConcurrentGetsRace(t *testing.T) {
	p, d := newPool(32)
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Get(PageID{Extent: g % 2, Page: i % 40})
			}
		}(g)
	}
	wg.Wait()
	hits, misses := p.Stats()
	if hits+misses != 1600 {
		t.Fatalf("lost accesses: %d", hits+misses)
	}
}

// TestConcurrentMixedOpsUnderEviction drives Get, GetBatch, Preload, Put and
// Reset concurrently against a pool small enough that every stripe is
// constantly evicting. It pins the accounting invariant (no lost accesses)
// and, under -race, the stripe locking.
func TestConcurrentMixedOpsUnderEviction(t *testing.T) {
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	defer d.Close()
	p := NewPoolStripes(64, 8, d)
	p.MapExtent(0, 0)
	p.MapExtent(1, 2048)

	const goroutines = 8
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				switch rng.Intn(10) {
				case 0:
					p.Preload(0, rng.Intn(100), 8)
				case 1:
					p.GetBatch(1, rng.Intn(100), 6)
				case 2:
					p.Put(PageID{Extent: 1, Page: rng.Intn(200)})
				default:
					p.Get(PageID{Extent: 0, Page: rng.Intn(200)})
				}
			}
		}(g)
	}
	wg.Wait()
	if n := p.Len(); n > 64 {
		t.Fatalf("pool exceeded capacity under concurrency: %d", n)
	}
	hits, misses := p.Stats()
	if hits+misses == 0 {
		t.Fatal("no accesses recorded")
	}
	// After the dust settles, a touched page must be resident again and
	// count exactly one access.
	p.Reset()
	p.Get(PageID{Extent: 0, Page: 1})
	hits, misses = p.Stats()
	if hits != 0 || misses != 1 || !p.Resident(PageID{Extent: 0, Page: 1}) {
		t.Fatalf("post-reset state wrong: hits=%d misses=%d", hits, misses)
	}
}

// refLRU replicates the pre-CLOCK pool's accounting exactly: a strict-LRU
// resident set with the same hit/miss rules (Preload and Put count nothing,
// GetBatch counts per page).
type refLRU struct {
	capacity int
	order    []PageID // front = most recent
	hits     int64
	misses   int64
}

func (l *refLRU) touch(id PageID, count bool) {
	for i, x := range l.order {
		if x == id {
			copy(l.order[1:i+1], l.order[:i])
			l.order[0] = id
			if count {
				l.hits++
			}
			return
		}
	}
	if count {
		l.misses++
	}
	if l.capacity > 0 && len(l.order) >= l.capacity {
		l.order = l.order[:l.capacity-1]
	}
	l.order = append([]PageID{id}, l.order...)
}

// TestTraceEquivalenceWithLRU replays a recorded mixed trace on a
// single-stripe CLOCK pool and on the reference LRU model. The trace's
// working set fits the capacity, where every sane replacement policy agrees,
// so the hit/miss totals — the accounting contract the experiments' warm/
// cold numbers rest on — must match the old pool exactly. (Under eviction
// pressure CLOCK approximates LRU and may evict differently; that behaviour
// is pinned by the CLOCK tests above, not by equivalence.)
func TestTraceEquivalenceWithLRU(t *testing.T) {
	p, d := newPool1(64)
	defer d.Close()
	ref := &refLRU{capacity: 64}

	rng := rand.New(rand.NewSource(7))
	type op struct{ kind, a, b int }
	var trace []op
	for i := 0; i < 500; i++ {
		trace = append(trace, op{kind: rng.Intn(10), a: rng.Intn(40), b: 1 + rng.Intn(8)})
	}
	for _, o := range trace {
		switch o.kind {
		case 0: // preload a run
			p.Preload(0, o.a, o.b)
			for pg := o.a; pg < o.a+o.b; pg++ {
				ref.touch(PageID{Extent: 0, Page: pg}, false)
			}
		case 1: // dirty put
			p.Put(PageID{Extent: 0, Page: o.a})
			ref.touch(PageID{Extent: 0, Page: o.a}, false)
		case 2, 3: // batched scan
			n := o.b
			if o.a+n > 40 {
				n = 40 - o.a
			}
			p.GetBatch(0, o.a, n)
			for pg := o.a; pg < o.a+n; pg++ {
				ref.touch(PageID{Extent: 0, Page: pg}, true)
			}
		default: // point get
			p.Get(PageID{Extent: 0, Page: o.a})
			ref.touch(PageID{Extent: 0, Page: o.a}, true)
		}
	}
	hits, misses := p.Stats()
	if hits != ref.hits || misses != ref.misses {
		t.Fatalf("trace totals diverged: pool %d/%d, LRU reference %d/%d",
			hits, misses, ref.hits, ref.misses)
	}
	for pg := 0; pg < 40; pg++ {
		id := PageID{Extent: 0, Page: pg}
		want := false
		for _, x := range ref.order {
			if x == id {
				want = true
			}
		}
		if got := p.Resident(id); got != want {
			t.Fatalf("residency diverged on page %d: pool %v, reference %v", pg, got, want)
		}
	}
}

// TestStripedCountersSumAcrossStripes: a multi-stripe pool spreads pages over
// stripes but Stats/Len aggregate the whole pool.
func TestStripedCountersSumAcrossStripes(t *testing.T) {
	p, d := newPool(1 << 12)
	defer d.Close()
	if p.Stripes() < 2 {
		t.Fatalf("expected a striped pool, got %d stripes", p.Stripes())
	}
	for i := 0; i < 100; i++ {
		p.Get(PageID{Extent: 0, Page: i})
	}
	for i := 0; i < 100; i++ {
		p.Get(PageID{Extent: 0, Page: i})
	}
	hits, misses := p.Stats()
	if hits != 100 || misses != 100 {
		t.Fatalf("striped totals: hits=%d misses=%d, want 100/100", hits, misses)
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d, want 100", p.Len())
	}
}

// TestSharedAccessCounters pins the accounting the batched experiment
// asserts on: repeated touches of one page — sequential or concurrent with
// an in-flight read — cost exactly one miss (one disk read); every other
// access counts as a hit. This is the shared page access that makes a
// set-oriented batch cheaper than its per-query equivalent.
func TestSharedAccessCounters(t *testing.T) {
	p, d := newPool(64)
	defer d.Close()
	id := PageID{Extent: 0, Page: 9}
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Get(id)
		}()
	}
	wg.Wait()
	hits, misses := p.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (concurrent reads must coalesce)", misses)
	}
	if hits != readers-1 {
		t.Fatalf("hits = %d, want %d", hits, readers-1)
	}
	if got := d.Stats().Requests; got != 1 {
		t.Fatalf("disk requests = %d, want 1", got)
	}
}
