package buffer

import (
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/simclock"
)

func newPool(capacity int) (*Pool, *disk.Disk) {
	d := disk.New(disk.DefaultParams(), simclock.New(0))
	p := NewPool(capacity, d)
	p.MapExtent(0, 0)
	p.MapExtent(1, 2048)
	return p, d
}

func TestHitMiss(t *testing.T) {
	p, d := newPool(16)
	defer d.Close()
	id := PageID{Extent: 0, Page: 3}
	p.Get(id)
	p.Get(id)
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !p.Resident(id) {
		t.Fatal("page not resident after get")
	}
}

func TestLRUEviction(t *testing.T) {
	p, d := newPool(3)
	defer d.Close()
	for i := 0; i < 3; i++ {
		p.Get(PageID{Extent: 0, Page: i})
	}
	p.Get(PageID{Extent: 0, Page: 0}) // touch 0: now 1 is LRU
	p.Get(PageID{Extent: 0, Page: 9}) // evicts 1
	if p.Resident(PageID{Extent: 0, Page: 1}) {
		t.Fatal("LRU page not evicted")
	}
	if !p.Resident(PageID{Extent: 0, Page: 0}) {
		t.Fatal("recently used page evicted")
	}
	if p.Len() != 3 {
		t.Fatalf("capacity exceeded: %d", p.Len())
	}
}

func TestPreloadWarmsWithoutDisk(t *testing.T) {
	p, d := newPool(64)
	defer d.Close()
	p.Preload(0, 0, 32)
	for i := 0; i < 32; i++ {
		p.Get(PageID{Extent: 0, Page: i})
	}
	hits, misses := p.Stats()
	if misses != 0 || hits != 32 {
		t.Fatalf("preload did not warm: hits=%d misses=%d", hits, misses)
	}
	if st := d.Stats(); st.Requests != 0 {
		t.Fatalf("preload must not touch the disk: %+v", st)
	}
}

func TestReset(t *testing.T) {
	p, d := newPool(8)
	defer d.Close()
	p.Get(PageID{Extent: 0, Page: 1})
	p.Reset()
	if p.Len() != 0 {
		t.Fatal("reset did not empty pool")
	}
	hits, misses := p.Stats()
	if hits != 0 || misses != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestGetBatchSequential(t *testing.T) {
	p, d := newPool(128)
	p.Get(PageID{Extent: 0, Page: 2}) // one page already resident
	before := d.Stats().Requests
	p.GetBatch(0, 0, 10)
	after := d.Stats().Requests
	d.Close()
	if after-before != 1 {
		t.Fatalf("batch read must issue one disk request, got %d", after-before)
	}
	for i := 0; i < 10; i++ {
		if !p.Resident(PageID{Extent: 0, Page: i}) {
			t.Fatalf("page %d not resident after batch", i)
		}
	}
}

func TestPutDirtyNoDisk(t *testing.T) {
	p, d := newPool(8)
	defer d.Close()
	p.Put(PageID{Extent: 1, Page: 5})
	if st := d.Stats(); st.Requests != 0 {
		t.Fatal("Put must not read from disk (write-back model)")
	}
	p.Get(PageID{Extent: 1, Page: 5})
	hits, misses := p.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("dirty page should hit: %d/%d", hits, misses)
	}
}

// TestConcurrentMissCoalescing: two concurrent misses on one page issue a
// single disk read (the shared-read path approximating shared scans).
func TestConcurrentMissCoalescing(t *testing.T) {
	for round := 0; round < 20; round++ {
		p, d := newPool(16)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.Get(PageID{Extent: 0, Page: 7})
			}()
		}
		wg.Wait()
		st := d.Stats()
		d.Close()
		if st.Requests > 1 {
			t.Fatalf("round %d: %d disk reads for one page; want coalescing", round, st.Requests)
		}
	}
}

func TestConcurrentGetsRace(t *testing.T) {
	p, d := newPool(32)
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Get(PageID{Extent: g % 2, Page: i % 40})
			}
		}(g)
	}
	wg.Wait()
	hits, misses := p.Stats()
	if hits+misses != 1600 {
		t.Fatalf("lost accesses: %d", hits+misses)
	}
}

// TestSharedAccessCounters pins the accounting the batched experiment
// asserts on: repeated touches of one page — sequential or concurrent with
// an in-flight read — cost exactly one miss (one disk read); every other
// access counts as a hit. This is the shared page access that makes a
// set-oriented batch cheaper than its per-query equivalent.
func TestSharedAccessCounters(t *testing.T) {
	p, d := newPool(64)
	defer d.Close()
	id := PageID{Extent: 0, Page: 9}
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Get(id)
		}()
	}
	wg.Wait()
	hits, misses := p.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (concurrent reads must coalesce)", misses)
	}
	if hits != readers-1 {
		t.Fatalf("hits = %d, want %d", hits, readers-1)
	}
	if got := d.Stats().Requests; got != 1 {
		t.Fatalf("disk requests = %d, want 1", got)
	}
}
