// Package buffer implements the database server's LRU buffer pool. The
// paper's warm-vs-cold cache dimension falls out of this component: a warm
// run starts with the working set resident (Preload), a cold run starts
// empty and pays disk reads on first touch. Concurrently submitted queries
// that touch overlapping pages also benefit here — the second request finds
// the page already cached — which approximates the "shared scans" effect the
// paper cites (§I).
package buffer

import (
	"container/list"
	"sync"

	"repro/internal/disk"
)

// PageID identifies a page: a storage extent plus a page number within it.
type PageID struct {
	Extent int
	Page   int
}

// Pool is a fixed-capacity LRU page cache backed by a simulated disk.
type Pool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are PageID
	index    map[PageID]*list.Element
	disk     *disk.Disk
	// extentTrack maps an extent to its starting disk track; pages lay out
	// sequentially from there.
	extentTrack map[int]int

	hits    int64
	misses  int64
	pending map[PageID]*sync.WaitGroup // in-flight reads, to dedupe
}

// NewPool creates a pool of the given page capacity over d.
func NewPool(capacity int, d *disk.Disk) *Pool {
	return &Pool{
		capacity:    capacity,
		lru:         list.New(),
		index:       make(map[PageID]*list.Element),
		disk:        d,
		extentTrack: make(map[int]int),
		pending:     make(map[PageID]*sync.WaitGroup),
	}
}

// MapExtent assigns an extent's starting track.
func (p *Pool) MapExtent(extent, startTrack int) {
	p.mu.Lock()
	p.extentTrack[extent] = startTrack
	p.mu.Unlock()
}

// Get faults the page in if needed (paying disk time on miss) and marks it
// most-recently-used. Concurrent misses on the same page coalesce into one
// disk read.
func (p *Pool) Get(id PageID) {
	p.mu.Lock()
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
		p.hits++
		p.mu.Unlock()
		return
	}
	if wg, ok := p.pending[id]; ok {
		// Another request is already reading this page: wait for it. This is
		// the shared-read path.
		p.hits++
		p.mu.Unlock()
		wg.Wait()
		return
	}
	p.misses++
	wg := &sync.WaitGroup{}
	wg.Add(1)
	p.pending[id] = wg
	track := p.extentTrack[id.Extent] + id.Page
	p.mu.Unlock()

	p.disk.Read(track, 1)

	p.mu.Lock()
	delete(p.pending, id)
	p.insertLocked(id)
	p.mu.Unlock()
	wg.Done()
}

// GetBatch faults in a contiguous run of pages of one extent, paying a
// single batched disk request for the missing ones (sequential IO, e.g. a
// table scan).
func (p *Pool) GetBatch(extent, firstPage, n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	missFirst, missLast, missCount := -1, -1, 0
	for i := 0; i < n; i++ {
		id := PageID{Extent: extent, Page: firstPage + i}
		if el, ok := p.index[id]; ok {
			p.lru.MoveToFront(el)
			p.hits++
			continue
		}
		p.misses++
		if missFirst < 0 {
			missFirst = firstPage + i
		}
		missLast = firstPage + i
		missCount++
	}
	track := p.extentTrack[extent] + missFirst
	p.mu.Unlock()

	if missCount == 0 {
		return
	}
	// Sequential IO reads the whole span from the first to the last missing
	// page in one sweep (interior hits transfer for free under the head).
	p.disk.Read(track, missLast-missFirst+1)

	p.mu.Lock()
	for pg := missFirst; pg <= missLast; pg++ {
		p.insertLocked(PageID{Extent: extent, Page: pg})
	}
	p.mu.Unlock()
}

// Put marks a page dirty-resident without disk IO (write-back model for
// inserts; background flushing is not simulated, matching the paper's
// Experiment 4 observation that insert performance is cache-independent).
func (p *Pool) Put(id PageID) {
	p.mu.Lock()
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
	} else {
		p.insertLocked(id)
	}
	p.mu.Unlock()
}

// Preload marks a range of pages resident without disk time (warming the
// cache before a warm-cache experiment).
func (p *Pool) Preload(extent, firstPage, n int) {
	p.mu.Lock()
	for i := 0; i < n; i++ {
		p.insertLocked(PageID{Extent: extent, Page: firstPage + i})
	}
	p.mu.Unlock()
}

// Reset empties the pool (cold start) and clears counters.
func (p *Pool) Reset() {
	p.mu.Lock()
	p.lru.Init()
	p.index = make(map[PageID]*list.Element)
	p.hits, p.misses = 0, 0
	p.mu.Unlock()
}

// Stats returns hit/miss counters.
func (p *Pool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Resident reports whether a page is currently cached (for tests).
func (p *Pool) Resident(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.index[id]
	return ok
}

// Len returns the number of cached pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

func (p *Pool) insertLocked(id PageID) {
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
		return
	}
	for p.lru.Len() >= p.capacity && p.capacity > 0 {
		back := p.lru.Back()
		if back == nil {
			break
		}
		delete(p.index, back.Value.(PageID))
		p.lru.Remove(back)
	}
	p.index[id] = p.lru.PushFront(id)
}
