// Package buffer implements the database server's buffer pool. The paper's
// warm-vs-cold cache dimension falls out of this component: a warm run
// starts with the working set resident (Preload), a cold run starts empty
// and pays disk reads on first touch. Concurrently submitted queries that
// touch overlapping pages also benefit here — the second request finds the
// page already cached — which approximates the "shared scans" effect the
// paper cites (§I).
//
// The pool is N-way striped by PageID hash: each stripe owns a fixed share
// of the capacity behind its own mutex, so concurrent executions on
// different pages never contend on a global lock. Within a stripe, eviction
// is CLOCK (second chance) over a flat frame slice — hits set a reference
// bit instead of relinking a list node, so a warm page touch is a map probe
// plus a bit store, with no allocation and no pointer churn.
package buffer

import (
	"sync"

	"repro/internal/disk"
)

// PageID identifies a page: a storage extent plus a page number within it.
type PageID struct {
	Extent int
	Page   int
}

// frame is one cached page slot: its identity plus the CLOCK reference bit.
type frame struct {
	id  PageID
	ref bool
}

// stripe is one independently locked shard of the pool. The trailing pad
// keeps adjacent stripes off each other's cache lines.
type stripe struct {
	mu       sync.Mutex
	capacity int
	frames   []frame // grows to capacity, then CLOCK recycles in place
	index    map[PageID]int
	hand     int
	hits     int64
	misses   int64
	pending  map[PageID]*sync.WaitGroup // in-flight reads, to dedupe
	_        [48]byte                   // rounds the struct to 128 bytes (two lines)
}

// Pool is a fixed-capacity striped page cache backed by a simulated disk.
type Pool struct {
	stripes []stripe
	mask    uint64 // len(stripes) - 1; stripe count is a power of two
	disk    *disk.Disk

	// extentTrack maps an extent to its starting disk track; pages lay out
	// sequentially from there. Written during load, read on every miss.
	extMu       sync.RWMutex
	extentTrack map[int]int
}

// defaultStripeTarget bounds the stripe count: enough ways that the shard
// benchmarks' worker counts don't convoy, few enough that tiny test pools
// keep whole-pool eviction semantics.
const defaultStripeTarget = 64

// NewPool creates a pool of the given page capacity over d, picking a
// stripe count so each stripe holds at least a few dozen frames (a pool
// smaller than that gets one stripe and behaves like the classic single-lock
// pool).
func NewPool(capacity int, d *disk.Disk) *Pool {
	n := 1
	for n < defaultStripeTarget && n*128 <= capacity {
		n *= 2
	}
	return NewPoolStripes(capacity, n, d)
}

// NewPoolStripes creates a pool with an explicit stripe count (rounded up to
// a power of two; minimum 1; capped at the capacity so every stripe owns at
// least one frame — a zero-capacity stripe would be unbounded). Tests use
// stripes=1 to get deterministic whole-pool eviction.
func NewPoolStripes(capacity, stripes int, d *disk.Disk) *Pool {
	n := 1
	for n < stripes {
		n *= 2
	}
	if capacity > 0 {
		for n > capacity {
			n /= 2
		}
	}
	p := &Pool{
		stripes:     make([]stripe, n),
		mask:        uint64(n - 1),
		disk:        d,
		extentTrack: make(map[int]int),
	}
	base, rem := capacity/n, capacity%n
	for i := range p.stripes {
		s := &p.stripes[i]
		s.capacity = base
		if i < rem {
			s.capacity++
		}
		s.index = make(map[PageID]int)
		s.pending = make(map[PageID]*sync.WaitGroup)
	}
	return p
}

// stripeOf hashes a page to its stripe (FNV-1a over the two coordinates).
func (p *Pool) stripeOf(id PageID) *stripe {
	h := uint64(14695981039346656037)
	const prime = 1099511628211
	u := uint64(id.Extent)<<32 ^ uint64(uint32(id.Page))
	for b := 0; b < 8; b++ {
		h ^= u & 0xff
		h *= prime
		u >>= 8
	}
	return &p.stripes[h&p.mask]
}

// MapExtent assigns an extent's starting track.
func (p *Pool) MapExtent(extent, startTrack int) {
	p.extMu.Lock()
	p.extentTrack[extent] = startTrack
	p.extMu.Unlock()
}

func (p *Pool) track(id PageID) int {
	p.extMu.RLock()
	t := p.extentTrack[id.Extent] + id.Page
	p.extMu.RUnlock()
	return t
}

// Get faults the page in if needed (paying disk time on miss) and gives it a
// CLOCK second chance. Concurrent misses on the same page coalesce into one
// disk read.
func (p *Pool) Get(id PageID) {
	s := p.stripeOf(id)
	s.mu.Lock()
	if fi, ok := s.index[id]; ok {
		s.frames[fi].ref = true
		s.hits++
		s.mu.Unlock()
		return
	}
	if wg, ok := s.pending[id]; ok {
		// Another request is already reading this page: wait for it. This is
		// the shared-read path.
		s.hits++
		s.mu.Unlock()
		wg.Wait()
		return
	}
	s.misses++
	wg := &sync.WaitGroup{}
	wg.Add(1)
	s.pending[id] = wg
	s.mu.Unlock()

	p.disk.Read(p.track(id), 1)

	s.mu.Lock()
	delete(s.pending, id)
	s.insertLocked(id)
	s.mu.Unlock()
	wg.Done()
}

// GetBatch faults in a contiguous run of pages of one extent, paying a
// single batched disk request for the missing ones (sequential IO, e.g. a
// table scan).
func (p *Pool) GetBatch(extent, firstPage, n int) {
	if n <= 0 {
		return
	}
	missFirst, missLast := -1, -1
	for i := 0; i < n; i++ {
		id := PageID{Extent: extent, Page: firstPage + i}
		s := p.stripeOf(id)
		s.mu.Lock()
		if fi, ok := s.index[id]; ok {
			s.frames[fi].ref = true
			s.hits++
			s.mu.Unlock()
			continue
		}
		s.misses++
		s.mu.Unlock()
		if missFirst < 0 {
			missFirst = firstPage + i
		}
		missLast = firstPage + i
	}
	if missFirst < 0 {
		return
	}
	// Sequential IO reads the whole span from the first to the last missing
	// page in one sweep (interior hits transfer for free under the head).
	p.disk.Read(p.track(PageID{Extent: extent, Page: missFirst}), missLast-missFirst+1)

	for pg := missFirst; pg <= missLast; pg++ {
		id := PageID{Extent: extent, Page: pg}
		s := p.stripeOf(id)
		s.mu.Lock()
		s.insertLocked(id)
		s.mu.Unlock()
	}
}

// Put marks a page dirty-resident without disk IO (write-back model for
// inserts; background flushing is not simulated, matching the paper's
// Experiment 4 observation that insert performance is cache-independent).
func (p *Pool) Put(id PageID) {
	s := p.stripeOf(id)
	s.mu.Lock()
	if fi, ok := s.index[id]; ok {
		s.frames[fi].ref = true
	} else {
		s.insertLocked(id)
	}
	s.mu.Unlock()
}

// Preload marks a range of pages resident without disk time (warming the
// cache before a warm-cache experiment).
func (p *Pool) Preload(extent, firstPage, n int) {
	for i := 0; i < n; i++ {
		id := PageID{Extent: extent, Page: firstPage + i}
		s := p.stripeOf(id)
		s.mu.Lock()
		s.insertLocked(id)
		s.mu.Unlock()
	}
}

// Reset empties the pool (cold start) and clears counters.
func (p *Pool) Reset() {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		s.frames = s.frames[:0]
		s.index = make(map[PageID]int)
		s.hand = 0
		s.hits, s.misses = 0, 0
		s.mu.Unlock()
	}
}

// Stats returns hit/miss counters summed over the stripes.
func (p *Pool) Stats() (hits, misses int64) {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Resident reports whether a page is currently cached (for tests).
func (p *Pool) Resident(id PageID) bool {
	s := p.stripeOf(id)
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	return ok
}

// Len returns the number of cached pages.
func (p *Pool) Len() int {
	n := 0
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}

// Stripes returns the stripe count (tests).
func (p *Pool) Stripes() int { return len(p.stripes) }

// insertLocked makes id resident in the stripe, evicting with CLOCK when the
// stripe is at capacity. New pages enter with their reference bit set (one
// second chance), matching the most-recently-used position a fresh LRU
// insert would get. A non-positive capacity means unbounded, as before.
func (s *stripe) insertLocked(id PageID) {
	if fi, ok := s.index[id]; ok {
		// Already resident: refresh the reference bit, matching the MRU
		// promotion the old LRU gave resident pages on Preload/Put.
		s.frames[fi].ref = true
		return
	}
	if s.capacity <= 0 || len(s.frames) < s.capacity {
		s.index[id] = len(s.frames)
		s.frames = append(s.frames, frame{id: id, ref: true})
		return
	}
	for {
		f := &s.frames[s.hand]
		if f.ref {
			f.ref = false
			s.hand++
			if s.hand == len(s.frames) {
				s.hand = 0
			}
			continue
		}
		delete(s.index, f.id)
		f.id = id
		f.ref = true
		s.index[id] = s.hand
		s.hand++
		if s.hand == len(s.frames) {
			s.hand = 0
		}
		return
	}
}
