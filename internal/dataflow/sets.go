// Package dataflow computes statement-level read/write sets and builds the
// Data Dependence Graph (DDG) of §III-A of the paper: flow (FD), anti (AD)
// and output (OD) dependences, their loop-carried counterparts
// (LCFD/LCAD/LCOD), and external dependences through the database and the
// output stream, modelled conservatively as the pseudo-locations LocDB and
// LocIO.
package dataflow

import (
	"sort"

	"repro/internal/ir"
)

// Pseudo-locations for external state (§III-A "External data dependencies":
// "we could model the entire database (or file system) as a single program
// variable").
const (
	// LocDB is the database pseudo-location: read by SELECT queries,
	// written by updates.
	LocDB = "$db"
	// LocIO is the output pseudo-location: written by print/log, so that
	// output ordering is an explicit dependence.
	LocIO = "$io"
)

// IsExternal reports whether loc is a pseudo-location rather than a program
// variable.
func IsExternal(loc string) bool {
	return loc == LocDB || loc == LocIO
}

// Sets holds the may-read and may-write locations of a statement, the
// definite kills (unconditional whole-variable writes), and whether the
// statement is a reorder barrier.
type Sets struct {
	Reads   map[string]bool
	Writes  map[string]bool
	Kills   map[string]bool
	Barrier bool
}

func newSets() *Sets {
	return &Sets{Reads: map[string]bool{}, Writes: map[string]bool{}, Kills: map[string]bool{}}
}

func (s *Sets) read(locs ...string)  { add(s.Reads, locs...) }
func (s *Sets) write(locs ...string) { add(s.Writes, locs...) }
func (s *Sets) kill(locs ...string)  { add(s.Kills, locs...); add(s.Writes, locs...) }

func add(m map[string]bool, locs ...string) {
	for _, l := range locs {
		if l != "" {
			m[l] = true
		}
	}
}

// SortedReads returns the read set in deterministic order (for tests/dumps).
func (s *Sets) SortedReads() []string { return sorted(s.Reads) }

// SortedWrites returns the write set in deterministic order.
func (s *Sets) SortedWrites() []string { return sorted(s.Writes) }

func sorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StmtSets computes the dataflow sets of a single statement. Compound
// statements get the union of their nested statements' sets (as may-effects,
// with no kills), which is what the applicability analysis needs; the
// transformation rules themselves only operate on flattened bodies.
func StmtSets(s ir.Stmt, reg *ir.Registry) *Sets {
	out := newSets()
	collectStmt(s, reg, out, false)
	return out
}

// collectStmt accumulates s's effects into out. If mayOnly is set, writes are
// never recorded as kills (used for nested blocks and guarded statements).
func collectStmt(s ir.Stmt, reg *ir.Registry, out *Sets, mayOnly bool) {
	guardedStmt := mayOnly
	if g := s.GetGuard(); g != nil {
		out.read(g.Var)
		guardedStmt = true
	}
	writeVar := func(v string) {
		if guardedStmt {
			out.write(v)
		} else {
			out.kill(v)
		}
	}
	switch x := s.(type) {
	case *ir.Assign:
		collectExpr(x.Rhs, reg, out, guardedStmt)
		for _, l := range x.Lhs {
			writeVar(l)
		}
	case *ir.ExecQuery:
		for _, a := range x.Args {
			collectExpr(a, reg, out, guardedStmt)
		}
		if x.Kind == ir.QueryUpdate {
			out.write(LocDB)
		} else {
			out.read(LocDB)
		}
		if x.Lhs != "" {
			writeVar(x.Lhs)
		}
	case *ir.Submit:
		for _, a := range x.Args {
			collectExpr(a, reg, out, guardedStmt)
		}
		if x.Kind == ir.QueryUpdate {
			out.write(LocDB)
		} else {
			out.read(LocDB)
		}
		writeVar(x.Lhs)
	case *ir.Fetch:
		collectExpr(x.Handle, reg, out, guardedStmt)
		if x.Lhs != "" {
			writeVar(x.Lhs)
		}
	case *ir.CallStmt:
		collectExpr(x.Call, reg, out, guardedStmt)
	case *ir.Return:
		for _, v := range x.Vals {
			collectExpr(v, reg, out, guardedStmt)
		}
	case *ir.DeclTable:
		writeVar(x.Name)
	case *ir.NewRecord:
		writeVar(x.Name)
	case *ir.SetField:
		collectExpr(x.Val, reg, out, guardedStmt)
		out.read(x.Record)
		out.write(x.Record) // partial update: may-write, never a kill
	case *ir.AppendRecord:
		out.read(x.Record, x.Table)
		out.write(x.Table)
	case *ir.LoadField:
		out.read(x.Record)
		out.write(x.Var) // conditional restore: may-write, never a kill
	case *ir.CopyField:
		out.read(x.SrcRec, x.DstRec)
		out.write(x.DstRec) // partial, conditional: may-write
	case *ir.While:
		collectExpr(x.Cond, reg, out, true)
		collectBlock(x.Body, reg, out)
	case *ir.If:
		collectExpr(x.Cond, reg, out, true)
		collectBlock(x.Then, reg, out)
		collectBlock(x.Else, reg, out)
	case *ir.ForEach:
		collectExpr(x.Coll, reg, out, true)
		out.write(x.Var)
		collectBlock(x.Body, reg, out)
	case *ir.Scan:
		out.read(x.Table)
		out.write(x.Record)
		collectBlock(x.Body, reg, out)
	}
}

func collectBlock(b *ir.Block, reg *ir.Registry, out *Sets) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		collectStmt(s, reg, out, true)
	}
}

// collectExpr records the reads (and, for calls, mutations and external
// effects) of an expression. mayOnly propagates guardedness: a mutation under
// a guard is a may-write.
func collectExpr(e ir.Expr, reg *ir.Registry, out *Sets, mayOnly bool) {
	switch x := e.(type) {
	case nil:
	case *ir.Var:
		out.read(x.Name)
	case *ir.Lit:
	case *ir.Bin:
		collectExpr(x.L, reg, out, mayOnly)
		collectExpr(x.R, reg, out, mayOnly)
	case *ir.Un:
		collectExpr(x.X, reg, out, mayOnly)
	case *ir.Call:
		sig := reg.Lookup(x.Fn)
		for i, a := range x.Args {
			collectExpr(a, reg, out, mayOnly)
			if sig != nil && sig.Mutates(i) {
				if v, ok := a.(*ir.Var); ok {
					// In-place mutation: may-write, never a kill.
					out.write(v.Name)
				}
			}
		}
		if sig != nil {
			if sig.External&ir.ExtReadsDB != 0 {
				out.read(LocDB)
			}
			if sig.External&ir.ExtWritesDB != 0 {
				out.write(LocDB)
			}
			if sig.External&ir.ExtIO != 0 {
				out.write(LocIO)
			}
			if sig.Barrier {
				out.Barrier = true
			}
		}
	}
}

// ExprReads returns the variables read by an expression (no externals).
func ExprReads(e ir.Expr, reg *ir.Registry) []string {
	s := newSets()
	collectExpr(e, reg, s, true)
	var out []string
	for v := range s.Reads {
		if !IsExternal(v) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// MutatesInPlace reports whether the statement mutates any variable in place
// (through a mutating call argument or a record/table update). Such
// statements cannot have their writes renamed by a writer stub (Rule C3), so
// the reorder algorithm must move them wholesale or fail.
func MutatesInPlace(s ir.Stmt, reg *ir.Registry) bool {
	found := false
	ir.WalkExprs(s, func(e ir.Expr) {
		if c, ok := e.(*ir.Call); ok {
			if sig := reg.Lookup(c.Fn); sig != nil && len(sig.MutatesArgs) > 0 {
				found = true
			}
		}
	})
	switch s.(type) {
	case *ir.SetField, *ir.AppendRecord, *ir.CopyField:
		return true
	}
	return found
}
