package dataflow

import (
	"sort"

	"repro/internal/ir"
)

// Side identifies which generated loop a statement (or statement half) lands
// in after loop fission at a query statement: P1 is the submit loop, P2 the
// fetch/consume loop.
type Side int

const (
	// P1 is the first (submit) loop.
	P1 Side = iota
	// P2 is the second (fetch/consume) loop.
	P2
)

// FissionBlockers returns the loop-carried dependence edges that make loop
// fission at query statement q (an index into g.Stmts) unsafe. These are the
// paper's Rule A preconditions, evaluated directionally:
//
//   - precondition (a): a loop-carried *flow* dependence whose source
//     executes in the second loop (P2) and whose target executes in the
//     first loop (P1) would be reversed by fission;
//   - precondition (b): likewise for loop-carried anti/output dependences on
//     *external* locations ($db, $io), which — unlike program variables —
//     cannot be renamed into record fields.
//
// The query statement itself contributes two halves: its argument reads and
// submission happen in P1, its result write in P2. For external locations
// the query's action can happen anywhere between submission and fetch, so it
// is treated as P2 when a source and P1 when a target (maximally
// conservative), except that a pure self-dependence (q on q, e.g. repeated
// INSERTs from the same statement) does not block, matching the paper's
// Experiment 4; the updates of a single set-oriented loop are assumed
// commutative (§VII discusses transactional semantics as future work).
func (g *Graph) FissionBlockers(q int) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if !e.Kind.IsCarried() {
			continue
		}
		external := IsExternal(e.Loc)
		switch e.Kind {
		case LCFD:
			// blocks on any location
		case LCAD, LCOD:
			if !external {
				continue // renamed into record fields by Rule A
			}
		}
		if external && e.From == q && e.To == q {
			continue // self-dependence exemption (Experiment 4)
		}
		src := g.sideOf(e.From, q, true, e.Kind, external)
		dst := g.sideOf(e.To, q, false, e.Kind, external)
		if src == P2 && dst == P1 {
			out = append(out, e)
		}
	}
	return out
}

// sideOf determines the execution side of an edge endpoint.
func (g *Graph) sideOf(node, q int, isSource bool, kind EdgeKind, external bool) Side {
	if node == Header {
		return P1
	}
	if node != q {
		// An already-asynchronous submission's external action can execute
		// as late as its fetch; treat Submit sources on external locations
		// as P2 regardless of position.
		if external && isSource {
			if _, ok := g.Stmts[node].(*ir.Submit); ok {
				return P2
			}
		}
		if node < q {
			return P1
		}
		return P2
	}
	// Endpoint is the query statement itself.
	if external {
		if isSource {
			return P2
		}
		return P1
	}
	if isSource {
		// Source role: LCFD/LCOD arise from q's write (the fetched result),
		// which lands in P2; LCAD arises from q's reads (arguments), P1.
		if kind == LCAD {
			return P1
		}
		return P2
	}
	// Target role: LCFD targets q's reads (arguments, P1); LCAD/LCOD target
	// q's write (result, P2).
	if kind == LCFD {
		return P1
	}
	return P2
}

// CrossingLCFD returns the loop-carried flow dependences that the statement
// reordering algorithm (§IV, Fig. 2) must eliminate before fission at q: the
// LCFD edges from the P2 side to the P1 side.
func (g *Graph) CrossingLCFD(q int) []Edge {
	var out []Edge
	for _, e := range g.FissionBlockers(q) {
		if e.Kind == LCFD {
			out = append(out, e)
		}
	}
	return out
}

// FissionBlockersAt is the generalized form of FissionBlockers used by the
// nested-loop rule (§III-D): the loop is split at a plain statement boundary
// (boundary = index of the first statement of the second loop) with no query
// statement straddling the cut.
func (g *Graph) FissionBlockersAt(boundary int) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if !e.Kind.IsCarried() {
			continue
		}
		external := IsExternal(e.Loc)
		switch e.Kind {
		case LCAD, LCOD:
			if !external {
				continue
			}
		}
		src := g.posSide(e.From, boundary, true, external)
		dst := g.posSide(e.To, boundary, false, external)
		if src == P2 && dst == P1 {
			out = append(out, e)
		}
	}
	return out
}

func (g *Graph) posSide(node, boundary int, isSource, external bool) Side {
	if node == Header {
		return P1
	}
	if external && isSource {
		if _, ok := g.Stmts[node].(*ir.Submit); ok {
			return P2
		}
	}
	if node < boundary {
		return P1
	}
	return P2
}

// SplitVarsAt is the boundary form of SplitVars: variables that may be
// written before the boundary (including by the loop header) and read OR
// WRITTEN at or after it. P2-side writes are included because a variable
// written on both sides carries a loop-carried output dependence across the
// split (which Rule A explicitly permits): the conditional restore in the
// second loop re-establishes each iteration's write order, so the variable's
// value after the split program — and at every P2 read — matches the
// original interleaving.
func (g *Graph) SplitVarsAt(boundary int, extraReads ...string) []string {
	writes := g.p1Writes(boundary)
	reads := map[string]bool{}
	for _, v := range extraReads {
		reads[v] = true
	}
	for i := boundary; i < len(g.Stmts); i++ {
		for v := range g.Sets[i].Reads {
			if !IsExternal(v) {
				reads[v] = true
			}
		}
		for v := range g.Sets[i].Writes {
			if !IsExternal(v) {
				reads[v] = true
			}
		}
	}
	return intersect(writes, reads)
}

func (g *Graph) p1Writes(boundary int) map[string]bool {
	writes := map[string]bool{}
	if g.HeaderSets != nil {
		for v := range g.HeaderSets.Writes {
			if !IsExternal(v) {
				writes[v] = true
			}
		}
	}
	for i := 0; i < boundary; i++ {
		for v := range g.Sets[i].Writes {
			if !IsExternal(v) {
				writes[v] = true
			}
		}
	}
	return writes
}

func intersect(writes, reads map[string]bool) []string {
	var out []string
	for v := range writes {
		if reads[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// SplitVars computes SV, the set of variables Rule A must carry from the
// first loop to the second through record fields: every program variable
// that may be written on the P1 side (including the loop header's element
// binding) and may be read on the P2 side. The paper defines SV via
// LCAD/LCOD edges crossing the split boundary; the definitions coincide
// because any P1-write/P2-read pair induces a crossing loop-carried anti
// dependence, and this formulation is directly checkable.
// extraReads lets the caller add P2-side reads that are not visible in the
// statement list, such as the query statement's guard variable, which the
// generated Fetch re-reads in the second loop.
func (g *Graph) SplitVars(q int, extraReads ...string) []string {
	// The query's argument reads are P1 and its result write is P2: writes
	// come from statements strictly before q; the P2 side collects reads
	// and writes (see SplitVarsAt) of the statements strictly after q plus
	// the query's own result write.
	writes := g.p1Writes(q)
	reads := map[string]bool{}
	for _, v := range extraReads {
		reads[v] = true
	}
	for v := range g.Sets[q].Writes {
		if !IsExternal(v) {
			reads[v] = true
		}
	}
	for i := q + 1; i < len(g.Stmts); i++ {
		for v := range g.Sets[i].Reads {
			if !IsExternal(v) {
				reads[v] = true
			}
		}
		for v := range g.Sets[i].Writes {
			if !IsExternal(v) {
				reads[v] = true
			}
		}
	}
	return intersect(writes, reads)
}

// HasBarrier reports whether any statement in the graph is a reorder/split
// barrier (models the recursive invocation sites of §VI's Table I analysis).
func (g *Graph) HasBarrier() bool {
	for _, s := range g.Sets {
		if s.Barrier {
			return true
		}
	}
	return false
}
