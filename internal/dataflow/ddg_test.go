package dataflow

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/minilang"
)

func loopOf(t *testing.T, src string) (ir.Stmt, *ir.Registry) {
	t.Helper()
	p := minilang.MustParse(src)
	for _, s := range p.Body.Stmts {
		if ir.IsCompound(s) {
			return s, ir.NewRegistry()
		}
	}
	t.Fatal("no loop in source")
	return nil, nil
}

func hasEdge(g *Graph, from, to int, kind EdgeKind, loc string) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Kind == kind && e.Loc == loc {
			return true
		}
	}
	return false
}

// TestFigure1Edges reproduces the paper's Figure 1: the DDG of Example 2.
// Statements: 0: category = removeFirst(categoryList); 1: partCount =
// execQuery(q0, category); 2: sum = sum + partCount.
func TestFigure1Edges(t *testing.T) {
	loop, reg := loopOf(t, `
proc example2(categoryList) {
  query q0 = "select count(partkey) from part where p_category = ?";
  sum = 0;
  while (!empty(categoryList)) {
    category = removeFirst(categoryList);
    partCount = execQuery(q0, category);
    sum = sum + partCount;
  }
  return sum;
}`)
	g := BuildLoop(loop, reg)

	// Flow dependences within the iteration.
	if !hasEdge(g, 0, 1, FD, "category") {
		t.Error("missing FD category: removeFirst -> execQuery (paper: s2 -FD-> s3/s4)")
	}
	if !hasEdge(g, 1, 2, FD, "partCount") {
		t.Error("missing FD partCount: execQuery -> sum (paper: s4 -FD-> s5)")
	}
	// The loop-carried flow dependence through the mutated list reaches the
	// predicate and the next iteration's removeFirst (paper: s2 -LFD-> s1).
	if !hasEdge(g, 0, Header, LCFD, "categoryList") {
		t.Error("missing LCFD categoryList into the loop predicate")
	}
	if !hasEdge(g, 0, 0, LCFD, "categoryList") {
		t.Error("missing LCFD categoryList self edge")
	}
	// Kill analysis: category is rewritten unconditionally every iteration,
	// so there is NO loop-carried flow dependence on it (Figure 1 shows
	// none).
	if hasEdge(g, 0, 1, LCFD, "category") {
		t.Error("spurious LCFD on category despite the unconditional rewrite")
	}
	// sum accumulates across iterations.
	if !hasEdge(g, 2, 2, LCFD, "sum") {
		t.Error("missing LCFD sum self edge")
	}
}

// TestKillWindow: a guarded write does not kill, an unguarded one does.
func TestKillWindow(t *testing.T) {
	loop, reg := loopOf(t, `
proc k(n) {
  v = 0;
  i = 0;
  while (i < n) {
    g = i % 2 == 0;
    g ? v = i;
    print(v);
    i = i + 1;
  }
  return v;
}`)
	g := BuildLoop(loop, reg)
	// v written under guard at 1, read at 2: guarded write cannot kill, so
	// the carried edge 1 -> 2 survives (the value may flow to a later
	// iteration's print when the guard is false in between).
	if !hasEdge(g, 1, 2, LCFD, "v") {
		t.Error("guarded write must not kill: LCFD v expected")
	}
}

func TestKillWindowUnconditional(t *testing.T) {
	loop, reg := loopOf(t, `
proc k2(n) {
  v = 0;
  i = 0;
  while (i < n) {
    v = i * 2;
    print(v);
    i = i + 1;
  }
  return v;
}`)
	g := BuildLoop(loop, reg)
	if hasEdge(g, 0, 1, LCFD, "v") {
		t.Error("unconditional write each iteration kills the carried flow")
	}
}

// TestExternalEdges: updates write $db, selects read it.
func TestExternalEdges(t *testing.T) {
	loop, reg := loopOf(t, `
proc rw(n) {
  query sel = "select v from t where k = ?";
  query ins = "insert into t values (?)";
  i = 0;
  while (i < n) {
    v = execQuery(sel, i);
    execUpdate(ins, v);
    i = i + 1;
  }
  return i;
}`)
	g := BuildLoop(loop, reg)
	if !hasEdge(g, 1, 0, LCFD, LocDB) {
		t.Error("missing carried external flow: insert -> next select")
	}
	if !hasEdge(g, 0, 1, AD, LocDB) {
		t.Error("missing external anti dependence select -> insert")
	}
}

// TestIOOutputDependence: two prints must be ordered through $io.
func TestIOOutputDependence(t *testing.T) {
	loop, reg := loopOf(t, `
proc io(n) {
  i = 0;
  while (i < n) {
    print(i);
    log(i);
    i = i + 1;
  }
  return i;
}`)
	g := BuildLoop(loop, reg)
	if !hasEdge(g, 0, 1, OD, LocIO) {
		t.Error("missing $io output dependence print -> log")
	}
}

// TestTrueDepCycle: Example 11's first query is on a cycle, the second not.
func TestTrueDepCycle(t *testing.T) {
	loop, reg := loopOf(t, `
proc e11(eid0) {
  query q1 = "select m from emp where e = ?";
  query q2 = "select p from rating where r = ? and d = ?";
  sumidx = 0;
  eid = eid0;
  while (eid != null) {
    mgr = execQuery(q1, eid);
    idx = execQuery(q2, mgr, eid);
    sumidx = sumidx + idx;
    eid = getParentCategory(mgr);
  }
  return sumidx;
}`)
	g := BuildLoop(loop, reg)
	if !g.OnTrueDepCycle(0) {
		t.Error("q1 must be on a true-dependence cycle (mgr -> eid -> q1)")
	}
	if g.OnTrueDepCycle(1) {
		t.Error("q2 must not be on a true-dependence cycle")
	}
}

// TestFissionBlockersDirection checks the directional P2->P1 rule.
func TestFissionBlockersDirection(t *testing.T) {
	loop, reg := loopOf(t, `
proc f(n) {
  query q = "select v from t where k = ?";
  c = 100;
  i = 0;
  while (i < n) {
    v = execQuery(q, c);
    c = c + v;
    i = i + 1;
  }
  return c;
}`)
	g := BuildLoop(loop, reg)
	// c = c + v (index 1) writes c; the query (index 0) reads c next
	// iteration: LCFD 1 -> 0 crossing the split at q=0.
	blockers := g.FissionBlockers(0)
	found := false
	for _, e := range blockers {
		if e.Kind == LCFD && e.Loc == "c" && e.From == 1 && e.To == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected LCFD c 1->0 in blockers, got %v", blockers)
	}
}

// TestSelfInsertNotBlocking: Experiment 4's self output dependence.
func TestSelfInsertNotBlocking(t *testing.T) {
	loop, reg := loopOf(t, `
proc ins(n) {
  query q = "insert into t values (?)";
  i = 0;
  while (i < n) {
    execUpdate(q, i);
    i = i + 1;
  }
  return i;
}`)
	g := BuildLoop(loop, reg)
	for _, e := range g.FissionBlockers(0) {
		if e.From == 0 && e.To == 0 && IsExternal(e.Loc) {
			t.Errorf("self external dependence must be exempt: %v", e)
		}
	}
}

// TestSplitVars: variables written before and read after the query.
func TestSplitVars(t *testing.T) {
	loop, reg := loopOf(t, `
proc sv(xs) {
  query q = "select v from t where k = ?";
  total = 0;
  foreach x in xs {
    y = x * 2;
    z = 1;
    v = execQuery(q, y);
    total = total + v + y + x;
  }
  return total;
}`)
	g := BuildLoop(loop, reg)
	got := g.SplitVars(2)
	want := []string{"x", "y"} // x: header write read after; y written read after; z never read after
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("SplitVars = %v, want %v", got, want)
	}
}

// TestStmtSets sanity-checks read/write/kill classification.
func TestStmtSets(t *testing.T) {
	p := minilang.MustParse(`
proc s(l) {
  query q = "select v from t where k = ?";
  a = removeFirst(l);
  g = a > 0;
  g ? b = execQuery(q, a);
  print(b);
  return b;
}`)
	reg := ir.NewRegistry()
	s0 := StmtSets(p.Body.Stmts[0], reg)
	if !s0.Reads["l"] || !s0.Writes["l"] || s0.Kills["l"] {
		t.Errorf("removeFirst: reads/writes l without killing; got %+v", s0)
	}
	if !s0.Kills["a"] {
		t.Errorf("a = ... must kill a")
	}
	s2 := StmtSets(p.Body.Stmts[2], reg)
	if !s2.Reads["g"] || !s2.Reads["a"] || !s2.Reads[LocDB] {
		t.Errorf("guarded query reads guard, args and $db: %+v", s2)
	}
	if s2.Kills["b"] {
		t.Errorf("guarded write must not kill")
	}
	s3 := StmtSets(p.Body.Stmts[3], reg)
	if !s3.Writes[LocIO] {
		t.Errorf("print writes $io")
	}
}

// TestDot smoke-tests the graphviz export.
func TestDot(t *testing.T) {
	loop, reg := loopOf(t, `
proc d(n) {
  query q = "select v from t where k = ?";
  i = 0;
  while (i < n) {
    v = execQuery(q, i);
    i = i + 1;
  }
  return i;
}`)
	g := BuildLoop(loop, reg)
	dot := g.Dot("d")
	for _, want := range []string{"digraph", "s0", "s1", "->"} {
		if !contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
