package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Dot renders the DDG in Graphviz dot format, mirroring the paper's Figure 1
// style: solid edges for flow dependences, dashed for anti, dotted for
// output; loop-carried edges are labelled LC*.
func (g *Graph) Dot(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", title)
	if g.HeaderSets != nil {
		fmt.Fprintf(&b, "  h [label=\"header (cond)\"];\n")
	}
	for i, s := range g.Stmts {
		label := ir.PrintStmt(s)
		label = strings.ReplaceAll(label, "\"", "\\\"")
		if len(label) > 60 {
			label = label[:57] + "..."
		}
		fmt.Fprintf(&b, "  s%d [label=\"s%d: %s\"];\n", i, i, label)
	}
	name := func(id int) string {
		if id == Header {
			return "h"
		}
		return fmt.Sprintf("s%d", id)
	}
	for _, e := range g.Edges {
		style := "solid"
		switch e.Kind {
		case AD, LCAD:
			style = "dashed"
		case OD, LCOD:
			style = "dotted"
		}
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s %s\", style=%s];\n",
			name(e.From), name(e.To), e.Kind, e.Loc, style)
	}
	b.WriteString("}\n")
	return b.String()
}
