package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// EdgeKind enumerates the dependence kinds of §III-A.
type EdgeKind int

const (
	// FD is an intra-iteration flow dependence (write then read).
	FD EdgeKind = iota
	// AD is an intra-iteration anti dependence (read then write).
	AD
	// OD is an intra-iteration output dependence (write then write).
	OD
	// LCFD is a loop-carried flow dependence.
	LCFD
	// LCAD is a loop-carried anti dependence.
	LCAD
	// LCOD is a loop-carried output dependence.
	LCOD
)

func (k EdgeKind) String() string {
	switch k {
	case FD:
		return "FD"
	case AD:
		return "AD"
	case OD:
		return "OD"
	case LCFD:
		return "LCFD"
	case LCAD:
		return "LCAD"
	case LCOD:
		return "LCOD"
	}
	return "?"
}

// IsFlow reports whether the kind is a true dependence (FD or LCFD), the
// kinds that form the "true-dependence paths/cycles" of Definition 4.1.
func (k EdgeKind) IsFlow() bool { return k == FD || k == LCFD }

// IsCarried reports whether the kind is loop-carried.
func (k EdgeKind) IsCarried() bool { return k >= LCFD }

// Header is the node id of the loop header pseudo-node (the loop predicate
// for while loops, the element binding for foreach/scan loops). It is pinned:
// the reorder algorithm never moves it.
const Header = -1

// Edge is a dependence from one statement to another on a location.
type Edge struct {
	From int // statement index, or Header
	To   int
	Kind EdgeKind
	Loc  string
}

func (e Edge) String() string {
	return fmt.Sprintf("s%d -%s(%s)-> s%d", e.From, e.Kind, e.Loc, e.To)
}

// Graph is the DDG of one loop body (or straight-line block).
type Graph struct {
	Stmts []ir.Stmt
	Sets  []*Sets // Sets[i] belongs to Stmts[i]
	// HeaderSets describes the loop header: condition reads for while,
	// element-variable write for foreach/scan. Nil for plain blocks.
	HeaderSets *Sets
	Edges      []Edge
	Reg        *ir.Registry
}

// BuildLoop builds the DDG of a loop's body, including the header pseudo-node
// and loop-carried edges.
func BuildLoop(loop ir.Stmt, reg *ir.Registry) *Graph {
	switch l := loop.(type) {
	case *ir.While:
		h := newSets()
		collectExpr(l.Cond, reg, h, true)
		return build(l.Body.Stmts, h, reg)
	case *ir.ForEach:
		h := newSets()
		collectExpr(l.Coll, reg, h, true)
		h.kill(l.Var)
		return build(l.Body.Stmts, h, reg)
	case *ir.Scan:
		h := newSets()
		h.read(l.Table)
		h.kill(l.Record)
		return build(l.Body.Stmts, h, reg)
	}
	panic(fmt.Sprintf("dataflow: BuildLoop on non-loop %T", loop))
}

// BuildBlock builds the DDG of a straight-line statement list with no
// header and no loop-carried edges (used for whole-procedure-body analysis).
func BuildBlock(stmts []ir.Stmt, reg *ir.Registry) *Graph {
	g := build(stmts, nil, reg)
	return g
}

func build(stmts []ir.Stmt, header *Sets, reg *ir.Registry) *Graph {
	g := &Graph{Stmts: stmts, HeaderSets: header, Reg: reg}
	g.Sets = make([]*Sets, len(stmts))
	for i, s := range stmts {
		g.Sets[i] = StmtSets(s, reg)
	}
	n := len(stmts)

	// pos maps node id to loop-body position: header at 0, stmt i at i+1.
	// node retrieves the Sets for a node id.
	nodeSets := func(id int) *Sets {
		if id == Header {
			return header
		}
		return g.Sets[id]
	}
	ids := make([]int, 0, n+1)
	if header != nil {
		ids = append(ids, Header)
	}
	for i := range stmts {
		ids = append(ids, i)
	}
	pos := func(id int) int {
		if id == Header {
			return 0
		}
		return id + 1
	}

	// killPos maps each location to the sorted body positions that
	// definitely kill it (header at position 0, statement i at i+1), so the
	// window checks below are O(1)/O(log k) instead of O(n).
	killPos := map[string][]int{}
	if header != nil {
		for loc := range header.Kills {
			killPos[loc] = append(killPos[loc], 0)
		}
	}
	for i, st := range g.Sets {
		for loc := range st.Kills {
			killPos[loc] = append(killPos[loc], i+1)
		}
		_ = stmts[i]
	}
	// killedIn reports whether loc is definitely killed at any body position
	// in the half-open circular window (fromPos, n] ∪ [0, toPos).
	killedIn := func(loc string, fromPos, toPos int) bool {
		ks := killPos[loc]
		if len(ks) == 0 || IsExternal(loc) {
			return false
		}
		if ks[len(ks)-1] > fromPos { // a kill after fromPos up to n
			return true
		}
		return ks[0] < toPos // a kill before toPos from the loop top
	}
	// killedBetween reports a definite kill strictly between two positions.
	killedBetween := func(loc string, fromPos, toPos int) bool {
		ks := killPos[loc]
		if len(ks) == 0 || IsExternal(loc) {
			return false
		}
		i := sort.SearchInts(ks, fromPos+1)
		return i < len(ks) && ks[i] < toPos
	}

	seen := map[Edge]bool{}
	emit := func(e Edge) {
		if !seen[e] {
			seen[e] = true
			g.Edges = append(g.Edges, e)
		}
	}

	for _, a := range ids {
		sa := nodeSets(a)
		for _, b := range ids {
			sb := nodeSets(b)
			// Intra-iteration edges require forward control flow.
			if pos(a) < pos(b) {
				for loc := range sa.Writes {
					if sb.Reads[loc] && !killedBetween(loc, pos(a), pos(b)) {
						emit(Edge{From: a, To: b, Kind: FD, Loc: loc})
					}
				}
				for loc := range sa.Reads {
					if sb.Writes[loc] {
						emit(Edge{From: a, To: b, Kind: AD, Loc: loc})
					}
				}
				for loc := range sa.Writes {
					if sb.Writes[loc] {
						emit(Edge{From: a, To: b, Kind: OD, Loc: loc})
					}
				}
			}
			// Loop-carried edges: any pair (including self), value crossing
			// the back edge; pruned by definite kills along the wrap-around
			// window. Only built when a header exists (i.e. this is a loop).
			if header == nil {
				continue
			}
			// The header cannot be a carried-edge source: its writes (the
			// foreach element variable) are re-killed at the top of every
			// iteration before any body statement runs.
			if a == Header {
				continue
			}
			for loc := range sa.Writes {
				if sb.Reads[loc] && !killedIn(loc, pos(a), pos(b)) {
					emit(Edge{From: a, To: b, Kind: LCFD, Loc: loc})
				}
			}
			for loc := range sa.Reads {
				if sb.Writes[loc] {
					emit(Edge{From: a, To: b, Kind: LCAD, Loc: loc})
				}
			}
			for loc := range sa.Writes {
				if sb.Writes[loc] {
					emit(Edge{From: a, To: b, Kind: LCOD, Loc: loc})
				}
			}
		}
	}
	return g
}

// PairEdges computes the intra-iteration dependences between two ADJACENT
// statements directly from their read/write sets (no kill analysis is needed
// because nothing executes between them). Edges use From=0 for a, To=1 for
// b. This is the cheap primitive the moveAfter procedure leans on.
func PairEdges(a, b ir.Stmt, reg *ir.Registry) []Edge {
	sa := StmtSets(a, reg)
	sb := StmtSets(b, reg)
	var out []Edge
	for loc := range sa.Writes {
		if sb.Reads[loc] {
			out = append(out, Edge{From: 0, To: 1, Kind: FD, Loc: loc})
		}
	}
	for loc := range sa.Reads {
		if sb.Writes[loc] {
			out = append(out, Edge{From: 0, To: 1, Kind: AD, Loc: loc})
		}
	}
	for loc := range sa.Writes {
		if sb.Writes[loc] {
			out = append(out, Edge{From: 0, To: 1, Kind: OD, Loc: loc})
		}
	}
	return out
}

// EdgesFrom returns the edges leaving node id.
func (g *Graph) EdgesFrom(id int) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// EdgesBetween returns the intra-iteration edges from node a to node b.
func (g *Graph) EdgesBetween(a, b int) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == a && e.To == b && !e.Kind.IsCarried() {
			out = append(out, e)
		}
	}
	return out
}

// HasIntraDep reports any intra-iteration dependence (FD/AD/OD) from a to b.
func (g *Graph) HasIntraDep(a, b int) bool {
	return len(g.EdgesBetween(a, b)) > 0
}

// TrueDepPath reports whether a path of FD/LCFD edges leads from node a to
// node b (Definition 4.1). a == b asks for a cycle through a.
func (g *Graph) TrueDepPath(a, b int) bool {
	adj := map[int][]int{}
	for _, e := range g.Edges {
		if e.Kind.IsFlow() {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	visited := map[int]bool{}
	var dfs func(x int) bool
	var started bool
	var target int = b
	dfs = func(x int) bool {
		if x == target && started {
			return true
		}
		if visited[x] {
			return false
		}
		visited[x] = true
		for _, y := range adj[x] {
			started = true
			if y == target {
				return true
			}
			if dfs(y) {
				return true
			}
		}
		return false
	}
	for _, y := range adj[a] {
		if y == b {
			return true
		}
		if dfs(y) {
			return true
		}
	}
	return false
}

// OnTrueDepCycle reports whether node id lies on a cycle of FD/LCFD edges —
// the condition of Theorem 4.1 under which the query statement cannot be
// made non-blocking.
func (g *Graph) OnTrueDepCycle(id int) bool {
	return g.TrueDepPath(id, id)
}
