// Package replica fronts one database shard with a primary and R read
// replicas, adding read scaling, failover, durability and crash recovery to
// the sharded scatter-gather backend (internal/shard).
//
// The consistency and durability contract (see README.md):
//
//   - Writes (INSERTs) execute on the primary and append to the group's
//     write-ahead log (internal/wal); the acknowledgement waits until the
//     record is durable under the configured wal.Mode (Group by default:
//     concurrent commits share one fsync). Everything acknowledged survives
//     CrashPrimary + RestartPrimary via snapshot + log replay, on the
//     original row ids — the property the scatter-gather merge's global
//     row-order maps depend on.
//   - Synchronous groups (the default) replicate every committed write to
//     every healthy replica under one group-wide write lock, so reads from
//     any copy are byte-identical to a single server. A replica that faults
//     is failed out; Recover replays the log suffix it missed and readmits
//     it byte-identical.
//   - Asynchronous groups (Options.Async) ship the durable log to replicas
//     in the background: each replica applies a prefix of the commit order
//     and reads carry explicit staleness semantics — Strong,
//     BoundedStaleness(d) (at most d acknowledged writes behind), or
//     ReadYourWrites (session LSN tokens). The group maintains a monotonic
//     "served" floor so successive reads never travel backwards in time.
//
// The Group implements query.Executor — the same Exec(Request)/
// ExecBatch(BatchRequest) pair as server.Server — and satisfies
// shard.Backend, so a Router over replica groups is a drop-in for a Router
// over bare servers. Request context consumed here: Session (read-your-
// writes tokens), Consistency (per-request override of the group level),
// Span (write-lock / replication / wal-commit children) and Deadline
// (writes are rejected before the primary executes or abandoned at the
// commit wait — never half-acked).
package replica

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/sqlmini"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrPrimaryDown is returned for writes (and reads no copy can serve at the
// required consistency) while the primary is crashed and not yet restarted.
var ErrPrimaryDown = errors.New("replica: primary down")

// Policy selects how reads spread over healthy replicas.
type Policy int

const (
	// RoundRobin rotates reads across the healthy replicas in arrival order.
	RoundRobin Policy = iota
	// LeastLoaded sends each read to the healthy replica with the fewest
	// requests in flight.
	LeastLoaded
)

// Consistency selects what state an asynchronous group's reads may observe.
// Synchronous groups always read the newest state regardless. The levels
// live in internal/query (requests carry per-request overrides); these
// aliases keep the replica vocabulary.
type Consistency = query.Consistency

const (
	// Strong reads observe every acknowledged write.
	Strong = query.Strong
	// BoundedStaleness reads observe a commit-order prefix at most
	// Options.Bound acknowledged writes behind the newest. The bound is
	// counted in writes (LSNs), not wall time, so it is deterministic under
	// the simulated clock.
	BoundedStaleness = query.BoundedStaleness
	// ReadYourWrites reads observe at least the session's own acknowledged
	// writes (sessionless reads degrade to an arbitrary served prefix).
	ReadYourWrites = query.ReadYourWrites
)

// Options configure a group.
type Options struct {
	// Replicas is the number of read replicas fronting the primary
	// (minimum 1).
	Replicas int
	// Policy is the read load-balancing policy.
	Policy Policy
	// Durability is the commit acknowledgement mode of the group's
	// write-ahead log. The zero value is wal.Group: acknowledged writes are
	// durable, with the fsync amortized across concurrent commits.
	Durability wal.Mode
	// Async switches replicas from synchronous replication to background
	// log shipping with Consistency/Bound read semantics.
	Async bool
	// Consistency is the read consistency of an Async group (the zero
	// value, ConsistencyDefault, means Strong). Requests may override it
	// per call via query.Request.Consistency.
	Consistency Consistency
	// Bound is the BoundedStaleness lag, in acknowledged writes.
	Bound int64
	// SnapshotEvery, when positive, checkpoints the log every time the
	// retained suffix exceeds this many records.
	SnapshotEvery int64
	// Store is the WAL's persistence backend (nil: in-memory).
	Store wal.Store
	// Hedge, when positive, arms hedged reads: if a replica read has not
	// answered within this delay, a second attempt launches on another
	// qualifying replica and the first non-faulted answer wins. Writes are
	// never hedged (they are not idempotent at this layer).
	Hedge time.Duration
	// Breaker configures the per-replica circuit breaker (see
	// BreakerOptions). Disabled by default: faulted replicas then stay out
	// of rotation until an explicit Recover, the historical contract.
	Breaker BreakerOptions
	// Fault, when set, injects ReplicaCrash decisions ahead of replica read
	// attempts (the crashed attempt faults, and the fail-out / breaker /
	// hedge machinery absorbs it). Nil means no injection.
	Fault *fault.Injector
}

// state is the health tracker's view of one replica.
type state struct {
	healthy  atomic.Bool
	inflight atomic.Int64 // reads in flight (least-loaded policy)
	reads    atomic.Int64 // read statements served
	faults   atomic.Int64 // injected faults observed
	applied  atomic.Int64 // highest log record applied to this replica

	// tainted marks a replica that applied records a primary crash then
	// dropped from the log: its applied watermark names state that no longer
	// exists, so Recover must rebuild it from a snapshot instead of trusting
	// the watermark.
	tainted atomic.Bool

	// mu/cond coordinate the async applier with HoldApply/WaitApplied and
	// Recover; sync groups use them only for WaitApplied.
	mu   sync.Mutex
	cond *sync.Cond
	held bool // HoldApply freeze: the applier parks, applied stays exact

	// bmu/bstate are the replica's circuit breaker (see resilience.go);
	// bstate only changes when BreakerOptions.Enabled.
	bmu    sync.Mutex
	bstate int32
}

func (st *state) setApplied(lsn int64) {
	st.mu.Lock()
	st.applied.Store(lsn)
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Session carries the LSN tokens of one client session: its last
// acknowledged write (the ReadYourWrites floor) and the state its last read
// was served at. It is query.Session — requests carry it in their Session
// field, and the shard router derives per-shard children with Sub.
type Session = query.Session

// Group is one replicated shard: a primary owning writes, a write-ahead log
// owning durability, plus R read replicas. It is safe for concurrent use.
type Group struct {
	policy Policy

	prof       server.Profile
	scale      float64
	canRebuild bool // NewGroup-built: profile known, crashed copies can be rebuilt

	log *wal.Log

	pmu         sync.RWMutex
	primary     *server.Server
	primaryDown bool

	rmu      sync.RWMutex
	replicas []*server.Server

	states []*state

	// prep caches parses for routing (read vs write) only; the servers keep
	// their own caches and pay their own planning charge.
	prep sqlmini.PrepCache

	rr atomic.Uint64 // round-robin cursor

	// wmu serializes writes (and crash/recovery transitions) across the
	// whole group: the primary, the log and every synchronous replica see
	// one global write order, keeping row ids identical on all copies.
	wmu sync.Mutex

	commit atomic.Int64 // highest acknowledged write LSN
	served atomic.Int64 // monotonic floor of LSNs reads were served at

	closed  atomic.Bool
	wg      sync.WaitGroup // async appliers
	zombies []*server.Server

	async         bool
	consistency   Consistency
	bound         int64
	snapshotEvery int64

	// Resilience layer (see resilience.go): hedged reads, per-replica
	// circuit breakers, and injected replica crashes.
	hedge   time.Duration
	breaker BreakerOptions
	fault   *fault.Injector

	reg          atomic.Pointer[obs.Registry]
	res          resCounters
	openBreakers atomic.Int64

	stop chan struct{}  // closed by Close: unblocks sleeping probes
	bgMu sync.Mutex     // guards bgWg.Add vs Close
	bgWg sync.WaitGroup // breaker probes + hedge lanes
}

// NewGroup starts a primary and opts.Replicas fresh replicas of the given
// profile; scale is the wall-clock factor for simulated latencies (as in
// server.New). Load data with the bulk-load methods before executing.
func NewGroup(prof server.Profile, scale float64, opts Options) *Group {
	n := opts.Replicas
	if n < 1 {
		n = 1
	}
	replicas := make([]*server.Server, n)
	for i := range replicas {
		replicas[i] = server.New(prof, scale)
	}
	g := buildGroup(server.New(prof, scale), replicas, opts)
	g.prof, g.scale, g.canRebuild = prof, scale, true
	g.start()
	return g
}

// NewGroupWithServers wraps existing servers (tests, heterogeneous copies)
// in a synchronous group with default durability. Crashed copies cannot be
// rebuilt from scratch (the group does not know how to construct servers),
// so RestartPrimary and checkpoint-truncation resync are unavailable.
func NewGroupWithServers(primary *server.Server, replicas []*server.Server, policy Policy) *Group {
	g := buildGroup(primary, replicas, Options{Policy: policy})
	g.start()
	return g
}

// NewGroupWithOptions is NewGroupWithServers with full Options (tests that
// need async shipping or explicit durability over existing servers).
func NewGroupWithOptions(primary *server.Server, replicas []*server.Server, opts Options) *Group {
	g := buildGroup(primary, replicas, opts)
	g.start()
	return g
}

func buildGroup(primary *server.Server, replicas []*server.Server, opts Options) *Group {
	g := &Group{
		policy:        opts.Policy,
		primary:       primary,
		replicas:      replicas,
		states:        make([]*state, len(replicas)),
		async:         opts.Async,
		consistency:   opts.Consistency,
		bound:         opts.Bound,
		snapshotEvery: opts.SnapshotEvery,
		hedge:         opts.Hedge,
		breaker:       opts.Breaker,
		fault:         opts.Fault,
		stop:          make(chan struct{}),
	}
	for i := range g.states {
		g.states[i] = &state{}
		g.states[i].cond = sync.NewCond(&g.states[i].mu)
		g.states[i].healthy.Store(true)
	}
	g.log = wal.New(wal.Options{Mode: opts.Durability, Store: opts.Store, Syncer: groupSyncer{g}})
	return g
}

// start launches the async appliers (no-op for synchronous groups).
func (g *Group) start() {
	if !g.async {
		return
	}
	for i := range g.replicas {
		g.wg.Add(1)
		go g.applier(i)
	}
}

// groupSyncer charges the log's fsyncs to the current primary's disk; while
// the primary is down the log is unreachable anyway (no writes commit), so
// a drain-time fsync is free.
type groupSyncer struct{ g *Group }

func (s groupSyncer) Sync(bytes int) {
	s.g.pmu.RLock()
	p, down := s.g.primary, s.g.primaryDown
	s.g.pmu.RUnlock()
	if down || p == nil {
		return
	}
	p.SyncWAL(bytes)
}

// Primary exposes the write master (tests, fault drills).
func (g *Group) Primary() *server.Server {
	g.pmu.RLock()
	defer g.pmu.RUnlock()
	return g.primary
}

// Replicas exposes the read copies (tests, fault drills).
func (g *Group) Replicas() []*server.Server {
	g.rmu.RLock()
	defer g.rmu.RUnlock()
	return append([]*server.Server(nil), g.replicas...)
}

func (g *Group) replica(i int) *server.Server {
	g.rmu.RLock()
	defer g.rmu.RUnlock()
	return g.replicas[i]
}

// Log exposes the group's write-ahead log (tests, stats).
func (g *Group) Log() *wal.Log { return g.log }

// SetMetrics points the group's log and every copy at an obs registry
// (fsync histograms; future server-side histograms).
func (g *Group) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	g.reg.Store(reg)
	g.log.SetMetrics(reg)
	for _, s := range g.copies() {
		s.SetMetrics(reg)
	}
}

// RegisterMetrics registers the group's aggregate stats and its WAL's as
// pull sources under prefix, and points histogram recording at reg.
func (g *Group) RegisterMetrics(reg *obs.Registry, prefix string) {
	g.SetMetrics(reg)
	reg.RegisterSource(prefix+"group", func() map[string]float64 {
		return g.Stats().Metrics()
	})
	reg.RegisterSource(prefix+"wal", func() map[string]float64 {
		return g.WALStats().Metrics()
	})
}

// CommitLSN returns the highest acknowledged write LSN.
func (g *Group) CommitLSN() int64 { return g.commit.Load() }

// AppliedLSNs reports each replica's applied prefix.
func (g *Group) AppliedLSNs() []int64 {
	out := make([]int64, len(g.states))
	for i, st := range g.states {
		out[i] = st.applied.Load()
	}
	return out
}

// Healthy reports each replica's rotation status.
func (g *Group) Healthy() []bool {
	out := make([]bool, len(g.states))
	for i, st := range g.states {
		out[i] = st.healthy.Load()
	}
	return out
}

// ReadCounts reports how many read statements each replica has served — the
// load-balancing evidence the replica-scale figure prints.
func (g *Group) ReadCounts() []int64 {
	out := make([]int64, len(g.states))
	for i, st := range g.states {
		out[i] = st.reads.Load()
	}
	return out
}

// Faults reports how many injected faults each replica has been failed out
// for.
func (g *Group) Faults() []int64 {
	out := make([]int64, len(g.states))
	for i, st := range g.states {
		out[i] = st.faults.Load()
	}
	return out
}

// FailOut administratively removes replica i from the read rotation (the
// health tracker does this automatically on an observed fault).
func (g *Group) FailOut(i int) { g.states[i].healthy.Store(false) }

// HoldApply freezes (or thaws) replica i's async applier without taking it
// out of the read rotation: the replica keeps serving its current prefix
// while held. Tests use this to pin applied LSNs exactly.
func (g *Group) HoldApply(i int, held bool) {
	st := g.states[i]
	st.mu.Lock()
	st.held = held
	st.cond.Broadcast()
	st.mu.Unlock()
}

// WaitApplied blocks until replica i's applied prefix reaches lsn (or the
// group closes).
func (g *Group) WaitApplied(i int, lsn int64) {
	st := g.states[i]
	st.mu.Lock()
	for st.applied.Load() < lsn && !g.closed.Load() {
		st.cond.Wait()
	}
	st.mu.Unlock()
}

// NewSession starts a client session (ReadYourWrites token carrier).
func (g *Group) NewSession() *Session { return query.NewSession() }

// Recover brings replica i back into the read rotation. A synchronous group
// replays the log suffix the replica missed before readmitting it (a replay
// fault keeps it down, suffix intact); an async group readmits immediately
// and lets the applier catch up. If a checkpoint truncated the log past the
// replica's applied prefix, the replica is rebuilt from the snapshot (full
// resync) — only possible for NewGroup-built groups. Recovering a healthy
// replica is a no-op. Safe to call concurrently; calls serialize on the
// group write lock.
func (g *Group) Recover(i int) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	st := g.states[i]
	// Force everything acknowledged into the durable log so replay sees it
	// even under wal.Off.
	g.log.SyncTo(g.log.LastLSN())

	if _, ok := g.log.RecordsAfter(st.applied.Load()); !ok || st.tainted.Load() {
		// The log's memory starts after this replica's prefix — or a crash
		// invalidated the prefix itself: full resync.
		if err := g.resyncReplica(i); err != nil {
			return err
		}
		st.tainted.Store(false)
	}
	if g.async {
		st.mu.Lock()
		st.healthy.Store(true)
		st.cond.Broadcast()
		st.mu.Unlock()
		return nil
	}
	recs, _ := g.log.RecordsAfter(st.applied.Load())
	rep := g.replica(i)
	for _, r := range recs {
		br := rep.ExecBatch(query.BatchReq(r.Name, r.SQL, r.ArgSets))
		if err := firstErr(br.Errs); err != nil {
			return err
		}
		st.setApplied(r.LSN)
	}
	st.healthy.Store(true)
	return nil
}

// resyncReplica rebuilds replica i from the latest checkpoint (caller holds
// wmu; the replica must be out of rotation or its applier parked).
func (g *Group) resyncReplica(i int) error {
	if !g.canRebuild {
		return errors.New("replica: log truncated past replica state and group cannot rebuild servers")
	}
	snap := g.log.Snapshot()
	if snap == nil {
		return errors.New("replica: log truncated but no snapshot exists")
	}
	s := server.New(g.prof, g.scale)
	if err := snap.RestoreTo(s); err != nil {
		s.Close()
		return err
	}
	g.rmu.Lock()
	old := g.replicas[i]
	g.replicas[i] = s
	g.rmu.Unlock()
	g.zombies = append(g.zombies, old)
	g.states[i].setApplied(snap.LSN)
	return nil
}

// CrashPrimary simulates losing the primary machine: the log's unsynced
// tail is gone (acknowledged writes survive under Group/Strict durability;
// Off may lose its tail), the primary stops serving, and writes fail with
// ErrPrimaryDown until RestartPrimary. Replicas keep serving the reads
// their prefix supports.
func (g *Group) CrashPrimary() {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	g.pmu.RLock()
	down, p := g.primaryDown, g.primary
	g.pmu.RUnlock()
	if down {
		return
	}
	// The base state (bulk-loaded, never logged) must be in a snapshot for
	// restart to rebuild from; normally the first write captured it.
	g.ensureBaseSnapshot(p)
	// Drop the unsynced tail before parking the primary: the log's syncer
	// charges the (still healthy) primary disk for the fsync in flight.
	g.log.Crash()
	g.pmu.Lock()
	g.primaryDown = true
	g.zombies = append(g.zombies, g.primary)
	g.pmu.Unlock()
	// Nothing past the durable prefix exists anymore.
	d := g.log.DurableLSN()
	if g.commit.Load() > d {
		g.commit.Store(d)
	}
	if g.served.Load() > d {
		g.served.Store(d)
	}
	// A replica that already applied records the crash just dropped (writes
	// caught mid-durability-wait, or wal.Off's whole unsynced tail) holds
	// state the log can no longer account for — and new writes will reuse
	// those LSNs with different contents. Taint it: out of rotation now,
	// snapshot rebuild at Recover.
	for _, st := range g.states {
		if st.applied.Load() > d {
			st.tainted.Store(true)
			st.healthy.Store(false)
		}
	}
}

// PrimaryDown reports whether the primary is crashed.
func (g *Group) PrimaryDown() bool {
	g.pmu.RLock()
	defer g.pmu.RUnlock()
	return g.primaryDown
}

// RestartPrimary rebuilds a crashed primary from the latest snapshot plus
// the durable log suffix — the crash-recovery path. The restored server is
// byte-identical to the durable prefix: tables restore in creation order,
// rows on their original ids, and replay re-executes records in LSN order.
func (g *Group) RestartPrimary() error {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	g.pmu.RLock()
	down := g.primaryDown
	g.pmu.RUnlock()
	if !down {
		return nil
	}
	if !g.canRebuild {
		return errors.New("replica: cannot rebuild a primary the group did not construct")
	}
	snap := g.log.Snapshot()
	if snap == nil {
		return errors.New("replica: no snapshot to restart from")
	}
	s := server.New(g.prof, g.scale)
	if err := snap.RestoreTo(s); err != nil {
		s.Close()
		return err
	}
	recs, ok := g.log.RecordsAfter(snap.LSN)
	if !ok {
		s.Close()
		return errors.New("replica: snapshot older than log memory")
	}
	if err := wal.Replay(s, recs); err != nil {
		s.Close()
		return err
	}
	g.pmu.Lock()
	g.primary = s
	g.primaryDown = false
	g.pmu.Unlock()
	g.commit.Store(g.log.DurableLSN())
	return nil
}

// Checkpoint captures the primary's state as a snapshot at the newest LSN
// and truncates the log records it covers. Replicas whose applied prefix
// predates the truncation need a full resync at their next Recover.
func (g *Group) Checkpoint() error {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	return g.checkpointLocked()
}

func (g *Group) checkpointLocked() error {
	g.pmu.RLock()
	p, down := g.primary, g.primaryDown
	g.pmu.RUnlock()
	if down {
		return ErrPrimaryDown
	}
	lsn := g.log.LastLSN()
	g.log.SyncTo(lsn)
	return g.log.WriteSnapshot(wal.Capture(p.Catalog(), lsn))
}

// ensureBaseSnapshot checkpoints the bulk-loaded base state before the
// first logged write touches it: loads bypass the log, so replay alone
// cannot rebuild a crashed copy without this snapshot at LSN 0.
func (g *Group) ensureBaseSnapshot(p *server.Server) {
	if g.log.Snapshot() != nil || g.log.LastLSN() > 0 {
		return
	}
	// Base snapshot at LSN 0 (nothing logged yet); MemStore cannot fail and
	// a FileStore failure here surfaces on the restart path as "no
	// snapshot", so the error is intentionally dropped.
	_ = g.log.WriteSnapshot(wal.Capture(p.Catalog(), 0))
}

// applier is one async replica's log-shipping loop: tail the durable log,
// apply records in LSN order, park while held, failed out, or caught up.
func (g *Group) applier(i int) {
	defer g.wg.Done()
	st := g.states[i]
	for {
		st.mu.Lock()
		for !g.closed.Load() && (st.held || !st.healthy.Load()) {
			st.cond.Wait()
		}
		st.mu.Unlock()
		if g.closed.Load() {
			return
		}
		recs, ok, logClosed := g.log.WaitRecordsAfter(st.applied.Load())
		if logClosed || g.closed.Load() {
			return
		}
		if !ok {
			// A checkpoint truncated past this replica: it cannot catch up
			// from the log. Fail out; Recover performs the full resync.
			st.healthy.Store(false)
			continue
		}
		for _, r := range recs {
			st.mu.Lock()
			parked := st.held || !st.healthy.Load()
			st.mu.Unlock()
			if parked || g.closed.Load() {
				break
			}
			rep := g.replica(i)
			br := rep.ExecBatch(query.BatchReq(r.Name, r.SQL, r.ArgSets))
			if err := firstErr(br.Errs); err != nil {
				if server.IsFault(err) {
					st.faults.Add(1)
				}
				st.healthy.Store(false)
				break
			}
			st.setApplied(r.LSN)
		}
	}
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pick returns the next healthy replica under the read policy whose applied
// prefix reaches min, or -1 when none qualifies.
func (g *Group) pick(min int64) int {
	switch g.policy {
	case LeastLoaded:
		best, bestLoad := -1, int64(0)
		for i, st := range g.states {
			if !st.healthy.Load() || st.applied.Load() < min {
				continue
			}
			if load := st.inflight.Load(); best < 0 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	default: // RoundRobin
		n := len(g.states)
		if n == 0 {
			return -1
		}
		start := int(g.rr.Add(1) % uint64(n))
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if g.states[i].healthy.Load() && g.states[i].applied.Load() >= min {
				return i
			}
		}
		return -1
	}
}

// minLSN computes the commit-order prefix a read must observe under the
// effective consistency: the request's override when set, else the group
// level (ConsistencyDefault meaning Strong).
func (g *Group) minLSN(sess *Session, c Consistency) int64 {
	if !g.async {
		return 0 // synchronous replicas always hold the newest state
	}
	if c == query.ConsistencyDefault {
		c = g.consistency
	}
	switch c {
	case BoundedStaleness:
		m := g.commit.Load() - g.bound
		if m < 0 {
			m = 0
		}
		return m
	case ReadYourWrites:
		return sess.LastWriteLSN()
	default: // Strong (or ConsistencyDefault at the group level)
		return g.commit.Load()
	}
}

// bumpServed raises the group's monotonic served floor.
func (g *Group) bumpServed(lsn int64) {
	for {
		cur := g.served.Load()
		if lsn <= cur || g.served.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// Exec routes one statement: writes through the primary + log, reads to a
// copy that satisfies the effective consistency (the group level, or the
// request's override). The request's Span grows per-attempt "replica.read"
// children for reads (labelled with the copy that served) and a
// "write.lock" / replication / "wal.commit" chain for writes; its Session
// collects write/served LSN tokens; its Deadline rejects a write before
// the primary executes or abandons the acknowledgement at the commit wait.
// The result's Info carries the execution trace the shard router's
// scatter-gather merge consumes — from whichever copy served a read, from
// the primary for a write (row ids agree across copies by the
// ordered-apply contract).
func (g *Group) Exec(req query.Request) query.Result {
	if st, err := g.prep.Prepare(req.SQL); err == nil && st.Insert {
		res, info, lsn, err := g.write(req)
		if err == nil && lsn > 0 {
			req.Session.NoteWrite(lsn)
		}
		return query.Result{Value: res, Err: err, Info: info}
	}
	// Reads — and malformed statements, whose error text is identical on
	// every copy.
	return g.read(req, g.minLSN(req.Session, req.Consistency))
}

// ExecBatch is the set-oriented path: a write batch commits as one log
// record (one commit wait, like one round trip), a read batch rides one
// round trip to one qualifying copy. Request context is honoured as in
// Exec, batch-wide. For write batches the result's Info.InsertRids is the
// primary's trace (the shard router's insertion-order bookkeeping consumes
// it); read batches return a zero Info — the router never needs one.
func (g *Group) ExecBatch(req query.BatchRequest) query.BatchResult {
	if st, err := g.prep.Prepare(req.SQL); err == nil && st.Insert {
		vals, errs, info, lsn := g.writeBatch(req)
		if lsn > 0 {
			req.Session.NoteWrite(lsn)
		}
		return query.BatchResult{Values: vals, Errs: errs, Info: info}
	}
	vals, errs := g.readBatch(req, g.minLSN(req.Session, req.Consistency))
	return query.BatchResult{Values: vals, Errs: errs}
}

// read serves one read with failover: injected faults fail the replica out
// (tripping its breaker when one is configured) and retry on a surviving
// copy; statement errors return immediately (every copy reproduces them
// identically). With Options.Hedge set, a slow attempt races a delayed
// second attempt on another copy (see resilience.go). The effective floor
// is the maximum of the consistency requirement and the group's served
// floor, so reads are monotonic. When no replica qualifies the primary
// (always newest) serves.
func (g *Group) read(req query.Request, min int64) query.Result {
	if s := g.served.Load(); s > min {
		min = s
	}
	// The copy's request carries only the statement, the span child and the
	// deadline — session bookkeeping belongs to this layer.
	sub := query.Req(req.Name, req.SQL, req.Args).WithDeadline(req.Deadline)
	run := func(i int, hedged bool) attempt {
		st := g.states[i]
		at := st.applied.Load()
		st.inflight.Add(1)
		rd := req.Span.Child("replica.read")
		rd.SetDetail(obs.ReplicaLabel(i))
		g.crashMaybe(i)
		res := g.replica(i).Exec(sub.WithSpan(rd))
		rd.End()
		st.inflight.Add(-1)
		a := attempt{res: res, at: at, hedged: hedged}
		if res.Err != nil && server.IsFault(res.Err) {
			a.faulted = true
			g.failOut(i)
		} else {
			st.reads.Add(1)
		}
		return a
	}
	if a, ok := g.readLoop(min, run); ok {
		g.noteServed(req.Session, a.at)
		return a.res
	}
	g.pmu.RLock()
	p, down := g.primary, g.primaryDown
	g.pmu.RUnlock()
	if down {
		return query.Fail(ErrPrimaryDown)
	}
	at := g.commit.Load()
	rd := req.Span.Child("replica.read")
	rd.SetDetail("primary")
	res := p.Exec(sub.WithSpan(rd))
	rd.End()
	g.noteServed(req.Session, at)
	return res
}

// readBatch is read for a whole binding set: one copy, one round trip.
func (g *Group) readBatch(req query.BatchRequest, min int64) ([]any, []error) {
	if s := g.served.Load(); s > min {
		min = s
	}
	sub := query.BatchReq(req.Name, req.SQL, req.ArgSets)
	sub.Deadline = req.Deadline
	run := func(i int, hedged bool) attempt {
		st := g.states[i]
		at := st.applied.Load()
		st.inflight.Add(1)
		rd := req.Span.Child("replica.read")
		rd.SetDetail(obs.ReplicaLabel(i))
		b := sub // copy: hedge lanes run concurrently, each with its own span
		b.Span = rd
		g.crashMaybe(i)
		vals, errs := g.replica(i).ExecBatch(b).Pair()
		rd.End()
		st.inflight.Add(-1)
		a := attempt{vals: vals, errs: errs, at: at, hedged: hedged}
		if batchFaulted(errs) {
			a.faulted = true
			g.failOut(i)
		} else {
			st.reads.Add(int64(len(req.ArgSets)))
		}
		return a
	}
	if a, ok := g.readLoop(min, run); ok {
		g.noteServed(req.Session, a.at)
		return a.vals, a.errs
	}
	g.pmu.RLock()
	p, down := g.primary, g.primaryDown
	g.pmu.RUnlock()
	if down {
		br := query.FailAll(len(req.ArgSets), ErrPrimaryDown)
		return br.Values, br.Errs
	}
	at := g.commit.Load()
	rd := req.Span.Child("replica.read")
	rd.SetDetail("primary")
	sub.Span = rd
	vals, errs := p.ExecBatch(sub).Pair()
	rd.End()
	g.noteServed(req.Session, at)
	return vals, errs
}

func (g *Group) noteServed(sess *Session, at int64) {
	g.bumpServed(at)
	sess.NoteServed(at)
}

// batchFaulted reports whether a batch died of an injected transport fault
// (the server fails the whole call before executing any binding, so a
// faulted batch is safe to retry elsewhere).
func batchFaulted(errs []error) bool {
	for _, err := range errs {
		if err != nil && server.IsFault(err) {
			return true
		}
	}
	return false
}

// write commits one statement: primary execution, WAL append, durability
// wait, synchronous replication (sync groups). A primary error — fault or
// validation — aborts before the log or any replica is touched, as does a
// deadline already expired when the write acquires the group write lock
// (a clean rejection: nothing executed, nothing logged).
func (g *Group) write(req query.Request) (any, sqlmini.ExecInfo, int64, error) {
	sp := req.Span
	lock := sp.Child("write.lock") // group write-order serialization wait
	g.wmu.Lock()
	lock.End()
	if req.Deadline.Expired() {
		g.wmu.Unlock()
		return nil, sqlmini.ExecInfo{}, 0, query.ErrDeadlineExceeded
	}
	g.pmu.RLock()
	p, down := g.primary, g.primaryDown
	g.pmu.RUnlock()
	if down {
		g.wmu.Unlock()
		return nil, sqlmini.ExecInfo{}, 0, ErrPrimaryDown
	}
	g.ensureBaseSnapshot(p)
	// The primary call carries no deadline: once execution starts the write
	// is in the log's order, and the deadline is enforced at the commit
	// wait below instead — abandoned, never half-acked.
	res := p.Exec(query.Req(req.Name, req.SQL, req.Args).WithSpan(sp))
	if res.Err != nil {
		g.wmu.Unlock()
		return nil, res.Info, 0, res.Err
	}
	lsn := g.stageRecord(sp, req.Name, req.SQL, [][]any{req.Args})
	g.wmu.Unlock()
	if err := g.awaitCommit(sp, lsn, req.Deadline); err != nil {
		return nil, res.Info, 0, err
	}
	return res.Value, res.Info, lsn, nil
}

// writeBatch commits a binding set: the primary executes it, the committed
// bindings become one log record, and the whole batch shares one durability
// wait. A transport fault on the primary aborts the batch (no log, no
// replica); per-binding validation errors return with the batch and never
// enter the log (only acknowledged rows replicate or replay).
func (g *Group) writeBatch(req query.BatchRequest) ([]any, []error, sqlmini.ExecInfo, int64) {
	sp, argSets := req.Span, req.ArgSets
	lock := sp.Child("write.lock")
	g.wmu.Lock()
	lock.End()
	if req.Deadline.Expired() {
		g.wmu.Unlock()
		br := query.FailAll(len(argSets), query.ErrDeadlineExceeded)
		return br.Values, br.Errs, sqlmini.ExecInfo{}, 0
	}
	g.pmu.RLock()
	p, down := g.primary, g.primaryDown
	g.pmu.RUnlock()
	if down {
		g.wmu.Unlock()
		br := query.FailAll(len(argSets), ErrPrimaryDown)
		return br.Values, br.Errs, sqlmini.ExecInfo{}, 0
	}
	g.ensureBaseSnapshot(p)
	sub := query.BatchReq(req.Name, req.SQL, argSets)
	sub.Span = sp
	pres := p.ExecBatch(sub)
	vals, errs, info := pres.Values, pres.Errs, pres.Info
	if batchFaulted(errs) {
		g.wmu.Unlock()
		return vals, errs, info, 0
	}
	var okSets [][]any
	for i, e := range errs {
		if e == nil {
			okSets = append(okSets, argSets[i])
		}
	}
	if len(okSets) == 0 {
		g.wmu.Unlock()
		return vals, errs, info, 0
	}
	lsn := g.stageRecord(sp, req.Name, req.SQL, okSets)
	g.wmu.Unlock()
	if err := g.awaitCommit(sp, lsn, req.Deadline); err != nil {
		br := query.FailAll(len(argSets), err)
		return br.Values, br.Errs, info, 0
	}
	return vals, errs, info, lsn
}

// stageRecord logs one committed write and replicates it synchronously (sync
// groups). Caller holds wmu, which is what keeps the per-replica apply order
// equal to LSN order. The durability wait happens in awaitCommit, outside
// the lock, so concurrent commits share fsyncs (group commit).
func (g *Group) stageRecord(sp *obs.Span, name, sql string, argSets [][]any) int64 {
	lsn := g.log.Append(name, sql, argSets)
	if !g.async {
		g.replicate(sp, wal.Record{LSN: lsn, Name: name, SQL: sql, ArgSets: argSets})
	}
	return lsn
}

// awaitCommit waits until the record at lsn is durable per the log's mode,
// then advances the acknowledged-write watermark and triggers the automatic
// checkpoint. A primary crash racing the wait truncates the record away; the
// write then reports ErrPrimaryDown instead of acknowledging state that no
// longer exists. A deadline expiring first abandons the wait with
// query.ErrDeadlineExceeded instead — whichever condition the waiter
// observes first wins, so the client sees exactly one error either way.
func (g *Group) awaitCommit(sp *obs.Span, lsn int64, dl query.Deadline) error {
	if err := g.log.CommitWait(sp, lsn, dl); err != nil {
		return err
	}
	if g.log.Mode() != wal.Off && g.log.DurableLSN() < lsn {
		return ErrPrimaryDown
	}
	for {
		cur := g.commit.Load()
		if lsn <= cur || g.commit.CompareAndSwap(cur, lsn) {
			break
		}
	}
	if g.snapshotEvery > 0 && lsn-g.log.TailStart() >= g.snapshotEvery {
		_ = g.Checkpoint()
	}
	return nil
}

// replicate applies one committed record to every healthy replica — in
// parallel, but under the group write lock, so the per-replica order equals
// the primary's. A replica that faults mid-apply is failed out with its
// applied watermark unchanged, so Recover replays exactly what it missed.
func (g *Group) replicate(sp *obs.Span, rec wal.Record) {
	faulted := make([]bool, len(g.states))
	var wg sync.WaitGroup
	for i := range g.states {
		st := g.states[i]
		if !st.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, st *state) {
			defer wg.Done()
			ap := sp.Child("replica.apply")
			ap.SetDetail(obs.ReplicaLabel(i))
			sub := query.BatchReq(rec.Name, rec.SQL, rec.ArgSets)
			sub.Span = ap
			br := g.replica(i).ExecBatch(sub)
			ap.End()
			if err := firstErr(br.Errs); err != nil {
				faulted[i] = true
				return
			}
			st.setApplied(rec.LSN)
		}(i, st)
	}
	wg.Wait()
	for i, f := range faulted {
		if f {
			st := g.states[i]
			st.faults.Add(1)
			st.healthy.Store(false)
		}
	}
}

// ---- bulk load, cache and clock control (shard.Backend) ----

// everyCopy visits the primary and all replicas, stopping on error.
func (g *Group) everyCopy(f func(s *server.Server) error) error {
	if err := f(g.Primary()); err != nil {
		return err
	}
	for _, rep := range g.Replicas() {
		if err := f(rep); err != nil {
			return err
		}
	}
	return nil
}

// copies returns every live copy, primary first.
func (g *Group) copies() []*server.Server {
	return append([]*server.Server{g.Primary()}, g.Replicas()...)
}

// CreateTable creates the table on every copy.
func (g *Group) CreateTable(name string, schema *storage.Schema, rowsPerPage int) error {
	return g.everyCopy(func(s *server.Server) error {
		return s.CreateTable(name, schema, rowsPerPage)
	})
}

// InsertRow bulk-loads one row into every copy.
func (g *Group) InsertRow(table string, row []any) error {
	return g.everyCopy(func(s *server.Server) error {
		return s.InsertRow(table, row)
	})
}

// FinishLoad registers the loaded extents on every copy.
func (g *Group) FinishLoad() {
	for _, s := range g.copies() {
		s.FinishLoad()
	}
}

// AddIndex builds the index on every copy.
func (g *Group) AddIndex(table, column string, unique bool) error {
	return g.everyCopy(func(s *server.Server) error {
		return s.AddIndex(table, column, unique)
	})
}

// IndexKeyCount reads the primary's index statistics (every copy holds the
// same data, so one answer speaks for the group).
func (g *Group) IndexKeyCount(table, col string, v any) (int, bool) {
	return g.Primary().IndexKeyCount(table, col, v)
}

// NumTableRows returns the primary's row count for a table — the migration
// copier's cutoff read (see shard.Backend). A crashed primary's catalog
// stays readable, clamped to its durable prefix.
func (g *Group) NumTableRows(table string) int {
	return g.Primary().NumTableRows(table)
}

// TableRow materializes one row from the primary by local row id — the
// migration copier's row read (see shard.Backend).
func (g *Group) TableRow(table string, rid int) []any {
	return g.Primary().TableRow(table, rid)
}

// Warm preloads every copy's registered extents.
func (g *Group) Warm() {
	for _, s := range g.copies() {
		s.Warm()
	}
}

// ColdStart empties every copy's buffer pool.
func (g *Group) ColdStart() {
	for _, s := range g.copies() {
		s.ColdStart()
	}
}

// SetScale updates the latency scale on every copy's clock.
func (g *Group) SetScale(scale float64) {
	for _, s := range g.copies() {
		s.SetScale(scale)
	}
}

// Close stops the appliers, drains and closes the log, then shuts down
// every copy (crashed/resynced ones included).
func (g *Group) Close() {
	if g.closed.Swap(true) {
		return
	}
	// Stop the resilience goroutines first: sleeping probes wake via stop,
	// in-flight probes and hedge lanes finish against the still-open log and
	// copies, and guardGo refuses new ones once closed is set.
	g.bgMu.Lock()
	close(g.stop)
	g.bgMu.Unlock()
	g.bgWg.Wait()
	g.log.Close()
	for _, st := range g.states {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	}
	g.wg.Wait()
	for _, s := range g.copies() {
		s.Close()
	}
	g.wmu.Lock()
	zombies := g.zombies
	g.zombies = nil
	g.wmu.Unlock()
	for _, s := range zombies {
		s.Close()
	}
}

// WALStats returns the log's counters (fsync count, group-commit factor).
func (g *Group) WALStats() wal.Stats { return g.log.Stats() }

// CopyStats returns per-copy counters, primary first.
func (g *Group) CopyStats() []server.Stats {
	out := make([]server.Stats, 0, 1+len(g.states))
	for _, s := range g.copies() {
		out = append(out, s.Stats())
	}
	return out
}

// Stats aggregates the group's counters: sums of the per-copy counts (a
// replicated write is real work on every copy and counts per copy) with
// VirtualTime the maximum, since copies burn simulated time in parallel.
func (g *Group) Stats() server.Stats {
	var agg server.Stats
	for _, s := range g.CopyStats() {
		agg.Queries += s.Queries
		agg.Inserts += s.Inserts
		agg.RowsRead += s.RowsRead
		agg.NetRequests += s.NetRequests
		agg.Batches += s.Batches
		agg.BufferHits += s.BufferHits
		agg.BufferMiss += s.BufferMiss
		agg.Disk.Requests += s.Disk.Requests
		agg.Disk.PagesRead += s.Disk.PagesRead
		agg.Disk.Writes += s.Disk.Writes
		agg.Disk.PagesWritten += s.Disk.PagesWritten
		agg.Disk.SeekTime += s.Disk.SeekTime
		agg.Disk.BusyTime += s.Disk.BusyTime
		if s.Disk.MaxQueue > agg.Disk.MaxQueue {
			agg.Disk.MaxQueue = s.Disk.MaxQueue
		}
		if s.VirtualTime > agg.VirtualTime {
			agg.VirtualTime = s.VirtualTime
		}
	}
	return agg
}
