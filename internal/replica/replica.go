// Package replica fronts one database shard with a primary and R read
// replicas, adding read scaling and failover to the sharded scatter-gather
// backend (internal/shard) without changing any observable result.
//
// The consistency contract (see README.md):
//
//   - Writes (INSERTs) execute on the primary first and replicate to every
//     replica synchronously, all under one group-wide write lock, so every
//     copy applies writes in the identical order and shard-local row ids
//     agree across copies — the property the scatter-gather merge's global
//     row-order maps depend on.
//   - Reads load-balance across healthy replicas (round-robin or
//     least-loaded). A replica whose request comes back with an injected
//     transport fault (server.IsFault) is failed out of the rotation and the
//     read retries on a surviving copy, so a mid-workload replica failure
//     never changes a result. With every replica down, the primary serves
//     reads — and if it faults too, its error surfaces unchanged, which is
//     exactly the text a failing single server produces.
//   - A failed-out replica misses subsequent writes; the group queues them
//     in order and Recover replays the backlog before readmitting the
//     replica, so a rejoined copy is byte-identical to the primary.
//
// The Group exposes the same Exec/ExecTraced/ExecBatch shapes as
// server.Server and satisfies shard.Backend, so a Router over replica groups
// is a drop-in for a Router over bare servers.
package replica

import (
	"sync"
	"sync/atomic"

	"repro/internal/server"
	"repro/internal/sqlmini"
	"repro/internal/storage"
)

// Policy selects how reads spread over healthy replicas.
type Policy int

const (
	// RoundRobin rotates reads across the healthy replicas in arrival order.
	RoundRobin Policy = iota
	// LeastLoaded sends each read to the healthy replica with the fewest
	// requests in flight.
	LeastLoaded
)

// Options configure a group.
type Options struct {
	// Replicas is the number of read replicas fronting the primary
	// (minimum 1).
	Replicas int
	// Policy is the read load-balancing policy.
	Policy Policy
}

// writeOp is one replicated write, queued verbatim for replicas that were
// down when it committed. Single-statement writes are one-binding batches;
// replay through ExecBatch applies the identical rows in the identical
// order.
type writeOp struct {
	name, sql string
	argSets   [][]any
}

// state is the health tracker's view of one replica.
type state struct {
	healthy  atomic.Bool
	inflight atomic.Int64 // reads in flight (least-loaded policy)
	reads    atomic.Int64 // read statements served
	faults   atomic.Int64 // injected faults observed
	// pending holds the writes this replica missed while failed out, in
	// commit order. Guarded by the group write lock.
	pending []writeOp
}

// Group is one replicated shard: a primary owning writes plus R read
// replicas. It is safe for concurrent use.
type Group struct {
	primary  *server.Server
	replicas []*server.Server
	states   []*state
	policy   Policy

	// prep caches parses for routing (read vs write) only; the servers keep
	// their own caches and pay their own planning charge.
	prep sqlmini.PrepCache

	rr atomic.Uint64 // round-robin cursor

	// wmu serializes writes across the whole group: the primary and every
	// replica apply them in one global order, keeping row ids identical on
	// all copies (and making Recover's backlog replay race-free).
	wmu sync.Mutex
}

// NewGroup starts a primary and opts.Replicas fresh replicas of the given
// profile; scale is the wall-clock factor for simulated latencies (as in
// server.New). Load data with the bulk-load methods before executing.
func NewGroup(prof server.Profile, scale float64, opts Options) *Group {
	n := opts.Replicas
	if n < 1 {
		n = 1
	}
	replicas := make([]*server.Server, n)
	for i := range replicas {
		replicas[i] = server.New(prof, scale)
	}
	return NewGroupWithServers(server.New(prof, scale), replicas, opts.Policy)
}

// NewGroupWithServers wraps existing servers (tests, heterogeneous copies).
func NewGroupWithServers(primary *server.Server, replicas []*server.Server, policy Policy) *Group {
	g := &Group{
		primary:  primary,
		replicas: replicas,
		states:   make([]*state, len(replicas)),
		policy:   policy,
	}
	for i := range g.states {
		g.states[i] = &state{}
		g.states[i].healthy.Store(true)
	}
	return g
}

// Primary exposes the write master (tests, fault drills).
func (g *Group) Primary() *server.Server { return g.primary }

// Replicas exposes the read copies (tests, fault drills).
func (g *Group) Replicas() []*server.Server { return g.replicas }

// Healthy reports each replica's rotation status.
func (g *Group) Healthy() []bool {
	out := make([]bool, len(g.states))
	for i, st := range g.states {
		out[i] = st.healthy.Load()
	}
	return out
}

// ReadCounts reports how many read statements each replica has served — the
// load-balancing evidence the replica-scale figure prints.
func (g *Group) ReadCounts() []int64 {
	out := make([]int64, len(g.states))
	for i, st := range g.states {
		out[i] = st.reads.Load()
	}
	return out
}

// Faults reports how many injected faults each replica has been failed out
// for.
func (g *Group) Faults() []int64 {
	out := make([]int64, len(g.states))
	for i, st := range g.states {
		out[i] = st.faults.Load()
	}
	return out
}

// FailOut administratively removes replica i from the read rotation (the
// health tracker does this automatically on an observed fault).
func (g *Group) FailOut(i int) { g.states[i].healthy.Store(false) }

// Recover replays the writes replica i missed while failed out and, once
// the backlog is drained, readmits it to the read rotation. If a replay
// itself faults, the replica stays down with the unreplayed suffix intact
// and the fault is returned.
func (g *Group) Recover(i int) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	st := g.states[i]
	for len(st.pending) > 0 {
		op := st.pending[0]
		_, errs := g.replicas[i].ExecBatch(op.name, op.sql, op.argSets)
		for _, err := range errs {
			if err != nil && server.IsFault(err) {
				return err
			}
		}
		st.pending = st.pending[1:]
	}
	st.healthy.Store(true)
	return nil
}

// pick returns the next healthy replica under the read policy, or -1 when
// every replica is failed out.
func (g *Group) pick() int {
	switch g.policy {
	case LeastLoaded:
		best, bestLoad := -1, int64(0)
		for i, st := range g.states {
			if !st.healthy.Load() {
				continue
			}
			if load := st.inflight.Load(); best < 0 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	default: // RoundRobin
		n := len(g.states)
		if n == 0 {
			return -1
		}
		start := int(g.rr.Add(1) % uint64(n))
		for k := 0; k < n; k++ {
			i := (start + k) % n
			if g.states[i].healthy.Load() {
				return i
			}
		}
		return -1
	}
}

// Exec routes one statement: writes through the primary with synchronous
// replication, reads to a healthy replica with failover. Its shape matches
// exec.Runner.
func (g *Group) Exec(name, sql string, args []any) (any, error) {
	res, _, err := g.ExecTraced(name, sql, args)
	return res, err
}

// ExecTraced is Exec plus the execution trace (the shard router's
// scatter-gather merge consumes the matched row ids). Read traces come from
// whichever replica served the read; write traces from the primary — row
// ids agree across copies by the ordered-apply contract.
func (g *Group) ExecTraced(name, sql string, args []any) (any, sqlmini.ExecInfo, error) {
	if st, err := g.prep.Prepare(sql); err == nil && st.Insert {
		return g.write(name, sql, args)
	}
	// Reads — and malformed statements, whose error text is identical on
	// every copy.
	return g.read(name, sql, args)
}

// ExecBatch is the set-oriented path: a write batch replicates like a write,
// a read batch rides one round trip to one replica (round trips stay equal
// to a single server's), failing over whole if that replica faults. Its
// shape matches exec.BatchRunner.
func (g *Group) ExecBatch(name, sql string, argSets [][]any) ([]any, []error) {
	vals, errs, _ := g.ExecBatchTraced(name, sql, argSets)
	return vals, errs
}

// ExecBatchTraced is ExecBatch plus the primary's batch trace for writes
// (info.InsertRids, which the shard router's insertion-order bookkeeping
// consumes; row ids agree on every copy by the ordered-apply contract).
// Read batches return a zero trace — the router never needs one.
func (g *Group) ExecBatchTraced(name, sql string, argSets [][]any) ([]any, []error, sqlmini.ExecInfo) {
	if st, err := g.prep.Prepare(sql); err == nil && st.Insert {
		return g.writeBatch(name, sql, argSets)
	}
	vals, errs := g.readBatch(name, sql, argSets)
	return vals, errs, sqlmini.ExecInfo{}
}

// read serves one read with failover: injected faults fail the replica out
// and retry on a surviving copy; statement errors return immediately (every
// copy reproduces them identically). With no replicas left the primary
// serves the read, so the shard keeps answering until the last copy dies.
func (g *Group) read(name, sql string, args []any) (any, sqlmini.ExecInfo, error) {
	for {
		i := g.pick()
		if i < 0 {
			break
		}
		st := g.states[i]
		st.inflight.Add(1)
		res, info, err := g.replicas[i].ExecTraced(name, sql, args)
		st.inflight.Add(-1)
		if err != nil && server.IsFault(err) {
			st.faults.Add(1)
			st.healthy.Store(false)
			continue
		}
		st.reads.Add(1)
		return res, info, err
	}
	return g.primary.ExecTraced(name, sql, args)
}

// readBatch is read for a whole binding set: one replica, one round trip.
func (g *Group) readBatch(name, sql string, argSets [][]any) ([]any, []error) {
	for {
		i := g.pick()
		if i < 0 {
			break
		}
		st := g.states[i]
		st.inflight.Add(1)
		vals, errs := g.replicas[i].ExecBatch(name, sql, argSets)
		st.inflight.Add(-1)
		if batchFaulted(errs) {
			st.faults.Add(1)
			st.healthy.Store(false)
			continue
		}
		st.reads.Add(int64(len(argSets)))
		return vals, errs
	}
	return g.primary.ExecBatch(name, sql, argSets)
}

// batchFaulted reports whether a batch died of an injected transport fault
// (the server fails the whole call before executing any binding, so a
// faulted batch is safe to retry elsewhere).
func batchFaulted(errs []error) bool {
	for _, err := range errs {
		if err != nil && server.IsFault(err) {
			return true
		}
	}
	return false
}

// write commits one statement on the primary and replicates it. A primary
// error — fault or validation — aborts before any replica is touched, so
// the copies never diverge.
func (g *Group) write(name, sql string, args []any) (any, sqlmini.ExecInfo, error) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	res, info, err := g.primary.ExecTraced(name, sql, args)
	if err != nil {
		return nil, info, err
	}
	g.replicate(writeOp{name: name, sql: sql, argSets: [][]any{args}})
	return res, info, nil
}

// writeBatch commits a binding set on the primary and replicates it. A
// transport fault on the primary aborts the whole batch (no replica sees
// it); per-binding validation errors replicate with the batch and fail
// identically on every copy.
func (g *Group) writeBatch(name, sql string, argSets [][]any) ([]any, []error, sqlmini.ExecInfo) {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	vals, errs, info := g.primary.ExecBatchTraced(name, sql, argSets)
	if batchFaulted(errs) {
		return vals, errs, info
	}
	g.replicate(writeOp{name: name, sql: sql, argSets: argSets})
	return vals, errs, info
}

// replicate applies one committed write to every replica — in parallel, but
// under the group write lock, so the per-replica order equals the primary's.
// Down replicas queue the op for Recover; a replica that faults mid-apply is
// failed out with the op queued, losing nothing.
func (g *Group) replicate(op writeOp) {
	faulted := make([]bool, len(g.replicas))
	var wg sync.WaitGroup
	for i, rep := range g.replicas {
		st := g.states[i]
		if !st.healthy.Load() {
			st.pending = append(st.pending, op)
			continue
		}
		wg.Add(1)
		go func(i int, rep *server.Server) {
			defer wg.Done()
			_, errs := rep.ExecBatch(op.name, op.sql, op.argSets)
			faulted[i] = batchFaulted(errs)
		}(i, rep)
	}
	wg.Wait()
	for i, f := range faulted {
		if f {
			st := g.states[i]
			st.faults.Add(1)
			st.healthy.Store(false)
			st.pending = append(st.pending, op)
		}
	}
}

// ---- bulk load, cache and clock control (shard.Backend) ----

// everyCopy visits the primary and all replicas, stopping on error.
func (g *Group) everyCopy(f func(s *server.Server) error) error {
	if err := f(g.primary); err != nil {
		return err
	}
	for _, rep := range g.replicas {
		if err := f(rep); err != nil {
			return err
		}
	}
	return nil
}

// copies returns every copy, primary first.
func (g *Group) copies() []*server.Server {
	return append([]*server.Server{g.primary}, g.replicas...)
}

// CreateTable creates the table on every copy.
func (g *Group) CreateTable(name string, schema *storage.Schema, rowsPerPage int) error {
	return g.everyCopy(func(s *server.Server) error {
		return s.CreateTable(name, schema, rowsPerPage)
	})
}

// InsertRow bulk-loads one row into every copy.
func (g *Group) InsertRow(table string, row []any) error {
	return g.everyCopy(func(s *server.Server) error {
		return s.InsertRow(table, row)
	})
}

// FinishLoad registers the loaded extents on every copy.
func (g *Group) FinishLoad() {
	for _, s := range g.copies() {
		s.FinishLoad()
	}
}

// AddIndex builds the index on every copy.
func (g *Group) AddIndex(table, column string, unique bool) error {
	return g.everyCopy(func(s *server.Server) error {
		return s.AddIndex(table, column, unique)
	})
}

// IndexKeyCount reads the primary's index statistics (every copy holds the
// same data, so one answer speaks for the group).
func (g *Group) IndexKeyCount(table, col string, v any) (int, bool) {
	return g.primary.IndexKeyCount(table, col, v)
}

// Warm preloads every copy's registered extents.
func (g *Group) Warm() {
	for _, s := range g.copies() {
		s.Warm()
	}
}

// ColdStart empties every copy's buffer pool.
func (g *Group) ColdStart() {
	for _, s := range g.copies() {
		s.ColdStart()
	}
}

// SetScale updates the latency scale on every copy's clock.
func (g *Group) SetScale(scale float64) {
	for _, s := range g.copies() {
		s.SetScale(scale)
	}
}

// Close shuts down every copy.
func (g *Group) Close() {
	for _, s := range g.copies() {
		s.Close()
	}
}

// CopyStats returns per-copy counters, primary first.
func (g *Group) CopyStats() []server.Stats {
	out := make([]server.Stats, 0, 1+len(g.replicas))
	for _, s := range g.copies() {
		out = append(out, s.Stats())
	}
	return out
}

// Stats aggregates the group's counters: sums of the per-copy counts (a
// replicated write is real work on every copy and counts per copy) with
// VirtualTime the maximum, since copies burn simulated time in parallel.
func (g *Group) Stats() server.Stats {
	var agg server.Stats
	for _, s := range g.CopyStats() {
		agg.Queries += s.Queries
		agg.Inserts += s.Inserts
		agg.RowsRead += s.RowsRead
		agg.NetRequests += s.NetRequests
		agg.Batches += s.Batches
		agg.BufferHits += s.BufferHits
		agg.BufferMiss += s.BufferMiss
		agg.Disk.Requests += s.Disk.Requests
		agg.Disk.PagesRead += s.Disk.PagesRead
		agg.Disk.SeekTime += s.Disk.SeekTime
		agg.Disk.BusyTime += s.Disk.BusyTime
		if s.Disk.MaxQueue > agg.Disk.MaxQueue {
			agg.Disk.MaxQueue = s.Disk.MaxQueue
		}
		if s.VirtualTime > agg.VirtualTime {
			agg.VirtualTime = s.VirtualTime
		}
	}
	return agg
}
