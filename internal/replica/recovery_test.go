package replica

import (
	"errors"
	"fmt"
	"repro/internal/query"
	"sync"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// newGroupOpts is newGroup with full Options control (async groups,
// durability modes, consistency levels).
func newGroupOpts(t *testing.T, opts Options) *Group {
	t.Helper()
	g := NewGroup(server.SYS1(), 0, opts)
	t.Cleanup(g.Close)
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("kv", schema, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := g.InsertRow("kv", []any{int64(i), fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	g.FinishLoad()
	if err := g.AddIndex("kv", "id", true); err != nil {
		t.Fatal(err)
	}
	return g
}

// mustInsert acknowledges one row through the group write path.
func mustInsert(t *testing.T, g *Group, id int64) {
	t.Helper()
	if _, err := g.Exec(query.Req("w", ins, []any{id, fmt.Sprintf("v%d", id)})).Pair(); err != nil {
		t.Fatalf("insert %d: %v", id, err)
	}
}

// wantVal asserts a read (optionally session-scoped) returns v<id>.
func wantVal(t *testing.T, g *Group, sess *Session, id int64) {
	t.Helper()
	v, err := g.Exec(query.Req("q", sel, []any{id}).WithSession(sess)).Pair()
	if err != nil {
		t.Fatalf("read %d: %v", id, err)
	}
	want := fmt.Sprintf("v%d", id)
	if rs, ok := v.(interp.Rows); !ok || len(rs) != 1 || rs[0]["val"] != want {
		t.Fatalf("read %d: got %v, want val=%s", id, interp.Format(v), want)
	}
}

func sumReads(g *Group) int64 {
	var n int64
	for _, c := range g.ReadCounts() {
		n += c
	}
	return n
}

func TestCrashRestartKeepsAcknowledgedWrites(t *testing.T) {
	g := newGroup(t, 2, RoundRobin) // sync replication, wal.Group durability
	for i := int64(100); i < 120; i++ {
		mustInsert(t, g, i)
	}
	if g.CommitLSN() != 20 {
		t.Fatalf("commit LSN = %d, want 20", g.CommitLSN())
	}

	g.CrashPrimary()
	if !g.PrimaryDown() {
		t.Fatal("primary should be down")
	}
	if _, err := g.Exec(query.Req("w", ins, []any{int64(999), "x"})).Pair(); !errors.Is(err, ErrPrimaryDown) {
		t.Fatalf("write while down: %v, want ErrPrimaryDown", err)
	}
	// Sync replicas hold the full prefix and keep serving reads.
	wantVal(t, g, nil, 110)

	if err := g.RestartPrimary(); err != nil {
		t.Fatal(err)
	}
	if g.PrimaryDown() {
		t.Fatal("primary should be back up")
	}
	// Every write acknowledged under wal.Group survived the crash.
	if g.CommitLSN() != 20 {
		t.Fatalf("commit LSN after restart = %d, want 20", g.CommitLSN())
	}
	if n := rows("kv", g.Primary()); n != 120 {
		t.Fatalf("restored primary has %d rows, want 120", n)
	}
	for i := int64(0); i < 120; i++ {
		v, err := g.Primary().Exec(query.Req("q", sel, []any{i})).Pair()
		want := fmt.Sprintf("v%d", i)
		if rs, ok := v.(interp.Rows); err != nil || !ok || len(rs) != 1 || rs[0]["val"] != want {
			t.Fatalf("restored primary read %d: %v / %v", i, interp.Format(v), err)
		}
	}
	// Writes resume against the rebuilt primary.
	mustInsert(t, g, 120)
	if g.CommitLSN() != 21 {
		t.Fatalf("post-restart commit LSN = %d, want 21", g.CommitLSN())
	}
	wantVal(t, g, nil, 120)
}

func TestRestartPrimaryWhenUpIsNoop(t *testing.T) {
	g := newGroup(t, 1, RoundRobin)
	mustInsert(t, g, 100)
	p := g.Primary()
	if err := g.RestartPrimary(); err != nil {
		t.Fatal(err)
	}
	if g.Primary() != p {
		t.Fatal("restart of a healthy primary must not replace the server")
	}
}

func TestCrashUnderOffLosesOnlyUnsyncedTail(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 1, Durability: wal.Off})
	for i := int64(100); i < 130; i++ {
		mustInsert(t, g, i)
	}
	g.CrashPrimary()
	// Off mode acknowledged before fsync: everything past the durable prefix
	// is gone — but nothing durable may be lost, and restart must land
	// exactly on that prefix.
	d := g.Log().DurableLSN()
	if d > 30 {
		t.Fatalf("durable LSN %d exceeds writes issued", d)
	}
	if err := g.RestartPrimary(); err != nil {
		t.Fatal(err)
	}
	if g.CommitLSN() != d {
		t.Fatalf("commit LSN = %d, want durable prefix %d", g.CommitLSN(), d)
	}
	if n := rows("kv", g.Primary()); int64(n) != 100+d {
		t.Fatalf("restored primary has %d rows, want %d", n, 100+d)
	}
	// The sync replica applied all 30 inserts before the crash; if any were
	// dropped, its watermark is a lie and the crash must have tainted it out
	// of rotation. Recover rebuilds it onto the durable prefix either way.
	if d < 30 && g.Healthy()[0] {
		t.Fatal("replica ahead of the durable prefix must be failed out")
	}
	if err := g.Recover(0); err != nil {
		t.Fatal(err)
	}
	if n := rows("kv", g.Replicas()[0]); int64(n) != 100+d {
		t.Fatalf("recovered replica has %d rows, want %d", n, 100+d)
	}
	if a := g.AppliedLSNs()[0]; a != d {
		t.Fatalf("recovered replica applied = %d, want %d", a, d)
	}
}

func TestRecoverHealthyReplicaIsNoop(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	for i := int64(100); i < 105; i++ {
		mustInsert(t, g, i)
	}
	before := g.AppliedLSNs()
	if err := g.Recover(1); err != nil {
		t.Fatal(err)
	}
	after := g.AppliedLSNs()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("recover of healthy replica moved applied: %v -> %v", before, after)
		}
	}
	for _, h := range g.Healthy() {
		if !h {
			t.Fatalf("healthy flags disturbed: %v", g.Healthy())
		}
	}
	wantVal(t, g, nil, 104)
}

func TestRecoverReplayFaultMidBacklog(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	// First backlog: applied cleanly, so the replica sits mid-log.
	g.FailOut(0)
	for i := int64(100); i < 105; i++ {
		mustInsert(t, g, i)
	}
	if err := g.Recover(0); err != nil {
		t.Fatal(err)
	}
	if g.AppliedLSNs()[0] != 5 {
		t.Fatalf("applied after first recover = %v, want 5", g.AppliedLSNs())
	}
	// Second backlog: replay faults on its first record.
	g.FailOut(0)
	for i := int64(105); i < 110; i++ {
		mustInsert(t, g, i)
	}
	g.Replicas()[0].FailNext(1)
	err := g.Recover(0)
	if err == nil || !server.IsFault(err) {
		t.Fatalf("recover through injected fault: %v, want fault", err)
	}
	if g.Healthy()[0] {
		t.Fatal("replica must stay out of rotation after a failed recover")
	}
	if g.AppliedLSNs()[0] != 5 {
		t.Fatalf("failed recover moved applied to %v, want 5", g.AppliedLSNs())
	}
	// The backlog is intact: a clean retry finishes the job.
	if err := g.Recover(0); err != nil {
		t.Fatal(err)
	}
	if g.AppliedLSNs()[0] != 10 || !g.Healthy()[0] {
		t.Fatalf("retry: applied=%v healthy=%v", g.AppliedLSNs(), g.Healthy())
	}
	if n := rows("kv", g.Replicas()[0]); n != 110 {
		t.Fatalf("recovered replica has %d rows, want 110", n)
	}
}

func TestConcurrentRecoverIsSafe(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	g.FailOut(0)
	g.FailOut(1)
	for i := int64(100); i < 110; i++ {
		mustInsert(t, g, i)
	}
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := g.Recover(i); err != nil {
					t.Errorf("recover %d: %v", i, err)
				}
			}(i)
		}
	}
	wg.Wait()
	for i, a := range g.AppliedLSNs() {
		if a != 10 || !g.Healthy()[i] {
			t.Fatalf("replica %d: applied=%d healthy=%v", i, a, g.Healthy()[i])
		}
	}
	for i := int64(0); i < 30; i++ {
		wantVal(t, g, nil, i%110)
	}
}

func TestAsyncApplierCatchesUp(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 2, Async: true})
	for i := int64(100); i < 110; i++ {
		mustInsert(t, g, i)
	}
	g.WaitApplied(0, 10)
	g.WaitApplied(1, 10)
	before := sumReads(g)
	wantVal(t, g, nil, 105) // Strong: replicas qualify once caught up
	if sumReads(g) != before+1 {
		t.Fatalf("caught-up async replica should have served the read: %v", g.ReadCounts())
	}
}

func TestCheckpointTruncationForcesFullResync(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 1, Async: true})
	g.HoldApply(0, true)
	for i := int64(100); i < 110; i++ {
		mustInsert(t, g, i)
	}
	if err := g.Checkpoint(); err != nil { // truncates the log past applied=0
		t.Fatal(err)
	}
	g.HoldApply(0, false)
	// The applier discovers its prefix predates the log's memory and fails
	// the replica out.
	deadline := time.Now().Add(5 * time.Second)
	for g.Healthy()[0] {
		if time.Now().After(deadline) {
			t.Fatal("applier never failed out after truncation")
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.Recover(0); err != nil {
		t.Fatal(err)
	}
	if a := g.AppliedLSNs()[0]; a != 10 {
		t.Fatalf("resynced replica applied = %d, want snapshot LSN 10", a)
	}
	if n := rows("kv", g.Replicas()[0]); n != 110 {
		t.Fatalf("resynced replica has %d rows, want 110", n)
	}
	before := sumReads(g)
	wantVal(t, g, nil, 109)
	if sumReads(g) != before+1 {
		t.Fatalf("resynced replica should serve reads: %v", g.ReadCounts())
	}
}

func TestBoundedStalenessFloor(t *testing.T) {
	g := newGroupOpts(t, Options{
		Replicas: 2, Async: true, Consistency: BoundedStaleness, Bound: 5,
	})
	g.HoldApply(0, true)
	g.HoldApply(1, true)
	for i := int64(100); i < 103; i++ {
		mustInsert(t, g, i)
	}
	// commit=3, bound=5: a replica frozen at LSN 0 is still within bound.
	wantVal(t, g, nil, 0)
	if sumReads(g) != 1 {
		t.Fatalf("within-bound read should ride a replica: %v", g.ReadCounts())
	}
	for i := int64(103); i < 106; i++ {
		mustInsert(t, g, i)
	}
	// commit=6: frozen replicas are now out of bound — the primary serves,
	// and the group's served floor advances to commit.
	wantVal(t, g, nil, 105)
	if sumReads(g) != 1 {
		t.Fatalf("out-of-bound read must not ride a stale replica: %v", g.ReadCounts())
	}
	// Monotonic reads: having observed LSN 6, even base rows may no longer
	// be served from the frozen replicas.
	wantVal(t, g, nil, 1)
	if sumReads(g) != 1 {
		t.Fatalf("served floor violated: %v", g.ReadCounts())
	}
	g.HoldApply(0, false)
	g.HoldApply(1, false)
	g.WaitApplied(0, 6)
	g.WaitApplied(1, 6)
	wantVal(t, g, nil, 105)
	if sumReads(g) != 2 {
		t.Fatalf("caught-up replica should serve again: %v", g.ReadCounts())
	}
}

func TestReadYourWritesSession(t *testing.T) {
	g := newGroupOpts(t, Options{
		Replicas: 1, Async: true, Consistency: ReadYourWrites,
	})
	g.HoldApply(0, true)
	// Sessionless reads carry no token: the frozen replica serves them.
	wantVal(t, g, nil, 7)
	if sumReads(g) != 1 {
		t.Fatalf("sessionless read should ride the replica: %v", g.ReadCounts())
	}
	sess := g.NewSession()
	if _, err := g.Exec(query.Req("w", ins, []any{int64(200), "v200"}).WithSession(sess)).Pair(); err != nil {
		t.Fatal(err)
	}
	if sess.LastWriteLSN() != 1 {
		t.Fatalf("session write token = %d, want 1", sess.LastWriteLSN())
	}
	// The session must see its own write even though the replica has not
	// applied it: the primary serves, and the session records what it saw.
	wantVal(t, g, sess, 200)
	if sumReads(g) != 1 {
		t.Fatalf("read-your-writes must not ride the stale replica: %v", g.ReadCounts())
	}
	if sess.LastServedLSN() < sess.LastWriteLSN() {
		t.Fatalf("session served %d < its own write %d",
			sess.LastServedLSN(), sess.LastWriteLSN())
	}
	g.HoldApply(0, false)
	g.WaitApplied(0, 1)
	wantVal(t, g, sess, 200)
	if sumReads(g) != 2 {
		t.Fatalf("caught-up replica satisfies the session token: %v", g.ReadCounts())
	}
}
