package replica

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/query"
)

// A slow first lane loses to the delayed hedge: the second attempt launches
// after the hedge delay, answers first, and is counted as a hedge win.
func TestHedgedAttemptSecondLaneWins(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 2, Hedge: 2 * time.Millisecond})
	run := func(i int, hedged bool) attempt {
		if !hedged {
			time.Sleep(50 * time.Millisecond) // the lane the hedge rescues
		}
		return attempt{res: query.Ok(int64(i)), hedged: hedged}
	}
	a, ok := g.hedgedAttempt(0, 0, run)
	if !ok {
		t.Fatal("hedged attempt should produce an answer")
	}
	if !a.hedged {
		t.Fatal("the delayed second lane should have answered first")
	}
	st := g.Resilience()
	if st.HedgesLaunched != 1 || st.HedgeWins != 1 {
		t.Fatalf("launched=%d wins=%d, want 1/1", st.HedgesLaunched, st.HedgeWins)
	}
}

// A fast first lane answers before the hedge delay: no second attempt is
// ever launched.
func TestHedgedAttemptFirstLaneWinsWithoutHedge(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 2, Hedge: 50 * time.Millisecond})
	run := func(i int, hedged bool) attempt {
		return attempt{res: query.Ok(int64(i)), hedged: hedged}
	}
	a, ok := g.hedgedAttempt(0, 0, run)
	if !ok || a.hedged {
		t.Fatalf("first lane should win in place: ok=%v hedged=%v", ok, a.hedged)
	}
	if st := g.Resilience(); st.HedgesLaunched != 0 {
		t.Fatalf("hedges launched %d, want 0", st.HedgesLaunched)
	}
}

// When every lane faults the hedged attempt reports no answer, and the
// outer read loop falls back to picking again (ultimately the primary).
func TestHedgedAttemptAllLanesFault(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 2, Hedge: time.Millisecond})
	run := func(i int, hedged bool) attempt {
		time.Sleep(5 * time.Millisecond) // let the hedge launch
		return attempt{faulted: true, hedged: hedged}
	}
	if _, ok := g.hedgedAttempt(0, 0, run); ok {
		t.Fatal("all-faulted lanes must report no answer")
	}
}

// End-to-end hedging: reads with a hedge configured still answer correctly
// on instant replicas (the hedge never needs to fire).
func TestHedgedReadsAnswerCorrectly(t *testing.T) {
	g := newGroupOpts(t, Options{Replicas: 2, Hedge: 20 * time.Millisecond})
	for i := int64(0); i < 20; i++ {
		v, err := g.Exec(query.Req("q", sel, []any{i % 100})).Pair()
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("v%d", i%100)
		if rs, ok := v.(interp.Rows); !ok || len(rs) != 1 || rs[0]["val"] != want {
			t.Fatalf("read %d: got %v, want val=%s", i, interp.Format(v), want)
		}
	}
}

// A read fault trips the replica's breaker; the half-open probe (a Recover)
// brings it back without any manual intervention, and the obs registry sees
// the trip, the probe, and the gauge returning to zero.
func TestBreakerTripsAndProbesBackIn(t *testing.T) {
	reg := obs.NewRegistry()
	g := newGroupOpts(t, Options{
		Replicas: 2,
		Breaker:  BreakerOptions{Enabled: true, Cooldown: 2 * time.Millisecond},
	})
	g.SetMetrics(reg)

	g.Replicas()[0].FailNext(1)
	for i := int64(0); g.Resilience().BreakerTrips == 0 && i < 10; i++ {
		if _, err := g.Exec(query.Req("q", sel, []any{i})).Pair(); err != nil {
			t.Fatalf("read must fail over, got %v", err)
		}
	}
	if g.Resilience().BreakerTrips != 1 {
		t.Fatalf("trips=%d, want 1", g.Resilience().BreakerTrips)
	}

	deadline := time.Now().Add(2 * time.Second)
	for g.Resilience().OpenBreakers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed: %+v", g.Resilience())
		}
		time.Sleep(time.Millisecond)
	}
	if st := g.Resilience(); st.BreakerProbes < 1 {
		t.Fatalf("probes=%d, want ≥1", st.BreakerProbes)
	}
	// The recovered replica serves again: spread reads and check both copies
	// take some.
	for i := int64(0); i < 20; i++ {
		if _, err := g.Exec(query.Req("q", sel, []any{i})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	counts := g.ReadCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("recovered replica serves no reads: %v", counts)
	}
	if reg.Counter("replica.breaker.trips").Load() != 1 ||
		reg.Counter("replica.breaker.probes").Load() < 1 {
		t.Fatalf("obs mirror: trips=%d probes=%d",
			reg.Counter("replica.breaker.trips").Load(),
			reg.Counter("replica.breaker.probes").Load())
	}
	if reg.Gauge("replica.breaker.open").Load() != 0 {
		t.Fatalf("open gauge %v, want 0", reg.Gauge("replica.breaker.open").Load())
	}
}

// An injected ReplicaCrash fires on a read decision, fails that replica out
// through the normal machinery, and the read still answers correctly from a
// surviving copy.
func TestReplicaCrashInjectionFailsOver(t *testing.T) {
	inj := fault.New(11).At(fault.ReplicaCrash, 1)
	g := newGroupOpts(t, Options{
		Replicas: 2,
		Breaker:  BreakerOptions{Enabled: true, Cooldown: time.Millisecond},
		Fault:    inj,
	})
	for i := int64(0); i < 10; i++ {
		v, err := g.Exec(query.Req("q", sel, []any{i})).Pair()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := fmt.Sprintf("v%d", i)
		if rs, ok := v.(interp.Rows); !ok || len(rs) != 1 || rs[0]["val"] != want {
			t.Fatalf("read %d answered %v, want val=%s", i, interp.Format(v), want)
		}
	}
	if inj.Fired(fault.ReplicaCrash) != 1 {
		t.Fatalf("replica-crash fired %d, want 1", inj.Fired(fault.ReplicaCrash))
	}
	if g.Resilience().BreakerTrips != 1 {
		t.Fatalf("trips=%d, want 1 (the crashed attempt)", g.Resilience().BreakerTrips)
	}
}

// With the breaker disabled (the zero options), the historical contract
// holds: a faulted replica stays out of rotation until a manual Recover.
func TestBreakerDisabledKeepsReplicaDown(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	g.Replicas()[0].FailNext(1)
	for i := int64(0); i < 4; i++ {
		if _, err := g.Exec(query.Req("q", sel, []any{i})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond) // longer than any default cooldown
	if h := g.Healthy(); h[0] {
		t.Fatal("replica 0 must stay down without a breaker")
	}
	if st := g.Resilience(); st.BreakerTrips != 0 || st.BreakerProbes != 0 {
		t.Fatalf("breaker activity without a breaker: %+v", st)
	}
	if err := g.Recover(0); err != nil {
		t.Fatal(err)
	}
	if h := g.Healthy(); !h[0] {
		t.Fatal("manual Recover must readmit the replica")
	}
}
