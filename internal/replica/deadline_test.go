package replica

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// stallStore wraps the in-memory WAL store with a gate on fsync: Sync
// blocks until the gate opens, holding every commit waiter in its
// durability wait — the window where deadlines and primary crashes race.
type stallStore struct {
	*wal.MemStore
	gate chan struct{}
}

func (s *stallStore) Sync() error {
	<-s.gate
	return s.MemStore.Sync()
}

// TestExpiredDeadlineOnStalledCommitSingleError is the issue's regression
// test: a write parked in the WAL durability wait whose deadline expires —
// and whose primary then crashes — must charge the client exactly one
// error (ErrDeadlineExceeded from the wait, or ErrPrimaryDown for writes
// issued after the crash), must never half-ack, and must not leak the
// waiter goroutine even though the fsync it was waiting on never finished.
func TestExpiredDeadlineOnStalledCommitSingleError(t *testing.T) {
	st := &stallStore{MemStore: wal.NewMemStore(), gate: make(chan struct{})}
	g := NewGroup(server.SYS1(), 0.02, Options{
		Replicas:   1,
		Durability: wal.Group,
		Store:      st,
	})
	defer g.Close()
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("events", schema, 0); err != nil {
		t.Fatal(err)
	}
	g.FinishLoad()
	g.Warm()

	baseline := runtime.NumGoroutine()

	const writers = 8
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			res := g.Exec(query.Req("w", "insert into events values (?, ?)",
				[]any{int64(w + 1), fmt.Sprintf("e%d", w)}).
				WithDeadline(query.After(40 * time.Millisecond)))
			errs <- res.Err
		}(w)
	}
	// The fsync is stalled, so no write can be acknowledged: every client
	// must get exactly ErrDeadlineExceeded, within the deadline's order of
	// magnitude — not hang until the fsync completes (it never does here).
	for w := 0; w < writers; w++ {
		select {
		case err := <-errs:
			if !errors.Is(err, query.ErrDeadlineExceeded) {
				t.Fatalf("writer got %v, want ErrDeadlineExceeded", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("writer stuck in commit wait past its deadline")
		}
	}

	// The waiters must be gone while the fsync is STILL stalled — a waiter
	// that only exits when the sync completes is the leak this test pins.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+1 { // +1: the flusher blocked in Sync
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines (baseline %d) after deadline returns:\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Now the crash: let the in-flight fsync land and take the primary
	// down. The expired writes were reported unacknowledged; the crash must
	// not re-charge anyone (their error channels are already drained), and
	// a write against the downed primary reports exactly ErrPrimaryDown.
	close(st.gate)
	g.CrashPrimary()
	res := g.Exec(query.Req("w", "insert into events values (?, ?)",
		[]any{int64(100), "after"}).WithDeadline(query.After(50 * time.Millisecond)))
	if !errors.Is(res.Err, ErrPrimaryDown) {
		t.Fatalf("write on crashed primary got %v, want ErrPrimaryDown", res.Err)
	}

	// Recovery restores exactly-one-answer service.
	if err := g.RestartPrimary(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	res = g.Exec(query.Req("w", "insert into events values (?, ?)",
		[]any{int64(101), "recovered"}))
	if res.Err != nil {
		t.Fatalf("write after restart: %v", res.Err)
	}
}
