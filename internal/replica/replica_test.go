package replica

import (
	"fmt"
	"repro/internal/query"
	"sync"
	"testing"

	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/storage"
)

// newGroup builds a group over scale-0 servers with a small kv table loaded
// on every copy: 100 rows (id, val), unique index on id.
func newGroup(t *testing.T, replicas int, policy Policy) *Group {
	t.Helper()
	g := NewGroup(server.SYS1(), 0, Options{Replicas: replicas, Policy: policy})
	t.Cleanup(g.Close)
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("kv", schema, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := g.InsertRow("kv", []any{int64(i), fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	g.FinishLoad()
	if err := g.AddIndex("kv", "id", true); err != nil {
		t.Fatal(err)
	}
	return g
}

const sel = "select val from kv where id = ?"
const ins = "insert into kv values (?, ?)"

func rows(table string, s *server.Server) int {
	return s.Catalog().Table(table).NumRows()
}

func TestReadsRoundRobinAcrossReplicas(t *testing.T) {
	g := newGroup(t, 3, RoundRobin)
	for i := int64(0); i < 30; i++ {
		v, err := g.Exec(query.Req("q", sel, []any{i % 100})).Pair()
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("v%d", i%100)
		if rs, ok := v.(interp.Rows); !ok || len(rs) != 1 || rs[0]["val"] != want {
			t.Fatalf("read %d: got %v, want val=%s", i, interp.Format(v), want)
		}
	}
	counts := g.ReadCounts()
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("round-robin balance off: replica %d served %d of 30, counts %v", i, c, counts)
		}
	}
	// The primary served no reads.
	if q := g.Primary().Stats().Queries; q != 0 {
		t.Fatalf("primary served %d reads; replicas should take them all", q)
	}
}

func TestLeastLoadedPrefersIdleReplica(t *testing.T) {
	g := newGroup(t, 3, LeastLoaded)
	// Serial reads always find every replica idle: ties resolve to the first
	// healthy replica, deterministically.
	for i := int64(0); i < 5; i++ {
		if _, err := g.Exec(query.Req("q", sel, []any{i})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	if counts := g.ReadCounts(); counts[0] != 5 || counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("least-loaded serial reads should pin the first idle replica, counts %v", counts)
	}
	// With the first replica failed out, reads move to the next.
	g.FailOut(0)
	if _, err := g.Exec(query.Req("q", sel, []any{int64(1)})).Pair(); err != nil {
		t.Fatal(err)
	}
	if counts := g.ReadCounts(); counts[1] != 1 {
		t.Fatalf("least-loaded did not fail over to replica 1, counts %v", counts)
	}
}

func TestWritesReplicateSynchronously(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	for i := int64(100); i < 120; i++ {
		if _, err := g.Exec(query.Req("ins", ins, []any{i, fmt.Sprintf("v%d", i)})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	if n := rows("kv", g.Primary()); n != 120 {
		t.Fatalf("primary has %d rows, want 120", n)
	}
	for i, rep := range g.Replicas() {
		if n := rows("kv", rep); n != 120 {
			t.Fatalf("replica %d has %d rows, want 120", i, n)
		}
	}
	// Read the new rows back through the replicas.
	for i := int64(100); i < 120; i++ {
		v, err := g.Exec(query.Req("q", sel, []any{i})).Pair()
		if err != nil {
			t.Fatal(err)
		}
		if rs := v.(interp.Rows); rs[0]["val"] != fmt.Sprintf("v%d", i) {
			t.Fatalf("read-back id=%d: %v", i, interp.Format(v))
		}
	}
}

// TestReplicaFaultFailsOverWithoutResultChange pins the failover contract:
// a replica that dies mid-read is failed out and the read retries on a
// surviving copy, returning exactly what a healthy group returns.
func TestReplicaFaultFailsOverWithoutResultChange(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	want, err := g.Exec(query.Req("q", sel, []any{int64(7)})).Pair()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range g.Replicas() {
		rep.FailNext(1)
	}
	got, err := g.Exec(query.Req("q", sel, []any{int64(7)})).Pair()
	if err != nil {
		t.Fatalf("failover read errored: %v", err)
	}
	if !interp.Equal(want, got) {
		t.Fatalf("failover changed the result: %v vs %v", interp.Format(want), interp.Format(got))
	}
	// Both replicas consumed their fault on the way: one on the first
	// attempt, the second on the retry — and the primary served the read.
	healthy := g.Healthy()
	if healthy[0] || healthy[1] {
		t.Fatalf("faulted replicas still in rotation: %v", healthy)
	}
	var faults int64
	for _, f := range g.Faults() {
		faults += f
	}
	if faults != 2 {
		t.Fatalf("recorded %d faults, want 2", faults)
	}
}

// TestReplicaKilledMidBatch pins batch failover: the whole binding set
// retries on a surviving copy and demultiplexes identically.
func TestReplicaKilledMidBatch(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	argSets := make([][]any, 16)
	for i := range argSets {
		argSets[i] = []any{int64(i * 3 % 100)}
	}
	wantVals, wantErrs := g.ExecBatch(query.BatchReq("q", sel, argSets)).Pair()
	for i, err := range wantErrs {
		if err != nil {
			t.Fatalf("baseline binding %d: %v", i, err)
		}
	}
	// Kill the next replica the rotation will pick, mid-batch.
	for _, rep := range g.Replicas() {
		rep.FailNext(1)
	}
	gotVals, gotErrs := g.ExecBatch(query.BatchReq("q", sel, argSets)).Pair()
	for i := range argSets {
		if gotErrs[i] != nil {
			t.Fatalf("binding %d errored after failover: %v", i, gotErrs[i])
		}
		if !interp.Equal(wantVals[i], gotVals[i]) {
			t.Fatalf("binding %d: %v vs %v", i,
				interp.Format(wantVals[i]), interp.Format(gotVals[i]))
		}
	}
	if h := g.Healthy(); h[0] || h[1] {
		t.Fatalf("faulted replicas still in rotation: %v", h)
	}
}

// TestAllCopiesDownErrorFidelity pins the error contract: when every
// replica AND the primary are down, the group surfaces exactly the error a
// failing single server produces — no replica vocabulary leaks out.
func TestAllCopiesDownErrorFidelity(t *testing.T) {
	single := server.New(server.SYS1(), 0)
	defer single.Close()
	single.FailNext(1)
	_, wantErr := single.Exec(query.Req("q", sel, []any{int64(1)})).Pair()
	if wantErr == nil {
		t.Fatal("single server did not fault")
	}

	g := newGroup(t, 2, RoundRobin)
	for _, rep := range g.Replicas() {
		rep.FailNext(1)
	}
	g.Primary().FailNext(1)
	_, gotErr := g.Exec(query.Req("q", sel, []any{int64(1)})).Pair()
	if gotErr == nil {
		t.Fatal("fully failed group did not error")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("error text: group %q, single server %q", gotErr, wantErr)
	}
	if !server.IsFault(gotErr) {
		t.Fatalf("expected an injected fault, got %v", gotErr)
	}

	// Batch path: same fidelity, per binding.
	single.FailNext(1)
	_, wantErrs := single.ExecBatch(query.BatchReq("q", sel, [][]any{{int64(1)}, {int64(2)}})).Pair()
	g2 := newGroup(t, 2, RoundRobin)
	for _, rep := range g2.Replicas() {
		rep.FailNext(1)
	}
	g2.Primary().FailNext(1)
	_, gotErrs := g2.ExecBatch(query.BatchReq("q", sel, [][]any{{int64(1)}, {int64(2)}})).Pair()
	for i := range wantErrs {
		if gotErrs[i] == nil || gotErrs[i].Error() != wantErrs[i].Error() {
			t.Fatalf("batch binding %d: group %v, single server %v", i, gotErrs[i], wantErrs[i])
		}
	}
}

// TestStatementErrorsDoNotTriggerFailover pins the fault/error distinction:
// a validation error is data-independent, returns from the first replica
// asked, and must not cost that replica its rotation slot.
func TestStatementErrorsDoNotTriggerFailover(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	single := server.New(server.SYS1(), 0)
	defer single.Close()
	for _, q := range []string{
		"select nope from kv where id = ?",
		"select val from nosuch where id = ?",
		"delete from kv",
	} {
		_, wantErr := single.Exec(query.Req("q", q, []any{int64(1)})).Pair()
		_, gotErr := g.Exec(query.Req("q", q, []any{int64(1)})).Pair()
		// The single server has no kv table, so compare only the statements
		// whose error is schema-independent.
		if q == "delete from kv" && (gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error()) {
			t.Fatalf("parse error text: group %v, single %v", gotErr, wantErr)
		}
		if gotErr == nil {
			t.Fatalf("%s: expected an error", q)
		}
	}
	for i, h := range g.Healthy() {
		if !h {
			t.Fatalf("statement errors failed replica %d out of rotation", i)
		}
	}
}

// TestReplicaRejoinAfterRecovery pins the replay contract: a failed-out
// replica misses writes, Recover replays them in order, and the rejoined
// replica serves reads over the complete data.
func TestReplicaRejoinAfterRecovery(t *testing.T) {
	g := newGroup(t, 2, RoundRobin)
	g.FailOut(0)
	for i := int64(100); i < 130; i++ {
		if _, err := g.Exec(query.Req("ins", ins, []any{i, fmt.Sprintf("v%d", i)})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	if n := rows("kv", g.Replicas()[0]); n != 100 {
		t.Fatalf("down replica applied writes: %d rows, want 100", n)
	}
	if n := rows("kv", g.Replicas()[1]); n != 130 {
		t.Fatalf("healthy replica missed writes: %d rows, want 130", n)
	}
	if err := g.Recover(0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n := rows("kv", g.Replicas()[0]); n != 130 {
		t.Fatalf("recovered replica has %d rows, want 130", n)
	}
	// Force reads onto the rejoined replica and check the replayed data.
	g.FailOut(1)
	for i := int64(100); i < 130; i++ {
		v, err := g.Exec(query.Req("q", sel, []any{i})).Pair()
		if err != nil {
			t.Fatal(err)
		}
		if rs := v.(interp.Rows); len(rs) != 1 || rs[0]["val"] != fmt.Sprintf("v%d", i) {
			t.Fatalf("replayed row id=%d reads back as %v", i, interp.Format(v))
		}
	}
	if c := g.ReadCounts(); c[0] == 0 {
		t.Fatalf("rejoined replica served no reads: %v", c)
	}
}

// TestRecoverReplayFaultKeepsReplicaDown: a fault during backlog replay
// leaves the replica out of rotation with the unreplayed suffix intact, and
// a second Recover finishes the job.
func TestRecoverReplayFaultKeepsReplicaDown(t *testing.T) {
	g := newGroup(t, 1, RoundRobin)
	g.FailOut(0)
	for i := int64(100); i < 105; i++ {
		if _, err := g.Exec(query.Req("ins", ins, []any{i, fmt.Sprintf("v%d", i)})).Pair(); err != nil {
			t.Fatal(err)
		}
	}
	g.Replicas()[0].FailNext(1) // the first replay batch faults
	if err := g.Recover(0); err == nil || !server.IsFault(err) {
		t.Fatalf("recover should surface the replay fault, got %v", err)
	}
	if g.Healthy()[0] {
		t.Fatal("replica rejoined despite a failed replay")
	}
	if err := g.Recover(0); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if !g.Healthy()[0] {
		t.Fatal("replica still down after a clean replay")
	}
	if n := rows("kv", g.Replicas()[0]); n != 105 {
		t.Fatalf("replayed replica has %d rows, want 105", n)
	}
}

// TestConcurrentReadsWritesAndFailover drives the group from many
// goroutines while replicas die and rejoin — the -race exercise for the
// health tracker and the write lock.
func TestConcurrentReadsWritesAndFailover(t *testing.T) {
	g := newGroup(t, 3, LeastLoaded)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if i%10 == 0 {
					id := int64(1000 + w*100 + i)
					if _, err := g.Exec(query.Req("ins", ins, []any{id, "x"})).Pair(); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					continue
				}
				if _, err := g.Exec(query.Req("q", sel, []any{int64(i % 100)})).Pair(); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 10; k++ {
			g.Replicas()[k%3].FailNext(1)
			_ = g.Recover(k % 3)
		}
	}()
	wg.Wait()
	// Whatever the interleaving, every copy converges after a final recover.
	for i := range g.Replicas() {
		if err := g.Recover(i); err != nil {
			t.Fatalf("final recover %d: %v", i, err)
		}
	}
	want := rows("kv", g.Primary())
	for i, rep := range g.Replicas() {
		if n := rows("kv", rep); n != want {
			t.Fatalf("replica %d has %d rows, primary %d", i, n, want)
		}
	}
}
