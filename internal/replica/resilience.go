package replica

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/query"
)

// BreakerOptions configure the per-replica circuit breaker. A breaker wraps
// the existing fail-out mechanism: a read fault still removes the replica
// from rotation immediately (the breaker "trips" open), but instead of
// waiting for a manual Recover, the group schedules a half-open probe after
// Cooldown. The probe IS a Recover call — it replays the log suffix the
// replica missed — so a probe that succeeds readmits a byte-identical copy,
// never a stale one. A probe that fails reopens the breaker and tries again
// after another cooldown.
type BreakerOptions struct {
	// Enabled turns the breaker on. Off (the zero value) preserves the
	// historical contract: a faulted replica stays down until Recover.
	Enabled bool
	// Cooldown is how long a tripped breaker stays open before the
	// half-open probe fires. Zero defaults to 10ms.
	Cooldown time.Duration
}

func (b BreakerOptions) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 10 * time.Millisecond
}

// Breaker states. The per-replica state lives in state.bstate, guarded by
// state.bmu (transitions are rare; a mutex keeps the trip/probe/fail-out
// races straightforward to reason about).
const (
	bkClosed int32 = iota
	bkOpen
	bkHalfOpen
)

// resCounters are the group's resilience counters, mirrored into the obs
// registry (when one is attached) under the replica.* names.
type resCounters struct {
	breakerTrips  atomic.Int64
	breakerProbes atomic.Int64
	hedgeLaunched atomic.Int64
	hedgeWins     atomic.Int64
}

// ResilienceStats is a snapshot of the group's breaker and hedging activity.
type ResilienceStats struct {
	BreakerTrips   int64 // fail-outs that tripped a closed breaker open
	BreakerProbes  int64 // half-open probes fired (each probe is a Recover)
	HedgesLaunched int64 // second read attempts launched after the hedge delay
	HedgeWins      int64 // hedged attempts that answered before the first
	OpenBreakers   int64 // breakers currently open or half-open
}

// Resilience returns the group's breaker/hedge counters.
func (g *Group) Resilience() ResilienceStats {
	return ResilienceStats{
		BreakerTrips:   g.res.breakerTrips.Load(),
		BreakerProbes:  g.res.breakerProbes.Load(),
		HedgesLaunched: g.res.hedgeLaunched.Load(),
		HedgeWins:      g.res.hedgeWins.Load(),
		OpenBreakers:   g.openBreakers.Load(),
	}
}

// bump increments an internal counter and its obs mirror.
func (g *Group) bump(c *atomic.Int64, name string) {
	c.Add(1)
	if reg := g.reg.Load(); reg != nil {
		reg.Counter(name).Add(1)
	}
}

// setOpenGauge publishes the open-breaker count to the obs registry.
func (g *Group) setOpenGauge() {
	if reg := g.reg.Load(); reg != nil {
		reg.Gauge("replica.breaker.open").Set(float64(g.openBreakers.Load()))
	}
}

// guardGo spawns a group-owned goroutine tracked by bgWg, refusing once the
// group is closed (Close waits for every goroutine spawned this way before
// tearing down the log and the copies). Reports whether fn was launched.
func (g *Group) guardGo(fn func()) bool {
	g.bgMu.Lock()
	if g.closed.Load() {
		g.bgMu.Unlock()
		return false
	}
	g.bgWg.Add(1)
	g.bgMu.Unlock()
	go func() {
		defer g.bgWg.Done()
		fn()
	}()
	return true
}

// crashMaybe consults the group's fault injector before a read attempt on
// replica i: a ReplicaCrash decision arms the replica to fail its next
// request, which the normal fail-out / breaker / hedge machinery then
// absorbs. Injection happens before the replica executes, so a crashed
// attempt has no side effects to undo.
func (g *Group) crashMaybe(i int) {
	if g.fault.Should(fault.ReplicaCrash) {
		g.replica(i).FailNext(1)
	}
}

// failOut removes replica i from the read rotation after a fault and, when
// the breaker is enabled, trips its breaker and schedules the half-open
// probe. Only a closed breaker trips (and counts); an open or half-open one
// already has a probe in flight.
func (g *Group) failOut(i int) {
	st := g.states[i]
	st.faults.Add(1)
	st.healthy.Store(false)
	if !g.breaker.Enabled {
		return
	}
	st.bmu.Lock()
	trip := st.bstate == bkClosed
	if trip {
		st.bstate = bkOpen
	}
	st.bmu.Unlock()
	if trip {
		g.openBreakers.Add(1)
		g.bump(&g.res.breakerTrips, "replica.breaker.trips")
		g.setOpenGauge()
		g.scheduleProbe(i)
	}
}

func (g *Group) scheduleProbe(i int) {
	g.guardGo(func() { g.probe(i) })
}

// errProbeLost marks a probe whose Recover succeeded but lost a race with a
// concurrent fail-out: the replica is unhealthy again, so the breaker stays
// open and another probe is scheduled.
var errProbeLost = errors.New("replica: probe raced a concurrent fault")

// probe waits out the cooldown, then half-opens the breaker and attempts a
// Recover. Recover replays the exact log suffix the replica missed, so a
// successful probe closes the breaker on a byte-identical copy. Failure
// reopens and reschedules.
func (g *Group) probe(i int) {
	t := time.NewTimer(g.breaker.cooldown())
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.stop:
		return
	}
	st := g.states[i]
	st.bmu.Lock()
	st.bstate = bkHalfOpen
	st.bmu.Unlock()
	g.bump(&g.res.breakerProbes, "replica.breaker.probes")
	err := g.Recover(i)
	st.bmu.Lock()
	if err == nil && !st.healthy.Load() {
		err = errProbeLost
	}
	if err != nil {
		st.bstate = bkOpen
	} else {
		st.bstate = bkClosed
	}
	st.bmu.Unlock()
	if err != nil {
		g.scheduleProbe(i)
		return
	}
	g.openBreakers.Add(-1)
	g.setOpenGauge()
}

// attempt is the outcome of one replica read attempt (single or batch).
type attempt struct {
	res     query.Result
	vals    []any
	errs    []error
	at      int64 // the replica's applied LSN when the attempt started
	hedged  bool  // this was the delayed second attempt
	faulted bool  // the attempt died to an injected fault (replica failed out)
}

// pickExcept is pick, excluding one replica (the hedge's first lane).
func (g *Group) pickExcept(min int64, except int) int {
	n := len(g.states)
	start := int(g.rr.Add(1) % uint64(n))
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if i == except {
			continue
		}
		if g.states[i].healthy.Load() && g.states[i].applied.Load() >= min {
			return i
		}
	}
	return -1
}

// readLoop drives the pick / hedge / failover loop shared by read and
// readBatch. run executes one attempt against replica i; ok=false means no
// replica could serve (the caller falls back to the primary).
func (g *Group) readLoop(min int64, run func(i int, hedged bool) attempt) (attempt, bool) {
	for {
		i := g.pick(min)
		if i < 0 {
			return attempt{}, false
		}
		if g.hedge <= 0 {
			a := run(i, false)
			if a.faulted {
				continue
			}
			return a, true
		}
		if a, ok := g.hedgedAttempt(i, min, run); ok {
			return a, true
		}
		// Every lane faulted: pick again over whatever copies survive.
	}
}

// hedgedAttempt runs the first attempt on replica i in the background; if it
// has not answered within the hedge delay, a second attempt launches on a
// different qualifying replica. The first non-faulted answer wins — the
// loser finishes in the background (its result is discarded, its fail-out
// bookkeeping still counts). ok=false means every launched lane faulted.
func (g *Group) hedgedAttempt(i int, min int64, run func(int, bool) attempt) (attempt, bool) {
	ch := make(chan attempt, 2)
	if !g.guardGo(func() { ch <- run(i, false) }) {
		// Shutting down: degrade to the plain in-line path.
		a := run(i, false)
		return a, !a.faulted
	}
	pending := 1
	timer := time.NewTimer(g.hedge)
	defer timer.Stop()
	for pending > 0 {
		select {
		case a := <-ch:
			pending--
			if !a.faulted {
				if a.hedged {
					g.bump(&g.res.hedgeWins, "replica.hedge.wins")
				}
				return a, true
			}
		case <-timer.C:
			j := g.pickExcept(min, i)
			if j < 0 {
				continue // no second lane available; keep waiting on the first
			}
			if g.guardGo(func() { ch <- run(j, true) }) {
				pending++
				g.bump(&g.res.hedgeLaunched, "replica.hedge.launched")
			}
		}
	}
	return attempt{}, false
}
