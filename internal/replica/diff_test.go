package replica_test

// The randomized differential harness: seeded random query/insert workloads
// over every evaluation app, executed against a single server, a sharded
// cluster, and a sharded cluster whose shards are replica groups — with
// replica failures injected and recovered mid-workload — asserting
// byte-identical results (values and error text) op by op.
//
// Seeds: -seed N pins the workload; with no flag the ASYNCQ_SEED
// environment variable is used (the CI race job fixes it there), and with
// neither the seed comes from the clock and is logged, so any failure
// reproduces with -seed.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"repro/internal/query"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

var seedFlag = flag.Int64("seed", 0, "randomized differential workload seed (0: ASYNCQ_SEED env, else time-based)")

// workloadSeed resolves and logs the suite's seed.
func workloadSeed(t *testing.T) int64 {
	seed := apps.SeedFromEnv(*seedFlag)
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("workload seed %d (reproduce with: go test -run %s -seed %d ./internal/replica/)", seed, t.Name(), seed)
	return seed
}

// fmtOut renders one execution outcome byte-comparably.
func fmtOut(v any, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok: " + interp.Format(v)
}

// traceTracer returns a live tracer when ASYNCQ_TRACE is set, so the
// differential workload runs with the whole span machinery hot — the results
// must stay byte-identical, pinning that tracing is passive. With the
// variable unset it returns nil: nil spans thread through the same code
// paths for free. The cleanup asserts no span leaked open.
func traceTracer(t *testing.T) *obs.Tracer {
	if os.Getenv("ASYNCQ_TRACE") == "" {
		return nil
	}
	tr := obs.NewTracer(nil)
	t.Cleanup(func() {
		if open := tr.Open(); open != 0 {
			t.Errorf("ASYNCQ_TRACE: %d of %d spans left open", open, tr.Started())
		}
	})
	return tr
}

// cluster is one execution backend under differential test.
type cluster struct {
	name      string
	exec      func(sql string, args []any) (any, error)
	execBatch func(sql string, argSets [][]any) ([]any, []error)
}

// TestRandomizedDifferentialAllApps is the harness entry point: for every
// evaluation app it loads one reference server, partitions a 3-shard router
// and a 3-shard × (1 primary + 2 replicas) router from it, and drives all
// three with the same seeded random workload in four chunks. Between chunks
// replicas are killed and recovered; chunk generation re-samples the
// (deterministically) mutated reference, so reads chase the workload's own
// inserts across shards and replicas.
func TestRandomizedDifferentialAllApps(t *testing.T) {
	seed := workloadSeed(t)
	nOps := 360
	if testing.Short() {
		nOps = 120 // short-mode cap: keep `go test -short ./...` fast
	}
	const shards = 3
	for ai, app := range apps.All() {
		app, ai := app, ai
		t.Run(app.Name, func(t *testing.T) {
			ref := server.New(server.SYS1(), 0)
			t.Cleanup(ref.Close)
			if err := app.Setup(ref, apps.SeededRand()); err != nil {
				t.Fatalf("setup: %v", err)
			}
			newRouter := func(replicas int) *shard.Router {
				rt := shard.New(server.SYS1(), 0, shard.Options{
					Shards: shards, Keys: app.ShardKeys, Replicas: replicas,
				})
				t.Cleanup(rt.Close)
				if err := rt.LoadFrom(ref); err != nil {
					t.Fatalf("load: %v", err)
				}
				return rt
			}
			sharded := newRouter(0)
			replicated := newRouter(2)
			groups := replicated.Groups()
			if groups == nil {
				t.Fatal("replicated router reports no groups")
			}

			// Each op gets a root span when ASYNCQ_TRACE is set; with tr nil
			// the Start/End pair is a pair of nil checks and ExecSpan(nil, …)
			// is exactly Exec.
			tr := traceTracer(t)
			traced := func(rt *shard.Router) cluster {
				return cluster{"",
					func(sql string, args []any) (any, error) {
						sp := tr.Start("request")
						defer sp.End()
						return rt.Exec(query.Req("w", sql, args).WithSpan(sp)).Pair()
					},
					func(sql string, argSets [][]any) ([]any, []error) {
						sp := tr.Start("request")
						defer sp.End()
						return rt.ExecBatch(query.BatchReq("w", sql, argSets).WithSpan(sp)).Pair()
					}}
			}
			shardedC, replicatedC := traced(sharded), traced(replicated)
			shardedC.name, replicatedC.name = "sharded", "sharded+replicated"
			clusters := []cluster{shardedC, replicatedC}

			rng := rand.New(rand.NewSource(seed + int64(ai)*1_000_003))
			opNo := 0
			runChunk := func(label string, n int) {
				t.Helper()
				// Generate against the current reference state: after the
				// first chunk the samples chase rows this workload inserted.
				ops := apps.RandomWorkload(ref, n, rng)
				for _, op := range ops {
					opNo++
					if op.Batch() {
						wantVals, wantErrs := ref.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets)).Pair()
						for _, c := range clusters {
							gotVals, gotErrs := c.execBatch(op.SQL, op.ArgSets)
							for j := range op.ArgSets {
								want := fmtOut(wantVals[j], wantErrs[j])
								got := fmtOut(gotVals[j], gotErrs[j])
								if want != got {
									t.Fatalf("seed %d op %d (%s) %q binding %d:\n  %s: %s\n  single:  %s",
										seed, opNo, label, op.SQL, j, c.name, got, want)
								}
							}
						}
						continue
					}
					wantV, wantErr := ref.Exec(query.Req("w", op.SQL, op.ArgSets[0])).Pair()
					for _, c := range clusters {
						gotV, gotErr := c.exec(op.SQL, op.ArgSets[0])
						want, got := fmtOut(wantV, wantErr), fmtOut(gotV, gotErr)
						if want != got {
							t.Fatalf("seed %d op %d (%s) %q:\n  %s: %s\n  single:  %s",
								seed, opNo, label, op.SQL, c.name, got, want)
						}
					}
				}
			}

			chunk := nOps / 4
			runChunk("healthy", chunk)

			// Kill both replicas of every group: the next requests fault them
			// out mid-workload and reads fail over (ultimately to primaries).
			for _, g := range groups {
				for _, rep := range g.Replicas() {
					rep.FailNext(1)
				}
			}
			runChunk("replicas failing", chunk)

			// Recover everything — backlogs replay — then run degraded again
			// with shard 0's replicas administratively failed out.
			for _, g := range groups {
				for i := range g.Replicas() {
					if err := g.Recover(i); err != nil {
						t.Fatalf("recover: %v", err)
					}
				}
			}
			for i := range groups[0].Replicas() {
				groups[0].FailOut(i)
			}
			runChunk("shard 0 on primary only", chunk)

			for i := range groups[0].Replicas() {
				if err := groups[0].Recover(i); err != nil {
					t.Fatalf("rejoin: %v", err)
				}
			}
			runChunk("all rejoined", nOps-3*chunk)

			// The failure schedule really was exercised.
			var faults int64
			for _, g := range groups {
				for _, f := range g.Faults() {
					faults += f
				}
			}
			if faults == 0 {
				t.Fatalf("seed %d: no injected fault was consumed; failover untested", seed)
			}
			for _, g := range groups {
				for i, h := range g.Healthy() {
					if !h {
						t.Fatalf("replica %d still out of rotation at workload end", i)
					}
				}
			}
		})
	}
}

// TestRandomWorkloadIsDeterministic pins the generator's only contract the
// differential test cannot check itself: the same seed over the same loaded
// reference yields the same ops.
func TestRandomWorkloadIsDeterministic(t *testing.T) {
	gen := func() []apps.WorkloadOp {
		ref := server.New(server.SYS1(), 0)
		defer ref.Close()
		app := apps.RUBiS()
		if err := app.Setup(ref, apps.SeededRand()); err != nil {
			t.Fatal(err)
		}
		return apps.RandomWorkload(ref, 50, rand.New(rand.NewSource(42)))
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SQL != b[i].SQL || fmt.Sprint(a[i].ArgSets) != fmt.Sprint(b[i].ArgSets) {
			t.Fatalf("op %d differs:\n  %v\n  %v", i, a[i], b[i])
		}
	}
}

// TestDifferentialPrimaryCrashRecovery drives the replicated cluster with the
// seeded workload and kills every shard's primary between chunks — first on a
// base-snapshot-only log, then again after a mid-log checkpoint so restart
// replays snapshot + suffix. Restart rebuilds each primary from its WAL;
// byte-identity with the single reference server across the crash proves no
// acknowledged write was lost.
func TestDifferentialPrimaryCrashRecovery(t *testing.T) {
	seed := workloadSeed(t)
	nOps := 240
	if testing.Short() {
		nOps = 96
	}
	const shards = 3
	for ai, app := range apps.All() {
		app, ai := app, ai
		t.Run(app.Name, func(t *testing.T) {
			ref := server.New(server.SYS1(), 0)
			t.Cleanup(ref.Close)
			if err := app.Setup(ref, apps.SeededRand()); err != nil {
				t.Fatalf("setup: %v", err)
			}
			rt := shard.New(server.SYS1(), 0, shard.Options{
				Shards: shards, Keys: app.ShardKeys, Replicas: 1,
			})
			t.Cleanup(rt.Close)
			if err := rt.LoadFrom(ref); err != nil {
				t.Fatalf("load: %v", err)
			}
			groups := rt.Groups()
			if groups == nil {
				t.Fatal("router reports no groups")
			}

			rng := rand.New(rand.NewSource(seed + 7_777_777 + int64(ai)*1_000_003))
			opNo := 0
			runChunk := func(label string, n int) {
				t.Helper()
				ops := apps.RandomWorkload(ref, n, rng)
				for _, op := range ops {
					opNo++
					if op.Batch() {
						wantVals, wantErrs := ref.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets)).Pair()
						gotVals, gotErrs := rt.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets)).Pair()
						for j := range op.ArgSets {
							want := fmtOut(wantVals[j], wantErrs[j])
							got := fmtOut(gotVals[j], gotErrs[j])
							if want != got {
								t.Fatalf("seed %d op %d (%s) %q binding %d:\n  cluster: %s\n  single:  %s",
									seed, opNo, label, op.SQL, j, got, want)
							}
						}
						continue
					}
					wantV, wantErr := ref.Exec(query.Req("w", op.SQL, op.ArgSets[0])).Pair()
					gotV, gotErr := rt.Exec(query.Req("w", op.SQL, op.ArgSets[0])).Pair()
					want, got := fmtOut(wantV, wantErr), fmtOut(gotV, gotErr)
					if want != got {
						t.Fatalf("seed %d op %d (%s) %q:\n  cluster: %s\n  single:  %s",
							seed, opNo, label, op.SQL, got, want)
					}
				}
			}

			crashRestartAll := func(label string) {
				t.Helper()
				for i, g := range groups {
					old := g.Primary()
					g.CrashPrimary()
					if !g.PrimaryDown() {
						t.Fatalf("%s: shard %d primary should be down", label, i)
					}
					if err := g.RestartPrimary(); err != nil {
						t.Fatalf("%s: restart shard %d: %v", label, i, err)
					}
					if g.PrimaryDown() || g.Primary() == old {
						t.Fatalf("%s: shard %d primary was not rebuilt", label, i)
					}
				}
			}

			chunk := nOps / 4
			runChunk("healthy", chunk)
			// Base-snapshot restart: replay = snapshot(LSN 0) + full log.
			crashRestartAll("first crash")
			runChunk("after crash+restart", chunk)
			// Checkpoint mid-log, then crash: replay = snapshot(mid) + suffix.
			for i, g := range groups {
				if err := g.Checkpoint(); err != nil {
					t.Fatalf("checkpoint shard %d: %v", i, err)
				}
			}
			runChunk("after checkpoint", chunk)
			crashRestartAll("post-checkpoint crash")
			runChunk("after second restart", nOps-3*chunk)

			// The log really carried writes across both crashes.
			for i, g := range groups {
				st := g.WALStats()
				if st.DurableLSN == 0 || st.Syncs == 0 {
					t.Fatalf("shard %d: workload never exercised the WAL: %+v", i, st)
				}
			}
		})
	}
}

// firstNonNil is firstErr for test use.
func firstNonNil(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runStalenessDifferential drives one async replica group with the seeded
// workload while its appliers are frozen at chunk boundaries, and checks
// every read against a checker server that lazily replays the acknowledged
// write log exactly to the LSN the read was served at: each read must equal
// that prefix-consistent single-server state, be monotonic, and respect the
// consistency contract (bound / session tokens).
func runStalenessDifferential(t *testing.T, cons replica.Consistency, bound int64, nSessions int) {
	seed := workloadSeed(t)
	nOps := 300
	if testing.Short() {
		nOps = 120
	}
	app := apps.RUBiS()
	ref := server.New(server.SYS1(), 0)
	t.Cleanup(ref.Close)
	if err := app.Setup(ref, apps.SeededRand()); err != nil {
		t.Fatalf("setup: %v", err)
	}

	g := replica.NewGroup(server.SYS1(), 0, replica.Options{
		Replicas: 2, Async: true, Consistency: cons, Bound: bound,
	})
	t.Cleanup(g.Close)
	if err := wal.Capture(ref.Catalog(), 0).RestoreTo(g); err != nil {
		t.Fatalf("load group: %v", err)
	}
	checker := server.New(server.SYS1(), 0)
	t.Cleanup(checker.Close)
	if err := wal.Capture(ref.Catalog(), 0).RestoreTo(checker); err != nil {
		t.Fatalf("load checker: %v", err)
	}

	rng := rand.New(rand.NewSource(seed + 31_337))
	sessions := make([]*replica.Session, nSessions)
	for i := range sessions {
		sessions[i] = g.NewSession()
	}

	checkerLSN := int64(0)
	advance := func(to int64) {
		t.Helper()
		if to <= checkerLSN {
			return
		}
		recs, ok := g.Log().RecordsAfter(checkerLSN)
		if !ok {
			t.Fatalf("log truncated past checker LSN %d", checkerLSN)
		}
		for _, r := range recs {
			if r.LSN > to {
				break
			}
			// The log holds only acknowledged bindings: replay cannot fail.
			if _, errs := checker.ExecBatch(query.BatchReq("c", r.SQL, r.ArgSets)).Pair(); firstNonNil(errs) != nil {
				t.Fatalf("checker replay of LSN %d: %v", r.LSN, firstNonNil(errs))
			}
			checkerLSN = r.LSN
		}
		if checkerLSN != to {
			t.Fatalf("checker cannot reach served LSN %d (stuck at %d)", to, checkerLSN)
		}
	}
	// stagger re-pins the appliers: replica 0 exactly at the acknowledged
	// frontier, replica 1 a random in-bound distance behind it.
	stagger := func() {
		commit := g.CommitLSN()
		g.HoldApply(0, false)
		g.WaitApplied(0, commit)
		g.HoldApply(0, true)
		lag := rng.Int63n(bound + 1)
		target := commit - lag
		if target < 0 {
			target = 0
		}
		g.HoldApply(1, false)
		g.WaitApplied(1, target)
		g.HoldApply(1, true)
	}
	isInsert := func(sql string) bool {
		return strings.HasPrefix(strings.ToLower(strings.TrimSpace(sql)), "insert")
	}

	g.HoldApply(0, true)
	g.HoldApply(1, true)
	opNo, staleServed, lastAt := 0, 0, int64(0)
	for done := 0; done < nOps; {
		n := 30
		if nOps-done < n {
			n = nOps - done
		}
		done += n
		stagger()
		for _, op := range apps.RandomWorkload(ref, n, rng) {
			opNo++
			sess := sessions[rng.Intn(len(sessions))]
			if isInsert(op.SQL) {
				// Writes land on the primary — always the newest state, so
				// they must match the reference byte for byte.
				if op.Batch() {
					wantVals, wantErrs := ref.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets)).Pair()
					gotVals, gotErrs := g.ExecBatch(query.BatchReq("w", op.SQL, op.ArgSets).WithSession(sess)).Pair()
					for j := range op.ArgSets {
						if want, got := fmtOut(wantVals[j], wantErrs[j]), fmtOut(gotVals[j], gotErrs[j]); want != got {
							t.Fatalf("seed %d op %d write %q binding %d:\n  group:  %s\n  single: %s",
								seed, opNo, op.SQL, j, got, want)
						}
					}
				} else {
					wantV, wantErr := ref.Exec(query.Req("w", op.SQL, op.ArgSets[0])).Pair()
					gotV, gotErr := g.Exec(query.Req("w", op.SQL, op.ArgSets[0]).WithSession(sess)).Pair()
					if want, got := fmtOut(wantV, wantErr), fmtOut(gotV, gotErr); want != got {
						t.Fatalf("seed %d op %d write %q:\n  group:  %s\n  single: %s",
							seed, opNo, op.SQL, got, want)
					}
				}
				continue
			}
			commit := g.CommitLSN()
			var gotVals []any
			var gotErrs []error
			if op.Batch() {
				gotVals, gotErrs = g.ExecBatch(query.BatchReq("q", op.SQL, op.ArgSets).WithSession(sess)).Pair()
			} else {
				v, err := g.Exec(query.Req("q", op.SQL, op.ArgSets[0]).WithSession(sess)).Pair()
				gotVals, gotErrs = []any{v}, []error{err}
			}
			at := sess.LastServedLSN()
			if at < 0 || at > commit {
				t.Fatalf("seed %d op %d: served LSN %d outside [0, %d]", seed, opNo, at, commit)
			}
			if at < lastAt {
				// Group-wide floor: weaker than per-session monotonicity, so
				// it must hold across sessions too.
				t.Fatalf("seed %d op %d: reads moved backwards (%d after %d)", seed, opNo, at, lastAt)
			}
			lastAt = at
			if cons == replica.BoundedStaleness && at < commit-bound {
				t.Fatalf("seed %d op %d: served LSN %d violates bound (commit %d, bound %d)",
					seed, opNo, at, commit, bound)
			}
			if cons == replica.ReadYourWrites && at < sess.LastWriteLSN() {
				t.Fatalf("seed %d op %d: served LSN %d behind session write %d",
					seed, opNo, at, sess.LastWriteLSN())
			}
			if at < commit {
				staleServed++
			}
			// The read must equal the single-server state at exactly the
			// prefix it was served from.
			advance(at)
			if op.Batch() {
				wantVals, wantErrs := checker.ExecBatch(query.BatchReq("q", op.SQL, op.ArgSets)).Pair()
				for j := range op.ArgSets {
					if want, got := fmtOut(wantVals[j], wantErrs[j]), fmtOut(gotVals[j], gotErrs[j]); want != got {
						t.Fatalf("seed %d op %d read %q binding %d at LSN %d:\n  group:   %s\n  checker: %s",
							seed, opNo, op.SQL, j, at, got, want)
					}
				}
			} else {
				wantV, wantErr := checker.Exec(query.Req("q", op.SQL, op.ArgSets[0])).Pair()
				if want, got := fmtOut(wantV, wantErr), fmtOut(gotVals[0], gotErrs[0]); want != got {
					t.Fatalf("seed %d op %d read %q at LSN %d:\n  group:   %s\n  checker: %s",
						seed, opNo, op.SQL, at, got, want)
				}
			}
		}
	}
	var replicaReads int64
	for _, c := range g.ReadCounts() {
		replicaReads += c
	}
	if replicaReads == 0 {
		t.Fatalf("seed %d: no read rode a replica; staleness untested", seed)
	}
	if staleServed == 0 {
		t.Fatalf("seed %d: every read saw the newest state; staleness untested", seed)
	}
}

// TestDifferentialBoundedStaleness: async replicas, reads at most 6
// acknowledged writes behind, every read a prefix-consistent state.
func TestDifferentialBoundedStaleness(t *testing.T) {
	runStalenessDifferential(t, replica.BoundedStaleness, 6, 1)
}

// TestDifferentialReadYourWrites: async replicas, three interleaved sessions,
// every read a prefix-consistent state covering the session's own writes.
func TestDifferentialReadYourWrites(t *testing.T) {
	runStalenessDifferential(t, replica.ReadYourWrites, 4, 3)
}
