package replica_test

// The randomized differential harness: seeded random query/insert workloads
// over every evaluation app, executed against a single server, a sharded
// cluster, and a sharded cluster whose shards are replica groups — with
// replica failures injected and recovered mid-workload — asserting
// byte-identical results (values and error text) op by op.
//
// Seeds: -seed N pins the workload; with no flag the ASYNCQ_SEED
// environment variable is used (the CI race job fixes it there), and with
// neither the seed comes from the clock and is logged, so any failure
// reproduces with -seed.

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/server"
	"repro/internal/shard"
)

var seedFlag = flag.Int64("seed", 0, "randomized differential workload seed (0: ASYNCQ_SEED env, else time-based)")

// workloadSeed resolves and logs the suite's seed.
func workloadSeed(t *testing.T) int64 {
	seed := apps.SeedFromEnv(*seedFlag)
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("workload seed %d (reproduce with: go test -run %s -seed %d ./internal/replica/)", seed, t.Name(), seed)
	return seed
}

// fmtOut renders one execution outcome byte-comparably.
func fmtOut(v any, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok: " + interp.Format(v)
}

// cluster is one execution backend under differential test.
type cluster struct {
	name      string
	exec      func(sql string, args []any) (any, error)
	execBatch func(sql string, argSets [][]any) ([]any, []error)
}

// TestRandomizedDifferentialAllApps is the harness entry point: for every
// evaluation app it loads one reference server, partitions a 3-shard router
// and a 3-shard × (1 primary + 2 replicas) router from it, and drives all
// three with the same seeded random workload in four chunks. Between chunks
// replicas are killed and recovered; chunk generation re-samples the
// (deterministically) mutated reference, so reads chase the workload's own
// inserts across shards and replicas.
func TestRandomizedDifferentialAllApps(t *testing.T) {
	seed := workloadSeed(t)
	nOps := 360
	if testing.Short() {
		nOps = 120 // short-mode cap: keep `go test -short ./...` fast
	}
	const shards = 3
	for ai, app := range apps.All() {
		app, ai := app, ai
		t.Run(app.Name, func(t *testing.T) {
			ref := server.New(server.SYS1(), 0)
			t.Cleanup(ref.Close)
			if err := app.Setup(ref, apps.SeededRand()); err != nil {
				t.Fatalf("setup: %v", err)
			}
			newRouter := func(replicas int) *shard.Router {
				rt := shard.New(server.SYS1(), 0, shard.Options{
					Shards: shards, Keys: app.ShardKeys, Replicas: replicas,
				})
				t.Cleanup(rt.Close)
				if err := rt.LoadFrom(ref); err != nil {
					t.Fatalf("load: %v", err)
				}
				return rt
			}
			sharded := newRouter(0)
			replicated := newRouter(2)
			groups := replicated.Groups()
			if groups == nil {
				t.Fatal("replicated router reports no groups")
			}

			clusters := []cluster{
				{"sharded", func(sql string, args []any) (any, error) { return sharded.Exec("w", sql, args) },
					func(sql string, argSets [][]any) ([]any, []error) { return sharded.ExecBatch("w", sql, argSets) }},
				{"sharded+replicated", func(sql string, args []any) (any, error) { return replicated.Exec("w", sql, args) },
					func(sql string, argSets [][]any) ([]any, []error) { return replicated.ExecBatch("w", sql, argSets) }},
			}

			rng := rand.New(rand.NewSource(seed + int64(ai)*1_000_003))
			opNo := 0
			runChunk := func(label string, n int) {
				t.Helper()
				// Generate against the current reference state: after the
				// first chunk the samples chase rows this workload inserted.
				ops := apps.RandomWorkload(ref, n, rng)
				for _, op := range ops {
					opNo++
					if op.Batch() {
						wantVals, wantErrs := ref.ExecBatch("w", op.SQL, op.ArgSets)
						for _, c := range clusters {
							gotVals, gotErrs := c.execBatch(op.SQL, op.ArgSets)
							for j := range op.ArgSets {
								want := fmtOut(wantVals[j], wantErrs[j])
								got := fmtOut(gotVals[j], gotErrs[j])
								if want != got {
									t.Fatalf("seed %d op %d (%s) %q binding %d:\n  %s: %s\n  single:  %s",
										seed, opNo, label, op.SQL, j, c.name, got, want)
								}
							}
						}
						continue
					}
					wantV, wantErr := ref.Exec("w", op.SQL, op.ArgSets[0])
					for _, c := range clusters {
						gotV, gotErr := c.exec(op.SQL, op.ArgSets[0])
						want, got := fmtOut(wantV, wantErr), fmtOut(gotV, gotErr)
						if want != got {
							t.Fatalf("seed %d op %d (%s) %q:\n  %s: %s\n  single:  %s",
								seed, opNo, label, op.SQL, c.name, got, want)
						}
					}
				}
			}

			chunk := nOps / 4
			runChunk("healthy", chunk)

			// Kill both replicas of every group: the next requests fault them
			// out mid-workload and reads fail over (ultimately to primaries).
			for _, g := range groups {
				for _, rep := range g.Replicas() {
					rep.FailNext(1)
				}
			}
			runChunk("replicas failing", chunk)

			// Recover everything — backlogs replay — then run degraded again
			// with shard 0's replicas administratively failed out.
			for _, g := range groups {
				for i := range g.Replicas() {
					if err := g.Recover(i); err != nil {
						t.Fatalf("recover: %v", err)
					}
				}
			}
			for i := range groups[0].Replicas() {
				groups[0].FailOut(i)
			}
			runChunk("shard 0 on primary only", chunk)

			for i := range groups[0].Replicas() {
				if err := groups[0].Recover(i); err != nil {
					t.Fatalf("rejoin: %v", err)
				}
			}
			runChunk("all rejoined", nOps-3*chunk)

			// The failure schedule really was exercised.
			var faults int64
			for _, g := range groups {
				for _, f := range g.Faults() {
					faults += f
				}
			}
			if faults == 0 {
				t.Fatalf("seed %d: no injected fault was consumed; failover untested", seed)
			}
			for _, g := range groups {
				for i, h := range g.Healthy() {
					if !h {
						t.Fatalf("replica %d still out of rotation at workload end", i)
					}
				}
			}
		})
	}
}

// TestRandomWorkloadIsDeterministic pins the generator's only contract the
// differential test cannot check itself: the same seed over the same loaded
// reference yields the same ops.
func TestRandomWorkloadIsDeterministic(t *testing.T) {
	gen := func() []apps.WorkloadOp {
		ref := server.New(server.SYS1(), 0)
		defer ref.Close()
		app := apps.RUBiS()
		if err := app.Setup(ref, apps.SeededRand()); err != nil {
			t.Fatal(err)
		}
		return apps.RandomWorkload(ref, 50, rand.New(rand.NewSource(42)))
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SQL != b[i].SQL || fmt.Sprint(a[i].ArgSets) != fmt.Sprint(b[i].ArgSets) {
			t.Fatalf("op %d differs:\n  %v\n  %v", i, a[i], b[i])
		}
	}
}
