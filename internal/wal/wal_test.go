package wal_test

import (
	"fmt"
	"repro/internal/query"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// newKVServer builds a server with a small indexed kv table (the fixture
// snapshot/replay tests restore and compare against).
func newKVServer(t *testing.T, rows int) *server.Server {
	t.Helper()
	s := server.New(server.SYS1(), 0)
	t.Cleanup(s.Close)
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := s.CreateTable("kv", schema, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := s.InsertRow("kv", []any{int64(i), fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.FinishLoad()
	if err := s.AddIndex("kv", "id", true); err != nil {
		t.Fatal(err)
	}
	return s
}

// dump renders a server's kv table byte-comparably via the query path.
func dump(t *testing.T, s *server.Server, n int) string {
	t.Helper()
	out := ""
	for i := 0; i < n; i++ {
		v, err := s.Exec(query.Req("t", "SELECT val FROM kv WHERE id = ?", []any{int64(i)})).Pair()
		out += fmt.Sprintf("%d:%v/%v\n", i, v, err)
	}
	return out
}

func TestGroupCommitAmortizesSyncs(t *testing.T) {
	// Hold the first fsync open until every append is buffered, so the
	// stragglers all share the second one — the amortization is then exact
	// instead of depending on scheduler timing.
	gate := &gateSyncer{entered: make(chan struct{}), release: make(chan struct{})}
	l := wal.New(wal.Options{Mode: wal.Group, Syncer: gate})
	defer l.Close()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Commit(l.Append("w", "INSERT", [][]any{{int64(i)}}))
		}(i)
	}
	<-gate.entered
	for l.LastLSN() != n {
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	wg.Wait()
	st := l.Stats()
	if st.Appends != n || st.SyncedRecords != n {
		t.Fatalf("want %d appended+synced, got %+v", n, st)
	}
	if st.DurableLSN != n {
		t.Fatalf("durable LSN = %d, want %d", st.DurableLSN, n)
	}
	if st.Syncs > 2 {
		t.Fatalf("group commit did not amortize: %d syncs for %d records", st.Syncs, n)
	}
	if st.AvgGroup() <= 1 {
		t.Fatalf("AvgGroup = %v, want > 1", st.AvgGroup())
	}
}

func TestStrictModeSyncsPerRecord(t *testing.T) {
	l := wal.New(wal.Options{Mode: wal.Strict})
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Commit(l.Append("w", "INSERT", [][]any{{int64(i)}}))
	}
	st := l.Stats()
	if st.Syncs != 10 {
		t.Fatalf("strict mode: want 10 syncs, got %d", st.Syncs)
	}
}

// gateSyncer blocks the flusher inside its first fsync until released, so
// the test controls exactly which records are durable at crash time.
type gateSyncer struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateSyncer) Sync(bytes int) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
}

func TestCrashKeepsAcknowledgedUnderGroup(t *testing.T) {
	l := wal.New(wal.Options{Mode: wal.Group})
	defer l.Close()
	for i := 0; i < 5; i++ {
		l.Commit(l.Append("w", "INSERT", [][]any{{int64(i)}}))
	}
	l.Crash()
	if got := l.DurableLSN(); got != 5 {
		t.Fatalf("acknowledged writes lost: durable = %d, want 5", got)
	}
}

func TestRecordRoundTripPreservesTypes(t *testing.T) {
	r := wal.Record{LSN: 7, Name: "w", SQL: "INSERT INTO kv VALUES (?, ?)",
		ArgSets: [][]any{{int64(42), "hello"}, {int64(-1), ""}}}
	b, err := wal.EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wal.DecodeRecord(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", r) {
		t.Fatalf("round trip mismatch:\n  %#v\n  %#v", got, r)
	}
}

func TestSnapshotRestoreIsByteIdentical(t *testing.T) {
	src := newKVServer(t, 40)
	if _, err := src.Exec(query.Req("t", "INSERT INTO kv VALUES (?, ?)", []any{int64(40), "v40"})).Pair(); err != nil {
		t.Fatal(err)
	}
	snap := wal.Capture(src.Catalog(), 1)

	dst := server.New(server.SYS1(), 0)
	t.Cleanup(dst.Close)
	if err := snap.RestoreTo(dst); err != nil {
		t.Fatal(err)
	}
	if want, got := dump(t, src, 41), dump(t, dst, 41); want != got {
		t.Fatalf("restored state differs:\n%s\nvs\n%s", want, got)
	}
	// rid identity: the unique index must answer through the same pages.
	for _, s := range []*server.Server{src, dst} {
		if n, ok := s.IndexKeyCount("kv", "id", int64(40)); !ok || n != 1 {
			t.Fatalf("index after restore: n=%d ok=%v", n, ok)
		}
	}
}

func TestReplayAfterSnapshotRebuildsState(t *testing.T) {
	src := newKVServer(t, 10)
	l := wal.New(wal.Options{})
	defer l.Close()
	if err := l.WriteSnapshot(wal.Capture(src.Catalog(), 0)); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if _, err := src.Exec(query.Req("t", "INSERT INTO kv VALUES (?, ?)", []any{int64(i), fmt.Sprintf("v%d", i)})).Pair(); err != nil {
			t.Fatal(err)
		}
		l.Commit(l.Append("w", "INSERT INTO kv VALUES (?, ?)", [][]any{{int64(i), fmt.Sprintf("v%d", i)}}))
	}

	dst := server.New(server.SYS1(), 0)
	t.Cleanup(dst.Close)
	snap := l.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot")
	}
	if err := snap.RestoreTo(dst); err != nil {
		t.Fatal(err)
	}
	recs, ok := l.RecordsAfter(snap.LSN)
	if !ok || len(recs) != 10 {
		t.Fatalf("records after snapshot: %d ok=%v", len(recs), ok)
	}
	if err := wal.Replay(dst, recs); err != nil {
		t.Fatal(err)
	}
	if want, got := dump(t, src, 20), dump(t, dst, 20); want != got {
		t.Fatalf("replayed state differs:\n%s\nvs\n%s", want, got)
	}
}

func TestCheckpointTruncatesAndInvalidatesOldTails(t *testing.T) {
	src := newKVServer(t, 5)
	l := wal.New(wal.Options{})
	defer l.Close()
	for i := 5; i < 15; i++ {
		l.Commit(l.Append("w", "INSERT INTO kv VALUES (?, ?)", [][]any{{int64(i), "x"}}))
	}
	l.SyncTo(l.LastLSN())
	if err := l.WriteSnapshot(wal.Capture(src.Catalog(), 8)); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.RecordsAfter(3); ok {
		t.Fatal("tail older than the checkpoint should be invalid")
	}
	recs, ok := l.RecordsAfter(8)
	if !ok || len(recs) != 2 {
		t.Fatalf("retained suffix: %d records, ok=%v (want 2, true)", len(recs), ok)
	}
	if l.TailStart() != 8 {
		t.Fatalf("TailStart = %d, want 8", l.TailStart())
	}
}

func TestReplayReportsInjectedFault(t *testing.T) {
	dst := newKVServer(t, 1)
	dst.FailNext(1)
	err := wal.Replay(dst, []wal.Record{{LSN: 1, Name: "w",
		SQL: "INSERT INTO kv VALUES (?, ?)", ArgSets: [][]any{{int64(99), "x"}}}})
	if err == nil || !server.IsFault(err) {
		t.Fatalf("want injected fault through replay, got %v", err)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	src := newKVServer(t, 3)

	st, err := wal.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := wal.New(wal.Options{Store: st})
	if err := l.WriteSnapshot(wal.Capture(src.Catalog(), 0)); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 8; i++ {
		l.Commit(l.Append("w", "INSERT INTO kv VALUES (?, ?)", [][]any{{int64(i), fmt.Sprintf("v%d", i)}}))
	}
	l.Close()

	st2, err := wal.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(wal.Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.DurableLSN() != 5 || l2.LastLSN() != 5 {
		t.Fatalf("reopened log: durable=%d last=%d, want 5/5", l2.DurableLSN(), l2.LastLSN())
	}
	snap := l2.Snapshot()
	if snap == nil {
		t.Fatal("snapshot lost across reopen")
	}
	dst := server.New(server.SYS1(), 0)
	t.Cleanup(dst.Close)
	if err := snap.RestoreTo(dst); err != nil {
		t.Fatal(err)
	}
	recs, ok := l2.RecordsAfter(snap.LSN)
	if !ok {
		t.Fatal("reopened tail invalid")
	}
	if err := wal.Replay(dst, recs); err != nil {
		t.Fatal(err)
	}
	// appending continues after the reopened tail
	if lsn := l2.Append("w", "INSERT INTO kv VALUES (?, ?)", [][]any{{int64(8), "v8"}}); lsn != 6 {
		t.Fatalf("post-reopen LSN = %d, want 6", lsn)
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want wal.Mode
	}{{"off", wal.Off}, {"group", wal.Group}, {"strict", wal.Strict}} {
		m, err := wal.ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Fatalf("Mode.String() = %q, want %q", m.String(), tc.in)
		}
	}
	if _, err := wal.ParseMode("bogus"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

func TestWaitRecordsAfterUnblocksOnAppend(t *testing.T) {
	l := wal.New(wal.Options{})
	defer l.Close()
	got := make(chan []wal.Record, 1)
	go func() {
		recs, ok, closed := l.WaitRecordsAfter(0)
		if !ok || closed {
			got <- nil
			return
		}
		got <- recs
	}()
	l.Commit(l.Append("w", "INSERT", [][]any{{int64(1)}}))
	recs := <-got
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("shipped records = %v", recs)
	}
}
