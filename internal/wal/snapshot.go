package wal

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/storage"
)

// Snapshot is a checkpoint: the full materialized state as of LSN. Tables
// are ordered by data extent — the order they were created in — and rows by
// row id, so restoring replays the original load exactly and every row
// lands on its original rid. That identity is what keeps the shard router's
// global-order bookkeeping valid across a crash.
type Snapshot struct {
	LSN    int64
	Tables []TableSnap
}

// TableSnap is one table's captured state.
type TableSnap struct {
	Name        string
	Cols        []storage.Column
	RowsPerPage int
	Extent      int
	Rows        [][]any
	Indexes     []IndexDef
}

// IndexDef is a captured index definition (rebuilt, not copied, on restore).
type IndexDef struct {
	Column string
	Unique bool
}

// Capture materializes a snapshot of cat as of lsn. The caller must
// guarantee no writes are in flight (internal/replica holds its group write
// lock) and that every record ≤ lsn is applied to cat.
func Capture(cat *storage.Catalog, lsn int64) *Snapshot {
	tables := cat.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Extent < tables[j].Extent })
	snap := &Snapshot{LSN: lsn}
	for _, t := range tables {
		ts := TableSnap{
			Name:        t.Name,
			Cols:        append([]storage.Column(nil), t.Schema.Cols...),
			RowsPerPage: t.RowsPerPage(),
			Extent:      t.Extent,
		}
		n := t.NumRows()
		ts.Rows = make([][]any, n)
		for rid := 0; rid < n; rid++ {
			ts.Rows[rid] = t.Row(rid)
		}
		for _, ix := range t.Indexes() {
			ts.Indexes = append(ts.Indexes, IndexDef{Column: ix.Column, Unique: ix.Unique})
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap
}

// Loader is the bulk-load surface a snapshot restores through —
// server.Server implements it. Tables are created in capture order (extent
// order), rows inserted in rid order, indexes added after FinishLoad, so
// the restored server is laid out like the original.
type Loader interface {
	CreateTable(name string, schema *storage.Schema, rowsPerPage int) error
	InsertRow(table string, row []any) error
	FinishLoad()
	AddIndex(table, column string, unique bool) error
}

// RestoreTo loads the snapshot into an empty server.
func (s *Snapshot) RestoreTo(l Loader) error {
	for _, ts := range s.Tables {
		if err := l.CreateTable(ts.Name, storage.NewSchema(ts.Cols...), ts.RowsPerPage); err != nil {
			return err
		}
		for _, row := range ts.Rows {
			if err := l.InsertRow(ts.Name, row); err != nil {
				return err
			}
		}
	}
	l.FinishLoad()
	for _, ts := range s.Tables {
		for _, ix := range ts.Indexes {
			if err := l.AddIndex(ts.Name, ix.Column, ix.Unique); err != nil {
				return err
			}
		}
	}
	return nil
}

// Execer is the statement surface replay drives — server.Server implements
// it via ExecBatch.
type Execer interface {
	ExecBatch(req query.BatchRequest) query.BatchResult
}

// Replay applies records in LSN order through e. Only acknowledged
// (successful) writes are logged, so any replay error means divergence or a
// transport fault — the first one aborts and is returned.
func Replay(e Execer, recs []Record) error {
	for _, r := range recs {
		br := e.ExecBatch(query.BatchReq(r.Name, r.SQL, r.ArgSets))
		for _, err := range br.Errs {
			if err != nil {
				return fmt.Errorf("wal: replay lsn %d: %w", r.LSN, err)
			}
		}
	}
	return nil
}

// wire encoding for FileStore snapshots: values tagged like records.

type wireTable struct {
	Name        string      `json:"name"`
	Cols        []wireCol   `json:"cols"`
	RowsPerPage int         `json:"rpp"`
	Extent      int         `json:"extent"`
	Rows        [][]wireVal `json:"rows"`
	Indexes     []IndexDef  `json:"indexes,omitempty"`
}

type wireCol struct {
	Name string `json:"name"`
	Int  bool   `json:"int"`
}

type wireSnapshot struct {
	LSN    int64       `json:"lsn"`
	Tables []wireTable `json:"tables"`
}

func (s *Snapshot) wire() (wireSnapshot, error) {
	w := wireSnapshot{LSN: s.LSN}
	for _, ts := range s.Tables {
		wt := wireTable{Name: ts.Name, RowsPerPage: ts.RowsPerPage, Extent: ts.Extent, Indexes: ts.Indexes}
		for _, c := range ts.Cols {
			wt.Cols = append(wt.Cols, wireCol{Name: c.Name, Int: c.Type == storage.TInt})
		}
		for _, row := range ts.Rows {
			vs, err := encodeVals(row)
			if err != nil {
				return w, err
			}
			wt.Rows = append(wt.Rows, vs)
		}
		w.Tables = append(w.Tables, wt)
	}
	return w, nil
}

func (w wireSnapshot) snapshot() (*Snapshot, error) {
	s := &Snapshot{LSN: w.LSN}
	for _, wt := range w.Tables {
		ts := TableSnap{Name: wt.Name, RowsPerPage: wt.RowsPerPage, Extent: wt.Extent, Indexes: wt.Indexes}
		for _, c := range wt.Cols {
			typ := storage.TString
			if c.Int {
				typ = storage.TInt
			}
			ts.Cols = append(ts.Cols, storage.Column{Name: c.Name, Type: typ})
		}
		for _, row := range wt.Rows {
			ts.Rows = append(ts.Rows, decodeVals(row))
		}
		s.Tables = append(s.Tables, ts)
	}
	return s, nil
}
