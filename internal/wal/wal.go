// Package wal is the per-shard write-ahead log: the durability layer under
// internal/replica and internal/server. Every committed write appends one
// LSN-stamped record; commit acknowledgement waits on an fsync whose cost is
// charged through the owning server's simulated disk (the Syncer hook), and
// concurrent commits share one fsync — group commit, the same amortization
// the paper's batched submission applies to network round trips.
//
// The log also powers recovery and replication:
//
//   - Snapshot + replay crash recovery: a checkpoint (Snapshot) plus the
//     durable record suffix rebuilds a crashed primary byte-identically —
//     row ids included, because the log is the total write order.
//   - Log shipping: asynchronous replicas tail the durable prefix
//     (WaitRecordsAfter) and apply behind the primary with bounded
//     staleness. Only durable records ship, so a crash can never leave a
//     replica ahead of the recovered primary.
//
// Crash() models the loss a real crash causes: the in-memory tail beyond
// the last fsync is dropped. Writes acknowledged under Group or Strict mode
// are always inside the durable prefix; writes acknowledged under Off mode
// may be lost — that is exactly the tradeoff FigDurability measures.
package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// Mode selects how Commit acknowledges durability.
type Mode int

const (
	// Group (the default) acknowledges after an fsync covering the record;
	// concurrent commits share one fsync, so the cost amortizes.
	Group Mode = iota
	// Strict acknowledges after a dedicated fsync per record — no
	// amortization; the per-write fsync cost is paid serially.
	Strict
	// Off acknowledges immediately; fsync happens in the background, and a
	// crash loses acknowledged writes past the last fsync.
	Off
)

// String renders the mode as its flag spelling.
func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case Off:
		return "off"
	default:
		return "group"
	}
}

// ParseMode parses a -durability flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "group":
		return Group, nil
	case "strict":
		return Strict, nil
	case "off":
		return Off, nil
	}
	return Group, errors.New("wal: unknown durability mode " + s + " (want off, group or strict)")
}

// Record is one logged write: a prepared statement plus its binding set
// (single-statement writes are one-binding batches), stamped with its log
// sequence number. LSNs start at 1 and are dense.
type Record struct {
	LSN     int64
	Name    string
	SQL     string
	ArgSets [][]any
}

// Syncer charges the cost of one fsync of n encoded bytes — the server
// implements it by riding a batched write on its simulated disk.
type Syncer interface {
	Sync(bytes int)
}

// Options configure a log.
type Options struct {
	// Mode is the commit acknowledgement mode (zero value: Group).
	Mode Mode
	// Store persists records and snapshots (nil: NewMemStore()).
	Store Store
	// Syncer charges simulated fsync cost (nil: fsyncs are free).
	Syncer Syncer
}

// Stats summarizes log activity. SyncedRecords/Syncs is the achieved group
// commit factor: how many commits each fsync amortized over.
type Stats struct {
	Appends       int64
	Syncs         int64
	SyncedRecords int64
	SyncedBytes   int64
	SyncErrors    int64 // failed fsync attempts (each retried until durable)
	DurableLSN    int64
	SnapshotLSN   int64
}

// AvgGroup is the average number of records per fsync. Like every ratio
// helper in this repo it guards the zero denominator: before the first
// fsync it reports 0, not NaN.
func (s Stats) AvgGroup() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.SyncedRecords) / float64(s.Syncs)
}

// AvgSyncBytes is the average number of encoded bytes per fsync, with the
// same zero-denominator guard as AvgGroup.
func (s Stats) AvgSyncBytes() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.SyncedBytes) / float64(s.Syncs)
}

// Metrics flattens the stats for an obs registry source.
func (s Stats) Metrics() map[string]float64 {
	return map[string]float64{
		"appends":        float64(s.Appends),
		"syncs":          float64(s.Syncs),
		"synced.records": float64(s.SyncedRecords),
		"synced.bytes":   float64(s.SyncedBytes),
		"sync.errors":    float64(s.SyncErrors),
		"durable.lsn":    float64(s.DurableLSN),
		"snapshot.lsn":   float64(s.SnapshotLSN),
		"avg.group":      s.AvgGroup(),
		"avg.sync.bytes": s.AvgSyncBytes(),
	}
}

// Log is one shard's write-ahead log. It is safe for concurrent use.
type Log struct {
	mode   Mode
	store  Store
	syncer Syncer

	mu       sync.Mutex
	flush    sync.Cond // wakes the flusher when unsynced records exist
	durable  sync.Cond // wakes commit waiters / shipping tails / Crash
	snap     *Snapshot // latest checkpoint; nil before the first
	tail     []Record  // records with LSN > snapshot LSN, synced and not
	next     int64     // next LSN to assign
	synced   int64     // highest durable LSN
	syncing  bool      // a flusher fsync is in flight (Crash waits it out)
	crashing bool      // Crash in progress: the flusher must not start a new fsync
	closed   bool
	done     chan struct{}

	// appended is the highest LSN handed to store.AppendRecords (≥ synced:
	// a failed Sync leaves records appended but not durable). The flusher's
	// retry only re-appends records past this watermark, so a flaky fsync
	// can never duplicate records in the store.
	appended int64
	// appendedBytes accumulates encoded bytes appended since the last
	// successful sync (the stats charge for a sync that needed retries).
	appendedBytes int64

	appends, syncs, syncedRecs, syncedBytes, syncErrs int64

	metrics atomic.Pointer[obs.Registry]
}

// SetMetrics points the log at a registry; the flusher then records the
// wall time and group size of every fsync into the shared
// "wal.fsync.wall" / "wal.fsync.records" histograms (shared on purpose:
// per-shard logs feeding one registry yield one unified distribution).
func (l *Log) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.metrics.Store(reg)
}

// CommitSpan is Commit with the wait recorded as a "wal.commit" child
// span — the group-commit latency a write pays for its durability mode.
func (l *Log) CommitSpan(sp *obs.Span, lsn int64) {
	if sp == nil {
		l.Commit(lsn)
		return
	}
	c := sp.Child("wal.commit")
	l.Commit(lsn)
	c.End()
}

// CommitWait is CommitSpan with a deadline: the wait gives up when dl
// expires before the record becomes durable, returning
// query.ErrDeadlineExceeded. The record itself stays in the log and will
// still be fsynced — only the acknowledgement is abandoned, so the caller
// must report the write as "never acknowledged", not as lost. Like SyncTo,
// a crash that truncates the record away also releases the wait (with a
// nil error); the caller must then check DurableLSN to discover the loss.
// A zero deadline waits exactly like CommitSpan.
func (l *Log) CommitWait(sp *obs.Span, lsn int64, dl query.Deadline) error {
	if l.mode == Off {
		return nil
	}
	if dl.IsZero() {
		l.CommitSpan(sp, lsn)
		return nil
	}
	c := sp.Child("wal.commit")
	defer c.End()
	var timer *time.Timer
	l.mu.Lock()
	for l.synced < lsn && !l.closed && lsn < l.next {
		if dl.Expired() {
			l.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return query.ErrDeadlineExceeded
		}
		if timer == nil {
			// One shot at the deadline wakes this waiter (Broadcast: cond has
			// no directed signal) so an idle log cannot strand it past dl.
			timer = time.AfterFunc(dl.Remaining(), func() {
				l.mu.Lock()
				l.durable.Broadcast()
				l.mu.Unlock()
			})
		}
		l.durable.Wait()
	}
	l.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	return nil
}

// New starts a log and its flusher goroutine.
func New(opts Options) *Log {
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	l := &Log{
		mode:   opts.Mode,
		store:  opts.Store,
		syncer: opts.Syncer,
		next:   1,
		done:   make(chan struct{}),
	}
	l.flush.L = &l.mu
	l.durable.L = &l.mu
	go l.flusher()
	return l
}

// Open starts a log over a store that already holds a snapshot and records —
// the recovery path after a real (process-level) crash. Everything loaded is
// durable by definition; appending resumes after the last record.
func Open(opts Options) (*Log, error) {
	if opts.Store == nil {
		return nil, errors.New("wal: Open needs a store")
	}
	snap, recs, err := opts.Store.Load()
	if err != nil {
		return nil, err
	}
	l := &Log{
		mode:   opts.Mode,
		store:  opts.Store,
		syncer: opts.Syncer,
		snap:   snap,
		tail:   recs,
		next:   1,
		done:   make(chan struct{}),
	}
	if snap != nil {
		l.synced = snap.LSN
		l.next = snap.LSN + 1
	}
	if n := len(recs); n > 0 {
		l.synced = recs[n-1].LSN
		l.next = l.synced + 1
	}
	l.appended = l.synced
	l.flush.L = &l.mu
	l.durable.L = &l.mu
	go l.flusher()
	return l, nil
}

// Mode reports the commit acknowledgement mode.
func (l *Log) Mode() Mode { return l.mode }

// Append stamps and buffers one record, returning its LSN. The record is not
// durable yet — Commit (or a background fsync) makes it so.
func (l *Log) Append(name, sql string, argSets [][]any) int64 {
	sets := make([][]any, len(argSets))
	for i, a := range argSets {
		sets[i] = append([]any(nil), a...)
	}
	l.mu.Lock()
	lsn := l.next
	l.next++
	l.tail = append(l.tail, Record{LSN: lsn, Name: name, SQL: sql, ArgSets: sets})
	l.appends++
	l.flush.Signal()
	l.mu.Unlock()
	return lsn
}

// Commit blocks until the record at lsn is durable under the log's mode:
// immediately for Off, after the fsync covering lsn for Group and Strict.
func (l *Log) Commit(lsn int64) {
	if l.mode == Off {
		return
	}
	l.SyncTo(lsn)
}

// SyncTo blocks until the record at lsn is durable, regardless of mode —
// checkpoints use it to force the prefix they capture onto disk. It also
// returns when a crash truncated the record away (lsn no longer assigned):
// the caller must check DurableLSN to learn whether its record survived.
func (l *Log) SyncTo(lsn int64) {
	l.mu.Lock()
	for l.synced < lsn && !l.closed && lsn < l.next {
		l.durable.Wait()
	}
	l.mu.Unlock()
}

// LastLSN returns the highest assigned LSN (durable or not).
func (l *Log) LastLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// DurableLSN returns the highest fsynced LSN.
func (l *Log) DurableLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Snapshot returns the latest checkpoint, or nil before the first.
func (l *Log) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// TailStart returns the LSN the retained record suffix starts after: records
// with LSN ≤ TailStart live only inside the snapshot.
func (l *Log) TailStart() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap == nil {
		return 0
	}
	return l.snap.LSN
}

// RecordsAfter returns copies of the durable records with LSN in
// (after, DurableLSN]. ok is false when a checkpoint truncated past `after`
// — the caller's state is older than the log's memory and must resync from
// Snapshot().
func (l *Log) RecordsAfter(after int64) (recs []Record, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recordsAfterLocked(after)
}

// WaitRecordsAfter blocks until durable records past `after` exist (or the
// log closes / truncates past the caller). closed reports log shutdown — the
// shipping tail should exit.
func (l *Log) WaitRecordsAfter(after int64) (recs []Record, ok, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.snap != nil && after < l.snap.LSN {
			return nil, false, false
		}
		if l.synced > after {
			recs, ok = l.recordsAfterLocked(after)
			return recs, ok, false
		}
		if l.closed {
			return nil, true, true
		}
		l.durable.Wait()
	}
}

func (l *Log) recordsAfterLocked(after int64) ([]Record, bool) {
	if l.snap != nil && after < l.snap.LSN {
		return nil, false
	}
	var out []Record
	for _, r := range l.tail {
		if r.LSN > after && r.LSN <= l.synced {
			out = append(out, r)
		}
	}
	return out, true
}

// WriteSnapshot installs a checkpoint and truncates the records it covers.
// The snapshot must only cover durable state: call SyncTo(snap.LSN) first
// (Checkpoint in internal/replica does).
func (l *Log) WriteSnapshot(snap *Snapshot) error {
	l.mu.Lock()
	if snap.LSN > l.synced {
		l.mu.Unlock()
		return errors.New("wal: snapshot covers unsynced records")
	}
	l.mu.Unlock()
	// Store IO happens outside the lock (it may be a real file write).
	if err := l.store.WriteSnapshot(snap); err != nil {
		return err
	}
	l.mu.Lock()
	l.snap = snap
	kept := l.tail[:0]
	for _, r := range l.tail {
		if r.LSN > snap.LSN {
			kept = append(kept, r)
		}
	}
	l.tail = append([]Record(nil), kept...)
	l.durable.Broadcast() // truncation is visible to shipping tails
	l.mu.Unlock()
	return nil
}

// Crash simulates losing the machine: every record past the last fsync is
// gone. The log itself (the disk) survives and keeps serving the durable
// prefix; appending resumes at durable+1. Callers must guarantee no Append
// races Crash (internal/replica holds its group write lock).
func (l *Log) Crash() {
	l.mu.Lock()
	// Stop the flusher from starting another group commit, then wait out the
	// fsync already in flight: it represents real bits reaching the platter.
	l.crashing = true
	for l.syncing {
		l.durable.Wait()
	}
	kept := l.tail[:0]
	for _, r := range l.tail {
		if r.LSN <= l.synced {
			kept = append(kept, r)
		}
	}
	l.tail = append([]Record(nil), kept...)
	l.next = l.synced + 1
	// Records appended to the store but never fsynced are part of the torn
	// tail a real crash leaves behind; reset the watermark so re-assigned
	// LSNs append fresh (recovery reads only the durable prefix).
	l.appended = l.synced
	l.appendedBytes = 0
	l.crashing = false
	l.flush.Signal()
	// Wake commit waiters stranded on truncated records; they observe
	// DurableLSN < their lsn and report the loss.
	l.durable.Broadcast()
	l.mu.Unlock()
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Appends:       l.appends,
		Syncs:         l.syncs,
		SyncedRecords: l.syncedRecs,
		SyncedBytes:   l.syncedBytes,
		SyncErrors:    l.syncErrs,
		DurableLSN:    l.synced,
	}
	if l.snap != nil {
		s.SnapshotLSN = l.snap.LSN
	}
	return s
}

// Close stops the flusher after it drains pending records, wakes every
// waiter, and closes the store.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.flush.Signal()
	l.durable.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.store.Close()
}

// flusher is the group-commit loop: it takes every unsynced record (one at a
// time under Strict), writes them to the store, pays one fsync, and wakes
// the commit waiters. Records accumulating while an fsync is in flight share
// the next one — that is where the amortization comes from.
func (l *Log) flusher() {
	defer close(l.done)
	l.mu.Lock()
	for {
		for !l.closed && (l.crashing || l.synced == l.next-1) {
			l.flush.Wait()
		}
		if l.closed && (l.crashing || l.synced == l.next-1) {
			l.mu.Unlock()
			return
		}
		batch, _ := l.pendingLocked()
		if l.mode == Strict {
			batch = batch[:1]
		}
		// Retry after a failed fsync only re-appends records the store has
		// not staged yet (LSN > appended); records already handed to
		// AppendRecords just need the Sync retried. Without the watermark a
		// flaky fsync would duplicate every record of the batch.
		var toAppend []Record
		for _, r := range batch {
			if r.LSN > l.appended {
				toAppend = append(toAppend, r)
			}
		}
		l.syncing = true
		l.mu.Unlock()

		fsyncStart := time.Now()
		var bytes int
		var err error
		if len(toAppend) > 0 {
			bytes, err = l.store.AppendRecords(toAppend)
		}
		appended := int64(0)
		if err == nil {
			appended = batch[len(batch)-1].LSN
			err = l.store.Sync()
		}
		if l.syncer != nil {
			l.syncer.Sync(bytes)
		}
		if reg := l.metrics.Load(); reg != nil {
			reg.Histogram("wal.fsync.wall").RecordDuration(time.Since(fsyncStart))
			reg.Histogram("wal.fsync.records").Record(int64(len(batch)))
			if err != nil {
				reg.Counter("wal.fsync.errors").Add(1)
			}
		}

		l.mu.Lock()
		l.syncing = false
		if appended > l.appended {
			l.appended = appended
		}
		l.appendedBytes += int64(bytes)
		if err == nil {
			l.synced = batch[len(batch)-1].LSN
			l.syncs++
			l.syncedRecs += int64(len(batch))
			l.syncedBytes += l.appendedBytes
			l.appendedBytes = 0
		} else {
			l.syncErrs++
			if l.closed {
				// Shutdown with a store that will not sync: abandon the
				// pending records rather than retrying forever.
				l.durable.Broadcast()
				l.mu.Unlock()
				return
			}
			// Back off briefly before retrying so a persistently failing
			// store does not spin the flusher hot. Crash/Close still win:
			// the loop re-checks both flags after the sleep.
			l.mu.Unlock()
			time.Sleep(500 * time.Microsecond)
			l.mu.Lock()
		}
		l.durable.Broadcast()
	}
}

// pendingLocked returns the unsynced records (synced, next).
func (l *Log) pendingLocked() ([]Record, bool) {
	var out []Record
	for _, r := range l.tail {
		if r.LSN > l.synced {
			out = append(out, r)
		}
	}
	return out, len(out) > 0
}
