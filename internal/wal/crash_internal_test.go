package wal

import (
	"sync"
	"testing"
	"time"
)

// holdSyncer blocks the flusher inside its first fsync until released. The
// test lives in-package so it can watch the crashing flag and release the
// fsync only once Crash is provably waiting on it — the loss of the unsynced
// tail is then deterministic, not a scheduling accident.
type holdSyncer struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (h *holdSyncer) Sync(bytes int) {
	h.once.Do(func() {
		close(h.entered)
		<-h.release
	})
}

func (l *Log) crashPending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashing
}

func TestCrashLosesUnsyncedTailUnderOff(t *testing.T) {
	gate := &holdSyncer{entered: make(chan struct{}), release: make(chan struct{})}
	l := New(Options{Mode: Off, Syncer: gate})
	defer l.Close()

	l.Commit(l.Append("w", "INSERT", [][]any{{int64(1)}})) // Off: returns before durable
	<-gate.entered                                         // flusher is mid-fsync of record 1
	l.Append("w", "INSERT", [][]any{{int64(2)}})
	l.Append("w", "INSERT", [][]any{{int64(3)}})

	done := make(chan struct{})
	go func() { l.Crash(); close(done) }()
	for !l.crashPending() { // Crash has claimed the log; no new fsync can start
		time.Sleep(time.Millisecond)
	}
	close(gate.release) // the in-flight fsync completes; records 2,3 are lost
	<-done

	if got := l.DurableLSN(); got != 1 {
		t.Fatalf("durable LSN after crash = %d, want 1", got)
	}
	if got := l.LastLSN(); got != 1 {
		t.Fatalf("last LSN after crash = %d, want 1 (tail truncated)", got)
	}
	lsn := l.Append("w", "INSERT", [][]any{{int64(4)}})
	if lsn != 2 {
		t.Fatalf("post-crash append LSN = %d, want 2", lsn)
	}
	l.SyncTo(lsn)
	recs, ok := l.RecordsAfter(0)
	if !ok || len(recs) != 2 || recs[0].LSN != 1 {
		t.Fatalf("records after crash: %v ok=%v", recs, ok)
	}
}
