package wal_test

import (
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/wal"
)

// A flaky fsync must delay durability, never corrupt it: every record lands
// in the store exactly once (the flusher's append watermark), in LSN order,
// and every Commit still returns only once its record is truly durable.
func TestFlakySyncNoDuplicateRecords(t *testing.T) {
	inj := fault.New(20110411).
		At(fault.SyncErr, 1, 2, 3). // the first fsyncs fail for sure
		Rate(fault.SyncErr, 0.4)    // and later ones keep failing at random
	mem := wal.NewMemStore()
	log := wal.New(wal.Options{Mode: wal.Group, Store: fault.NewStore(mem, inj)})
	defer log.Close()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn := log.Append("q", "insert into t (id) values (?)", [][]any{{int64(w*perWriter + i)}})
				log.Commit(lsn)
			}
		}(w)
	}
	wg.Wait()

	total := int64(writers * perWriter)
	if got := log.DurableLSN(); got != total {
		t.Fatalf("durable LSN %d, want %d", got, total)
	}
	if st := log.Stats(); st.SyncErrors < 3 {
		t.Fatalf("sync errors %d, want ≥ 3 (the scheduled failures)", st.SyncErrors)
	}
	_, recs, err := mem.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	seen := map[int64]bool{}
	last := int64(0)
	for _, r := range recs {
		if seen[r.LSN] {
			t.Fatalf("store holds LSN %d twice: a failed fsync duplicated its batch", r.LSN)
		}
		seen[r.LSN] = true
		if r.LSN <= last {
			t.Fatalf("store records out of order: %d after %d", r.LSN, last)
		}
		last = r.LSN
	}
	if int64(len(recs)) != total {
		t.Fatalf("store holds %d records, want %d", len(recs), total)
	}
}
